// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations of the design choices DESIGN.md calls
// out. Each BenchmarkFigureN/BenchmarkTableN runs the corresponding
// experiment at the tiny scale (so `go test -bench=.` finishes on a
// laptop; use cmd/kadsweep for reduced- or paper-scale runs) and reports
// the paper's headline quantities as custom benchmark metrics:
//
//	min_conn       minimum connectivity after stabilization (or churn mean)
//	avg_conn       average pair connectivity
//	kappa_over_k   min connectivity normalized by bucket size k
//
// The *shape* assertions — who wins, what rises, what collapses — live in
// the metrics, making regressions visible in benchstat diffs.
package kadre

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"kadre/internal/connectivity"
	"kadre/internal/graph"
	"kadre/internal/maxflow"
	"kadre/internal/scenario"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
	"kadre/internal/stats"
)

// benchScale is TinyScale with a seed pinned for stable metrics.
var benchScale = scenario.TinyScale

const benchSeed = 1

// runExperimentOnce runs every config of an experiment once and returns
// the results; the b.N loop re-runs the whole experiment.
func runExperimentOnce(b *testing.B, exp scenario.Experiment) []*scenario.Result {
	b.Helper()
	results, err := scenario.RunAll(exp.Configs)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// reportFigureMetrics emits per-k connectivity metrics for a 4-run
// k-sweep figure: the value at the end of stabilization and the churn-
// phase mean of the minimum connectivity.
func reportFigureMetrics(b *testing.B, results []*scenario.Result) {
	b.Helper()
	for _, r := range results {
		minSeries := r.MinSeries()
		stabilized, ok := minSeries.At(r.Config.ChurnStart())
		if !ok {
			continue
		}
		churnMean := r.ChurnWindowSummary().Mean
		k := float64(r.Config.K)
		b.ReportMetric(stabilized, fmt.Sprintf("min_conn_stab_k%d", r.Config.K))
		b.ReportMetric(stabilized/k, fmt.Sprintf("kappa_over_k_stab_k%d", r.Config.K))
		b.ReportMetric(churnMean, fmt.Sprintf("min_conn_churn_k%d", r.Config.K))
	}
}

func benchFigure(b *testing.B, pick func(scenario.Scale, int64) scenario.Experiment) {
	for i := 0; i < b.N; i++ {
		exp := pick(benchScale, benchSeed)
		results := runExperimentOnce(b, exp)
		if i == b.N-1 {
			reportFigureMetrics(b, results)
		}
	}
}

// BenchmarkTable1MessageLoss regenerates Table 1: it validates the
// loss-scenario probabilities against a million simulated transmissions
// per level and reports the measured two-way failure rates.
func BenchmarkTable1MessageLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(benchSeed))
		for _, level := range simnet.Levels() {
			model := level.Model()
			const trials = 100000
			failures := 0
			for t := 0; t < trials; t++ {
				// Two-way exchange: request then response.
				if model.Drop(r, 1, 2) || model.Drop(r, 2, 1) {
					failures++
				}
			}
			got := float64(failures) / trials
			want := level.TwoWayLoss()
			if got < want-0.01 || got > want+0.01 {
				b.Fatalf("loss %v: measured two-way failure %.3f, want %.3f", level, got, want)
			}
			b.ReportMetric(got, "p2way_"+level.String())
		}
	}
}

// BenchmarkFigure2SimA: small network, churn 0/1, no data traffic.
func BenchmarkFigure2SimA(b *testing.B) { benchFigure(b, scenario.Scale.Figure2) }

// BenchmarkFigure3SimB: large network, churn 0/1, no data traffic.
func BenchmarkFigure3SimB(b *testing.B) { benchFigure(b, scenario.Scale.Figure3) }

// BenchmarkFigure4SimC: small network, churn 0/1, with data traffic.
func BenchmarkFigure4SimC(b *testing.B) { benchFigure(b, scenario.Scale.Figure4) }

// BenchmarkFigure5SimD: large network, churn 0/1, with data traffic.
func BenchmarkFigure5SimD(b *testing.B) { benchFigure(b, scenario.Scale.Figure5) }

// BenchmarkFigure6SimE: small network, churn 1/1, with data traffic.
func BenchmarkFigure6SimE(b *testing.B) { benchFigure(b, scenario.Scale.Figure6) }

// BenchmarkFigure7SimF: large network, churn 1/1, with data traffic.
func BenchmarkFigure7SimF(b *testing.B) { benchFigure(b, scenario.Scale.Figure7) }

// BenchmarkFigure8SimG: small network, churn 10/10, with data traffic.
func BenchmarkFigure8SimG(b *testing.B) { benchFigure(b, scenario.Scale.Figure8) }

// BenchmarkFigure9SimH: large network, churn 10/10, with data traffic.
func BenchmarkFigure9SimH(b *testing.B) { benchFigure(b, scenario.Scale.Figure9) }

// BenchmarkTable2RelativeVariance regenerates Table 2: churn-phase mean
// and relative variance of the minimum connectivity for Sims E-H, and
// asserts the paper's qualitative finding that stronger churn does not
// lower the RV (it rises or stays flat in almost every k row).
func BenchmarkTable2RelativeVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp := benchScale.Table2(benchSeed)
		results := runExperimentOnce(b, exp)
		if i != b.N-1 {
			continue
		}
		type key struct {
			size int
			k    int
		}
		rv := map[key]map[string]float64{}
		for _, r := range results {
			sum := r.ChurnWindowSummary()
			kk := key{r.Config.Size, r.Config.K}
			if rv[kk] == nil {
				rv[kk] = map[string]float64{}
			}
			rv[kk][r.Config.Churn.String()] = sum.RV
			b.ReportMetric(sum.Mean, fmt.Sprintf("mean_n%d_k%d_c%s", r.Config.Size, r.Config.K, r.Config.Churn))
		}
		rose := 0
		total := 0
		for _, byChurn := range rv {
			lo, hi := byChurn["1/1"], byChurn["10/10"]
			if lo == 0 && hi == 0 {
				continue // the all-zero row the paper also excepts
			}
			total++
			if hi >= lo {
				rose++
			}
		}
		if total > 0 {
			b.ReportMetric(float64(rose)/float64(total), "rv_rose_fraction")
		}
	}
}

// BenchmarkFigure10Alpha regenerates Figure 10: mean minimum connectivity
// during churn vs k, for churn{1/1,10/10} x alpha{3,5}. Reported metric
// per curve point; also asserts the paper's finding 3 (alpha=5 with churn
// 10/10 hurts small k).
func BenchmarkFigure10Alpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp := benchScale.Figure10(benchSeed)
		results := runExperimentOnce(b, exp)
		if i != b.N-1 {
			continue
		}
		for _, r := range results {
			alpha := r.Config.Alpha
			if alpha == 0 {
				alpha = 3
			}
			b.ReportMetric(r.ChurnWindowSummary().Mean,
				fmt.Sprintf("mean_n%d_c%s_a%d_k%d", r.Config.Size, r.Config.Churn, alpha, r.Config.K))
		}
	}
}

// BenchmarkSection57BitLength regenerates §5.7: identical scenarios with
// b=80 and b=160 should show no significant connectivity difference.
func BenchmarkSection57BitLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp := benchScale.Section57(benchSeed)
		results := runExperimentOnce(b, exp)
		if i != b.N-1 {
			continue
		}
		for _, r := range results {
			mean := stats.Mean(r.MinSeries().Window(r.Config.ChurnStart(), r.Config.Total()).Values())
			b.ReportMetric(mean, fmt.Sprintf("mean_%s_b%d", sizeTag(r.Config.Size), r.Config.Bits))
		}
	}
}

func sizeTag(size int) string {
	if size >= benchScale.Large {
		return "large"
	}
	return "small"
}

// BenchmarkFigure11SimI regenerates Simulation I: staleness 1 vs 5
// without loss under churn; with strong churn, s=5 should not raise the
// average connectivity above s=1 (the paper sees it drop).
func BenchmarkFigure11SimI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp := benchScale.Figure11(benchSeed)
		results := runExperimentOnce(b, exp)
		if i != b.N-1 {
			continue
		}
		for _, r := range results {
			avgMean := stats.Mean(r.AvgSeries().Window(r.Config.ChurnStart(), r.Config.Total()).Values())
			b.ReportMetric(avgMean, fmt.Sprintf("avg_conn_c%s_s%d", r.Config.Churn, r.Config.Staleness))
		}
	}
}

func benchLossSweep(b *testing.B, pick func(scenario.Scale, int64) scenario.Experiment) {
	for i := 0; i < b.N; i++ {
		exp := pick(benchScale, benchSeed)
		results := runExperimentOnce(b, exp)
		if i != b.N-1 {
			continue
		}
		for _, r := range results {
			window := r.MinSeries().Window(r.Config.ChurnStart(), r.Config.Total())
			b.ReportMetric(stats.Mean(window.Values()),
				fmt.Sprintf("min_conn_s%d_l%s", r.Config.Staleness, r.Config.Loss))
		}
	}
}

// BenchmarkFigure12SimJ: loss sweep, no churn — loss raises connectivity.
func BenchmarkFigure12SimJ(b *testing.B) { benchLossSweep(b, scenario.Scale.Figure12) }

// BenchmarkFigure13SimK: loss sweep under churn 1/1.
func BenchmarkFigure13SimK(b *testing.B) { benchLossSweep(b, scenario.Scale.Figure13) }

// BenchmarkFigure14SimL: loss sweep under churn 10/10.
func BenchmarkFigure14SimL(b *testing.B) { benchLossSweep(b, scenario.Scale.Figure14) }

// --- Ablation benches (DESIGN.md §4) ---

// benchGraph builds a Kademlia-like near-symmetric random graph: every
// vertex has ~deg out-edges, most reciprocated.
func benchGraph(n, deg int, seed int64) *graph.Digraph {
	r := rand.New(rand.NewSource(seed))
	g := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			v := r.Intn(n)
			if v == u {
				continue
			}
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
			if r.Float64() < 0.9 && !g.HasEdge(v, u) {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// maxflowAlgoBench returns the benchmark body for one algorithm on an
// Even-transformed unit-capacity graph — the pipeline's exact workload.
// The body is a plain func so the bench-trajectory writer (see
// benchjson_test.go) can run it through testing.Benchmark.
func maxflowAlgoBench(algo maxflow.Algorithm) func(*testing.B) {
	return func(b *testing.B) {
		g := benchGraph(400, 20, 7)
		edges := graph.EvenEdges(g)
		medges := make([]maxflow.Edge, len(edges))
		for i, e := range edges {
			medges[i] = maxflow.Edge{U: e.U, V: e.V, Cap: 1}
		}
		queries := [][2]int{}
		r := rand.New(rand.NewSource(8))
		for len(queries) < 64 {
			v, w := r.Intn(g.N()), r.Intn(g.N())
			if v != w && !g.HasEdge(v, w) {
				queries = append(queries, [2]int{graph.Out(v), graph.In(w)})
			}
		}
		solver := algo.NewSolver(2*g.N(), medges)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			solver.MaxFlow(q[0], q[1])
		}
	}
}

// BenchmarkMaxflowAlgorithms compares Dinic against HIPR-style
// push-relabel on the pipeline's workload.
func BenchmarkMaxflowAlgorithms(b *testing.B) {
	for _, algo := range []maxflow.Algorithm{maxflow.Dinic, maxflow.PushRelabel} {
		b.Run(algo.String(), maxflowAlgoBench(algo))
	}
}

// BenchmarkConnectivitySampling validates and times the paper's §5.2
// sampling heuristic: c=0.02 vs full sweep on a Kademlia-like graph. The
// sampled min must match the full min (the paper verified this on 20
// graphs; here it is asserted on every run).
func BenchmarkConnectivitySampling(b *testing.B) {
	g := benchGraph(250, 18, 9)
	full := connectivity.MustNewAnalyzer(connectivity.Options{SampleFraction: 1.0, MinOnly: true})
	want := full.Analyze(g).Min
	for _, c := range []float64{1.0, 0.1, 0.02} {
		b.Run(fmt.Sprintf("c=%.2f", c), func(b *testing.B) {
			a := connectivity.MustNewAnalyzer(connectivity.Options{SampleFraction: c, MinOnly: true})
			var got int
			for i := 0; i < b.N; i++ {
				got = a.Analyze(g).Min
			}
			if got != want {
				b.Fatalf("sampled min %d != full min %d", got, want)
			}
			b.ReportMetric(float64(got), "kappa")
		})
	}
}

// BenchmarkUndirectedShortcut times the cited Gomory-Hu style (n-1)-pair
// method against the directed sampled sweep on a symmetrized graph.
func BenchmarkUndirectedShortcut(b *testing.B) {
	g := benchGraph(250, 18, 10).Symmetrize()
	b.Run("undirected-n-1", func(b *testing.B) {
		var got int
		for i := 0; i < b.N; i++ {
			var err error
			got, err = connectivity.UndirectedMin(g, maxflow.Dinic)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(got), "kappa")
	})
	b.Run("directed-sampled", func(b *testing.B) {
		a := connectivity.MustNewAnalyzer(connectivity.Options{SampleFraction: 0.02, MinOnly: true})
		var got int
		for i := 0; i < b.N; i++ {
			got = a.Analyze(g).Min
		}
		b.ReportMetric(float64(got), "kappa")
	})
}

// BenchmarkHeuristicValidation reproduces the paper's §5.2 validation
// protocol: on randomly generated Kademlia-like connectivity graphs,
// check that c=0.02 smallest-out-degree sampling finds the exact minimum
// of the maximum flows. Reports the fraction of graphs where it matched.
func BenchmarkHeuristicValidation(b *testing.B) {
	matched, total := 0, 0
	for i := 0; i < b.N; i++ {
		g := benchGraph(150+i%3*50, 12+i%2*6, int64(100+i))
		full := connectivity.MustNewAnalyzer(connectivity.Options{SampleFraction: 1.0, MinOnly: true}).Analyze(g).Min
		sampled := connectivity.MustNewAnalyzer(connectivity.Options{SampleFraction: 0.02, MinOnly: true}).Analyze(g).Min
		total++
		if full == sampled {
			matched++
		}
	}
	b.ReportMetric(float64(matched)/float64(total), "exact_fraction")
}

// BenchmarkEvenTransform times the graph transformation itself.
func BenchmarkEvenTransform(b *testing.B) {
	g := benchGraph(1000, 30, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.EvenTransform(g)
	}
}

// BenchmarkSnapshotAnalysis times one full snapshot analysis (capture
// excluded) at the small paper size, the unit of work the paper fanned
// out to its cluster. The analyzer is engine-backed, so iterations after
// the first reuse the solver pool and Even-transform buffers — the
// steady state of the per-snapshot hot path.
func BenchmarkSnapshotAnalysis(b *testing.B) {
	g := benchGraph(250, 20, 12)
	a := connectivity.MustNewAnalyzer(connectivity.Options{SampleFraction: 0.02, MinOnly: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Analyze(g)
	}
}

// BenchmarkSnapshotAnalysisFused times the runner's actual per-snapshot
// unit of work since the fused engine sweep: Min (pruned,
// smallest-out-degree) and Avg (exact, seeded uniform) in one pass over
// one solver pool. Compare against BenchmarkSnapshotAnalysis plus a
// separate exact sweep to see what fusing saves.
func BenchmarkSnapshotAnalysisFused(b *testing.B) {
	g := benchGraph(250, 20, 12)
	eng := connectivity.MustNewEngine(connectivity.EngineOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Bind(g)
		eng.AnalyzeSnapshot(connectivity.SnapshotQuery{SampleFraction: 0.02, AvgSeed: int64(i)})
	}
}

// churnSequence builds a cyclic sequence of same-vertex-set graphs, each
// differing from its predecessor by ~changes routing-table edge updates,
// plus the per-step deltas (deltas[i] transforms graphs[i] into
// graphs[(i+1)%len]). It models adjacent snapshots of a stable-membership
// window — the incremental reanalysis workload.
func churnSequence(n, deg, steps, changes int, seed int64) ([]*graph.Digraph, []graph.Delta) {
	r := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Digraph, steps)
	graphs[0] = benchGraph(n, deg, seed)
	for i := 1; i < steps; i++ {
		g := graphs[i-1].Clone()
		all := g.Edges()
		for c := 0; c < changes/2 && len(all) > 0; c++ {
			k := r.Intn(len(all))
			g.RemoveEdge(all[k].U, all[k].V)
			all[k] = all[len(all)-1]
			all = all[:len(all)-1]
		}
		for c := 0; c < changes/2; c++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		graphs[i] = g
	}
	deltas := make([]graph.Delta, steps)
	for i := range graphs {
		graph.DiffInto(graphs[i], graphs[(i+1)%steps], &deltas[i])
	}
	return graphs, deltas
}

// churnSequenceBench returns the benchmark body for one engine-binding
// mode over the adjacent-snapshot workload. "rebind" is the incremental
// path (edge deltas patched in place); "bind" rebuilds the binding per
// snapshot; the algo selects the sweep solver. The bind-pushrelabel
// variant is PR 3's per-snapshot rebinding path — the baseline the
// adjacent-snapshot reanalysis speedup is measured against.
func churnSequenceBench(rebind bool, algo maxflow.Algorithm) func(*testing.B) {
	return func(b *testing.B) {
		graphs, deltas := churnSequence(250, 20, 8, 40, 13)
		eng := connectivity.MustNewEngine(connectivity.EngineOptions{
			Algorithm: algo, ExactAlgorithm: algo,
		})
		eng.Bind(graphs[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range graphs {
				g := graphs[(j+1)%len(graphs)]
				if rebind {
					eng.Rebind(g, deltas[j])
				} else {
					eng.Bind(g)
				}
				eng.AnalyzeSnapshot(connectivity.SnapshotQuery{SampleFraction: 0.02, AvgSeed: int64(j)})
			}
		}
		// ns/op per snapshot, not per cycle, for comparability with
		// BenchmarkSnapshotAnalysisFused.
		b.ReportMetric(0, "ns/op") // reset default
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(graphs)), "ns/snapshot")
	}
}

// memberChurnSequence builds a cyclic sequence of stable-slot snapshot
// graphs under MEMBERSHIP churn: each step removes one node, joins one
// replacement (recycling the vacated slot, like snapshot.CaptureSlots),
// and churns ~changes routing-table edges. The slot count stays constant
// across the cycle, so every step is incrementally rebindable — the
// join/leave/strike workload that, before stable-slot indexing, forced a
// full bind per snapshot.
func memberChurnSequence(n, deg, steps, changes int, seed int64) (graphs []*graph.Digraph, orders [][]int) {
	r := rand.New(rand.NewSource(seed))
	var slots snapshot.SlotMap[int]
	nextID := n
	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	edges := map[[2]int]bool{}
	addEdges := func(id, degree int) {
		for d := 0; d < degree; d++ {
			other := alive[r.Intn(len(alive))]
			if other == id {
				continue
			}
			edges[[2]int{id, other}] = true
			if r.Float64() < 0.9 {
				edges[[2]int{other, id}] = true
			}
		}
	}
	for _, id := range alive {
		addEdges(id, deg)
	}
	capture := func() (*graph.Digraph, []int) {
		return snapshot.BuildSlotGraph(&slots, alive, func(emit func(u, v int)) {
			for e := range edges {
				emit(e[0], e[1])
			}
		})
	}
	g0, o0 := capture()
	graphs, orders = append(graphs, g0), append(orders, o0)
	for i := 1; i < steps; i++ {
		// One leave + one join (slot recycled; count stays constant).
		gone := alive[r.Intn(len(alive))]
		alive = slices.DeleteFunc(alive, func(x int) bool { return x == gone })
		for e := range edges {
			if e[0] == gone || e[1] == gone {
				delete(edges, e)
			}
		}
		id := nextID
		nextID++
		alive = append(alive, id)
		addEdges(id, deg)
		// Plus routing-table churn on the survivors.
		keys := make([][2]int, 0, len(edges))
		for e := range edges {
			keys = append(keys, e)
		}
		slices.SortFunc(keys, func(a, b [2]int) int {
			if a[0] != b[0] {
				return a[0] - b[0]
			}
			return a[1] - b[1]
		})
		for c := 0; c < changes/2 && len(keys) > 0; c++ {
			k := r.Intn(len(keys))
			delete(edges, keys[k])
			keys[k] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		}
		for c := 0; c < changes/2; c++ {
			u, v := alive[r.Intn(len(alive))], alive[r.Intn(len(alive))]
			if u != v {
				edges[[2]int{u, v}] = true
			}
		}
		g, o := capture()
		graphs, orders = append(graphs, g), append(orders, o)
	}
	return graphs, orders
}

// memberChurnSequenceBench returns the benchmark body for one binding
// mode over the membership-churn workload. "rebind" routes every
// snapshot through IncrementalBinder.BindNextSlots (the stable-slot
// incremental path); "bind" full-binds the slot capture per snapshot —
// the pre-slot behavior for membership changes.
func memberChurnSequenceBench(rebind bool, algo maxflow.Algorithm) func(*testing.B) {
	return func(b *testing.B) {
		graphs, orders := memberChurnSequence(250, 20, 8, 40, 13)
		for i := range graphs {
			if graphs[i].N() != graphs[0].N() {
				b.Fatalf("slot count drifted: %d != %d", graphs[i].N(), graphs[0].N())
			}
		}
		eng := connectivity.MustNewEngine(connectivity.EngineOptions{
			Algorithm: algo, ExactAlgorithm: algo,
		})
		binder := connectivity.NewIncrementalBinder(eng)
		binder.BindNextSlots(graphs[0], orders[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range graphs {
				k := (j + 1) % len(graphs)
				if rebind {
					binder.BindNextSlots(graphs[k], orders[k])
				} else {
					eng.BindSlots(graphs[k], orders[k])
				}
				eng.AnalyzeSnapshot(connectivity.SnapshotQuery{SampleFraction: 0.02, AvgSeed: int64(j)})
			}
		}
		if rebind && eng.RebindFallbacks() != 0 {
			b.Fatalf("%d rebind fallbacks on the membership-churn cycle", eng.RebindFallbacks())
		}
		b.ReportMetric(0, "ns/op") // reset default
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(graphs)), "ns/snapshot")
	}
}

// BenchmarkChurnSequence measures adjacent-snapshot reanalysis: a cycle
// of same-membership snapshot graphs differing by ~40 routing-table
// edges, analyzed with the fused Min+Avg sweep. rebind-haoorlin is the
// incremental path this repo ships (delta patching + the fixed-root
// sweep solver); bind-haoorlin isolates the rebinding overhead;
// bind-pushrelabel is the previous revision's per-snapshot rebinding
// baseline. The members-* variants run the same analysis over a
// MEMBERSHIP-churn cycle (one leave + one join + edge churn per step,
// slots recycled): members-rebind-haoorlin is the stable-slot
// incremental path, members-bind-haoorlin the full-bind fallback it
// replaces.
func BenchmarkChurnSequence(b *testing.B) {
	b.Run("rebind-haoorlin", churnSequenceBench(true, maxflow.HaoOrlin))
	b.Run("bind-haoorlin", churnSequenceBench(false, maxflow.HaoOrlin))
	b.Run("bind-pushrelabel", churnSequenceBench(false, maxflow.PushRelabel))
	b.Run("members-rebind-haoorlin", memberChurnSequenceBench(true, maxflow.HaoOrlin))
	b.Run("members-bind-haoorlin", memberChurnSequenceBench(false, maxflow.HaoOrlin))
	b.Run("members-bind-pushrelabel", memberChurnSequenceBench(false, maxflow.PushRelabel))
}

// BenchmarkSimulationMinute measures raw simulation throughput: one
// simulated minute of a 100-node network with full data traffic.
func BenchmarkSimulationMinute(b *testing.B) {
	res, err := scenario.Run(scenario.Config{
		Name: "bench", Seed: 5, Size: 100, K: 20, Staleness: 1,
		Traffic: true,
		Setup:   10 * time.Minute, Stabilize: time.Duration(b.N) * time.Minute,
		SnapshotInterval: time.Hour * 24, SampleFraction: 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Network.Sent)/float64(b.N), "msgs/min")
}
