package kadre

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"kadre/internal/maxflow"
	"kadre/internal/scenario"
)

// benchJSONOut enables the bench-trajectory mode: when set,
// TestBenchTrajectory runs the core benchmarks and writes their results
// as JSON. The value is either a directory (the file is named
// BENCH_<date>.json inside it) or an explicit .json path.
//
//	go test -run TestBenchTrajectory -benchtime 1x . -args -benchjson .
//
// CI runs this at -benchtime=1x as a smoke test; developers seeding a
// trajectory point should use the default benchtime for stable numbers
// and commit the resulting BENCH_<date>.json.
var benchJSONOut = flag.String("benchjson", "", "write bench-trajectory JSON to this directory or .json path")

// benchTrajectoryEntry is one benchmark's measurement in the trajectory
// file. Only rate quantities are recorded — iteration counts depend on
// benchtime and are reported for context, not comparison.
type benchTrajectoryEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchTrajectoryFile is the BENCH_<date>.json document.
type benchTrajectoryFile struct {
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Scale      string                 `json:"scale"`
	Benchmarks []benchTrajectoryEntry `json:"benchmarks"`
}

// TestBenchTrajectory seeds the performance trajectory: it runs the
// snapshot-analysis benchmarks, both max-flow algorithm benchmarks, and
// one figure regeneration at tiny scale, then writes ns/op and allocs/op
// to BENCH_<date>.json. Skipped unless -benchjson is set, so the regular
// test suite stays benchmark-free.
func TestBenchTrajectory(t *testing.T) {
	if *benchJSONOut == "" {
		t.Skip("bench trajectory disabled; pass -args -benchjson <dir|file.json> to enable")
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SnapshotAnalysis", BenchmarkSnapshotAnalysis},
		{"SnapshotAnalysisFused", BenchmarkSnapshotAnalysisFused},
		{"MaxflowAlgorithms/dinic", maxflowAlgoBench(maxflow.Dinic)},
		{"MaxflowAlgorithms/push-relabel", maxflowAlgoBench(maxflow.PushRelabel)},
		{"MaxflowAlgorithms/hao-orlin", maxflowAlgoBench(maxflow.HaoOrlin)},
		{"ChurnSequence/rebind-haoorlin", churnSequenceBench(true, maxflow.HaoOrlin)},
		{"ChurnSequence/bind-pushrelabel", churnSequenceBench(false, maxflow.PushRelabel)},
		{"ChurnSequence/members-rebind-haoorlin", memberChurnSequenceBench(true, maxflow.HaoOrlin)},
		{"ChurnSequence/members-bind-pushrelabel", memberChurnSequenceBench(false, maxflow.PushRelabel)},
		{"Figure2SimA", func(b *testing.B) { benchFigure(b, scenario.Scale.Figure2) }},
	}
	doc := benchTrajectoryFile{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      "tiny",
	}
	for _, bench := range benches {
		res := testing.Benchmark(bench.fn)
		if res.N == 0 {
			t.Fatalf("benchmark %s did not run (failed inside testing.Benchmark?)", bench.name)
		}
		doc.Benchmarks = append(doc.Benchmarks, benchTrajectoryEntry{
			Name:        bench.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		})
		t.Logf("%s: %.0f ns/op, %d allocs/op (%d iterations)",
			bench.name, float64(res.T.Nanoseconds())/float64(res.N), res.AllocsPerOp(), res.N)
	}

	path := *benchJSONOut
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		path = filepath.Join(path, fmt.Sprintf("BENCH_%s.json", doc.Date))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
