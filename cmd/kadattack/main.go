// Command kadattack runs the adversarial node-removal experiments: every
// requested strategy attacks the same seeded network (identical topology
// and traffic until the attack window opens), and the output compares how
// fast each strategy degrades the paper's resilience metrics — minimum
// and average vertex connectivity, and the largest-SCC fraction — per
// node removed.
//
// Strategies (see internal/attack):
//
//	random   uniformly chosen victims: the baseline tying back to the
//	         paper's random churn, but on the adversary's schedule
//	degree   highest-degree victims (out+in in the latest snapshot)
//	cutset   victims on a minimum vertex cut of the latest snapshot —
//	         the adversary the paper's Equation 2 reasons about
//	eclipse  victims closest by XOR distance to a target identifier,
//	         erasing a keyspace region
//
// Runs execute on the parallel sweep engine with seed replication, so
// attack curves carry cross-rep confidence intervals like every other
// experiment. Every run is deterministic in its seed and the CSV/JSON
// artefacts exclude wall-clock data and the worker count, so the same
// invocation produces byte-identical files for any -jobs value.
//
// Flags:
//
//	-scale s         paper, reduced, tiny (default reduced)
//	-scenario f      scenario spec file (JSON) whose runs carry attack
//	                 blocks; replaces -strategies/-budget/-interval, and
//	                 the spec's "scale" field (when set) pins the scale
//	-strategies csv  comma-separated strategy list (default all four)
//	-seed n          base seed (default 1)
//	-reps r          seed replications per strategy (default 1)
//	-jobs j          concurrent runs; 0 means GOMAXPROCS (default 0)
//	-budget n        total removals per run (default: half the network)
//	-interval d      strike interval (default: attack window / 8)
//	-csv dir         write per-strategy degradation CSVs
//	-json dir        write one JSON document (attack.json)
//	-checkpoint dir  persist per-run results; resume skips finished runs
//	-max-dead-frac f re-densify analysis arc stores above this dead
//	                 fraction; <= 0 disables (default 0.5)
//	-max-slot-slack f compact slot tables above this vacancy/live ratio;
//	                 <= 0 disables (default 0.5)
//	-quiet           suppress progress lines
//
// Examples:
//
//	kadattack -scale tiny
//	kadattack -scale tiny -strategies random,degree,cutset,eclipse
//	kadattack -scale reduced -reps 5 -csv out/ -json out/
//	kadattack -scale paper -reps 3 -checkpoint ckpt/ -json out/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kadre/internal/attack"
	"kadre/internal/connectivity"
	"kadre/internal/report"
	"kadre/internal/scenario"
	"kadre/internal/sweep"
	"kadre/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kadattack:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("kadattack", flag.ContinueOnError)
	var (
		scaleName  = fs.String("scale", "reduced", "scale: paper, reduced, tiny")
		scenFile   = fs.String("scenario", "", "scenario spec file (JSON) with attack-enabled runs; replaces -strategies/-budget/-interval")
		strategies = fs.String("strategies", "random,degree,cutset,eclipse", "comma-separated attack strategies")
		seed       = fs.Int64("seed", 1, "base seed")
		reps       = fs.Int("reps", 1, "seed replications per strategy")
		jobs       = fs.Int("jobs", 0, "concurrent runs (0 = GOMAXPROCS)")
		budget     = fs.Int("budget", 0, "total removals per run (0 = half the network)")
		interval   = fs.Duration("interval", 0, "strike interval (0 = attack window / 8)")
		csvDir     = fs.String("csv", "", "directory for degradation CSVs")
		jsonDir    = fs.String("json", "", "directory for the JSON document")
		ckptDir    = fs.String("checkpoint", "", "directory for per-run checkpoints (resume support)")
		deadFrac   = fs.Float64("max-dead-frac", 0.5, "re-densify analysis arc stores above this dead fraction (<= 0 disables)")
		slotSlack  = fs.Float64("max-slot-slack", 0.5, "compact slot tables above this vacancy/live ratio (<= 0 disables)")
		quiet      = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d must be >= 1", *reps)
	}
	if *jobs < 0 {
		return fmt.Errorf("-jobs %d must be >= 0", *jobs)
	}
	if *budget < 0 {
		return fmt.Errorf("-budget %d must be >= 0", *budget)
	}
	scale, err := scenario.ScaleByName(*scaleName)
	if err != nil {
		return err
	}

	var exp scenario.Experiment
	if *scenFile != "" {
		// A scenario spec fully defines the attack runs: the spec's own
		// attack blocks win over -strategies/-budget/-interval.
		if *strategies != "random,degree,cutset,eclipse" || *budget > 0 || *interval > 0 {
			return fmt.Errorf("-scenario is mutually exclusive with -strategies, -budget and -interval (the spec defines the attacks)")
		}
		sp, err := workload.Load(*scenFile)
		if err != nil {
			return err
		}
		if sp.Scale != "" {
			if scale, err = scenario.ScaleByName(sp.Scale); err != nil {
				return fmt.Errorf("scenario %s: %w", *scenFile, err)
			}
		}
		if exp, err = scenario.FromSpec(sp, scale, *seed); err != nil {
			return fmt.Errorf("scenario %s: %w", *scenFile, err)
		}
		for i := range exp.Configs {
			cfg := &exp.Configs[i]
			if !cfg.Attack.Enabled() {
				return fmt.Errorf("scenario %s: run %q has no attack block; kadattack needs attack-enabled runs (use kadsweep for plain scenarios)", *scenFile, cfg.Name)
			}
			cfg.Governance = connectivity.PolicyFromKnobs(*deadFrac, *slotSlack)
		}
	} else {
		strats, err := attack.ParseStrategies(*strategies)
		if err != nil {
			return err
		}
		exp = scale.AttackExperiment(*seed, strats)
		phase, _ := scale.AttackPhase()
		for i := range exp.Configs {
			cfg := &exp.Configs[i]
			// The governance knobs cover both the measurement pipeline and the
			// cutset adversary's recon engine (inherited by the defaulting).
			cfg.Governance = connectivity.PolicyFromKnobs(*deadFrac, *slotSlack)
			if *interval > 0 {
				cfg.Attack.Interval = *interval
			}
			if *budget > 0 {
				cfg.Attack.Budget = *budget
			}
			if *interval > 0 || *budget > 0 {
				// Re-spread the effective budget over the strikes that
				// actually fit the window at the effective interval.
				cfg.Attack.Kills = scenario.AttackKills(cfg.Attack.Budget, phase, cfg.Attack.Interval)
			}
		}
	}

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	opts := sweep.Options{Reps: *reps, Jobs: *jobs}
	if *ckptDir != "" {
		if opts.Checkpoint, err = sweep.NewCheckpointer(*ckptDir); err != nil {
			return err
		}
	}
	if !*quiet {
		opts.Progress = func(ev sweep.Event) {
			status := fmt.Sprintf("%v", ev.Elapsed.Round(time.Millisecond))
			if ev.Cached {
				status = "checkpoint"
			}
			if ev.Err != nil {
				status = "FAILED: " + ev.Err.Error()
			}
			fmt.Fprintf(stdout, "  [%d/%d] %s rep %d seed %d (%s)\n",
				ev.Done, ev.Total, ev.Name, ev.Rep, ev.Seed, status)
		}
	}

	fmt.Fprintf(stdout, "=== attack: %s (scale %s, %d strategies x %d reps) ===\n",
		exp.Title, scale.Name, len(exp.Configs), *reps)
	sets, err := sweep.RunExperiment(exp, opts)
	if err != nil {
		return err
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, sets); err != nil {
			return err
		}
	}
	if *jsonDir != "" {
		// Jobs is deliberately left out of the metadata: the document must
		// be byte-identical for every -jobs value.
		f, err := os.Create(filepath.Join(*jsonDir, "attack.json"))
		if err != nil {
			return err
		}
		meta := sweep.JSONMeta{Experiment: exp.ID, Title: exp.Title, Scale: scale.Name}
		if err := sweep.WriteJSON(f, meta, sets); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	return render(stdout, exp, *reps, sets)
}

func render(w io.Writer, exp scenario.Experiment, reps int, sets []*sweep.RunSet) error {
	if reps > 1 {
		if err := report.AggDegradationChart(w, exp.Title+" — min connectivity vs removed (mean of reps)", sets, 14); err != nil {
			return err
		}
		fmt.Fprintln(w)
		header, rows := report.AttackTableReps(sets)
		fmt.Fprintln(w, "Attack summary (cross-replication means)")
		return report.WriteTable(w, header, rows)
	}
	results := make([]*scenario.Result, len(sets))
	for i, rs := range sets {
		results[i] = rs.Reps[0]
	}
	if err := report.DegradationChart(w, exp.Title+" — minimum connectivity", results, 14); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.SCCDegradationChart(w, exp.Title+" — largest-SCC fraction", results, 14); err != nil {
		return err
	}
	fmt.Fprintln(w)
	header, rows := report.AttackTable(results)
	fmt.Fprintln(w, "Attack summary")
	if err := report.WriteTable(w, header, rows); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "\n%s\n", r.Config.Name)
		header, rows := report.AttackSnapshotRows(r)
		if err := report.WriteTable(w, header, rows); err != nil {
			return err
		}
	}
	return nil
}

// csvName flattens a run name ("Attack/cutset") into a file name.
func csvName(name string) string {
	return strings.NewReplacer("/", "_", "=", "").Replace(name)
}

// writeCSVs emits one degradation CSV per replication (rep 0 keeps the
// plain name) and a cross-strategy summary.
func writeCSVs(dir string, sets []*sweep.RunSet) error {
	for _, rs := range sets {
		for rep, r := range rs.Reps {
			name := csvName(rs.Config.Name)
			if rep > 0 {
				name = fmt.Sprintf("%s_r%d", name, rep)
			}
			if err := writeDegradationCSV(filepath.Join(dir, name+".csv"), r); err != nil {
				return err
			}
		}
	}
	return writeSummaryCSV(filepath.Join(dir, "attack_summary.csv"), sets)
}

func writeDegradationCSV(path string, r *scenario.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "t_min,removed,n,edges,min_conn,avg_conn,scc_frac"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(f, "%.0f,%d,%d,%d,%d,%.3f,%.4f\n",
			p.Time.Minutes(), p.Removed, p.N, p.Edges, p.Min, p.Avg, p.SCC); err != nil {
			return err
		}
	}
	return f.Close()
}

func writeSummaryCSV(path string, sets []*sweep.RunSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "strategy,reps,removed_mean,churn_window_min_mean,final_min_mean,final_scc_mean"); err != nil {
		return err
	}
	for _, rs := range sets {
		var removed, finalMin, finalSCC, winMean float64
		for _, r := range rs.Reps {
			removed += float64(r.AttackRemoved)
			winMean += r.ChurnWindowSummary().Mean
			if len(r.Points) > 0 {
				finalMin += float64(r.Points[len(r.Points)-1].Min)
				finalSCC += r.Points[len(r.Points)-1].SCC
			}
		}
		n := float64(len(rs.Reps))
		if _, err := fmt.Fprintf(f, "%s,%d,%.1f,%.3f,%.2f,%.4f\n",
			rs.Config.Attack.Strategy, len(rs.Reps), removed/n, winMean/n, finalMin/n, finalSCC/n); err != nil {
			return err
		}
	}
	return f.Close()
}
