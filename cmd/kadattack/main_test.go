package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kadre/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runDir invokes the CLI writing CSV and JSON artefacts into a fresh dir.
func runDir(t *testing.T, dir string, extra ...string) string {
	t.Helper()
	var buf bytes.Buffer
	args := append([]string{"-scale", "tiny", "-quiet", "-csv", dir, "-json", dir}, extra...)
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestAttackEndToEnd is the acceptance run: all four strategies at tiny
// scale must produce byte-identical artefacts across -jobs values, and
// the cutset adversary must degrade connectivity at least as fast as the
// random baseline.
func TestAttackEndToEnd(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	out := runDir(t, dir1, "-jobs", "1")
	runDir(t, dir2, "-jobs", "8")

	// Rendering sanity: degradation axes and the summary table.
	for _, want := range []string{"removed", "Attack summary", "minimum connectivity", "largest-SCC fraction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// Byte-identical artefacts regardless of worker count.
	files, err := filepath.Glob(filepath.Join(dir1, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 { // 4 per-strategy CSVs + summary CSV + attack.json
		t.Fatalf("got %d artefacts, want 6: %v", len(files), files)
	}
	for _, f1 := range files {
		f2 := filepath.Join(dir2, filepath.Base(f1))
		b1, err := os.ReadFile(f1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(f2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s differs between -jobs 1 and -jobs 8", filepath.Base(f1))
		}
	}

	// Parse the JSON document and compare strategies on the attack
	// window: the cutset adversary's min-connectivity area must not
	// exceed the random baseline's.
	data, err := os.ReadFile(filepath.Join(dir1, "attack.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc sweep.JSONFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("got %d runs, want 4 strategies", len(doc.Runs))
	}
	area := map[string]float64{}
	for _, run := range doc.Runs {
		strategy := strings.TrimPrefix(run.Name, "Attack/")
		if run.Attack == "" {
			t.Fatalf("run %q missing attack description", run.Name)
		}
		rep := run.Reps[0]
		if rep.AttackRemoved == 0 || len(rep.Victims) != rep.AttackRemoved {
			t.Fatalf("run %q: removed %d, victim log %d", run.Name, rep.AttackRemoved, len(rep.Victims))
		}
		attacked := false
		for _, p := range rep.Points {
			if p.Removed > 0 {
				attacked = true
				area[strategy] += float64(p.Min)
			}
		}
		if !attacked {
			t.Fatalf("run %q has no post-attack snapshot", run.Name)
		}
	}
	if area["cutset"] > area["random"] {
		t.Fatalf("cutset min-connectivity area %.1f exceeds random baseline %.1f — the targeted adversary must degrade at least as fast",
			area["cutset"], area["random"])
	}
}

// TestGoldenTinyAttack pins the numeric output of one tiny cutset run
// byte for byte: simulator or analyzer refactors that shift any measured
// value fail here first. Regenerate with: go test ./cmd/kadattack -run
// Golden -update
func TestGoldenTinyAttack(t *testing.T) {
	dir := t.TempDir()
	runDir(t, dir, "-strategies", "cutset", "-jobs", "2")
	got, err := os.ReadFile(filepath.Join(dir, "attack.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "attack_tiny_cutset.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("tiny cutset attack run drifted from golden fixture %s (run with -update to regenerate after intentional changes)", golden)
	}
}

// TestBudgetIntervalOverride pins the flag arithmetic: a coarse custom
// interval leaves only 3 strikes in the tiny window, and the kill count
// must be re-spread so the requested budget is still exhausted.
func TestBudgetIntervalOverride(t *testing.T) {
	dir := t.TempDir()
	runDir(t, dir, "-strategies", "degree", "-budget", "20", "-interval", "15m")
	data, err := os.ReadFile(filepath.Join(dir, "attack.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc sweep.JSONFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if got := doc.Runs[0].Reps[0].AttackRemoved; got != 20 {
		t.Fatalf("removed %d, want the full -budget 20 despite the 15m -interval", got)
	}
}

// TestCheckpointResumeFlag exercises the -checkpoint flag end to end: a
// second invocation replays every run from disk.
func TestCheckpointResumeFlag(t *testing.T) {
	ckpt := t.TempDir()
	var first, second bytes.Buffer
	args := []string{"-scale", "tiny", "-strategies", "random,degree", "-checkpoint", ckpt}
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(first.String(), "(checkpoint)") {
		t.Fatal("first run claims checkpoint replays")
	}
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(second.String(), "(checkpoint)"); got != 2 {
		t.Fatalf("second run replayed %d runs from checkpoints, want 2:\n%s", got, second.String())
	}
	// Replayed rendering must match the fresh rendering (progress lines
	// aside, which carry wall-clock timings).
	trim := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "  [") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if trim(first.String()) != trim(second.String()) {
		t.Fatalf("resumed rendering differs:\n--- fresh ---\n%s\n--- resumed ---\n%s", first.String(), second.String())
	}
}

func TestRunErrors(t *testing.T) {
	discard := &bytes.Buffer{}
	for _, bad := range [][]string{
		{"-scale", "galactic"},
		{"-strategies", "random,klingon"},
		{"-reps", "0"},
		{"-jobs", "-1"},
		{"-budget", "-5"},
	} {
		if err := run(bad, discard); err == nil {
			t.Errorf("args %v should fail", bad)
		}
	}
}
