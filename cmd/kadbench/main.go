// Command kadbench diffs two points of the repository's performance
// trajectory (the BENCH_<date>.json files written by the -benchjson test
// mode), rendering a benchstat-style old-vs-new table of ns/op and
// allocs/op and optionally failing on regressions.
//
// Usage:
//
//	kadbench [-max-regress PCT] OLD.json NEW.json
//
// With -max-regress set to a positive percentage, kadbench exits nonzero
// when any benchmark present in both files regressed its ns/op by more
// than PCT percent — the CI gate for the trajectory. Without it the
// table is informational (CI's -benchtime=1x smoke numbers are too noisy
// to gate on).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
)

// benchFile mirrors the benchTrajectoryFile schema written by the
// -benchjson test mode.
type benchFile struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Scale      string       `json:"scale"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kadbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kadbench", flag.ContinueOnError)
	fs.SetOutput(w)
	maxRegress := fs.Float64("max-regress", 0,
		"fail when any common benchmark's ns/op regresses by more than this percentage (0 disables the gate)")
	fs.Usage = func() {
		fmt.Fprintln(w, "usage: kadbench [-max-regress PCT] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("want exactly two trajectory files, got %d", fs.NArg())
	}
	oldDoc, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "old: %s (%s, %s, gomaxprocs %d)\n", fs.Arg(0), oldDoc.Date, oldDoc.GoVersion, oldDoc.GOMAXPROCS)
	fmt.Fprintf(w, "new: %s (%s, %s, gomaxprocs %d)\n\n", fs.Arg(1), newDoc.Date, newDoc.GoVersion, newDoc.GOMAXPROCS)

	oldBy := map[string]benchEntry{}
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]benchEntry{}
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}

	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\t")
	var regressed []string
	// Old-file order first (stable diff), then additions in new-file order.
	for _, ob := range oldDoc.Benchmarks {
		nb, ok := newBy[ob.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%s\t\tremoved\t%d\t\t\n", ob.Name, fmtNs(ob.NsPerOp), ob.AllocsPerOp)
			continue
		}
		delta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%+.2f%%\t%d\t%d\t\n",
			ob.Name, fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta, ob.AllocsPerOp, nb.AllocsPerOp)
		if *maxRegress > 0 && delta > *maxRegress {
			regressed = append(regressed, fmt.Sprintf("%s: %+.2f%% ns/op (limit %+.2f%%)", ob.Name, delta, *maxRegress))
		}
	}
	for _, nb := range newDoc.Benchmarks {
		if _, ok := oldBy[nb.Name]; !ok {
			fmt.Fprintf(tw, "%s\t\t%s\tadded\t\t%d\t\n", nb.Name, fmtNs(nb.NsPerOp), nb.AllocsPerOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(regressed) > 0 {
		fmt.Fprintln(w)
		for _, r := range regressed {
			fmt.Fprintln(w, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2f%%", len(regressed), *maxRegress)
	}
	return nil
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in trajectory file", path)
	}
	return &doc, nil
}

// pctDelta returns the ns/op change in percent (positive = slower).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// fmtNs renders nanoseconds compactly (benchstat style).
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}
