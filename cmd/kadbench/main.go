// Command kadbench diffs two points of the repository's performance
// trajectory (the BENCH_<date>.json files written by the -benchjson test
// mode), rendering a benchstat-style old-vs-new table of ns/op and
// allocs/op and optionally failing on regressions. With three or more
// files — or -trend — it renders the whole trajectory instead: one row
// per benchmark with a sparkline of ns/op across the given points and
// the first-to-last delta, so the committed BENCH_*.json history reads
// as a table.
//
// Usage:
//
//	kadbench [-max-regress PCT] [-ratio=false] OLD.json NEW.json
//	kadbench -trend BENCH_*.json
//
// With -max-regress set to a positive percentage, kadbench exits nonzero
// when any benchmark present in both files regressed by more than PCT
// percent — the CI gate for the trajectory. Without it the table is
// informational (CI's -benchtime=1x smoke numbers are too noisy to gate
// on).
//
// By default deltas are host-normalized: each file's ns/op figures are
// divided by that file's geometric mean over the benchmarks common to
// both files, so two trajectory points recorded on differently powered
// machines still compare (a uniformly 2x-slower host raises every raw
// delta by +100% but leaves every normalized delta at zero). The gate
// fires on normalized deltas; -ratio=false restores raw per-benchmark
// deltas for same-host comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"
)

// benchFile mirrors the benchTrajectoryFile schema written by the
// -benchjson test mode.
type benchFile struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Scale      string       `json:"scale"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kadbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("kadbench", flag.ContinueOnError)
	fs.SetOutput(w)
	maxRegress := fs.Float64("max-regress", 0,
		"fail when any common benchmark regresses by more than this percentage (0 disables the gate)")
	ratio := fs.Bool("ratio", true,
		"normalize each file by its geometric mean over the common benchmarks so host speed cancels out of the deltas and the gate (-ratio=false for raw deltas)")
	trend := fs.Bool("trend", false,
		"render a sparkline trend table across all given trajectory files instead of a two-point diff")
	fs.Usage = func() {
		fmt.Fprintln(w, "usage: kadbench [-max-regress PCT] [-ratio=false] OLD.json NEW.json")
		fmt.Fprintln(w, "       kadbench -trend FILE.json...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trend || fs.NArg() > 2 {
		if *maxRegress > 0 {
			// The trend table is informational; silently dropping the gate
			// (e.g. because a glob matched one extra file) must not pass CI.
			return fmt.Errorf("-max-regress gates a two-file diff, not a trend table; pass exactly OLD.json NEW.json")
		}
		if fs.NArg() < 1 {
			// A glob that matched nothing expands to zero arguments; say so
			// instead of rendering an empty table.
			fs.Usage()
			return fmt.Errorf("trend mode wants at least one trajectory file, got none")
		}
		return runTrend(fs.Args(), w)
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("want exactly two trajectory files, got %d", fs.NArg())
	}
	oldDoc, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "old: %s (%s, %s, gomaxprocs %d)\n", fs.Arg(0), oldDoc.Date, oldDoc.GoVersion, oldDoc.GOMAXPROCS)
	fmt.Fprintf(w, "new: %s (%s, %s, gomaxprocs %d)\n\n", fs.Arg(1), newDoc.Date, newDoc.GoVersion, newDoc.GOMAXPROCS)

	oldBy := map[string]benchEntry{}
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]benchEntry{}
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}

	// The benchmarks measurable in both files anchor the normalization:
	// each file's geometric mean over this common set estimates the host's
	// overall speed, and dividing it out leaves only per-benchmark
	// movement relative to the file's own trajectory.
	var common []string
	for _, ob := range oldDoc.Benchmarks {
		if nb, ok := newBy[ob.Name]; ok && ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			common = append(common, ob.Name)
		}
	}
	hostFactor := 1.0
	if *ratio && len(common) > 0 {
		oldGM := geomeanNs(oldBy, common)
		newGM := geomeanNs(newBy, common)
		hostFactor = newGM / oldGM
		fmt.Fprintf(w, "normalization: geomean %s -> %s over %d common benchmarks (host factor %+.2f%%)\n\n",
			fmtNs(oldGM), fmtNs(newGM), len(common), (hostFactor-1)*100)
	}

	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	if *ratio {
		fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tnorm delta\told allocs\tnew allocs\t")
	} else {
		fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\t")
	}
	var regressed []string
	// Old-file order first (stable diff), then additions in new-file order.
	for _, ob := range oldDoc.Benchmarks {
		nb, ok := newBy[ob.Name]
		if !ok {
			if *ratio {
				fmt.Fprintf(tw, "%s\t%s\t\tremoved\t\t%d\t\t\n", ob.Name, fmtNs(ob.NsPerOp), ob.AllocsPerOp)
			} else {
				fmt.Fprintf(tw, "%s\t%s\t\tremoved\t%d\t\t\n", ob.Name, fmtNs(ob.NsPerOp), ob.AllocsPerOp)
			}
			continue
		}
		delta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		gateDelta := delta
		unit := "ns/op"
		if *ratio {
			norm := pctDelta(ob.NsPerOp*hostFactor, nb.NsPerOp)
			gateDelta, unit = norm, "normalized ns/op"
			fmt.Fprintf(tw, "%s\t%s\t%s\t%+.2f%%\t%+.2f%%\t%d\t%d\t\n",
				ob.Name, fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta, norm, ob.AllocsPerOp, nb.AllocsPerOp)
		} else {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%+.2f%%\t%d\t%d\t\n",
				ob.Name, fmtNs(ob.NsPerOp), fmtNs(nb.NsPerOp), delta, ob.AllocsPerOp, nb.AllocsPerOp)
		}
		if *maxRegress > 0 && gateDelta > *maxRegress {
			regressed = append(regressed, fmt.Sprintf("%s: %+.2f%% %s (limit %+.2f%%)", ob.Name, gateDelta, unit, *maxRegress))
		}
	}
	for _, nb := range newDoc.Benchmarks {
		if _, ok := oldBy[nb.Name]; !ok {
			if *ratio {
				fmt.Fprintf(tw, "%s\t\t%s\tadded\t\t\t%d\t\n", nb.Name, fmtNs(nb.NsPerOp), nb.AllocsPerOp)
			} else {
				fmt.Fprintf(tw, "%s\t\t%s\tadded\t\t%d\t\n", nb.Name, fmtNs(nb.NsPerOp), nb.AllocsPerOp)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(regressed) > 0 {
		fmt.Fprintln(w)
		for _, r := range regressed {
			fmt.Fprintln(w, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2f%%", len(regressed), *maxRegress)
	}
	return nil
}

// sparkRunes are the eight sparkline levels, lowest to highest ns/op.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// runTrend renders the trajectory table: one row per benchmark (ordered
// by first appearance across the files), a sparkline of its ns/op over
// the points, the first and latest values, and the first-to-last delta.
// Points where a benchmark is absent render as '·' in the sparkline.
func runTrend(paths []string, w io.Writer) error {
	docs := make([]*benchFile, len(paths))
	for i, p := range paths {
		d, err := load(p)
		if err != nil {
			return err
		}
		docs[i] = d
	}
	if len(docs) == 1 {
		fmt.Fprintf(w, "trajectory: 1 point, %s (%s)\n\n", paths[0], docs[0].Date)
	} else {
		fmt.Fprintf(w, "trajectory: %d points, %s (%s) -> %s (%s)\n\n",
			len(docs), paths[0], docs[0].Date, paths[len(paths)-1], docs[len(docs)-1].Date)
	}

	var names []string
	seen := map[string]bool{}
	for _, d := range docs {
		for _, b := range d.Benchmarks {
			if !seen[b.Name] {
				seen[b.Name] = true
				names = append(names, b.Name)
			}
		}
	}

	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\ttrend\tfirst ns/op\tlatest ns/op\tdelta\t")
	for _, name := range names {
		series := make([]float64, len(docs))
		present := make([]bool, len(docs))
		for i, d := range docs {
			for _, b := range d.Benchmarks {
				if b.Name == name {
					series[i], present[i] = b.NsPerOp, true
					break
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t\n",
			name, sparkline(series, present), firstVal(series, present),
			lastVal(series, present), trendDelta(series, present))
	}
	return tw.Flush()
}

// sparkline maps the present points onto the eight spark levels,
// normalized to the benchmark's own min..max range (a flat series
// renders at the lowest level).
func sparkline(series []float64, present []bool) string {
	lo, hi := 0.0, 0.0
	first := true
	for i, v := range series {
		if !present[i] {
			continue
		}
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	var out []rune
	for i, v := range series {
		if !present[i] {
			out = append(out, '·')
			continue
		}
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out = append(out, sparkRunes[level])
	}
	return string(out)
}

func firstVal(series []float64, present []bool) string {
	for i := range series {
		if present[i] {
			return fmtNs(series[i])
		}
	}
	return "-"
}

func lastVal(series []float64, present []bool) string {
	for i := len(series) - 1; i >= 0; i-- {
		if present[i] {
			return fmtNs(series[i])
		}
	}
	return "-"
}

// trendDelta reports the percentage change from the first present point
// to the last (negative = faster).
func trendDelta(series []float64, present []bool) string {
	fi, li := -1, -1
	for i := range series {
		if present[i] {
			if fi < 0 {
				fi = i
			}
			li = i
		}
	}
	if fi < 0 || fi == li {
		return "-"
	}
	return fmt.Sprintf("%+.2f%%", pctDelta(series[fi], series[li]))
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in trajectory file", path)
	}
	return &doc, nil
}

// geomeanNs returns the geometric mean ns/op of the named benchmarks
// (every name must be present in the map with a positive ns/op).
func geomeanNs(by map[string]benchEntry, names []string) float64 {
	sum := 0.0
	for _, n := range names {
		sum += math.Log(by[n].NsPerOp)
	}
	return math.Exp(sum / float64(len(names)))
}

// pctDelta returns the ns/op change in percent (positive = slower).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// fmtNs renders nanoseconds compactly (benchstat style).
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}
