package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrajectory writes a canned BENCH file and returns its path.
func writeTrajectory(t *testing.T, dir, name string, entries []benchEntry) string {
	t.Helper()
	doc := benchFile{Date: "2026-01-01", GoVersion: "go1.24.0", GOMAXPROCS: 4, Scale: "tiny", Benchmarks: entries}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func canned(t *testing.T) (old, new string) {
	dir := t.TempDir()
	old = writeTrajectory(t, dir, "old.json", []benchEntry{
		{Name: "SnapshotAnalysis", NsPerOp: 100e6, AllocsPerOp: 3, Iterations: 10},
		{Name: "MaxflowAlgorithms/dinic", NsPerOp: 250e3, AllocsPerOp: 0, Iterations: 5000},
		{Name: "Legacy", NsPerOp: 5e3, AllocsPerOp: 1, Iterations: 100},
	})
	new = writeTrajectory(t, dir, "new.json", []benchEntry{
		{Name: "SnapshotAnalysis", NsPerOp: 40e6, AllocsPerOp: 3, Iterations: 25},           // -60%: improvement
		{Name: "MaxflowAlgorithms/dinic", NsPerOp: 300e3, AllocsPerOp: 0, Iterations: 4000}, // +20%: regression
		{Name: "ChurnSequence/rebind", NsPerOp: 12e6, AllocsPerOp: 6, Iterations: 80},       // added
	})
	return old, new
}

func TestDiffTable(t *testing.T) {
	old, new := canned(t)
	var buf bytes.Buffer
	if err := run([]string{old, new}, &buf); err != nil {
		t.Fatalf("informational diff failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"SnapshotAnalysis", "-60.00%",
		"MaxflowAlgorithms/dinic", "+20.00%",
		"Legacy", "removed",
		"ChurnSequence/rebind", "added",
		"100ms", "40ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
}

func TestRegressionGate(t *testing.T) {
	old, new := canned(t)
	var buf bytes.Buffer
	// Raw-delta gating (-ratio=false): 25% tolerance lets the +20% dinic
	// regression pass.
	if err := run([]string{"-ratio=false", "-max-regress", "25", old, new}, &buf); err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, buf.String())
	}
	// 10% tolerance: it fails, naming the offender.
	buf.Reset()
	err := run([]string{"-ratio=false", "-max-regress", "10", old, new}, &buf)
	if err == nil {
		t.Fatalf("10%% gate did not fail:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION: MaxflowAlgorithms/dinic") {
		t.Fatalf("gate output does not name the regressed benchmark:\n%s", buf.String())
	}
	// The gate never fires on removed/added benchmarks or improvements.
	if strings.Contains(buf.String(), "REGRESSION: SnapshotAnalysis") ||
		strings.Contains(buf.String(), "REGRESSION: Legacy") ||
		strings.Contains(buf.String(), "REGRESSION: ChurnSequence/rebind") {
		t.Fatalf("gate fired on a non-regression:\n%s", buf.String())
	}
}

// TestRatioGateIgnoresHostSpeed pins the point of the default
// normalization: a trajectory point recorded on a uniformly 2x-slower
// machine shows +100% raw deltas everywhere, but the normalized gate
// only fires on the one benchmark that regressed relative to the rest
// of the file.
func TestRatioGateIgnoresHostSpeed(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "fast-host.json", []benchEntry{
		{Name: "SnapshotAnalysis", NsPerOp: 100e6, AllocsPerOp: 3},
		{Name: "MaxflowAlgorithms/dinic", NsPerOp: 250e3},
		{Name: "ChurnSequence/rebind", NsPerOp: 12e6, AllocsPerOp: 6},
	})
	// 2x slower across the board, plus a genuine extra 30% on rebind.
	new := writeTrajectory(t, dir, "slow-host.json", []benchEntry{
		{Name: "SnapshotAnalysis", NsPerOp: 200e6, AllocsPerOp: 3},
		{Name: "MaxflowAlgorithms/dinic", NsPerOp: 500e3},
		{Name: "ChurnSequence/rebind", NsPerOp: 31.2e6, AllocsPerOp: 6},
	})

	// Raw gating drowns in the host change: every benchmark trips a 50% gate.
	var buf bytes.Buffer
	if err := run([]string{"-ratio=false", "-max-regress", "50", old, new}, &buf); err == nil {
		t.Fatalf("raw gate ignored a uniform 2x slowdown:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION: SnapshotAnalysis") {
		t.Fatalf("raw gate did not flag the uniformly slower benchmarks:\n%s", buf.String())
	}

	// Normalized gating: the geomean absorbs the host factor
	// ((2·2·2.6)^(1/3) ≈ 2.18x), the two uniform benchmarks land below
	// their old normalized position, and only rebind's +19% residual
	// trips a 10% gate.
	buf.Reset()
	err := run([]string{"-max-regress", "10", old, new}, &buf)
	if err == nil {
		t.Fatalf("normalized gate missed the real regression:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION: ChurnSequence/rebind") {
		t.Fatalf("normalized gate did not name the real regression:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION: SnapshotAnalysis") ||
		strings.Contains(out, "REGRESSION: MaxflowAlgorithms/dinic") {
		t.Fatalf("normalized gate fired on host speed, not benchmark movement:\n%s", out)
	}
	if !strings.Contains(out, "normalization: geomean") || !strings.Contains(out, "host factor") {
		t.Fatalf("normalization summary line missing:\n%s", out)
	}
	// And with the host factor divided out, a comfortable gate passes even
	// though every raw delta is around +100%.
	buf.Reset()
	if err := run([]string{"-max-regress", "25", old, new}, &buf); err != nil {
		t.Fatalf("normalized 25%% gate failed on a host change: %v\n%s", err, buf.String())
	}
}

func TestTrendTable(t *testing.T) {
	dir := t.TempDir()
	p1 := writeTrajectory(t, dir, "a.json", []benchEntry{
		{Name: "SnapshotAnalysis", NsPerOp: 100e6},
		{Name: "Legacy", NsPerOp: 5e3},
	})
	p2 := writeTrajectory(t, dir, "b.json", []benchEntry{
		{Name: "SnapshotAnalysis", NsPerOp: 60e6},
		{Name: "Legacy", NsPerOp: 5e3},
		{Name: "ChurnSequence/members-rebind-haoorlin", NsPerOp: 50e6},
	})
	p3 := writeTrajectory(t, dir, "c.json", []benchEntry{
		{Name: "SnapshotAnalysis", NsPerOp: 20e6},
		{Name: "ChurnSequence/members-rebind-haoorlin", NsPerOp: 45e6},
	})
	var buf bytes.Buffer
	// Three positional files flip into trend mode without the flag.
	if err := run([]string{p1, p2, p3}, &buf); err != nil {
		t.Fatalf("trend run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"trajectory: 3 points",
		"SnapshotAnalysis", "█▄▁", "-80.00%", // monotone improvement, full series
		"Legacy", "▁▁·", // flat then absent
		"ChurnSequence/members-rebind-haoorlin", "·█▁", "-10.00%", // appears at point 2
		"100ms", "20ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trend table missing %q:\n%s", want, out)
		}
	}
	// The explicit flag works with exactly two files too.
	buf.Reset()
	if err := run([]string{"-trend", p1, p2}, &buf); err != nil {
		t.Fatalf("two-point trend failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "trajectory: 2 points") {
		t.Fatalf("two-point trend not rendered:\n%s", buf.String())
	}
	// A single file renders a one-point trajectory (the state of the world
	// right after the first BENCH file is committed) instead of erroring.
	buf.Reset()
	if err := run([]string{"-trend", p1}, &buf); err != nil {
		t.Fatalf("single-file trend failed: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"trajectory: 1 point,", "SnapshotAnalysis"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("single-point trend missing %q:\n%s", want, buf.String())
		}
	}
	// A one-point series has no first-to-last movement: the delta column
	// renders "-", never a fabricated percentage.
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "SnapshotAnalysis") && !strings.HasSuffix(strings.TrimRight(line, " "), "-") {
			t.Fatalf("single-point delta is not '-': %q", line)
		}
	}
	// No files at all (an unmatched glob) is a clean error, not a panic or
	// an empty table.
	if err := run([]string{"-trend"}, &bytes.Buffer{}); err == nil {
		t.Fatal("zero-file trend should be rejected")
	}
	// A regression gate never silently degrades into an ungated trend —
	// three files with -max-regress is an error, not a sparkline.
	if err := run([]string{"-max-regress", "5", p1, p2, p3}, &bytes.Buffer{}); err == nil {
		t.Fatal("-max-regress with three files should be rejected, not bypass the gate")
	}
}

func TestTrendAgainstRealTrajectories(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) < 2 {
		t.Skipf("need two committed BENCH files, have %d", len(matches))
	}
	var buf bytes.Buffer
	if err := run(append([]string{"-trend"}, matches...), &buf); err != nil {
		t.Fatalf("trend over committed trajectories: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "SnapshotAnalysis") {
		t.Fatalf("no trend rendered:\n%s", buf.String())
	}
}

func TestBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeTrajectory(t, dir, "good.json", []benchEntry{{Name: "X", NsPerOp: 1}})
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{good}, &buf); err == nil {
		t.Fatal("one positional argument should be rejected")
	}
	if err := run([]string{good, filepath.Join(dir, "missing.json")}, &buf); err == nil {
		t.Fatal("missing file should be rejected")
	}
	if err := run([]string{good, empty}, &buf); err == nil {
		t.Fatal("empty trajectory should be rejected")
	}
}

// TestAgainstRealTrajectories smoke-diffs the repository's committed
// BENCH points, so the tool keeps parsing whatever the writer emits.
func TestAgainstRealTrajectories(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) < 2 {
		t.Skipf("need two committed BENCH files, have %d", len(matches))
	}
	var buf bytes.Buffer
	if err := run([]string{matches[0], matches[len(matches)-1]}, &buf); err != nil {
		t.Fatalf("diffing committed trajectories: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "benchmark") {
		t.Fatalf("no table rendered:\n%s", buf.String())
	}
}
