// Command kadconn computes the vertex connectivity of a persisted
// connectivity graph, playing the role of the paper's modified-HIPR
// cluster pipeline: it reads a snapshot (JSON, as written by kadsim) or a
// DIMACS max-flow problem, applies Even's vertex-splitting transformation,
// and reports kappa.
//
// Examples:
//
//	kadconn -in out/snapshot-000120m.json
//	kadconn -in out/snapshot-000120m.json -full -algo push-relabel
//	kadconn -in graph.dimacs -format dimacs
//	kadconn -in out/snapshot-000120m.json -emit-dimacs transformed.dimacs
package main

import (
	"flag"
	"fmt"
	"os"

	"kadre/internal/connectivity"
	"kadre/internal/graph"
	"kadre/internal/maxflow"
	"kadre/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kadconn:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kadconn", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input file (required)")
		format   = fs.String("format", "json", "input format: json (kadsim snapshot) or dimacs")
		algoName = fs.String("algo", "dinic", "max-flow algorithm: dinic, push-relabel, or hao-orlin")
		full     = fs.Bool("full", false, "full n(n-1) sweep instead of sampled sources")
		sampleC  = fs.Float64("c", connectivity.DefaultSampleFraction, "sampling fraction c (ignored with -full)")
		workers  = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		pairSpec = fs.String("pair", "", "compute kappa(v,w) for one pair, e.g. 3,17")
		emit     = fs.String("emit-dimacs", "", "write the Even-transformed graph as DIMACS to this file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	algo, err := maxflow.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}

	g, err := load(*in, *format)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, symmetry %.3f\n", g.N(), g.M(), g.SymmetryRatio())

	if *emit != "" {
		return emitDIMACS(*emit, g)
	}

	if *pairSpec != "" {
		var v, w int
		if _, err := fmt.Sscanf(*pairSpec, "%d,%d", &v, &w); err != nil {
			return fmt.Errorf("bad -pair %q: %w", *pairSpec, err)
		}
		kappa, err := connectivity.Pair(g, v, w, algo)
		if err != nil {
			return err
		}
		fmt.Printf("kappa(%d,%d) = %d  (node-disjoint paths; tolerates %d compromised nodes on this pair)\n",
			v, w, kappa, connectivity.Resilience(kappa))
		return nil
	}

	opts := connectivity.Options{
		Algorithm:      algo,
		SampleFraction: *sampleC,
		Workers:        *workers,
	}
	if *full {
		opts.SampleFraction = 1.0
	}
	analyzer, err := connectivity.NewAnalyzer(opts)
	if err != nil {
		return err
	}
	res := analyzer.Analyze(g)
	fmt.Printf("kappa(D) = %d over %d pairs from %d sources (avg pair connectivity %.2f)\n",
		res.Min, res.Pairs, res.Sources, res.Avg)
	if res.Complete {
		fmt.Println("graph is complete: kappa = n-1 by definition")
	}
	if res.MinPair[0] >= 0 {
		fmt.Printf("weakest pair: %d -> %d\n", res.MinPair[0], res.MinPair[1])
	}
	fmt.Printf("resilience r = %d (Equation 2: kappa > r >= a)\n", connectivity.Resilience(res.Min))
	return nil
}

func load(path, format string) (*graph.Digraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "json":
		s, err := snapshot.ReadJSON(f)
		if err != nil {
			return nil, err
		}
		return s.Graph, nil
	case "dimacs":
		prob, err := graph.ReadDIMACS(f)
		if err != nil {
			return nil, err
		}
		return prob.Graph, nil
	default:
		return nil, fmt.Errorf("unknown format %q (json, dimacs)", format)
	}
}

func emitDIMACS(path string, g *graph.Digraph) error {
	transformed := graph.EvenTransform(g)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Emit with one example pair (first non-adjacent ordered pair) so the
	// file is a complete max-flow problem; downstream tooling can swap in
	// other "c pair" lines.
	var pairs [][2]int
	for v := 0; v < g.N() && len(pairs) == 0; v++ {
		for w := 0; w < g.N(); w++ {
			if v != w && !g.HasEdge(v, w) {
				pairs = append(pairs, [2]int{graph.Out(v), graph.In(w)})
				break
			}
		}
	}
	if err := graph.WriteDIMACS(f, transformed, pairs...); err != nil {
		return err
	}
	fmt.Printf("wrote Even-transformed graph (%d vertices, %d edges) to %s\n",
		transformed.N(), transformed.M(), path)
	return nil
}
