package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"kadre/internal/eventsim"
	"kadre/internal/graph"
	"kadre/internal/kademlia"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
)

// writeTestSnapshot builds a small settled network and persists it.
func writeTestSnapshot(t *testing.T, path string) {
	t.Helper()
	sim := eventsim.New(3)
	net := simnet.New(sim, simnet.Config{})
	cfg := kademlia.Config{Bits: 64, K: 4, Alpha: 3, StalenessLimit: 1}
	var nodes []*kademlia.Node
	for i := 0; i < 20; i++ {
		n, err := kademlia.NewNode(cfg, simnet.Addr(i+1), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Contact(), nil); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunUntil(5 * time.Minute)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := snapshot.Capture(sim.Now(), nodes).WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnalyzeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	writeTestSnapshot(t, path)
	if err := run([]string{"-in", path, "-full"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-c", "0.2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-algo", "push-relabel", "-c", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPairMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	writeTestSnapshot(t, path)
	// Pair 0,1 may be adjacent; find a non-adjacent pair first.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := snapshot.ReadJSON(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	v, w := -1, -1
	for a := 0; a < s.N() && v < 0; a++ {
		for b := 0; b < s.N(); b++ {
			if a != b && !s.Graph.HasEdge(a, b) {
				v, w = a, b
				break
			}
		}
	}
	if v < 0 {
		t.Skip("snapshot graph is complete")
	}
	if err := run([]string{"-in", path, "-pair", intsCSV(v, w)}); err != nil {
		t.Fatal(err)
	}
}

func intsCSV(v, w int) string {
	return fmtInt(v) + "," + fmtInt(w)
}

func fmtInt(v int) string {
	if v == 0 {
		return "0"
	}
	digits := []byte{}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestRunEmitDIMACSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "snap.json")
	dimacsPath := filepath.Join(dir, "transformed.dimacs")
	writeTestSnapshot(t, jsonPath)
	if err := run([]string{"-in", jsonPath, "-emit-dimacs", dimacsPath}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dimacsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prob, err := graph.ReadDIMACS(f)
	if err != nil {
		t.Fatal(err)
	}
	// Even transform doubles the vertex count.
	if prob.Graph.N()%2 != 0 || prob.Graph.N() == 0 {
		t.Fatalf("transformed graph has %d vertices", prob.Graph.N())
	}
	// The DIMACS file itself is analyzable.
	if err := run([]string{"-in", dimacsPath, "-format", "dimacs", "-c", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -in should fail")
	}
	if err := run([]string{"-in", "/nonexistent/file.json"}); err == nil {
		t.Error("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	writeTestSnapshot(t, path)
	if err := run([]string{"-in", path, "-format", "yaml"}); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run([]string{"-in", path, "-algo", "simplex"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if err := run([]string{"-in", path, "-pair", "zz"}); err == nil {
		t.Error("bad pair spec should fail")
	}
}
