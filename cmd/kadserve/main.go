// Command kadserve is the long-running resilience-query service: a
// Kademlia resilience engine kept warm behind an HTTP API. Where the
// batch CLIs (kadsweep, kadattack) pay a full simulation per run,
// kadserve keeps every finished run's analysis state — the bound
// connectivity engine, slot table and final topology — resident in a
// shared LRU arena, so repeated or overlapping queries answer from
// memory without a single re-bind.
//
// Queries are adaptively replicated: replication stops as soon as the
// Student-t 95% confidence interval decides the query's threshold (or
// reaches its precision target), and per-replication progress streams to
// the client as NDJSON (or SSE under Accept: text/event-stream) while
// the query runs.
//
// Endpoints:
//
//	POST /v1/query    run one resilience query (see internal/serve.QuerySpec)
//	GET  /v1/arena    arena occupancy, per-entry engine memory stats
//	GET  /v1/healthz  liveness
//
// Flags:
//
//	-addr a             listen address (default :8700)
//	-arena-mb n         arena memory budget in MiB (default 256)
//	-jobs j             concurrent replications per query; 0 = GOMAXPROCS
//	-max-concurrent-sims n
//	                    total concurrently executing replications across
//	                    all queries, FIFO admission; 0 = GOMAXPROCS,
//	                    negative = unlimited
//	-default-deadline d wall-clock budget for queries without their own
//	                    deadline_ms; 0 = none (default)
//	-max-dead-frac f    re-densify solver arc stores above this dead
//	                    fraction; <= 0 disables (default 0.5)
//	-max-slot-slack f   compact slot tables above this vacancy/live
//	                    ratio; <= 0 disables (default 0.5)
//	-maintain-interval d arena maintenance cadence (default 30s)
//	-drain-timeout d    shutdown grace for in-flight queries (default 30s)
//	-quiet              suppress log lines
//
// A client that disconnects (or a query that outlives its deadline)
// cancels its simulations inside the event kernel within one event
// batch and releases its admission slots; completed replications stay
// warm in the arena either way.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains:
// in-flight queries stream to completion (up to -drain-timeout), then
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kadre/internal/connectivity"
	"kadre/internal/serve"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, nil, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "kadserve:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until a shutdown signal drains it.
// ready (tests) receives the bound listen address once accepting.
func run(args []string, stdout io.Writer, ready func(addr string), shutdown <-chan os.Signal) error {
	fs := flag.NewFlagSet("kadserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8700", "listen address")
		arenaMB      = fs.Int64("arena-mb", 256, "arena memory budget (MiB)")
		jobs         = fs.Int("jobs", 0, "concurrent replications per query (0 = GOMAXPROCS)")
		maxSims      = fs.Int("max-concurrent-sims", 0, "total concurrent replications across all queries (0 = GOMAXPROCS, negative = unlimited)")
		defDeadline  = fs.Duration("default-deadline", 0, "deadline for queries without deadline_ms (0 = none)")
		maxDeadFrac  = fs.Float64("max-dead-frac", 0.5, "re-densify arc stores above this dead fraction (<= 0 disables)")
		maxSlotSlack = fs.Float64("max-slot-slack", 0.5, "compact slot tables above this vacancy/live ratio (<= 0 disables)")
		maintainIvl  = fs.Duration("maintain-interval", 30*time.Second, "arena maintenance cadence")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight queries")
		quiet        = fs.Bool("quiet", false, "suppress log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(stdout, "kadserve: "+format+"\n", a...)
		}
	}

	srv := serve.NewServer(serve.Options{
		Arena:             serve.NewArena(serve.ArenaOptions{BudgetBytes: *arenaMB << 20}),
		Jobs:              *jobs,
		Governance:        connectivity.PolicyFromKnobs(*maxDeadFrac, *maxSlotSlack),
		MaxConcurrentSims: *maxSims,
		DefaultDeadline:   *defDeadline,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("listening on %s", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	httpSrv := &http.Server{Handler: srv.Handler()}

	// Governance maintenance runs on a timer, off the request path, so
	// queries never pay arc-store compaction latency.
	maintDone := make(chan struct{})
	maintStop := make(chan struct{})
	go func() {
		defer close(maintDone)
		ticker := time.NewTicker(*maintainIvl)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := srv.Arena().Maintain(); n > 0 {
					logf("maintenance re-densified %d arc stores", n)
				}
			case <-maintStop:
				return
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		close(maintStop)
		<-maintDone
		return err
	case sig := <-shutdown:
		logf("draining (%v)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := httpSrv.Shutdown(ctx)
		close(maintStop)
		<-maintDone
		if serveRes := <-serveErr; serveRes != nil && !errors.Is(serveRes, http.ErrServerClosed) {
			return serveRes
		}
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		logf("drained")
		return nil
	}
}
