package main

import (
	"bufio"
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// testServer is one running kadserve instance driven through run().
type testServer struct {
	addr    string
	sigs    chan os.Signal
	done    chan error
	stopped atomic.Bool
	mu      sync.Mutex
	out     bytes.Buffer
}

// waitDone consumes run()'s return exactly once.
func (s *testServer) waitDone(t *testing.T) error {
	t.Helper()
	select {
	case err := <-s.done:
		s.stopped.Store(true)
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited")
		return nil
	}
}

func (s *testServer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out.Write(p)
}

func (s *testServer) log() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out.String()
}

func startServer(t *testing.T, extraArgs ...string) *testServer {
	t.Helper()
	s := &testServer{
		sigs: make(chan os.Signal, 1),
		done: make(chan error, 1),
	}
	readyCh := make(chan string, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-maintain-interval", "50ms"}, extraArgs...)
	go func() {
		s.done <- run(args, s, func(addr string) { readyCh <- addr }, s.sigs)
	}()
	select {
	case s.addr = <-readyCh:
	case err := <-s.done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	t.Cleanup(func() {
		if s.stopped.Load() {
			return
		}
		s.sigs <- syscall.SIGTERM
		select {
		case <-s.done:
		case <-time.After(30 * time.Second):
		}
	})
	return s
}

func (s *testServer) shutdown(t *testing.T) error {
	t.Helper()
	s.sigs <- syscall.SIGTERM
	return s.waitDone(t)
}

func smokeSpec(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "smoke_query.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSmokeQueryGolden runs the CI smoke query against a fresh server and
// compares the final NDJSON record byte-for-byte with the committed
// fixture — the same comparison the CI workflow's curl step performs.
func TestSmokeQueryGolden(t *testing.T) {
	s := startServer(t)
	resp, err := http.Post("http://"+s.addr+"/v1/query", "application/json",
		strings.NewReader(smokeSpec(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d records, want rep records plus a result", len(lines))
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "smoke_final.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lines[len(lines)-1], strings.TrimSpace(string(golden)); got != want {
		t.Fatalf("final record drifted from golden fixture:\ngot:  %s\nwant: %s", got, want)
	}
	if err := s.shutdown(t); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if log := s.log(); !strings.Contains(log, "draining") || !strings.Contains(log, "drained") {
		t.Fatalf("log missing drain markers:\n%s", log)
	}
}

// TestGracefulDrainCompletesInFlight pins the SIGTERM contract: a query
// already streaming when the signal arrives runs to completion and
// receives its final record; only then does the process exit cleanly.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	// -jobs 1 serializes replications, so after the first rep record the
	// query is guaranteed still in flight.
	s := startServer(t, "-jobs", "1")
	resp, err := http.Post("http://"+s.addr+"/v1/query", "application/json",
		strings.NewReader(smokeSpec(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	first := sc.Text()
	if !strings.Contains(first, `"type":"rep"`) {
		t.Fatalf("first record = %s", first)
	}

	// The query is mid-flight: pull the plug.
	s.sigs <- syscall.SIGTERM

	last := first
	for sc.Scan() {
		last = sc.Text()
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broken during drain: %v", err)
	}
	if !strings.Contains(last, `"type":"result"`) {
		t.Fatalf("in-flight query never got its result record, last = %s", last)
	}

	if err := s.waitDone(t); err != nil {
		t.Fatalf("drain returned %v", err)
	}
	// Drained means drained: new connections must be refused.
	if _, err := http.Get("http://" + s.addr + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting after drain")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("unknown flag must error")
	}
}
