package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// testServer is one running kadserve instance driven through run().
type testServer struct {
	addr    string
	sigs    chan os.Signal
	done    chan error
	stopped atomic.Bool
	mu      sync.Mutex
	out     bytes.Buffer
}

// waitDone consumes run()'s return exactly once.
func (s *testServer) waitDone(t *testing.T) error {
	t.Helper()
	select {
	case err := <-s.done:
		s.stopped.Store(true)
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited")
		return nil
	}
}

func (s *testServer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out.Write(p)
}

func (s *testServer) log() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out.String()
}

func startServer(t *testing.T, extraArgs ...string) *testServer {
	t.Helper()
	s := &testServer{
		sigs: make(chan os.Signal, 1),
		done: make(chan error, 1),
	}
	readyCh := make(chan string, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-maintain-interval", "50ms"}, extraArgs...)
	go func() {
		s.done <- run(args, s, func(addr string) { readyCh <- addr }, s.sigs)
	}()
	select {
	case s.addr = <-readyCh:
	case err := <-s.done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	t.Cleanup(func() {
		if s.stopped.Load() {
			return
		}
		s.sigs <- syscall.SIGTERM
		select {
		case <-s.done:
		case <-time.After(30 * time.Second):
		}
	})
	return s
}

func (s *testServer) shutdown(t *testing.T) error {
	t.Helper()
	s.sigs <- syscall.SIGTERM
	return s.waitDone(t)
}

func smokeSpec(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "smoke_query.json"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSmokeQueryGolden runs the CI smoke query against a fresh server and
// compares the final NDJSON record byte-for-byte with the committed
// fixture — the same comparison the CI workflow's curl step performs.
func TestSmokeQueryGolden(t *testing.T) {
	s := startServer(t)
	resp, err := http.Post("http://"+s.addr+"/v1/query", "application/json",
		strings.NewReader(smokeSpec(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d records, want rep records plus a result", len(lines))
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "smoke_final.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lines[len(lines)-1], strings.TrimSpace(string(golden)); got != want {
		t.Fatalf("final record drifted from golden fixture:\ngot:  %s\nwant: %s", got, want)
	}
	if err := s.shutdown(t); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if log := s.log(); !strings.Contains(log, "draining") || !strings.Contains(log, "drained") {
		t.Fatalf("log missing drain markers:\n%s", log)
	}
}

// TestGracefulDrainCompletesInFlight pins the SIGTERM contract: a query
// already streaming when the signal arrives runs to completion and
// receives its final record; only then does the process exit cleanly.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	// -jobs 1 serializes replications, so after the first rep record the
	// query is guaranteed still in flight.
	s := startServer(t, "-jobs", "1")
	resp, err := http.Post("http://"+s.addr+"/v1/query", "application/json",
		strings.NewReader(smokeSpec(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	first := sc.Text()
	if !strings.Contains(first, `"type":"rep"`) {
		t.Fatalf("first record = %s", first)
	}

	// The query is mid-flight: pull the plug.
	s.sigs <- syscall.SIGTERM

	last := first
	for sc.Scan() {
		last = sc.Text()
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broken during drain: %v", err)
	}
	if !strings.Contains(last, `"type":"result"`) {
		t.Fatalf("in-flight query never got its result record, last = %s", last)
	}

	if err := s.waitDone(t); err != nil {
		t.Fatalf("drain returned %v", err)
	}
	// Drained means drained: new connections must be refused.
	if _, err := http.Get("http://" + s.addr + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting after drain")
	}
}

// TestClientDisconnectCancelsQuery is the CI cancellation probe in test
// form: kill the client after the first rep record, then assert the
// server reports itself healthy with zero running queries and a released
// admission queue — the disconnected query must not leak its slot.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	s := startServer(t, "-jobs", "1", "-max-concurrent-sims", "2")
	spec, err := os.ReadFile(filepath.Join("testdata", "cancel_query.json"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST",
		"http://"+s.addr+"/v1/query", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() || !strings.Contains(sc.Text(), `"type":"rep"`) {
		t.Fatalf("no first rep record: %q %v", sc.Text(), sc.Err())
	}
	cancel()
	resp.Body.Close()

	// The kernel stops within one event batch; well before this deadline
	// the /v1/arena breakdown must show the query gone and its slot free.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st struct {
			Sched struct {
				InUse    int64 `json:"in_use"`
				Queued   int64 `json:"queued"`
				Running  int64 `json:"running"`
				Canceled int64 `json:"canceled"`
			} `json:"sched"`
		}
		ar, err := http.Get("http://" + s.addr + "/v1/arena")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(ar.Body).Decode(&st)
		ar.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Sched.Running == 0 && st.Sched.Queued == 0 && st.Sched.InUse == 0 {
			if st.Sched.Canceled != 1 {
				t.Fatalf("canceled counter = %d, want 1", st.Sched.Canceled)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never released its admission slot: %+v", st.Sched)
		}
		time.Sleep(10 * time.Millisecond)
	}

	hz, err := http.Get("http://" + s.addr + "/v1/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz after cancellation: %v %v", hz, err)
	}
	hz.Body.Close()
	if err := s.shutdown(t); err != nil {
		t.Fatalf("drain after cancellation: %v", err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("unknown flag must error")
	}
}
