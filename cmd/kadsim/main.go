// Command kadsim runs one Kademlia resilience simulation and reports the
// connectivity time series, mirroring the paper's per-simulation
// methodology: randomized setup, stabilization, optional churn/traffic/
// loss, and periodic connectivity snapshots.
//
// Examples:
//
//	kadsim -size 250 -k 20 -churn 1/1 -traffic -churn-mins 240
//	kadsim -size 100 -k 10 -loss medium -staleness 5 -snapshots out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kadre/internal/churn"
	"kadre/internal/report"
	"kadre/internal/scenario"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
	"kadre/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kadsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kadsim", flag.ContinueOnError)
	var (
		size      = fs.Int("size", 100, "initial network size")
		k         = fs.Int("k", 20, "bucket size k")
		alpha     = fs.Int("alpha", 3, "request parallelism alpha")
		bits      = fs.Int("bits", 160, "identifier bit-length b")
		staleness = fs.Int("staleness", 1, "staleness limit s")
		lossName  = fs.String("loss", "none", "message loss scenario: none, low, medium, high")
		churnSpec = fs.String("churn", "0/0", "churn rate add/remove per minute, e.g. 1/1")
		traffic   = fs.Bool("traffic", false, "enable 10 lookups + 1 dissemination per node per minute")
		seed      = fs.Int64("seed", 1, "simulation seed")
		setupM    = fs.Int("setup-mins", 30, "setup phase length (minutes)")
		stabM     = fs.Int("stabilize-mins", 90, "stabilization phase length (minutes)")
		churnM    = fs.Int("churn-mins", 120, "churn/observation phase length (minutes)")
		snapM     = fs.Int("interval-mins", 20, "snapshot interval (minutes)")
		sampleC   = fs.Float64("c", 0.02, "connectivity sampling fraction (paper's c)")
		snapDir   = fs.String("snapshots", "", "directory to write per-snapshot JSON graphs")
		chart     = fs.Bool("chart", true, "render an ASCII chart of the series")
		quiet     = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	loss, err := simnet.ParseLossLevel(*lossName)
	if err != nil {
		return err
	}
	rate, err := churn.ParseRate(*churnSpec)
	if err != nil {
		return err
	}

	cfg := scenario.Config{
		Name: "kadsim", Seed: *seed, Size: *size,
		K: *k, Alpha: *alpha, Bits: *bits, Staleness: *staleness,
		Loss: loss, Churn: rate, Traffic: *traffic,
		Setup:            time.Duration(*setupM) * time.Minute,
		Stabilize:        time.Duration(*stabM) * time.Minute,
		ChurnPhase:       time.Duration(*churnM) * time.Minute,
		SnapshotInterval: time.Duration(*snapM) * time.Minute,
		SampleFraction:   *sampleC,
	}
	if !*quiet {
		cfg.Log = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	}

	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			return fmt.Errorf("create snapshot dir: %w", err)
		}
		var writeErr error
		cfg.OnSnapshot = func(s *snapshot.Snapshot, _ scenario.SnapshotStat) {
			if writeErr != nil {
				return
			}
			writeErr = writeSnapshot(*snapDir, s)
		}
		defer func() {
			if writeErr != nil {
				fmt.Fprintln(os.Stderr, "kadsim: snapshot persistence:", writeErr)
			}
		}()
	}

	res, err := scenario.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\nrun complete: %d snapshots, churn +%d/-%d, %d traffic ops, %d messages sent (%d lost), wall %v\n\n",
		len(res.Points), res.ChurnAdded, res.ChurnRemoved, res.TrafficOps,
		res.Network.Sent, res.Network.Lost, res.Elapsed.Round(time.Millisecond))

	header, rows := report.SnapshotRows(res)
	if err := report.WriteTable(os.Stdout, header, rows); err != nil {
		return err
	}

	if *chart {
		fmt.Println()
		series := []*stats.Series{res.MinSeries(), res.AvgSeries()}
		if err := report.Chart(os.Stdout, "connectivity over time", series, 14); err != nil {
			return err
		}
	}
	return nil
}

func writeSnapshot(dir string, s *snapshot.Snapshot) error {
	path := filepath.Join(dir, fmt.Sprintf("snapshot-%06.0fm.json", s.Time.Minutes()))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
