package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTinySimulation(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-size", "25", "-k", "4", "-bits", "64",
		"-setup-mins", "5", "-stabilize-mins", "10", "-churn-mins", "10",
		"-interval-mins", "10", "-c", "0.2",
		"-snapshots", dir, "-quiet", "-chart=false",
	})
	if err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no snapshots written")
	}
	info, err := os.Stat(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty snapshot file")
	}
}

func TestRunWithChurnAndLoss(t *testing.T) {
	err := run([]string{
		"-size", "20", "-k", "4", "-bits", "64", "-churn", "1/1", "-loss", "low",
		"-traffic", "-setup-mins", "5", "-stabilize-mins", "5", "-churn-mins", "5",
		"-interval-mins", "5", "-c", "0.2", "-quiet", "-chart=false",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := [][]string{
		{"-loss", "catastrophic"},
		{"-churn", "banana"},
		{"-size", "1"},
		{"-bits", "33"},
	}
	for _, args := range tests {
		if err := run(append(args, "-quiet", "-chart=false")); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
