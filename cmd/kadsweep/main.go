// Command kadsweep regenerates the paper's figures and tables. Each
// experiment id maps to one artefact of the evaluation section (see
// DESIGN.md's experiment index); the output is the paper's tables as text
// and the figures as ASCII charts plus per-run measurement tables.
//
// Examples:
//
//	kadsweep -list
//	kadsweep -exp table1
//	kadsweep -exp figure2 -scale tiny
//	kadsweep -exp figure6 -scale reduced -csv out/
//	kadsweep -exp all -scale tiny
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kadre/internal/report"
	"kadre/internal/scenario"
	"kadre/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kadsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kadsweep", flag.ContinueOnError)
	var (
		expID     = fs.String("exp", "", "experiment id (see -list), or 'all'")
		scaleName = fs.String("scale", "reduced", "scale: paper, reduced, tiny")
		seed      = fs.Int64("seed", 1, "base seed")
		csvDir    = fs.String("csv", "", "directory for per-run CSV series")
		list      = fs.Bool("list", false, "list experiments and exit")
		quiet     = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := scenario.ScaleByName(*scaleName)
	if err != nil {
		return err
	}

	if *list {
		fmt.Println("available experiments (paper artefact -> id):")
		fmt.Println("  table1    Table 1 (message-loss scenarios; static)")
		for _, e := range scale.Experiments(*seed) {
			fmt.Printf("  %-9s %s (%d runs)\n", e.ID, e.Title, len(e.Configs))
		}
		return nil
	}
	if *expID == "" {
		return fmt.Errorf("-exp is required (try -list)")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	if *expID == "table1" {
		header, rows := report.Table1()
		fmt.Println("Table 1: message loss scenarios")
		return report.WriteTable(os.Stdout, header, rows)
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = ids[:0]
		for _, e := range scale.Experiments(*seed) {
			ids = append(ids, e.ID)
		}
		header, rows := report.Table1()
		fmt.Println("Table 1: message loss scenarios")
		if err := report.WriteTable(os.Stdout, header, rows); err != nil {
			return err
		}
		fmt.Println()
	}

	for _, eid := range ids {
		if err := runExperiment(scale, eid, *seed, *csvDir, *quiet); err != nil {
			return err
		}
	}
	return nil
}

func runExperiment(scale scenario.Scale, expID string, seed int64, csvDir string, quiet bool) error {
	exp, err := scale.ExperimentByID(expID, seed)
	if err != nil {
		return err
	}
	fmt.Printf("=== %s: %s (scale %s, %d runs) ===\n", exp.ID, exp.Title, scale.Name, len(exp.Configs))
	start := time.Now()
	results := make([]*scenario.Result, 0, len(exp.Configs))
	for _, cfg := range exp.Configs {
		if !quiet {
			cfg.Log = func(format string, a ...any) { fmt.Printf("  "+format+"\n", a...) }
		}
		res, err := scenario.Run(cfg)
		if err != nil {
			return fmt.Errorf("run %q: %w", cfg.Name, err)
		}
		results = append(results, res)
		if csvDir != "" {
			if err := writeCSV(csvDir, res); err != nil {
				return err
			}
		}
	}
	fmt.Printf("--- %s finished in %v ---\n\n", exp.ID, time.Since(start).Round(time.Second))
	return render(exp, results)
}

func render(exp scenario.Experiment, results []*scenario.Result) error {
	switch exp.ID {
	case "table2":
		header, rows := report.Table2(results)
		fmt.Println("Table 2: means and relative variance of min connectivity during churn")
		return report.WriteTable(os.Stdout, header, rows)
	case "figure10":
		header, rows := report.MeansByK(results)
		fmt.Println("Figure 10: means of the minimum connectivity during churn")
		return report.WriteTable(os.Stdout, header, rows)
	case "bitlength":
		header, rows := report.MeansByK(results)
		fmt.Println("§5.7: bit-length comparison (expect no significant difference)")
		return report.WriteTable(os.Stdout, header, rows)
	default:
		// Figure-style output: min- and avg-connectivity charts over all
		// runs, then per-run tables.
		var minSeries, avgSeries []*stats.Series
		for _, r := range results {
			minSeries = append(minSeries, r.MinSeries())
			avgSeries = append(avgSeries, r.AvgSeries())
		}
		if err := report.Chart(os.Stdout, exp.Title+" — minimum connectivity", minSeries, 14); err != nil {
			return err
		}
		fmt.Println()
		if err := report.Chart(os.Stdout, exp.Title+" — average connectivity", avgSeries, 14); err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("\n%s\n", r.Config.Name)
			header, rows := report.SnapshotRows(r)
			if err := report.WriteTable(os.Stdout, header, rows); err != nil {
				return err
			}
		}
		return nil
	}
}

func writeCSV(dir string, r *scenario.Result) error {
	name := strings.NewReplacer("/", "_", "=", "").Replace(r.Config.Name) + ".csv"
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "t_min,n,edges,min_conn,avg_conn,symmetry"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(f, "%.0f,%d,%d,%d,%.3f,%.4f\n",
			p.Time.Minutes(), p.N, p.Edges, p.Min, p.Avg, p.Symmetry); err != nil {
			return err
		}
	}
	return nil
}
