// Command kadsweep regenerates the paper's figures and tables. Each
// experiment id maps to one artefact of the evaluation section (see
// DESIGN.md's experiment index); the output is the paper's tables as text
// and the figures as ASCII charts plus per-run measurement tables.
//
// Runs execute on the parallel sweep engine (internal/sweep): the
// experiment's configurations — times the replication count — fan out
// across -jobs workers. Every run is deterministic in its seed and the
// engine reassembles results in input order, so the output is identical
// for any -jobs value; only wall-clock time changes. With -exp all,
// every experiment's runs share ONE worker pool (sweep.RunGroups):
// progress lines carry an experiment prefix and rendering happens per
// experiment after the pooled sweep drains, so cores stay busy through
// each experiment's tail instead of idling at every boundary.
//
// Replication (-reps R) repeats every configuration R times with derived
// seeds, matching the paper's repeated-run methodology: rep 0 uses the
// configuration's own seed (so -reps 1 reproduces historical single runs
// exactly) and reps >= 1 use a splitmix64-derived seed stream. Replicated
// sweeps report the cross-run mean and two-sided 95% Student-t confidence
// interval per snapshot instant, both in the tables and as the dotted
// band of the ASCII charts.
//
// Flags:
//
//	-exp id       experiment to run (see -list), or 'all'
//	-scenario f   scenario spec file (JSON) to run instead of -exp: the
//	              versioned workload.Spec format composing churn, traffic,
//	              attack and generative-workload knobs (see README
//	              "scenario specs"; committed presets live under specs/)
//	-scale s      paper, reduced, tiny (default reduced); a spec file
//	              may pin its own scale, which then wins
//	-seed n       base seed (default 1)
//	-reps r       seed replications per configuration (default 1)
//	-jobs j       concurrent runs; 0 means GOMAXPROCS (default 0)
//	-csv dir      write one CSV per run (and per-config aggregate CSVs
//	              when -reps > 1)
//	-json dir     write one JSON document per experiment
//	-checkpoint d persist every completed run to directory d and, on a
//	              later invocation, replay finished runs from disk
//	              instead of re-executing them (sweep resume)
//	-ci-stop f    adaptive replication: per configuration, stop early
//	              once the 95% CI half-width of the churn-window mean
//	              min connectivity is at most f times its mean; -reps
//	              becomes the rep budget (requires -reps >= 2, not
//	              combinable with -checkpoint). Stop indices depend only
//	              on seeds and accumulated statistics, so artefacts stay
//	              identical for any -jobs value.
//	-max-dead-frac f  re-densify analysis arc stores above this dead
//	              fraction; <= 0 disables (default 0.5)
//	-max-slot-slack f compact slot tables above this vacancy/live
//	              ratio; <= 0 disables (default 0.5). Disabling both
//	              drops the "memory" block from the JSON document.
//	-list         list experiments and exit
//	-quiet        suppress progress lines
//
// The JSON document (one per experiment, named <exp>.json) contains:
//
//	{
//	  "experiment": "figure2", "title": "...", "scale": "tiny",
//	  "reps": 3, "jobs": 4,
//	  "runs": [{
//	    "name": "SimA/k=5", "base_seed": 1,
//	    "size": 40, "k": 5, "churn": "0/1", "loss": "none", "traffic": false,
//	    "reps": [{"seed": 1, "points": [{"t_min", "n", "edges",
//	              "min_conn", "avg_conn", "symmetry"}, ...],
//	              "churn_added", "churn_removed", "traffic_ops",
//	              "msg_sent", "msg_lost"}, ...],
//	    "aggregate": {
//	      "min_conn": [{"t_min", "mean", "std", "ci95", "min", "max"}, ...],
//	      "avg_conn": [...], "size": [...],
//	      "churn_window": {"rep_means": [...], "mean", "ci95"}
//	    }
//	  }, ...]
//	}
//
// Statistics that are undefined (the CI of a single replication) encode
// as null. Wall-clock timings are excluded, so the same sweep always
// produces byte-identical JSON.
//
// Examples:
//
//	kadsweep -list
//	kadsweep -exp table1
//	kadsweep -exp figure2 -scale tiny
//	kadsweep -exp figure2 -scale tiny -reps 3 -jobs 4
//	kadsweep -exp figure6 -scale reduced -reps 5 -csv out/ -json out/
//	kadsweep -exp all -scale tiny
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kadre/internal/connectivity"
	"kadre/internal/report"
	"kadre/internal/scenario"
	"kadre/internal/stats"
	"kadre/internal/sweep"
	"kadre/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kadsweep:", err)
		os.Exit(1)
	}
}

// options carries the resolved flag set through one invocation.
type options struct {
	scale   scenario.Scale
	seed    int64
	reps    int
	jobs    int
	csvDir  string
	jsonDir string
	ckpt    *sweep.Checkpointer
	gov     connectivity.GovernancePolicy
	ciStop  float64
	quiet   bool
	stdout  io.Writer
}

func run(args []string, stdout io.Writer) error {
	// Flag diagnostics (usage, parse errors) stay on the FlagSet's stderr
	// default; stdout carries only the program's results.
	fs := flag.NewFlagSet("kadsweep", flag.ContinueOnError)
	var (
		expID     = fs.String("exp", "", "experiment id (see -list), or 'all'")
		scenFile  = fs.String("scenario", "", "scenario spec file (JSON) to run instead of a compiled-in experiment")
		scaleName = fs.String("scale", "reduced", "scale: paper, reduced, tiny")
		seed      = fs.Int64("seed", 1, "base seed")
		reps      = fs.Int("reps", 1, "seed replications per configuration")
		jobs      = fs.Int("jobs", 0, "concurrent runs (0 = GOMAXPROCS)")
		csvDir    = fs.String("csv", "", "directory for per-run CSV series")
		jsonDir   = fs.String("json", "", "directory for per-experiment JSON results")
		ckptDir   = fs.String("checkpoint", "", "directory for per-run checkpoints (resume support)")
		ciStop    = fs.Float64("ci-stop", 0, "adaptive replication: stop a config's reps once the 95% CI half-width is at most this fraction of the mean churn-window min connectivity (0 = fixed -reps)")
		deadFrac  = fs.Float64("max-dead-frac", 0.5, "re-densify analysis arc stores above this dead fraction (<= 0 disables)")
		slotSlack = fs.Float64("max-slot-slack", 0.5, "compact slot tables above this vacancy/live ratio (<= 0 disables)")
		list      = fs.Bool("list", false, "list experiments and exit")
		quiet     = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d must be >= 1", *reps)
	}
	if *jobs < 0 {
		return fmt.Errorf("-jobs %d must be >= 0", *jobs)
	}
	if *ciStop < 0 {
		return fmt.Errorf("-ci-stop %v must be >= 0", *ciStop)
	}
	if *ciStop > 0 && *reps < 2 {
		return fmt.Errorf("-ci-stop needs -reps >= 2 (the rep budget a decision may stop short of)")
	}
	if *ciStop > 0 && *ckptDir != "" {
		return fmt.Errorf("-ci-stop cannot be combined with -checkpoint (adaptive rep counts would invalidate resumed fixed-R checkpoints)")
	}

	scale, err := scenario.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	opts := options{
		scale: scale, seed: *seed, reps: *reps, jobs: *jobs,
		csvDir: *csvDir, jsonDir: *jsonDir, quiet: *quiet, stdout: stdout,
		gov:    connectivity.PolicyFromKnobs(*deadFrac, *slotSlack),
		ciStop: *ciStop,
	}
	if *ckptDir != "" {
		if opts.ckpt, err = sweep.NewCheckpointer(*ckptDir); err != nil {
			return err
		}
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments (paper artefact -> id):")
		fmt.Fprintln(stdout, "  table1    Table 1 (message-loss scenarios; static)")
		for _, e := range scale.Experiments(*seed) {
			fmt.Fprintf(stdout, "  %-9s %s (%d runs)\n", e.ID, e.Title, len(e.Configs))
		}
		return nil
	}
	if *expID != "" && *scenFile != "" {
		return fmt.Errorf("-exp and -scenario are mutually exclusive")
	}
	if *expID == "" && *scenFile == "" {
		return fmt.Errorf("-exp or -scenario is required (try -list)")
	}

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	// A scenario spec file is one experiment resolved through the same
	// scale defaulting as the compiled-in presets: a committed spec of a
	// preset produces byte-identical artefacts. The spec may pin its own
	// scale; otherwise -scale applies.
	if *scenFile != "" {
		sp, err := workload.Load(*scenFile)
		if err != nil {
			return err
		}
		if sp.Scale != "" {
			if opts.scale, err = scenario.ScaleByName(sp.Scale); err != nil {
				return err
			}
		}
		exp, err := scenario.FromSpec(sp, opts.scale, opts.seed)
		if err != nil {
			return err
		}
		return sweepExperiments([]scenario.Experiment{exp}, opts)
	}

	if *expID == "table1" {
		header, rows := report.Table1()
		fmt.Fprintln(stdout, "Table 1: message loss scenarios")
		return report.WriteTable(stdout, header, rows)
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = ids[:0]
		for _, e := range scale.Experiments(*seed) {
			ids = append(ids, e.ID)
		}
		header, rows := report.Table1()
		fmt.Fprintln(stdout, "Table 1: message loss scenarios")
		if err := report.WriteTable(stdout, header, rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	return runExperiments(ids, opts)
}

// runExperiments sweeps the given experiments through ONE shared worker
// pool (sweep.RunGroups): with -exp all, runs from the next experiment
// backfill idle workers while the previous experiment's stragglers
// finish, instead of draining the pool at every experiment boundary.
// Rendering and artefact writing happen per experiment, in input order,
// after all runs complete.
func runExperiments(ids []string, opts options) error {
	exps := make([]scenario.Experiment, len(ids))
	for i, eid := range ids {
		exp, err := opts.scale.ExperimentByID(eid, opts.seed)
		if err != nil {
			return err
		}
		exps[i] = exp
	}
	return sweepExperiments(exps, opts)
}

// sweepExperiments executes already-resolved experiments — compiled-in
// presets and spec files share this path, so both get the pooled sweep,
// rendering, and artefact writing.
func sweepExperiments(exps []scenario.Experiment, opts options) error {
	groups := make([]sweep.Group, len(exps))
	totalConfigs := 0
	for i := range exps {
		// The governance knobs apply to every run (adversaries inherit the
		// policy for their recon engines through the scenario defaulting).
		for ci := range exps[i].Configs {
			exps[i].Configs[ci].Governance = opts.gov
		}
		groups[i] = sweep.Group{Name: exps[i].ID, Configs: exps[i].Configs}
		totalConfigs += len(exps[i].Configs)
	}

	pooled := len(exps) > 1
	repsLabel := fmt.Sprintf("%d reps", opts.reps)
	if opts.ciStop > 0 {
		repsLabel = fmt.Sprintf("<= %d adaptive reps (ci-stop %g)", opts.reps, opts.ciStop)
	}
	if pooled {
		fmt.Fprintf(opts.stdout, "=== pooled sweep: %d experiments, %d configs x %s (scale %s, jobs %d) ===\n",
			len(exps), totalConfigs, repsLabel, opts.scale.Name, opts.jobs)
	} else {
		exp := exps[0]
		fmt.Fprintf(opts.stdout, "=== %s: %s (scale %s, %d configs x %s, jobs %d) ===\n",
			exp.ID, exp.Title, opts.scale.Name, len(exp.Configs), repsLabel, opts.jobs)
	}
	start := time.Now()

	// On failure both executors still hand back every experiment whose
	// runs all completed; render and persist those before reporting the
	// error, so a pooled -exp all sweep does not discard hours of
	// finished work.
	var allSets [][]*sweep.RunSet
	var runErr error
	if opts.ciStop > 0 {
		allSets, runErr = runAdaptiveGroups(exps, opts, pooled)
	} else {
		swOpts := sweep.Options{Reps: opts.reps, Jobs: opts.jobs, Checkpoint: opts.ckpt}
		if !opts.quiet {
			swOpts.Progress = func(ev sweep.Event) {
				status := fmt.Sprintf("%v", ev.Elapsed.Round(time.Millisecond))
				if ev.Cached {
					status = "checkpoint"
				}
				if ev.Err != nil {
					status = "FAILED: " + ev.Err.Error()
				}
				name := ev.Name
				if pooled {
					name = ev.Experiment + "/" + name
				}
				fmt.Fprintf(opts.stdout, "  [%d/%d] %s rep %d seed %d (%s)\n",
					ev.Done, ev.Total, name, ev.Rep, ev.Seed, status)
			}
		}
		allSets, runErr = sweep.RunGroups(groups, swOpts)
	}
	finished := fmt.Sprintf("%d experiments", len(exps))
	if !pooled {
		finished = exps[0].ID
	}
	if runErr != nil {
		fmt.Fprintf(opts.stdout, "--- %s FAILED after %v; writing completed experiments ---\n\n",
			finished, time.Since(start).Round(time.Second))
	} else {
		fmt.Fprintf(opts.stdout, "--- %s finished in %v ---\n\n", finished, time.Since(start).Round(time.Second))
	}

	for i, exp := range exps {
		sets := allSets[i]
		if sets == nil {
			continue // incomplete: some run failed or was skipped
		}
		if opts.csvDir != "" {
			for _, rs := range sets {
				if err := writeCSVSet(opts.csvDir, rs); err != nil {
					return err
				}
			}
		}
		if opts.jsonDir != "" {
			if err := writeJSONFile(opts.jsonDir, exp, opts, sets); err != nil {
				return err
			}
		}
		if pooled {
			fmt.Fprintf(opts.stdout, "=== %s: %s ===\n", exp.ID, exp.Title)
		}
		if err := render(opts.stdout, exp, opts.reps, sets); err != nil {
			return err
		}
		if pooled {
			fmt.Fprintln(opts.stdout)
		}
	}
	return runErr
}

// runAdaptiveGroups is the -ci-stop executor: every configuration
// replicates adaptively (internal/sweep.RunAdaptive) until the 95% CI of
// its churn-window mean min connectivity is within opts.ciStop of the
// mean, or the -reps budget runs out. Replications of one config fan out
// across -jobs workers; configs execute in order. The stop index depends
// only on seeds and accumulated statistics, so rep counts and every
// artefact are identical under any -jobs value. Experiments completed
// before a failure keep their RunSets, mirroring sweep.RunGroups.
func runAdaptiveGroups(exps []scenario.Experiment, opts options, pooled bool) ([][]*sweep.RunSet, error) {
	minReps := 3
	if opts.reps < minReps {
		minReps = opts.reps
	}
	out := make([][]*sweep.RunSet, len(exps))
	for gi, exp := range exps {
		sets := make([]*sweep.RunSet, len(exp.Configs))
		for ci, cfg := range exp.Configs {
			name := cfg.Name
			if pooled {
				name = exp.ID + "/" + name
			}
			ar, err := sweep.RunAdaptive(context.Background(), cfg, sweep.AdaptiveOptions{
				Rule:    sweep.StopAtPrecision(opts.ciStop),
				Extract: func(r *scenario.Result) float64 { return r.ChurnWindowSummary().Mean },
				MinReps: minReps, MaxReps: opts.reps, Jobs: opts.jobs,
				Progress: func(u sweep.RepUpdate) {
					if opts.quiet {
						return
					}
					ci95 := "n/a"
					if u.Reps >= 2 {
						ci95 = fmt.Sprintf("%.4f", u.CI95)
					}
					status := fmt.Sprintf("%v", u.Elapsed.Round(time.Millisecond))
					if u.Decided {
						status += fmt.Sprintf("; %s after %d reps", u.Verdict, u.Reps)
					}
					fmt.Fprintf(opts.stdout, "  %s rep %d seed %d churn-mean %.3f ci95 %s (%s)\n",
						name, u.Rep, u.Seed, u.Value, ci95, status)
				},
			})
			if err != nil {
				return out, err
			}
			if sets[ci], err = ar.RunSet(); err != nil {
				return out, err
			}
		}
		out[gi] = sets
	}
	return out, nil
}

func render(w io.Writer, exp scenario.Experiment, reps int, sets []*sweep.RunSet) error {
	if reps > 1 {
		return renderAggregated(w, exp, sets)
	}
	// Single-rep sweeps keep the historical per-run rendering.
	results := make([]*scenario.Result, len(sets))
	for i, rs := range sets {
		results[i] = rs.Reps[0]
	}
	switch exp.ID {
	case "table2":
		header, rows := report.Table2(results)
		fmt.Fprintln(w, "Table 2: means and relative variance of min connectivity during churn")
		return report.WriteTable(w, header, rows)
	case "figure10":
		header, rows := report.MeansByK(results)
		fmt.Fprintln(w, "Figure 10: means of the minimum connectivity during churn")
		return report.WriteTable(w, header, rows)
	case "bitlength":
		header, rows := report.MeansByK(results)
		fmt.Fprintln(w, "§5.7: bit-length comparison (expect no significant difference)")
		return report.WriteTable(w, header, rows)
	default:
		// Figure-style output: min- and avg-connectivity charts over all
		// runs, then per-run tables.
		var minSeries, avgSeries []*stats.Series
		for _, r := range results {
			minSeries = append(minSeries, r.MinSeries())
			avgSeries = append(avgSeries, r.AvgSeries())
		}
		if err := report.Chart(w, exp.Title+" — minimum connectivity", minSeries, 14); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := report.Chart(w, exp.Title+" — average connectivity", avgSeries, 14); err != nil {
			return err
		}
		for _, r := range results {
			fmt.Fprintf(w, "\n%s\n", r.Config.Name)
			header, rows := report.SnapshotRows(r)
			if err := report.WriteTable(w, header, rows); err != nil {
				return err
			}
		}
		return nil
	}
}

func renderAggregated(w io.Writer, exp scenario.Experiment, sets []*sweep.RunSet) error {
	switch exp.ID {
	case "table2":
		header, rows := report.Table2Reps(sets)
		fmt.Fprintln(w, "Table 2: mean (±95% CI) and relative variance of min connectivity during churn")
		return report.WriteTable(w, header, rows)
	case "figure10":
		header, rows := report.MeansByKReps(sets)
		fmt.Fprintln(w, "Figure 10: means (±95% CI) of the minimum connectivity during churn")
		return report.WriteTable(w, header, rows)
	case "bitlength":
		header, rows := report.MeansByKReps(sets)
		fmt.Fprintln(w, "§5.7: bit-length comparison (expect no significant difference)")
		return report.WriteTable(w, header, rows)
	default:
		var minAgg, avgAgg []*stats.AggregateSeries
		for _, rs := range sets {
			minAgg = append(minAgg, rs.Min)
			avgAgg = append(avgAgg, rs.Avg)
		}
		if err := report.AggChart(w, exp.Title+" — minimum connectivity (mean of reps)", minAgg, 14); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := report.AggChart(w, exp.Title+" — average connectivity (mean of reps)", avgAgg, 14); err != nil {
			return err
		}
		for _, rs := range sets {
			fmt.Fprintf(w, "\n%s (%d reps)\n", rs.Config.Name, len(rs.Reps))
			header, rows := report.AggregateSnapshotRows(rs)
			if err := report.WriteTable(w, header, rows); err != nil {
				return err
			}
		}
		return nil
	}
}

// csvName flattens a run name into a file name.
func csvName(name string) string {
	return strings.NewReplacer("/", "_", "=", "").Replace(name)
}

// writeCSVSet writes one CSV per replication (rep 0 keeps the historical
// file name) plus a per-config aggregate CSV when there are multiple reps.
func writeCSVSet(dir string, rs *sweep.RunSet) error {
	for rep, r := range rs.Reps {
		name := csvName(rs.Config.Name)
		if rep > 0 {
			name = fmt.Sprintf("%s_r%d", name, rep)
		}
		if err := writeCSV(filepath.Join(dir, name+".csv"), r); err != nil {
			return err
		}
	}
	if len(rs.Reps) > 1 {
		return writeAggCSV(filepath.Join(dir, csvName(rs.Config.Name)+"_agg.csv"), rs)
	}
	return nil
}

func writeCSV(path string, r *scenario.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "t_min,n,edges,min_conn,avg_conn,symmetry"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(f, "%.0f,%d,%d,%d,%.3f,%.4f\n",
			p.Time.Minutes(), p.N, p.Edges, p.Min, p.Avg, p.Symmetry); err != nil {
			return err
		}
	}
	return f.Close()
}

func writeAggCSV(path string, rs *sweep.RunSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "t_min,reps,n_mean,min_mean,min_std,min_ci95,avg_mean,avg_std,avg_ci95"); err != nil {
		return err
	}
	for i := range rs.Min.Points {
		mp, ap, sp := rs.Min.Points[i], rs.Avg.Points[i], rs.Size.Points[i]
		if _, err := fmt.Fprintf(f, "%.0f,%d,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			mp.T.Minutes(), mp.N, sp.Mean, mp.Mean, mp.Std, mp.CI95, ap.Mean, ap.Std, ap.CI95); err != nil {
			return err
		}
	}
	return f.Close()
}

func writeJSONFile(dir string, exp scenario.Experiment, opts options, sets []*sweep.RunSet) error {
	f, err := os.Create(filepath.Join(dir, exp.ID+".json"))
	if err != nil {
		return err
	}
	defer f.Close()
	meta := sweep.JSONMeta{
		Experiment: exp.ID, Title: exp.Title, Scale: opts.scale.Name, Jobs: opts.jobs,
	}
	if err := sweep.WriteJSON(f, meta, sets); err != nil {
		return err
	}
	return f.Close()
}
