package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kadre/internal/scenario"
	"kadre/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files")

// listGolden is the full -list output at the default (reduced) scale; it
// doubles as a regression net over the experiment catalogue.
const listGolden = `available experiments (paper artefact -> id):
  table1    Table 1 (message-loss scenarios; static)
  figure2   Sim A: size small, churn 0/1, no data traffic (4 runs)
  figure3   Sim B: size large, churn 0/1, no data traffic (4 runs)
  figure4   Sim C: size small, churn 0/1, with data traffic (4 runs)
  figure5   Sim D: size large, churn 0/1, with data traffic (4 runs)
  figure6   Sim E: size small, churn 1/1, with data traffic (4 runs)
  figure7   Sim F: size large, churn 1/1, with data traffic (4 runs)
  figure8   Sim G: size small, churn 10/10, with data traffic (4 runs)
  figure9   Sim H: size large, churn 10/10, with data traffic (4 runs)
  table2    Sims E-H: mean and relative variance of min connectivity during churn (16 runs)
  figure10  mean min connectivity during churn vs k, alpha in {3,5} (24 runs)
  bitlength §5.7: bit-length 80 vs 160 on Sims C and D (4 runs)
  figure11  Sim I: staleness s in {1,5}, no loss, churn 1/1 and 10/10 (4 runs)
  figure12  Sim J: loss sweep, churn 0/0, s in {1,5} (6 runs)
  figure13  Sim K: loss sweep, churn 1/1, s in {1,5} (6 runs)
  figure14  Sim L: loss sweep, churn 10/10, s in {1,5} (6 runs)
  attack    targeted node removal: connectivity degradation by strategy (4 runs)
`

func TestRunListGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != listGolden {
		t.Fatalf("-list output drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), listGolden)
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1: message loss scenarios", "Loss l", "Ploss(1-way)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFigure2TinyEndToEnd is the end-to-end satellite: a replicated
// parallel figure2 sweep at tiny scale with CSV and JSON artefacts, with
// file contents checked rather than just existence.
func TestRunFigure2TinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny sweep is slow; skipped with -short")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{
		"-exp", "figure2", "-scale", "tiny", "-reps", "2", "-jobs", "4",
		"-quiet", "-csv", dir, "-json", dir,
	}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}

	// Aggregated rendering: mean ± CI table columns and the CI band chart.
	out := buf.String()
	for _, want := range []string{"mean of reps", "ci95", "(. = 95% CI)", "(2 reps)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("aggregated output missing %q:\n%s", want, out)
		}
	}

	// CSV: 4 configs x 2 reps per-run files plus 4 aggregate files.
	perRun, err := filepath.Glob(filepath.Join(dir, "SimA_k*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	var agg, raw []string
	for _, p := range perRun {
		if strings.HasSuffix(p, "_agg.csv") {
			agg = append(agg, p)
		} else {
			raw = append(raw, p)
		}
	}
	if len(raw) != 8 || len(agg) != 4 {
		t.Fatalf("got %d per-run and %d aggregate CSVs, want 8 and 4", len(raw), len(agg))
	}
	rawData, err := os.ReadFile(raw[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(rawData), "t_min,n,edges,min_conn,avg_conn,symmetry") {
		t.Fatalf("per-run csv header wrong: %q", strings.SplitN(string(rawData), "\n", 2)[0])
	}
	if len(strings.Split(strings.TrimSpace(string(rawData)), "\n")) < 3 {
		t.Fatal("per-run csv has no data rows")
	}
	aggData, err := os.ReadFile(agg[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(aggData), "t_min,reps,n_mean,min_mean,min_std,min_ci95,avg_mean,avg_std,avg_ci95") {
		t.Fatalf("aggregate csv header wrong: %q", strings.SplitN(string(aggData), "\n", 2)[0])
	}

	// JSON: one document for the experiment, structurally sound and
	// consistent with the CSV artefacts.
	jsonData, err := os.ReadFile(filepath.Join(dir, "figure2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc sweep.JSONFile
	if err := json.Unmarshal(jsonData, &doc); err != nil {
		t.Fatalf("figure2.json is not valid JSON: %v", err)
	}
	if doc.Experiment != "figure2" || doc.Scale != "tiny" || doc.Reps != 2 {
		t.Fatalf("JSON header wrong: experiment=%q scale=%q reps=%d", doc.Experiment, doc.Scale, doc.Reps)
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("JSON has %d runs, want 4 (one per k)", len(doc.Runs))
	}
	for _, run := range doc.Runs {
		if len(run.Reps) != 2 {
			t.Fatalf("run %q has %d reps, want 2", run.Name, len(run.Reps))
		}
		if run.Reps[0].Seed == run.Reps[1].Seed {
			t.Fatalf("run %q reps share a seed", run.Name)
		}
		if len(run.Reps[0].Points) == 0 {
			t.Fatalf("run %q has no snapshot points", run.Name)
		}
		if len(run.Aggregate.Min) != len(run.Reps[0].Points) {
			t.Fatalf("run %q aggregate misaligned with points", run.Name)
		}
		if run.Aggregate.Min[0].CI95 == nil {
			t.Fatalf("run %q: two reps must yield a non-null CI", run.Name)
		}
		if run.Churn != "0/1" || run.Traffic {
			t.Fatalf("run %q config wrong in JSON: churn=%q traffic=%v", run.Name, run.Churn, run.Traffic)
		}
	}
}

// TestGoldenTinyFigure2 pins the numeric output of the tiny figure2
// sweep byte for byte (the ROADMAP's "numeric regression pinning"):
// simulator, analyzer, or sweep refactors that shift any measured value
// fail here first. Regenerate with: go test ./cmd/kadsweep -run Golden
// -update
func TestGoldenTinyFigure2(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{"-exp", "figure2", "-scale", "tiny", "-jobs", "2", "-quiet", "-json", dir}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "figure2.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "figure2_tiny.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("tiny figure2 sweep drifted from golden fixture %s (run with -update to regenerate after intentional changes)", golden)
	}
}

// TestCheckpointFlag exercises -checkpoint end to end: the second
// invocation replays all runs from disk and renders identically.
func TestCheckpointFlag(t *testing.T) {
	ckpt := t.TempDir()
	var first, second bytes.Buffer
	args := []string{"-exp", "figure2", "-scale", "tiny", "-checkpoint", ckpt}
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(second.String(), "(checkpoint)"); got != 4 {
		t.Fatalf("second run replayed %d runs from checkpoints, want 4", got)
	}
	files, err := filepath.Glob(filepath.Join(ckpt, "*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("got %d checkpoint files, want 4", len(files))
	}
}

func TestRunErrors(t *testing.T) {
	discard := &bytes.Buffer{}
	if err := run([]string{}, discard); err == nil {
		t.Error("missing -exp should fail")
	}
	if err := run([]string{"-exp", "figure99"}, discard); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-exp", "figure2", "-scale", "galactic"}, discard); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run([]string{"-exp", "figure2", "-reps", "0"}, discard); err == nil {
		t.Error("-reps 0 should fail")
	}
	if err := run([]string{"-exp", "figure2", "-jobs", "-2"}, discard); err == nil {
		t.Error("negative -jobs should fail")
	}
}

// TestRunPooledExperiments exercises the -exp all machinery through the
// shared worker pool on two cheap experiments: one pooled sweep banner,
// experiment-prefixed progress lines, and both experiments rendered in
// order afterwards. (-exp all itself routes through the same
// runExperiments call with the full catalogue.)
func TestRunPooledExperiments(t *testing.T) {
	scale, err := scenario.ScaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := options{scale: scale, seed: 1, reps: 1, jobs: 4, stdout: &buf}
	if err := runExperiments([]string{"figure2", "figure3"}, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== pooled sweep: 2 experiments") {
		t.Fatalf("missing pooled banner:\n%.600s", out)
	}
	// Progress lines carry the experiment prefix so interleaved runs
	// stay attributable.
	if !strings.Contains(out, "] figure2/") || !strings.Contains(out, "] figure3/") {
		t.Fatalf("progress lines lack experiment prefixes:\n%.600s", out)
	}
	// Both experiments render a section after the runs complete.
	for _, want := range []string{"=== figure2:", "=== figure3:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	// The pool drains once for the whole sweep, not once per experiment.
	if got := strings.Count(out, "finished in"); got != 1 {
		t.Fatalf("%d 'finished in' markers, want 1 (single pooled sweep)", got)
	}
}

// TestCIStopAdaptiveSweep exercises -ci-stop end to end: adaptive
// replication renders and serializes through the normal pipeline, rep
// counts respect the -reps budget, and the artefacts are identical for
// any -jobs value.
func TestCIStopAdaptiveSweep(t *testing.T) {
	runOnce := func(jobs string) (string, []byte) {
		dir := t.TempDir()
		var buf bytes.Buffer
		args := []string{"-exp", "figure2", "-scale", "tiny", "-reps", "4",
			"-ci-stop", "0.5", "-jobs", jobs, "-json", dir}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "figure2.json"))
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), data
	}
	out, doc := runOnce("4")
	if !strings.Contains(out, "adaptive reps (ci-stop 0.5)") {
		t.Fatalf("banner missing adaptive marker:\n%.400s", out)
	}
	// Per-rep progress carries the metric value and the CI so far.
	if !strings.Contains(out, "churn-mean") || !strings.Contains(out, "ci95") {
		t.Fatalf("adaptive progress lines missing stats:\n%.600s", out)
	}
	var file sweep.JSONFile
	if err := json.Unmarshal(doc, &file); err != nil {
		t.Fatal(err)
	}
	for _, r := range file.Runs {
		if len(r.Reps) < 2 || len(r.Reps) > 4 {
			t.Fatalf("run %s consumed %d reps, want within [2, 4]", r.Name, len(r.Reps))
		}
	}
	// Adaptive stop indices depend only on seeds and statistics: modulo
	// the informational jobs field in the metadata, the serialized
	// artefact is identical under a different -jobs.
	_, doc1 := runOnce("1")
	var file1 sweep.JSONFile
	if err := json.Unmarshal(doc1, &file1); err != nil {
		t.Fatal(err)
	}
	file.Jobs, file1.Jobs = 0, 0
	norm, _ := json.Marshal(file)
	norm1, _ := json.Marshal(file1)
	if !bytes.Equal(norm, norm1) {
		t.Fatal("adaptive JSON differs between -jobs 4 and -jobs 1")
	}
}

func TestCIStopValidation(t *testing.T) {
	discard := &bytes.Buffer{}
	if err := run([]string{"-exp", "figure2", "-ci-stop", "0.2"}, discard); err == nil {
		t.Error("-ci-stop with -reps 1 should fail")
	}
	if err := run([]string{"-exp", "figure2", "-reps", "3", "-ci-stop", "0.2",
		"-checkpoint", t.TempDir()}, discard); err == nil {
		t.Error("-ci-stop with -checkpoint should fail")
	}
	if err := run([]string{"-exp", "figure2", "-reps", "3", "-ci-stop", "-1"}, discard); err == nil {
		t.Error("negative -ci-stop should fail")
	}
}

// TestGovernanceKnobs pins the CLI governance satellite: the default
// knobs keep the memory block in the JSON document, and disabling both
// (-max-dead-frac 0 -max-slot-slack 0) removes it — the serialized
// signal that no governance ran.
func TestGovernanceKnobs(t *testing.T) {
	sweepJSON := func(extra ...string) string {
		dir := t.TempDir()
		args := append([]string{"-exp", "figure2", "-scale", "tiny", "-quiet", "-json", dir}, extra...)
		if err := run(args, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "figure2.json"))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if doc := sweepJSON(); !strings.Contains(doc, `"memory"`) {
		t.Fatal("default governance must serialize the memory block")
	}
	if doc := sweepJSON("-max-dead-frac", "0", "-max-slot-slack", "0"); strings.Contains(doc, `"memory"`) {
		t.Fatal("disabled governance must drop the memory block")
	}
}

// TestScenarioSpecMatchesPreset is the headline acceptance criterion for
// scenario specs: the committed specs/figure2.json, run through
// -scenario, must emit byte-identical JSON to the compiled-in figure2
// preset. Specs are an alternate front door to the same resolver, not a
// parallel implementation.
func TestScenarioSpecMatchesPreset(t *testing.T) {
	sweepJSON := func(file string, args ...string) []byte {
		dir := t.TempDir()
		args = append(args, "-scale", "tiny", "-jobs", "2", "-quiet", "-json", dir)
		if err := run(args, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	preset := sweepJSON("figure2.json", "-exp", "figure2")
	spec := sweepJSON("figure2.json", "-scenario", filepath.Join("..", "..", "specs", "figure2.json"))
	if !bytes.Equal(preset, spec) {
		t.Fatalf("specs/figure2.json diverged from the compiled-in preset:\n--- preset ---\n%.2000s\n--- spec ---\n%.2000s", preset, spec)
	}
}

// TestScenarioFlashCrowdExample runs the committed worked example end to
// end at tiny scale: the generative bundle (arrivals + diurnal +
// lognormal sessions + zipf popularity + flash crowds) must actually
// move the membership, visible as workload counters in the JSON.
func TestScenarioFlashCrowdExample(t *testing.T) {
	if testing.Short() {
		t.Skip("full example run is slow; skipped with -short")
	}
	dir := t.TempDir()
	args := []string{"-scenario", filepath.Join("..", "..", "examples", "flash_crowd.json"),
		"-scale", "tiny", "-quiet", "-json", dir}
	if err := run(args, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "flash-crowd.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc sweep.JSONFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("example has %d runs, want 2", len(doc.Runs))
	}
	for _, r := range doc.Runs {
		for _, rep := range r.Reps {
			if rep.WorkloadJoins == 0 {
				t.Fatalf("run %s seed %d: generative bundle performed no joins", r.Name, rep.Seed)
			}
			if rep.TrafficOps == 0 {
				t.Fatalf("run %s seed %d: no traffic despite traffic: true", r.Name, rep.Seed)
			}
		}
	}
}

func TestScenarioFlagErrors(t *testing.T) {
	discard := &bytes.Buffer{}
	if err := run([]string{"-exp", "figure2", "-scenario", "x.json"}, discard); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-exp with -scenario should fail, got %v", err)
	}
	if err := run([]string{"-scenario", filepath.Join(t.TempDir(), "absent.json")}, discard); err == nil {
		t.Error("missing spec file should fail")
	}
}

// TestGoldenTinyFigure2DefaultJobs pins the default-jobs (-jobs 0)
// variant of the tiny figure2 document — the bytes the CI scenario-spec
// smoke step diffs its CLI runs against. Identical to the -jobs 2
// fixture except the informational jobs field. Regenerate together with
// the other goldens: go test ./cmd/kadsweep -run Golden -update
func TestGoldenTinyFigure2DefaultJobs(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "figure2", "-scale", "tiny", "-quiet", "-json", dir}
	if err := run(args, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "figure2.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "figure2_tiny_jobs0.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("default-jobs tiny figure2 drifted from golden fixture %s (run with -update to regenerate after intentional changes)", golden)
	}
}
