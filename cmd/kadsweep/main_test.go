package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-exp", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure2Tiny(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "figure2", "-scale", "tiny", "-quiet", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Fatalf("wrote %d CSV files, want 4 (one per k)", len(matches))
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t_min,n,edges,min_conn,avg_conn,symmetry") {
		t.Fatalf("csv header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 3 {
		t.Fatal("csv has no data rows")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -exp should fail")
	}
	if err := run([]string{"-exp", "figure99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-exp", "figure2", "-scale", "galactic"}); err == nil {
		t.Error("unknown scale should fail")
	}
}
