package kadre_test

import (
	"fmt"
	"time"

	"kadre"
)

// ExampleVertexConnectivity computes kappa(D) of a small ring: removing
// any single vertex leaves a path, removing the two neighbours of a
// vertex isolates it.
func ExampleVertexConnectivity() {
	g := kadre.NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
		g.AddEdge((i+1)%6, i)
	}
	kappa := kadre.VertexConnectivity(g)
	fmt.Println("kappa:", kappa)
	fmt.Println("resilience:", kadre.Resilience(kappa))
	// Output:
	// kappa: 2
	// resilience: 1
}

// ExamplePairConnectivity shows Menger's theorem in action: the number of
// vertex-disjoint paths between two non-adjacent vertices.
func ExamplePairConnectivity() {
	// Two vertex-disjoint paths from 0 to 3: 0-1-3 and 0-2-3.
	g := kadre.NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		g.AddEdge(e[0], e[1])
		g.AddEdge(e[1], e[0])
	}
	kappa, err := kadre.PairConnectivity(g, 0, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("disjoint paths:", kappa)
	// Output:
	// disjoint paths: 2
}

// ExampleGraphCut finds the optimal attack: the smallest node set whose
// compromise partitions the network.
func ExampleGraphCut() {
	// A barbell: two triangles joined through vertex 2.
	g := kadre.NewGraph(5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		g.AddEdge(e[0], e[1])
		g.AddEdge(e[1], e[0])
	}
	cut, _, ok, err := kadre.GraphCut(g, kadre.ConnectivityOptions{SampleFraction: 1.0})
	if err != nil || !ok {
		fmt.Println("no cut:", err)
		return
	}
	fmt.Println("cut:", cut)
	// Output:
	// cut: [2]
}

// ExampleRunScenario runs a miniature version of the paper's simulation
// loop and prints the final network state.
func ExampleRunScenario() {
	res, err := kadre.RunScenario(kadre.ScenarioConfig{
		Name: "example", Seed: 1, Size: 25, K: 4,
		Setup: 10 * time.Minute, Stabilize: 10 * time.Minute,
		SnapshotInterval: 20 * time.Minute, SampleFraction: 0.2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	last := res.Points[len(res.Points)-1]
	fmt.Println("nodes:", last.N)
	fmt.Println("min connectivity positive:", last.Min > 0)
	// Output:
	// nodes: 25
	// min connectivity positive: true
}
