// Distributed intrusion detection system (IDS): the paper's second
// motivating CPS (§1) — sensors across corporate branches cooperate via
// Kademlia while machines continually join and leave (churn 1/1,
// Simulation E/F style). The example sizes the bucket parameter k against
// an assumed attacker budget a (Equation 2: kappa > r >= a), runs the
// network, and then plays the adversary: it extracts the minimum vertex
// cut from the final snapshot, compromises exactly those nodes, and shows
// the partition — and that compromising one node fewer leaves the IDS
// connected.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kadre"
)

func main() {
	size := flag.Int("sensors", 120, "number of IDS sensors (paper large scenario: 2500)")
	attackers := flag.Int("attackers", 7, "attacker budget a to design against")
	flag.Parse()
	if err := run(*size, *attackers); err != nil {
		fmt.Fprintln(os.Stderr, "ids:", err)
		os.Exit(1)
	}
}

func run(size, attackers int) error {
	// Design rule from the paper's conclusion: kappa tracks k, so pick
	// k > a with margin for churn-induced dips.
	need := kadre.RequiredConnectivity(attackers)
	k := need + need/2
	if k < 10 {
		k = 10
	}
	fmt.Printf("IDS: %d sensors, attacker budget a=%d -> need kappa >= %d -> bucket size k=%d\n\n",
		size, attackers, need, k)

	cfg := kadre.ScenarioConfig{
		Name: "IDS", Seed: 23, Size: size,
		K:                k,
		Staleness:        1,
		Traffic:          true,
		Churn:            kadre.Churn1_1, // machines rotate constantly
		Setup:            30 * time.Minute,
		Stabilize:        90 * time.Minute,
		ChurnPhase:       120 * time.Minute,
		SnapshotInterval: 30 * time.Minute,
		SampleFraction:   0.05,
	}

	var lastSnap *kadre.Snapshot
	cfg.OnSnapshot = func(s *kadre.Snapshot, _ kadre.SnapshotStat) { lastSnap = s }

	res, err := kadre.RunScenario(cfg)
	if err != nil {
		return err
	}

	ok := true
	fmt.Println("time(min)  sensors  minConn  kappa > a?")
	for _, p := range res.Points {
		verdict := "yes"
		if p.Min <= attackers {
			verdict = "NO — under-provisioned at this instant"
			ok = false
		}
		fmt.Printf("%8.0f  %7d  %7d  %s\n", p.Time.Minutes(), p.N, p.Min, verdict)
	}
	sum := res.ChurnWindowSummary()
	fmt.Printf("\nchurn phase: mean min connectivity %.2f, relative variance %.2f (Table 2's metrics)\n", sum.Mean, sum.RV)
	if !ok {
		fmt.Println("note: transient dips below the budget are exactly the paper's warning about strong churn")
	}

	if lastSnap == nil || lastSnap.N() < 3 {
		return fmt.Errorf("no usable final snapshot")
	}

	// Adversary time: find and execute the optimal attack on the final
	// topology.
	fmt.Printf("\n--- adversary analysis on the final snapshot (%d sensors) ---\n", lastSnap.N())
	cut, pair, found, err := kadre.GraphCut(lastSnap.Graph, kadre.ConnectivityOptions{SampleFraction: 0.05})
	if err != nil {
		return err
	}
	if !found {
		fmt.Println("graph is complete; no vertex cut exists")
		return nil
	}
	fmt.Printf("minimum vertex cut: %d sensors; witness pair %v\n", len(cut), pair)

	compromised, mapping := kadre.RemoveVertices(lastSnap.Graph, cut)
	after, err := kadre.AnalyzeConnectivity(compromised, kadre.ConnectivityOptions{SampleFraction: 1.0, MinOnly: true})
	if err != nil {
		return err
	}
	fmt.Printf("compromising all %d cut sensors: residual kappa = %d -> %s\n",
		len(cut), after.Min, partitionVerdict(after.Min))

	if len(cut) > 1 {
		spared := cut[1:] // leave one cut sensor honest
		partial, _ := kadre.RemoveVertices(lastSnap.Graph, spared)
		res2, err := kadre.AnalyzeConnectivity(partial, kadre.ConnectivityOptions{SampleFraction: 1.0, MinOnly: true})
		if err != nil {
			return err
		}
		fmt.Printf("compromising only %d of them:      residual kappa = %d -> %s\n",
			len(spared), res2.Min, partitionVerdict(res2.Min))
	}
	_ = mapping
	return nil
}

func partitionVerdict(kappa int) string {
	if kappa == 0 {
		return "IDS partitioned: coordinated detection broken"
	}
	return "IDS still connected: r-resilience held"
}
