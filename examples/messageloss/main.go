// Message loss vs connectivity: the paper's most counter-intuitive result
// (Simulation J, Figure 12). Lossy channels cause communication failures,
// failures evict routing-table entries, and the freed slots let the
// network re-wire itself into a better-connected topology — so message
// loss *increases* connectivity (while staleness limit s=5 damps the
// effect). This example runs the same network under all four Table 1 loss
// levels and both staleness limits and prints the comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kadre"
)

func main() {
	size := flag.Int("size", 80, "network size (paper: 2500)")
	mins := flag.Int("observe-mins", 120, "observation phase after stabilization")
	flag.Parse()
	if err := run(*size, *mins); err != nil {
		fmt.Fprintln(os.Stderr, "messageloss:", err)
		os.Exit(1)
	}
}

func run(size, mins int) error {
	fmt.Printf("message loss vs connectivity: %d nodes, k=20, no churn (Simulation J)\n", size)
	fmt.Println("Table 1 loss levels: none=0%, low=5%, medium=25%, high=50% two-way failure")
	fmt.Println()

	type outcome struct {
		loss      kadre.LossLevel
		staleness int
		min       int
		avg       float64
		lost      uint64
	}
	var outcomes []outcome

	for _, staleness := range []int{1, 5} {
		for _, loss := range []kadre.LossLevel{kadre.LossNone, kadre.LossLow, kadre.LossMedium, kadre.LossHigh} {
			cfg := kadre.ScenarioConfig{
				Name: fmt.Sprintf("J/s=%d/l=%s", staleness, loss), Seed: 31,
				Size: size, K: 20, Staleness: staleness, Loss: loss,
				Traffic:          true,
				Setup:            30 * time.Minute,
				Stabilize:        90 * time.Minute,
				ChurnPhase:       time.Duration(mins) * time.Minute,
				SnapshotInterval: 30 * time.Minute,
				SampleFraction:   0.06,
			}
			res, err := kadre.RunScenario(cfg)
			if err != nil {
				return err
			}
			last := res.Points[len(res.Points)-1]
			outcomes = append(outcomes, outcome{
				loss: loss, staleness: staleness,
				min: last.Min, avg: last.Avg, lost: res.Network.Lost,
			})
			fmt.Printf("  ran %-16s final min=%3d avg=%6.1f (messages lost: %d)\n",
				cfg.Name, last.Min, last.Avg, res.Network.Lost)
		}
	}

	fmt.Println("\nfinal connectivity by loss level:")
	fmt.Println("loss     s=1 min  s=1 avg   s=5 min  s=5 avg")
	for i := 0; i < 4; i++ {
		a, b := outcomes[i], outcomes[i+4]
		fmt.Printf("%-7s  %7d  %7.1f   %7d  %7.1f\n", a.loss, a.min, a.avg, b.min, b.avg)
	}

	s1None, s1High := outcomes[0], outcomes[3]
	fmt.Println()
	if s1High.min > s1None.min {
		fmt.Printf("paper's finding reproduced: with s=1, high loss lifted min connectivity %d -> %d\n",
			s1None.min, s1High.min)
		fmt.Println("(evictions free bucket slots; the rebuilt topology is better connected)")
	} else {
		fmt.Printf("loss did not lift connectivity in this run (min %d -> %d); larger networks/longer phases show it more strongly\n",
			s1None.min, s1High.min)
	}
	s5High := outcomes[7]
	if s5High.min <= s1High.min {
		fmt.Printf("damping reproduced: s=5 holds the high-loss min at %d vs %d with s=1\n", s5High.min, s1High.min)
	}
	return nil
}
