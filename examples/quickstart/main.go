// Quickstart: build a small Kademlia network, look up a stored data
// object, capture the connectivity graph, and compute the network's
// resilience against compromised nodes — the paper's core loop in fifty
// lines of API.
package main

import (
	"fmt"
	"os"
	"time"

	"kadre"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A deterministic simulator: same seed, same run, every time.
	sim := kadre.NewSimulator(7)
	net := kadre.NewNetwork(sim, kadre.NetworkConfig{})

	// Thirty nodes with small buckets (k=5) so the numbers stay readable.
	cfg := kadre.NodeConfig{Bits: 64, K: 5, Alpha: 3, StalenessLimit: 1}
	var nodes []*kadre.Node
	for i := 0; i < 30; i++ {
		n, err := kadre.NewNode(cfg, kadre.Addr(i+1), net)
		if err != nil {
			return err
		}
		if err := n.Start(); err != nil {
			return err
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Contact(), nil); err != nil {
			return err
		}
	}
	sim.RunUntil(5 * time.Minute)

	// Disseminate a data object and read it back from another node.
	key := kadre.HashID(64, []byte("door-sensor-7/state"))
	nodes[3].Store(key, []byte("open"), func(sent int) {
		fmt.Printf("stored on %d nodes closest to %s\n", sent, key)
	})
	sim.RunUntil(sim.Now() + time.Minute)
	nodes[22].Get(key, func(value []byte, ok bool) {
		fmt.Printf("lookup from another node: value=%q found=%v\n", value, ok)
	})
	sim.RunUntil(sim.Now() + time.Minute)

	// Snapshot the routing tables into a connectivity graph (§4.2) and
	// measure the vertex connectivity (§4.3-4.4).
	snap := kadre.CaptureSnapshot(sim.Now(), nodes)
	kappa := kadre.VertexConnectivity(snap.Graph)
	fmt.Printf("network: %d nodes, %d routing edges, symmetry %.2f\n",
		snap.N(), snap.Graph.M(), snap.Graph.SymmetryRatio())
	fmt.Printf("vertex connectivity kappa(D) = %d\n", kappa)
	fmt.Printf("resilience r = %d: information exchange survives any %d compromised nodes (Eq. 2)\n",
		kadre.Resilience(kappa), kadre.Resilience(kappa))

	// Which nodes would an optimal attacker take? The minimum vertex cut.
	cut, pair, ok, err := kadre.GraphCut(snap.Graph, kadre.ConnectivityOptions{SampleFraction: 1.0})
	if err != nil {
		return err
	}
	if ok {
		fmt.Printf("optimal attack: compromising %d nodes %v separates node %s from node %s\n",
			len(cut), cut, snap.IDs[pair[0]], snap.IDs[pair[1]])
	}
	return nil
}
