// Smart camera network (SCN): the paper's first motivating cyber-physical
// system (§1). A fleet of networked cameras organizes itself with
// Kademlia, continuously exchanges observations (data traffic), and
// suffers ongoing hardware failures without replacement (churn 0/1) —
// Simulation C of the paper. The example reports how the connectivity,
// and therefore the number of simultaneously compromised or failed
// cameras the surveillance system tolerates, evolves as cameras die.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kadre"
)

func main() {
	size := flag.Int("cameras", 100, "number of cameras (paper: 250)")
	k := flag.Int("k", 10, "Kademlia bucket size")
	flag.Parse()
	if err := run(*size, *k); err != nil {
		fmt.Fprintln(os.Stderr, "smartcamera:", err)
		os.Exit(1)
	}
}

func run(size, k int) error {
	fmt.Printf("smart camera network: %d cameras, k=%d, cameras fail at 1/minute after stabilization\n\n", size, k)

	failPhase := time.Duration(size-10) * time.Minute
	cfg := kadre.ScenarioConfig{
		Name: "SCN", Seed: 11, Size: size,
		K:                k,
		Staleness:        1,                // detect dead cameras after one failed exchange
		Traffic:          true,             // cameras exchange tracking data constantly
		Churn:            kadre.Churn0_1,   // cameras fail and are not replaced
		Setup:            30 * time.Minute, // staggered power-on
		Stabilize:        90 * time.Minute,
		ChurnPhase:       failPhase,
		SnapshotInterval: 30 * time.Minute,
		SampleFraction:   0.05,
	}

	res, err := kadre.RunScenario(cfg)
	if err != nil {
		return err
	}

	fmt.Println("time(min)  cameras  minConn  tolerated failures/compromises")
	for _, p := range res.Points {
		r := kadre.Resilience(p.Min)
		verdict := fmt.Sprintf("%d", r)
		if p.Min == 0 {
			verdict = "NETWORK PARTITIONED"
		}
		fmt.Printf("%8.0f  %7d  %7d  %s\n", p.Time.Minutes(), p.N, p.Min, verdict)
	}

	// The paper's design rule: to tolerate a compromised cameras the
	// operator must pick k > a (Conclusion, §6). Check it against the
	// stabilized network.
	var stabilized *kadre.SnapshotStat
	for i := range res.Points {
		if res.Points[i].Time >= cfg.ChurnStart() {
			stabilized = &res.Points[i]
			break
		}
	}
	if stabilized != nil {
		fmt.Printf("\nafter stabilization: kappa=%d with k=%d — ", stabilized.Min, k)
		if stabilized.Min >= k {
			fmt.Printf("the paper's kappa ~ k observation holds; size the bucket as k > a for a tolerated attackers\n")
		} else {
			fmt.Printf("below k; small networks and small k need the stabilization traffic to converge (cf. Sim C setup anomaly)\n")
		}
	}
	return nil
}
