module kadre

go 1.22
