// Package attack implements an adversarial node-removal engine for the
// simulated Kademlia network. The paper evaluates connection resilience
// only under random churn (§5.3); this package extends the methodology to
// an adversary who *chooses* which nodes to kill: on a configurable
// schedule it inspects a fresh connectivity snapshot and removes the
// nodes a strategy nominates — by degree, by membership in a minimum
// vertex cut (attacking the paper's own metric), by XOR proximity to a
// victim region of the keyspace (eclipse), or uniformly at random (the
// baseline that ties back to the paper's churn results).
//
// The engine runs inside the deterministic event kernel and draws
// randomness only from the simulator's seeded generator, so attack runs
// are reproducible under seeds and parallel sweeps exactly like every
// other experiment.
package attack

import (
	"fmt"
	"strings"
	"time"

	"kadre/internal/connectivity"
	"kadre/internal/eventsim"
	"kadre/internal/id"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
)

// Strategy names a victim-selection policy.
type Strategy string

// The built-in strategies.
const (
	// Random removes uniformly chosen nodes — the adversarial-schedule
	// baseline comparable to the paper's random churn.
	Random Strategy = "random"
	// Degree removes the nodes with the highest degree (out-degree plus
	// in-degree in the latest snapshot): the classic hub attack.
	Degree Strategy = "degree"
	// Cutset removes nodes on a minimum vertex cut of the latest
	// snapshot, found by the connectivity analyzer — an adversary that
	// attacks the resilience metric itself.
	Cutset Strategy = "cutset"
	// Eclipse removes the nodes closest by XOR distance to a target
	// identifier, isolating a victim's keyspace region.
	Eclipse Strategy = "eclipse"
)

// Strategies returns every built-in strategy in canonical order.
func Strategies() []Strategy {
	return []Strategy{Random, Degree, Cutset, Eclipse}
}

// ParseStrategy resolves a strategy name.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(strings.TrimSpace(s)) {
	case Random:
		return Random, nil
	case Degree:
		return Degree, nil
	case Cutset:
		return Cutset, nil
	case Eclipse:
		return Eclipse, nil
	default:
		return "", fmt.Errorf("attack: unknown strategy %q (random, degree, cutset, eclipse)", s)
	}
}

// ParseStrategies reads a comma-separated strategy list.
func ParseStrategies(csv string) ([]Strategy, error) {
	var out []Strategy
	for _, part := range strings.Split(csv, ",") {
		st, err := ParseStrategy(part)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("attack: empty strategy list")
	}
	return out, nil
}

// Config describes one adversary.
type Config struct {
	// Strategy selects the victim policy; empty means no attack.
	Strategy Strategy
	// Budget is the total number of nodes the adversary may remove over
	// the whole attack window; <= 0 means unlimited (bounded only by the
	// window and the population floor).
	Budget int
	// Kills is the number of nodes removed per strike (default 1).
	Kills int
	// Interval is the time between strikes (default 1 minute).
	Interval time.Duration
	// Target is the keyspace identifier an Eclipse adversary isolates.
	// The zero value derives a deterministic target from a fixed label,
	// so runs stay reproducible without explicit configuration.
	Target id.ID
	// SampleFraction is the connectivity sampling c used by the Cutset
	// strategy's analyzer (default connectivity.DefaultSampleFraction).
	SampleFraction float64
	// Workers bounds the Cutset analyzer's worker pool (0 = GOMAXPROCS).
	Workers int
	// Governance bounds the long-run memory of the Cutset strategy's
	// recon engine and private slot table, applied after each strike
	// (see connectivity.GovernancePolicy). Maintenance never changes
	// victim selection. The zero value disables governance; the scenario
	// runner passes its own policy down.
	Governance connectivity.GovernancePolicy
}

// Enabled reports whether the config describes an actual adversary.
func (c Config) Enabled() bool { return c.Strategy != "" }

// WithDefaults fills zero fields with their defaults.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.Kills == 0 {
		c.Kills = 1
	}
	if c.Interval == 0 {
		c.Interval = time.Minute
	}
	if c.SampleFraction == 0 {
		c.SampleFraction = connectivity.DefaultSampleFraction
	}
	return c
}

// Validate checks a defaulted config.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if _, err := ParseStrategy(string(c.Strategy)); err != nil {
		return err
	}
	if c.Kills < 0 {
		return fmt.Errorf("attack: kills %d must be >= 0", c.Kills)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("attack: interval %v must be positive", c.Interval)
	}
	if c.SampleFraction < 0 {
		return fmt.Errorf("attack: sample fraction %v must be >= 0", c.SampleFraction)
	}
	return nil
}

// String renders the adversary in a compact budget@interval notation.
func (c Config) String() string {
	if !c.Enabled() {
		return "none"
	}
	budget := "∞"
	if c.Budget > 0 {
		budget = fmt.Sprintf("%d", c.Budget)
	}
	return fmt.Sprintf("%s(%dx per %v, budget %s)", c.Strategy, c.Kills, c.Interval, budget)
}

// Population is the adversary's view of the network: it can observe the
// current connectivity graph (the paper's snapshot methodology turned
// into reconnaissance) and kill a specific node. The scenario population
// implements it alongside the churn and traffic views.
type Population interface {
	// AttackSnapshot captures the current connectivity graph with node
	// metadata, exactly as the measurement snapshots do.
	AttackSnapshot() *snapshot.Snapshot
	// RemoveNode makes the live node at addr leave silently; it reports
	// false when no live node has that address.
	RemoveNode(addr simnet.Addr) bool
}

// SlotRecon is optionally implemented by populations whose
// reconnaissance can be captured in stable-slot form. The cutset
// adversary prefers it: its strikes change membership by design, so
// only stable-slot captures let the recon engine rebind incrementally
// from strike to strike instead of rebuilding after every kill. The
// slot table is owned by the adversary (recon slots are its private
// numbering, independent of the measurement snapshots').
type SlotRecon interface {
	// AttackSlotSnapshot captures the current connectivity graph in
	// stable-slot form, updating the given slot table.
	AttackSlotSnapshot(idx *snapshot.SlotIndex) *snapshot.SlotSnapshot
}

// Victim records one successful removal.
type Victim struct {
	// Time is the virtual instant of the strike.
	Time time.Duration
	// Addr and ID identify the removed node.
	Addr simnet.Addr
	ID   id.ID
}

// Engine schedules and executes strikes. Create with NewEngine; nothing
// happens until Start.
type Engine struct {
	sim    *eventsim.Simulator
	cfg    Config
	pop    Population
	until  time.Duration
	timer  *eventsim.Timer
	target id.ID // resolved eclipse target

	// conn is the cutset strategy's reusable analysis engine: one
	// instance serves every strike, rebinding to each reconnaissance
	// snapshot so the flow solvers and the cut-mode network are built
	// once per engine instead of once per strike (nil for the other
	// strategies, which need no flow analysis). When the population
	// supports stable-slot reconnaissance (SlotRecon), connBinder routes
	// every consecutive capture — the adversary's own strikes and the
	// interleaved churn included — through the incremental rebind path,
	// keyed on the engine's private slot table; otherwise identity is
	// re-checked against the previous snapshot's address list and only
	// unchanged membership rebinds incrementally.
	conn       *connectivity.Engine
	connBinder *connectivity.IncrementalBinder
	connSlots  snapshot.SlotIndex
	prevAddrs  []simnet.Addr

	victims []Victim
	strikes int
}

// NewEngine validates the config and builds an engine.
func NewEngine(sim *eventsim.Simulator, cfg Config, pop Population) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{sim: sim, cfg: cfg, pop: pop, target: cfg.Target}
	if cfg.Strategy == Cutset {
		conn, err := connectivity.NewEngine(connectivity.EngineOptions{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		conn.SetGovernance(cfg.Governance)
		e.conn = conn
		e.connBinder = connectivity.NewIncrementalBinder(conn)
	}
	return e, nil
}

// Removed reports how many nodes the adversary has removed so far.
func (e *Engine) Removed() int { return len(e.victims) }

// Strikes reports how many strikes have executed (including strikes that
// removed nothing).
func (e *Engine) Strikes() int { return e.strikes }

// Victims returns the removal log in strike order.
func (e *Engine) Victims() []Victim { return e.victims }

// Start schedules strikes from virtual time `from` until `until`, one
// every Interval starting at `from` itself. A disabled config starts
// nothing.
func (e *Engine) Start(from, until time.Duration) error {
	if !e.cfg.Enabled() {
		return nil
	}
	if until < from {
		return fmt.Errorf("attack: window ends %v before it starts %v", until, from)
	}
	if from < e.sim.Now() {
		return fmt.Errorf("attack: window starts %v in the past (now %v)", from, e.sim.Now())
	}
	e.until = until
	var err error
	e.timer, err = e.sim.ScheduleAt(from, e.strike)
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	return nil
}

// Stop cancels pending strikes.
func (e *Engine) Stop() {
	if e.timer != nil {
		e.timer.Cancel()
		e.timer = nil
	}
}

// budgetLeft returns how many removals remain, or a large count for an
// unlimited budget.
func (e *Engine) budgetLeft() int {
	if e.cfg.Budget <= 0 {
		return int(^uint(0) >> 1) // MaxInt
	}
	return e.cfg.Budget - len(e.victims)
}

// strike executes one attack round: snapshot, select, remove, re-arm.
// The cutset strategy reconnoiters in stable-slot form when the
// population supports it, so its flow engine rebinds incrementally
// across its own removals; every other strategy (and legacy populations)
// uses the dense capture. Victim selection is identical between the two
// recon forms — the slot capture's rank numbering IS the dense capture's
// numbering — so runs replay byte-for-byte regardless of the path.
func (e *Engine) strike() {
	now := e.sim.Now()
	if now >= e.until || e.budgetLeft() <= 0 {
		return
	}
	e.strikes++

	var (
		n     int
		addrs []simnet.Addr
		ids   []id.ID
		pick  func(count int) []int
	)
	if sr, ok := e.pop.(SlotRecon); ok && e.cfg.Strategy == Cutset {
		ss := sr.AttackSlotSnapshot(&e.connSlots)
		n, addrs, ids = ss.N(), ss.Addrs, ss.IDs
		pick = func(count int) []int { return e.selectCutsetSlots(ss, count) }
	} else {
		s := e.pop.AttackSnapshot()
		n, addrs, ids = s.N(), s.Addrs, s.IDs
		pick = func(count int) []int { return e.selectVictims(s, count) }
	}
	count := e.cfg.Kills
	if left := e.budgetLeft(); count > left {
		count = left
	}
	// Never kill the network outright: the adversary leaves at least two
	// nodes standing, so post-strike snapshots remain analyzable.
	if floor := n - 2; count > floor {
		count = floor
	}
	if count > 0 {
		for _, v := range pick(count) {
			if e.pop.RemoveNode(addrs[v]) {
				e.victims = append(e.victims, Victim{Time: now, Addr: addrs[v], ID: ids[v]})
			}
		}
	}

	// Post-strike memory governance for the recon engine: strikes are THE
	// membership churn of this engine, so without maintenance its solver
	// arc stores and slot table only ever grow. Compacting the slot table
	// renumbers the recon slot space; the next capture re-binds from
	// scratch through the binder's fallback, with identical selections.
	if e.conn != nil {
		e.conn.Maintain()
		if e.cfg.Governance.SlotCompactionDue(e.connSlots.Len(), e.connSlots.Live()) {
			e.connSlots.Compact()
		}
	}

	if next := now + e.cfg.Interval; next < e.until && e.budgetLeft() > 0 {
		e.timer = e.sim.MustSchedule(e.cfg.Interval, e.strike)
	}
}
