package attack

import (
	"testing"
	"time"

	"kadre/internal/eventsim"
	"kadre/internal/graph"
	"kadre/internal/id"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
)

// fakePop is a deterministic Population over a fixed topology: vertex i
// has address i+1 and identifier FromUint64(i). Removals delete the
// vertex; snapshots project the surviving subgraph.
type fakePop struct {
	bits  int
	alive []bool
	edges [][2]int
	sim   *eventsim.Simulator
}

func newFakePop(sim *eventsim.Simulator, n int, edges [][2]int) *fakePop {
	p := &fakePop{bits: 16, alive: make([]bool, n), edges: edges, sim: sim}
	for i := range p.alive {
		p.alive[i] = true
	}
	return p
}

func (p *fakePop) addrOf(v int) simnet.Addr { return simnet.Addr(v + 1) }

func (p *fakePop) AttackSnapshot() *snapshot.Snapshot {
	var live []int
	remap := make(map[int]int)
	for v, a := range p.alive {
		if a {
			remap[v] = len(live)
			live = append(live, v)
		}
	}
	s := &snapshot.Snapshot{
		Time:  p.sim.Now(),
		IDs:   make([]id.ID, len(live)),
		Addrs: make([]simnet.Addr, len(live)),
		Graph: graph.NewDigraph(len(live)),
	}
	for i, v := range live {
		s.IDs[i] = id.FromUint64(p.bits, uint64(v))
		s.Addrs[i] = p.addrOf(v)
	}
	for _, e := range p.edges {
		u, uok := remap[e[0]]
		v, vok := remap[e[1]]
		if uok && vok {
			s.Graph.AddEdge(u, v)
			s.Graph.AddEdge(v, u)
		}
	}
	return s
}

func (p *fakePop) RemoveNode(addr simnet.Addr) bool {
	v := int(addr) - 1
	if v < 0 || v >= len(p.alive) || !p.alive[v] {
		return false
	}
	p.alive[v] = false
	return true
}

func (p *fakePop) liveCount() int {
	n := 0
	for _, a := range p.alive {
		if a {
			n++
		}
	}
	return n
}

// ring returns undirected ring edges over n vertices.
func ring(n int) [][2]int {
	out := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, [2]int{i, (i + 1) % n})
	}
	return out
}

func runAttack(t *testing.T, seed int64, cfg Config, n int, edges [][2]int) (*Engine, *fakePop) {
	t.Helper()
	sim := eventsim.New(seed)
	pop := newFakePop(sim, n, edges)
	eng, err := NewEngine(sim, cfg, pop)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(0, time.Hour); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(time.Hour)
	return eng, pop
}

func TestParseStrategies(t *testing.T) {
	got, err := ParseStrategies("random, degree,cutset,eclipse")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != Random || got[3] != Eclipse {
		t.Fatalf("parsed %v", got)
	}
	if _, err := ParseStrategies("random,bogus"); err == nil {
		t.Fatal("bogus strategy should fail")
	}
	if _, err := ParseStrategy(""); err == nil {
		t.Fatal("empty strategy should fail")
	}
}

func TestConfigValidateAndDefaults(t *testing.T) {
	cfg := Config{Strategy: Random}.WithDefaults()
	if cfg.Kills != 1 || cfg.Interval != time.Minute || cfg.SampleFraction == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config must validate: %v", err)
	}
	if err := (Config{Strategy: "santa"}.WithDefaults()).Validate(); err == nil {
		t.Fatal("unknown strategy must fail validation")
	}
	if err := (Config{Strategy: Random, Interval: -time.Second}).Validate(); err == nil {
		t.Fatal("negative interval must fail validation")
	}
}

func TestEngineBudgetAndFloor(t *testing.T) {
	// Budget 5, 2 kills per strike: exactly 5 victims.
	eng, pop := runAttack(t, 1, Config{
		Strategy: Random, Budget: 5, Kills: 2, Interval: time.Minute,
	}, 20, ring(20))
	if eng.Removed() != 5 {
		t.Fatalf("removed %d, want budget 5", eng.Removed())
	}
	if pop.liveCount() != 15 {
		t.Fatalf("live %d, want 15", pop.liveCount())
	}

	// Unlimited budget with a huge kill count: stops at the 2-node floor.
	eng, pop = runAttack(t, 1, Config{
		Strategy: Random, Kills: 100, Interval: time.Minute,
	}, 12, ring(12))
	if pop.liveCount() != 2 {
		t.Fatalf("live %d, want floor of 2", pop.liveCount())
	}
	if eng.Removed() != 10 {
		t.Fatalf("removed %d, want 10", eng.Removed())
	}
}

func TestStrikeScheduleRespectsWindow(t *testing.T) {
	sim := eventsim.New(1)
	pop := newFakePop(sim, 50, ring(50))
	eng, err := NewEngine(sim, Config{Strategy: Random, Kills: 1, Interval: 10 * time.Minute}, pop)
	if err != nil {
		t.Fatal(err)
	}
	// Window [30m, 60m): strikes at 30, 40, 50 only.
	if err := eng.Start(30*time.Minute, time.Hour); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(2 * time.Hour)
	if eng.Strikes() != 3 || eng.Removed() != 3 {
		t.Fatalf("strikes=%d removed=%d, want 3 and 3", eng.Strikes(), eng.Removed())
	}
	for _, v := range eng.Victims() {
		if v.Time < 30*time.Minute || v.Time >= time.Hour {
			t.Fatalf("victim at %v outside window", v.Time)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	cfg := Config{Strategy: Random, Budget: 8, Kills: 2, Interval: time.Minute}
	a, _ := runAttack(t, 7, cfg, 30, ring(30))
	b, _ := runAttack(t, 7, cfg, 30, ring(30))
	c, _ := runAttack(t, 8, cfg, 30, ring(30))
	if len(a.Victims()) != len(b.Victims()) {
		t.Fatalf("same seed, different victim counts")
	}
	for i := range a.Victims() {
		if a.Victims()[i] != b.Victims()[i] {
			t.Fatalf("same seed, victim %d differs: %+v vs %+v", i, a.Victims()[i], b.Victims()[i])
		}
	}
	same := len(a.Victims()) == len(c.Victims())
	if same {
		for i := range a.Victims() {
			if a.Victims()[i] != c.Victims()[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical victim sequences")
	}
}

func TestDegreeTargetsHub(t *testing.T) {
	// Star: vertex 0 is the hub; plus a ring over the leaves so the graph
	// stays connected after the hub dies.
	edges := ring(9)
	for i := range edges {
		edges[i] = [2]int{edges[i][0] + 1, edges[i][1] + 1}
	}
	for leaf := 1; leaf < 10; leaf++ {
		edges = append(edges, [2]int{0, leaf})
	}
	eng, _ := runAttack(t, 1, Config{Strategy: Degree, Budget: 1, Kills: 1, Interval: time.Minute}, 10, edges)
	if len(eng.Victims()) != 1 || eng.Victims()[0].Addr != 1 {
		t.Fatalf("degree attack removed %+v, want the hub (addr 1)", eng.Victims())
	}
}

func TestEclipseTargetsClosestIDs(t *testing.T) {
	// Identifiers are FromUint64(v); target value 4 makes vertices 4, 5
	// (distance 1), 6 (distance 2)... the closest region.
	target := id.FromUint64(16, 4)
	eng, pop := runAttack(t, 1, Config{
		Strategy: Eclipse, Budget: 3, Kills: 3, Interval: time.Minute, Target: target,
	}, 16, ring(16))
	if eng.Removed() != 3 {
		t.Fatalf("removed %d, want 3", eng.Removed())
	}
	for _, want := range []int{4, 5, 6} {
		if pop.alive[want] {
			t.Fatalf("vertex %d (XOR-closest to target) still alive; victims %+v", want, eng.Victims())
		}
	}
}

func TestCutsetTargetsBottleneck(t *testing.T) {
	// Barbell: two 5-cliques joined through vertex 10. The minimum vertex
	// cut is {10}; the cutset adversary must kill it first.
	var edges [][2]int
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			edges = append(edges, [2]int{a, b}, [2]int{a + 5, b + 5})
		}
	}
	edges = append(edges, [2]int{0, 10}, [2]int{5, 10})
	eng, pop := runAttack(t, 1, Config{
		Strategy: Cutset, Budget: 1, Kills: 1, Interval: time.Minute,
		SampleFraction: 1.0, Workers: 4,
	}, 11, edges)
	if eng.Removed() != 1 || pop.alive[10] {
		t.Fatalf("cutset attack removed %+v, want the bridge vertex 10", eng.Victims())
	}
}

func TestCutsetFallsBackOnDegreeWhenNoCut(t *testing.T) {
	// Complete graph: no vertex cut exists; the strategy degrades to the
	// degree attack instead of stalling.
	var edges [][2]int
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			edges = append(edges, [2]int{a, b})
		}
	}
	eng, _ := runAttack(t, 1, Config{
		Strategy: Cutset, Budget: 2, Kills: 1, Interval: time.Minute, SampleFraction: 1.0,
	}, 6, edges)
	if eng.Removed() != 2 {
		t.Fatalf("removed %d, want 2 (degree fallback)", eng.Removed())
	}
}

func TestCutsetReusesAnalysisEngine(t *testing.T) {
	// Many strikes against a shrinking ring: every strike runs a full
	// GraphCut, but the connectivity engine (and its cut-mode flow
	// network) must be constructed exactly once and rebound in place —
	// the PR-3 regression guard for the per-strike rebuild.
	eng, pop := runAttack(t, 1, Config{
		Strategy: Cutset, Budget: 8, Kills: 1, Interval: time.Minute, SampleFraction: 1.0,
	}, 16, ring(16))
	if eng.Removed() != 8 {
		t.Fatalf("removed %d nodes, want the full budget 8 (live %d)", eng.Removed(), pop.liveCount())
	}
	if eng.Strikes() < 8 {
		t.Fatalf("only %d strikes executed", eng.Strikes())
	}
	if eng.conn == nil {
		t.Fatal("cutset engine must hold a persistent connectivity engine")
	}
	if builds := eng.conn.CutNetworkBuilds(); builds != 1 {
		t.Fatalf("cut-mode network constructed %d times over %d strikes, want 1", builds, eng.Strikes())
	}
}

func TestNonCutsetStrategiesSkipAnalysisEngine(t *testing.T) {
	for _, strat := range []Strategy{Random, Degree, Eclipse} {
		eng, _ := runAttack(t, 1, Config{
			Strategy: strat, Budget: 2, Kills: 1, Interval: time.Minute,
		}, 12, ring(12))
		if eng.conn != nil {
			t.Fatalf("strategy %s needlessly built a connectivity engine", strat)
		}
	}
}
