package attack

import (
	"math/rand"
	"slices"
	"sort"

	"kadre/internal/connectivity"
	"kadre/internal/id"
	"kadre/internal/snapshot"
)

// eclipseTargetLabel seeds the default Eclipse target: hashing a fixed
// label keeps unconfigured eclipse runs deterministic.
const eclipseTargetLabel = "kadre/attack/eclipse-target"

// selectVictims returns up to count distinct vertex indexes of s to
// remove, according to the engine's strategy. Every strategy is
// deterministic given the snapshot (and, for Random, the simulator's
// seeded generator), so attack runs replay exactly under a seed.
func (e *Engine) selectVictims(s *snapshot.Snapshot, count int) []int {
	if count > s.N() {
		count = s.N()
	}
	if count <= 0 {
		return nil
	}
	switch e.cfg.Strategy {
	case Random:
		return selectRandom(s, count, e.sim.Rand())
	case Degree:
		return selectDegree(s, count)
	case Cutset:
		return e.selectCutset(s, count)
	case Eclipse:
		return e.selectEclipse(s, count)
	default:
		return nil // unreachable: NewEngine validates the strategy
	}
}

// selectRandom picks count distinct vertices uniformly from the seeded
// generator — the baseline comparable to the paper's random churn, but on
// the adversary's schedule.
func selectRandom(s *snapshot.Snapshot, count int, rng *rand.Rand) []int {
	return rng.Perm(s.N())[:count]
}

// selectDegree picks the count vertices with the largest total degree
// (out plus in), ties broken by vertex index so runs are deterministic.
func selectDegree(s *snapshot.Snapshot, count int) []int {
	in := s.Graph.InDegrees()
	order := make([]int, s.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := s.Graph.OutDegree(order[a]) + in[order[a]]
		db := s.Graph.OutDegree(order[b]) + in[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order[:count]
}

// selectCutset picks vertices on a minimum vertex cut of the snapshot —
// the nodes whose removal the paper's own metric identifies as optimal
// (Equation 2's compromised set). The cut is deterministic because the
// analyzer's MinPair is scheduling-independent. A cut smaller than count
// is topped up with the highest-degree remaining vertices; a graph with
// no usable cut (complete, already disconnected beyond repair, or an
// analyzer sample with no evaluable pair) falls back to the degree
// strategy entirely.
func (e *Engine) selectCutset(s *snapshot.Snapshot, count int) []int {
	// Vertex identity across reconnaissance snapshots: same live nodes in
	// the same order iff the address lists match (strikes usually change
	// membership, but budget-exhausted or failed removals leave it
	// intact, and then the recon analysis rebinds incrementally).
	same := slices.Equal(e.prevAddrs, s.Addrs)
	e.connBinder.BindNext(s.Graph, same)
	e.prevAddrs = append(e.prevAddrs[:0], s.Addrs...)
	cut, _, ok, err := e.conn.GraphCut(connectivity.Query{
		SampleFraction: e.cfg.SampleFraction,
	})
	if err != nil || !ok || len(cut) == 0 {
		return selectDegree(s, count)
	}
	if len(cut) >= count {
		return cut[:count] // GraphCut returns sorted vertices
	}
	picked := make(map[int]bool, count)
	out := make([]int, 0, count)
	for _, v := range cut {
		picked[v] = true
		out = append(out, v)
	}
	for _, v := range selectDegree(s, s.N()) {
		if len(out) == count {
			break
		}
		if !picked[v] {
			picked[v] = true
			out = append(out, v)
		}
	}
	return out
}

// selectEclipse picks the count vertices whose identifiers are closest to
// the target under the XOR metric, erasing the nodes responsible for the
// target's keyspace region.
func (e *Engine) selectEclipse(s *snapshot.Snapshot, count int) []int {
	if e.target.IsZeroValue() {
		e.target = id.Hash(s.IDs[0].Bits(), []byte(eclipseTargetLabel))
	}
	order := make([]int, s.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if s.IDs[va].CloserTo(e.target, s.IDs[vb]) {
			return true
		}
		if s.IDs[vb].CloserTo(e.target, s.IDs[va]) {
			return false
		}
		return va < vb // identical distance is impossible for distinct IDs
	})
	return order[:count]
}
