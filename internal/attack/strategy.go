package attack

import (
	"math/rand"
	"slices"
	"sort"

	"kadre/internal/connectivity"
	"kadre/internal/id"
	"kadre/internal/snapshot"
)

// eclipseTargetLabel seeds the default Eclipse target: hashing a fixed
// label keeps unconfigured eclipse runs deterministic.
const eclipseTargetLabel = "kadre/attack/eclipse-target"

// selectVictims returns up to count distinct vertex indexes of s to
// remove, according to the engine's strategy. Every strategy is
// deterministic given the snapshot (and, for Random, the simulator's
// seeded generator), so attack runs replay exactly under a seed.
func (e *Engine) selectVictims(s *snapshot.Snapshot, count int) []int {
	if count > s.N() {
		count = s.N()
	}
	if count <= 0 {
		return nil
	}
	switch e.cfg.Strategy {
	case Random:
		return selectRandom(s, count, e.sim.Rand())
	case Degree:
		return selectDegree(s, count)
	case Cutset:
		return e.selectCutset(s, count)
	case Eclipse:
		return e.selectEclipse(s, count)
	default:
		return nil // unreachable: NewEngine validates the strategy
	}
}

// selectRandom picks count distinct vertices uniformly from the seeded
// generator — the baseline comparable to the paper's random churn, but on
// the adversary's schedule.
func selectRandom(s *snapshot.Snapshot, count int, rng *rand.Rand) []int {
	return rng.Perm(s.N())[:count]
}

// selectDegree picks the count vertices with the largest total degree
// (out plus in), ties broken by vertex index so runs are deterministic.
func selectDegree(s *snapshot.Snapshot, count int) []int {
	in := s.Graph.InDegrees()
	order := make([]int, s.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := s.Graph.OutDegree(order[a]) + in[order[a]]
		db := s.Graph.OutDegree(order[b]) + in[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order[:count]
}

// selectCutset picks vertices on a minimum vertex cut of the snapshot —
// the nodes whose removal the paper's own metric identifies as optimal
// (Equation 2's compromised set). The cut is deterministic because the
// analyzer's MinPair is scheduling-independent. A cut smaller than count
// is topped up with the highest-degree remaining vertices; a graph with
// no usable cut (complete, already disconnected beyond repair, or an
// analyzer sample with no evaluable pair) falls back to the degree
// strategy entirely.
func (e *Engine) selectCutset(s *snapshot.Snapshot, count int) []int {
	// Vertex identity across reconnaissance snapshots: same live nodes in
	// the same order iff the address lists match (strikes usually change
	// membership, but budget-exhausted or failed removals leave it
	// intact, and then the recon analysis rebinds incrementally).
	same := slices.Equal(e.prevAddrs, s.Addrs)
	e.connBinder.BindNext(s.Graph, same)
	e.prevAddrs = append(e.prevAddrs[:0], s.Addrs...)
	cut, _, ok, err := e.conn.GraphCut(connectivity.Query{
		SampleFraction: e.cfg.SampleFraction,
	})
	if err != nil || !ok || len(cut) == 0 {
		return selectDegree(s, count)
	}
	return topUpWithDegrees(cut, count, func() []int { return selectDegree(s, s.N()) })
}

// topUpWithDegrees realizes the cutset strategy's victim list from a
// minimum cut: the whole cut when it covers count (GraphCut returns
// sorted vertices, so the truncation is deterministic), otherwise the
// cut extended with the highest-degree remaining vertices. Shared by the
// dense and stable-slot recon paths so the policy cannot drift between
// them; degreeOrder is a thunk because the degree sort is only needed
// when the cut is short.
func topUpWithDegrees(cut []int, count int, degreeOrder func() []int) []int {
	if len(cut) >= count {
		return cut[:count]
	}
	picked := make(map[int]bool, count)
	out := make([]int, 0, count)
	for _, v := range cut {
		picked[v] = true
		out = append(out, v)
	}
	for _, v := range degreeOrder() {
		if len(out) == count {
			break
		}
		if !picked[v] {
			picked[v] = true
			out = append(out, v)
		}
	}
	return out
}

// selectCutsetSlots is selectCutset over a stable-slot reconnaissance
// capture: the flow engine binds the slot graph with its compaction map
// — incrementally across strikes, since slot identity survives the
// adversary's own removals and the interleaved churn — and GraphCut
// answers in dense rank numbering, which is exactly the victim-indexing
// space of the capture's Addrs/IDs. Selection is identical to the dense
// selectCutset, including the degree top-up and fallback.
func (e *Engine) selectCutsetSlots(s *snapshot.SlotSnapshot, count int) []int {
	if count > s.N() {
		count = s.N()
	}
	e.connBinder.BindNextSlots(s.Graph, s.Order)
	cut, _, ok, err := e.conn.GraphCut(connectivity.Query{
		SampleFraction: e.cfg.SampleFraction,
	})
	if err != nil || !ok || len(cut) == 0 {
		return selectDegreeRanks(s, count)
	}
	return topUpWithDegrees(cut, count, func() []int { return selectDegreeRanks(s, s.N()) })
}

// selectDegreeRanks mirrors selectDegree on a slot capture: ranks
// ordered by total slot-graph degree (out plus in), ties broken by rank
// — the same ordering selectDegree produces on the dense capture, since
// rank numbering IS the dense numbering.
func selectDegreeRanks(s *snapshot.SlotSnapshot, count int) []int {
	in := s.Graph.InDegrees()
	order := make([]int, s.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := s.Order[order[a]], s.Order[order[b]]
		da := s.Graph.OutDegree(sa) + in[sa]
		db := s.Graph.OutDegree(sb) + in[sb]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order[:count]
}

// selectEclipse picks the count vertices whose identifiers are closest to
// the target under the XOR metric, erasing the nodes responsible for the
// target's keyspace region.
func (e *Engine) selectEclipse(s *snapshot.Snapshot, count int) []int {
	if e.target.IsZeroValue() {
		e.target = id.Hash(s.IDs[0].Bits(), []byte(eclipseTargetLabel))
	}
	order := make([]int, s.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if s.IDs[va].CloserTo(e.target, s.IDs[vb]) {
			return true
		}
		if s.IDs[vb].CloserTo(e.target, s.IDs[va]) {
			return false
		}
		return va < vb // identical distance is impossible for distinct IDs
	})
	return order[:count]
}
