// Package churn generates the paper's network-churn scenarios: per minute
// of simulated time, a fixed number of randomly chosen nodes leave and a
// fixed number of fresh nodes join, each action at a uniformly random
// instant within its minute (§5.3). The scenarios evaluated are 0/1, 1/1,
// and 10/10 (add/remove per minute).
package churn

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"kadre/internal/eventsim"
)

// Rate is a churn scenario: nodes added and removed per minute.
type Rate struct {
	Add    int
	Remove int
}

// The paper's three churn scenarios.
var (
	Rate0_1   = Rate{Add: 0, Remove: 1}
	Rate1_1   = Rate{Add: 1, Remove: 1}
	Rate10_10 = Rate{Add: 10, Remove: 10}
)

// IsZero reports whether the rate produces no churn at all.
func (r Rate) IsZero() bool { return r.Add == 0 && r.Remove == 0 }

// String renders the paper's "add/remove" notation.
func (r Rate) String() string { return fmt.Sprintf("%d/%d", r.Add, r.Remove) }

// ParseRate reads the "add/remove" notation. Counts are plain unsigned
// decimal digits: Atoi's sign forms ("+1/1", "1/-0") are rejected, so a
// rate round-trips through String unchanged.
func ParseRate(s string) (Rate, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return Rate{}, fmt.Errorf("churn: rate %q is not add/remove", s)
	}
	add, err1 := parseCount(parts[0])
	remove, err2 := parseCount(parts[1])
	if err1 != nil || err2 != nil {
		return Rate{}, fmt.Errorf("churn: rate %q has invalid counts", s)
	}
	return Rate{Add: add, Remove: remove}, nil
}

// parseCount accepts only unsigned digit strings.
func parseCount(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("churn: empty count")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("churn: count %q is not an unsigned integer", s)
		}
	}
	return strconv.Atoi(s)
}

// Population is the churn generator's view of the network.
type Population interface {
	// RemoveRandomNode removes one uniformly chosen live node. It reports
	// false when no node is left to remove.
	RemoveRandomNode() bool
	// AddNode creates a fresh node and joins it through a random live
	// bootstrap node.
	AddNode() error
}

// Generator applies a churn rate to a population for a bounded phase.
type Generator struct {
	sim   *eventsim.Simulator
	rate  Rate
	pop   Population
	until time.Duration
	timer *eventsim.Timer

	added   int
	removed int
	errs    []error
}

// NewGenerator builds a churn generator. Nothing happens until Start.
func NewGenerator(sim *eventsim.Simulator, rate Rate, pop Population) *Generator {
	return &Generator{sim: sim, rate: rate, pop: pop}
}

// Added reports how many joins the generator has performed.
func (g *Generator) Added() int { return g.added }

// Removed reports how many removals the generator has performed.
func (g *Generator) Removed() int { return g.removed }

// Errs returns errors from node additions (at most one retained per
// minute; additions never abort the run).
func (g *Generator) Errs() []error { return g.errs }

// Start schedules churn from virtual time `from` until `until`. Each
// minute in the window gets rate.Remove removals and rate.Add additions at
// independent uniformly random offsets within the minute.
func (g *Generator) Start(from, until time.Duration) error {
	if g.rate.IsZero() {
		return nil
	}
	if until < from {
		return fmt.Errorf("churn: window ends %v before it starts %v", until, from)
	}
	if from < g.sim.Now() {
		return fmt.Errorf("churn: window starts %v in the past (now %v)", from, g.sim.Now())
	}
	g.until = until
	var err error
	g.timer, err = g.sim.ScheduleAt(from, g.minute)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	return nil
}

// Stop cancels pending minute ticks. Actions already scheduled inside the
// current minute still run.
func (g *Generator) Stop() {
	if g.timer != nil {
		g.timer.Cancel()
		g.timer = nil
	}
}

// minute schedules one minute's worth of churn actions and re-arms.
func (g *Generator) minute() {
	now := g.sim.Now()
	if now >= g.until {
		return
	}
	r := g.sim.Rand()
	for i := 0; i < g.rate.Remove; i++ {
		offset := time.Duration(r.Int63n(int64(time.Minute)))
		g.sim.MustSchedule(offset, func() {
			if g.pop.RemoveRandomNode() {
				g.removed++
			}
		})
	}
	for i := 0; i < g.rate.Add; i++ {
		offset := time.Duration(r.Int63n(int64(time.Minute)))
		g.sim.MustSchedule(offset, func() {
			if err := g.pop.AddNode(); err != nil {
				if len(g.errs) < 16 {
					g.errs = append(g.errs, err)
				}
				return
			}
			g.added++
		})
	}
	next := now + time.Minute
	if next < g.until {
		g.timer = g.sim.MustSchedule(time.Minute, g.minute)
	}
}
