package churn

import (
	"errors"
	"testing"
	"time"

	"kadre/internal/eventsim"
)

type fakePop struct {
	live    int
	added   int
	removed int
	addErr  error
}

func (f *fakePop) RemoveRandomNode() bool {
	if f.live == 0 {
		return false
	}
	f.live--
	f.removed++
	return true
}

func (f *fakePop) AddNode() error {
	if f.addErr != nil {
		return f.addErr
	}
	f.live++
	f.added++
	return nil
}

func TestParseRate(t *testing.T) {
	tests := []struct {
		in      string
		want    Rate
		wantErr bool
	}{
		{"0/1", Rate0_1, false},
		{"1/1", Rate1_1, false},
		{"10/10", Rate10_10, false},
		{"3/7", Rate{Add: 3, Remove: 7}, false},
		{"1", Rate{}, true},
		{"a/b", Rate{}, true},
		{"-1/1", Rate{}, true},
		{"1/2/3", Rate{}, true},
		// Signed and otherwise decorated counts: strconv.Atoi accepts
		// "+1" and "-0", but a churn rate is a plain non-negative count —
		// only unsigned digits parse.
		{"+1/1", Rate{}, true},
		{"1/+1", Rate{}, true},
		{"1/-0", Rate{}, true},
		{"-0/1", Rate{}, true},
		{" 1/1", Rate{}, true},
		{"1/1 ", Rate{}, true},
		{"1/ 1", Rate{}, true},
		{"", Rate{}, true},
		{"/", Rate{}, true},
		{"1/", Rate{}, true},
		{"/1", Rate{}, true},
		{"0x1/1", Rate{}, true},
		{"1_0/1", Rate{}, true},
	}
	for _, tt := range tests {
		got, err := ParseRate(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseRate(%q) error = %v", tt.in, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseRate(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRateString(t *testing.T) {
	if Rate10_10.String() != "10/10" || Rate0_1.String() != "0/1" {
		t.Fatal("String format wrong")
	}
	if !(Rate{}).IsZero() || Rate1_1.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestGeneratorAppliesRate(t *testing.T) {
	sim := eventsim.New(3)
	pop := &fakePop{live: 100}
	g := NewGenerator(sim, Rate{Add: 2, Remove: 3}, pop)
	// 10 minutes of churn.
	if err := g.Start(0, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(20 * time.Minute)
	if g.Added() != 20 || pop.added != 20 {
		t.Errorf("added %d, want 20", g.Added())
	}
	if g.Removed() != 30 || pop.removed != 30 {
		t.Errorf("removed %d, want 30", g.Removed())
	}
}

func TestGeneratorActionsSpreadWithinMinute(t *testing.T) {
	sim := eventsim.New(5)
	pop := &fakePop{live: 1000}
	g := NewGenerator(sim, Rate{Add: 10, Remove: 10}, pop)
	if err := g.Start(0, time.Minute); err != nil {
		t.Fatal(err)
	}
	// Step through events and check they do not all fire at the same
	// instant (the paper randomizes action times inside each minute).
	times := map[time.Duration]bool{}
	for sim.Step() {
		times[sim.Now()] = true
	}
	if len(times) < 10 {
		t.Fatalf("churn actions clustered on %d distinct instants", len(times))
	}
}

func TestGeneratorWindowEnd(t *testing.T) {
	sim := eventsim.New(7)
	pop := &fakePop{live: 50}
	g := NewGenerator(sim, Rate{Add: 0, Remove: 1}, pop)
	if err := g.Start(5*time.Minute, 8*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(30 * time.Minute)
	// Minutes 5, 6, 7 -> 3 removals; the window closes at 8.
	if g.Removed() != 3 {
		t.Fatalf("removed %d, want 3", g.Removed())
	}
}

func TestGeneratorStop(t *testing.T) {
	sim := eventsim.New(9)
	pop := &fakePop{live: 50}
	g := NewGenerator(sim, Rate{Remove: 1}, pop)
	if err := g.Start(0, time.Hour); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(2*time.Minute + 30*time.Second)
	g.Stop()
	sim.RunUntil(time.Hour)
	if g.Removed() > 3 {
		t.Fatalf("removed %d after Stop, want <= 3", g.Removed())
	}
}

func TestGeneratorZeroRateNoop(t *testing.T) {
	sim := eventsim.New(11)
	pop := &fakePop{live: 5}
	g := NewGenerator(sim, Rate{}, pop)
	if err := g.Start(0, time.Hour); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(time.Hour)
	if pop.added+pop.removed != 0 {
		t.Fatal("zero rate caused churn")
	}
}

func TestGeneratorInvalidWindows(t *testing.T) {
	sim := eventsim.New(13)
	g := NewGenerator(sim, Rate1_1, &fakePop{})
	if err := g.Start(time.Hour, time.Minute); err == nil {
		t.Error("inverted window should fail")
	}
	sim.RunUntil(time.Minute)
	if err := g.Start(0, time.Hour); err == nil {
		t.Error("window starting in the past should fail")
	}
}

func TestGeneratorCollectsAddErrors(t *testing.T) {
	sim := eventsim.New(15)
	pop := &fakePop{live: 10, addErr: errors.New("boom")}
	g := NewGenerator(sim, Rate{Add: 1}, pop)
	if err := g.Start(0, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(10 * time.Minute)
	if g.Added() != 0 {
		t.Fatal("failed adds counted as added")
	}
	if len(g.Errs()) == 0 {
		t.Fatal("add errors not collected")
	}
}

func TestRemoveFromEmptyPopulation(t *testing.T) {
	sim := eventsim.New(17)
	pop := &fakePop{live: 1}
	g := NewGenerator(sim, Rate{Remove: 5}, pop)
	if err := g.Start(0, time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(5 * time.Minute)
	if g.Removed() != 1 {
		t.Fatalf("removed %d from population of 1, want 1", g.Removed())
	}
}
