package connectivity

import "kadre/internal/graph"

// IncrementalBinder drives one Engine across a sequence of snapshot
// graphs, taking the incremental Rebind path whenever the caller vouches
// that vertex identity carried over from the previous snapshot, and the
// full Bind path otherwise. It owns the previous graph reference and a
// reused delta buffer, so the steady state — diff, patch, analyze — does
// not allocate.
//
// Vertex identity is the caller's knowledge, not the binder's: snapshot
// captures compact live nodes into dense indices, so index i means "the
// same node" across two snapshots only if the live membership (and its
// order) did not change in between. The scenario runner derives that from
// the population's membership generation; the churn harness from its
// trace. Passing sameVertices=true for snapshots whose membership
// actually changed yields wrong analyses — the differential churn oracle
// exists to catch exactly that class of wiring bug.
//
// Graphs handed to BindNext must not be mutated afterwards: the binder
// keeps the latest one as the diff base, and the engine analyzes it.
type IncrementalBinder struct {
	eng   *Engine
	prev  *graph.Digraph
	delta graph.Delta

	// Stable-slot sequence state: the previous capture's compaction map
	// and whether the previous bind went through the slot path at all
	// (mixing BindNext and BindNextSlots forces a full bind at the seam).
	prevOrder []int
	prevSlots bool

	incremental int
	full        int
}

// NewIncrementalBinder wraps eng. Once a binder drives an engine, ALL
// binding must go through BindNext: a direct Engine.Bind (or Rebind) in
// between is invisible to the binder, so its next diff would be computed
// against the wrong base graph and patched onto the wrong binding —
// silently wrong analyses. Queries on the engine between BindNext calls
// are fine.
func NewIncrementalBinder(eng *Engine) *IncrementalBinder {
	return &IncrementalBinder{eng: eng}
}

// Engine returns the wrapped engine, for running queries after BindNext.
func (b *IncrementalBinder) Engine() *Engine { return b.eng }

// BindNext binds g, incrementally when possible, and reports whether the
// incremental path was taken. sameVertices declares that g's vertex
// indices denote the same nodes, in the same order, as the previously
// bound graph's.
func (b *IncrementalBinder) BindNext(g *graph.Digraph, sameVertices bool) bool {
	inc := false
	if sameVertices && !b.prevSlots && b.prev != nil && b.prev.N() == g.N() {
		graph.DiffInto(b.prev, g, &b.delta)
		inc = b.eng.Rebind(g, b.delta)
	} else {
		b.eng.Bind(g)
	}
	b.prev = g
	b.prevSlots = false
	if inc {
		b.incremental++
	} else {
		b.full++
	}
	return inc
}

// BindNextSlots binds a stable-slot capture (the graph plus its
// canonical compaction map, as produced by snapshot.CaptureSlots),
// incrementally whenever the slot space carried over — which it does
// across joins, leaves and strikes, not just same-membership edge churn:
// slot identity is exactly what makes the vertex half of the delta
// well-defined. Only a slot-table growth (more live nodes than ever
// before) or a seam with the dense BindNext path forces a full bind. The
// binder detects membership changes itself by comparing capture orders,
// so there is no same-vertices flag for callers to get wrong.
//
// Like BindNext, the graph must not be mutated afterwards; order is
// copied.
func (b *IncrementalBinder) BindNextSlots(g *graph.Digraph, order []int) bool {
	inc := false
	if b.prevSlots && b.prev != nil && b.prev.N() == g.N() {
		graph.DiffSlotsInto(b.prev, g, b.prevOrder, order, &b.delta)
		inc = b.eng.RebindSlots(g, b.delta, order)
	} else {
		b.eng.BindSlots(g, order)
	}
	b.prev = g
	b.prevSlots = true
	b.prevOrder = append(b.prevOrder[:0], order...)
	if inc {
		b.incremental++
	} else {
		b.full++
	}
	return inc
}

// IncrementalBinds reports how many BindNext calls took the Rebind path.
func (b *IncrementalBinder) IncrementalBinds() int { return b.incremental }

// FullBinds reports how many BindNext calls fell back to a full Bind.
func (b *IncrementalBinder) FullBinds() int { return b.full }
