// Package churntest is the differential churn oracle: it pins the
// incremental snapshot-connectivity path (graph deltas patched into a
// long-lived engine via Rebind) to the from-scratch reference (a fresh
// engine bound per snapshot) over randomized churn traces.
//
// A trace models exactly the membership dynamics of the scenario runner:
// routing-table edge churn between snapshots, node joins appended in join
// order, random departures, and adversarial strikes that remove the
// highest-degree nodes. After every step the live membership is captured
// twice: in stable-slot form the way snapshot.CaptureSlots does (each
// node holds a persistent vertex slot, tombstoned on departure, recycled
// for joins), which the incremental engines bind through
// IncrementalBinder.BindNextSlots, and in canonical dense form the way
// snapshot.Capture compacts live nodes, which a fresh reference engine
// binds from scratch. Every answer — the fused Min/Avg snapshot
// analysis, the deterministic MinPair, and the minimum vertex cut — must
// be identical in the canonical numbering. Because stable slots keep the
// vertex space alive across joins, leaves and strikes, the incremental
// path is asserted to be taken on every step where the slot table did
// not grow — membership churn included, which is exactly what the
// pre-slot engine could not do — with zero solver patch fallbacks.
// Because the incremental path replaces exact recomputation with
// in-place reuse, this equivalence IS the correctness argument; the
// harness runs under -race with both a serial and a wide worker pool.
package churntest

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"kadre/internal/connectivity"
	"kadre/internal/graph"
	"kadre/internal/snapshot"
)

// Options parameterizes one oracle run.
type Options struct {
	// Seed drives every random choice of the trace.
	Seed int64
	// Initial is the starting node count.
	Initial int
	// Steps is the number of churn steps (snapshots) to replay.
	Steps int
	// Degree is the target out-degree when wiring new nodes.
	Degree int
	// Workers lists the engine worker pools replayed incrementally; every
	// pool must agree with the from-scratch reference (and hence with
	// every other pool). Typically {1, 8}.
	Workers []int
	// SampleFraction is the analysis sampling c; 0 means 0.5 (high enough
	// to keep tiny traces informative).
	SampleFraction float64
	// MembershipHeavy biases the trace toward joins, leaves and strikes
	// (about two thirds of steps instead of ~30%), soaking the
	// membership-crossing rebind path and the slot recycler.
	MembershipHeavy bool
	// Governance, when enabled, installs the memory-governance policy on
	// every incremental engine and mirrors the scenario runner's
	// maintenance points: Engine.Maintain after each step's queries, and a
	// slot-table compaction between captures once the policy's slack
	// threshold trips. The oracle then additionally holds the governed
	// engines to bit-identical answers across every compaction event. The
	// zero value disables governance (the historical trace).
	Governance connectivity.GovernancePolicy
	// edgeChurnOnly restricts the trace to routing-table churn, pinning
	// the all-incremental steady state (test hook).
	edgeChurnOnly bool
}

// Stats reports what a successful run exercised.
type Stats struct {
	// IncrementalBinds and FullBinds count the binding paths taken by
	// each incremental engine (identical across worker counts).
	IncrementalBinds int
	FullBinds        int
	// MembershipRebinds counts incremental binds that crossed a join,
	// leave or strike — the steps only stable-slot indexing can patch.
	MembershipRebinds int
	// SlotGrowthBinds counts the full binds forced by slot-table growth
	// (a new all-time-high live count); together with the first bind and
	// CompactionBinds they must account for every full bind.
	SlotGrowthBinds int
	// CompactionBinds counts the full binds forced by a governed
	// slot-table compaction (the slot space renumbered, so the next
	// capture binds from scratch).
	CompactionBinds int
	// SlotCompactions counts governed slot-table compactions;
	// Redensifies the primary-solver arc-store rebuilds Maintain
	// performed (identical across worker counts, which Run asserts).
	SlotCompactions int
	Redensifies     int
	// Joins, Leaves, Strikes and EdgeChurn count trace events.
	Joins, Leaves, Strikes, EdgeChurn int
	// PeakLive is the all-time-high live population; ArcsAtPeak and
	// SlotLenAtPeak record the largest solver arc array and the slot-table
	// length as of the last step at that population — the "peak-P steady
	// state" footprint the long-churn soak bounds the final footprint
	// against. FinalMaxArcs and FinalSlotLen are the same measurements at
	// the end of the trace.
	PeakLive      int
	ArcsAtPeak    int
	SlotLenAtPeak int
	FinalMaxArcs  int
	FinalSlotLen  int
}

// trace is the evolving network: node identities in join order (the
// analogue of the scenario population's nodes slice filtered to live
// ones) and directed edges between them.
type trace struct {
	rng    *rand.Rand
	nextID int
	alive  []int
	edges  map[[2]int]bool
	// removedPool remembers recently deleted edges so additions revive
	// old (node, node) pairs often — the tombstone/revive hot path of the
	// in-place solver patching.
	removedPool [][2]int
	degree      int
	// slots assigns persistent vertex slots across captures, exactly the
	// snapshot layer's stable-slot population indexing.
	slots snapshot.SlotMap[int]
}

func newTrace(seed int64, initial, degree int) *trace {
	t := &trace{
		rng:    rand.New(rand.NewSource(seed)),
		edges:  map[[2]int]bool{},
		degree: degree,
	}
	for i := 0; i < initial; i++ {
		t.join()
	}
	return t
}

// join adds one node and wires it into the network both ways, like a
// Kademlia join populating routing tables.
func (t *trace) join() {
	id := t.nextID
	t.nextID++
	t.alive = append(t.alive, id)
	for d := 0; d < t.degree && len(t.alive) > 1; d++ {
		other := t.alive[t.rng.Intn(len(t.alive))]
		if other == id {
			continue
		}
		t.edges[[2]int{id, other}] = true
		if t.rng.Float64() < 0.9 {
			t.edges[[2]int{other, id}] = true
		}
	}
}

// remove deletes the node at position idx of the alive list together
// with its incident edges.
func (t *trace) remove(idx int) {
	id := t.alive[idx]
	t.alive = slices.Delete(t.alive, idx, idx+1)
	for e := range t.edges {
		if e[0] == id || e[1] == id {
			delete(t.edges, e)
		}
	}
}

// strike removes the highest-degree node (ties to the smaller id), the
// deterministic stand-in for an adversarial victim choice.
func (t *trace) strike() {
	if len(t.alive) <= 2 {
		return
	}
	deg := map[int]int{}
	for e := range t.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	best := 0
	for i, id := range t.alive {
		if deg[id] > deg[t.alive[best]] || (deg[id] == deg[t.alive[best]] && id < t.alive[best]) {
			best = i
		}
	}
	t.remove(best)
}

// edgeChurn applies a handful of routing-table updates: removals feed the
// removed pool, additions drain it about half the time (reviving old
// edges) and invent fresh pairs otherwise. The edge set is snapshotted
// and sorted ONCE per call (map iteration order would be
// nondeterministic), so a call costs O(E log E + changes), not
// O(changes * E log E) — the nightly soak replays long traces.
func (t *trace) edgeChurn(changes int) {
	keys := make([][2]int, 0, len(t.edges))
	for e := range t.edges {
		keys = append(keys, e)
	}
	slices.SortFunc(keys, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	for c := 0; c < changes; c++ {
		if t.rng.Float64() < 0.5 && len(keys) > 0 {
			// Remove a uniform draw from the sorted snapshot (swap-delete
			// keeps later draws uniform over the remaining edges).
			i := t.rng.Intn(len(keys))
			e := keys[i]
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			delete(t.edges, e)
			t.removedPool = append(t.removedPool, e)
		} else {
			var e [2]int
			if len(t.removedPool) > 0 && t.rng.Float64() < 0.5 {
				i := t.rng.Intn(len(t.removedPool))
				e = t.removedPool[i]
				t.removedPool = slices.Delete(t.removedPool, i, i+1)
				if !t.liveEdge(e) {
					continue
				}
			} else if len(t.alive) >= 2 {
				u := t.alive[t.rng.Intn(len(t.alive))]
				v := t.alive[t.rng.Intn(len(t.alive))]
				if u == v {
					continue
				}
				e = [2]int{u, v}
			} else {
				continue
			}
			t.edges[e] = true
		}
	}
}

// liveEdge reports whether both endpoints are alive.
func (t *trace) liveEdge(e [2]int) bool {
	return slices.Contains(t.alive, e[0]) && slices.Contains(t.alive, e[1])
}

// compact builds the dense snapshot graph: vertex i is the i-th alive
// node in join order, exactly snapshot.Capture's compaction.
func (t *trace) compact() *graph.Digraph {
	index := make(map[int]int, len(t.alive))
	for i, id := range t.alive {
		index[id] = i
	}
	g := graph.NewDigraph(len(t.alive))
	for e := range t.edges {
		u, uok := index[e[0]]
		v, vok := index[e[1]]
		if uok && vok && u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// captureSlots builds the stable-slot snapshot graph plus the canonical
// compaction map through the production capture core
// (snapshot.BuildSlotGraph) over trace node ids: departed nodes
// tombstone their slots, joins recycle the lowest vacant slot, and
// order lists the live nodes' slots in join order.
func (t *trace) captureSlots() (*graph.Digraph, []int) {
	return snapshot.BuildSlotGraph(&t.slots, t.alive, func(emit func(u, v int)) {
		for e := range t.edges {
			emit(e[0], e[1])
		}
	})
}

// incSide is one incremental engine under test.
type incSide struct {
	workers int
	binder  *connectivity.IncrementalBinder
}

// Run replays one randomized churn trace through the incremental engines
// and the from-scratch reference, comparing every answer at every step.
// It returns the first divergence as an error, or the run's stats.
func Run(opts Options) (Stats, error) {
	if opts.SampleFraction == 0 {
		opts.SampleFraction = 0.5
	}
	if len(opts.Workers) == 0 {
		opts.Workers = []int{1, 8}
	}
	var stats Stats
	tr := newTrace(opts.Seed, opts.Initial, opts.Degree)
	sides := make([]incSide, len(opts.Workers))
	for i, w := range opts.Workers {
		eng := connectivity.MustNewEngine(connectivity.EngineOptions{Workers: w})
		eng.SetGovernance(opts.Governance)
		sides[i] = incSide{
			workers: w,
			binder:  connectivity.NewIncrementalBinder(eng),
		}
	}
	prevAlive := []int(nil)
	bound := false
	// pendingCompact marks that the slot table was compacted after the
	// previous bound step: the slot space was renumbered, so the next
	// capture must take the full-bind path even when the table length is
	// unchanged.
	pendingCompact := false

	for step := 0; step < opts.Steps; step++ {
		// Mutate: mostly edge churn, occasionally membership events (or
		// the reverse mix for membership-heavy soaks).
		churnP := 0.70
		if opts.MembershipHeavy {
			churnP = 0.34
		}
		switch r := tr.rng.Float64(); {
		case opts.edgeChurnOnly || r < churnP:
			tr.edgeChurn(1 + tr.rng.Intn(2*tr.degree))
			stats.EdgeChurn++
		case r < churnP+(1-churnP)/3:
			tr.join()
			stats.Joins++
		case r < churnP+2*(1-churnP)/3:
			if len(tr.alive) > 2 {
				tr.remove(tr.rng.Intn(len(tr.alive)))
			}
			stats.Leaves++
		default:
			tr.strike()
			stats.Strikes++
		}

		g := tr.compact()
		if g.N() <= 1 {
			continue
		}
		sameMembers := bound && slices.Equal(prevAlive, tr.alive)
		prevAlive = append(prevAlive[:0], tr.alive...)
		slotsBefore := tr.slots.Len()
		slotG, order := tr.captureSlots()
		grew := tr.slots.Len() != slotsBefore
		expectInc := bound
		if grew || pendingCompact {
			expectInc = false
		}
		bound = true

		// Reference: a fresh engine bound from scratch — the exact
		// recomputation the incremental path claims to reproduce.
		ref := connectivity.MustNewEngine(connectivity.EngineOptions{Workers: 1})
		ref.Bind(g)
		wantSnap := ref.AnalyzeSnapshot(connectivity.SnapshotQuery{
			SampleFraction: opts.SampleFraction, AvgSeed: int64(step),
		})
		wantMin := ref.Analyze(connectivity.Query{
			SampleFraction: opts.SampleFraction, MinOnly: true,
		})
		wantCut, wantPair, wantOK, err := ref.GraphCut(connectivity.Query{SampleFraction: opts.SampleFraction})
		if err != nil {
			return stats, fmt.Errorf("step %d: reference GraphCut: %w", step, err)
		}

		firstInc := false
		for i := range sides {
			s := &sides[i]
			inc := s.binder.BindNextSlots(slotG, order)
			if i == 0 {
				firstInc = inc
			} else if inc != firstInc {
				return stats, fmt.Errorf("step %d: workers=%d took incremental=%v, workers=%d took %v",
					step, sides[0].workers, firstInc, s.workers, inc)
			}
			if inc != expectInc {
				return stats, fmt.Errorf("step %d (workers=%d): incremental=%v, want %v (slot table %d -> %d; joins/leaves/strikes must rebind incrementally)",
					step, s.workers, inc, expectInc, slotsBefore, tr.slots.Len())
			}
			eng := s.binder.Engine()
			gotSnap := eng.AnalyzeSnapshot(connectivity.SnapshotQuery{
				SampleFraction: opts.SampleFraction, AvgSeed: int64(step),
			})
			if err := equalResults("snapshot.Min", gotSnap.Min, wantSnap.Min); err != nil {
				return stats, stepErr(step, s.workers, inc, err)
			}
			if err := equalResults("snapshot.Avg", gotSnap.Avg, wantSnap.Avg); err != nil {
				return stats, stepErr(step, s.workers, inc, err)
			}
			gotMin := eng.Analyze(connectivity.Query{
				SampleFraction: opts.SampleFraction, MinOnly: true,
			})
			if err := equalResults("minpair analysis", gotMin, wantMin); err != nil {
				return stats, stepErr(step, s.workers, inc, err)
			}
			gotCut, gotPair, gotOK, err := eng.GraphCut(connectivity.Query{SampleFraction: opts.SampleFraction})
			if err != nil {
				return stats, stepErr(step, s.workers, inc, fmt.Errorf("GraphCut: %w", err))
			}
			if gotOK != wantOK || gotPair != wantPair || !slices.Equal(gotCut, wantCut) {
				return stats, stepErr(step, s.workers, inc, fmt.Errorf(
					"GraphCut: got cut=%v pair=%v ok=%v, want cut=%v pair=%v ok=%v",
					gotCut, gotPair, gotOK, wantCut, wantPair, wantOK))
			}
			if fb := eng.RebindFallbacks(); fb != 0 {
				return stats, stepErr(step, s.workers, inc, fmt.Errorf("%d rebind patch fallbacks (tombstone/revive should cover same-membership churn)", fb))
			}
		}
		if firstInc {
			stats.IncrementalBinds++
			if !sameMembers {
				stats.MembershipRebinds++
			}
		} else {
			stats.FullBinds++
			if stats.FullBinds > 1 {
				if pendingCompact {
					stats.CompactionBinds++
				} else if grew {
					stats.SlotGrowthBinds++
				}
			}
		}
		pendingCompact = false

		// End-of-step maintenance, exactly where the scenario runner does
		// it: arc-store governance on every engine (answers must stay
		// bit-identical, which the NEXT step's comparisons hold), then the
		// slot-table compaction decision for the next capture.
		for i := range sides {
			sides[i].binder.Engine().Maintain()
		}
		if opts.Governance.SlotCompactionDue(tr.slots.Len(), tr.slots.Live()) {
			tr.slots.Compact()
			pendingCompact = true
			stats.SlotCompactions++
		}
		if live := len(tr.alive); live >= stats.PeakLive {
			stats.PeakLive = live
			stats.ArcsAtPeak = sides[0].binder.Engine().MaxSolverArcs()
			stats.SlotLenAtPeak = tr.slots.Len()
		}
	}
	// Every full bind must be accounted for: the first binding plus the
	// slot-growth and compaction boundaries. Anything else is an
	// unexpected fallback.
	if want := 1 + stats.SlotGrowthBinds + stats.CompactionBinds; stats.FullBinds != want {
		return stats, fmt.Errorf("unexpected full binds: %d, want %d (first bind + %d slot growths + %d compactions)",
			stats.FullBinds, want, stats.SlotGrowthBinds, stats.CompactionBinds)
	}
	// The primary re-densify count is part of the deterministic surface:
	// every worker pool must agree on it.
	stats.Redensifies = sides[0].binder.Engine().Redensifies()
	for i := 1; i < len(sides); i++ {
		if r := sides[i].binder.Engine().Redensifies(); r != stats.Redensifies {
			return stats, fmt.Errorf("redensify count varies with worker count: workers=%d saw %d, workers=%d saw %d",
				sides[0].workers, stats.Redensifies, sides[i].workers, r)
		}
	}
	stats.FinalMaxArcs = sides[0].binder.Engine().MaxSolverArcs()
	stats.FinalSlotLen = tr.slots.Len()
	return stats, nil
}

func stepErr(step, workers int, incremental bool, err error) error {
	return fmt.Errorf("step %d (workers=%d, incremental=%v): %w", step, workers, incremental, err)
}

// equalResults compares every field the pipeline consumes. Avg is
// compared bitwise (both sides divide identical integer sums), with NaN
// equal to NaN.
func equalResults(label string, got, want connectivity.Result) error {
	if got.N != want.N || got.Min != want.Min || got.Pairs != want.Pairs ||
		got.Sources != want.Sources || got.Complete != want.Complete ||
		got.MinPair != want.MinPair ||
		math.Float64bits(got.Avg) != math.Float64bits(want.Avg) {
		return fmt.Errorf("%s: got %+v, want %+v", label, got, want)
	}
	return nil
}
