package churntest

import (
	"testing"

	"kadre/internal/connectivity"
)

// TestDifferentialChurnOracle is the PR-gate harness: randomized churn
// traces (edge churn, joins, leaves, adversarial strikes) replayed
// through the incremental stable-slot engine at jobs=1 and jobs=8
// against the from-scratch reference, asserting identical
// Min/Avg/MinPair/cut answers at every step. Run itself asserts the
// binding-path expectations per step — the incremental path on EVERY
// step where the slot table did not grow, joins/leaves/strikes
// included, with zero solver patch fallbacks — so this test only has to
// check that the traces exercised both paths and actually crossed
// membership changes incrementally. It runs under -race in CI; the
// slowtest-tagged variant replays longer traces on larger networks.
func TestDifferentialChurnOracle(t *testing.T) {
	for _, tc := range []Options{
		{Seed: 1, Initial: 24, Steps: 40, Degree: 4},
		{Seed: 2, Initial: 32, Steps: 30, Degree: 6},
		{Seed: 3, Initial: 8, Steps: 50, Degree: 3}, // tiny: hits n<=2 edge cases
	} {
		stats, err := Run(tc)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.Seed, err)
		}
		t.Logf("seed %d: %+v", tc.Seed, stats)
		if stats.IncrementalBinds == 0 {
			t.Fatalf("seed %d: trace never took the incremental path (stats %+v)", tc.Seed, stats)
		}
		if stats.MembershipRebinds == 0 {
			t.Fatalf("seed %d: no join/leave/strike step rebound incrementally (stats %+v)", tc.Seed, stats)
		}
		if want := 1 + stats.SlotGrowthBinds; stats.FullBinds != want {
			t.Fatalf("seed %d: %d full binds, want %d (stats %+v)", tc.Seed, stats.FullBinds, want, stats)
		}
	}
}

// TestGovernedChurnOracle replays membership-heavy traces with an
// aggressive memory-governance policy, so slot compactions and arc-store
// re-densifications fire repeatedly inside the differential oracle — and
// every answer across every compaction event still matches the
// from-scratch reference at jobs=1 and jobs=8. The full-bind invariant
// extends to compaction boundaries: each governed slot compaction
// renumbers the vertex space and must cost exactly one full bind.
func TestGovernedChurnOracle(t *testing.T) {
	aggressive := connectivity.GovernancePolicy{MaxDeadFrac: 0.05, MaxSlotSlack: 0.2}
	for _, tc := range []Options{
		{Seed: 21, Initial: 20, Steps: 60, Degree: 4, MembershipHeavy: true, Governance: aggressive},
		{Seed: 22, Initial: 28, Steps: 50, Degree: 5, MembershipHeavy: true, Governance: aggressive},
	} {
		stats, err := Run(tc)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.Seed, err)
		}
		t.Logf("seed %d: %+v", tc.Seed, stats)
		if stats.SlotCompactions == 0 {
			t.Fatalf("seed %d: aggressive policy never compacted the slot table (stats %+v)", tc.Seed, stats)
		}
		if stats.Redensifies == 0 {
			t.Fatalf("seed %d: aggressive policy never re-densified an arc store (stats %+v)", tc.Seed, stats)
		}
		if stats.CompactionBinds == 0 || stats.CompactionBinds > stats.SlotCompactions {
			t.Fatalf("seed %d: %d compaction binds for %d compactions (stats %+v)",
				tc.Seed, stats.CompactionBinds, stats.SlotCompactions, stats)
		}
		if stats.IncrementalBinds == 0 || stats.MembershipRebinds == 0 {
			t.Fatalf("seed %d: governance starved the incremental path (stats %+v)", tc.Seed, stats)
		}
	}
}

// TestUngovernedOracleReportsNoMaintenance pins the opt-in default: the
// zero policy performs no compactions, no re-densifies, and no
// compaction-forced full binds.
func TestUngovernedOracleReportsNoMaintenance(t *testing.T) {
	stats, err := Run(Options{Seed: 1, Initial: 24, Steps: 40, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SlotCompactions != 0 || stats.Redensifies != 0 || stats.CompactionBinds != 0 {
		t.Fatalf("zero policy performed maintenance: %+v", stats)
	}
}

// TestOracleStableMembershipOnlyRebinds pins the binder contract from the
// other side: a trace with edge churn only (no joins, leaves or strikes
// after the first binding) must rebind incrementally at every step after
// the first.
func TestOracleStableMembershipOnlyRebinds(t *testing.T) {
	stats, err := Run(Options{Seed: 7, Initial: 20, Steps: 25, Degree: 4, edgeChurnOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FullBinds != 1 || stats.IncrementalBinds != stats.EdgeChurn-1 {
		t.Fatalf("stable membership: want 1 full bind and %d incremental, got %+v",
			stats.EdgeChurn-1, stats)
	}
}
