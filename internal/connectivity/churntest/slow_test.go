//go:build slowtest

package churntest

import "testing"

// TestDifferentialChurnOracleLong is the nightly-length oracle: longer
// traces on larger networks, beyond what the PR gate affords. Build with
// -tags slowtest (the nightly CI job runs it under -race).
func TestDifferentialChurnOracleLong(t *testing.T) {
	for _, tc := range []Options{
		{Seed: 11, Initial: 80, Steps: 150, Degree: 8},
		{Seed: 12, Initial: 120, Steps: 100, Degree: 10},
		{Seed: 13, Initial: 60, Steps: 250, Degree: 6},
		{Seed: 14, Initial: 40, Steps: 200, Degree: 5, SampleFraction: 1.0},
		// Membership-heavy soak: long trace over a small network, so the
		// slot table recycles heavily and most steps are joins, leaves or
		// strikes rebinding incrementally.
		{Seed: 15, Initial: 30, Steps: 300, Degree: 6, MembershipHeavy: true},
	} {
		stats, err := Run(tc)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.Seed, err)
		}
		t.Logf("seed %d: %+v", tc.Seed, stats)
		if stats.IncrementalBinds == 0 || stats.FullBinds == 0 {
			t.Fatalf("seed %d: trace did not exercise both binding paths: %+v", tc.Seed, stats)
		}
		if stats.MembershipRebinds == 0 {
			t.Fatalf("seed %d: no membership event rebound incrementally: %+v", tc.Seed, stats)
		}
	}
}
