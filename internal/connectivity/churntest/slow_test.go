//go:build slowtest

package churntest

import (
	"testing"

	"kadre/internal/connectivity"
)

// TestDifferentialChurnOracleLong is the nightly-length oracle: longer
// traces on larger networks, beyond what the PR gate affords. Build with
// -tags slowtest (the nightly CI job runs it under -race).
func TestDifferentialChurnOracleLong(t *testing.T) {
	for _, tc := range []Options{
		{Seed: 11, Initial: 80, Steps: 150, Degree: 8},
		{Seed: 12, Initial: 120, Steps: 100, Degree: 10},
		{Seed: 13, Initial: 60, Steps: 250, Degree: 6},
		{Seed: 14, Initial: 40, Steps: 200, Degree: 5, SampleFraction: 1.0},
		// Membership-heavy soak: long trace over a small network, so the
		// slot table recycles heavily and most steps are joins, leaves or
		// strikes rebinding incrementally.
		{Seed: 15, Initial: 30, Steps: 300, Degree: 6, MembershipHeavy: true},
	} {
		stats, err := Run(tc)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.Seed, err)
		}
		t.Logf("seed %d: %+v", tc.Seed, stats)
		if stats.IncrementalBinds == 0 || stats.FullBinds == 0 {
			t.Fatalf("seed %d: trace did not exercise both binding paths: %+v", tc.Seed, stats)
		}
		if stats.MembershipRebinds == 0 {
			t.Fatalf("seed %d: no membership event rebound incrementally: %+v", tc.Seed, stats)
		}
	}
}

// TestLongChurnSoakMemoryBounded is the nightly long-run memory bound:
// a membership-heavy trace of 500+ snapshots under the default
// governance policy, after which both governed footprints — the largest
// solver arc array and the slot-table length — must sit within 2x their
// value at the peak-population steady state. Without governance both
// grow monotonically with churn (tombstones, stranded relocation
// regions, and a slot table pinned at the historical peak), which is
// exactly the unbounded growth this bound regresses. The differential
// comparisons inside Run simultaneously hold every answer across every
// compaction event to the from-scratch reference at jobs=1 and jobs=8.
func TestLongChurnSoakMemoryBounded(t *testing.T) {
	for _, tc := range []Options{
		{Seed: 41, Initial: 40, Steps: 500, Degree: 5, MembershipHeavy: true, Governance: connectivity.DefaultGovernance()},
		{Seed: 42, Initial: 24, Steps: 600, Degree: 4, MembershipHeavy: true, Governance: connectivity.DefaultGovernance()},
	} {
		stats, err := Run(tc)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.Seed, err)
		}
		t.Logf("seed %d: %+v", tc.Seed, stats)
		if stats.SlotCompactions == 0 && stats.Redensifies == 0 {
			t.Fatalf("seed %d: soak triggered no maintenance at all (stats %+v)", tc.Seed, stats)
		}
		if stats.FinalMaxArcs > 2*stats.ArcsAtPeak {
			t.Fatalf("seed %d: final solver arc array %d exceeds 2x the peak-population footprint %d (stats %+v)",
				tc.Seed, stats.FinalMaxArcs, stats.ArcsAtPeak, stats)
		}
		if stats.FinalSlotLen > 2*stats.SlotLenAtPeak {
			t.Fatalf("seed %d: final slot table %d exceeds 2x the peak-population footprint %d (stats %+v)",
				tc.Seed, stats.FinalSlotLen, stats.SlotLenAtPeak, stats)
		}
	}
}
