// Package connectivity computes the vertex connectivity of directed
// connectivity graphs — the paper's central measurement. The vertex
// connectivity kappa(v, w) between non-adjacent vertices equals the
// maximum number of pairwise vertex-disjoint paths from v to w (Menger's
// theorem); it is computed as a maximum flow on Even's transformed graph.
// The graph connectivity kappa(D) is the minimum over all non-adjacent
// ordered pairs (Equation 1 of the paper), and the network tolerates
// r = kappa(D) - 1 compromised nodes (Equation 2).
//
// A full sweep needs n(n-1) flow computations. The paper's §5.2 heuristic
// cuts this to c*n*(n-1) by evaluating only the c*n sources with smallest
// out-degree (c = 0.02 was empirically sufficient on near-undirected
// Kademlia graphs); both modes are implemented, as is the undirected
// (n-1)-pair shortcut the paper cites.
package connectivity

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// DefaultSampleFraction is the paper's empirically validated sampling
// fraction c.
const DefaultSampleFraction = 0.02

// SourceSelection picks how sampled flow sources are chosen.
type SourceSelection int

const (
	// SmallestOutDegree is the paper's §5.2 heuristic: the c*n vertices
	// with the smallest out-degree, which bound the minimum. The default.
	SmallestOutDegree SourceSelection = iota + 1
	// UniformRandom picks c*n sources uniformly, yielding an unbiased
	// estimate of the average pair connectivity (the "Avg" curves of the
	// paper's figures) at the price of a looser minimum.
	UniformRandom
)

// Options configures an Analyzer.
type Options struct {
	// Algorithm selects the max-flow solver; the zero value means Dinic.
	Algorithm maxflow.Algorithm
	// SampleFraction is the paper's c: the fraction of vertices used as
	// flow sources. Values <= 0 or >= 1 mean a full n(n-1) sweep.
	SampleFraction float64
	// Selection chooses the sampling strategy; zero means
	// SmallestOutDegree.
	Selection SourceSelection
	// SelectionSeed seeds the UniformRandom selection; runs with the same
	// seed pick the same sources.
	SelectionSeed int64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. Each worker
	// owns a private solver, replacing the paper's cluster fan-out.
	Workers int
	// MinOnly skips exact flow values above the running minimum, which
	// prunes work but leaves Avg meaningless (reported as NaN).
	MinOnly bool
	// SkipMinPair reports MinPair as {-1, -1} without computing it.
	// Under MinOnly the deterministic pair needs a second capped sweep
	// (see lexMinPair), so callers that only read Min — the per-snapshot
	// analyzers on the hot path — should skip it.
	SkipMinPair bool
}

// Result reports the connectivity of one graph.
type Result struct {
	N        int     // vertices in the analyzed graph
	Min      int     // kappa(D): minimum kappa(v,w) over evaluated pairs
	Avg      float64 // mean kappa(v,w) over evaluated pairs (NaN if MinOnly)
	Pairs    int     // number of (source, target) pairs evaluated
	Sources  int     // number of source vertices used
	Complete bool    // graph was complete: Min = N-1 by definition
	// MinPair is the lexicographically smallest evaluated (source, target)
	// pair achieving Min, or {-1, -1} if no pair was evaluated or the
	// analyzer was built with SkipMinPair. It is deterministic for a given
	// graph and options — independent of worker count and scheduling,
	// with or without MinOnly pruning.
	MinPair [2]int
}

// Resilience returns r = kappa - 1, the number of compromised nodes the
// network provably tolerates (Equation 2). A disconnected network has
// resilience -1: it does not even function with zero compromised nodes.
func Resilience(kappa int) int { return kappa - 1 }

// RequiredConnectivity returns the connectivity a network needs to
// tolerate a compromised nodes: kappa(D) > a, i.e. at least a+1.
func RequiredConnectivity(a int) int { return a + 1 }

// Analyzer computes graph connectivity with a fixed configuration.
type Analyzer struct {
	opts Options
}

// NewAnalyzer validates options and returns an Analyzer.
func NewAnalyzer(opts Options) (*Analyzer, error) {
	if opts.SampleFraction < 0 || math.IsNaN(opts.SampleFraction) {
		return nil, fmt.Errorf("connectivity: sample fraction %v must be >= 0", opts.SampleFraction)
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = maxflow.Dinic
	}
	if opts.Selection == 0 {
		opts.Selection = SmallestOutDegree
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Analyzer{opts: opts}, nil
}

// MustNewAnalyzer is NewAnalyzer for statically correct options.
func MustNewAnalyzer(opts Options) *Analyzer {
	a, err := NewAnalyzer(opts)
	if err != nil {
		panic(err)
	}
	return a
}

// Pair computes kappa(v, w) for one non-adjacent ordered pair via a
// maximum flow on the Even-transformed graph. It fails for v == w and for
// adjacent pairs, whose vertex connectivity is not defined by a vertex cut
// (the direct edge can never be cut).
func Pair(g *graph.Digraph, v, w int, algo maxflow.Algorithm) (int, error) {
	if v == w {
		return 0, fmt.Errorf("connectivity: pair (%d,%d) has identical endpoints", v, w)
	}
	if v < 0 || v >= g.N() || w < 0 || w >= g.N() {
		return 0, fmt.Errorf("connectivity: pair (%d,%d) out of range [0,%d)", v, w, g.N())
	}
	if g.HasEdge(v, w) {
		return 0, fmt.Errorf("connectivity: vertices %d and %d are adjacent", v, w)
	}
	if algo == 0 {
		algo = maxflow.Dinic
	}
	solver := algo.NewSolver(2*g.N(), evenUnitEdges(g))
	return solver.MaxFlow(graph.Out(v), graph.In(w)), nil
}

// Analyze computes the connectivity of g according to the analyzer's
// options.
func (a *Analyzer) Analyze(g *graph.Digraph) Result {
	n := g.N()
	if n <= 1 {
		return Result{N: n, Complete: true, MinPair: [2]int{-1, -1}}
	}
	if g.IsComplete() {
		return Result{N: n, Min: n - 1, Avg: float64(n - 1), Complete: true, MinPair: [2]int{-1, -1}}
	}

	sources := a.pickSources(g)
	edges := evenUnitEdges(g)

	type sourceResult struct {
		min     int
		minPair [2]int
		sum     int64
		pairs   int
	}

	var (
		mu         sync.Mutex
		running    = n // running global minimum shared across workers (for MinOnly pruning)
		results    = make([]sourceResult, len(sources))
		nextSource int
	)

	workers := a.opts.Workers
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver := a.opts.Algorithm.NewSolver(2*n, edges)
			for {
				mu.Lock()
				idx := nextSource
				if idx >= len(sources) {
					mu.Unlock()
					return
				}
				nextSource++
				limit := running
				mu.Unlock()

				src := sources[idx]
				res := sourceResult{min: n, minPair: [2]int{-1, -1}}
				for tgt := 0; tgt < n; tgt++ {
					if tgt == src || g.HasEdge(src, tgt) {
						continue
					}
					var flow int
					if a.opts.MinOnly {
						flow = solver.MaxFlowLimit(graph.Out(src), graph.In(tgt), limit)
					} else {
						flow = solver.MaxFlow(graph.Out(src), graph.In(tgt))
					}
					res.pairs++
					res.sum += int64(flow)
					if flow < res.min {
						res.min = flow
						res.minPair = [2]int{src, tgt}
						if flow < limit {
							limit = flow
							mu.Lock()
							if flow < running {
								running = flow
							} else {
								limit = running
							}
							mu.Unlock()
						}
					}
				}
				mu.Lock()
				results[idx] = res
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	out := Result{N: n, Min: n, MinPair: [2]int{-1, -1}, Sources: len(sources)}
	var sum int64
	for _, r := range results {
		out.Pairs += r.pairs
		sum += r.sum
		if r.pairs == 0 {
			continue
		}
		if r.min < out.Min || (r.min == out.Min && lexLess(r.minPair, out.MinPair)) {
			out.Min = r.min
			out.MinPair = r.minPair
		}
	}
	if out.Pairs == 0 {
		// Every sampled source was adjacent to every other vertex, so the
		// sample yields no information. Report the definitional upper
		// bound n-1 rather than claiming the graph is complete (it is
		// not: IsComplete was checked above).
		return Result{N: n, Min: n - 1, Avg: math.NaN(), MinPair: [2]int{-1, -1}, Sources: len(sources)}
	}
	if a.opts.MinOnly {
		out.Avg = math.NaN()
		if a.opts.SkipMinPair {
			out.MinPair = [2]int{-1, -1}
		} else {
			out.MinPair = a.lexMinPair(g, sources, edges, out.Min)
		}
	} else {
		out.Avg = float64(sum) / float64(out.Pairs)
		if a.opts.SkipMinPair {
			out.MinPair = [2]int{-1, -1}
		}
	}
	return out
}

// lexMinPair re-selects MinPair deterministically after a MinOnly sweep.
// Pruned sweeps evaluate most pairs with a capped solver, so the pair the
// sweep attributes the minimum to depends on worker scheduling — and a
// capped evaluation can even credit the minimum to a pair whose true
// connectivity is larger (the cap hides the difference). A second pass
// with limit min+1 distinguishes flow == min from flow > min exactly;
// scanning sources in ascending vertex order and targets in ascending
// order yields the lexicographically smallest minimizing evaluated pair
// under any worker count. The pass is bounded by min+1 augmenting paths
// per pair and stops as soon as no smaller pair can exist.
func (a *Analyzer) lexMinPair(g *graph.Digraph, sources []int, edges []maxflow.Edge, min int) [2]int {
	n := g.N()
	sorted := append([]int(nil), sources...)
	sort.Ints(sorted)

	// hits[i] is the smallest minimizing target of sorted[i], or -1. Each
	// slot is written by exactly one worker.
	hits := make([]int, len(sorted))
	var (
		mu       sync.Mutex
		next     int
		firstHit = len(sorted) // smallest index with a hit so far
		wg       sync.WaitGroup
	)
	workers := a.opts.Workers
	if workers > len(sorted) {
		workers = len(sorted)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver := a.opts.Algorithm.NewSolver(2*n, edges)
			for {
				mu.Lock()
				idx := next
				if idx >= len(sorted) || idx > firstHit {
					// Sources past an existing hit cannot yield a
					// lexicographically smaller pair.
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()

				src := sorted[idx]
				hits[idx] = -1
				for tgt := 0; tgt < n; tgt++ {
					if tgt == src || g.HasEdge(src, tgt) {
						continue
					}
					mu.Lock()
					obsolete := firstHit < idx
					mu.Unlock()
					if obsolete {
						break
					}
					if solver.MaxFlowLimit(graph.Out(src), graph.In(tgt), min+1) == min {
						hits[idx] = tgt
						mu.Lock()
						if idx < firstHit {
							firstHit = idx
						}
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	if firstHit < len(sorted) {
		return [2]int{sorted[firstHit], hits[firstHit]}
	}
	return [2]int{-1, -1}
}

// pickSources returns the flow-source vertices: all of them for a full
// sweep, the ceil(c*n) vertices with smallest out-degree (ties broken by
// index, making runs deterministic) per the paper's heuristic, or a
// seeded uniform sample of the same size.
func (a *Analyzer) pickSources(g *graph.Digraph) []int {
	n := g.N()
	c := a.opts.SampleFraction
	if c <= 0 || c >= 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	count := int(math.Ceil(c * float64(n)))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	if a.opts.Selection == UniformRandom {
		r := rand.New(rand.NewSource(a.opts.SelectionSeed))
		return r.Perm(n)[:count]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.OutDegree(order[i]), g.OutDegree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	return order[:count]
}

func evenUnitEdges(g *graph.Digraph) []maxflow.Edge {
	ge := graph.EvenEdges(g)
	edges := make([]maxflow.Edge, len(ge))
	for i, e := range ge {
		edges[i] = maxflow.Edge{U: e.U, V: e.V, Cap: 1}
	}
	return edges
}

func lexLess(a, b [2]int) bool {
	if b[0] < 0 {
		return true
	}
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
