// Package connectivity computes the vertex connectivity of directed
// connectivity graphs — the paper's central measurement. The vertex
// connectivity kappa(v, w) between non-adjacent vertices equals the
// maximum number of pairwise vertex-disjoint paths from v to w (Menger's
// theorem); it is computed as a maximum flow on Even's transformed graph.
// The graph connectivity kappa(D) is the minimum over all non-adjacent
// ordered pairs (Equation 1 of the paper), and the network tolerates
// r = kappa(D) - 1 compromised nodes (Equation 2).
//
// A full sweep needs n(n-1) flow computations. The paper's §5.2 heuristic
// cuts this to c*n*(n-1) by evaluating only the c*n sources with smallest
// out-degree (c = 0.02 was empirically sufficient on near-undirected
// Kademlia graphs); both modes are implemented, as is the undirected
// (n-1)-pair shortcut the paper cites.
//
// Two entry points share one implementation. Engine is the reusable
// analysis object for sweeping workloads: it binds to a graph, keeps the
// Even transform, the per-worker solvers and the cut-mode network alive
// across bindings, and fuses the per-snapshot Min and Avg sweeps into a
// single pass. Analyzer is the thin per-call compatibility wrapper over
// an Engine, preserving the original construct-and-analyze API.
package connectivity

import (
	"fmt"
	"math"
	"sync"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// DefaultSampleFraction is the paper's empirically validated sampling
// fraction c.
const DefaultSampleFraction = 0.02

// SourceSelection picks how sampled flow sources are chosen.
type SourceSelection int

const (
	// SmallestOutDegree is the paper's §5.2 heuristic: the c*n vertices
	// with the smallest out-degree, which bound the minimum. The default.
	SmallestOutDegree SourceSelection = iota + 1
	// UniformRandom picks c*n sources uniformly, yielding an unbiased
	// estimate of the average pair connectivity (the "Avg" curves of the
	// paper's figures) at the price of a looser minimum.
	UniformRandom
)

// Options configures an Analyzer.
type Options struct {
	// Algorithm selects the max-flow solver; the zero value means Dinic.
	Algorithm maxflow.Algorithm
	// SampleFraction is the paper's c: the fraction of vertices used as
	// flow sources. Values <= 0 or >= 1 mean a full n(n-1) sweep.
	SampleFraction float64
	// Selection chooses the sampling strategy; zero means
	// SmallestOutDegree.
	Selection SourceSelection
	// SelectionSeed seeds the UniformRandom selection; runs with the same
	// seed pick the same sources.
	SelectionSeed int64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. Each worker
	// owns a private solver, replacing the paper's cluster fan-out.
	Workers int
	// MinOnly skips exact flow values above the running minimum, which
	// prunes work but leaves Avg meaningless (reported as NaN).
	MinOnly bool
	// SkipMinPair reports MinPair as {-1, -1} without computing it.
	// Under MinOnly the deterministic pair may need a bounded re-check of
	// capped evaluations (see Engine.resolveMinPair), so callers that
	// only read Min can skip it.
	SkipMinPair bool
}

// Result reports the connectivity of one graph.
type Result struct {
	N        int     // vertices in the analyzed graph
	Min      int     // kappa(D): minimum kappa(v,w) over evaluated pairs
	Avg      float64 // mean kappa(v,w) over evaluated pairs (NaN if MinOnly)
	Pairs    int     // number of (source, target) pairs evaluated
	Sources  int     // number of source vertices used
	Complete bool    // graph was complete: Min = N-1 by definition
	// MinPair is the lexicographically smallest evaluated (source, target)
	// pair achieving Min, or {-1, -1} if no pair was evaluated or the
	// analyzer was built with SkipMinPair. It is deterministic for a given
	// graph and options — independent of worker count and scheduling,
	// with or without MinOnly pruning.
	MinPair [2]int
}

// Resilience returns r = kappa - 1, the number of compromised nodes the
// network provably tolerates (Equation 2). A disconnected network has
// resilience -1: it does not even function with zero compromised nodes.
func Resilience(kappa int) int { return kappa - 1 }

// RequiredConnectivity returns the connectivity a network needs to
// tolerate a compromised nodes: kappa(D) > a, i.e. at least a+1.
func RequiredConnectivity(a int) int { return a + 1 }

// Analyzer computes graph connectivity with a fixed configuration. It is
// a thin compatibility wrapper over an Engine: every Analyze call binds
// the engine to the argument graph, so repeated calls reuse the engine's
// solvers and buffers. A mutex preserves the historical safety of
// concurrent Analyze calls (they serialize; parallelism lives in the
// engine's worker pool).
type Analyzer struct {
	opts Options
	mu   sync.Mutex
	eng  *Engine
}

// NewAnalyzer validates options and returns an Analyzer.
func NewAnalyzer(opts Options) (*Analyzer, error) {
	if opts.SampleFraction < 0 || math.IsNaN(opts.SampleFraction) {
		return nil, fmt.Errorf("connectivity: sample fraction %v must be >= 0", opts.SampleFraction)
	}
	if opts.Selection == 0 {
		opts.Selection = SmallestOutDegree
	}
	eng, err := NewEngine(EngineOptions{
		// An explicit algorithm choice applies to every query; the zero
		// value lets the engine pick its per-query-kind defaults.
		Algorithm:      opts.Algorithm,
		ExactAlgorithm: opts.Algorithm,
		Workers:        opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	opts.Workers = eng.maxWorkers
	return &Analyzer{opts: opts, eng: eng}, nil
}

// MustNewAnalyzer is NewAnalyzer for statically correct options.
func MustNewAnalyzer(opts Options) *Analyzer {
	a, err := NewAnalyzer(opts)
	if err != nil {
		panic(err)
	}
	return a
}

// Pair computes kappa(v, w) for one non-adjacent ordered pair via a
// maximum flow on the Even-transformed graph. It fails for v == w and for
// adjacent pairs, whose vertex connectivity is not defined by a vertex cut
// (the direct edge can never be cut).
func Pair(g *graph.Digraph, v, w int, algo maxflow.Algorithm) (int, error) {
	if v == w {
		return 0, fmt.Errorf("connectivity: pair (%d,%d) has identical endpoints", v, w)
	}
	if v < 0 || v >= g.N() || w < 0 || w >= g.N() {
		return 0, fmt.Errorf("connectivity: pair (%d,%d) out of range [0,%d)", v, w, g.N())
	}
	if g.HasEdge(v, w) {
		return 0, fmt.Errorf("connectivity: vertices %d and %d are adjacent", v, w)
	}
	if algo == 0 {
		algo = maxflow.Dinic
	}
	solver := algo.NewSolverSource(2*g.N(), &unitEdgeSource{edges: graph.EvenEdges(g)})
	return solver.MaxFlow(graph.Out(v), graph.In(w)), nil
}

// Analyze computes the connectivity of g according to the analyzer's
// options.
func (a *Analyzer) Analyze(g *graph.Digraph) Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.eng.Bind(g)
	return a.eng.Analyze(a.query())
}

// GraphCut returns a minimum vertex cut of g found at the analyzer's
// minimizing pair; see the package-level GraphCut.
func (a *Analyzer) GraphCut(g *graph.Digraph) (cut []int, pair [2]int, ok bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.eng.Bind(g)
	q := a.query()
	return a.eng.GraphCut(q)
}

func (a *Analyzer) query() Query {
	return Query{
		SampleFraction: a.opts.SampleFraction,
		Selection:      a.opts.Selection,
		SelectionSeed:  a.opts.SelectionSeed,
		MinOnly:        a.opts.MinOnly,
		SkipMinPair:    a.opts.SkipMinPair,
	}
}

func lexLess(a, b [2]int) bool {
	if b[0] < 0 {
		return true
	}
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
