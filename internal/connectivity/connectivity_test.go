package connectivity

import (
	"math"
	"math/rand"
	"testing"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// Test graph constructors.

func undirected(n int, pairs [][2]int) *graph.Digraph {
	g := graph.NewDigraph(n)
	for _, p := range pairs {
		g.AddEdge(p[0], p[1])
		g.AddEdge(p[1], p[0])
	}
	return g
}

func completeGraph(n int) *graph.Digraph {
	g := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func cycle(n int) *graph.Digraph {
	var pairs [][2]int
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]int{i, (i + 1) % n})
	}
	return undirected(n, pairs)
}

// petersen builds the Petersen graph, a classic 3-connected graph.
func petersen() *graph.Digraph {
	var pairs [][2]int
	for i := 0; i < 5; i++ {
		pairs = append(pairs, [2]int{i, (i + 1) % 5})     // outer C5
		pairs = append(pairs, [2]int{i, i + 5})           // spokes
		pairs = append(pairs, [2]int{i + 5, (i+2)%5 + 5}) // inner pentagram
	}
	return undirected(10, pairs)
}

// hypercube builds the d-dimensional hypercube, which is d-connected.
func hypercube(d int) *graph.Digraph {
	n := 1 << d
	var pairs [][2]int
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				pairs = append(pairs, [2]int{v, w})
			}
		}
	}
	return undirected(n, pairs)
}

func fullAnalyzer(t *testing.T, algo maxflow.Algorithm) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(Options{Algorithm: algo, SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestKnownConnectivities(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Digraph
		want int
	}{
		{"cycle C5", cycle(5), 2},
		{"cycle C8", cycle(8), 2},
		{"petersen", petersen(), 3},
		{"hypercube Q3", hypercube(3), 3},
		{"hypercube Q4", hypercube(4), 4},
		{"path P4", undirected(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}), 1},
		{"star S5", undirected(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}), 1},
		{"disconnected", undirected(4, [][2]int{{0, 1}, {2, 3}}), 0},
		{"isolated vertex", undirected(3, [][2]int{{0, 1}}), 0},
		{
			// Two K4s sharing a single cut vertex.
			"two cliques cut vertex",
			undirected(7, [][2]int{
				{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
				{3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6},
			}),
			1,
		},
	}
	for _, algo := range []maxflow.Algorithm{maxflow.Dinic, maxflow.PushRelabel} {
		a := fullAnalyzer(t, algo)
		for _, tt := range tests {
			t.Run(algo.String()+"/"+tt.name, func(t *testing.T) {
				res := a.Analyze(tt.g)
				if res.Min != tt.want {
					t.Fatalf("kappa = %d, want %d (result %+v)", res.Min, tt.want, res)
				}
			})
		}
	}
}

func TestCompleteGraph(t *testing.T) {
	a := fullAnalyzer(t, maxflow.Dinic)
	res := a.Analyze(completeGraph(6))
	if !res.Complete || res.Min != 5 {
		t.Fatalf("K6: %+v, want complete with kappa 5", res)
	}
}

func TestTinyGraphs(t *testing.T) {
	a := fullAnalyzer(t, maxflow.Dinic)
	if res := a.Analyze(graph.NewDigraph(0)); res.Min != 0 || !res.Complete {
		t.Errorf("empty graph: %+v", res)
	}
	if res := a.Analyze(graph.NewDigraph(1)); res.Min != 0 || !res.Complete {
		t.Errorf("single vertex: %+v", res)
	}
	if res := a.Analyze(graph.NewDigraph(2)); res.Min != 0 {
		t.Errorf("two isolated vertices: %+v", res)
	}
}

func TestKCompleteMinusEdge(t *testing.T) {
	// K5 minus one edge: the only non-adjacent pair has kappa = 3.
	g := completeGraph(5)
	g2 := graph.NewDigraph(5)
	for _, e := range g.Edges() {
		if e.U == 0 && e.V == 1 {
			continue
		}
		g2.AddEdge(e.U, e.V)
	}
	a := fullAnalyzer(t, maxflow.Dinic)
	res := a.Analyze(g2)
	if res.Min != 3 {
		t.Fatalf("kappa(K5 - e) = %d, want 3", res.Min)
	}
	if res.Pairs != 1 {
		t.Fatalf("evaluated %d pairs, want 1 (only the non-adjacent pair)", res.Pairs)
	}
	if res.MinPair != [2]int{0, 1} {
		t.Fatalf("MinPair = %v", res.MinPair)
	}
}

func TestDirectedAsymmetry(t *testing.T) {
	// Directed cycle: every pair connected by exactly one directed path.
	n := 5
	g := graph.NewDigraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	a := fullAnalyzer(t, maxflow.Dinic)
	if res := a.Analyze(g); res.Min != 1 {
		t.Fatalf("directed C5 kappa = %d, want 1", res.Min)
	}
	// Remove one arc: some ordered pairs become unreachable -> kappa 0.
	g2 := graph.NewDigraph(n)
	for i := 0; i < n-1; i++ {
		g2.AddEdge(i, (i+1)%n)
	}
	if res := a.Analyze(g2); res.Min != 0 {
		t.Fatalf("directed path kappa = %d, want 0", res.Min)
	}
}

func TestEvenTransformPaperExample(t *testing.T) {
	// Figure 1's point: a graph where the plain max flow from a to i is 3
	// but the vertex connectivity kappa(a,i) is 1, because all paths share
	// one cut vertex. Vertex 4 ("e") is the bottleneck.
	g := graph.NewDigraph(9)
	for _, v := range []int{1, 2, 3} {
		g.AddEdge(0, v) // a -> b,c,d
		g.AddEdge(v, 4) // b,c,d -> e
	}
	for _, v := range []int{5, 6, 7} {
		g.AddEdge(4, v) // e -> f,g,h
		g.AddEdge(v, 8) // f,g,h -> i
	}
	// Plain max flow on the untransformed graph: 3 edge-disjoint paths.
	var raw []maxflow.Edge
	for _, e := range g.Edges() {
		raw = append(raw, maxflow.Edge{U: e.U, V: e.V, Cap: 1})
	}
	if f := maxflow.NewDinic(9, raw).MaxFlow(0, 8); f != 3 {
		t.Fatalf("raw max flow = %d, want 3", f)
	}
	// Vertex connectivity via Even's transformation: 1.
	for _, algo := range []maxflow.Algorithm{maxflow.Dinic, maxflow.PushRelabel} {
		k, err := Pair(g, 0, 8, algo)
		if err != nil {
			t.Fatal(err)
		}
		if k != 1 {
			t.Fatalf("%v: kappa(a,i) = %d, want 1", algo, k)
		}
	}
}

func TestPairErrors(t *testing.T) {
	g := undirected(3, [][2]int{{0, 1}, {1, 2}})
	if _, err := Pair(g, 0, 0, maxflow.Dinic); err == nil {
		t.Error("identical endpoints should fail")
	}
	if _, err := Pair(g, 0, 1, maxflow.Dinic); err == nil {
		t.Error("adjacent pair should fail")
	}
	if _, err := Pair(g, 0, 9, maxflow.Dinic); err == nil {
		t.Error("out of range should fail")
	}
	if k, err := Pair(g, 0, 2, maxflow.Dinic); err != nil || k != 1 {
		t.Errorf("kappa(0,2) = %d, %v; want 1", k, err)
	}
}

func TestMengersTheoremProperty(t *testing.T) {
	// kappa(v,w) <= min(outdeg(v), indeg(w)) for all non-adjacent pairs on
	// random digraphs.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 6 + r.Intn(10)
		g := graph.NewDigraph(n)
		for i := 0; i < n*3; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		in := g.InDegrees()
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if v == w || g.HasEdge(v, w) {
					continue
				}
				k, err := Pair(g, v, w, maxflow.Dinic)
				if err != nil {
					t.Fatal(err)
				}
				bound := g.OutDegree(v)
				if in[w] < bound {
					bound = in[w]
				}
				if k > bound {
					t.Fatalf("kappa(%d,%d)=%d exceeds degree bound %d", v, w, k, bound)
				}
			}
		}
	}
}

func TestSamplingNeverUnderestimates(t *testing.T) {
	// The sampled min is a min over a subset of pairs, so it can only be
	// >= the full min.
	r := rand.New(rand.NewSource(21))
	full := fullAnalyzer(t, maxflow.Dinic)
	sampled := MustNewAnalyzer(Options{SampleFraction: 0.1})
	for trial := 0; trial < 10; trial++ {
		n := 20 + r.Intn(20)
		g := graph.NewDigraph(n)
		for i := 0; i < n*4; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				g.AddEdge(v, u)
			}
		}
		fr, sr := full.Analyze(g), sampled.Analyze(g)
		if sr.Min < fr.Min {
			t.Fatalf("sampled min %d below full min %d", sr.Min, fr.Min)
		}
		if sr.Pairs >= fr.Pairs {
			t.Fatalf("sampling did not reduce work: %d vs %d pairs", sr.Pairs, fr.Pairs)
		}
	}
}

func TestSamplingFindsMinOnDegreeBoundGraphs(t *testing.T) {
	// When the minimum cut isolates the minimum-degree vertex — the
	// typical case in Kademlia graphs, per the paper — smallest-out-degree
	// sampling finds the exact minimum.
	g := hypercube(4) // 16 vertices, kappa 4
	// Weaken one vertex: drop the undirected edges {0,1} and {0,2}, so
	// vertex 0 keeps only 2 of its 4 neighbours.
	weak := graph.NewDigraph(16)
	dropped := map[[2]int]bool{{0, 1}: true, {1, 0}: true, {0, 2}: true, {2, 0}: true}
	for _, e := range g.Edges() {
		if dropped[[2]int{e.U, e.V}] {
			continue
		}
		weak.AddEdge(e.U, e.V)
	}
	full := fullAnalyzer(t, maxflow.Dinic)
	sampled := MustNewAnalyzer(Options{SampleFraction: 0.07}) // 2 sources
	fr, sr := full.Analyze(weak), sampled.Analyze(weak)
	if fr.Min != 2 {
		t.Fatalf("full min = %d, want 2", fr.Min)
	}
	if sr.Min != fr.Min {
		t.Fatalf("sampled min %d != full min %d", sr.Min, fr.Min)
	}
	if sr.Sources != 2 {
		t.Fatalf("Sources = %d, want 2", sr.Sources)
	}
}

func TestMinOnlyMode(t *testing.T) {
	a := MustNewAnalyzer(Options{SampleFraction: 1.0, MinOnly: true})
	res := a.Analyze(petersen())
	if res.Min != 3 {
		t.Fatalf("MinOnly kappa = %d, want 3", res.Min)
	}
	if !math.IsNaN(res.Avg) {
		t.Fatalf("MinOnly Avg = %v, want NaN", res.Avg)
	}
}

func TestWorkersProduceSameResult(t *testing.T) {
	g := petersen()
	for _, workers := range []int{1, 2, 8} {
		a := MustNewAnalyzer(Options{SampleFraction: 1.0, Workers: workers})
		if res := a.Analyze(g); res.Min != 3 {
			t.Fatalf("workers=%d: kappa = %d, want 3", workers, res.Min)
		}
	}
}

func TestAvgReasonable(t *testing.T) {
	// On C5, every non-adjacent pair has kappa exactly 2, so avg = 2.
	a := fullAnalyzer(t, maxflow.Dinic)
	res := a.Analyze(cycle(5))
	if res.Avg != 2.0 {
		t.Fatalf("avg = %v, want 2.0", res.Avg)
	}
	// C5 has 5*4=20 ordered pairs, 10 of them adjacent.
	if res.Pairs != 10 {
		t.Fatalf("pairs = %d, want 10", res.Pairs)
	}
}

func TestNewAnalyzerValidation(t *testing.T) {
	if _, err := NewAnalyzer(Options{SampleFraction: -0.5}); err == nil {
		t.Error("negative sample fraction should fail")
	}
	if _, err := NewAnalyzer(Options{SampleFraction: math.NaN()}); err == nil {
		t.Error("NaN sample fraction should fail")
	}
	a, err := NewAnalyzer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.opts.Algorithm != 0 {
		t.Error("unset algorithm should stay zero, deferring to the engine defaults")
	}
	if a.eng.algo == 0 || a.eng.exactAlgo == 0 {
		t.Error("engine must resolve concrete default algorithms")
	}
	if a.opts.Workers < 1 {
		t.Error("workers should default to >= 1")
	}
}

func TestResilienceEquations(t *testing.T) {
	// Equation 2: kappa > r >= a.
	if Resilience(5) != 4 {
		t.Error("kappa 5 tolerates 4 compromised nodes")
	}
	if Resilience(0) != -1 {
		t.Error("disconnected network has resilience -1")
	}
	if RequiredConnectivity(4) != 5 {
		t.Error("tolerating 4 attackers needs kappa >= 5")
	}
}

func TestUndirectedMin(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Digraph
		want int
	}{
		{"cycle C6", cycle(6), 2},
		{"petersen", petersen(), 3},
		{"hypercube Q3", hypercube(3), 3},
		{"star", undirected(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}), 1},
		{"disconnected", undirected(4, [][2]int{{0, 1}, {2, 3}}), 0},
		{"complete K4", completeGraph(4), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := UndirectedMin(tt.g, maxflow.Dinic)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("UndirectedMin = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestUndirectedMinRejectsAsymmetric(t *testing.T) {
	g := graph.NewDigraph(3)
	g.AddEdge(0, 1)
	if _, err := UndirectedMin(g, maxflow.Dinic); err == nil {
		t.Fatal("asymmetric graph should be rejected")
	}
}

func TestUndirectedMinIsUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	full := fullAnalyzer(t, maxflow.Dinic)
	for trial := 0; trial < 10; trial++ {
		n := 8 + r.Intn(12)
		g := graph.NewDigraph(n)
		for i := 0; i < n*3; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				g.AddEdge(v, u)
			}
		}
		ub, err := UndirectedMin(g, maxflow.Dinic)
		if err != nil {
			t.Fatal(err)
		}
		if fr := full.Analyze(g); ub < fr.Min {
			t.Fatalf("undirected shortcut %d below true kappa %d", ub, fr.Min)
		}
	}
}

func TestMinDegreeBound(t *testing.T) {
	if MinDegree(cycle(5)) != 2 {
		t.Error("C5 min degree = 2")
	}
	if MinDegree(graph.NewDigraph(0)) != 0 {
		t.Error("empty graph min degree = 0")
	}
	// kappa <= MinDegree on arbitrary graphs.
	r := rand.New(rand.NewSource(17))
	full := fullAnalyzer(t, maxflow.Dinic)
	for trial := 0; trial < 10; trial++ {
		n := 6 + r.Intn(10)
		g := graph.NewDigraph(n)
		for i := 0; i < n*3; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		res := full.Analyze(g)
		if res.Complete {
			continue
		}
		if res.Min > MinDegree(g) {
			t.Fatalf("kappa %d exceeds min degree %d", res.Min, MinDegree(g))
		}
	}
}
