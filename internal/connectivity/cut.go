package connectivity

import (
	"sort"

	"kadre/internal/graph"
)

// PairCut returns a minimum vertex cut separating w from v: a smallest set
// of vertices (excluding v and w themselves) whose removal destroys every
// path from v to w. Its size equals kappa(v, w). This extends the paper's
// analysis from *how many* nodes an attacker must compromise (Equation 2)
// to *which* nodes realize that minimum — the optimal attack against the
// pair.
//
// The cut is read off the max-flow residual graph of the Even-transformed
// graph: with a maximum flow in place, a vertex u is in the cut exactly
// when its internal edge (u', u”) crosses from the residual-reachable
// side to the unreachable side. Unlike the kappa computation — where every
// capacity is 1, as in the paper — the rewired original edges here carry
// capacity n so that the minimum cut is forced onto internal edges only;
// the flow value is unaffected because vertex-disjoint paths never share
// an original edge.
//
// PairCut builds a throwaway Engine per call; callers computing cuts per
// snapshot (the cutset adversary) should hold an Engine and use its
// PairCut/GraphCut, which cache the cut-mode network across bindings.
func PairCut(g *graph.Digraph, v, w int) ([]int, error) {
	eng := MustNewEngine(EngineOptions{Workers: 1})
	eng.Bind(g)
	return eng.PairCut(v, w)
}

// extractCut reads the cut vertices off the residual reachability of the
// n-vertex cut-mode network: u is cut when its internal edge crosses
// from the reachable to the unreachable side.
func extractCut(n, v, w int, reach []bool) []int {
	var cut []int
	for u := 0; u < n; u++ {
		if u == v || u == w {
			continue
		}
		if reach[graph.In(u)] && !reach[graph.Out(u)] {
			cut = append(cut, u)
		}
	}
	sort.Ints(cut)
	return cut
}

// GraphCut returns a minimum vertex cut of the whole graph: the smallest
// vertex set whose removal disconnects some ordered pair, found at the
// pair achieving kappa(D). For a complete graph there is no such cut and
// GraphCut reports ok = false. The cut set is the optimal attack of the
// paper's system model: compromising exactly these kappa(D) nodes
// partitions the network, while any kappa(D)-1 compromised nodes leave it
// connected (r-resilience, Equation 2).
//
// Like PairCut this is the throwaway-per-call form; per-snapshot callers
// should hold an Engine and use Engine.GraphCut.
func GraphCut(g *graph.Digraph, opts Options) (cut []int, pair [2]int, ok bool, err error) {
	opts.MinOnly = true
	a, err := NewAnalyzer(opts)
	if err != nil {
		return nil, [2]int{}, false, err
	}
	return a.GraphCut(g)
}

// RemoveVertices returns a copy of g with the given vertices deleted
// (vertices are renumbered densely; the returned mapping gives old-to-new
// indexes, with -1 for removed vertices). Examples use this to simulate
// node compromise and verify residual connectivity.
func RemoveVertices(g *graph.Digraph, remove []int) (*graph.Digraph, []int) {
	gone := make(map[int]bool, len(remove))
	for _, v := range remove {
		gone[v] = true
	}
	mapping := make([]int, g.N())
	next := 0
	for v := 0; v < g.N(); v++ {
		if gone[v] {
			mapping[v] = -1
			continue
		}
		mapping[v] = next
		next++
	}
	out := graph.NewDigraph(next)
	for _, e := range g.Edges() {
		if mapping[e.U] >= 0 && mapping[e.V] >= 0 {
			out.AddEdge(mapping[e.U], mapping[e.V])
		}
	}
	return out, mapping
}
