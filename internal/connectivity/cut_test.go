package connectivity

import (
	"math/rand"
	"testing"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

func TestPairCutCutVertex(t *testing.T) {
	// Two K4s joined at vertex 3: the only cut between the halves is {3}.
	g := undirected(7, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6},
	})
	cut, err := PairCut(g, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != 1 || cut[0] != 3 {
		t.Fatalf("cut = %v, want [3]", cut)
	}
}

func TestPairCutMatchesKappa(t *testing.T) {
	// Property: |PairCut(v,w)| == kappa(v,w), and removing the cut
	// disconnects w from v.
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 25; trial++ {
		n := 6 + r.Intn(12)
		g := graph.NewDigraph(n)
		for i := 0; i < n*3; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if v == w || g.HasEdge(v, w) {
					continue
				}
				kappa, err := Pair(g, v, w, maxflow.Dinic)
				if err != nil {
					t.Fatal(err)
				}
				cut, err := PairCut(g, v, w)
				if err != nil {
					t.Fatal(err)
				}
				if len(cut) != kappa {
					t.Fatalf("trial %d pair (%d,%d): |cut|=%d kappa=%d", trial, v, w, len(cut), kappa)
				}
				// Removing the cut must destroy all v->w paths.
				reduced, mapping := RemoveVertices(g, cut)
				if mapping[v] < 0 || mapping[w] < 0 {
					t.Fatal("cut contained an endpoint")
				}
				if kappa > 0 && reachable(reduced, mapping[v], mapping[w]) {
					t.Fatalf("trial %d pair (%d,%d): cut %v does not disconnect", trial, v, w, cut)
				}
			}
		}
	}
}

func reachable(g *graph.Digraph, s, t int) bool {
	seen := make([]bool, g.N())
	seen[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == t {
			return true
		}
		for _, v := range g.Successors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}

func TestPairCutErrors(t *testing.T) {
	g := undirected(3, [][2]int{{0, 1}, {1, 2}})
	if _, err := PairCut(g, 0, 0); err == nil {
		t.Error("identical endpoints should fail")
	}
	if _, err := PairCut(g, 0, 1); err == nil {
		t.Error("adjacent pair should fail")
	}
	if _, err := PairCut(g, 0, 9); err == nil {
		t.Error("out of range should fail")
	}
}

func TestGraphCut(t *testing.T) {
	// Petersen graph: kappa = 3, so the optimal attack compromises 3
	// nodes and partitions the network; any 2 leave it connected.
	g := petersen()
	cut, pair, ok, err := GraphCut(g, Options{SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected a cut")
	}
	if len(cut) != 3 {
		t.Fatalf("cut size %d, want kappa=3", len(cut))
	}
	reduced, mapping := RemoveVertices(g, cut)
	if reachable(reduced, mapping[pair[0]], mapping[pair[1]]) {
		t.Fatal("graph cut does not disconnect its witness pair")
	}
	// Removing any 2 of the 3 keeps the graph connected (r = kappa-1 = 2).
	for drop := 0; drop < 3; drop++ {
		partial := append([]int(nil), cut[:drop]...)
		partial = append(partial, cut[drop+1:]...)
		reduced, _ := RemoveVertices(g, partial)
		full := MustNewAnalyzer(Options{SampleFraction: 1.0, MinOnly: true})
		if full.Analyze(reduced).Min == 0 {
			t.Fatalf("removing only 2 cut nodes %v disconnected the graph", partial)
		}
	}
}

func TestGraphCutComplete(t *testing.T) {
	_, _, ok, err := GraphCut(completeGraph(5), Options{SampleFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("complete graph has no vertex cut")
	}
}

func TestRemoveVertices(t *testing.T) {
	g := undirected(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	reduced, mapping := RemoveVertices(g, []int{2})
	if reduced.N() != 4 {
		t.Fatalf("reduced N = %d", reduced.N())
	}
	if mapping[2] != -1 {
		t.Fatal("removed vertex not marked")
	}
	if reduced.HasEdge(mapping[1], mapping[3]) {
		t.Fatal("phantom edge across removed vertex")
	}
	if !reduced.HasEdge(mapping[0], mapping[1]) || !reduced.HasEdge(mapping[3], mapping[4]) {
		t.Fatal("surviving edges lost")
	}
	// Removing nothing is a clean copy.
	same, m := RemoveVertices(g, nil)
	if same.N() != 5 || same.M() != g.M() || m[4] != 4 {
		t.Fatal("no-op removal broke the graph")
	}
}
