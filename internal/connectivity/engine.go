package connectivity

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Algorithm solves the pruned (running-minimum-capped) sweep
	// queries. The zero value means HaoOrlin: the fixed-root sweep
	// solver (see maxflow.HaoOrlinSolver) pays no per-sink global
	// relabel, ~3x ahead of the warm-start push-relabel path on the
	// snapshot benchmark. Its MaxFlowLimit may overshoot the cap
	// (returning any value in [limit, kappa]); the sweep bookkeeping
	// only relies on "below the cap means exact", which every solver
	// guarantees. Pass Dinic explicitly for stop-at-the-cap semantics.
	Algorithm maxflow.Algorithm
	// ExactAlgorithm solves exact (uncapped) sweep queries — the Avg
	// sweeps and full analyses. The zero value means HaoOrlin; the flow
	// values are identical with any solver.
	ExactAlgorithm maxflow.Algorithm
	// Workers bounds the sweep worker pool; <= 0 means GOMAXPROCS. Each
	// worker owns private solvers, replacing the paper's cluster fan-out.
	Workers int
}

// Query selects what one Engine.Analyze computes; the fields mirror the
// per-call half of Options (the Analyzer-compatible semantics).
type Query struct {
	// SampleFraction is the paper's c; <= 0 or >= 1 means a full sweep.
	SampleFraction float64
	// Selection chooses the sampling strategy; zero means
	// SmallestOutDegree.
	Selection SourceSelection
	// SelectionSeed seeds the UniformRandom selection.
	SelectionSeed int64
	// MinOnly prunes flows above the running minimum; Avg is NaN.
	MinOnly bool
	// SkipMinPair reports MinPair as {-1, -1} without computing it.
	SkipMinPair bool
}

// SnapshotQuery configures the fused per-snapshot analysis.
type SnapshotQuery struct {
	// SampleFraction is the paper's c, applied to both source groups.
	SampleFraction float64
	// AvgSeed seeds the uniform source selection of the Avg sweep.
	AvgSeed int64
}

// SnapshotResult carries the two results of a fused snapshot analysis:
// Min is what a MinOnly smallest-out-degree Analyzer would report
// (MinPair skipped), Avg what a UniformRandom exact Analyzer would.
type SnapshotResult struct {
	Min Result
	Avg Result
}

// Engine is a reusable connectivity analysis engine: it binds to one
// graph at a time and answers Min, Avg, MinPair and minimum-vertex-cut
// queries against that binding, keeping every expensive structure — the
// Even-transformed edge list, the per-worker max-flow solvers, the
// cut-mode flow network, and all selection scratch — alive across
// bindings. Analyzing a sequence of same-shape graphs (the per-snapshot
// hot path at paper scale) therefore allocates only on the first
// binding, where the throwaway-per-call Analyzer pattern rebuilt
// O(workers*E) state per snapshot.
//
// Graphs bind in one of two styles: Bind takes a dense graph (every
// vertex live), BindSlots a stable-slot graph plus its canonical
// compaction map, in which case the engine masks vacant slots and runs
// every query in compacted rank numbering — answers are interchangeable
// between the styles. The slot style is what lets Rebind's incremental
// patching span membership changes (see RebindSlots).
//
// The reuse contract: Bind/BindSlots invalidates all previous binding
// state and must be called before Analyze/AnalyzeSnapshot/PairCut/
// GraphCut; the bound graph must not be mutated until the next bind. An
// Engine is NOT safe for concurrent use — it parallelizes internally
// across Workers. Results are deterministic for a given graph and
// query, independent of the worker count.
type Engine struct {
	algo       maxflow.Algorithm
	exactAlgo  maxflow.Algorithm
	maxWorkers int

	// Binding state.
	g       *graph.Digraph
	n       int
	even    []graph.Edge // Even-transformed edge list, rebuilt per Bind
	evenSrc unitEdgeSource
	cutSrc  cutEdgeSource
	gen     uint64 // binding generation; solvers rebind lazily
	// evenDirty marks the Even edge list stale after a Rebind: patched
	// solvers never read it, so it is rebuilt lazily — and only serially,
	// before workers spawn — for solvers that need a full Reset.
	evenDirty bool

	// Stable-slot (masked) binding state. With BindSlots the bound graph
	// lives in slot space — one vertex per population slot, vacant slots
	// isolated — while queries run in the canonical compacted rank space:
	// masked is true, nact counts the active vertices, slotOrder maps
	// dense rank -> slot (the capture's compaction map) and rankOf is its
	// inverse (-1 for vacant slots). For a dense Bind, masked is false
	// and nact == n with identity numbering. Sweep solvers stay bound to
	// the slot-space Even transform (flow values are mask-invariant: a
	// vacant slot's only arc is its never-usable internal edge), but the
	// cut-mode network is built in rank space via cutEven so extracted
	// cuts are bit-identical to a fresh bind of the compacted graph.
	masked    bool
	nact      int
	slotOrder []int
	rankOf    []int32
	cutEven   []graph.Edge
	cutDirty  bool // rank-space cut edge list stale (masked mode only)

	workers   []engineWorker
	cutSolver *maxflow.DinicSolver
	cutGen    uint64
	cutBuilds int

	// Rebind bookkeeping: reused Even-space delta adapters and the
	// counters the regression tests pin.
	addSrc, remSrc       evenDeltaSource
	cutAddSrc, cutRemSrc evenDeltaSource
	rebinds              int
	rebindFallbacks      int
	memberRebinds        int

	// Memory governance (see governance.go): the installed policy and the
	// deterministic primary-solver re-densify count.
	gov         GovernancePolicy
	redensifies int

	// Selection and sweep scratch, reused across bindings.
	rng      *rand.Rand
	degCount []int32
	orderBuf []int
	permBuf  []int
	allBuf   []int
	tasks    []sweepTask
	results  []taskResult
	idxBuf   []int
	state    sweepState // reused cross-worker coordination (zero steady-state allocs)
}

// engineWorker holds one worker's lazily created solvers.
type engineWorker struct {
	capped    maxflow.Solver
	exact     maxflow.Solver
	cappedGen uint64
	exactGen  uint64
}

// sweepTask evaluates one source against every non-adjacent target.
// Exact tasks compute full flow values (feeding Avg); capped tasks prune
// at the shared running minimum (feeding Min).
type sweepTask struct {
	src   int
	exact bool
}

// taskResult is one task's outcome. exactMin/exactMinTgt track the
// smallest flow among provably exact evaluations (and its smallest
// target); cappedMin/cappedMinTgt the same among evaluations that hit
// their cap, where only kappa >= value is known. resolveMinPair combines
// the two into the deterministic lexicographic minimum pair.
type taskResult struct {
	pairs        int
	sum          int64
	min          int
	minPair      [2]int
	exactMin     int
	exactMinTgt  int
	cappedMin    int
	cappedMinTgt int
}

// unitEdgeSource feeds graph.Edge lists to solvers with implicit unit
// capacities, avoiding the historical []maxflow.Edge copy.
type unitEdgeSource struct{ edges []graph.Edge }

func (s *unitEdgeSource) NumEdges() int { return len(s.edges) }
func (s *unitEdgeSource) EdgeAt(i int) (int, int, int32) {
	e := s.edges[i]
	return e.U, e.V, 1
}

// cutEdgeSource reinterprets the Even edge list as PairCut's cut-mode
// network: the first internal edges keep capacity 1, the rewired
// original edges get capacity big so the minimum cut lands on internal
// edges only (see PairCut).
type cutEdgeSource struct {
	edges    []graph.Edge
	internal int
	big      int32
}

func (s *cutEdgeSource) NumEdges() int { return len(s.edges) }
func (s *cutEdgeSource) EdgeAt(i int) (int, int, int32) {
	e := s.edges[i]
	if i < s.internal {
		return e.U, e.V, 1
	}
	return e.U, e.V, s.big
}

// evenDeltaSource presents an original-space edge delta in Even-transform
// coordinates with a fixed capacity — 1 for the sweep solvers, the cut
// network's big capacity for the cut solver. Only original edges appear
// in deltas (internal edges exist for every slot regardless of activity,
// and Rebind keeps the slot space), so the (Out(u), In(v)) shape is
// always right. A non-nil rank table additionally translates slot
// endpoints into compacted rank numbering — the coordinate space of the
// cut network under a masked binding.
type evenDeltaSource struct {
	edges []graph.Edge
	cap   int32
	rank  []int32
}

func (s *evenDeltaSource) NumEdges() int { return len(s.edges) }
func (s *evenDeltaSource) EdgeAt(i int) (int, int, int32) {
	e := s.edges[i]
	u, v := e.U, e.V
	if s.rank != nil {
		u, v = int(s.rank[u]), int(s.rank[v])
	}
	return graph.Out(u), graph.In(v), s.cap
}

// NewEngine validates options and returns an unbound Engine.
func NewEngine(opts EngineOptions) (*Engine, error) {
	if opts.Algorithm == 0 {
		opts.Algorithm = maxflow.HaoOrlin
	}
	if opts.ExactAlgorithm == 0 {
		opts.ExactAlgorithm = maxflow.HaoOrlin
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		algo:       opts.Algorithm,
		exactAlgo:  opts.ExactAlgorithm,
		maxWorkers: opts.Workers,
		workers:    make([]engineWorker, opts.Workers),
		rng:        rand.New(rand.NewSource(1)),
	}, nil
}

// MustNewEngine is NewEngine for statically correct options.
func MustNewEngine(opts EngineOptions) *Engine {
	e, err := NewEngine(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Bind points the engine at g: it rebuilds the Even-transformed edge
// list into the engine's reused buffer and schedules every solver for an
// in-place rebind on first use. g must not be mutated while bound.
func (e *Engine) Bind(g *graph.Digraph) {
	e.bindFull(g, nil)
}

// BindSlots points the engine at a stable-slot graph: g has one vertex
// per population slot (vacant slots isolated) and order lists the active
// slots in canonical capture order — snapshot.SlotSnapshot's compaction
// map. Every query then runs in compacted rank space: sources, MinPair
// and cuts are reported in exactly the numbering a dense Bind of the
// compacted graph would use, so results are interchangeable between the
// two binding styles — what lets stable-slot rebinding hide behind the
// golden fixtures. g and order must not be mutated while bound.
func (e *Engine) BindSlots(g *graph.Digraph, order []int) {
	e.bindFull(g, order)
}

func (e *Engine) bindFull(g *graph.Digraph, order []int) {
	e.g = g
	e.n = g.N()
	e.setOrder(order)
	e.even = g.AppendEvenEdges(e.even[:0])
	e.evenSrc.edges = e.even
	if e.masked {
		e.cutDirty = true
	} else {
		e.cutSrc = cutEdgeSource{edges: e.even, internal: e.n, big: int32(e.n + 1)}
		e.cutDirty = false
	}
	e.evenDirty = false
	e.gen++
}

// setOrder installs the rank <-> slot maps for a masked binding, or
// resets to dense identity numbering when order is nil.
func (e *Engine) setOrder(order []int) {
	if order == nil {
		e.masked = false
		e.nact = e.n
		e.slotOrder = e.slotOrder[:0]
		return
	}
	e.masked = true
	e.nact = len(order)
	e.slotOrder = append(e.slotOrder[:0], order...)
	if cap(e.rankOf) < e.n {
		e.rankOf = make([]int32, e.n)
	}
	e.rankOf = e.rankOf[:e.n]
	for i := range e.rankOf {
		e.rankOf[i] = -1
	}
	for r, s := range order {
		if s < 0 || s >= e.n || e.rankOf[s] >= 0 {
			panic(fmt.Sprintf("connectivity: invalid slot order entry %d at rank %d", s, r))
		}
		e.rankOf[s] = int32(r)
	}
}

// vtx translates a dense rank to the bound graph's vertex number: the
// identity for dense bindings, the slot for masked ones.
func (e *Engine) vtx(r int) int {
	if !e.masked {
		return r
	}
	return e.slotOrder[r]
}

// isCompleteActive reports whether every ordered pair of distinct ACTIVE
// vertices is an edge (IsComplete on the compacted graph).
func (e *Engine) isCompleteActive() bool {
	return e.g.M() == e.nact*(e.nact-1)
}

// Rebind points the engine at g incrementally: g must be the currently
// bound graph plus delta (same vertex count, same vertex identity —
// cur = old - delta.Removed + delta.Added, as graph.DiffInto computes).
// Instead of rebuilding the Even transform and re-initializing every
// solver, Rebind patches each live solver's arc layout in place and
// invalidates only the query-level caches the delta poisons (Dinic's
// prepared-source BFS, push-relabel's warm-start preflow, the sweep
// solver's root labels). Tombstoned arc slots preserve traversal order,
// so analyses after a Rebind are bit-identical to analyses after a full
// Bind of the same graph — the differential churn harness holds the two
// paths to that contract.
//
// With no previous binding or a different vertex count, Rebind falls back
// to Bind and reports false. A solver whose patch fails (an added edge
// with no tombstoned slot to revive) is left on the old generation and
// lazily re-initialized from the rebuilt Even list on next use; the
// engine stays consistent either way.
func (e *Engine) Rebind(g *graph.Digraph, delta graph.Delta) bool {
	if e.g == nil || g.N() != e.n || e.masked {
		e.Bind(g)
		return false
	}
	e.rebindEdges(g, delta, true)
	return true
}

// RebindSlots is Rebind for stable-slot bindings: g must be the bound
// slot graph plus delta (same slot count), and order the new capture's
// compaction map. Unlike Rebind, the membership may have changed — that
// is the point: joins, leaves and strikes keep their slots' identities,
// so the sweep solvers still patch in place from the edge delta alone,
// and only the rank-space structures follow the new order. The cut-mode
// network is patched too while the membership (and with it the rank
// numbering) is unchanged; a membership change leaves it stale for a
// lazy rank-space rebuild on the next cut query — the verified fallback,
// since cut queries are off the per-snapshot hot path.
//
// With no previous binding or a different slot count (the slot table
// grew), RebindSlots falls back to BindSlots and reports false.
func (e *Engine) RebindSlots(g *graph.Digraph, delta graph.Delta, order []int) bool {
	if e.g == nil || g.N() != e.n {
		e.BindSlots(g, order)
		return false
	}
	sameMembership := e.masked && slices.Equal(e.slotOrder, order)
	e.rebindEdges(g, delta, sameMembership)
	if !sameMembership {
		e.setOrder(order)
		e.memberRebinds++
	}
	return true
}

// rebindEdges patches every live solver with the slot-space edge delta
// and advances the binding generation. patchCut additionally patches the
// cut-mode network (legal only while its coordinate numbering survives
// the transition: always for dense rebinds, same-membership only for
// masked ones).
func (e *Engine) rebindEdges(g *graph.Digraph, delta graph.Delta, patchCut bool) {
	e.g = g
	prevGen := e.gen
	e.gen++
	e.evenDirty = true
	if e.masked {
		e.cutDirty = true
	}
	e.rebinds++
	e.addSrc = evenDeltaSource{edges: delta.Added, cap: 1}
	e.remSrc = evenDeltaSource{edges: delta.Removed, cap: 1}
	for i := range e.workers {
		w := &e.workers[i]
		if w.capped != nil && w.cappedGen == prevGen {
			if a, ok := w.capped.(maxflow.UnitDeltaApplier); ok && a.ApplyUnitDelta(&e.addSrc, &e.remSrc) {
				w.cappedGen = e.gen
			} else {
				e.rebindFallbacks++
			}
		}
		if w.exact != nil && w.exactGen == prevGen {
			if a, ok := w.exact.(maxflow.UnitDeltaApplier); ok && a.ApplyUnitDelta(&e.addSrc, &e.remSrc) {
				w.exactGen = e.gen
			} else {
				e.rebindFallbacks++
			}
		}
	}
	// The cut-mode network revives original edges at the big capacity
	// that keeps minimum cuts on internal edges; under a masked binding
	// its coordinates are ranks, so the delta is translated on the fly.
	if patchCut && e.cutSolver != nil && e.cutGen == prevGen {
		var rank []int32
		if e.masked {
			rank = e.rankOf
		}
		e.cutAddSrc = evenDeltaSource{edges: delta.Added, cap: e.cutSrc.big, rank: rank}
		e.cutRemSrc = evenDeltaSource{edges: delta.Removed, cap: e.cutSrc.big, rank: rank}
		if e.cutSolver.ApplyUnitDelta(&e.cutAddSrc, &e.cutRemSrc) {
			e.cutGen = e.gen
		} else {
			e.rebindFallbacks++
		}
		e.cutAddSrc.edges, e.cutRemSrc.edges = nil, nil
	}
	e.addSrc.edges, e.remSrc.edges = nil, nil
}

// Rebinds reports how many incremental rebinds the engine performed.
func (e *Engine) Rebinds() int { return e.rebinds }

// MembershipRebinds reports how many incremental rebinds crossed a
// membership change (joins, leaves or strikes between captures) — the
// binds that, before stable-slot indexing, were forced onto the full
// Bind path.
func (e *Engine) MembershipRebinds() int { return e.memberRebinds }

// RebindFallbacks reports how many solver patches failed during rebinds,
// forcing a lazy full re-initialization of that solver. Since arc-region
// relocation absorbed slack exhaustion, a patch fails only on a delta
// inconsistent with the bound graph — a wiring bug — so the churn oracle
// and the steady-state regression tests pin this to zero outright.
func (e *Engine) RebindFallbacks() int { return e.rebindFallbacks }

// ensureEven rebuilds the Even edge list after a Rebind marked it stale.
// It must only run from the serial sections of the engine (before sweep
// workers spawn): the sweep's solver fast paths never call it.
func (e *Engine) ensureEven() {
	if !e.evenDirty {
		return
	}
	e.even = e.g.AppendEvenEdges(e.even[:0])
	e.evenSrc.edges = e.even
	if !e.masked {
		e.cutSrc.edges = e.even
	}
	e.evenDirty = false
}

// ensureCut readies cutSrc for (re)building the cut-mode network: the
// shared slot-space Even list under a dense binding, the compacted
// rank-space list under a masked one — the numbering in which cut
// queries are asked and answered, and the reason a masked engine's cuts
// match a fresh bind of the compacted graph arc for arc.
func (e *Engine) ensureCut() {
	if !e.masked {
		e.ensureEven()
		e.cutSrc = cutEdgeSource{edges: e.even, internal: e.n, big: int32(e.n + 1)}
		return
	}
	if e.cutDirty {
		e.cutEven = e.g.AppendEvenEdgesCompact(e.cutEven[:0], e.slotOrder, e.rankOf)
		e.cutDirty = false
	}
	e.cutSrc = cutEdgeSource{edges: e.cutEven, internal: e.nact, big: int32(e.nact + 1)}
}

// CutNetworkBuilds reports how many times the engine constructed its
// cut-mode flow network from scratch. Rebinding to a new graph
// reinitializes the existing network in place, so the count stays at one
// across arbitrarily many same-shape bindings — the regression guard for
// the cutset adversary's strike loop.
func (e *Engine) CutNetworkBuilds() int { return e.cutBuilds }

// solverFor returns worker w's solver of the requested kind, creating or
// rebinding it to the current graph as needed.
func (e *Engine) solverFor(w int, exact bool) maxflow.Solver {
	ew := &e.workers[w]
	if exact {
		if ew.exact == nil {
			e.ensureEven()
			ew.exact = e.exactAlgo.NewSolverSource(2*e.n, &e.evenSrc)
			ew.exactGen = e.gen
		} else if ew.exactGen != e.gen {
			e.ensureEven()
			ew.exact.Reset(2*e.n, &e.evenSrc)
			ew.exactGen = e.gen
		}
		return ew.exact
	}
	if ew.capped == nil {
		e.ensureEven()
		ew.capped = e.algo.NewSolverSource(2*e.n, &e.evenSrc)
		ew.cappedGen = e.gen
	} else if ew.cappedGen != e.gen {
		e.ensureEven()
		ew.capped.Reset(2*e.n, &e.evenSrc)
		ew.cappedGen = e.gen
	}
	return ew.capped
}

// Analyze computes the connectivity of the bound graph with
// Analyzer-compatible semantics: identical Min, Avg, Pairs, Sources and
// MinPair for any query, worker count and algorithm choice.
func (e *Engine) Analyze(q Query) Result {
	if e.g == nil {
		panic("connectivity: Engine.Analyze before Bind")
	}
	n := e.nact
	if n <= 1 {
		return Result{N: n, Complete: true, MinPair: [2]int{-1, -1}}
	}
	if e.isCompleteActive() {
		return Result{N: n, Min: n - 1, Avg: float64(n - 1), Complete: true, MinPair: [2]int{-1, -1}}
	}
	if q.Selection == 0 {
		q.Selection = SmallestOutDegree
	}
	sources := e.pickSources(q.SampleFraction, q.Selection, q.SelectionSeed)
	e.tasks = e.tasks[:0]
	for _, s := range sources {
		e.tasks = append(e.tasks, sweepTask{src: s, exact: !q.MinOnly})
	}
	e.runSweep(e.tasks)
	out := e.combine(e.results, len(sources))
	if out.Pairs == 0 {
		return out
	}
	if q.MinOnly {
		out.Avg = math.NaN()
		if q.SkipMinPair {
			out.MinPair = [2]int{-1, -1}
		} else {
			out.MinPair = e.resolveMinPair(e.tasks, e.results, out.Min)
		}
	} else if q.SkipMinPair {
		out.MinPair = [2]int{-1, -1}
	}
	return out
}

// AnalyzeSnapshot runs the fused per-snapshot analysis: one sweep over
// the union of the smallest-out-degree sources (pruned at the running
// minimum, feeding Min — exactly a MinOnly Analyzer) and the seeded
// uniform sources (exact flows, feeding Avg — exactly a UniformRandom
// Analyzer). Fusing shares the Even transform, the solver pool and the
// worker fan-out between the two measurements the paper plots, instead
// of paying for each twice per snapshot.
func (e *Engine) AnalyzeSnapshot(q SnapshotQuery) SnapshotResult {
	if e.g == nil {
		panic("connectivity: Engine.AnalyzeSnapshot before Bind")
	}
	n := e.nact
	if n <= 1 {
		r := Result{N: n, Complete: true, MinPair: [2]int{-1, -1}}
		return SnapshotResult{Min: r, Avg: r}
	}
	if e.isCompleteActive() {
		r := Result{N: n, Min: n - 1, Avg: float64(n - 1), Complete: true, MinPair: [2]int{-1, -1}}
		return SnapshotResult{Min: r, Avg: r}
	}
	minSrc := e.smallestOutDegreeSources(sampleCount(q.SampleFraction, n))
	avgSrc := e.uniformSources(sampleCount(q.SampleFraction, n), q.AvgSeed)
	e.tasks = e.tasks[:0]
	for _, s := range minSrc {
		e.tasks = append(e.tasks, sweepTask{src: s})
	}
	for _, s := range avgSrc {
		e.tasks = append(e.tasks, sweepTask{src: s, exact: true})
	}
	e.runSweep(e.tasks)
	km := len(minSrc)
	minRes := e.combine(e.results[:km], len(minSrc))
	if minRes.Pairs > 0 {
		minRes.Avg = math.NaN()
		minRes.MinPair = [2]int{-1, -1}
	}
	avgRes := e.combine(e.results[km:], len(avgSrc))
	return SnapshotResult{Min: minRes, Avg: avgRes}
}

// runSweep evaluates every task across the worker pool, filling
// e.results (index-aligned with tasks). Capped tasks share one running
// minimum, seeded with the lossless out-degree bound: every evaluated
// pair of a source s satisfies kappa(s, t) <= outdeg(s), so the smallest
// out-degree among sources with at least one non-adjacent target already
// bounds the sweep minimum and prunes the discovery phase for free.
func (e *Engine) runSweep(tasks []sweepTask) {
	if cap(e.results) < len(tasks) {
		e.results = make([]taskResult, len(tasks))
	} else {
		e.results = e.results[:len(tasks)]
	}
	st := &e.state
	st.next = 0
	st.running = e.nact
	for _, t := range tasks {
		if t.exact {
			continue
		}
		if d := e.g.OutDegree(e.vtx(t.src)); d < e.nact-1 && d < st.running {
			st.running = d
		}
	}
	workers := e.maxWorkers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Resolve every solver the sweep may touch while still serial: a
	// stale solver's Reset reads the shared Even edge list (possibly
	// rebuilding it after a Rebind), which must not race across workers.
	// In the steady state — bound or patched solvers on the current
	// generation — these calls are gen checks and nothing more.
	needCapped, needExact := false, false
	for _, t := range tasks {
		if t.exact {
			needExact = true
		} else {
			needCapped = true
		}
	}
	for w := 0; w < workers; w++ {
		if needCapped {
			e.solverFor(w, false)
		}
		if needExact {
			e.solverFor(w, true)
		}
	}
	if workers <= 1 {
		e.sweepWorker(0, tasks, st)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.sweepWorker(w, tasks, st)
		}(w)
	}
	wg.Wait()
}

// sweepState is the cross-worker sweep coordination: a task cursor and
// the shared running minimum for capped tasks.
type sweepState struct {
	mu      sync.Mutex
	next    int
	running int
}

// sweepWorker drains tasks, writing results[idx] for each claimed task
// (distinct indices, so no result locking is needed). Sources, targets
// and recorded pairs are dense ranks; only the solver coordinates and
// adjacency probes translate through vtx to the bound graph's numbering,
// so a masked sweep records exactly what a dense sweep of the compacted
// graph would.
func (e *Engine) sweepWorker(w int, tasks []sweepTask, st *sweepState) {
	n := e.nact
	g := e.g
	for {
		st.mu.Lock()
		idx := st.next
		if idx >= len(tasks) {
			st.mu.Unlock()
			return
		}
		st.next++
		limit := st.running
		st.mu.Unlock()

		task := tasks[idx]
		src := task.src
		srcV := e.vtx(src)
		res := taskResult{
			min: n, minPair: [2]int{-1, -1},
			exactMin: n, exactMinTgt: n,
			cappedMin: n, cappedMinTgt: n,
		}
		solver := e.solverFor(w, task.exact)
		solver.PrepareSource(graph.Out(srcV))
		for tgt := 0; tgt < n; tgt++ {
			tgtV := e.vtx(tgt)
			if tgtV == srcV || g.HasEdge(srcV, tgtV) {
				continue
			}
			var flow int
			if task.exact {
				flow = solver.MaxFlow(graph.Out(srcV), graph.In(tgtV))
				if flow < res.exactMin {
					res.exactMin, res.exactMinTgt = flow, tgt
				}
			} else {
				flow = solver.MaxFlowLimit(graph.Out(srcV), graph.In(tgtV), limit)
				if flow < limit {
					// The cap did not bind: the value is exact.
					if flow < res.exactMin {
						res.exactMin, res.exactMinTgt = flow, tgt
					}
				} else if flow < res.cappedMin {
					// Capped: only kappa >= flow is known. Targets scan in
					// ascending order, so a strict < keeps the smallest
					// target of the smallest capped value.
					res.cappedMin, res.cappedMinTgt = flow, tgt
				}
			}
			res.pairs++
			res.sum += int64(flow)
			if flow < res.min {
				res.min = flow
				res.minPair = [2]int{src, tgt}
				if !task.exact && flow < limit {
					limit = flow
					st.mu.Lock()
					if flow < st.running {
						st.running = flow
					} else {
						limit = st.running
					}
					st.mu.Unlock()
				}
			}
		}
		e.results[idx] = res
	}
}

// combine folds task results into a Result with the Analyzer's exact
// semantics, including the sample-yielded-no-information fallback.
func (e *Engine) combine(results []taskResult, sources int) Result {
	n := e.nact
	out := Result{N: n, Min: n, MinPair: [2]int{-1, -1}, Sources: sources}
	var sum int64
	for i := range results {
		r := &results[i]
		out.Pairs += r.pairs
		sum += r.sum
		if r.pairs == 0 {
			continue
		}
		if r.min < out.Min || (r.min == out.Min && lexLess(r.minPair, out.MinPair)) {
			out.Min = r.min
			out.MinPair = r.minPair
		}
	}
	if out.Pairs == 0 {
		// Every sampled source was adjacent to every other vertex, so the
		// sample yields no information. Report the definitional upper
		// bound n-1 rather than claiming the graph is complete.
		return Result{N: n, Min: n - 1, Avg: math.NaN(), MinPair: [2]int{-1, -1}, Sources: sources}
	}
	out.Avg = float64(sum) / float64(out.Pairs)
	return out
}

// resolveMinPair returns the lexicographically smallest evaluated
// (source, target) pair achieving min after a pruned sweep — the
// deterministic MinPair contract under any worker count. Most of the
// answer falls out of the sweep itself: any pair whose connectivity is
// min was evaluated with a cap >= min (the running minimum never drops
// below it), so it was recorded either exactly (cap did not bind) or as
// a capped candidate with value exactly min. Only the capped candidates
// are ambiguous — kappa could exceed min under the cap — and only those
// before the source's first exact hit matter, so the fallback re-checks
// just that window with cap min+1. This replaces the bounded second
// sweep (lexMinPair) the previous revision ran over every source.
func (e *Engine) resolveMinPair(tasks []sweepTask, results []taskResult, min int) [2]int {
	n := e.nact
	idxs := e.idxBuf[:0]
	for i := range tasks {
		if !tasks[i].exact {
			idxs = append(idxs, i)
		}
	}
	slices.SortFunc(idxs, func(a, b int) int { return tasks[a].src - tasks[b].src })
	e.idxBuf = idxs
	var solver maxflow.Solver
	for _, ti := range idxs {
		r := &results[ti]
		src := tasks[ti].src
		srcV := e.vtx(src)
		exTgt := n
		if r.exactMin == min {
			exTgt = r.exactMinTgt
		}
		amTgt := n
		if r.cappedMin == min {
			amTgt = r.cappedMinTgt
		}
		if amTgt < exTgt {
			if solver == nil {
				solver = e.solverFor(0, false)
			}
			solver.PrepareSource(graph.Out(srcV))
			for tgt := amTgt; tgt < exTgt; tgt++ {
				tgtV := e.vtx(tgt)
				if tgtV == srcV || e.g.HasEdge(srcV, tgtV) {
					continue
				}
				if solver.MaxFlowLimit(graph.Out(srcV), graph.In(tgtV), min+1) == min {
					return [2]int{src, tgt}
				}
			}
		}
		if exTgt < n {
			return [2]int{src, exTgt}
		}
	}
	return [2]int{-1, -1}
}

// sampleCount returns ceil(c*n) clamped to [1, n], or n for a full
// sweep.
func sampleCount(c float64, n int) int {
	if c <= 0 || c >= 1 {
		return n
	}
	count := int(math.Ceil(c * float64(n)))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	return count
}

// pickSources returns the flow sources (dense ranks) for one Analyze
// query, reusing the engine's scratch buffers.
func (e *Engine) pickSources(c float64, sel SourceSelection, seed int64) []int {
	n := e.nact
	if c <= 0 || c >= 1 {
		if cap(e.allBuf) < n {
			e.allBuf = make([]int, n)
		}
		all := e.allBuf[:n]
		for i := range all {
			all[i] = i
		}
		return all
	}
	count := sampleCount(c, n)
	if sel == UniformRandom {
		return e.uniformSources(count, seed)
	}
	return e.smallestOutDegreeSources(count)
}

// smallestOutDegreeSources returns the count active vertices (as dense
// ranks) with smallest out-degree, ties broken by rank — the paper's
// §5.2 heuristic. A counting sort by degree (stable in rank order)
// reproduces the historical sort.SliceStable order with zero
// allocations.
func (e *Engine) smallestOutDegreeSources(count int) []int {
	n := e.nact
	if cap(e.degCount) < n {
		e.degCount = make([]int32, n)
	}
	cnt := e.degCount[:n] // out-degrees lie in [0, n-1]
	for i := range cnt {
		cnt[i] = 0
	}
	for v := 0; v < n; v++ {
		cnt[e.g.OutDegree(e.vtx(v))]++
	}
	var total int32
	for d := 0; d < n; d++ {
		c := cnt[d]
		cnt[d] = total
		total += c
	}
	if cap(e.orderBuf) < n {
		e.orderBuf = make([]int, n)
	}
	order := e.orderBuf[:n]
	for v := 0; v < n; v++ {
		d := e.g.OutDegree(e.vtx(v))
		order[cnt[d]] = v
		cnt[d]++
	}
	return order[:count]
}

// uniformSources returns count seeded uniform sources (dense ranks),
// replicating rand.Rand.Perm exactly (including the i=0 draw) so seeded
// runs keep their historical source sets.
func (e *Engine) uniformSources(count int, seed int64) []int {
	n := e.nact
	e.rng.Seed(seed)
	if cap(e.permBuf) < n {
		e.permBuf = make([]int, n)
	}
	m := e.permBuf[:n]
	for i := 0; i < n; i++ {
		j := e.rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m[:count]
}

// PairCut returns a minimum vertex cut separating w from v on the bound
// graph, with the semantics of the package-level PairCut. Under a masked
// binding v and w are dense ranks and so is the returned cut. The
// cut-mode flow network is cached: the first call builds it, later
// calls — and later bindings — reinitialize it in place, so an
// adversary striking once per snapshot stops paying a network
// construction per strike.
func (e *Engine) PairCut(v, w int) ([]int, error) {
	if e.g == nil {
		panic("connectivity: Engine.PairCut before Bind")
	}
	if v == w {
		return nil, fmt.Errorf("connectivity: cut (%d,%d) has identical endpoints", v, w)
	}
	if v < 0 || v >= e.nact || w < 0 || w >= e.nact {
		return nil, fmt.Errorf("connectivity: cut (%d,%d) out of range [0,%d)", v, w, e.nact)
	}
	if e.g.HasEdge(e.vtx(v), e.vtx(w)) {
		return nil, fmt.Errorf("connectivity: vertices %d and %d are adjacent; no vertex cut separates them", v, w)
	}
	if e.cutSolver == nil {
		e.ensureCut()
		e.cutSolver = maxflow.NewDinicSource(2*e.nact, &e.cutSrc)
		e.cutGen = e.gen
		e.cutBuilds++
	} else if e.cutGen != e.gen {
		e.ensureCut()
		e.cutSolver.Reset(2*e.nact, &e.cutSrc)
		e.cutGen = e.gen
	}
	e.cutSolver.MaxFlow(graph.Out(v), graph.In(w))
	reach := e.cutSolver.ResidualReachable(graph.Out(v))
	return extractCut(e.nact, v, w, reach), nil
}

// GraphCut returns a minimum vertex cut of the bound graph, with the
// semantics of the package-level GraphCut: a pruned Min/MinPair analysis
// followed by a PairCut at the minimizing pair.
func (e *Engine) GraphCut(q Query) (cut []int, pair [2]int, ok bool, err error) {
	q.MinOnly = true
	q.SkipMinPair = false
	res := e.Analyze(q)
	if res.Complete || res.MinPair[0] < 0 {
		return nil, [2]int{}, false, nil
	}
	cut, err = e.PairCut(res.MinPair[0], res.MinPair[1])
	if err != nil {
		return nil, [2]int{}, false, err
	}
	return cut, res.MinPair, true, nil
}
