//go:build !race

// The allocation regression tests measure exact steady-state allocation
// counts, which the race detector's instrumentation would distort; they
// are compiled out under -race (the functional engine tests still run).

package connectivity

import (
	"testing"

	"kadre/internal/graph"
)

// TestEngineSteadyStateAllocs pins the engine's reuse contract: after
// warm-up, re-binding and re-analyzing same-shape graphs must not
// allocate at all — the Even transform, solver state, selection scratch
// and results all live in reused buffers.
func TestEngineSteadyStateAllocs(t *testing.T) {
	g1 := randomSymmetricGraph(1, 60, 600)
	g2 := randomSymmetricGraph(2, 60, 600)
	eng := MustNewEngine(EngineOptions{Workers: 1})
	analyze := func(g *graph.Digraph) Result {
		eng.Bind(g)
		return eng.Analyze(Query{SampleFraction: 0.05, MinOnly: true})
	}
	analyze(g1) // warm-up: first binding allocates
	analyze(g2)
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		if i%2 == 0 {
			analyze(g1)
		} else {
			analyze(g2)
		}
		i++
	})
	if allocs > 0 {
		t.Fatalf("steady-state Engine.Analyze allocates %.1f times per run, want 0", allocs)
	}
}

// TestEngineRebindSteadyStateAllocs pins the incremental path's reuse
// contract: once the delta buffers and solver state have warmed up,
// diffing adjacent graphs, patching the engine via Rebind (tombstones,
// revivals AND slack insertions — the graphs differ in both directions)
// and re-running the fused snapshot analysis must not allocate at all.
func TestEngineRebindSteadyStateAllocs(t *testing.T) {
	g1 := randomSymmetricGraph(11, 60, 600)
	g2 := g1.Clone()
	// A bounded, symmetric mutation: the two graphs differ by a fixed
	// edge set, so alternating rebinds exercise tombstone and revive on
	// every step with deltas of constant size.
	edges := g1.Edges()
	for i := 0; i < 10; i++ {
		g2.RemoveEdge(edges[i*7].U, edges[i*7].V)
	}
	for v := 1; v <= 4; v++ {
		if !g2.HasEdge(0, v) && !g1.HasEdge(0, v) {
			g2.AddEdge(0, v)
		}
	}
	eng := MustNewEngine(EngineOptions{Workers: 1})
	var delta graph.Delta
	cur := g1
	step := func(next *graph.Digraph) {
		graph.DiffInto(cur, next, &delta)
		if !eng.Rebind(next, delta) {
			t.Fatal("Rebind fell back during steady state")
		}
		eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.05, AvgSeed: 3})
		cur = next
	}
	eng.Bind(g1)
	eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.05, AvgSeed: 3})
	step(g2) // warm-up: slack insertions and delta buffers grow once
	step(g1)
	step(g2)
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		if i%2 == 0 {
			step(g1)
		} else {
			step(g2)
		}
		i++
	})
	if allocs > 0 {
		t.Fatalf("steady-state diff+Rebind+AnalyzeSnapshot allocates %.1f times per run, want 0", allocs)
	}
	if fb := eng.RebindFallbacks(); fb != 0 {
		t.Fatalf("rebind patch fallbacks = %d, want 0", fb)
	}
}

// TestEngineSlotRebindSteadyStateAllocs pins the stable-slot incremental
// path's reuse contract: alternating between two slot captures that
// differ by a MEMBERSHIP change (one node replaced by another recycling
// its slot, plus the edge churn that implies) must, once warm, not
// allocate at all — the delta scratch, order/rank maps and solver
// patches all live in reused buffers. Region relocation is the one
// sanctioned allocation and only fires when a slot's occupant outgrows
// every predecessor, which an alternating pair cannot do after warm-up.
func TestEngineSlotRebindSteadyStateAllocs(t *testing.T) {
	w := newSlotWorld(9, 40, 5)
	gA, orderA, _ := w.capture()
	w.leave()
	w.join(5)
	gB, orderB, _ := w.capture()
	if gA.N() != gB.N() {
		t.Fatalf("slot count changed across the leave+join: %d -> %d", gA.N(), gB.N())
	}
	eng := MustNewEngine(EngineOptions{Workers: 1})
	binder := NewIncrementalBinder(eng)
	step := func(g *graph.Digraph, order []int) {
		if !binder.BindNextSlots(g, order) && binder.FullBinds() > 1 {
			t.Fatal("BindNextSlots fell back during steady state")
		}
		eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.05, AvgSeed: 3})
	}
	step(gA, orderA)
	step(gB, orderB) // warm-up: delta buffers, order copies, slack claims
	step(gA, orderA)
	step(gB, orderB)
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		if i%2 == 0 {
			step(gA, orderA)
		} else {
			step(gB, orderB)
		}
		i++
	})
	if allocs > 0 {
		t.Fatalf("steady-state slot diff+RebindSlots+AnalyzeSnapshot allocates %.1f times per run, want 0", allocs)
	}
	if fb := eng.RebindFallbacks(); fb != 0 {
		t.Fatalf("rebind patch fallbacks = %d, want 0", fb)
	}
	if eng.MembershipRebinds() == 0 {
		t.Fatal("alternating captures never crossed a membership change")
	}
}

// TestEngineSnapshotAndCutAllocs bounds the fused snapshot analysis plus
// a GraphCut — one cutset-adversary strike — to the unavoidable result
// allocations (the returned cut slice and the reachability scratch),
// proving strikes no longer construct a fresh PairCut network each time.
func TestEngineSnapshotAndCutAllocs(t *testing.T) {
	g1 := randomSymmetricGraph(3, 60, 600)
	g2 := randomSymmetricGraph(4, 60, 600)
	eng := MustNewEngine(EngineOptions{Workers: 1})
	strike := func(g *graph.Digraph) {
		eng.Bind(g)
		eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.05, AvgSeed: 7})
		if _, _, _, err := eng.GraphCut(Query{SampleFraction: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	strike(g1)
	strike(g2)
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		if i%2 == 0 {
			strike(g1)
		} else {
			strike(g2)
		}
		i++
	})
	// The returned cut slice and the residual-reachability bitmap are
	// fresh per call by API contract; everything else must be reused.
	if allocs > 8 {
		t.Fatalf("steady-state strike allocates %.1f times per run, want <= 8", allocs)
	}
	if builds := eng.CutNetworkBuilds(); builds != 1 {
		t.Fatalf("cut network built %d times, want 1", builds)
	}
}
