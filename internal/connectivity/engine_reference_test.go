package connectivity

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// This file carries the pre-engine Analyzer implementation verbatim as a
// differential-testing oracle: an independent, worker-pooled sweep with
// its own source selection, MinOnly pruning and lexMinPair second pass.
// The engine must reproduce its results — Min, Avg, Pairs, Sources and
// MinPair — bit for bit on every option combination (see engine_test.go).

// referenceAnalyze is the historical Analyzer.Analyze.
func referenceAnalyze(opts Options, g *graph.Digraph) Result {
	if opts.Algorithm == 0 {
		opts.Algorithm = maxflow.Dinic
	}
	if opts.Selection == 0 {
		opts.Selection = SmallestOutDegree
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	n := g.N()
	if n <= 1 {
		return Result{N: n, Complete: true, MinPair: [2]int{-1, -1}}
	}
	if g.IsComplete() {
		return Result{N: n, Min: n - 1, Avg: float64(n - 1), Complete: true, MinPair: [2]int{-1, -1}}
	}

	sources := referencePickSources(opts, g)
	edges := referenceEvenUnitEdges(g)

	type sourceResult struct {
		min     int
		minPair [2]int
		sum     int64
		pairs   int
	}

	var (
		mu         sync.Mutex
		running    = n
		results    = make([]sourceResult, len(sources))
		nextSource int
	)

	workers := opts.Workers
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		workers = 1
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver := opts.Algorithm.NewSolver(2*n, edges)
			for {
				mu.Lock()
				idx := nextSource
				if idx >= len(sources) {
					mu.Unlock()
					return
				}
				nextSource++
				limit := running
				mu.Unlock()

				src := sources[idx]
				res := sourceResult{min: n, minPair: [2]int{-1, -1}}
				for tgt := 0; tgt < n; tgt++ {
					if tgt == src || g.HasEdge(src, tgt) {
						continue
					}
					var flow int
					if opts.MinOnly {
						flow = solver.MaxFlowLimit(graph.Out(src), graph.In(tgt), limit)
					} else {
						flow = solver.MaxFlow(graph.Out(src), graph.In(tgt))
					}
					res.pairs++
					res.sum += int64(flow)
					if flow < res.min {
						res.min = flow
						res.minPair = [2]int{src, tgt}
						if flow < limit {
							limit = flow
							mu.Lock()
							if flow < running {
								running = flow
							} else {
								limit = running
							}
							mu.Unlock()
						}
					}
				}
				mu.Lock()
				results[idx] = res
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	out := Result{N: n, Min: n, MinPair: [2]int{-1, -1}, Sources: len(sources)}
	var sum int64
	for _, r := range results {
		out.Pairs += r.pairs
		sum += r.sum
		if r.pairs == 0 {
			continue
		}
		if r.min < out.Min || (r.min == out.Min && lexLess(r.minPair, out.MinPair)) {
			out.Min = r.min
			out.MinPair = r.minPair
		}
	}
	if out.Pairs == 0 {
		return Result{N: n, Min: n - 1, Avg: math.NaN(), MinPair: [2]int{-1, -1}, Sources: len(sources)}
	}
	if opts.MinOnly {
		out.Avg = math.NaN()
		if opts.SkipMinPair {
			out.MinPair = [2]int{-1, -1}
		} else {
			out.MinPair = referenceLexMinPair(opts, g, sources, edges, out.Min)
		}
	} else {
		out.Avg = float64(sum) / float64(out.Pairs)
		if opts.SkipMinPair {
			out.MinPair = [2]int{-1, -1}
		}
	}
	return out
}

// referenceLexMinPair is the historical bounded second sweep that
// re-selected MinPair deterministically after a MinOnly analysis.
func referenceLexMinPair(opts Options, g *graph.Digraph, sources []int, edges []maxflow.Edge, min int) [2]int {
	n := g.N()
	sorted := append([]int(nil), sources...)
	sort.Ints(sorted)

	hits := make([]int, len(sorted))
	var (
		mu       sync.Mutex
		next     int
		firstHit = len(sorted)
		wg       sync.WaitGroup
	)
	workers := opts.Workers
	if workers > len(sorted) {
		workers = len(sorted)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver := opts.Algorithm.NewSolver(2*n, edges)
			for {
				mu.Lock()
				idx := next
				if idx >= len(sorted) || idx > firstHit {
					mu.Unlock()
					return
				}
				next++
				mu.Unlock()

				src := sorted[idx]
				hits[idx] = -1
				for tgt := 0; tgt < n; tgt++ {
					if tgt == src || g.HasEdge(src, tgt) {
						continue
					}
					mu.Lock()
					obsolete := firstHit < idx
					mu.Unlock()
					if obsolete {
						break
					}
					if solver.MaxFlowLimit(graph.Out(src), graph.In(tgt), min+1) == min {
						hits[idx] = tgt
						mu.Lock()
						if idx < firstHit {
							firstHit = idx
						}
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	if firstHit < len(sorted) {
		return [2]int{sorted[firstHit], hits[firstHit]}
	}
	return [2]int{-1, -1}
}

// referencePickSources is the historical source selection.
func referencePickSources(opts Options, g *graph.Digraph) []int {
	n := g.N()
	c := opts.SampleFraction
	if c <= 0 || c >= 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	count := int(math.Ceil(c * float64(n)))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	if opts.Selection == UniformRandom {
		r := rand.New(rand.NewSource(opts.SelectionSeed))
		return r.Perm(n)[:count]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.OutDegree(order[i]), g.OutDegree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	return order[:count]
}

func referenceEvenUnitEdges(g *graph.Digraph) []maxflow.Edge {
	ge := graph.EvenEdges(g)
	edges := make([]maxflow.Edge, len(ge))
	for i, e := range ge {
		edges[i] = maxflow.Edge{U: e.U, V: e.V, Cap: 1}
	}
	return edges
}
