package connectivity

import (
	"math"
	"math/rand"
	"testing"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// sameResult compares engine and reference results, treating the NaN Avg
// of MinOnly analyses as equal.
func sameResult(a, b Result) bool {
	if a.N != b.N || a.Min != b.Min || a.Pairs != b.Pairs || a.Sources != b.Sources ||
		a.Complete != b.Complete || a.MinPair != b.MinPair {
		return false
	}
	if math.IsNaN(a.Avg) || math.IsNaN(b.Avg) {
		return math.IsNaN(a.Avg) && math.IsNaN(b.Avg)
	}
	return a.Avg == b.Avg
}

// TestEngineMatchesReference is the equivalence property test: on random
// digraphs, Engine.Analyze must reproduce the pre-engine Analyzer
// implementation (kept verbatim in engine_reference_test.go) across the
// whole option grid — sampling modes, MinOnly pruning, MinPair on and
// off, both algorithms, several worker counts.
func TestEngineMatchesReference(t *testing.T) {
	graphs := []*graph.Digraph{
		randomDigraph(11, 18, 60),
		randomDigraph(12, 25, 140),
		randomSymmetricGraph(13, 30, 170),
		randomDigraph(14, 9, 12), // sparse: disconnected pairs, kappa 0
	}
	for gi, g := range graphs {
		for _, opt := range []Options{
			{SampleFraction: 1.0},
			{SampleFraction: 1.0, MinOnly: true},
			{SampleFraction: 1.0, MinOnly: true, SkipMinPair: true},
			{SampleFraction: 0.1, MinOnly: true},
			{SampleFraction: 0.15, Selection: UniformRandom, SelectionSeed: 5},
			{SampleFraction: 0.15, Selection: UniformRandom, SelectionSeed: 6, MinOnly: true},
			{SampleFraction: 0.2, SkipMinPair: true},
			{SampleFraction: 1.0, Algorithm: maxflow.PushRelabel, MinOnly: true},
			{SampleFraction: 0.1, Algorithm: maxflow.PushRelabel},
		} {
			want := referenceAnalyze(opt, g)
			for _, workers := range []int{1, 3, 8} {
				opt.Workers = workers
				got := MustNewAnalyzer(opt).Analyze(g)
				if !sameResult(got, want) {
					t.Fatalf("graph %d opts %+v: engine %+v != reference %+v", gi, opt, got, want)
				}
				// The engine must also agree when rebound repeatedly (the
				// per-snapshot reuse pattern).
				eng := MustNewEngine(EngineOptions{
					Algorithm: opt.Algorithm, ExactAlgorithm: opt.Algorithm, Workers: workers,
				})
				for rep := 0; rep < 2; rep++ {
					eng.Bind(g)
					got = eng.Analyze(Query{
						SampleFraction: opt.SampleFraction,
						Selection:      opt.Selection,
						SelectionSeed:  opt.SelectionSeed,
						MinOnly:        opt.MinOnly,
						SkipMinPair:    opt.SkipMinPair,
					})
					if !sameResult(got, want) {
						t.Fatalf("graph %d opts %+v rep %d: rebound engine %+v != reference %+v",
							gi, opt, rep, got, want)
					}
				}
			}
		}
	}
}

// TestAnalyzeSnapshotMatchesSeparateAnalyzers pins the fused sweep to
// the two analyses it replaces: a MinOnly smallest-out-degree reference
// run and an exact UniformRandom reference run, per snapshot seed.
func TestAnalyzeSnapshotMatchesSeparateAnalyzers(t *testing.T) {
	eng := MustNewEngine(EngineOptions{Workers: 2})
	for seed := int64(1); seed <= 5; seed++ {
		g := randomDigraph(seed, 24, 120)
		eng.Bind(g)
		sr := eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.1, AvgSeed: seed * 31})
		wantMin := referenceAnalyze(Options{
			SampleFraction: 0.1, MinOnly: true, SkipMinPair: true, Workers: 1,
		}, g)
		wantAvg := referenceAnalyze(Options{
			SampleFraction: 0.1, Selection: UniformRandom, SelectionSeed: seed * 31, Workers: 1,
		}, g)
		if !sameResult(sr.Min, wantMin) {
			t.Fatalf("seed %d: fused Min %+v != reference %+v", seed, sr.Min, wantMin)
		}
		// The fused Avg keeps its in-sweep MinPair (the runner ignores
		// it); the reference was run without SkipMinPair so both report.
		if !sameResult(sr.Avg, wantAvg) {
			t.Fatalf("seed %d: fused Avg %+v != reference %+v", seed, sr.Avg, wantAvg)
		}
	}
}

// TestFusedSweepWorkerDeterminism pins the fused sweep's determinism
// contract under the race detector: workers=1 and workers=8 must produce
// identical results on identical inputs, repeatedly.
func TestFusedSweepWorkerDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := randomSymmetricGraph(seed, 32, 200)
		e1 := MustNewEngine(EngineOptions{Workers: 1})
		e8 := MustNewEngine(EngineOptions{Workers: 8})
		for rep := 0; rep < 3; rep++ {
			e1.Bind(g)
			e8.Bind(g)
			q := SnapshotQuery{SampleFraction: 0.12, AvgSeed: seed + int64(rep)}
			r1 := e1.AnalyzeSnapshot(q)
			r8 := e8.AnalyzeSnapshot(q)
			if !sameResult(r1.Min, r8.Min) || !sameResult(r1.Avg, r8.Avg) {
				t.Fatalf("seed %d rep %d: jobs=1 %+v/%+v != jobs=8 %+v/%+v",
					seed, rep, r1.Min, r1.Avg, r8.Min, r8.Avg)
			}
			gq := Query{SampleFraction: 0.12, MinOnly: true}
			c1, p1, ok1, err1 := e1.GraphCut(gq)
			c8, p8, ok8, err8 := e8.GraphCut(gq)
			if err1 != nil || err8 != nil {
				t.Fatal(err1, err8)
			}
			if ok1 != ok8 || p1 != p8 || !equalInts(c1, c8) {
				t.Fatalf("seed %d rep %d: GraphCut diverged across worker counts: %v/%v vs %v/%v",
					seed, rep, c1, p1, c8, p8)
			}
		}
	}
}

// TestEngineGraphCutMatchesPackageGraphCut pins the engine's cached
// cut-mode network to the historical per-call construction, and the
// build counter to exactly one construction across rebindings.
func TestEngineGraphCutMatchesPackageGraphCut(t *testing.T) {
	eng := MustNewEngine(EngineOptions{Workers: 2})
	for seed := int64(40); seed <= 46; seed++ {
		g := randomSymmetricGraph(seed, 24, 110)
		wantCut, wantPair, wantOK, err := GraphCut(g, Options{SampleFraction: 0.2, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		eng.Bind(g)
		gotCut, gotPair, gotOK, err := eng.GraphCut(Query{SampleFraction: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || gotPair != wantPair || !equalInts(gotCut, wantCut) {
			t.Fatalf("seed %d: engine cut %v@%v (ok=%v) != package cut %v@%v (ok=%v)",
				seed, gotCut, gotPair, gotOK, wantCut, wantPair, wantOK)
		}
	}
	if builds := eng.CutNetworkBuilds(); builds != 1 {
		t.Fatalf("cut network built %d times across 7 bindings, want 1 (in-place reinit)", builds)
	}
}

// TestEngineSelectionPrimitives pins the zero-allocation re-implemented
// source selections to their historical counterparts: the counting sort
// to sort.SliceStable by (degree, index), and the reseeded in-place
// permutation to rand.Perm.
func TestEngineSelectionPrimitives(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomDigraph(seed, 40, 260)
		eng := MustNewEngine(EngineOptions{Workers: 1})
		eng.Bind(g)
		ref := referencePickSources(Options{SampleFraction: 0.2, Selection: SmallestOutDegree}, g)
		got := eng.pickSources(0.2, SmallestOutDegree, 0)
		if !equalInts(got, ref) {
			t.Fatalf("seed %d: smallest-out-degree selection %v != reference %v", seed, got, ref)
		}
		ref = referencePickSources(Options{SampleFraction: 0.3, Selection: UniformRandom, SelectionSeed: seed * 7}, g)
		got = eng.pickSources(0.3, UniformRandom, seed*7)
		if !equalInts(got, ref) {
			t.Fatalf("seed %d: uniform selection %v != rand.Perm reference %v", seed, got, ref)
		}
	}
}

// TestEngineDegenerateGraphs covers the shortcut paths through the
// engine: empty, single-vertex, complete, and all-sources-saturated
// graphs must reproduce the reference exactly.
func TestEngineDegenerateGraphs(t *testing.T) {
	complete := graph.NewDigraph(4)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				complete.AddEdge(u, v)
			}
		}
	}
	// star: vertex 0 adjacent to everything, sampled as the only source.
	star := graph.NewDigraph(5)
	for v := 1; v < 5; v++ {
		star.AddEdge(0, v)
	}
	for _, g := range []*graph.Digraph{
		graph.NewDigraph(0), graph.NewDigraph(1), complete, star,
	} {
		for _, opt := range []Options{
			{SampleFraction: 1.0, MinOnly: true},
			{SampleFraction: 0.1},
			{SampleFraction: 0.1, Selection: UniformRandom, SelectionSeed: 3},
		} {
			want := referenceAnalyze(opt, g)
			got := MustNewAnalyzer(opt).Analyze(g)
			if !sameResult(got, want) {
				t.Fatalf("n=%d opts %+v: engine %+v != reference %+v", g.N(), opt, got, want)
			}
		}
		eng := MustNewEngine(EngineOptions{})
		eng.Bind(g)
		sr := eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.1, AvgSeed: 1})
		if g.N() > 1 && g.N() != sr.Min.N {
			t.Fatalf("snapshot result lost N: %+v", sr.Min)
		}
	}
}

// TestEnginePairCutErrors mirrors the package PairCut validation on the
// engine entry point.
func TestEnginePairCutErrors(t *testing.T) {
	g := graph.NewDigraph(3)
	g.AddEdge(0, 1)
	eng := MustNewEngine(EngineOptions{})
	eng.Bind(g)
	for _, bad := range [][2]int{{0, 0}, {-1, 1}, {0, 3}, {0, 1}} {
		if _, err := eng.PairCut(bad[0], bad[1]); err == nil {
			t.Errorf("PairCut(%d,%d) should fail", bad[0], bad[1])
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWarmStartConsistency cross-checks the push-relabel warm-start used
// by the engine's sweeps at the connectivity level: per-source repeated
// queries (warm) must match fresh per-pair computations (cold) on random
// graphs.
func TestWarmStartConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		g := randomDigraph(rng.Int63(), 20, 90)
		solver := maxflow.PushRelabel.NewSolverSource(2*g.N(), &unitEdgeSource{edges: graph.EvenEdges(g)})
		for src := 0; src < 4; src++ {
			solver.PrepareSource(graph.Out(src))
			for tgt := 0; tgt < g.N(); tgt++ {
				if tgt == src || g.HasEdge(src, tgt) {
					continue
				}
				warm := solver.MaxFlow(graph.Out(src), graph.In(tgt))
				want, err := Pair(g, src, tgt, maxflow.Dinic)
				if err != nil {
					t.Fatal(err)
				}
				if warm != want {
					t.Fatalf("trial %d pair (%d,%d): warm-start flow %d != cold flow %d",
						trial, src, tgt, warm, want)
				}
			}
		}
	}
}
