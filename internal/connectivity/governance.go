package connectivity

import "kadre/internal/maxflow"

// GovernancePolicy bounds the long-run memory of churn-heavy pipelines.
// Incremental rebinding never shrinks anything: removed edges tombstone
// their arc slots, slack-overflow relocations strand dead regions at the
// arc-array tail, and the stable-slot table only ever grows to the
// historical peak population. Under sustained membership churn those
// residues accumulate without bound. The policy sets the two thresholds
// at which the engine (and the snapshot layer's SlotMap) trade one
// re-densification — a full rebuild of the compacted layout from live
// entries, after which results stay bit-identical — for a bounded
// footprint.
//
// Both thresholds are relative to the LIVE footprint, so a policy-driven
// pipeline settles into amortized-constant maintenance: each compaction
// buys churn proportional to the live size before the next one is due.
type GovernancePolicy struct {
	// MaxDeadFrac triggers a solver arc-store re-densify once the dead
	// fraction — tombstoned plus relocation-stranded arcs over the total
	// arc array — exceeds it. <= 0 disables arc-store governance.
	MaxDeadFrac float64
	// MaxSlotSlack triggers a slot-table compaction once the vacant slot
	// count exceeds MaxSlotSlack times the live population. <= 0 disables
	// slot governance.
	MaxSlotSlack float64
}

// DefaultGovernance is the policy the scenario runner installs when the
// caller does not choose one: compact when garbage outweighs half the
// live footprint. At that threshold a re-densify halves the structure,
// so maintenance cost stays a constant fraction of the churn that
// caused it while memory never exceeds ~1.5x the live working set.
func DefaultGovernance() GovernancePolicy {
	return GovernancePolicy{MaxDeadFrac: 0.5, MaxSlotSlack: 0.5}
}

// PolicyFromKnobs maps CLI-style governance knobs onto a policy. A
// positive knob is the threshold itself; zero or negative disables that
// dimension explicitly. The distinction matters because the scenario
// layer treats the zero policy as "use the defaults" — a user passing
// -max-dead-frac 0 means OFF, which needs the negative sentinel to
// survive the defaulting.
func PolicyFromKnobs(maxDeadFrac, maxSlotSlack float64) GovernancePolicy {
	p := GovernancePolicy{MaxDeadFrac: maxDeadFrac, MaxSlotSlack: maxSlotSlack}
	if p.MaxDeadFrac <= 0 {
		p.MaxDeadFrac = -1
	}
	if p.MaxSlotSlack <= 0 {
		p.MaxSlotSlack = -1
	}
	return p
}

// Enabled reports whether the policy triggers any maintenance at all.
func (p GovernancePolicy) Enabled() bool {
	return p.MaxDeadFrac > 0 || p.MaxSlotSlack > 0
}

// SlotCompactionDue reports whether a slot table with slotLen slots and
// live occupants has crossed the policy's slack threshold. The caller
// owns the compaction itself (snapshot.SlotMap.Compact) because slot
// renumbering invalidates every consumer of the old numbering — it must
// happen between captures, never under a live binding.
func (p GovernancePolicy) SlotCompactionDue(slotLen, live int) bool {
	if p.MaxSlotSlack <= 0 {
		return false
	}
	vacant := slotLen - live
	return float64(vacant) > p.MaxSlotSlack*float64(live)
}

// MemoryStats aggregates the arc-store footprint of the engine's primary
// solvers: worker 0's capped and exact sweep solvers plus the cut-mode
// network. Per-worker totals would vary with the worker count (workers
// beyond the first are created lazily and see different tombstone
// histories), so only the primary trio — which exists under every
// configuration and observes every binding — feeds the deterministic
// diagnostics that end up in sweep JSON.
type MemoryStats struct {
	// Arcs is the summed arc-array length across the primary solvers.
	Arcs int
	// LiveArcs is the summed count of arcs still backing graph edges.
	LiveArcs int
	// DeadArcs is the summed tombstone + stranded-region count.
	DeadArcs int
	// Relocations is the summed count of slack-overflow region
	// relocations since the last re-densify.
	Relocations int
}

// DeadArcFrac returns the dead fraction of the primary arc footprint —
// the number governance thresholds against, averaged across the trio.
func (m MemoryStats) DeadArcFrac() float64 {
	if m.Arcs == 0 {
		return 0
	}
	return float64(m.DeadArcs) / float64(m.Arcs)
}

// SetGovernance installs the memory-governance policy. The zero policy
// (the default for a fresh engine) disables maintenance entirely;
// Maintain then reports nothing to do.
func (e *Engine) SetGovernance(p GovernancePolicy) { e.gov = p }

// Governance returns the installed policy.
func (e *Engine) Governance() GovernancePolicy { return e.gov }

// Maintain checks every live solver's arc store against the governance
// policy and re-densifies those over the MaxDeadFrac threshold,
// returning how many stores it rebuilt. Re-densification preserves
// capacities and traversal order for live arcs, so every answer after a
// Maintain is bit-identical to the un-maintained engine — the governed
// churn oracle holds both paths to that contract.
//
// Call it between snapshots: the work is proportional to the compacted
// stores and stays off the Analyze/Rebind hot path, whose steady state
// remains allocation-free.
func (e *Engine) Maintain() int {
	if e.gov.MaxDeadFrac <= 0 {
		return 0
	}
	total := 0
	maintain := func(s maxflow.Solver, primary bool) {
		c, ok := s.(maxflow.MemoryCompactor)
		if !ok {
			return
		}
		if c.ArcStats().DeadFrac() <= e.gov.MaxDeadFrac {
			return
		}
		c.Compact()
		total++
		if primary {
			e.redensifies++
		}
	}
	for i := range e.workers {
		w := &e.workers[i]
		maintain(w.capped, i == 0)
		maintain(w.exact, i == 0)
	}
	if e.cutSolver != nil {
		maintain(e.cutSolver, true)
	}
	return total
}

// Redensifies reports how many primary-solver arc stores Maintain has
// re-densified over the engine's lifetime. Like MemoryStats, the count
// covers only the primary trio so it is identical for every worker
// count — the form the scenario results and sweep JSON expose.
func (e *Engine) Redensifies() int { return e.redensifies }

// MemoryStats reports the primary solvers' current arc-store footprint.
func (e *Engine) MemoryStats() MemoryStats {
	var m MemoryStats
	add := func(s maxflow.Solver) {
		c, ok := s.(maxflow.MemoryCompactor)
		if !ok {
			return
		}
		st := c.ArcStats()
		m.Arcs += st.Arcs
		m.LiveArcs += st.Live
		m.DeadArcs += st.Tombstones + st.Dead
		m.Relocations += st.Relocations
	}
	if len(e.workers) > 0 {
		add(e.workers[0].capped)
		add(e.workers[0].exact)
	}
	if e.cutSolver != nil {
		add(e.cutSolver)
	}
	return m
}

// MaxSolverArcs reports the largest arc-array length across ALL of the
// engine's solvers, not just the primary trio — the bound the long-churn
// soak asserts against peak-population footprint. Worker-count-dependent
// by construction; diagnostics only, never serialized.
func (e *Engine) MaxSolverArcs() int {
	max := 0
	consider := func(s maxflow.Solver) {
		if c, ok := s.(maxflow.MemoryCompactor); ok {
			if a := c.ArcStats().Arcs; a > max {
				max = a
			}
		}
	}
	for i := range e.workers {
		consider(e.workers[i].capped)
		consider(e.workers[i].exact)
	}
	if e.cutSolver != nil {
		consider(e.cutSolver)
	}
	return max
}
