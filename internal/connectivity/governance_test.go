package connectivity

import (
	"testing"
)

func TestGovernancePolicyThresholds(t *testing.T) {
	var zero GovernancePolicy
	if zero.Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if zero.SlotCompactionDue(100, 1) {
		t.Fatal("disabled policy reported slot compaction due")
	}
	p := DefaultGovernance()
	if !p.Enabled() {
		t.Fatal("default policy must be enabled")
	}
	// 0.5 slack: due only once vacants exceed half the live count.
	if p.SlotCompactionDue(12, 8) { // 4 vacant, threshold 4 — not strictly over
		t.Fatal("compaction due at exactly the threshold")
	}
	if !p.SlotCompactionDue(13, 8) { // 5 vacant > 4
		t.Fatal("compaction not due past the threshold")
	}
	if !p.SlotCompactionDue(1, 0) { // dead table: all slack, no live
		t.Fatal("compaction not due for a fully vacant table")
	}
}

// TestSlotCompactBindMatchesFresh pins the slot-compaction contract end
// to end: after SlotMap.Compact renumbers the vertex space, the next
// capture binds (via the incremental binder's automatic full-bind
// fallback — the slot count shrank) and every engine answer matches a
// from-scratch dense bind, before and after further churn on the
// compacted table.
func TestSlotCompactBindMatchesFresh(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		w := newSlotWorld(seed, 16, 4)
		eng := MustNewEngine(EngineOptions{Workers: 3})
		binder := NewIncrementalBinder(eng)
		ref := MustNewEngine(EngineOptions{Workers: 1})
		check := func(stage string) {
			t.Helper()
			slotG, order, dense := w.capture()
			if dense.N() <= 2 {
				return
			}
			binder.BindNextSlots(slotG, order)
			ref.Bind(dense)
			sq := SnapshotQuery{SampleFraction: 0.5, AvgSeed: seed}
			gotSnap, wantSnap := eng.AnalyzeSnapshot(sq), ref.AnalyzeSnapshot(sq)
			requireSameResult(t, stage+"/snapshot.Min", gotSnap.Min, wantSnap.Min)
			requireSameResult(t, stage+"/snapshot.Avg", gotSnap.Avg, wantSnap.Avg)
			mq := Query{SampleFraction: 0.5, MinOnly: true}
			requireSameResult(t, stage+"/minonly", eng.Analyze(mq), ref.Analyze(mq))
			gotCut, gotPair, gotOK, err := eng.GraphCut(Query{SampleFraction: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			wantCut, wantPair, wantOK, err := ref.GraphCut(Query{SampleFraction: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			requireSameCut(t, stage+"/graphcut", gotCut, gotPair, gotOK, wantCut, wantPair, wantOK)
		}
		check("initial")
		// Scramble: leaves open vacancies, churn rewires.
		for i := 0; i < 7; i++ {
			w.leave()
		}
		w.churn(8)
		check("scrambled")
		preLen := w.slots.Len()
		if remap := w.slots.Compact(); remap == nil {
			t.Fatalf("seed %d: no tombstones to compact after 7 leaves", seed)
		}
		if w.slots.Len() >= preLen {
			t.Fatalf("seed %d: compaction did not shrink slot table: %d -> %d", seed, preLen, w.slots.Len())
		}
		check("compacted")
		// Churn on the compacted table, including joins that append.
		w.churn(6)
		for i := 0; i < 3; i++ {
			w.join(3)
		}
		check("post-compact churn")
	}
}

// TestGovernedEngineMatchesFresh drives a governed engine — an
// aggressive MaxDeadFrac so re-densification fires repeatedly — through
// membership churn with Maintain between snapshots, holding every answer
// bit-identical to an ungoverned from-scratch reference. This is the
// engine half of the governance contract: maintenance must be invisible
// to results.
func TestGovernedEngineMatchesFresh(t *testing.T) {
	w := newSlotWorld(31, 14, 3)
	eng := MustNewEngine(EngineOptions{Workers: 2})
	eng.SetGovernance(GovernancePolicy{MaxDeadFrac: 0.01, MaxSlotSlack: 0.5})
	binder := NewIncrementalBinder(eng)
	ref := MustNewEngine(EngineOptions{Workers: 1})
	for step := 0; step < 36; step++ {
		switch step % 4 {
		case 0, 2:
			w.churn(2 + w.r.Intn(5))
		case 1:
			w.leave()
		default:
			w.join(3)
		}
		// Slot governance between captures, exactly as the runner does it.
		if eng.Governance().SlotCompactionDue(w.slots.Len(), w.slots.Live()) {
			w.slots.Compact()
		}
		slotG, order, dense := w.capture()
		if dense.N() <= 1 {
			continue
		}
		binder.BindNextSlots(slotG, order)
		ref.Bind(dense)
		sq := SnapshotQuery{SampleFraction: 0.5, AvgSeed: int64(step)}
		gotSnap, wantSnap := eng.AnalyzeSnapshot(sq), ref.AnalyzeSnapshot(sq)
		requireSameResult(t, "snapshot.Min", gotSnap.Min, wantSnap.Min)
		requireSameResult(t, "snapshot.Avg", gotSnap.Avg, wantSnap.Avg)
		gotCut, gotPair, gotOK, err := eng.GraphCut(Query{SampleFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		wantCut, wantPair, wantOK, err := ref.GraphCut(Query{SampleFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		requireSameCut(t, "graphcut", gotCut, gotPair, gotOK, wantCut, wantPair, wantOK)
		if fb := eng.RebindFallbacks(); fb != 0 {
			t.Fatalf("step %d: %d rebind fallbacks", step, fb)
		}
		// Arc-store governance between snapshots.
		eng.Maintain()
	}
	if eng.Redensifies() == 0 {
		t.Fatal("aggressive policy never re-densified a primary solver")
	}
	if eng.MaxSolverArcs() == 0 {
		t.Fatal("MaxSolverArcs reported no solvers after 36 analyzed snapshots")
	}
}

// TestMaintainDisabledByDefault pins the opt-in contract: a fresh engine
// has the zero policy and Maintain is a no-op regardless of garbage.
func TestMaintainDisabledByDefault(t *testing.T) {
	w := newSlotWorld(7, 10, 3)
	eng := MustNewEngine(EngineOptions{Workers: 1})
	binder := NewIncrementalBinder(eng)
	for step := 0; step < 8; step++ {
		w.churn(4)
		slotG, order, _ := w.capture()
		binder.BindNextSlots(slotG, order)
		eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.5})
	}
	if n := eng.Maintain(); n != 0 {
		t.Fatalf("ungoverned Maintain compacted %d stores", n)
	}
	if eng.Redensifies() != 0 {
		t.Fatal("ungoverned engine counted redensifies")
	}
}

// TestMemoryStatsWorkerCountInvariant pins the determinism contract for
// the serialized diagnostics: the same snapshot/maintenance sequence at
// different worker counts reports identical MemoryStats and Redensifies,
// because both read only the primary solver trio.
func TestMemoryStatsWorkerCountInvariant(t *testing.T) {
	run := func(workers int) (MemoryStats, int) {
		w := newSlotWorld(19, 14, 3)
		eng := MustNewEngine(EngineOptions{Workers: workers})
		eng.SetGovernance(GovernancePolicy{MaxDeadFrac: 0.05, MaxSlotSlack: 0.5})
		binder := NewIncrementalBinder(eng)
		for step := 0; step < 24; step++ {
			switch step % 3 {
			case 0:
				w.churn(3)
			case 1:
				w.leave()
			default:
				w.join(3)
			}
			slotG, order, dense := w.capture()
			if dense.N() <= 1 {
				continue
			}
			binder.BindNextSlots(slotG, order)
			eng.AnalyzeSnapshot(SnapshotQuery{SampleFraction: 0.5, AvgSeed: int64(step)})
			if _, _, _, err := eng.GraphCut(Query{SampleFraction: 0.5}); err != nil {
				t.Fatal(err)
			}
			eng.Maintain()
		}
		return eng.MemoryStats(), eng.Redensifies()
	}
	m1, r1 := run(1)
	m8, r8 := run(8)
	if m1 != m8 {
		t.Fatalf("MemoryStats varies with worker count: %+v != %+v", m1, m8)
	}
	if r1 != r8 {
		t.Fatalf("Redensifies varies with worker count: %d != %d", r1, r8)
	}
	if r1 == 0 {
		t.Fatal("sequence never triggered a primary re-densify")
	}
	if m1.Arcs == 0 || m1.LiveArcs == 0 {
		t.Fatalf("empty MemoryStats after 24 snapshots: %+v", m1)
	}
}
