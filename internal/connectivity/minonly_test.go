package connectivity

import (
	"math/rand"
	"testing"

	"kadre/internal/graph"
)

func randomDigraph(seed int64, n, m int) *graph.Digraph {
	r := rand.New(rand.NewSource(seed))
	g := graph.NewDigraph(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestMinOnlyMatchesFullMin is the property behind the paper's pruning
// optimization: capping flow computations at the running global minimum
// (MinOnly) must never change the reported minimum, only skip work above
// it. The shared running-limit path crosses workers, so the property is
// checked for several worker counts, including under the race detector.
func TestMinOnlyMatchesFullMin(t *testing.T) {
	type shape struct{ n, m int }
	shapes := []shape{{12, 40}, {20, 90}, {28, 150}, {36, 360}}
	for seed := int64(1); seed <= 6; seed++ {
		for _, sh := range shapes {
			graphs := []*graph.Digraph{
				randomDigraph(seed, sh.n, sh.m),
				randomSymmetricGraph(seed, sh.n, sh.m),
			}
			for gi, g := range graphs {
				full := MustNewAnalyzer(Options{SampleFraction: 1.0}).Analyze(g)
				for _, workers := range []int{1, 2, 8} {
					pruned := MustNewAnalyzer(Options{
						SampleFraction: 1.0,
						MinOnly:        true,
						Workers:        workers,
					}).Analyze(g)
					if pruned.Min != full.Min {
						t.Fatalf("seed %d graph %d n=%d m=%d workers=%d: MinOnly min %d != full min %d",
							seed, gi, sh.n, sh.m, workers, pruned.Min, full.Min)
					}
					if pruned.Pairs != full.Pairs {
						t.Fatalf("seed %d graph %d: MinOnly evaluated %d pairs, full %d — same non-adjacent pairs expected",
							seed, gi, pruned.Pairs, full.Pairs)
					}
				}
			}
		}
	}
}

// TestMinOnlySampledMatchesFullMinOnSample checks the same property on the
// paper's smallest-out-degree sampled sweep: both modes use the identical
// deterministic source set, so the pruned minimum must equal the unpruned
// minimum over that sample.
func TestMinOnlySampledMatchesFullMinOnSample(t *testing.T) {
	for seed := int64(10); seed <= 15; seed++ {
		g := randomSymmetricGraph(seed, 50, 400)
		plain := MustNewAnalyzer(Options{SampleFraction: 0.1}).Analyze(g)
		for _, workers := range []int{1, 4} {
			pruned := MustNewAnalyzer(Options{
				SampleFraction: 0.1, MinOnly: true, Workers: workers,
			}).Analyze(g)
			if pruned.Min != plain.Min {
				t.Fatalf("seed %d workers %d: sampled MinOnly min %d != plain sampled min %d",
					seed, workers, pruned.Min, plain.Min)
			}
		}
	}
}

// TestMinOnlyDeterministicAcrossWorkers pins the scheduling-independence
// of the pruning path itself: any worker count must report the same Min.
func TestMinOnlyDeterministicAcrossWorkers(t *testing.T) {
	g := randomSymmetricGraph(99, 40, 260)
	base := MustNewAnalyzer(Options{SampleFraction: 1.0, MinOnly: true, Workers: 1}).Analyze(g)
	for workers := 2; workers <= 8; workers++ {
		got := MustNewAnalyzer(Options{SampleFraction: 1.0, MinOnly: true, Workers: workers}).Analyze(g)
		if got.Min != base.Min {
			t.Fatalf("workers=%d: Min %d != workers=1 Min %d", workers, got.Min, base.Min)
		}
	}
}
