package connectivity

import (
	"math/rand"
	"testing"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// bruteLexMinPair finds the lexicographically smallest minimizing
// (source, target) pair over the given sources with exact, sequential flow
// computations — the reference MinPair definition.
func bruteLexMinPair(t *testing.T, g *graph.Digraph, sources []int) (int, [2]int) {
	t.Helper()
	n := g.N()
	inSources := make([]bool, n)
	for _, s := range sources {
		inSources[s] = true
	}
	min := n
	pair := [2]int{-1, -1}
	for src := 0; src < n; src++ {
		if !inSources[src] {
			continue
		}
		for tgt := 0; tgt < n; tgt++ {
			if tgt == src || g.HasEdge(src, tgt) {
				continue
			}
			flow, err := Pair(g, src, tgt, maxflow.Dinic)
			if err != nil {
				t.Fatal(err)
			}
			if flow < min {
				min = flow
				pair = [2]int{src, tgt}
			}
		}
	}
	return min, pair
}

// TestMinOnlyMinPairDeterministicAndCorrect is the regression test for the
// ROADMAP bug: under MinOnly pruning with multiple workers, MinPair used to
// depend on worker scheduling (and could even name a pair whose true
// connectivity exceeds Min, because capped evaluations hide the
// difference). It must now always be the lexicographically smallest
// minimizing pair, for every worker count, on every repetition.
func TestMinOnlyMinPairDeterministicAndCorrect(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := randomSymmetricGraph(seed, 26, 130)
		all := make([]int, g.N())
		for i := range all {
			all[i] = i
		}
		wantMin, wantPair := bruteLexMinPair(t, g, all)
		if wantPair[0] < 0 {
			t.Fatalf("seed %d: test graph has no evaluable pair", seed)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for rep := 0; rep < 5; rep++ {
				res := MustNewAnalyzer(Options{
					SampleFraction: 1.0, MinOnly: true, Workers: workers,
				}).Analyze(g)
				if res.Min != wantMin {
					t.Fatalf("seed %d workers %d rep %d: Min %d != brute %d",
						seed, workers, rep, res.Min, wantMin)
				}
				if res.MinPair != wantPair {
					t.Fatalf("seed %d workers %d rep %d: MinPair %v != lex-smallest minimizing pair %v",
						seed, workers, rep, res.MinPair, wantPair)
				}
			}
		}
	}
}

// TestMinOnlyMinPairSampledSources pins the same property on the paper's
// smallest-out-degree sampled sweep: the pair must be the lex-smallest
// minimizer among the sampled sources' pairs, not the whole graph's.
func TestMinOnlyMinPairSampledSources(t *testing.T) {
	for seed := int64(20); seed <= 25; seed++ {
		g := randomSymmetricGraph(seed, 40, 280)
		eng := MustNewEngine(EngineOptions{Workers: 1})
		eng.Bind(g)
		sources := append([]int(nil), eng.pickSources(0.1, SmallestOutDegree, 0)...)
		wantMin, wantPair := bruteLexMinPair(t, g, sources)
		for _, workers := range []int{1, 3, 8} {
			res := MustNewAnalyzer(Options{
				SampleFraction: 0.1, MinOnly: true, Workers: workers,
			}).Analyze(g)
			if res.Min != wantMin || res.MinPair != wantPair {
				t.Fatalf("seed %d workers %d: got (min=%d, pair=%v), want (min=%d, pair=%v)",
					seed, workers, res.Min, res.MinPair, wantMin, wantPair)
			}
		}
	}
}

// TestSkipMinPair pins the hot-path escape hatch: Min is unchanged and
// no pair is reported.
func TestSkipMinPair(t *testing.T) {
	g := randomSymmetricGraph(3, 30, 180)
	full := MustNewAnalyzer(Options{SampleFraction: 1.0, MinOnly: true}).Analyze(g)
	skip := MustNewAnalyzer(Options{SampleFraction: 1.0, MinOnly: true, SkipMinPair: true}).Analyze(g)
	if skip.Min != full.Min {
		t.Fatalf("SkipMinPair changed Min: %d vs %d", skip.Min, full.Min)
	}
	if skip.MinPair != [2]int{-1, -1} {
		t.Fatalf("SkipMinPair reported a pair: %v", skip.MinPair)
	}
}

// TestMinPairConnectivityMatchesMin guards against the capped-evaluation
// bug specifically: the returned MinPair's exact connectivity must equal
// Min (not merely be >= the cap used during pruning).
func TestMinPairConnectivityMatchesMin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 14 + rng.Intn(16)
		g := randomDigraph(rng.Int63(), n, n*4)
		res := MustNewAnalyzer(Options{SampleFraction: 1.0, MinOnly: true, Workers: 6}).Analyze(g)
		if res.MinPair[0] < 0 {
			continue
		}
		flow, err := Pair(g, res.MinPair[0], res.MinPair[1], maxflow.Dinic)
		if err != nil {
			t.Fatal(err)
		}
		if flow != res.Min {
			t.Fatalf("trial %d: MinPair %v has kappa %d, but Min = %d",
				trial, res.MinPair, flow, res.Min)
		}
	}
}
