package connectivity

import (
	"math"
	"math/rand"
	"testing"

	"kadre/internal/graph"
)

// mutateEdges returns a copy of g with `removals` random edges deleted
// and `additions` random new edges inserted.
func mutateEdges(r *rand.Rand, g *graph.Digraph, removals, additions int) *graph.Digraph {
	out := g.Clone()
	all := out.Edges()
	for i := 0; i < removals && len(all) > 0; i++ {
		k := r.Intn(len(all))
		out.RemoveEdge(all[k].U, all[k].V)
		all[k] = all[len(all)-1]
		all = all[:len(all)-1]
	}
	n := out.N()
	for i := 0; i < additions; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !out.HasEdge(u, v) {
			out.AddEdge(u, v)
		}
	}
	return out
}

func requireSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.N != want.N || got.Min != want.Min || got.Pairs != want.Pairs ||
		got.Sources != want.Sources || got.Complete != want.Complete ||
		got.MinPair != want.MinPair ||
		math.Float64bits(got.Avg) != math.Float64bits(want.Avg) {
		t.Fatalf("%s: rebind path %+v, fresh bind path %+v", label, got, want)
	}
}

// TestRebindMatchesBind walks one engine through a chain of edge-mutated
// graphs via Rebind and checks every analysis against a second engine
// that full-Binds each graph — the engine-level differential oracle
// (churntest replays the same contract against membership churn too).
func TestRebindMatchesBind(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randomSymmetricGraph(5, 50, 400)
	inc := MustNewEngine(EngineOptions{Workers: 2})
	ref := MustNewEngine(EngineOptions{Workers: 2})
	inc.Bind(g)
	var delta graph.Delta
	for step := 0; step < 20; step++ {
		next := mutateEdges(r, g, 1+r.Intn(6), 1+r.Intn(6))
		graph.DiffInto(g, next, &delta)
		if !inc.Rebind(next, delta) {
			t.Fatalf("step %d: Rebind refused a same-N delta", step)
		}
		ref.Bind(next)
		q := SnapshotQuery{SampleFraction: 0.3, AvgSeed: int64(step)}
		gotSnap, wantSnap := inc.AnalyzeSnapshot(q), ref.AnalyzeSnapshot(q)
		requireSameResult(t, "snapshot.Min", gotSnap.Min, wantSnap.Min)
		requireSameResult(t, "snapshot.Avg", gotSnap.Avg, wantSnap.Avg)
		mq := Query{SampleFraction: 0.3, MinOnly: true}
		requireSameResult(t, "minpair", inc.Analyze(mq), ref.Analyze(mq))
		g = next
	}
	if inc.Rebinds() != 20 {
		t.Fatalf("Rebinds = %d, want 20", inc.Rebinds())
	}
}

// TestRebindCutPathMatchesBind pins the patched cut-mode network: the
// minimum vertex cuts (vertex lists, pairs) after a chain of rebinds must
// equal the from-scratch engine's, and the cut network must never be
// rebuilt from scratch — the adversary's strike loop stays on one
// network across arbitrarily many patched snapshots.
func TestRebindCutPathMatchesBind(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := randomSymmetricGraph(6, 40, 260)
	inc := MustNewEngine(EngineOptions{Workers: 1})
	ref := MustNewEngine(EngineOptions{Workers: 1})
	inc.Bind(g)
	var delta graph.Delta
	cuts := 0
	for step := 0; step < 15; step++ {
		next := mutateEdges(r, g, 1+r.Intn(4), 1+r.Intn(4))
		graph.DiffInto(g, next, &delta)
		inc.Rebind(next, delta)
		ref.Bind(next)
		q := Query{SampleFraction: 0.5}
		gotCut, gotPair, gotOK, err := inc.GraphCut(q)
		if err != nil {
			t.Fatal(err)
		}
		wantCut, wantPair, wantOK, err := ref.GraphCut(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || gotPair != wantPair {
			t.Fatalf("step %d: cut pair (%v,%v) != (%v,%v)", step, gotPair, gotOK, wantPair, wantOK)
		}
		if len(gotCut) != len(wantCut) {
			t.Fatalf("step %d: cut %v != %v", step, gotCut, wantCut)
		}
		for i := range gotCut {
			if gotCut[i] != wantCut[i] {
				t.Fatalf("step %d: cut %v != %v", step, gotCut, wantCut)
			}
		}
		if wantOK {
			cuts++
		}
		g = next
	}
	if cuts == 0 {
		t.Fatal("trace produced no usable cuts; weak test")
	}
	if builds := inc.CutNetworkBuilds(); builds != 1 {
		t.Fatalf("cut network built %d times across rebinds, want 1", builds)
	}
}

// TestRebindFallsBackOnShapeChange pins the fallback contract: a nil
// binding or a different vertex count silently becomes a full Bind.
func TestRebindFallsBackOnShapeChange(t *testing.T) {
	g1 := randomSymmetricGraph(7, 30, 150)
	g2 := randomSymmetricGraph(8, 31, 150)
	eng := MustNewEngine(EngineOptions{Workers: 1})
	if eng.Rebind(g1, graph.Delta{}) {
		t.Fatal("Rebind with no previous binding must fall back")
	}
	ref := MustNewEngine(EngineOptions{Workers: 1})
	ref.Bind(g1)
	q := Query{SampleFraction: 1.0, MinOnly: true}
	requireSameResult(t, "after nil fallback", eng.Analyze(q), ref.Analyze(q))
	if eng.Rebind(g2, graph.Delta{}) {
		t.Fatal("Rebind across vertex counts must fall back")
	}
	ref.Bind(g2)
	requireSameResult(t, "after shape fallback", eng.Analyze(q), ref.Analyze(q))
}

// TestIncrementalBinderPaths pins the binder's routing: identical
// membership takes Rebind, changed membership takes Bind, and the counts
// are observable.
func TestIncrementalBinderPaths(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	g := randomSymmetricGraph(9, 40, 240)
	b := NewIncrementalBinder(MustNewEngine(EngineOptions{Workers: 1}))
	if b.BindNext(g, true) {
		t.Fatal("first bind cannot be incremental")
	}
	g2 := mutateEdges(r, g, 3, 3)
	if !b.BindNext(g2, true) {
		t.Fatal("same-membership successor should rebind incrementally")
	}
	g3 := randomSymmetricGraph(10, 39, 240) // membership changed
	if b.BindNext(g3, false) {
		t.Fatal("membership change must full-bind")
	}
	if b.IncrementalBinds() != 1 || b.FullBinds() != 2 {
		t.Fatalf("binder counters: incremental=%d full=%d, want 1/2", b.IncrementalBinds(), b.FullBinds())
	}
}
