package connectivity

import (
	"math"
	"math/rand"
	"testing"

	"kadre/internal/graph"
)

func randomSymmetricGraph(seed int64, n, m int) *graph.Digraph {
	r := rand.New(rand.NewSource(seed))
	g := graph.NewDigraph(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
			g.AddEdge(v, u)
		}
	}
	return g
}

func TestUniformRandomSelectionDeterministicPerSeed(t *testing.T) {
	g := randomSymmetricGraph(70, 40, 200)
	mk := func(seed int64) Result {
		a := MustNewAnalyzer(Options{
			SampleFraction: 0.1,
			Selection:      UniformRandom,
			SelectionSeed:  seed,
		})
		return a.Analyze(g)
	}
	a1, a2, b := mk(5), mk(5), mk(6)
	if a1.Min != a2.Min || a1.Avg != a2.Avg || a1.Pairs != a2.Pairs {
		t.Fatalf("same selection seed produced different results: %+v vs %+v", a1, a2)
	}
	// A different seed picks different sources; pair counts may differ
	// because adjacency per source differs.
	if a1.Pairs == b.Pairs && a1.Avg == b.Avg && a1.Min == b.Min {
		t.Log("different seeds coincidentally agreed; acceptable but unusual")
	}
}

func TestUniformAvgLessBiasedThanSmallestDout(t *testing.T) {
	// Build a graph with one artificially weak vertex: smallest-out-degree
	// selection anchors on it and biases the average down; uniform
	// selection should sit closer to the full average.
	g := randomSymmetricGraph(71, 50, 500)
	// Weaken vertex 0 to two edges.
	weak := graph.NewDigraph(50)
	kept := 0
	for _, e := range g.Edges() {
		if e.U == 0 || e.V == 0 {
			if kept >= 4 { // 2 undirected edges = 4 arcs
				continue
			}
			kept++
		}
		weak.AddEdge(e.U, e.V)
	}
	full := MustNewAnalyzer(Options{SampleFraction: 1.0}).Analyze(weak)
	biased := MustNewAnalyzer(Options{SampleFraction: 0.04}).Analyze(weak)
	uniform := MustNewAnalyzer(Options{
		SampleFraction: 0.04, Selection: UniformRandom, SelectionSeed: 9,
	}).Analyze(weak)
	// The biased estimator's average must not exceed the uniform one by
	// much, and it should typically sit below (its sources have the
	// smallest out-degree, an upper bound on their flows).
	if biased.Avg > full.Avg+1 {
		t.Fatalf("smallest-dout avg %.2f above full avg %.2f", biased.Avg, full.Avg)
	}
	du := math.Abs(uniform.Avg - full.Avg)
	db := math.Abs(biased.Avg - full.Avg)
	if du > db+5 {
		t.Fatalf("uniform avg %.2f further from full %.2f than biased %.2f",
			uniform.Avg, full.Avg, biased.Avg)
	}
	// And the smallest-dout minimum finds the planted weak vertex.
	if biased.Min != full.Min {
		t.Fatalf("smallest-dout sampling missed the weak vertex: %d vs %d", biased.Min, full.Min)
	}
}

func TestAnalyzeSampledSourcesCount(t *testing.T) {
	g := randomSymmetricGraph(72, 100, 800)
	res := MustNewAnalyzer(Options{SampleFraction: 0.02, MinOnly: true}).Analyze(g)
	if res.Sources != 2 {
		t.Fatalf("Sources = %d, want ceil(0.02*100) = 2", res.Sources)
	}
	res = MustNewAnalyzer(Options{SampleFraction: 0.011, MinOnly: true}).Analyze(g)
	if res.Sources != 2 {
		t.Fatalf("Sources = %d, want ceil(1.1) = 2", res.Sources)
	}
}
