package connectivity

import (
	"math/rand"
	"slices"
	"testing"

	"kadre/internal/graph"
	"kadre/internal/snapshot"
)

// slotWorld is a tiny evolving population for the stable-slot tests:
// member ids in join order, edges between live members, and a SlotMap
// assigning persistent slots exactly like the snapshot layer does.
type slotWorld struct {
	r      *rand.Rand
	nextID int
	alive  []int
	edges  map[[2]int]bool
	slots  snapshot.SlotMap[int]
}

func newSlotWorld(seed int64, initial, degree int) *slotWorld {
	w := &slotWorld{r: rand.New(rand.NewSource(seed)), edges: map[[2]int]bool{}}
	for i := 0; i < initial; i++ {
		w.join(degree)
	}
	return w
}

func (w *slotWorld) join(degree int) {
	id := w.nextID
	w.nextID++
	w.alive = append(w.alive, id)
	for d := 0; d < degree && len(w.alive) > 1; d++ {
		other := w.alive[w.r.Intn(len(w.alive))]
		if other == id {
			continue
		}
		w.edges[[2]int{id, other}] = true
		w.edges[[2]int{other, id}] = true
	}
}

func (w *slotWorld) leave() {
	if len(w.alive) <= 3 {
		return
	}
	id := w.alive[w.r.Intn(len(w.alive))]
	w.alive = slices.DeleteFunc(w.alive, func(x int) bool { return x == id })
	for e := range w.edges {
		if e[0] == id || e[1] == id {
			delete(w.edges, e)
		}
	}
}

func (w *slotWorld) churn(changes int) {
	keys := make([][2]int, 0, len(w.edges))
	for e := range w.edges {
		keys = append(keys, e)
	}
	slices.SortFunc(keys, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	for c := 0; c < changes; c++ {
		if w.r.Float64() < 0.5 && len(keys) > 0 {
			i := w.r.Intn(len(keys))
			delete(w.edges, keys[i])
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		} else if len(w.alive) >= 2 {
			u := w.alive[w.r.Intn(len(w.alive))]
			v := w.alive[w.r.Intn(len(w.alive))]
			if u != v {
				w.edges[[2]int{u, v}] = true
			}
		}
	}
}

// capture produces the stable-slot graph and compaction map (through
// the production capture core), plus the canonical dense graph a plain
// snapshot compaction would build.
func (w *slotWorld) capture() (slotG *graph.Digraph, order []int, dense *graph.Digraph) {
	slotG, order = snapshot.BuildSlotGraph(&w.slots, w.alive, func(emit func(u, v int)) {
		for e := range w.edges {
			emit(e[0], e[1])
		}
	})
	rank := make(map[int]int, len(w.alive))
	for i, id := range w.alive {
		rank[id] = i
	}
	dense = graph.NewDigraph(len(w.alive))
	for e := range w.edges {
		ru, uok := rank[e[0]]
		rv, vok := rank[e[1]]
		if uok && vok && ru != rv {
			dense.AddEdge(ru, rv)
		}
	}
	return slotG, order, dense
}

func requireSameCut(t *testing.T, label string, gotCut []int, gotPair [2]int, gotOK bool, wantCut []int, wantPair [2]int, wantOK bool) {
	t.Helper()
	if gotOK != wantOK || gotPair != wantPair || !slices.Equal(gotCut, wantCut) {
		t.Fatalf("%s: got cut=%v pair=%v ok=%v, want cut=%v pair=%v ok=%v",
			label, gotCut, gotPair, gotOK, wantCut, wantPair, wantOK)
	}
}

// TestBindSlotsMatchesDenseBind pins the masked-binding equivalence: an
// engine bound to a slot graph (vacant slots, recycled order) answers
// every query — fused snapshot analysis, MinOnly analysis with its
// deterministic MinPair, and GraphCut including the extracted cut —
// exactly like a reference engine bound to the canonical compacted
// graph, in the compacted numbering.
func TestBindSlotsMatchesDenseBind(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		w := newSlotWorld(seed, 14, 4)
		// Scramble the slot layout: leaves create vacancies, joins recycle.
		for i := 0; i < 6; i++ {
			w.leave()
		}
		for i := 0; i < 4; i++ {
			w.join(4)
		}
		slotG, order, dense := w.capture()
		if dense.N() <= 2 {
			continue
		}
		eng := MustNewEngine(EngineOptions{Workers: 3})
		eng.BindSlots(slotG, order)
		ref := MustNewEngine(EngineOptions{Workers: 1})
		ref.Bind(dense)

		sq := SnapshotQuery{SampleFraction: 0.5, AvgSeed: seed}
		gotSnap, wantSnap := eng.AnalyzeSnapshot(sq), ref.AnalyzeSnapshot(sq)
		requireSameResult(t, "snapshot.Min", gotSnap.Min, wantSnap.Min)
		requireSameResult(t, "snapshot.Avg", gotSnap.Avg, wantSnap.Avg)

		mq := Query{SampleFraction: 0.5, MinOnly: true}
		requireSameResult(t, "minonly", eng.Analyze(mq), ref.Analyze(mq))
		fq := Query{Selection: UniformRandom, SelectionSeed: seed}
		requireSameResult(t, "exact-uniform", eng.Analyze(fq), ref.Analyze(fq))

		gotCut, gotPair, gotOK, err := eng.GraphCut(Query{SampleFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		wantCut, wantPair, wantOK, err := ref.GraphCut(Query{SampleFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		requireSameCut(t, "graphcut", gotCut, gotPair, gotOK, wantCut, wantPair, wantOK)
	}
}

// TestBindNextSlotsIncrementalAcrossMembership drives one binder across
// edge churn, joins (recycled and appended slots) and leaves, asserting
// (a) every answer matches a from-scratch dense bind, (b) the
// incremental path is taken at every step where the slot table did not
// grow — joins, leaves and strikes included — and (c) no solver patch
// ever falls back.
func TestBindNextSlotsIncrementalAcrossMembership(t *testing.T) {
	w := newSlotWorld(42, 12, 3)
	eng := MustNewEngine(EngineOptions{Workers: 2})
	binder := NewIncrementalBinder(eng)
	ref := MustNewEngine(EngineOptions{Workers: 1})
	bound := false
	prevSlots := -1
	memberSteps := 0
	for step := 0; step < 40; step++ {
		switch step % 4 {
		case 0, 2:
			w.churn(1 + w.r.Intn(6))
		case 1:
			w.leave()
			memberSteps++
		default:
			w.join(3)
			memberSteps++
		}
		slotG, order, dense := w.capture()
		if dense.N() <= 1 {
			continue
		}
		inc := binder.BindNextSlots(slotG, order)
		if bound && slotG.N() == prevSlots && !inc {
			t.Fatalf("step %d: full bind despite stable slot space", step)
		}
		if inc && slotG.N() != prevSlots {
			t.Fatalf("step %d: incremental bind across slot-table growth", step)
		}
		bound = true
		prevSlots = slotG.N()
		ref.Bind(dense)

		sq := SnapshotQuery{SampleFraction: 0.5, AvgSeed: int64(step)}
		gotSnap, wantSnap := eng.AnalyzeSnapshot(sq), ref.AnalyzeSnapshot(sq)
		requireSameResult(t, "snapshot.Min", gotSnap.Min, wantSnap.Min)
		requireSameResult(t, "snapshot.Avg", gotSnap.Avg, wantSnap.Avg)
		mq := Query{SampleFraction: 0.5, MinOnly: true}
		requireSameResult(t, "minonly", eng.Analyze(mq), ref.Analyze(mq))
		gotCut, gotPair, gotOK, err := eng.GraphCut(Query{SampleFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		wantCut, wantPair, wantOK, err := ref.GraphCut(Query{SampleFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		requireSameCut(t, "graphcut", gotCut, gotPair, gotOK, wantCut, wantPair, wantOK)
		if fb := eng.RebindFallbacks(); fb != 0 {
			t.Fatalf("step %d: %d rebind fallbacks", step, fb)
		}
	}
	if binder.IncrementalBinds() == 0 {
		t.Fatal("no incremental binds exercised")
	}
	if eng.MembershipRebinds() == 0 {
		t.Fatalf("no membership-crossing rebinds despite %d membership steps", memberSteps)
	}
}
