package connectivity

import (
	"fmt"

	"kadre/internal/graph"
	"kadre/internal/maxflow"
)

// UndirectedMin implements the (n-1)-pair shortcut the paper cites
// (Gomory & Hu 1961, §4.4): for an undirected graph it computes maximum
// flows from a single fixed source vertex to the n-1 other vertices on the
// Even-transformed graph and returns the minimum. The source is the vertex
// with the smallest degree, which is the most likely to sit on the weak
// side of a minimum cut.
//
// The value is an upper bound on the true vertex connectivity — a minimum
// vertex cut that contains the chosen source's entire neighbourhood but
// separates two other vertices can be missed — which is exactly the
// trade-off the paper accepts when exploiting near-undirectedness. Pairs
// where the source is adjacent to the target are skipped; if the source is
// adjacent to everything, its degree n-1 is returned.
func UndirectedMin(g *graph.Digraph, algo maxflow.Algorithm) (int, error) {
	n := g.N()
	if n <= 1 {
		return 0, nil
	}
	if !g.IsSymmetric() {
		return 0, fmt.Errorf("connectivity: undirected shortcut requires a symmetric graph (symmetry ratio %.3f)", g.SymmetryRatio())
	}
	if g.IsComplete() {
		return n - 1, nil
	}
	if algo == 0 {
		algo = maxflow.Dinic
	}
	src := 0
	for v := 1; v < n; v++ {
		if g.OutDegree(v) < g.OutDegree(src) {
			src = v
		}
	}
	solver := algo.NewSolverSource(2*n, &unitEdgeSource{edges: graph.EvenEdges(g)})
	min := n - 1
	found := false
	for w := 0; w < n; w++ {
		if w == src || g.HasEdge(src, w) {
			continue
		}
		found = true
		if f := solver.MaxFlowLimit(graph.Out(src), graph.In(w), min); f < min {
			min = f
		}
	}
	if !found {
		return g.OutDegree(src), nil
	}
	return min, nil
}

// MinDegree returns min(min out-degree, min in-degree), a cheap upper
// bound on the vertex connectivity of any digraph: removing all of a
// minimum-degree vertex's neighbours isolates it.
func MinDegree(g *graph.Digraph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	in := g.InDegrees()
	min := n
	for v := 0; v < n; v++ {
		if d := g.OutDegree(v); d < min {
			min = d
		}
		if in[v] < min {
			min = in[v]
		}
	}
	return min
}
