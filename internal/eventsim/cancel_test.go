package eventsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// chain schedules a self-perpetuating event chain of n events spaced one
// second apart and returns a pointer to the fired count.
func chain(s *Simulator, n int) *int {
	fired := new(int)
	var step func()
	step = func() {
		*fired++
		if *fired < n {
			s.MustSchedule(time.Second, step)
		}
	}
	s.MustSchedule(time.Second, step)
	return fired
}

// TestCancelStopsWithinOneBatch is the kernel half of the cancellation
// contract: once the context fires, Run and RunUntil stop within one
// event batch, however much work remains queued.
func TestCancelStopsWithinOneBatch(t *testing.T) {
	const batch = 64
	const cancelAt = 100
	for _, mode := range []string{"run", "rununtil"} {
		s := New(1)
		ctx, cancel := context.WithCancel(context.Background())
		s.SetCancel(ctx, batch)
		fired := chain(s, 100000)
		s.MustSchedule(time.Duration(cancelAt)*time.Second+time.Millisecond, cancel)
		if mode == "run" {
			s.Run()
		} else {
			s.RunUntil(200000 * time.Second)
		}
		if !errors.Is(s.Err(), context.Canceled) {
			t.Fatalf("%s: Err() = %v, want context.Canceled", mode, s.Err())
		}
		if *fired < cancelAt || *fired > cancelAt+batch {
			t.Fatalf("%s: %d events fired after cancellation at %d, want within one batch of %d",
				mode, *fired-cancelAt, cancelAt, batch)
		}
		if mode == "rununtil" && s.Now() >= 200000*time.Second {
			t.Fatalf("%s: clock advanced to the deadline despite cancellation", mode)
		}
	}
}

// TestPreCanceledRunFiresNothing pins the entry check: a context already
// done when the run starts fires zero events.
func TestPreCanceledRunFiresNothing(t *testing.T) {
	s := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetCancel(ctx, 0)
	fired := chain(s, 10)
	s.RunUntil(time.Hour)
	if *fired != 0 {
		t.Fatalf("%d events fired under a pre-canceled context, want 0", *fired)
	}
	if s.Err() == nil {
		t.Fatal("Err() = nil, want the cancellation cause")
	}
}

// TestUnfiredCancelIsInvisible pins determinism: installing a context
// that never fires changes nothing — same events, same clock, nil Err —
// compared to a kernel with no cancel context at all.
func TestUnfiredCancelIsInvisible(t *testing.T) {
	run := func(withCtx bool) (int, time.Duration, uint64) {
		s := New(7)
		if withCtx {
			s.SetCancel(context.Background(), 2)
		}
		fired := chain(s, 500)
		s.RunUntil(time.Hour)
		return *fired, s.Now(), s.Processed()
	}
	f1, now1, p1 := run(false)
	f2, now2, p2 := run(true)
	if f1 != f2 || now1 != now2 || p1 != p2 {
		t.Fatalf("cancel context perturbed a completing run: (%d,%v,%d) vs (%d,%v,%d)",
			f1, now1, p1, f2, now2, p2)
	}
	s := New(1)
	s.SetCancel(context.Background(), 1)
	chain(s, 3)
	s.Run()
	if s.Err() != nil {
		t.Fatalf("completed run left Err() = %v", s.Err())
	}
}
