// Package eventsim provides a deterministic discrete-event simulation
// kernel: a virtual clock, a binary-heap event queue, cancellable timers,
// and a seeded random number generator. It replaces PeerSim's event-driven
// engine from the paper. All state is single-goroutine; the kernel itself
// never spawns goroutines, which makes every run exactly reproducible from
// its seed.
package eventsim

import (
	"container/heap"
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrPastTime reports an attempt to schedule an event before the current
// virtual time.
var ErrPastTime = errors.New("eventsim: cannot schedule event in the past")

// DefaultCancelBatch is the event-batch granularity at which Run and
// RunUntil poll an installed cancel context: a canceled run stops within
// at most this many further events. Small enough that even a dense
// simulation halts in microseconds, large enough that the poll is
// invisible next to real event work.
const DefaultCancelBatch = 256

// Simulator is a discrete-event simulator with a virtual clock. The zero
// value is not usable; construct with New.
type Simulator struct {
	now       time.Duration
	seq       uint64 // tie-breaker so equal-time events run in schedule order
	queue     eventQueue
	rng       *rand.Rand
	processed uint64
	cancelled uint64
	stopped   bool

	cancelCtx   context.Context
	cancelEvery uint64
	cancelErr   error
}

// Timer is a handle to a scheduled event. Cancel prevents a pending event
// from firing; cancelling an already-fired or already-cancelled timer is a
// no-op.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's event from firing. It reports whether the
// event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Pending reports whether the timer's event has neither fired nor been
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.fn != nil
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// New returns a simulator whose random number generator is seeded with seed.
// Two simulators built from the same seed and fed the same schedule of
// events produce identical executions.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time, measured from simulation start.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's seeded random number generator. All
// randomness in a simulation must come from this generator to keep runs
// reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// SetCancel installs ctx as the kernel's cancellation signal: Run and
// RunUntil poll ctx between batches of every fired events (every <= 0
// means DefaultCancelBatch) and return early once ctx is done, recording
// the cause for Err. The poll never touches the clock, the queue or the
// RNG, so a run that completes — whether ctx fires late or never — is
// byte-identical to one executed without a cancel context.
func (s *Simulator) SetCancel(ctx context.Context, every int) {
	s.cancelCtx = ctx
	if every <= 0 {
		every = DefaultCancelBatch
	}
	s.cancelEvery = uint64(every)
}

// Err returns the cancellation cause that interrupted the most recent Run
// or RunUntil, or nil if it ran to completion.
func (s *Simulator) Err() error { return s.cancelErr }

// interrupted polls the installed cancel context at batch boundaries.
// countdown counts events remaining in the current batch; a zero value
// forces a poll (so the first event of a run never fires canceled).
func (s *Simulator) interrupted(countdown *uint64) bool {
	if *countdown > 0 {
		*countdown--
		return false
	}
	if s.cancelCtx != nil {
		if err := s.cancelCtx.Err(); err != nil {
			s.cancelErr = err
			return true
		}
	}
	*countdown = s.cancelEvery
	if *countdown > 0 {
		*countdown--
	}
	return false
}

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are queued (including cancelled events
// not yet reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after delay of virtual time and returns a
// cancellable handle. A negative delay is an error; a zero delay runs fn
// at the current time, after already-queued events for that time.
func (s *Simulator) Schedule(delay time.Duration, fn func()) (*Timer, error) {
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time at.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) (*Timer, error) {
	if at < s.now {
		return nil, ErrPastTime
	}
	if fn == nil {
		return nil, errors.New("eventsim: nil event function")
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}, nil
}

// MustSchedule is Schedule for call sites that control the delay and accept
// a panic on misuse (negative delay or nil fn).
func (s *Simulator) MustSchedule(delay time.Duration, fn func()) *Timer {
	t, err := s.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return t
}

// Step fires the next pending event, advancing the clock to its time. It
// reports whether an event fired; cancelled events are skipped silently.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.fn == nil {
			s.cancelled++
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		s.processed++
		return true
	}
	return false
}

// Run fires events until the queue is empty, Stop is called, or an
// installed cancel context (SetCancel) fires at a batch boundary.
func (s *Simulator) Run() {
	s.stopped = false
	s.cancelErr = nil
	var countdown uint64
	for !s.stopped {
		if s.interrupted(&countdown) {
			return
		}
		if !s.Step() {
			return
		}
	}
}

// RunUntil fires events with time <= deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline stay queued. When an
// installed cancel context (SetCancel) fires, the run stops within one
// event batch without advancing the clock to the deadline — the partial
// state is the caller's to discard.
func (s *Simulator) RunUntil(deadline time.Duration) {
	s.stopped = false
	s.cancelErr = nil
	var countdown uint64
	for !s.stopped {
		if s.interrupted(&countdown) {
			return
		}
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Stop makes a Run or RunUntil in progress return after the current event.
// It is intended to be called from inside an event callback.
func (s *Simulator) Stop() { s.stopped = true }

func (s *Simulator) peek() (time.Duration, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].fn == nil {
			heap.Pop(&s.queue)
			s.cancelled++
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}
