package eventsim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.MustSchedule(3*time.Second, func() { order = append(order, 3) })
	s.MustSchedule(1*time.Second, func() { order = append(order, 1) })
	s.MustSchedule(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.MustSchedule(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("equal-time events fired out of schedule order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.MustSchedule(time.Second, func() {
		fired = append(fired, s.Now())
		s.MustSchedule(time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v, want [1s 2s]", fired)
	}
}

func TestZeroDelayRunsAtCurrentTime(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.MustSchedule(5*time.Second, func() {
		s.MustSchedule(0, func() { at = s.Now() })
	})
	s.Run()
	if at != 5*time.Second {
		t.Fatalf("zero-delay event ran at %v, want 5s", at)
	}
}

func TestSchedulePastFails(t *testing.T) {
	s := New(1)
	s.MustSchedule(10*time.Second, func() {
		if _, err := s.ScheduleAt(5*time.Second, func() {}); err == nil {
			t.Error("scheduling in the past should fail")
		}
	})
	s.Run()
	if _, err := s.Schedule(-time.Second, func() {}); err == nil {
		t.Error("negative delay should fail")
	}
	if _, err := s.Schedule(time.Second, nil); err == nil {
		t.Error("nil fn should fail")
	}
}

func TestTimerCancel(t *testing.T) {
	s := New(1)
	fired := false
	timer := s.MustSchedule(time.Second, func() { fired = true })
	if !timer.Pending() {
		t.Error("timer should be pending before firing")
	}
	if !timer.Cancel() {
		t.Error("first cancel should report true")
	}
	if timer.Cancel() {
		t.Error("second cancel should report false")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if timer.Pending() {
		t.Error("cancelled timer should not be pending")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	timer := s.MustSchedule(time.Second, func() {})
	s.Run()
	if timer.Pending() {
		t.Error("fired timer should not be pending")
	}
	if timer.Cancel() {
		t.Error("cancelling a fired timer should report false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		s.MustSchedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now() = %v, want 10s (deadline advances clock)", s.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New(1)
	fired := false
	s.MustSchedule(3*time.Second, func() { fired = true })
	s.RunUntil(3 * time.Second)
	if !fired {
		t.Error("event at exactly the deadline should fire")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	var count int
	for i := 0; i < 10; i++ {
		s.MustSchedule(time.Duration(i+1)*time.Second, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
	// Run can be resumed afterwards.
	s.Run()
	if count != 10 {
		t.Fatalf("processed %d events after resume, want 10", count)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []int64 {
		s := New(99)
		var draws []int64
		for i := 0; i < 100; i++ {
			delay := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.MustSchedule(delay, func() {
				draws = append(draws, s.Rand().Int63())
			})
		}
		s.Run()
		return draws
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at draw %d", i)
		}
	}
}

func TestProcessedAndPendingCounters(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.MustSchedule(time.Duration(i)*time.Second, func() {})
	}
	cancel := s.MustSchedule(10*time.Second, func() {})
	cancel.Cancel()
	if s.Pending() != 6 {
		t.Errorf("Pending() = %d, want 6", s.Pending())
	}
	s.Run()
	if s.Processed() != 5 {
		t.Errorf("Processed() = %d, want 5", s.Processed())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", s.Pending())
	}
}

func TestManyEventsHeapStress(t *testing.T) {
	s := New(5)
	const n = 20000
	var count int
	for i := 0; i < n; i++ {
		delay := time.Duration(s.Rand().Intn(1000000)) * time.Microsecond
		s.MustSchedule(delay, func() { count++ })
	}
	var last time.Duration
	for s.Step() {
		if s.Now() < last {
			t.Fatal("clock went backwards")
		}
		last = s.Now()
	}
	if count != n {
		t.Fatalf("processed %d, want %d", count, n)
	}
}
