package graph

import (
	"cmp"
	"fmt"
	"slices"
)

// Delta is the difference between two digraphs over the same physical
// vertex set: cur = old - Removed + Added. It is the currency of
// incremental snapshot connectivity — adjacent snapshots of a stable
// membership window differ by a handful of routing-table edges, and
// feeding the difference to the analysis engine lets it patch its bound
// state in place instead of rebuilding per snapshot.
//
// Under stable-slot population indexing the vertex set is the slot
// space: slots persist across snapshots, so membership changes are also
// expressible as deltas. AddedVerts and RemovedVerts record the slots
// that became active (a join claiming the slot) and inactive (a leave or
// strike tombstoning it) between the two graphs; a removed slot's
// incident edges appear in Removed and an added slot's wiring in Added,
// so the edge lists alone still fully describe the graph transition —
// the vertex records carry the active-mask change for the analysis
// layer and for differential verification.
type Delta struct {
	Added   []Edge
	Removed []Edge
	// AddedVerts and RemovedVerts are the activated and deactivated
	// slots, each sorted ascending. Empty for same-membership deltas
	// (and always empty from plain DiffInto, which has no notion of
	// activity — use DiffSlotsInto to populate them).
	AddedVerts   []int
	RemovedVerts []int

	// Reused activity scratch for DiffSlotsInto (steady-state calls do
	// not allocate once grown to the slot count).
	oldActive, newActive []bool
}

// Reset empties the delta, keeping the backing arrays for reuse.
func (d *Delta) Reset() {
	d.Added = d.Added[:0]
	d.Removed = d.Removed[:0]
	d.AddedVerts = d.AddedVerts[:0]
	d.RemovedVerts = d.RemovedVerts[:0]
}

// Len returns the total number of edge changes.
func (d *Delta) Len() int { return len(d.Added) + len(d.Removed) }

// DiffInto computes the edge delta from old to cur into d, reusing d's
// backing arrays (steady-state calls do not allocate once the arrays have
// grown to the churn's working size). Both lists come out sorted by
// (U, V), so equal graphs and equal diffs compare bytewise. The graphs
// must have the same vertex count — vertex identity across snapshots is
// the caller's contract — and DiffInto panics otherwise, because a diff
// between different vertex sets is meaningless rather than merely empty.
func DiffInto(old, cur *Digraph, d *Delta) {
	if old.N() != cur.N() {
		panic(fmt.Sprintf("graph: DiffInto over different vertex counts %d != %d", old.N(), cur.N()))
	}
	d.Reset()
	for u := 0; u < old.n; u++ {
		for v := range old.adj[u] {
			if _, ok := cur.adj[u][v]; !ok {
				d.Removed = append(d.Removed, Edge{U: u, V: int(v)})
			}
		}
		for v := range cur.adj[u] {
			if _, ok := old.adj[u][v]; !ok {
				d.Added = append(d.Added, Edge{U: u, V: int(v)})
			}
		}
	}
	sortEdges(d.Added)
	sortEdges(d.Removed)
}

// DiffSlotsInto computes the full stable-slot delta from old to cur:
// the edge difference (exactly DiffInto) plus the vertex-activation
// difference read off the two capture orders, where an order lists the
// active slots in canonical (capture) sequence. Slots present in
// newOrder but not oldOrder come out in AddedVerts, the reverse in
// RemovedVerts, both sorted ascending. Like DiffInto it panics on
// differing vertex counts — a slot-space size change means the slot
// table grew, which is a full-rebind boundary, not a delta.
func DiffSlotsInto(old, cur *Digraph, oldOrder, newOrder []int, d *Delta) {
	DiffInto(old, cur, d)
	d.oldActive = markActive(d.oldActive, old.n, oldOrder)
	d.newActive = markActive(d.newActive, cur.n, newOrder)
	for v := 0; v < cur.n; v++ {
		switch {
		case d.newActive[v] && !d.oldActive[v]:
			d.AddedVerts = append(d.AddedVerts, v)
		case d.oldActive[v] && !d.newActive[v]:
			d.RemovedVerts = append(d.RemovedVerts, v)
		}
	}
}

func markActive(buf []bool, n int, order []int) []bool {
	if cap(buf) < n {
		buf = make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	for _, s := range order {
		buf[s] = true
	}
	return buf
}

// ApplyTo patches g in place with the delta's edge changes (removals
// first, then additions) and reports whether every change was
// consistent: each removal named an existing edge and each addition a
// missing one. On an inconsistent delta the graph is left partially
// patched — callers wanting atomicity should apply to a clone. The
// vertex records are annotations for the analysis layer and do not
// change the graph (a deactivated slot is simply left isolated).
func (d *Delta) ApplyTo(g *Digraph) bool {
	ok := true
	for _, e := range d.Removed {
		if !g.RemoveEdge(e.U, e.V) {
			ok = false
		}
	}
	for _, e := range d.Added {
		if g.HasEdge(e.U, e.V) {
			ok = false
			continue
		}
		g.AddEdge(e.U, e.V)
	}
	return ok
}

func sortEdges(edges []Edge) {
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.U != b.U {
			return cmp.Compare(a.U, b.U)
		}
		return cmp.Compare(a.V, b.V)
	})
}
