package graph

import (
	"cmp"
	"fmt"
	"slices"
)

// Delta is the edge difference between two digraphs over the same vertex
// set: cur = old - Removed + Added. It is the currency of incremental
// snapshot connectivity — adjacent snapshots of a stable membership
// window differ by a handful of routing-table edges, and feeding the
// difference to the analysis engine lets it patch its bound state in
// place instead of rebuilding per snapshot.
type Delta struct {
	Added   []Edge
	Removed []Edge
}

// Reset empties the delta, keeping the backing arrays for reuse.
func (d *Delta) Reset() {
	d.Added = d.Added[:0]
	d.Removed = d.Removed[:0]
}

// Len returns the total number of edge changes.
func (d *Delta) Len() int { return len(d.Added) + len(d.Removed) }

// DiffInto computes the edge delta from old to cur into d, reusing d's
// backing arrays (steady-state calls do not allocate once the arrays have
// grown to the churn's working size). Both lists come out sorted by
// (U, V), so equal graphs and equal diffs compare bytewise. The graphs
// must have the same vertex count — vertex identity across snapshots is
// the caller's contract — and DiffInto panics otherwise, because a diff
// between different vertex sets is meaningless rather than merely empty.
func DiffInto(old, cur *Digraph, d *Delta) {
	if old.N() != cur.N() {
		panic(fmt.Sprintf("graph: DiffInto over different vertex counts %d != %d", old.N(), cur.N()))
	}
	d.Reset()
	for u := 0; u < old.n; u++ {
		for v := range old.adj[u] {
			if _, ok := cur.adj[u][v]; !ok {
				d.Removed = append(d.Removed, Edge{U: u, V: int(v)})
			}
		}
		for v := range cur.adj[u] {
			if _, ok := old.adj[u][v]; !ok {
				d.Added = append(d.Added, Edge{U: u, V: int(v)})
			}
		}
	}
	sortEdges(d.Added)
	sortEdges(d.Removed)
}

func sortEdges(edges []Edge) {
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.U != b.U {
			return cmp.Compare(a.U, b.U)
		}
		return cmp.Compare(a.V, b.V)
	})
}
