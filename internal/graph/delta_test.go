package graph

import (
	"math/rand"
	"slices"
	"testing"
)

func TestRemoveEdge(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) on existing edge = false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) twice = true")
	}
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.M() != 1 {
		t.Fatalf("after removal: HasEdge(0,1)=%v HasEdge(1,2)=%v M=%d", g.HasEdge(0, 1), g.HasEdge(1, 2), g.M())
	}
}

func TestDiffInto(t *testing.T) {
	old := NewDigraph(4)
	old.AddEdge(0, 1)
	old.AddEdge(1, 2)
	old.AddEdge(2, 3)
	cur := old.Clone()
	cur.RemoveEdge(1, 2)
	cur.AddEdge(3, 0)
	cur.AddEdge(0, 2)
	var d Delta
	DiffInto(old, cur, &d)
	if !slices.Equal(d.Added, []Edge{{0, 2}, {3, 0}}) {
		t.Fatalf("Added = %v", d.Added)
	}
	if !slices.Equal(d.Removed, []Edge{{1, 2}}) {
		t.Fatalf("Removed = %v", d.Removed)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Applying the delta to old must reproduce cur; an empty diff follows.
	for _, e := range d.Removed {
		old.RemoveEdge(e.U, e.V)
	}
	for _, e := range d.Added {
		old.AddEdge(e.U, e.V)
	}
	DiffInto(old, cur, &d)
	if d.Len() != 0 {
		t.Fatalf("diff after applying delta = %+v, want empty", d)
	}
}

func TestDiffIntoDeterministicAndReusing(t *testing.T) {
	mk := func(seed int64) *Digraph {
		rr := rand.New(rand.NewSource(seed))
		g := NewDigraph(30)
		for i := 0; i < 200; i++ {
			u, v := rr.Intn(30), rr.Intn(30)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		return g
	}
	a, b := mk(1), mk(2)
	var d1, d2 Delta
	DiffInto(a, b, &d1)
	DiffInto(a, b, &d2)
	if !slices.Equal(d1.Added, d2.Added) || !slices.Equal(d1.Removed, d2.Removed) {
		t.Fatal("DiffInto is not deterministic across calls")
	}
	// Sorted output: deterministic regardless of adjacency iteration.
	if !slices.IsSortedFunc(d1.Added, func(x, y Edge) int {
		if x.U != y.U {
			return x.U - y.U
		}
		return x.V - y.V
	}) {
		t.Fatalf("Added not sorted: %v", d1.Added)
	}
}

func TestDiffIntoPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DiffInto across vertex counts did not panic")
		}
	}()
	var d Delta
	DiffInto(NewDigraph(3), NewDigraph(4), &d)
}
