package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS max-flow problem format, the input format of the HIPR solver the
// paper used. Vertices are 1-indexed in the file and 0-indexed in memory.
// Like the authors' modified HIPR, this implementation supports multiple
// source/target pairs per file, encoded as extension comment lines of the
// form "c pair <s> <t>" (also 1-indexed).

// DIMACSProblem is a parsed DIMACS max-flow file: a unit-capacity digraph
// plus one or more source/target pairs.
type DIMACSProblem struct {
	Graph *Digraph
	// Pairs holds the (source, target) vertex pairs to solve, 0-indexed.
	// The primary "n ... s"/"n ... t" pair comes first if present.
	Pairs [][2]int
}

// WriteDIMACS serialises a unit-capacity digraph as a DIMACS max-flow
// problem. The first pair becomes the standard source/sink lines; any
// further pairs are written as "c pair" extension lines.
func WriteDIMACS(w io.Writer, g *Digraph, pairs ...[2]int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "c kadre connectivity graph: %d vertices, %d unit-capacity arcs\n", g.N(), g.M())
	fmt.Fprintf(bw, "p max %d %d\n", g.N(), g.M())
	for i, p := range pairs {
		if err := checkPair(g, p); err != nil {
			return err
		}
		if i == 0 {
			fmt.Fprintf(bw, "n %d s\n", p[0]+1)
			fmt.Fprintf(bw, "n %d t\n", p[1]+1)
			continue
		}
		fmt.Fprintf(bw, "c pair %d %d\n", p[0]+1, p[1]+1)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "a %d %d 1\n", e.U+1, e.V+1)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: write dimacs: %w", err)
	}
	return nil
}

// ReadDIMACS parses a DIMACS max-flow problem. Arc capacities other than 1
// are rejected: the connectivity pipeline only ever deals in unit
// capacities, and accepting anything else would silently corrupt results.
func ReadDIMACS(r io.Reader) (*DIMACSProblem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var (
		g          *Digraph
		src, tgt   = -1, -1
		extraPairs [][2]int
		lineNo     int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "c":
			if len(fields) == 4 && fields[1] == "pair" {
				u, err1 := strconv.Atoi(fields[2])
				v, err2 := strconv.Atoi(fields[3])
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("graph: dimacs line %d: bad pair comment %q", lineNo, line)
				}
				extraPairs = append(extraPairs, [2]int{u - 1, v - 1})
			}
		case "p":
			if g != nil {
				return nil, fmt.Errorf("graph: dimacs line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 || fields[1] != "max" {
				return nil, fmt.Errorf("graph: dimacs line %d: want 'p max <n> <m>', got %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad vertex count %q", lineNo, fields[2])
			}
			g = NewDigraph(n)
		case "n":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad node descriptor %q", lineNo, line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: dimacs line %d: bad vertex %q", lineNo, fields[1])
			}
			switch fields[2] {
			case "s":
				src = v - 1
			case "t":
				tgt = v - 1
			default:
				return nil, fmt.Errorf("graph: dimacs line %d: node role %q is not s/t", lineNo, fields[2])
			}
		case "a":
			if g == nil {
				return nil, fmt.Errorf("graph: dimacs line %d: arc before problem line", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad arc %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			cap, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: dimacs line %d: bad arc %q", lineNo, line)
			}
			if cap != 1 {
				return nil, fmt.Errorf("graph: dimacs line %d: capacity %d unsupported (unit capacities only)", lineNo, cap)
			}
			if u-1 < 0 || u-1 >= g.N() || v-1 < 0 || v-1 >= g.N() {
				return nil, fmt.Errorf("graph: dimacs line %d: arc endpoint out of range", lineNo)
			}
			g.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("graph: dimacs line %d: unknown descriptor %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read dimacs: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: dimacs input has no problem line")
	}
	prob := &DIMACSProblem{Graph: g}
	if src >= 0 && tgt >= 0 {
		prob.Pairs = append(prob.Pairs, [2]int{src, tgt})
	}
	prob.Pairs = append(prob.Pairs, extraPairs...)
	for _, p := range prob.Pairs {
		if err := checkPair(g, p); err != nil {
			return nil, err
		}
	}
	return prob, nil
}

func checkPair(g *Digraph, p [2]int) error {
	if p[0] < 0 || p[0] >= g.N() || p[1] < 0 || p[1] >= g.N() {
		return fmt.Errorf("graph: pair (%d,%d) out of range [0,%d)", p[0], p[1], g.N())
	}
	if p[0] == p[1] {
		return fmt.Errorf("graph: pair (%d,%d) has identical endpoints", p[0], p[1])
	}
	return nil
}
