package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)

	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, [2]int{0, 3}, [2]int{1, 3}); err != nil {
		t.Fatal(err)
	}
	prob, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if prob.Graph.N() != 4 || prob.Graph.M() != 4 {
		t.Fatalf("parsed %d vertices %d edges", prob.Graph.N(), prob.Graph.M())
	}
	for _, e := range g.Edges() {
		if !prob.Graph.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge %v after round trip", e)
		}
	}
	if len(prob.Pairs) != 2 || prob.Pairs[0] != [2]int{0, 3} || prob.Pairs[1] != [2]int{1, 3} {
		t.Fatalf("pairs = %v", prob.Pairs)
	}
}

func TestWriteDIMACSFormat(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, [2]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p max 2 1", "n 1 s", "n 2 t", "a 1 2 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDIMACSRejectsBadPair(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, [2]int{0, 5}); err == nil {
		t.Error("out-of-range pair should fail")
	}
	if err := WriteDIMACS(&buf, g, [2]int{1, 1}); err == nil {
		t.Error("identical endpoints should fail")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"no problem line", "a 1 2 1\n"},
		{"bad problem", "p min 3 2\n"},
		{"duplicate problem", "p max 2 1\np max 2 1\n"},
		{"non-unit capacity", "p max 2 1\na 1 2 7\n"},
		{"arc out of range", "p max 2 1\na 1 5 1\n"},
		{"bad arc fields", "p max 2 1\na 1 x 1\n"},
		{"bad node role", "p max 2 1\nn 1 q\n"},
		{"bad pair comment", "p max 2 1\nc pair 1 x\na 1 2 1\n"},
		{"unknown descriptor", "p max 2 1\nz 1 2\n"},
		{"pair out of range", "p max 2 0\nc pair 1 9\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadDIMACS(strings.NewReader(tt.input)); err == nil {
				t.Errorf("input %q: expected error", tt.input)
			}
		})
	}
}

func TestReadDIMACSWithoutPairs(t *testing.T) {
	prob, err := ReadDIMACS(strings.NewReader("p max 3 2\na 1 2 1\na 2 3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Pairs) != 0 {
		t.Fatalf("pairs = %v, want none", prob.Pairs)
	}
	if prob.Graph.M() != 2 {
		t.Fatalf("M = %d", prob.Graph.M())
	}
}

func TestReadDIMACSSkipsCommentsAndBlankLines(t *testing.T) {
	in := "c header comment\n\np max 2 1\nc another\na 1 2 1\n\n"
	prob, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if prob.Graph.N() != 2 || prob.Graph.M() != 1 {
		t.Fatal("comment/blank handling broke parsing")
	}
}
