package graph

import (
	"cmp"
	"slices"
)

// Even's vertex-splitting transformation (Even 1975; §4.3 of the paper)
// reduces vertex connectivity between non-adjacent vertices to maximum
// flow. Every vertex v of D(V, E) is split into an incoming vertex v' and
// an outgoing vertex v'' joined by an internal edge (v', v'') of capacity
// 1; every original edge (u, v) becomes (u'', v'). The transformed graph
// has 2n vertices and m+n edges, and for non-adjacent v, w the maximum
// flow from v'' to w' equals the vertex connectivity kappa(v, w).

// In returns the transformed-graph index of v' (the incoming copy of v).
func In(v int) int { return 2 * v }

// Out returns the transformed-graph index of v” (the outgoing copy of v).
func Out(v int) int { return 2*v + 1 }

// EvenTransform applies the vertex-splitting transformation and returns
// the transformed graph. The result has 2*g.N() vertices and g.M()+g.N()
// edges; all capacities remain 1.
func EvenTransform(g *Digraph) *Digraph {
	t := NewDigraph(2 * g.N())
	for v := 0; v < g.N(); v++ {
		t.AddEdge(In(v), Out(v)) // internal edge v' -> v''
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Successors(u) {
			t.AddEdge(Out(u), In(v)) // original edge u -> v becomes u'' -> v'
		}
	}
	return t
}

// EvenEdges returns the transformed graph directly as an edge list with
// unit capacities, avoiding the intermediate adjacency sets. The vertex
// count of the transformed graph is 2*g.N().
func EvenEdges(g *Digraph) []Edge {
	return g.AppendEvenEdges(make([]Edge, 0, g.N()+g.M()))
}

// AppendEvenEdgesCompact appends the Even-transformed edge list of the
// graph's active subgraph in COMPACTED rank numbering: order maps dense
// rank -> vertex (the active vertices in canonical order) and rank is
// its inverse. The output is exactly what AppendEvenEdges would produce
// for the densely renumbered subgraph — n internal edges in rank order,
// then the original edges sorted by rank pair — which is what keeps
// analyses (and extracted cuts) on a stable-slot binding bit-identical
// to a fresh bind of the canonical compacted graph. Every edge of g must
// join vertices listed in order.
func (g *Digraph) AppendEvenEdgesCompact(buf []Edge, order []int, rank []int32) []Edge {
	for r := range order {
		buf = append(buf, Edge{U: In(r), V: Out(r)})
	}
	start := len(buf)
	for r, u := range order {
		for v := range g.adj[u] {
			buf = append(buf, Edge{U: Out(r), V: In(int(rank[v]))})
		}
	}
	slices.SortFunc(buf[start:], func(a, b Edge) int {
		if a.U != b.U {
			return cmp.Compare(a.U, b.U)
		}
		return cmp.Compare(a.V, b.V)
	})
	return buf
}

// AppendEvenEdges appends the Even-transformed edge list to buf and
// returns the extended slice. It produces exactly the edges of EvenEdges
// in the same deterministic order — the n internal edges (v', v”) in
// vertex order first, then the original edges (u”, v') sorted by (u, v)
// — but lets sweeping callers reuse one buffer across many graphs
// instead of allocating a fresh slice per snapshot.
func (g *Digraph) AppendEvenEdges(buf []Edge) []Edge {
	for v := 0; v < g.n; v++ {
		buf = append(buf, Edge{U: In(v), V: Out(v)})
	}
	start := len(buf)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			buf = append(buf, Edge{U: Out(u), V: In(int(v))})
		}
	}
	// The adjacency sets iterate in arbitrary order; one global sort by
	// (U, V) restores the per-vertex ascending-successor order (U =
	// 2u+1 is monotone in u, V = 2v in v, and there are no duplicates).
	slices.SortFunc(buf[start:], func(a, b Edge) int {
		if a.U != b.U {
			return cmp.Compare(a.U, b.U)
		}
		return cmp.Compare(a.V, b.V)
	})
	return buf
}
