package graph

import (
	"testing"
)

// FuzzDiffApply is the native fuzz oracle for the delta machinery: an
// arbitrary byte string decodes into a base slot graph (with some slots
// vacant), a mutation batch (edge churn plus slot activations and
// deactivations), and the resulting current graph. The invariants:
//
//   - DiffInto's edge delta applied to a clone of the base reconstructs
//     the current graph exactly (apply-vs-rebuild equivalence);
//   - DiffSlotsInto's vertex records equal the activation difference of
//     the two orders, sorted ascending;
//   - diffing a graph against itself is empty, and applying the reverse
//     delta undoes the forward one.
//
// CI runs a short -fuzztime smoke of this target; the checked-in corpus
// seeds cover the interesting shapes (vacancy, recycling, empty deltas).
func FuzzDiffApply(f *testing.F) {
	f.Add([]byte{8, 3, 12, 200, 9, 77})
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() int {
			if len(data) == 0 {
				return 0
			}
			b := int(data[0])
			data = data[1:]
			return b
		}
		n := 2 + next()%14 // slot count
		active := make([]bool, n)
		for v := range active {
			active[v] = next()%4 != 0 // ~3/4 of slots start active
		}
		base := NewDigraph(n)
		for i, m := 0, next()%32; i < m; i++ {
			u, v := next()%n, next()%n
			if u != v && active[u] && active[v] && !base.HasEdge(u, v) {
				base.AddEdge(u, v)
			}
		}
		oldOrder := orderOf(active)

		// Mutate: edge churn plus membership changes. Deactivating a slot
		// drops its incident edges (the capture never emits edges at a
		// vacant slot); activating one wires it randomly.
		cur := base.Clone()
		for i, m := 0, next()%24; i < m; i++ {
			switch next() % 4 {
			case 0: // deactivate a slot
				v := next() % n
				if !active[v] {
					continue
				}
				active[v] = false
				for u := 0; u < n; u++ {
					if u == v {
						continue
					}
					cur.RemoveEdge(u, v)
					cur.RemoveEdge(v, u)
				}
			case 1: // activate a slot and wire it
				v := next() % n
				if active[v] {
					continue
				}
				active[v] = true
				for d, deg := 0, next()%4; d < deg; d++ {
					u := next() % n
					if u != v && active[u] && !cur.HasEdge(v, u) {
						cur.AddEdge(v, u)
					}
				}
			case 2: // add an edge between active slots
				u, v := next()%n, next()%n
				if u != v && active[u] && active[v] && !cur.HasEdge(u, v) {
					cur.AddEdge(u, v)
				}
			default: // remove an edge
				u, v := next()%n, next()%n
				if u != v {
					cur.RemoveEdge(u, v)
				}
			}
		}
		newOrder := orderOf(active)

		var d Delta
		DiffSlotsInto(base, cur, oldOrder, newOrder, &d)

		// Apply-vs-rebuild: the edge delta reconstructs cur from base.
		patched := base.Clone()
		if !d.ApplyTo(patched) {
			t.Fatalf("delta inconsistent with its own base: %+v", d)
		}
		if !patched.Equal(cur) {
			t.Fatalf("patched graph differs from rebuilt: base+delta != cur\nadded=%v removed=%v", d.Added, d.Removed)
		}

		// Vertex records match the activation difference exactly.
		wantAdd, wantRem := activationDiff(oldOrder, newOrder, n)
		if !intsEqual(d.AddedVerts, wantAdd) || !intsEqual(d.RemovedVerts, wantRem) {
			t.Fatalf("vertex records: got added=%v removed=%v, want %v / %v",
				d.AddedVerts, d.RemovedVerts, wantAdd, wantRem)
		}

		// Reversal: the inverse delta restores the base graph.
		rev := Delta{Added: d.Removed, Removed: d.Added}
		if !rev.ApplyTo(patched) {
			t.Fatal("reverse delta inconsistent")
		}
		if !patched.Equal(base) {
			t.Fatal("reverse delta did not restore the base graph")
		}

		// Self-diff is empty.
		var selfD Delta
		DiffSlotsInto(cur, cur, newOrder, newOrder, &selfD)
		if selfD.Len() != 0 || len(selfD.AddedVerts) != 0 || len(selfD.RemovedVerts) != 0 {
			t.Fatalf("self-diff not empty: %+v", selfD)
		}
	})
}

func orderOf(active []bool) []int {
	var order []int
	for v, a := range active {
		if a {
			order = append(order, v)
		}
	}
	return order
}

func activationDiff(oldOrder, newOrder []int, n int) (added, removed []int) {
	old := make([]bool, n)
	for _, v := range oldOrder {
		old[v] = true
	}
	cur := make([]bool, n)
	for _, v := range newOrder {
		cur[v] = true
	}
	for v := 0; v < n; v++ {
		if cur[v] && !old[v] {
			added = append(added, v)
		}
		if old[v] && !cur[v] {
			removed = append(removed, v)
		}
	}
	return added, removed
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
