// Package graph provides the directed connectivity-graph representation
// used throughout the reproduction: adjacency storage, Even's
// vertex-splitting transformation (which reduces vertex connectivity to
// maximum flow), and DIMACS max-flow file I/O compatible with the HIPR
// solver the paper used.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a simple directed graph on vertices 0..N-1 with no self-loops
// and no parallel edges (duplicate AddEdge calls are idempotent). It is the
// in-memory form of the paper's connectivity graph D(V, E); every edge
// carries an implicit capacity of 1.
type Digraph struct {
	n   int
	adj []map[int32]struct{} // adjacency sets, one per vertex
	m   int
}

// NewDigraph returns an empty digraph with n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{n: n, adj: make([]map[int32]struct{}, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// AddEdge inserts the directed edge (u, v). Self-loops are rejected because
// the connectivity graph never contains them (a node does not keep itself
// in its routing table). Duplicate edges are ignored.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[int32]struct{})
	}
	if _, dup := g.adj[u][int32(v)]; dup {
		return
	}
	g.adj[u][int32(v)] = struct{}{}
	g.m++
}

// RemoveEdge deletes the directed edge (u, v) if present and reports
// whether it existed. Removing an absent edge is a no-op, mirroring
// AddEdge's idempotence.
func (g *Digraph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if _, ok := g.adj[u][int32(v)]; !ok {
		return false
	}
	delete(g.adj[u], int32(v))
	g.m--
	return true
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Digraph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][int32(v)]
	return ok
}

// OutDegree returns the number of edges leaving u.
func (g *Digraph) OutDegree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// InDegrees returns the in-degree of every vertex in one O(N+M) pass.
func (g *Digraph) InDegrees() []int {
	in := make([]int, g.n)
	for _, nbrs := range g.adj {
		for v := range nbrs {
			in[v]++
		}
	}
	return in
}

// Successors returns u's out-neighbours in ascending order. The slice is
// freshly allocated and safe for the caller to keep.
func (g *Digraph) Successors(u int) []int {
	g.check(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges in deterministic (u, then v) order.
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Successors(u) {
			out = append(out, Edge{U: u, V: v})
		}
	}
	return out
}

// Edge is a directed edge (U, V).
type Edge struct{ U, V int }

// IsComplete reports whether every ordered pair of distinct vertices is an
// edge. For a complete graph the vertex connectivity is N-1 by definition
// and no flow computation is needed.
func (g *Digraph) IsComplete() bool {
	return g.m == g.n*(g.n-1)
}

// IsSymmetric reports whether for every edge (u, v) the reverse edge (v, u)
// also exists, i.e. the digraph is an undirected graph in disguise. The
// paper observes Kademlia connectivity graphs are "very close to being
// undirected"; SymmetryRatio quantifies that.
func (g *Digraph) IsSymmetric() bool {
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if !g.HasEdge(int(v), u) {
				return false
			}
		}
	}
	return true
}

// SymmetryRatio returns the fraction of edges whose reverse edge also
// exists (1.0 for a symmetric graph, 0.0 for an antisymmetric one). An
// empty graph is vacuously symmetric.
func (g *Digraph) SymmetryRatio() float64 {
	if g.m == 0 {
		return 1.0
	}
	sym := 0
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if g.HasEdge(int(v), u) {
				sym++
			}
		}
	}
	return float64(sym) / float64(g.m)
}

// Equal reports whether g and h have the same vertex count and the same
// edge set.
func (g *Digraph) Equal(h *Digraph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for v := range g.adj[u] {
			if _, ok := h.adj[u][v]; !ok {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	out := NewDigraph(g.n)
	for u := 0; u < g.n; u++ {
		if g.adj[u] == nil {
			continue
		}
		out.adj[u] = make(map[int32]struct{}, len(g.adj[u]))
		for v := range g.adj[u] {
			out.adj[u][v] = struct{}{}
		}
	}
	out.m = g.m
	return out
}

// Symmetrize returns a copy of the graph with every reverse edge added.
func (g *Digraph) Symmetrize() *Digraph {
	out := g.Clone()
	for _, e := range g.Edges() {
		if !out.HasEdge(e.V, e.U) {
			out.AddEdge(e.V, e.U)
		}
	}
	return out
}

func (g *Digraph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}
