package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate: ignored
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge direction not respected")
	}
	if g.OutDegree(0) != 1 || g.OutDegree(3) != 0 {
		t.Fatal("wrong out-degrees")
	}
	in := g.InDegrees()
	if in[1] != 1 || in[2] != 1 || in[0] != 0 {
		t.Fatalf("InDegrees = %v", in)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	NewDigraph(2).AddEdge(1, 1)
}

func TestVertexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range vertex")
		}
	}()
	NewDigraph(2).AddEdge(0, 2)
}

func TestSuccessorsSortedAndCopied(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 4)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	s := g.Successors(0)
	want := []int{2, 3, 4}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Successors = %v, want %v", s, want)
		}
	}
	s[0] = 99
	if g.Successors(0)[0] != 2 {
		t.Fatal("Successors leaked internal state")
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	e := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {2, 0}}
	if len(e) != len(want) {
		t.Fatalf("Edges = %v", e)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", e, want)
		}
	}
}

func complete(n int) *Digraph {
	g := NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestIsComplete(t *testing.T) {
	if !complete(5).IsComplete() {
		t.Error("K5 should be complete")
	}
	g := complete(5)
	g2 := NewDigraph(5)
	for _, e := range g.Edges() {
		if e.U == 0 && e.V == 1 {
			continue
		}
		g2.AddEdge(e.U, e.V)
	}
	if g2.IsComplete() {
		t.Error("K5 minus an edge should not be complete")
	}
	if !NewDigraph(1).IsComplete() {
		t.Error("single vertex graph is trivially complete")
	}
}

func TestSymmetry(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if !g.IsSymmetric() || g.SymmetryRatio() != 1.0 {
		t.Error("mutual edge pair should be symmetric")
	}
	g.AddEdge(1, 2)
	if g.IsSymmetric() {
		t.Error("one-way edge breaks symmetry")
	}
	if got := g.SymmetryRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("SymmetryRatio = %v, want 2/3", got)
	}
	sym := g.Symmetrize()
	if !sym.IsSymmetric() {
		t.Error("Symmetrize result should be symmetric")
	}
	if sym.M() != 4 {
		t.Errorf("symmetrized M = %d, want 4", sym.M())
	}
	if g.M() != 3 {
		t.Error("Symmetrize mutated the original")
	}
	if NewDigraph(0).SymmetryRatio() != 1.0 {
		t.Error("empty graph is vacuously symmetric")
	}
}

func TestClone(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("Clone shares state with original")
	}
	if !c.HasEdge(0, 1) || c.M() != 2 || g.M() != 1 {
		t.Fatal("Clone incomplete")
	}
}

func TestEvenTransformCounts(t *testing.T) {
	// Property: transformed graph has 2n vertices and m+n edges.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := NewDigraph(n)
		for i := 0; i < n*2; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		tg := EvenTransform(g)
		return tg.N() == 2*n && tg.M() == g.M()+n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvenTransformStructure(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tg := EvenTransform(g)
	// Internal edges v' -> v''.
	for v := 0; v < 3; v++ {
		if !tg.HasEdge(In(v), Out(v)) {
			t.Fatalf("missing internal edge for vertex %d", v)
		}
		if tg.HasEdge(Out(v), In(v)) {
			t.Fatalf("unexpected reverse internal edge for vertex %d", v)
		}
	}
	// Original (u,v) becomes (u'', v').
	if !tg.HasEdge(Out(0), In(1)) || !tg.HasEdge(Out(1), In(2)) {
		t.Fatal("original edges not rewired to out->in")
	}
	if tg.HasEdge(Out(0), In(2)) {
		t.Fatal("phantom edge appeared")
	}
	// Degree constraints from the paper: outgoing degree of v' is 1 and
	// incoming degree of v'' is 1.
	in := tg.InDegrees()
	for v := 0; v < 3; v++ {
		if tg.OutDegree(In(v)) != 1 {
			t.Errorf("outdeg(v') = %d for v=%d, want 1", tg.OutDegree(In(v)), v)
		}
		if in[Out(v)] != 1 {
			t.Errorf("indeg(v'') = %d for v=%d, want 1", in[Out(v)], v)
		}
	}
}

func TestEvenEdgesMatchesTransform(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := NewDigraph(10)
	for i := 0; i < 40; i++ {
		u, v := r.Intn(10), r.Intn(10)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	want := EvenTransform(g)
	got := NewDigraph(2 * g.N())
	for _, e := range EvenEdges(g) {
		got.AddEdge(e.U, e.V)
	}
	if got.M() != want.M() {
		t.Fatalf("edge counts differ: %d vs %d", got.M(), want.M())
	}
	for _, e := range want.Edges() {
		if !got.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestInOutMapping(t *testing.T) {
	for v := 0; v < 100; v++ {
		if In(v) == Out(v) {
			t.Fatal("In and Out collide")
		}
		if In(v) != 2*v || Out(v) != 2*v+1 {
			t.Fatal("unexpected index mapping")
		}
	}
}
