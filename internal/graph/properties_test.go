package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDigraph(seed int64) *Digraph {
	r := rand.New(rand.NewSource(seed))
	n := 2 + r.Intn(25)
	g := NewDigraph(n)
	for i := 0; i < n*3; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestSymmetryRatioBounds(t *testing.T) {
	f := func(seed int64) bool {
		ratio := randomDigraph(seed).SymmetryRatio()
		return ratio >= 0 && ratio <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDigraph(seed)
		once := g.Symmetrize()
		twice := once.Symmetrize()
		return once.IsSymmetric() && twice.M() == once.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCountMatchesDegrees(t *testing.T) {
	// Sum of out-degrees == sum of in-degrees == M.
	f := func(seed int64) bool {
		g := randomDigraph(seed)
		var outSum, inSum int
		for v := 0; v < g.N(); v++ {
			outSum += g.OutDegree(v)
		}
		for _, d := range g.InDegrees() {
			inSum += d
		}
		return outSum == g.M() && inSum == g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvenTransformPreservesReachabilityEndpoints(t *testing.T) {
	// If edge (u,v) exists in g, then Out(u) -> In(v) exists in the
	// transform, and vice versa.
	f := func(seed int64) bool {
		g := randomDigraph(seed)
		tg := EvenTransform(g)
		for _, e := range g.Edges() {
			if !tg.HasEdge(Out(e.U), In(e.V)) {
				return false
			}
		}
		// Count check rules out phantom edges beyond internals.
		return tg.M() == g.M()+g.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
