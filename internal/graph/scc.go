package graph

import "sort"

// Strongly connected components, computed with an iterative Tarjan
// traversal (no recursion, so paper-scale graphs cannot overflow the
// stack). The attack experiments use the largest component's size as a
// coarser degradation signal than vertex connectivity: once targeted
// removals shatter the network, kappa(D) pins at 0 while the largest-SCC
// fraction keeps measuring how much of the network still functions.

// SCCs returns the strongly connected components of the graph. Components
// are returned in a deterministic order — sorted by their smallest vertex —
// and the vertices inside each component are sorted ascending.
func (g *Digraph) SCCs() [][]int {
	const unvisited = -1
	var (
		index   = 0
		indexOf = make([]int, g.n)
		lowlink = make([]int, g.n)
		onStack = make([]bool, g.n)
		stack   = make([]int, 0, g.n)
		comps   [][]int
	)
	for i := range indexOf {
		indexOf[i] = unvisited
	}

	// frame is one suspended visit: vertex v, with nbrs[next:] unexplored.
	type frame struct {
		v    int
		nbrs []int
		next int
	}
	var frames []frame

	for root := 0; root < g.n; root++ {
		if indexOf[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root, nbrs: g.Successors(root)})
		indexOf[root] = index
		lowlink[root] = index
		index++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.nbrs) {
				w := f.nbrs[f.next]
				f.next++
				switch {
				case indexOf[w] == unvisited:
					indexOf[w] = index
					lowlink[w] = index
					index++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, nbrs: g.Successors(w)})
				case onStack[w]:
					if indexOf[w] < lowlink[f.v] {
						lowlink[f.v] = indexOf[w]
					}
				}
				continue
			}
			// v is fully explored: pop its component if it is a root.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == indexOf[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}

	// Tarjan emits components in reverse topological order with unsorted
	// members; normalize for deterministic consumers.
	for _, c := range comps {
		sort.Ints(c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// LargestSCC returns the vertex count of the largest strongly connected
// component (0 for an empty graph).
func (g *Digraph) LargestSCC() int {
	best := 0
	for _, c := range g.SCCs() {
		if len(c) > best {
			best = len(c)
		}
	}
	return best
}

// LargestSCCFraction returns |largest SCC| / N, the fraction of the
// network inside the largest mutually reachable set. An empty graph
// reports 0; a single vertex reports 1.
func (g *Digraph) LargestSCCFraction() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.LargestSCC()) / float64(g.n)
}
