package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestSCCsEmptyAndSingle(t *testing.T) {
	if got := NewDigraph(0).SCCs(); len(got) != 0 {
		t.Fatalf("empty graph: got %v components", got)
	}
	if got := NewDigraph(1).SCCs(); !reflect.DeepEqual(got, [][]int{{0}}) {
		t.Fatalf("single vertex: got %v", got)
	}
	if f := NewDigraph(0).LargestSCCFraction(); f != 0 {
		t.Fatalf("empty fraction = %v, want 0", f)
	}
	if f := NewDigraph(1).LargestSCCFraction(); f != 1 {
		t.Fatalf("single fraction = %v, want 1", f)
	}
}

func TestSCCsKnownDecomposition(t *testing.T) {
	// Two 3-cycles bridged by a one-way edge, plus an isolated vertex:
	// {0,1,2}, {3,4,5}, {6}.
	g := NewDigraph(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3) // bridge, not part of any cycle
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	want := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	if got := g.SCCs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
	if got := g.LargestSCC(); got != 3 {
		t.Fatalf("LargestSCC = %d, want 3", got)
	}
	if got := g.LargestSCCFraction(); got != 3.0/7.0 {
		t.Fatalf("LargestSCCFraction = %v, want 3/7", got)
	}
}

func TestSCCsDirectedPath(t *testing.T) {
	// A directed path has only singleton components.
	g := NewDigraph(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	comps := g.SCCs()
	if len(comps) != 5 {
		t.Fatalf("path: got %d components, want 5", len(comps))
	}
	for i, c := range comps {
		if len(c) != 1 || c[0] != i {
			t.Fatalf("path component %d = %v", i, c)
		}
	}
}

func TestSCCsFullCycleDeepGraph(t *testing.T) {
	// A long cycle exercises the iterative traversal at a depth that
	// would overflow a recursive implementation's stack budget in tests.
	const n = 200000
	g := NewDigraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	comps := g.SCCs()
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("cycle: got %d components, largest %d", len(comps), len(comps[0]))
	}
}

// reachable computes mutual-reachability components by brute force BFS.
func reachable(g *Digraph, from int) []bool {
	seen := make([]bool, g.N())
	queue := []int{from}
	seen[from] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Successors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

func TestSCCsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(14)
		g := NewDigraph(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
		fwd := make([][]bool, n)
		for v := 0; v < n; v++ {
			fwd[v] = reachable(g, v)
		}
		compOf := make([]int, n)
		for i, c := range g.SCCs() {
			for _, v := range c {
				compOf[v] = i
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := fwd[u][v] && fwd[v][u]
				if mutual != (compOf[u] == compOf[v]) {
					t.Fatalf("trial %d: vertices %d,%d mutual=%v but compOf %d vs %d\nSCCs: %v",
						trial, u, v, mutual, compOf[u], compOf[v], g.SCCs())
				}
			}
		}
	}
}
