// Package id implements b-bit Kademlia identifiers and the XOR distance
// metric from Maymounkov and Mazieres. Identifiers name both nodes and data
// objects. The bit-length b is a protocol parameter (the paper evaluates
// b = 160 and b = 80); all identifiers participating in one network must
// share the same bit-length.
package id

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// MaxBits is the largest supported identifier bit-length.
const MaxBits = 256

// MaxBytes is the largest supported identifier byte-length.
const MaxBytes = MaxBits / 8

// DefaultBits is the bit-length used by the original Kademlia paper.
const DefaultBits = 160

var (
	// ErrBitLength reports an unsupported identifier bit-length.
	ErrBitLength = errors.New("id: bit-length must be a positive multiple of 8 and at most 256")
	// ErrDataLength reports a data buffer whose size does not match the bit-length.
	ErrDataLength = errors.New("id: data length does not match bit-length")
	// ErrMixedBits reports an operation on identifiers of different bit-lengths.
	ErrMixedBits = errors.New("id: mixed identifier bit-lengths")
)

// ID is an immutable b-bit identifier. The zero value is invalid; construct
// identifiers with New, Random, FromUint64, Hash, or Parse. Identifiers are
// value types and can be compared for equality with Equal (not ==, because
// unused trailing bytes are always zero but the bits field must match too).
type ID struct {
	bits int
	data [MaxBytes]byte // big-endian, left-aligned in the first bits/8 bytes
}

// CheckBits validates an identifier bit-length.
func CheckBits(b int) error {
	if b <= 0 || b > MaxBits || b%8 != 0 {
		return fmt.Errorf("%w: %d", ErrBitLength, b)
	}
	return nil
}

// New builds an identifier of the given bit-length from big-endian bytes.
// len(data) must equal bits/8.
func New(bitLen int, data []byte) (ID, error) {
	if err := CheckBits(bitLen); err != nil {
		return ID{}, err
	}
	if len(data) != bitLen/8 {
		return ID{}, fmt.Errorf("%w: got %d bytes, want %d", ErrDataLength, len(data), bitLen/8)
	}
	var out ID
	out.bits = bitLen
	copy(out.data[:], data)
	return out, nil
}

// MustNew is New but panics on error. It is intended for tests and for
// call sites that construct identifiers from compile-time constants.
func MustNew(bitLen int, data []byte) ID {
	out, err := New(bitLen, data)
	if err != nil {
		panic(err)
	}
	return out
}

// Random returns a uniformly random identifier of the given bit-length drawn
// from r. It panics if the bit-length is invalid, since the caller always
// controls it.
func Random(bitLen int, r *rand.Rand) ID {
	if err := CheckBits(bitLen); err != nil {
		panic(err)
	}
	var out ID
	out.bits = bitLen
	n := bitLen / 8
	full := n / 8 * 8 // whole 8-byte words that fit inside the id
	for i := 0; i < full; i += 8 {
		binary.BigEndian.PutUint64(out.data[i:], r.Uint64())
	}
	for i := full; i < n; i++ {
		out.data[i] = byte(r.Intn(256))
	}
	return out
}

// FromUint64 returns the identifier whose integer value is v, in a space of
// the given bit-length. It is mainly useful in tests, where small readable
// identifier values make distances obvious.
func FromUint64(bitLen int, v uint64) ID {
	if err := CheckBits(bitLen); err != nil {
		panic(err)
	}
	var out ID
	out.bits = bitLen
	n := bitLen / 8
	for i := 0; i < 8 && i < n; i++ {
		out.data[n-1-i] = byte(v >> (8 * i))
	}
	return out
}

// Hash derives an identifier from an arbitrary payload using SHA-256,
// truncated to the requested bit-length. The paper derives node identifiers
// from network addresses this way ("using a cryptographically secure hash
// function with the goal of equal distribution").
func Hash(bitLen int, payload []byte) ID {
	if err := CheckBits(bitLen); err != nil {
		panic(err)
	}
	sum := sha256.Sum256(payload)
	var out ID
	out.bits = bitLen
	copy(out.data[:bitLen/8], sum[:bitLen/8])
	return out
}

// Parse decodes a hex string produced by String into an identifier of the
// given bit-length.
func Parse(bitLen int, s string) (ID, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return ID{}, fmt.Errorf("id: parse %q: %w", s, err)
	}
	return New(bitLen, raw)
}

// Bits reports the identifier's bit-length, or 0 for the zero value.
func (a ID) Bits() int { return a.bits }

// IsZeroValue reports whether a is the invalid zero value (no bit-length).
func (a ID) IsZeroValue() bool { return a.bits == 0 }

// Bytes returns a copy of the identifier's big-endian byte representation.
func (a ID) Bytes() []byte {
	out := make([]byte, a.bits/8)
	copy(out, a.data[:a.bits/8])
	return out
}

// String renders the identifier as lowercase hex.
func (a ID) String() string {
	return hex.EncodeToString(a.data[:a.bits/8])
}

// Equal reports whether two identifiers have the same bit-length and value.
func (a ID) Equal(b ID) bool {
	return a.bits == b.bits && a.data == b.data
}

// Cmp compares the integer values of two identifiers of equal bit-length:
// -1 if a < b, 0 if equal, +1 if a > b. It panics on mixed bit-lengths,
// which is always a programming error.
func (a ID) Cmp(b ID) int {
	mustSameBits(a, b)
	for i := 0; i < a.bits/8; i++ {
		switch {
		case a.data[i] < b.data[i]:
			return -1
		case a.data[i] > b.data[i]:
			return 1
		}
	}
	return 0
}

// Distance returns the XOR distance between two identifiers, itself an
// identifier-sized value: dist(a, b) = a XOR b interpreted as an integer.
func (a ID) Distance(b ID) ID {
	mustSameBits(a, b)
	out := ID{bits: a.bits}
	for i := 0; i < a.bits/8; i++ {
		out.data[i] = a.data[i] ^ b.data[i]
	}
	return out
}

// IsZero reports whether the identifier's integer value is zero. The XOR
// distance between two identifiers is zero exactly when they are equal.
func (a ID) IsZero() bool {
	for i := 0; i < a.bits/8; i++ {
		if a.data[i] != 0 {
			return false
		}
	}
	return true
}

// BitLen returns the position of the highest set bit plus one (the minimal
// number of bits needed to represent the value), or 0 for a zero value.
func (a ID) BitLen() int {
	for i := 0; i < a.bits/8; i++ {
		if a.data[i] != 0 {
			return (a.bits/8-i-1)*8 + bits.Len8(a.data[i])
		}
	}
	return 0
}

// BucketIndex returns the index of the k-bucket in a's routing table that
// holds identifier b: the i satisfying 2^i <= dist(a, b) < 2^(i+1). It
// returns -1 when a == b, which belongs to no bucket. The highest bucket
// index is a.Bits()-1 and covers half of the identifier space.
func (a ID) BucketIndex(b ID) int {
	return a.Distance(b).BitLen() - 1
}

// CloserTo reports whether a is strictly closer to target than b is, under
// the XOR metric.
func (a ID) CloserTo(target, b ID) bool {
	mustSameBits(a, b)
	mustSameBits(a, target)
	// Compare a^target with b^target byte-wise without allocating.
	for i := 0; i < a.bits/8; i++ {
		da := a.data[i] ^ target.data[i]
		db := b.data[i] ^ target.data[i]
		switch {
		case da < db:
			return true
		case da > db:
			return false
		}
	}
	return false
}

// RandomInBucket returns a uniformly random identifier that would land in
// bucket index i of self's routing table, i.e. with 2^i <= dist(self, id)
// < 2^(i+1). Kademlia's bucket-refresh procedure looks up such identifiers
// to repopulate each bucket. It panics if i is outside [0, self.Bits()).
func RandomInBucket(self ID, i int, r *rand.Rand) ID {
	if i < 0 || i >= self.bits {
		panic(fmt.Sprintf("id: bucket index %d out of range [0,%d)", i, self.bits))
	}
	// Build a random distance with highest set bit exactly i, then XOR it
	// onto self.
	dist := ID{bits: self.bits}
	byteIdx := self.bits/8 - 1 - i/8
	bitInByte := uint(i % 8)
	dist.data[byteIdx] = 1 << bitInByte
	// Randomize all lower-order bits.
	if bitInByte > 0 {
		dist.data[byteIdx] |= byte(r.Intn(1 << bitInByte))
	}
	for j := byteIdx + 1; j < self.bits/8; j++ {
		dist.data[j] = byte(r.Intn(256))
	}
	return self.Distance(dist)
}

func mustSameBits(a, b ID) {
	if a.bits != b.bits {
		panic(fmt.Sprintf("%v: %d vs %d", ErrMixedBits, a.bits, b.bits))
	}
}
