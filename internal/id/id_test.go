package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestCheckBits(t *testing.T) {
	tests := []struct {
		name    string
		bits    int
		wantErr bool
	}{
		{"default 160", 160, false},
		{"paper alternative 80", 80, false},
		{"max 256", 256, false},
		{"min 8", 8, false},
		{"zero", 0, true},
		{"negative", -8, true},
		{"not multiple of 8", 33, true},
		{"too large", 264, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckBits(tt.bits)
			if (err != nil) != tt.wantErr {
				t.Fatalf("CheckBits(%d) error = %v, wantErr %v", tt.bits, err, tt.wantErr)
			}
		})
	}
}

func TestNewValidatesLength(t *testing.T) {
	if _, err := New(160, make([]byte, 20)); err != nil {
		t.Fatalf("New(160, 20 bytes) unexpected error: %v", err)
	}
	if _, err := New(160, make([]byte, 19)); err == nil {
		t.Fatal("New(160, 19 bytes) expected error")
	}
	if _, err := New(7, make([]byte, 1)); err == nil {
		t.Fatal("New(7, ...) expected error")
	}
}

func TestFromUint64RoundTrip(t *testing.T) {
	tests := []struct {
		v    uint64
		bits int
	}{
		{0, 64}, {1, 64}, {255, 64}, {256, 64}, {1 << 40, 64},
		{0, 160}, {42, 160}, {1<<64 - 1, 160}, {7, 8},
	}
	for _, tt := range tests {
		a := FromUint64(tt.bits, tt.v)
		b := FromUint64(tt.bits, tt.v)
		if !a.Equal(b) {
			t.Errorf("FromUint64(%d,%d) not deterministic", tt.bits, tt.v)
		}
		if a.Bits() != tt.bits {
			t.Errorf("Bits() = %d, want %d", a.Bits(), tt.bits)
		}
	}
	if FromUint64(64, 5).Cmp(FromUint64(64, 6)) != -1 {
		t.Error("5 should compare less than 6")
	}
	if FromUint64(64, 300).Cmp(FromUint64(64, 299)) != 1 {
		t.Error("300 should compare greater than 299")
	}
}

func TestDistanceXORProperties(t *testing.T) {
	r := rng(1)
	// Identity: dist(a, a) = 0.
	for i := 0; i < 50; i++ {
		a := Random(160, r)
		if !a.Distance(a).IsZero() {
			t.Fatalf("dist(a,a) != 0 for %v", a)
		}
	}
	// Symmetry: dist(a, b) = dist(b, a).
	symm := func(av, bv uint64) bool {
		a, b := FromUint64(160, av), FromUint64(160, bv)
		return a.Distance(b).Equal(b.Distance(a))
	}
	if err := quick.Check(symm, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	// XOR triangle equality: dist(a,c) = dist(a,b) XOR dist(b,c), which
	// implies the triangle inequality for the XOR metric.
	tri := func(av, bv, cv uint64) bool {
		a, b, c := FromUint64(160, av), FromUint64(160, bv), FromUint64(160, cv)
		return a.Distance(c).Equal(a.Distance(b).Distance(b.Distance(c)))
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Errorf("triangle equality: %v", err)
	}
	// Unidirectionality helper: for any a != b, exactly one is closer to any
	// target unless equidistant is impossible under XOR (it is: distances
	// are distinct for distinct points).
	uni := func(av, bv, tv uint64) bool {
		a, b, target := FromUint64(160, av), FromUint64(160, bv), FromUint64(160, tv)
		if a.Equal(b) {
			return !a.CloserTo(target, b) && !b.CloserTo(target, a)
		}
		return a.CloserTo(target, b) != b.CloserTo(target, a)
	}
	if err := quick.Check(uni, nil); err != nil {
		t.Errorf("unique ordering: %v", err)
	}
}

func TestBitLen(t *testing.T) {
	tests := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1 << 63, 64},
	}
	for _, tt := range tests {
		if got := FromUint64(160, tt.v).BitLen(); got != tt.want {
			t.Errorf("BitLen(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	self := FromUint64(64, 0)
	tests := []struct {
		other uint64
		want  int
	}{
		{0, -1}, // same id: no bucket
		{1, 0},  // dist 1 -> bucket 0
		{2, 1},  // dist 2 -> bucket 1
		{3, 1},  // dist 3 -> bucket 1
		{4, 2},  // dist in [4,8) -> bucket 2
		{7, 2},
		{8, 3},
		{1 << 20, 20},
		{1<<21 - 1, 20},
	}
	for _, tt := range tests {
		if got := self.BucketIndex(FromUint64(64, tt.other)); got != tt.want {
			t.Errorf("BucketIndex(dist=%d) = %d, want %d", tt.other, got, tt.want)
		}
	}
}

func TestBucketIndexRangeInvariant(t *testing.T) {
	// Property: for any distinct a, b the bucket index i satisfies
	// 2^i <= dist(a,b) < 2^(i+1), expressed via BitLen.
	f := func(av, bv uint64) bool {
		a, b := FromUint64(128, av), FromUint64(128, bv)
		if a.Equal(b) {
			return a.BucketIndex(b) == -1
		}
		i := a.BucketIndex(b)
		return i >= 0 && a.Distance(b).BitLen() == i+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInBucket(t *testing.T) {
	r := rng(7)
	for _, bits := range []int{8, 80, 160, 256} {
		self := Random(bits, r)
		for i := 0; i < bits; i++ {
			got := RandomInBucket(self, i, r)
			if idx := self.BucketIndex(got); idx != i {
				t.Fatalf("bits=%d: RandomInBucket(%d) landed in bucket %d", bits, i, idx)
			}
		}
	}
}

func TestRandomInBucketCoversRange(t *testing.T) {
	// In bucket 7 of an 8-bit space (distances 128..255) we should see many
	// distinct values, not just the lower bound.
	r := rng(3)
	self := FromUint64(8, 0)
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		seen[RandomInBucket(self, 7, r).String()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("expected wide coverage of bucket range, got %d distinct values", len(seen))
	}
}

func TestRandomInBucketPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range bucket index")
		}
	}()
	RandomInBucket(FromUint64(64, 0), 64, rng(1))
}

func TestHashDeterministicAndSpread(t *testing.T) {
	a := Hash(160, []byte("node-1"))
	b := Hash(160, []byte("node-1"))
	c := Hash(160, []byte("node-2"))
	if !a.Equal(b) {
		t.Error("Hash not deterministic")
	}
	if a.Equal(c) {
		t.Error("distinct payloads hashed to same id")
	}
	if a.Bits() != 160 {
		t.Errorf("Bits() = %d, want 160", a.Bits())
	}
	// Truncation consistency: the 80-bit hash is a prefix of the 160-bit hash.
	short := Hash(80, []byte("node-1"))
	long := Hash(160, []byte("node-1"))
	for i, bb := range short.Bytes() {
		if long.Bytes()[i] != bb {
			t.Fatal("shorter hash is not a prefix of longer hash")
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	r := rng(11)
	for i := 0; i < 20; i++ {
		a := Random(160, r)
		back, err := Parse(160, a.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", a.String(), err)
		}
		if !back.Equal(a) {
			t.Fatalf("round trip mismatch: %v vs %v", back, a)
		}
	}
	if _, err := Parse(160, "zz"); err == nil {
		t.Error("expected error for invalid hex")
	}
	if _, err := Parse(160, "abcd"); err == nil {
		t.Error("expected error for wrong length")
	}
}

func TestRandomUniformBits(t *testing.T) {
	// Sanity check on uniformity: with 2000 draws of 160-bit ids, each of
	// the first 8 bits should be set roughly half of the time.
	r := rng(42)
	const draws = 2000
	counts := make([]int, 8)
	for i := 0; i < draws; i++ {
		b := Random(160, r).Bytes()[0]
		for j := 0; j < 8; j++ {
			if b&(1<<uint(7-j)) != 0 {
				counts[j]++
			}
		}
	}
	for j, c := range counts {
		if c < draws/3 || c > draws*2/3 {
			t.Errorf("bit %d set %d/%d times; want near %d", j, c, draws, draws/2)
		}
	}
}

func TestBytesIsACopy(t *testing.T) {
	a := FromUint64(64, 42)
	b := a.Bytes()
	b[0] = 0xFF
	if a.Bytes()[0] == 0xFF {
		t.Fatal("Bytes() leaked internal storage")
	}
}

func TestCloserTo(t *testing.T) {
	target := FromUint64(64, 100)
	near := FromUint64(64, 101) // dist 1
	far := FromUint64(64, 200)  // dist 172
	if !near.CloserTo(target, far) {
		t.Error("near should be closer to target than far")
	}
	if far.CloserTo(target, near) {
		t.Error("far should not be closer to target than near")
	}
	if near.CloserTo(target, near) {
		t.Error("an id is not strictly closer than itself")
	}
}

func TestMixedBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mixed bit-lengths")
		}
	}()
	FromUint64(64, 1).Distance(FromUint64(128, 1))
}

func TestIsZeroValue(t *testing.T) {
	var zero ID
	if !zero.IsZeroValue() {
		t.Error("zero value should report IsZeroValue")
	}
	if FromUint64(64, 0).IsZeroValue() {
		t.Error("a constructed id is not the zero value")
	}
}
