// Package kademlia implements the Kademlia protocol of Maymounkov and
// Mazieres on the simulated network: b-bit XOR identifiers, k-buckets with
// least-recently-seen eviction guarded by a staleness limit s, iterative
// alpha-parallel node and value lookups, dissemination (STORE), periodic
// bucket refresh, and silent departure. These are exactly the mechanisms
// whose parameters (b, k, alpha, s) the paper sweeps in its connectivity
// evaluation.
package kademlia

import (
	"fmt"
	"time"

	"kadre/internal/id"
)

// Default protocol parameters, as set by the Kademlia authors and quoted
// in §4.1 of the paper.
const (
	DefaultK              = 20
	DefaultAlpha          = 3
	DefaultStalenessLimit = 5
	DefaultBits           = id.DefaultBits
	// DefaultRefreshInterval is the bucket-refresh period; the paper's
	// no-traffic scenarios rely on this 60-minute maintenance cycle.
	DefaultRefreshInterval = 60 * time.Minute
	// DefaultRPCTimeout is how long a node waits for a response before
	// counting a communication failure against the contact's staleness
	// budget. The paper does not specify PeerSim's value; 2 s is far above
	// the simulated latency ceiling, so only loss and death cause timeouts.
	DefaultRPCTimeout = 2 * time.Second
)

// Config carries the protocol parameters of one Kademlia deployment. The
// zero value of any field means "use the default".
type Config struct {
	// Bits is the identifier bit-length b (paper: 160 and 80).
	Bits int
	// K is the bucket size k, the maximum contacts per bucket and the
	// result-set size of lookups (paper: 5, 10, 20, 30).
	K int
	// Alpha is the request parallelism of lookups (paper: 3 and 5).
	Alpha int
	// StalenessLimit is s: a contact is evicted after this many
	// consecutive failed communication attempts (paper: 1 and 5).
	StalenessLimit int
	// RefreshInterval is the bucket-refresh period.
	RefreshInterval time.Duration
	// RPCTimeout bounds the wait for any single request's response.
	RPCTimeout time.Duration
	// ReplacementCacheSize bounds the per-bucket standby list of contacts
	// that could not be inserted because the bucket was full; 0 means K.
	ReplacementCacheSize int
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Bits == 0 {
		c.Bits = DefaultBits
	}
	if c.K == 0 {
		c.K = DefaultK
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.StalenessLimit == 0 {
		c.StalenessLimit = DefaultStalenessLimit
	}
	if c.RefreshInterval == 0 {
		c.RefreshInterval = DefaultRefreshInterval
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = DefaultRPCTimeout
	}
	if c.ReplacementCacheSize == 0 {
		c.ReplacementCacheSize = c.K
	}
	return c
}

// Validate checks a fully-defaulted config for consistency.
func (c Config) Validate() error {
	if err := id.CheckBits(c.Bits); err != nil {
		return err
	}
	if c.K < 1 {
		return fmt.Errorf("kademlia: bucket size k = %d must be >= 1", c.K)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("kademlia: parallelism alpha = %d must be >= 1", c.Alpha)
	}
	if c.StalenessLimit < 1 {
		return fmt.Errorf("kademlia: staleness limit s = %d must be >= 1", c.StalenessLimit)
	}
	if c.RefreshInterval < 0 {
		return fmt.Errorf("kademlia: negative refresh interval %v", c.RefreshInterval)
	}
	if c.RPCTimeout <= 0 {
		return fmt.Errorf("kademlia: rpc timeout %v must be positive", c.RPCTimeout)
	}
	if c.ReplacementCacheSize < 0 {
		return fmt.Errorf("kademlia: negative replacement cache size %d", c.ReplacementCacheSize)
	}
	return nil
}
