package kademlia

import (
	"kadre/internal/id"
)

// Disjoint-path lookups, the resilience mechanism of S/Kademlia (Baumgart
// & Mies 2007 — the paper's reference [1] and the direction of its future
// work "to improve upon the minimum connectivity"): the lookup fans out
// over d paths that share no intermediate nodes, so an attacker
// controlling fewer than d of the traversed nodes cannot suppress the
// result. The paper's connectivity measurements are exactly what bounds
// the d worth provisioning: at most kappa(D) node-disjoint paths exist.

// DisjointResult reports the outcome of a disjoint-path lookup.
type DisjointResult struct {
	// Closest is the merged result set, ascending by distance.
	Closest []Contact
	// PathsSucceeded counts paths that contacted at least one node.
	PathsSucceeded int
	// Responded is the total number of nodes successfully contacted.
	Responded int
}

// disjointLookup coordinates d sub-lookups over a shared claim set.
type disjointLookup struct {
	node      *Node
	target    id.ID
	remaining int
	claimed   map[id.ID]bool
	paths     []*lookup
	done      func(DisjointResult)

	merged          []Contact
	resultSucceeded int
	resultResponded int
}

// DisjointLookup runs the FIND_NODE procedure over d node-disjoint paths:
// the initial candidates are split round-robin across d independent
// sub-lookups, and every discovered contact is claimed by exactly one
// path before being queried. done receives the merged result.
//
// d is clamped to [1, alpha * d] sensible bounds: at least 1; values
// above the number of initial candidates simply leave surplus paths
// empty.
func (n *Node) DisjointLookup(target id.ID, d int, done func(DisjointResult)) {
	if d < 1 {
		d = 1
	}
	if !n.running {
		if done != nil {
			done(DisjointResult{})
		}
		return
	}
	n.stats.LookupsStarted++

	dl := &disjointLookup{
		node:      n,
		target:    target,
		remaining: d,
		claimed:   map[id.ID]bool{n.self.ID: true},
		done:      done,
	}

	// Seed each path with a round-robin share of the closest known
	// contacts. Claims are taken at seeding time so seeds are disjoint.
	seeds := n.table.Closest(target, n.cfg.K)
	shares := make([][]Contact, d)
	for i, c := range seeds {
		shares[i%d] = append(shares[i%d], c)
	}

	for p := 0; p < d; p++ {
		l := newLookup(n, target, lookupNode, nil)
		l.claim = dl.claim
		pathIdx := p
		l.onComplete = func(closest []Contact, responded int) {
			dl.pathDone(pathIdx, closest, responded)
		}
		dl.paths = append(dl.paths, l)
	}
	// Start after all paths exist: a path finishing instantly (empty
	// share) must still see the full bookkeeping. addCandidate consults
	// the shared claim set through l.claim.
	for p, l := range dl.paths {
		for _, c := range shares[p] {
			l.addCandidate(c)
		}
		l.step()
	}
}

// claim reserves a contact for one path; it reports false when another
// path already owns it, keeping the paths vertex-disjoint.
func (dl *disjointLookup) claim(nodeID id.ID) bool {
	if dl.claimed[nodeID] {
		return false
	}
	dl.claimed[nodeID] = true
	return true
}

func (dl *disjointLookup) pathDone(_ int, closest []Contact, responded int) {
	dl.remaining--
	if responded > 0 {
		dl.resultSucceeded++
	}
	dl.resultResponded += responded
	dl.merged = append(dl.merged, closest...)
	if dl.remaining > 0 {
		return
	}
	dl.node.stats.LookupsCompleted++
	// Merge: sort by distance, dedupe, trim to k.
	out := make([]Contact, 0, len(dl.merged))
	seen := map[id.ID]bool{}
	for {
		var best *Contact
		for i := range dl.merged {
			c := &dl.merged[i]
			if seen[c.ID] {
				continue
			}
			if best == nil || c.ID.CloserTo(dl.target, best.ID) {
				best = c
			}
		}
		if best == nil || len(out) >= dl.node.cfg.K {
			break
		}
		seen[best.ID] = true
		out = append(out, *best)
	}
	if dl.done != nil {
		dl.done(DisjointResult{
			Closest:        out,
			PathsSucceeded: dl.resultSucceeded,
			Responded:      dl.resultResponded,
		})
	}
}
