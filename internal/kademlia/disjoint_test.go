package kademlia

import (
	"testing"
	"time"

	"kadre/internal/id"
)

func TestDisjointLookupFindsTarget(t *testing.T) {
	c := newCluster(t, smallConfig(), 30, 21)
	target := c.nodes[11].ID()
	var res DisjointResult
	done := false
	c.nodes[3].DisjointLookup(target, 3, func(r DisjointResult) {
		res, done = r, true
	})
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if !done {
		t.Fatal("disjoint lookup never completed")
	}
	if len(res.Closest) == 0 {
		t.Fatal("no results")
	}
	if !res.Closest[0].ID.Equal(target) {
		t.Fatalf("closest = %v, want target %v", res.Closest[0].ID, target)
	}
	if res.PathsSucceeded == 0 {
		t.Fatal("no path succeeded")
	}
}

func TestDisjointLookupPathsAreDisjoint(t *testing.T) {
	// White-box: all paths share one claim set, so the union of seen
	// candidate sets (minus the self entry) has no duplicates by
	// construction. Verify via the coordinator's bookkeeping.
	c := newCluster(t, smallConfig(), 25, 22)
	n := c.nodes[5]
	dl := &disjointLookup{
		node:    n,
		target:  id.FromUint64(64, 12345),
		claimed: map[id.ID]bool{n.self.ID: true},
	}
	if !dl.claim(id.FromUint64(64, 7)) {
		t.Fatal("first claim must succeed")
	}
	if dl.claim(id.FromUint64(64, 7)) {
		t.Fatal("second claim of the same node must fail")
	}
}

func TestDisjointLookupDegenerateD(t *testing.T) {
	c := newCluster(t, smallConfig(), 15, 23)
	done := false
	// d below 1 clamps to 1 and behaves like a regular lookup.
	c.nodes[2].DisjointLookup(c.nodes[9].ID(), 0, func(r DisjointResult) {
		done = true
		if len(r.Closest) == 0 {
			t.Error("clamped lookup returned nothing")
		}
	})
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if !done {
		t.Fatal("lookup never completed")
	}
}

func TestDisjointLookupOnDeadNode(t *testing.T) {
	c := newCluster(t, smallConfig(), 10, 24)
	n := c.nodes[4]
	n.Leave()
	called := false
	n.DisjointLookup(id.FromUint64(64, 99), 3, func(r DisjointResult) {
		called = true
		if r.PathsSucceeded != 0 || len(r.Closest) != 0 {
			t.Errorf("dead node produced results: %+v", r)
		}
	})
	if !called {
		t.Fatal("callback not invoked synchronously on dead node")
	}
}

func TestCompromisedNodeDeniesService(t *testing.T) {
	c := newCluster(t, smallConfig(), 20, 25)
	victim := c.nodes[8]
	victim.SetCompromised(true)
	if !victim.Compromised() {
		t.Fatal("flag not set")
	}
	// A lookup routed through the compromised node times out on it, but
	// the network as a whole still answers.
	target := c.nodes[13].ID()
	var got []Contact
	c.nodes[2].Lookup(target, func(closest []Contact, _ int) { got = closest })
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if len(got) == 0 {
		t.Fatal("lookup produced nothing despite single compromised node")
	}
	// The compromised node itself must not appear among the responders.
	for _, contact := range got {
		if contact.ID.Equal(victim.ID()) {
			t.Fatal("compromised node answered a lookup")
		}
	}
}

func TestDisjointLookupToleratesCompromise(t *testing.T) {
	// The S/Kademlia premise: with d disjoint paths, compromising a few
	// routing nodes cannot blind the lookup. Compromise 20% of the
	// network (excluding source and target) and compare d=1 vs d=4
	// success on the same seed.
	run := func(d int, seed int64) bool {
		c := newCluster(t, smallConfig(), 30, seed)
		src, dst := c.nodes[1], c.nodes[28]
		for i, n := range c.nodes {
			if i%5 == 0 && n != src && n != dst {
				n.SetCompromised(true)
			}
		}
		found := false
		src.DisjointLookup(dst.ID(), d, func(r DisjointResult) {
			for _, contact := range r.Closest {
				if contact.ID.Equal(dst.ID()) {
					found = true
				}
			}
		})
		c.sim.RunUntil(c.sim.Now() + 2*time.Minute)
		return found
	}
	succ1, succ4 := 0, 0
	for seed := int64(100); seed < 110; seed++ {
		if run(1, seed) {
			succ1++
		}
		if run(4, seed) {
			succ4++
		}
	}
	if succ4 < succ1 {
		t.Fatalf("d=4 succeeded %d/10, d=1 succeeded %d/10: disjoint paths should not hurt", succ4, succ1)
	}
	if succ4 == 0 {
		t.Fatal("d=4 never succeeded; disjoint routing is broken")
	}
}
