package kademlia

import (
	"sort"

	"kadre/internal/id"
)

// The iterative lookup procedure (§4.1 of the paper): starting from the k
// closest known contacts, query alpha of them in parallel; each response
// contributes new, closer candidates; the lookup converges on the target
// and terminates once the k closest discovered nodes have all been
// successfully contacted (or no progress is possible), or — for value
// lookups — as soon as any node returns the value.

type lookupKind int

const (
	lookupNode lookupKind = iota + 1
	lookupValue
)

type candidateState int

const (
	stateUnqueried candidateState = iota + 1
	stateInflight
	stateResponded
	stateFailed
)

type candidate struct {
	contact Contact
	state   candidateState
}

type lookup struct {
	node   *Node
	target id.ID
	kind   lookupKind

	// candidates stays sorted ascending by XOR distance to target.
	candidates []*candidate
	seen       map[id.ID]bool
	inflight   int
	responded  int
	finished   bool

	// claim, when set, must approve every candidate before it joins this
	// lookup; disjoint-path lookups share one claim set across paths so
	// no two paths traverse the same node.
	claim func(id.ID) bool

	onComplete func(closest []Contact, responded int)
	onValue    func(value []byte)
}

func newLookup(n *Node, target id.ID, kind lookupKind, onValue func([]byte)) *lookup {
	return &lookup{
		node:    n,
		target:  target,
		kind:    kind,
		seen:    map[id.ID]bool{n.self.ID: true},
		onValue: onValue,
	}
}

func (l *lookup) start() {
	for _, c := range l.node.table.Closest(l.target, l.node.cfg.K) {
		l.addCandidate(c)
	}
	l.step()
}

// addCandidate inserts a newly discovered contact in distance order.
func (l *lookup) addCandidate(c Contact) {
	if l.seen[c.ID] {
		return
	}
	l.seen[c.ID] = true
	if l.claim != nil && !l.claim(c.ID) {
		return // another disjoint path owns this node
	}
	idx := sort.Search(len(l.candidates), func(i int) bool {
		return !l.candidates[i].contact.ID.CloserTo(l.target, c.ID)
	})
	l.candidates = append(l.candidates, nil)
	copy(l.candidates[idx+1:], l.candidates[idx:])
	l.candidates[idx] = &candidate{contact: c, state: stateUnqueried}
}

// step drives the state machine: fire queries up to the parallelism limit,
// and detect termination.
func (l *lookup) step() {
	if l.finished {
		return
	}
	if !l.node.running {
		l.finish()
		return
	}
	cfg := l.node.cfg
	if l.responded >= cfg.K || l.converged() {
		l.finish()
		return
	}
	for l.inflight < cfg.Alpha {
		next := l.nextUnqueried()
		if next == nil {
			break
		}
		l.query(next)
	}
	if l.inflight == 0 {
		// No queries in flight and none startable: no more progress.
		l.finish()
	}
}

// converged reports the standard termination rule: among the k closest
// non-failed candidates there is nothing left to query.
func (l *lookup) converged() bool {
	k := l.node.cfg.K
	checked := 0
	for _, c := range l.candidates {
		if c.state == stateFailed {
			continue
		}
		if c.state != stateResponded {
			return false
		}
		checked++
		if checked >= k {
			return true
		}
	}
	return checked > 0
}

func (l *lookup) nextUnqueried() *candidate {
	for _, c := range l.candidates {
		if c.state == stateUnqueried {
			return c
		}
	}
	return nil
}

func (l *lookup) query(c *candidate) {
	c.state = stateInflight
	l.inflight++
	var req any
	if l.kind == lookupValue {
		req = findValueRequest{Key: l.target}
	} else {
		req = findNodeRequest{Target: l.target}
	}
	l.node.sendRequest(c.contact, req, func(resp any, err error) {
		l.inflight--
		if err != nil {
			c.state = stateFailed
			l.step()
			return
		}
		c.state = stateResponded
		l.responded++
		switch r := resp.(type) {
		case findNodeResponse:
			for _, nc := range r.Contacts {
				l.addCandidate(nc)
			}
		case findValueResponse:
			if r.Found {
				if !l.finished {
					l.finished = true
					if l.onValue != nil {
						l.onValue(r.Value)
					}
				}
				return
			}
			for _, nc := range r.Contacts {
				l.addCandidate(nc)
			}
		}
		l.step()
	})
}

// finish reports the k closest successfully contacted nodes.
func (l *lookup) finish() {
	if l.finished {
		return
	}
	l.finished = true
	closest := make([]Contact, 0, l.node.cfg.K)
	for _, c := range l.candidates {
		if c.state != stateResponded {
			continue
		}
		closest = append(closest, c.contact)
		if len(closest) == l.node.cfg.K {
			break
		}
	}
	if l.onComplete != nil {
		l.onComplete(closest, l.responded)
	}
}
