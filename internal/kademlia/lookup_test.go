package kademlia

import (
	"sort"
	"testing"
	"time"

	"kadre/internal/id"
)

// trueClosest computes the ground-truth k closest live node ids to target.
func trueClosest(nodes []*Node, target id.ID, k int) []id.ID {
	var ids []id.ID
	for _, n := range nodes {
		if n.Running() {
			ids = append(ids, n.ID())
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].CloserTo(target, ids[j]) })
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

func TestLookupConvergesToTrueClosest(t *testing.T) {
	// In a settled, loss-free network, the iterative lookup must find a
	// large majority of the true k closest nodes, and the exact closest
	// node in nearly all cases (the lookup's defining guarantee). Let at
	// least two bucket-refresh cycles pass first: fresh-from-bootstrap
	// routing tables are legitimately spotty, which is the same setup
	// weakness the paper observes in Sims A-D.
	cfg := smallConfig() // k=5, refresh every 10 min
	c := newCluster(t, cfg, 40, 31)
	c.sim.RunUntil(c.sim.Now() + 25*time.Minute)
	r := c.sim.Rand()
	const trials = 15
	totalOverlap, totalWanted, exactClosest := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		target := id.Random(64, r)
		src := c.nodes[r.Intn(len(c.nodes))]
		var got []Contact
		src.Lookup(target, func(closest []Contact, _ int) { got = closest })
		c.sim.RunUntil(c.sim.Now() + time.Minute)
		want := trueClosest(c.nodes, target, 5)
		if len(got) == 0 {
			t.Fatalf("trial %d: lookup returned nothing", trial)
		}
		if got[0].ID.Equal(want[0]) {
			exactClosest++
		}
		wantSet := map[id.ID]bool{}
		for _, w := range want {
			wantSet[w] = true
		}
		for _, g := range got {
			if wantSet[g.ID] {
				totalOverlap++
			}
		}
		totalWanted += len(want)
	}
	if exactClosest < trials-2 {
		t.Fatalf("found the true closest node in only %d/%d trials", exactClosest, trials)
	}
	// Recall of the full k-closest set is bounded by routing-table
	// sparsity: with k=5 buckets and only maintenance traffic, tables
	// reference a thin slice of the network (this is the same effect the
	// paper leans on in Sims A-D). Require a solid majority rather than
	// perfection.
	if totalOverlap*10 < totalWanted*6 {
		t.Fatalf("recall %d/%d below 60%%", totalOverlap, totalWanted)
	}
}

func TestLookupTerminatesOnEmptyTable(t *testing.T) {
	c := newCluster(t, smallConfig(), 5, 32)
	// A brand-new node with nothing in its table: lookup must complete
	// immediately and empty rather than hang.
	n, err := NewNode(smallConfig(), 999, c.net)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	done := false
	n.Lookup(id.FromUint64(64, 1), func(closest []Contact, responded int) {
		done = true
		if len(closest) != 0 || responded != 0 {
			t.Errorf("empty-table lookup returned %v/%d", closest, responded)
		}
	})
	if !done {
		t.Fatal("lookup with empty table did not complete synchronously")
	}
}

func TestLookupRespondedCapsAtK(t *testing.T) {
	// The termination rule "k nodes successfully contacted" (§4.1).
	cfg := smallConfig() // k=5
	c := newCluster(t, cfg, 30, 33)
	var responded int
	c.nodes[2].Lookup(id.Random(64, c.sim.Rand()), func(_ []Contact, r int) { responded = r })
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if responded == 0 {
		t.Fatal("no nodes responded")
	}
	if responded > cfg.K+cfg.Alpha {
		t.Fatalf("responded %d far exceeds k=%d: termination rule broken", responded, cfg.K)
	}
}

func TestLookupSurvivesAllCandidatesDead(t *testing.T) {
	// Every node the source knows leaves; the lookup must fail cleanly.
	c := newCluster(t, smallConfig(), 10, 34)
	src := c.nodes[0]
	for _, n := range c.nodes[1:] {
		n.Leave()
	}
	done := false
	src.Lookup(id.FromUint64(64, 77), func(closest []Contact, responded int) {
		done = true
		if responded != 0 {
			t.Errorf("dead network responded %d times", responded)
		}
	})
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if !done {
		t.Fatal("lookup never terminated with dead candidates")
	}
}

func TestGetPrefersValueOverConvergence(t *testing.T) {
	// FIND_VALUE short-circuits the moment any node returns the value.
	c := newCluster(t, smallConfig(), 20, 35)
	key := id.FromUint64(64, 4242)
	c.nodes[5].Store(key, []byte("v"), nil)
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	found := false
	c.nodes[15].Get(key, func(v []byte, ok bool) { found = ok })
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if !found {
		t.Fatal("stored value not found")
	}
}
