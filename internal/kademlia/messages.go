package kademlia

import "kadre/internal/id"

// Wire messages. Every message travels inside an envelope carrying the
// sender's contact information, because receiving any message — request or
// response — updates the receiver's routing table (§4.1).

type envelope struct {
	RPCID      uint64
	From       Contact
	IsResponse bool
	Payload    any
}

// PING liveness probe.
type pingRequest struct{}
type pingResponse struct{}

// FIND_NODE: return the k closest contacts to Target.
type findNodeRequest struct {
	Target id.ID
}
type findNodeResponse struct {
	Contacts []Contact
}

// STORE: persist a key/value pair on the receiver.
type storeRequest struct {
	Key   id.ID
	Value []byte
}
type storeResponse struct{}

// FIND_VALUE: like FIND_NODE, but short-circuits with the value when the
// receiver has it.
type findValueRequest struct {
	Key id.ID
}
type findValueResponse struct {
	Found    bool
	Value    []byte
	Contacts []Contact
}
