package kademlia

import (
	"encoding/binary"
	"errors"
	"fmt"

	"kadre/internal/eventsim"
	"kadre/internal/id"
	"kadre/internal/simnet"
)

// ErrTimeout reports an RPC that received no response within the
// configured timeout — caused by message loss, a dead peer, or a detached
// address.
var ErrTimeout = errors.New("kademlia: rpc timeout")

// ErrNotRunning reports an operation on a node that has not started or has
// left the network.
var ErrNotRunning = errors.New("kademlia: node not running")

// NodeStats counts protocol-level activity on one node.
type NodeStats struct {
	RPCsSent         uint64
	RPCsAnswered     uint64
	ResponsesOK      uint64
	Timeouts         uint64
	LookupsStarted   uint64
	LookupsCompleted uint64
	StoresSent       uint64
	Refreshes        uint64
	Evictions        uint64
}

// Node is one Kademlia participant, driven entirely by simulation events.
// Create with NewNode, activate with Start, remove with Leave.
type Node struct {
	cfg   Config
	self  Contact
	sim   *eventsim.Simulator
	net   *simnet.Network
	table *RoutingTable

	storage map[id.ID][]byte

	nextRPC      uint64
	pending      map[uint64]*pendingRPC
	refreshTimer *eventsim.Timer
	running      bool
	compromised  bool
	stats        NodeStats
}

type pendingRPC struct {
	to      Contact
	timeout *eventsim.Timer
	done    func(resp any, err error)
}

// AddrID derives a node identifier from a network address the way the
// paper describes: by hashing the address with a cryptographic hash.
func AddrID(bits int, addr simnet.Addr) id.ID {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(addr))
	return id.Hash(bits, buf[:])
}

// NewNode creates a node with the identifier derived from addr. The node
// is inert until Start.
func NewNode(cfg Config, addr simnet.Addr, net *simnet.Network) (*Node, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return newNodeWithID(cfg, Contact{ID: AddrID(cfg.Bits, addr), Addr: addr}, net), nil
}

// NewNodeWithID creates a node with an explicit identifier. Tests use this
// to build deterministic topologies.
func NewNodeWithID(cfg Config, nodeID id.ID, addr simnet.Addr, net *simnet.Network) (*Node, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodeID.Bits() != cfg.Bits {
		return nil, fmt.Errorf("kademlia: id bit-length %d != configured %d", nodeID.Bits(), cfg.Bits)
	}
	return newNodeWithID(cfg, Contact{ID: nodeID, Addr: addr}, net), nil
}

func newNodeWithID(cfg Config, self Contact, net *simnet.Network) *Node {
	return &Node{
		cfg:     cfg,
		self:    self,
		sim:     net.Sim(),
		net:     net,
		table:   NewRoutingTable(self.ID, cfg),
		storage: make(map[id.ID][]byte),
		pending: make(map[uint64]*pendingRPC),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() id.ID { return n.self.ID }

// Addr returns the node's network address.
func (n *Node) Addr() simnet.Addr { return n.self.Addr }

// Contact returns the node's own contact record.
func (n *Node) Contact() Contact { return n.self }

// Table exposes the routing table for snapshotting and tests.
func (n *Node) Table() *RoutingTable { return n.table }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Running reports whether the node is attached to the network.
func (n *Node) Running() bool { return n.running }

// Config returns the node's effective (defaulted) configuration.
func (n *Node) Config() Config { return n.cfg }

// Start attaches the node to the network and schedules bucket refreshes.
func (n *Node) Start() error {
	if n.running {
		return fmt.Errorf("kademlia: node %s already running", n.self)
	}
	if err := n.net.Attach(n.self.Addr, n); err != nil {
		return fmt.Errorf("kademlia: start: %w", err)
	}
	n.running = true
	n.scheduleRefresh()
	return nil
}

// Leave silently detaches the node, modelling departure or crash: no
// goodbye messages, exactly like the paper's churn removals. Pending RPC
// callbacks are cancelled.
func (n *Node) Leave() {
	if !n.running {
		return
	}
	n.running = false
	n.net.Detach(n.self.Addr)
	if n.refreshTimer != nil {
		n.refreshTimer.Cancel()
		n.refreshTimer = nil
	}
	for rpcID, p := range n.pending {
		p.timeout.Cancel()
		delete(n.pending, rpcID)
	}
}

// Join bootstraps the node into a network via one known contact: the
// bootstrap node enters the routing table and a self-lookup advertises the
// joiner along the lookup path while harvesting contacts. done (optional)
// receives the number of nodes that responded during the self-lookup.
func (n *Node) Join(bootstrap Contact, done func(responded int)) error {
	if !n.running {
		return ErrNotRunning
	}
	if bootstrap.ID.Equal(n.self.ID) {
		return fmt.Errorf("kademlia: cannot bootstrap from self")
	}
	n.observe(bootstrap)
	n.Lookup(n.self.ID, func(contacts []Contact, responded int) {
		if done != nil {
			done(responded)
		}
	})
	return nil
}

// Lookup runs the iterative FIND_NODE procedure toward target and calls
// done with the closest responding contacts and the count of nodes
// successfully contacted.
func (n *Node) Lookup(target id.ID, done func(closest []Contact, responded int)) {
	if !n.running {
		if done != nil {
			done(nil, 0)
		}
		return
	}
	n.stats.LookupsStarted++
	l := newLookup(n, target, lookupNode, nil)
	l.onComplete = func(closest []Contact, responded int) {
		n.stats.LookupsCompleted++
		if done != nil {
			done(closest, responded)
		}
	}
	l.start()
}

// Store disseminates a key/value pair: it locates the k closest nodes to
// the key and sends each a STORE. done (optional) receives the number of
// STORE requests dispatched.
func (n *Node) Store(key id.ID, value []byte, done func(sent int)) {
	if !n.running {
		if done != nil {
			done(0)
		}
		return
	}
	n.Lookup(key, func(closest []Contact, _ int) {
		if !n.running {
			if done != nil {
				done(0)
			}
			return
		}
		for _, c := range closest {
			n.stats.StoresSent++
			n.sendRequest(c, storeRequest{Key: key, Value: value}, nil)
		}
		if done != nil {
			done(len(closest))
		}
	})
}

// Get runs the iterative FIND_VALUE procedure. done receives the value if
// any queried node had it.
func (n *Node) Get(key id.ID, done func(value []byte, ok bool)) {
	if !n.running {
		if done != nil {
			done(nil, false)
		}
		return
	}
	n.stats.LookupsStarted++
	l := newLookup(n, key, lookupValue, func(value []byte) {
		if done != nil {
			done(value, true)
		}
	})
	l.onComplete = func([]Contact, int) {
		n.stats.LookupsCompleted++
		if done != nil {
			done(nil, false)
		}
	}
	l.start()
}

// HasValue reports whether the node stores key locally.
func (n *Node) HasValue(key id.ID) bool {
	_, ok := n.storage[key]
	return ok
}

// SetCompromised toggles the attacker behaviour of the paper's system
// model (§3): a compromised node stays in the network — it keeps its
// place in other nodes' routing tables — but denies all requests, thereby
// hindering information exchange through it. Responses to its own
// outstanding requests are also ignored, so it contributes no routing
// work at all.
func (n *Node) SetCompromised(c bool) { n.compromised = c }

// Compromised reports whether the node is under attacker control.
func (n *Node) Compromised() bool { return n.compromised }

// Deliver implements simnet.Handler.
func (n *Node) Deliver(from simnet.Addr, payload any) {
	if !n.running || n.compromised {
		return
	}
	env, ok := payload.(envelope)
	if !ok {
		return // foreign traffic; ignore
	}
	// Any message from another node refreshes its routing-table standing.
	n.observe(env.From)
	if env.IsResponse {
		p, ok := n.pending[env.RPCID]
		if !ok || p.to.Addr != from {
			return // late, duplicate, or spoofed response
		}
		delete(n.pending, env.RPCID)
		p.timeout.Cancel()
		n.stats.ResponsesOK++
		n.table.RecordSuccess(env.From.ID)
		if p.done != nil {
			p.done(env.Payload, nil)
		}
		return
	}
	n.stats.RPCsAnswered++
	n.respond(env, n.handleRequest(env))
}

func (n *Node) handleRequest(env envelope) any {
	switch req := env.Payload.(type) {
	case pingRequest:
		return pingResponse{}
	case findNodeRequest:
		return findNodeResponse{Contacts: n.closestExcluding(req.Target, env.From.ID)}
	case storeRequest:
		n.storage[req.Key] = append([]byte(nil), req.Value...)
		return storeResponse{}
	case findValueRequest:
		if v, ok := n.storage[req.Key]; ok {
			return findValueResponse{Found: true, Value: append([]byte(nil), v...)}
		}
		return findValueResponse{Contacts: n.closestExcluding(req.Key, env.From.ID)}
	default:
		return nil
	}
}

// closestExcluding returns the k closest contacts to target, omitting the
// requester (it knows itself already).
func (n *Node) closestExcluding(target id.ID, requester id.ID) []Contact {
	all := n.table.Closest(target, n.cfg.K+1)
	out := make([]Contact, 0, len(all))
	for _, c := range all {
		if c.ID.Equal(requester) {
			continue
		}
		out = append(out, c)
		if len(out) == n.cfg.K {
			break
		}
	}
	return out
}

func (n *Node) respond(req envelope, payload any) {
	if payload == nil {
		return
	}
	n.net.Send(n.self.Addr, req.From.Addr, envelope{
		RPCID:      req.RPCID,
		From:       n.self,
		IsResponse: true,
		Payload:    payload,
	})
}

// sendRequest issues an RPC with timeout tracking. done may be nil for
// fire-and-forget semantics (the response still refreshes the routing
// table; a timeout still charges staleness).
func (n *Node) sendRequest(to Contact, payload any, done func(resp any, err error)) {
	if !n.running {
		if done != nil {
			done(nil, ErrNotRunning)
		}
		return
	}
	rpcID := n.nextRPC
	n.nextRPC++
	p := &pendingRPC{to: to, done: done}
	p.timeout = n.sim.MustSchedule(n.cfg.RPCTimeout, func() {
		if !n.running {
			return
		}
		if _, ok := n.pending[rpcID]; !ok {
			return
		}
		delete(n.pending, rpcID)
		n.stats.Timeouts++
		if n.table.RecordFailure(to.ID) {
			n.stats.Evictions++
		}
		if p.done != nil {
			p.done(nil, ErrTimeout)
		}
	})
	n.pending[rpcID] = p
	n.stats.RPCsSent++
	n.net.Send(n.self.Addr, to.Addr, envelope{
		RPCID:   rpcID,
		From:    n.self,
		Payload: payload,
	})
}

// observe feeds a contact sighting into the routing table and issues the
// liveness ping the table may request for a full bucket's least-recently-
// seen entry.
func (n *Node) observe(c Contact) {
	res := n.table.Observe(c)
	if res.NeedsPing == nil {
		return
	}
	probe := *res.NeedsPing
	n.sendRequest(probe, pingRequest{}, nil)
}

// scheduleRefresh arms the periodic bucket refresh (§4.1: every node
// refreshes each bucket hourly by looking up a random identifier from the
// bucket's range).
func (n *Node) scheduleRefresh() {
	if n.cfg.RefreshInterval <= 0 {
		return
	}
	n.refreshTimer = n.sim.MustSchedule(n.cfg.RefreshInterval, func() {
		if !n.running {
			return
		}
		n.refreshBuckets()
		n.scheduleRefresh()
	})
}

func (n *Node) refreshBuckets() {
	n.stats.Refreshes++
	for _, i := range n.table.RefreshTargets() {
		target := id.RandomInBucket(n.self.ID, i, n.sim.Rand())
		n.Lookup(target, nil)
	}
}
