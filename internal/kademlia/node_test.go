package kademlia

import (
	"testing"
	"time"

	"kadre/internal/eventsim"
	"kadre/internal/id"
	"kadre/internal/simnet"
)

// cluster spins up a network of n started nodes that have all joined via
// node 0 and lets it settle.
type cluster struct {
	sim   *eventsim.Simulator
	net   *simnet.Network
	nodes []*Node
}

func newCluster(t *testing.T, cfg Config, n int, seed int64) *cluster {
	t.Helper()
	sim := eventsim.New(seed)
	net := simnet.New(sim, simnet.Config{
		Latency: simnet.UniformLatency{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
	})
	c := &cluster{sim: sim, net: net}
	for i := 0; i < n; i++ {
		node, err := NewNode(cfg, simnet.Addr(i+1), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, node)
	}
	// Stagger joins slightly so bootstrap contacts are attached.
	for i := 1; i < n; i++ {
		node := c.nodes[i]
		bootstrap := c.nodes[0].Contact()
		sim.MustSchedule(time.Duration(i)*time.Second, func() {
			if err := node.Join(bootstrap, nil); err != nil {
				t.Errorf("join: %v", err)
			}
		})
	}
	sim.RunUntil(sim.Now() + time.Duration(n+60)*time.Second)
	return c
}

func smallConfig() Config {
	return Config{Bits: 64, K: 5, Alpha: 3, StalenessLimit: 1, RefreshInterval: 10 * time.Minute}
}

func TestJoinPopulatesRoutingTables(t *testing.T) {
	c := newCluster(t, smallConfig(), 20, 1)
	for i, n := range c.nodes {
		if n.Table().Size() == 0 {
			t.Errorf("node %d has empty routing table", i)
		}
	}
	// The bootstrap node must have learned about joiners.
	if c.nodes[0].Table().Size() < 5 {
		t.Errorf("bootstrap knows only %d contacts", c.nodes[0].Table().Size())
	}
}

func TestLookupFindsClosestNodes(t *testing.T) {
	c := newCluster(t, smallConfig(), 30, 2)
	// Lookup from an arbitrary node toward another node's exact id.
	target := c.nodes[17].ID()
	var got []Contact
	c.nodes[3].Lookup(target, func(closest []Contact, responded int) {
		got = closest
	})
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if len(got) == 0 {
		t.Fatal("lookup returned nothing")
	}
	// The target itself must be the closest result: it exists and
	// distance 0 beats everything.
	if !got[0].ID.Equal(target) {
		t.Fatalf("closest = %v, want target %v", got[0].ID, target)
	}
}

func TestStoreAndGet(t *testing.T) {
	c := newCluster(t, smallConfig(), 25, 3)
	key := id.FromUint64(64, 0xDEADBEEF)
	value := []byte("cps sensor state")
	var stored int
	c.nodes[2].Store(key, value, func(sent int) { stored = sent })
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if stored == 0 {
		t.Fatal("store dispatched to zero nodes")
	}
	holders := 0
	for _, n := range c.nodes {
		if n.HasValue(key) {
			holders++
		}
	}
	if holders == 0 {
		t.Fatal("no node holds the value")
	}
	var got []byte
	var ok bool
	done := false
	c.nodes[19].Get(key, func(v []byte, found bool) {
		got, ok, done = v, found, true
	})
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if !done {
		t.Fatal("get never completed")
	}
	if !ok || string(got) != string(value) {
		t.Fatalf("get = %q, %v", got, ok)
	}
}

func TestGetMissingKey(t *testing.T) {
	c := newCluster(t, smallConfig(), 10, 4)
	var ok, done bool
	c.nodes[1].Get(id.FromUint64(64, 0xABCDEF), func(_ []byte, found bool) {
		ok, done = found, true
	})
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	if !done {
		t.Fatal("get never completed")
	}
	if ok {
		t.Fatal("found a value that was never stored")
	}
}

func TestLeaveStopsTraffic(t *testing.T) {
	c := newCluster(t, smallConfig(), 10, 5)
	n := c.nodes[4]
	n.Leave()
	if n.Running() {
		t.Fatal("node still running after Leave")
	}
	if c.net.Attached(n.Addr()) {
		t.Fatal("node still attached after Leave")
	}
	// Another Leave is a harmless no-op.
	n.Leave()
	// Lookups on a departed node complete immediately and empty.
	called := false
	n.Lookup(id.FromUint64(64, 1), func(cs []Contact, _ int) {
		called = true
		if len(cs) != 0 {
			t.Errorf("departed node returned contacts: %v", cs)
		}
	})
	if !called {
		t.Fatal("lookup callback not invoked synchronously on dead node")
	}
}

func TestTimeoutEvictsDepartedContact(t *testing.T) {
	cfg := smallConfig() // s = 1: a single failure evicts
	c := newCluster(t, cfg, 12, 6)
	victim := c.nodes[6]
	victimID := victim.ID()
	// Find a node that knows the victim.
	var witness *Node
	for _, n := range c.nodes {
		if n != victim && n.Table().Contains(victimID) {
			witness = n
			break
		}
	}
	if witness == nil {
		t.Fatal("no node knows the victim")
	}
	victim.Leave()
	// Trigger communication: lookup toward the victim's id forces the
	// witness (and others) to query it and time out.
	witness.Lookup(victimID, nil)
	c.sim.RunUntil(c.sim.Now() + time.Minute)
	// With s=1 one timeout marks the contact stale; it is evicted as soon
	// as a replacement exists and retained (stale) otherwise.
	if witness.Table().Contains(victimID) && !witness.Table().IsStale(victimID) {
		t.Fatal("departed contact neither evicted nor stale after timeout with s=1")
	}
	if witness.Stats().Timeouts == 0 {
		t.Fatal("no timeouts recorded")
	}
}

func TestStalenessLimitDelaysEviction(t *testing.T) {
	// With s=5 a single failed exchange must NOT evict.
	cfg := smallConfig()
	cfg.StalenessLimit = 5
	c := newCluster(t, cfg, 12, 7)
	victim := c.nodes[6]
	victimID := victim.ID()
	var witness *Node
	for _, n := range c.nodes {
		if n != victim && n.Table().Contains(victimID) {
			witness = n
			break
		}
	}
	if witness == nil {
		t.Fatal("no node knows the victim")
	}
	victim.Leave()
	witness.Lookup(victimID, nil)
	c.sim.RunUntil(c.sim.Now() + 30*time.Second)
	if !witness.Table().Contains(victimID) {
		t.Fatal("contact evicted before s failures with s=5")
	}
	if witness.Table().IsStale(victimID) {
		t.Fatal("contact marked stale before s failures with s=5")
	}
}

func TestBucketRefreshDiscoversContacts(t *testing.T) {
	// Node A only knows the bootstrap; after a refresh cycle it should
	// know considerably more.
	cfg := smallConfig()
	cfg.RefreshInterval = 5 * time.Minute
	c := newCluster(t, cfg, 30, 8)
	sizes := make([]int, len(c.nodes))
	for i, n := range c.nodes {
		sizes[i] = n.Table().Size()
	}
	c.sim.RunUntil(c.sim.Now() + 15*time.Minute)
	grew := 0
	for i, n := range c.nodes {
		if n.Table().Size() > sizes[i] {
			grew++
		}
		if n.Stats().Refreshes == 0 {
			t.Fatalf("node %d never refreshed", i)
		}
	}
	if grew == 0 {
		t.Error("no routing table grew after refresh cycles")
	}
}

func TestMessageLossCausesTimeouts(t *testing.T) {
	sim := eventsim.New(9)
	net := simnet.New(sim, simnet.Config{
		Latency: simnet.ConstantLatency{D: 20 * time.Millisecond},
		Loss:    simnet.UniformLoss{P: 0.5},
	})
	cfg := smallConfig()
	var nodes []*Node
	for i := 0; i < 15; i++ {
		n, err := NewNode(cfg, simnet.Addr(i+1), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 1; i < len(nodes); i++ {
		node := nodes[i]
		sim.MustSchedule(time.Duration(i)*time.Second, func() {
			_ = node.Join(nodes[0].Contact(), nil)
		})
	}
	sim.RunUntil(10 * time.Minute)
	var timeouts uint64
	for _, n := range nodes {
		timeouts += n.Stats().Timeouts
	}
	if timeouts == 0 {
		t.Fatal("50% loss should cause timeouts")
	}
}

func TestJoinErrors(t *testing.T) {
	sim := eventsim.New(10)
	net := simnet.New(sim, simnet.Config{})
	n, err := NewNode(smallConfig(), 1, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Join(Contact{ID: id.FromUint64(64, 5), Addr: 5}, nil); err != ErrNotRunning {
		t.Fatalf("join before start: %v, want ErrNotRunning", err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.Join(n.Contact(), nil); err == nil {
		t.Fatal("self-bootstrap should fail")
	}
	if err := n.Start(); err == nil {
		t.Fatal("double start should fail")
	}
}

func TestNewNodeValidation(t *testing.T) {
	sim := eventsim.New(11)
	net := simnet.New(sim, simnet.Config{})
	if _, err := NewNode(Config{Bits: 7}, 1, net); err == nil {
		t.Error("invalid bits should fail")
	}
	if _, err := NewNode(Config{K: -1}, 1, net); err == nil {
		t.Error("negative k should fail")
	}
	if _, err := NewNodeWithID(Config{Bits: 64}, id.FromUint64(128, 1), 1, net); err == nil {
		t.Error("id/config bit mismatch should fail")
	}
}

func TestAddrIDDeterministic(t *testing.T) {
	a := AddrID(160, 42)
	b := AddrID(160, 42)
	c := AddrID(160, 43)
	if !a.Equal(b) {
		t.Error("AddrID not deterministic")
	}
	if a.Equal(c) {
		t.Error("distinct addresses collide")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Bits != 160 || cfg.K != 20 || cfg.Alpha != 3 || cfg.StalenessLimit != 5 {
		t.Fatalf("defaults %+v do not match the paper's b=160, k=20, alpha=3, s=5", cfg)
	}
	if cfg.RefreshInterval != 60*time.Minute {
		t.Fatalf("refresh interval %v, want 60m", cfg.RefreshInterval)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestsRefreshSenderInTable(t *testing.T) {
	// Receiving a request must insert the sender into the receiver's
	// table ("nodes attempt to add each other").
	sim := eventsim.New(12)
	net := simnet.New(sim, simnet.Config{Latency: simnet.ConstantLatency{D: 10 * time.Millisecond}})
	cfg := smallConfig()
	a, _ := NewNode(cfg, 1, net)
	b, _ := NewNode(cfg, 2, net)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	a.observe(b.Contact())
	a.Lookup(a.ID(), nil)
	sim.RunUntil(time.Minute)
	if !b.Table().Contains(a.ID()) {
		t.Fatal("receiver did not learn the requester")
	}
	if !a.Table().Contains(b.ID()) {
		t.Fatal("requester did not retain the responder")
	}
}
