package kademlia

import (
	"fmt"
	"sort"

	"kadre/internal/id"
	"kadre/internal/simnet"
)

// Contact is a routing-table entry: another node's identifier and network
// address.
type Contact struct {
	ID   id.ID
	Addr simnet.Addr
}

// String implements fmt.Stringer.
func (c Contact) String() string {
	return fmt.Sprintf("%s@%d", c.ID, c.Addr)
}

// entry is a live routing-table slot with staleness bookkeeping.
type entry struct {
	contact Contact
	// fails counts consecutive failed communication attempts; the contact
	// is evicted when fails reaches the staleness limit s.
	fails int
	// pingInFlight suppresses duplicate liveness probes for this entry.
	pingInFlight bool
}

// bucket is one k-bucket: entries in least-recently-seen-first order plus
// a bounded replacement cache of contacts that arrived while full.
type bucket struct {
	entries      []*entry
	replacements []Contact // oldest first; newest appended at the end
}

func (b *bucket) find(nodeID id.ID) int {
	for i, e := range b.entries {
		if e.contact.ID.Equal(nodeID) {
			return i
		}
	}
	return -1
}

// findStale returns the index of the first entry with fails >= limit that
// has no ping outstanding, or -1.
func (b *bucket) findStale(limit int) int {
	for i, e := range b.entries {
		if e.fails >= limit && !e.pingInFlight {
			return i
		}
	}
	return -1
}

func (b *bucket) removeReplacement(nodeID id.ID) {
	for i, c := range b.replacements {
		if c.ID.Equal(nodeID) {
			b.replacements = append(b.replacements[:i], b.replacements[i+1:]...)
			return
		}
	}
}

// RoutingTable is a node's view of the network: Bits k-buckets indexed by
// XOR distance (bucket i holds contacts with 2^i <= dist < 2^(i+1)).
// It is not safe for concurrent use; the simulation is single-threaded.
type RoutingTable struct {
	self    id.ID
	cfg     Config
	buckets []*bucket
	size    int
}

// NewRoutingTable builds an empty table for the given owner.
func NewRoutingTable(self id.ID, cfg Config) *RoutingTable {
	cfg = cfg.WithDefaults()
	buckets := make([]*bucket, cfg.Bits)
	for i := range buckets {
		buckets[i] = &bucket{}
	}
	return &RoutingTable{self: self, cfg: cfg, buckets: buckets}
}

// Self returns the owner's identifier.
func (rt *RoutingTable) Self() id.ID { return rt.self }

// Size returns the number of live contacts across all buckets.
func (rt *RoutingTable) Size() int { return rt.size }

// Contains reports whether nodeID is a live contact.
func (rt *RoutingTable) Contains(nodeID id.ID) bool {
	if nodeID.Equal(rt.self) {
		return false
	}
	b := rt.bucketFor(nodeID)
	return b != nil && b.find(nodeID) >= 0
}

// ObserveResult reports the consequences of an Observe call.
type ObserveResult struct {
	// Inserted is true when the contact now occupies a bucket slot.
	Inserted bool
	// NeedsPing, when non-zero, is the least-recently-seen entry of the
	// full bucket; the caller should ping it to test liveness. The entry
	// is marked ping-in-flight until RecordSuccess or RecordFailure.
	NeedsPing *Contact
}

// Observe records direct communication with a contact, per the protocol:
// "when a Kademlia node receives any message (request or reply) from
// another node, it updates the appropriate k-bucket for the sender's node
// ID". A known contact moves to most-recently-seen and its failure count
// resets. An unknown contact fills a free slot, or directly replaces a
// stale (failure count >= s) entry of a full bucket; otherwise it joins
// the replacement cache and the least-recently-seen live entry is
// nominated for a liveness ping.
func (rt *RoutingTable) Observe(c Contact) ObserveResult {
	if c.ID.Equal(rt.self) || c.ID.IsZeroValue() {
		return ObserveResult{}
	}
	b := rt.bucketFor(c.ID)
	if i := b.find(c.ID); i >= 0 {
		e := b.entries[i]
		e.fails = 0
		e.contact = c // refresh address
		b.entries = append(b.entries[:i], b.entries[i+1:]...)
		b.entries = append(b.entries, e)
		return ObserveResult{Inserted: true}
	}
	if len(b.entries) < rt.cfg.K {
		b.entries = append(b.entries, &entry{contact: c})
		rt.size++
		return ObserveResult{Inserted: true}
	}
	// Bucket full: a stale entry (>= s consecutive failures) is replaced
	// outright by the newcomer we just heard from.
	if i := b.findStale(rt.cfg.StalenessLimit); i >= 0 {
		b.entries = append(b.entries[:i], b.entries[i+1:]...)
		b.entries = append(b.entries, &entry{contact: c})
		return ObserveResult{Inserted: true}
	}
	// Otherwise stash in the replacement cache (dropping the oldest
	// beyond capacity) and nominate the least-recently-seen entry for a
	// liveness check.
	b.removeReplacement(c.ID)
	b.replacements = append(b.replacements, c)
	if len(b.replacements) > rt.cfg.ReplacementCacheSize {
		b.replacements = b.replacements[1:]
	}
	lrs := b.entries[0]
	if lrs.pingInFlight {
		return ObserveResult{}
	}
	lrs.pingInFlight = true
	probe := lrs.contact
	return ObserveResult{NeedsPing: &probe}
}

// RecordSuccess resets a contact's staleness budget and marks it
// most-recently-seen after a successful exchange initiated by us.
func (rt *RoutingTable) RecordSuccess(nodeID id.ID) {
	if nodeID.Equal(rt.self) {
		return
	}
	b := rt.bucketFor(nodeID)
	i := b.find(nodeID)
	if i < 0 {
		return
	}
	e := b.entries[i]
	e.fails = 0
	e.pingInFlight = false
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	b.entries = append(b.entries, e)
}

// RecordFailure charges one failed communication attempt against a
// contact. After s consecutive failures the contact is stale: it is
// evicted in favour of the freshest replacement-cache contact when one
// exists. With an empty replacement cache the stale entry is retained —
// a node never evicts into a hole, exactly like the Mainline DHT (BEP 5,
// the paper's reference [17]) keeps "bad" nodes until replacements
// arrive. Retained stale entries are the first to be replaced by any
// newly observed contact, and a later successful exchange fully
// rehabilitates them. RecordFailure reports whether the contact was
// evicted.
//
// This retention rule is what lets message loss *increase* connectivity
// (the paper's Simulation J): failures rotate bucket membership instead
// of shrinking tables, so the topology re-wires toward a more even
// in-degree distribution.
func (rt *RoutingTable) RecordFailure(nodeID id.ID) bool {
	if nodeID.Equal(rt.self) {
		return false
	}
	b := rt.bucketFor(nodeID)
	i := b.find(nodeID)
	if i < 0 {
		return false
	}
	e := b.entries[i]
	e.pingInFlight = false
	if e.fails < rt.cfg.StalenessLimit {
		e.fails++ // cap the counter at s; staleness is already decided
	}
	if e.fails < rt.cfg.StalenessLimit {
		return false
	}
	n := len(b.replacements)
	if n == 0 {
		return false // no substitute: keep the stale entry (BEP 5 rule)
	}
	promoted := b.replacements[n-1]
	b.replacements = b.replacements[:n-1]
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	b.entries = append(b.entries, &entry{contact: promoted})
	return true
}

// IsStale reports whether a contact is present but marked stale (failure
// count at the staleness limit).
func (rt *RoutingTable) IsStale(nodeID id.ID) bool {
	if nodeID.Equal(rt.self) {
		return false
	}
	b := rt.bucketFor(nodeID)
	i := b.find(nodeID)
	return i >= 0 && b.entries[i].fails >= rt.cfg.StalenessLimit
}

// StaleCount returns the number of stale entries across all buckets.
func (rt *RoutingTable) StaleCount() int {
	count := 0
	for _, b := range rt.buckets {
		for _, e := range b.entries {
			if e.fails >= rt.cfg.StalenessLimit {
				count++
			}
		}
	}
	return count
}

// Remove unconditionally drops a contact (used by tests and by node
// shutdown paths); the replacement cache is not consulted.
func (rt *RoutingTable) Remove(nodeID id.ID) bool {
	if nodeID.Equal(rt.self) {
		return false
	}
	b := rt.bucketFor(nodeID)
	i := b.find(nodeID)
	if i < 0 {
		return false
	}
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	rt.size--
	return true
}

// Closest returns up to count live contacts closest to target under the
// XOR metric, ascending by distance.
func (rt *RoutingTable) Closest(target id.ID, count int) []Contact {
	all := rt.Contacts()
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.CloserTo(target, all[j].ID)
	})
	if len(all) > count {
		all = all[:count]
	}
	return all
}

// Contacts returns every live contact, bucket by bucket.
func (rt *RoutingTable) Contacts() []Contact {
	out := make([]Contact, 0, rt.size)
	for _, b := range rt.buckets {
		for _, e := range b.entries {
			out = append(out, e.contact)
		}
	}
	return out
}

// BucketLen returns the number of live contacts in bucket i.
func (rt *RoutingTable) BucketLen(i int) int {
	return len(rt.buckets[i].entries)
}

// BucketCount returns the number of buckets (the id bit-length).
func (rt *RoutingTable) BucketCount() int { return len(rt.buckets) }

// RefreshTargets returns the bucket indexes that periodic refresh should
// probe: every bucket from just below the lowest non-empty one upward.
// Refreshing all Bits buckets (the literal protocol) would waste most
// lookups on distance ranges where no nodes can exist; this covers every
// populated range plus one deeper bucket, and is documented as a
// substitution in DESIGN.md.
func (rt *RoutingTable) RefreshTargets() []int {
	lowest := -1
	for i, b := range rt.buckets {
		if len(b.entries) > 0 {
			lowest = i
			break
		}
	}
	if lowest < 0 {
		return nil
	}
	if lowest > 0 {
		lowest--
	}
	out := make([]int, 0, len(rt.buckets)-lowest)
	for i := lowest; i < len(rt.buckets); i++ {
		out = append(out, i)
	}
	return out
}

func (rt *RoutingTable) bucketFor(nodeID id.ID) *bucket {
	i := rt.self.BucketIndex(nodeID)
	if i < 0 {
		return nil
	}
	return rt.buckets[i]
}
