package kademlia

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kadre/internal/id"
	"kadre/internal/simnet"
)

func testConfig() Config {
	return Config{Bits: 64, K: 4, Alpha: 2, StalenessLimit: 2}.WithDefaults()
}

func contact(v uint64) Contact {
	return Contact{ID: id.FromUint64(64, v), Addr: simnet.Addr(v)}
}

func TestObserveInsertAndUpdate(t *testing.T) {
	rt := NewRoutingTable(id.FromUint64(64, 0), testConfig())
	c := contact(5)
	res := rt.Observe(c)
	if !res.Inserted || res.NeedsPing != nil {
		t.Fatalf("first observe: %+v", res)
	}
	if !rt.Contains(c.ID) || rt.Size() != 1 {
		t.Fatal("contact not inserted")
	}
	// Observing again must not duplicate.
	rt.Observe(c)
	if rt.Size() != 1 {
		t.Fatal("duplicate insert")
	}
}

func TestObserveIgnoresSelfAndZero(t *testing.T) {
	self := id.FromUint64(64, 7)
	rt := NewRoutingTable(self, testConfig())
	if res := rt.Observe(Contact{ID: self, Addr: 7}); res.Inserted {
		t.Error("self must not be inserted")
	}
	if res := rt.Observe(Contact{}); res.Inserted {
		t.Error("zero-value contact must not be inserted")
	}
	if rt.Size() != 0 {
		t.Fatal("table should be empty")
	}
}

func TestBucketPlacement(t *testing.T) {
	self := id.FromUint64(64, 0)
	rt := NewRoutingTable(self, testConfig())
	// Distance 1 -> bucket 0; distance 2,3 -> bucket 1; 4..7 -> bucket 2.
	rt.Observe(contact(1))
	rt.Observe(contact(2))
	rt.Observe(contact(3))
	rt.Observe(contact(5))
	if rt.BucketLen(0) != 1 || rt.BucketLen(1) != 2 || rt.BucketLen(2) != 1 {
		t.Fatalf("bucket lens = %d,%d,%d", rt.BucketLen(0), rt.BucketLen(1), rt.BucketLen(2))
	}
}

func TestFullBucketNominatesLRSPing(t *testing.T) {
	// k=4; bucket 63 covers the upper half of the id space.
	self := id.FromUint64(64, 0)
	rt := NewRoutingTable(self, testConfig())
	base := uint64(1) << 63
	for i := uint64(0); i < 4; i++ {
		rt.Observe(contact(base + i))
	}
	if rt.Size() != 4 {
		t.Fatal("setup failed")
	}
	newcomer := contact(base + 100)
	res := rt.Observe(newcomer)
	if res.Inserted {
		t.Fatal("full bucket must not insert directly")
	}
	if res.NeedsPing == nil || !res.NeedsPing.ID.Equal(id.FromUint64(64, base)) {
		t.Fatalf("NeedsPing = %v, want least-recently-seen (first inserted)", res.NeedsPing)
	}
	// A second observation while the ping is in flight must not nominate
	// another ping.
	if res2 := rt.Observe(contact(base + 101)); res2.NeedsPing != nil {
		t.Fatal("duplicate ping nomination while one is in flight")
	}
}

func TestStalenessEvictionPromotesReplacement(t *testing.T) {
	self := id.FromUint64(64, 0)
	cfg := testConfig() // s = 2
	rt := NewRoutingTable(self, cfg)
	base := uint64(1) << 63
	for i := uint64(0); i < 4; i++ {
		rt.Observe(contact(base + i))
	}
	newcomer := contact(base + 100)
	rt.Observe(newcomer) // lands in replacement cache
	victim := id.FromUint64(64, base)
	if rt.RecordFailure(victim) {
		t.Fatal("first failure should not evict with s=2")
	}
	if !rt.RecordFailure(victim) {
		t.Fatal("second failure should evict (replacement available)")
	}
	if rt.Contains(victim) {
		t.Fatal("victim still present")
	}
	if !rt.Contains(newcomer.ID) {
		t.Fatal("replacement not promoted")
	}
	if rt.Size() != 4 {
		t.Fatalf("size = %d, want 4", rt.Size())
	}
}

func TestStaleEntryRetainedWithoutReplacement(t *testing.T) {
	// The BEP 5 rule: no eviction into a hole. A stale contact in a
	// bucket with an empty replacement cache stays.
	self := id.FromUint64(64, 0)
	rt := NewRoutingTable(self, testConfig()) // s=2
	c := contact(5)
	rt.Observe(c)
	if rt.RecordFailure(c.ID) || rt.RecordFailure(c.ID) || rt.RecordFailure(c.ID) {
		t.Fatal("evicted without replacement")
	}
	if !rt.Contains(c.ID) {
		t.Fatal("contact vanished")
	}
	if !rt.IsStale(c.ID) {
		t.Fatal("contact should be stale")
	}
}

func TestRecordSuccessResetsFailureCount(t *testing.T) {
	rt := NewRoutingTable(id.FromUint64(64, 0), testConfig()) // s = 2
	c := contact(9)
	rt.Observe(c)
	rt.RecordFailure(c.ID)
	rt.RecordSuccess(c.ID) // resets the budget
	rt.RecordFailure(c.ID)
	if rt.IsStale(c.ID) {
		t.Fatal("stale after success+single failure with s=2")
	}
	rt.RecordFailure(c.ID)
	if !rt.IsStale(c.ID) {
		t.Fatal("two consecutive failures should mark stale")
	}
	// No replacement available: the stale entry is retained (BEP 5 rule).
	if !rt.Contains(c.ID) {
		t.Fatal("stale entry evicted into a hole")
	}
	// A new observation of a different contact in the same bucket slot
	// range would replace it only when the bucket is full; success
	// rehabilitates.
	rt.RecordSuccess(c.ID)
	if rt.IsStale(c.ID) {
		t.Fatal("success did not rehabilitate the stale entry")
	}
}

func TestStaleEntryReplacedByNewObservation(t *testing.T) {
	// Full bucket, one entry goes stale, then a newcomer is observed: the
	// stale entry is replaced outright.
	self := id.FromUint64(64, 0)
	rt := NewRoutingTable(self, testConfig()) // k=4, s=2
	base := uint64(1) << 63
	for i := uint64(0); i < 4; i++ {
		rt.Observe(contact(base + i))
	}
	victim := id.FromUint64(64, base)
	rt.RecordFailure(victim)
	rt.RecordFailure(victim)
	if !rt.IsStale(victim) {
		t.Fatal("victim should be stale")
	}
	newcomer := contact(base + 50)
	res := rt.Observe(newcomer)
	if !res.Inserted {
		t.Fatal("newcomer should replace the stale entry")
	}
	if rt.Contains(victim) {
		t.Fatal("stale entry survived replacement")
	}
	if rt.Size() != 4 {
		t.Fatalf("size = %d, want 4", rt.Size())
	}
}

func TestStaleCount(t *testing.T) {
	rt := NewRoutingTable(id.FromUint64(64, 0), testConfig()) // s=2
	rt.Observe(contact(3))
	rt.Observe(contact(9))
	if rt.StaleCount() != 0 {
		t.Fatal("fresh table has stale entries")
	}
	rt.RecordFailure(id.FromUint64(64, 3))
	rt.RecordFailure(id.FromUint64(64, 3))
	if rt.StaleCount() != 1 {
		t.Fatalf("StaleCount = %d, want 1", rt.StaleCount())
	}
}

func TestRecordFailureUnknownContact(t *testing.T) {
	rt := NewRoutingTable(id.FromUint64(64, 0), testConfig())
	if rt.RecordFailure(id.FromUint64(64, 42)) {
		t.Fatal("unknown contact cannot be evicted")
	}
}

func TestObserveMovesToMostRecent(t *testing.T) {
	self := id.FromUint64(64, 0)
	rt := NewRoutingTable(self, testConfig())
	base := uint64(1) << 63
	for i := uint64(0); i < 4; i++ {
		rt.Observe(contact(base + i))
	}
	// Refresh the would-be victim: now base+1 is least recently seen.
	rt.Observe(contact(base))
	res := rt.Observe(contact(base + 100))
	if res.NeedsPing == nil || !res.NeedsPing.ID.Equal(id.FromUint64(64, base+1)) {
		t.Fatalf("NeedsPing = %v, want base+1", res.NeedsPing)
	}
}

func TestReplacementCacheBounded(t *testing.T) {
	cfg := testConfig()
	cfg.ReplacementCacheSize = 2
	self := id.FromUint64(64, 0)
	rt := NewRoutingTable(self, cfg)
	base := uint64(1) << 63
	for i := uint64(0); i < 10; i++ {
		rt.Observe(contact(base + i))
	}
	b := rt.buckets[63]
	if len(b.replacements) != 2 {
		t.Fatalf("replacement cache size = %d, want 2", len(b.replacements))
	}
	// The freshest arrivals are retained.
	if !b.replacements[1].ID.Equal(id.FromUint64(64, base+9)) {
		t.Fatalf("freshest replacement = %v", b.replacements[1])
	}
}

func TestClosestOrdering(t *testing.T) {
	self := id.FromUint64(64, 0)
	rt := NewRoutingTable(self, testConfig())
	for _, v := range []uint64{100, 7, 1, 50, 31, 200} {
		rt.Observe(contact(v))
	}
	target := id.FromUint64(64, 6)
	got := rt.Closest(target, 3)
	if len(got) != 3 {
		t.Fatalf("Closest returned %d contacts", len(got))
	}
	// dist(7,6)=1, dist(1,6)=7, dist(31,6)=25: those are the 3 closest.
	want := []uint64{7, 1, 31}
	for i, w := range want {
		if !got[i].ID.Equal(id.FromUint64(64, w)) {
			t.Fatalf("Closest[%d] = %v, want %d", i, got[i].ID, w)
		}
	}
}

func TestClosestFewerThanRequested(t *testing.T) {
	rt := NewRoutingTable(id.FromUint64(64, 0), testConfig())
	rt.Observe(contact(1))
	if got := rt.Closest(id.FromUint64(64, 9), 10); len(got) != 1 {
		t.Fatalf("Closest = %d contacts, want 1", len(got))
	}
}

func TestRemove(t *testing.T) {
	rt := NewRoutingTable(id.FromUint64(64, 0), testConfig())
	c := contact(3)
	rt.Observe(c)
	if !rt.Remove(c.ID) {
		t.Fatal("Remove failed")
	}
	if rt.Remove(c.ID) {
		t.Fatal("double remove should report false")
	}
	if rt.Size() != 0 {
		t.Fatal("size not updated")
	}
}

func TestRefreshTargets(t *testing.T) {
	rt := NewRoutingTable(id.FromUint64(64, 0), testConfig())
	if rt.RefreshTargets() != nil {
		t.Fatal("empty table has no refresh targets")
	}
	rt.Observe(contact(1 << 10)) // bucket 10
	targets := rt.RefreshTargets()
	if len(targets) == 0 || targets[0] != 9 {
		t.Fatalf("targets start at %v, want 9 (one below lowest non-empty)", targets)
	}
	if targets[len(targets)-1] != 63 {
		t.Fatalf("targets end at %v, want 63", targets[len(targets)-1])
	}
	// Lowest bucket occupied: no underflow.
	rt2 := NewRoutingTable(id.FromUint64(64, 0), testConfig())
	rt2.Observe(contact(1)) // bucket 0
	if got := rt2.RefreshTargets(); got[0] != 0 {
		t.Fatalf("targets start at %v, want 0", got[0])
	}
}

func TestContactsMatchesSize(t *testing.T) {
	f := func(vals []uint64) bool {
		rt := NewRoutingTable(id.FromUint64(64, 0), testConfig())
		for _, v := range vals {
			if v != 0 {
				rt.Observe(contact(v))
			}
		}
		return len(rt.Contacts()) == rt.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketInvariantProperty(t *testing.T) {
	// Property: every live contact sits in the bucket matching its XOR
	// distance, and no bucket exceeds k entries.
	r := rand.New(rand.NewSource(6))
	self := id.Random(64, r)
	cfg := testConfig()
	rt := NewRoutingTable(self, cfg)
	for i := 0; i < 500; i++ {
		rt.Observe(Contact{ID: id.Random(64, r), Addr: simnet.Addr(i)})
	}
	total := 0
	for i := 0; i < rt.BucketCount(); i++ {
		n := rt.BucketLen(i)
		total += n
		if n > cfg.K {
			t.Fatalf("bucket %d overflows: %d > k=%d", i, n, cfg.K)
		}
		for _, e := range rt.buckets[i].entries {
			if got := self.BucketIndex(e.contact.ID); got != i {
				t.Fatalf("contact %v in bucket %d, belongs in %d", e.contact.ID, i, got)
			}
		}
	}
	if total != rt.Size() {
		t.Fatalf("size %d != bucket total %d", rt.Size(), total)
	}
}
