package maxflow

import "fmt"

// DinicSolver implements Dinic's blocking-flow algorithm. On unit-capacity
// graphs — which is all the connectivity pipeline ever produces, since
// Even's transformation keeps every capacity at 1 — it runs in
// O(E*sqrt(V)), asymptotically better than push-relabel's bound. Its
// MaxFlowLimit stops exactly at the cap (the flow counter rises one
// augmenting path at a time), and its residual-reachability API is what
// cut extraction needs — the cut-mode network is always Dinic. For the
// sweeps themselves, the fixed-root HaoOrlinSolver wins on wall-clock
// (see BenchmarkMaxflowAlgorithms and the engine defaults); Dinic
// remains the choice for exact cap semantics, single-pair queries
// (connectivity.Pair's default), and cut extraction.
//
// Two sweep-oriented optimizations apply on top of the textbook
// algorithm. Queries restore only the residual capacities they actually
// changed (the arcs of their augmenting paths) instead of rewriting the
// whole capacity array. And PrepareSource caches the first-phase BFS
// level graph of a fixed source: on a fresh residual that BFS is
// independent of the target, so a sweep evaluating one source against
// hundreds of targets pays for it once.
type DinicSolver struct {
	st    arcStore
	level []int32
	iter  []int32
	queue []int32
	// stack for iterative DFS: the arc taken into each path vertex.
	pathArc []int32
	// preparedSrc/srcLevel cache the fresh-residual BFS levels from one
	// source (see PrepareSource); preparedSrc is -1 when invalid.
	preparedSrc int32
	srcLevel    []int32
}

var _ Solver = (*DinicSolver)(nil)

// NewDinic builds a Dinic solver for the given graph.
func NewDinic(n int, edges []Edge) *DinicSolver {
	return NewDinicSource(n, EdgeSlice(edges))
}

// NewDinicSource builds a Dinic solver from an EdgeSource.
func NewDinicSource(n int, edges EdgeSource) *DinicSolver {
	d := &DinicSolver{}
	d.Reset(n, edges)
	return d
}

// Reset implements Solver: it re-binds the solver to a new graph in
// place, reusing internal arrays whose capacity suffices.
func (d *DinicSolver) Reset(n int, edges EdgeSource) {
	d.st.init(n, edges)
	d.level = growInt32(d.level, n)
	d.iter = growInt32(d.iter, n)
	d.srcLevel = growInt32(d.srcLevel, n)
	if cap(d.queue) < n {
		d.queue = make([]int32, 0, n)
	}
	d.preparedSrc = -1
}

// N implements Solver.
func (d *DinicSolver) N() int { return d.st.n }

// ApplyUnitDelta implements UnitDeltaApplier: it patches the bound graph
// in place (tombstoning removed edges, reviving added ones) and drops the
// cached source BFS, whose levels depend on the whole graph.
func (d *DinicSolver) ApplyUnitDelta(added, removed EdgeSource) bool {
	d.st.resetTouched()
	if !d.st.applyDelta(added, removed, false) {
		return false
	}
	d.preparedSrc = -1
	return true
}

// ArcStats implements MemoryCompactor.
func (d *DinicSolver) ArcStats() ArcStats { return d.st.stats() }

// Compact implements MemoryCompactor: it re-densifies the arc store in
// place and drops the cached source BFS (levels depend on the whole
// graph either way; the arc layout it is rebuilt over has changed).
func (d *DinicSolver) Compact() {
	d.st.redensify()
	d.preparedSrc = -1
}

// PrepareSource implements Solver: it runs one full BFS from s on the
// fresh residual graph and caches the level array. Subsequent
// MaxFlow/MaxFlowLimit queries from s skip their first-phase BFS — on a
// fresh residual the level graph from s is the same for every target.
func (d *DinicSolver) PrepareSource(s int) {
	if s < 0 || s >= d.st.n {
		panic(fmt.Sprintf("maxflow: vertex %d out of range [0,%d)", s, d.st.n))
	}
	d.st.resetTouched()
	lv := d.srcLevel
	for i := range lv {
		lv[i] = -1
	}
	lv[s] = 0
	d.queue = d.queue[:0]
	d.queue = append(d.queue, int32(s))
	for head := 0; head < len(d.queue); head++ {
		u := d.queue[head]
		for a := d.st.first[u]; a < d.st.last[u]; a++ {
			v := d.st.to[a]
			if d.st.cap[a] > 0 && lv[v] < 0 {
				lv[v] = lv[u] + 1
				d.queue = append(d.queue, v)
			}
		}
	}
	d.preparedSrc = int32(s)
}

// ResidualReachable returns, for the state left by the most recent
// MaxFlow/MaxFlowLimit call, which vertices are reachable from s in the
// residual graph. With a maximum flow in place, the arcs crossing from the
// reachable set to its complement form a minimum cut (max-flow/min-cut
// theorem). The result is only meaningful after an un-limited MaxFlow.
func (d *DinicSolver) ResidualReachable(s int) []bool {
	if s < 0 || s >= d.st.n {
		panic(fmt.Sprintf("maxflow: vertex %d out of range [0,%d)", s, d.st.n))
	}
	seen := make([]bool, d.st.n)
	seen[s] = true
	d.queue = d.queue[:0]
	d.queue = append(d.queue, int32(s))
	for head := 0; head < len(d.queue); head++ {
		u := d.queue[head]
		for a := d.st.first[u]; a < d.st.last[u]; a++ {
			v := d.st.to[a]
			if d.st.cap[a] > 0 && !seen[v] {
				seen[v] = true
				d.queue = append(d.queue, v)
			}
		}
	}
	return seen
}

// MaxFlow implements Solver.
func (d *DinicSolver) MaxFlow(s, t int) int {
	return d.MaxFlowLimit(s, t, int(^uint(0)>>1))
}

// MaxFlowLimit implements Solver.
func (d *DinicSolver) MaxFlowLimit(s, t, limit int) int {
	if s < 0 || s >= d.st.n || t < 0 || t >= d.st.n {
		panic(fmt.Sprintf("maxflow: query (%d,%d) out of range [0,%d)", s, t, d.st.n))
	}
	if s == t {
		panic("maxflow: source equals target")
	}
	d.st.resetTouched()
	ss, tt := int32(s), int32(t)
	prepared := ss == d.preparedSrc
	flow := 0
	for flow < limit {
		if prepared {
			prepared = false
			lt := d.srcLevel[tt]
			if lt < 0 {
				break
			}
			// Copy the cached levels, pruning every vertex at t's level or
			// beyond: an admissible path reaches t exactly at level lt, so
			// those vertices are dead ends the DFS would otherwise explore.
			for i, lv := range d.srcLevel {
				if lv >= lt && int32(i) != tt {
					lv = -1
				}
				d.level[i] = lv
			}
		} else if !d.bfs(ss, tt) {
			break
		}
		copy(d.iter, d.st.first[:d.st.n])
		for flow < limit {
			pushed := d.dfs(ss, tt)
			if pushed == 0 {
				break
			}
			flow += pushed
		}
	}
	return flow
}

// bfs builds level graph; reports whether t is reachable.
func (d *DinicSolver) bfs(s, t int32) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[s] = 0
	d.queue = d.queue[:0]
	d.queue = append(d.queue, s)
	for head := 0; head < len(d.queue); head++ {
		u := d.queue[head]
		for a := d.st.first[u]; a < d.st.last[u]; a++ {
			v := d.st.to[a]
			if d.st.cap[a] > 0 && d.level[v] < 0 {
				d.level[v] = d.level[u] + 1
				if v == t {
					return true
				}
				d.queue = append(d.queue, v)
			}
		}
	}
	return d.level[t] >= 0
}

// dfs finds one augmenting path in the level graph and pushes one unit of
// flow along it (the bottleneck on unit-capacity graphs is always 1, but
// the code handles general capacities by tracking the bottleneck).
func (d *DinicSolver) dfs(s, t int32) int {
	d.pathArc = d.pathArc[:0]
	u := s
	for {
		if u == t {
			// Found a path; compute bottleneck and apply.
			bottleneck := int32(1<<31 - 1)
			for _, a := range d.pathArc {
				if d.st.cap[a] < bottleneck {
					bottleneck = d.st.cap[a]
				}
			}
			for _, a := range d.pathArc {
				d.st.touch(a)
				d.st.cap[a] -= bottleneck
				d.st.cap[d.st.rev[a]] += bottleneck
			}
			return int(bottleneck)
		}
		advanced := false
		for d.iter[u] < d.st.last[u] {
			a := d.iter[u]
			v := d.st.to[a]
			if d.st.cap[a] > 0 && d.level[v] == d.level[u]+1 {
				d.pathArc = append(d.pathArc, a)
				u = v
				advanced = true
				break
			}
			d.iter[u]++
		}
		if advanced {
			continue
		}
		// Dead end: prune u from the level graph and backtrack.
		d.level[u] = -1
		if u == s {
			return 0
		}
		last := d.pathArc[len(d.pathArc)-1]
		d.pathArc = d.pathArc[:len(d.pathArc)-1]
		u = d.st.to[d.st.rev[last]]
		d.iter[u]++
	}
}
