package maxflow

import "fmt"

// DinicSolver implements Dinic's blocking-flow algorithm. On unit-capacity
// graphs — which is all the connectivity pipeline ever produces, since
// Even's transformation keeps every capacity at 1 — it runs in
// O(E*sqrt(V)), asymptotically better than push-relabel's bound. On the
// dense Even-transformed graphs of this pipeline the HIPR-style solver's
// global-relabel heuristic amortizes so well that it is nonetheless ~2x
// faster per query (see BenchmarkMaxflowAlgorithms); Dinic remains the
// default for its simplicity, its exact early-exit MaxFlowLimit
// semantics, and the residual-reachability API that cut extraction needs.
type DinicSolver struct {
	st    *arcStore
	level []int32
	iter  []int32
	queue []int32
	// stack for iterative DFS: vertex and the arc taken into it.
	pathArc []int32
}

var _ Solver = (*DinicSolver)(nil)

// NewDinic builds a Dinic solver for the given graph.
func NewDinic(n int, edges []Edge) *DinicSolver {
	return &DinicSolver{
		st:      newArcStore(n, edges),
		level:   make([]int32, n),
		iter:    make([]int32, n),
		queue:   make([]int32, 0, n),
		pathArc: make([]int32, 0, 64),
	}
}

// N implements Solver.
func (d *DinicSolver) N() int { return d.st.n }

// ResidualReachable returns, for the state left by the most recent
// MaxFlow/MaxFlowLimit call, which vertices are reachable from s in the
// residual graph. With a maximum flow in place, the arcs crossing from the
// reachable set to its complement form a minimum cut (max-flow/min-cut
// theorem). The result is only meaningful after an un-limited MaxFlow.
func (d *DinicSolver) ResidualReachable(s int) []bool {
	if s < 0 || s >= d.st.n {
		panic(fmt.Sprintf("maxflow: vertex %d out of range [0,%d)", s, d.st.n))
	}
	seen := make([]bool, d.st.n)
	seen[s] = true
	d.queue = d.queue[:0]
	d.queue = append(d.queue, int32(s))
	for head := 0; head < len(d.queue); head++ {
		u := d.queue[head]
		for ai := d.st.first[u]; ai < d.st.first[u+1]; ai++ {
			a := d.st.arcs[ai]
			v := d.st.to[a]
			if d.st.cap[a] > 0 && !seen[v] {
				seen[v] = true
				d.queue = append(d.queue, v)
			}
		}
	}
	return seen
}

// MaxFlow implements Solver.
func (d *DinicSolver) MaxFlow(s, t int) int {
	return d.MaxFlowLimit(s, t, int(^uint(0)>>1))
}

// MaxFlowLimit implements Solver.
func (d *DinicSolver) MaxFlowLimit(s, t, limit int) int {
	if s < 0 || s >= d.st.n || t < 0 || t >= d.st.n {
		panic(fmt.Sprintf("maxflow: query (%d,%d) out of range [0,%d)", s, t, d.st.n))
	}
	if s == t {
		panic("maxflow: source equals target")
	}
	d.st.reset()
	flow := 0
	for flow < limit && d.bfs(int32(s), int32(t)) {
		copy(d.iter, d.st.first)
		for flow < limit {
			pushed := d.dfs(int32(s), int32(t))
			if pushed == 0 {
				break
			}
			flow += pushed
		}
	}
	return flow
}

// bfs builds level graph; reports whether t is reachable.
func (d *DinicSolver) bfs(s, t int32) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[s] = 0
	d.queue = d.queue[:0]
	d.queue = append(d.queue, s)
	for head := 0; head < len(d.queue); head++ {
		u := d.queue[head]
		for ai := d.st.first[u]; ai < d.st.first[u+1]; ai++ {
			a := d.st.arcs[ai]
			v := d.st.to[a]
			if d.st.cap[a] > 0 && d.level[v] < 0 {
				d.level[v] = d.level[u] + 1
				if v == t {
					return true
				}
				d.queue = append(d.queue, v)
			}
		}
	}
	return d.level[t] >= 0
}

// dfs finds one augmenting path in the level graph and pushes one unit of
// flow along it (the bottleneck on unit-capacity graphs is always 1, but
// the code handles general capacities by tracking the bottleneck).
func (d *DinicSolver) dfs(s, t int32) int {
	d.pathArc = d.pathArc[:0]
	u := s
	for {
		if u == t {
			// Found a path; compute bottleneck and apply.
			bottleneck := int32(1<<31 - 1)
			for _, a := range d.pathArc {
				if d.st.cap[a] < bottleneck {
					bottleneck = d.st.cap[a]
				}
			}
			for _, a := range d.pathArc {
				d.st.cap[a] -= bottleneck
				d.st.cap[rev(a)] += bottleneck
			}
			return int(bottleneck)
		}
		advanced := false
		for d.iter[u] < d.st.first[u+1] {
			a := d.st.arcs[d.iter[u]]
			v := d.st.to[a]
			if d.st.cap[a] > 0 && d.level[v] == d.level[u]+1 {
				d.pathArc = append(d.pathArc, a)
				u = v
				advanced = true
				break
			}
			d.iter[u]++
		}
		if advanced {
			continue
		}
		// Dead end: prune u from the level graph and backtrack.
		d.level[u] = -1
		if u == s {
			return 0
		}
		last := d.pathArc[len(d.pathArc)-1]
		d.pathArc = d.pathArc[:len(d.pathArc)-1]
		u = d.st.to[rev(last)]
		d.iter[u]++
	}
}
