package maxflow

import "fmt"

// HaoOrlinSolver is the sweep-specialized max-flow solver behind the
// one-source/all-sinks connectivity analyses. It adapts the structural
// idea of Hao & Orlin's minimum-cut algorithm — keep one fixed root for
// the distance labels and never recompute them from scratch as the other
// endpoint of the query changes — to the pipeline's exact per-pair
// semantics, where the paper-faithful sweep fixes the *source* and
// iterates over every sink.
//
// The trick is orientation: the solver stores the graph REVERSED, so the
// sweep's shared source s becomes the sink of every reversed query
// (max-flow s->t in G equals max-flow t->s in reverse(G)). Push-relabel
// computes its distance labels by a backward search from the sink — which
// now never moves. PrepareSource(s) therefore runs that search ONCE per
// source on the fresh residual; each per-sink query starts from the
// cached labels with a handful of O(n) array restores and pays only for
// the flow it actually routes. The per-query global relabel — 68% of
// snapshot-analysis time under the warm-start push-relabel solver, and
// the reason the ROADMAP called per-sink re-relabeling the throughput
// floor — disappears from the per-sink cost entirely.
//
// Exactness per pair is preserved by isolation rather than sharing: each
// query runs on a logically fresh residual, restored via undo logs (the
// arcs its pushes touched, the vertices its excess reached) instead of
// array rewrites. Excess that cannot reach the root parks on the dormant
// set — vertices lifted to height >= n by the gap heuristic, exactly
// Hao-Orlin's dormant bookkeeping — and is dropped by the same undo logs.
// The flow value is read off excess(root) at phase-1 termination, which
// the standard maximum-preflow argument pins to the exact s-t max-flow;
// the property tests assert equality against fresh Dinic solves pair by
// pair.
//
// MaxFlowLimit may overshoot its limit (any value in [limit, true flow]),
// like PushRelabelSolver: the early exit fires as soon as the root's
// excess reaches the limit. Values below the limit are exact.
type HaoOrlinSolver struct {
	st arcStore // REVERSED-orientation residual arcs

	height      []int32
	heightCount []int32
	excess      []int64
	cur         []int32 // current-arc cursor per vertex
	bucketHead  []int32 // active-vertex buckets by height
	nextActive  []int32
	highest     int32
	queue       []int32 // BFS scratch

	// srcHeight/srcHeightCount cache the fresh-residual distance labels
	// to root (the prepared forward-source), restored per query by memcpy.
	srcHeight      []int32
	srcHeightCount []int32

	// dirtyV logs vertices whose excess became nonzero in the current
	// query, so the next query clears excess in O(touched) instead of
	// O(n). Arc restores ride the arcStore's dirty log.
	dirtyV []int32

	root      int32 // prepared forward-source (= reversed sink); -1 invalid
	rootCapIn int64 // fresh residual capacity into the root (flow upper bound)
	relabels  int   // since last mid-query global relabel

	// revSrc adapts the caller's EdgeSource for init without boxing a
	// fresh interface value per Reset (the engine's steady state must not
	// allocate). The wrapped source is dropped after init.
	revSrc reversedSource
}

var _ Solver = (*HaoOrlinSolver)(nil)

// reversedSource presents an EdgeSource with every edge reversed.
type reversedSource struct{ src EdgeSource }

func (r *reversedSource) NumEdges() int { return r.src.NumEdges() }
func (r *reversedSource) EdgeAt(i int) (int, int, int32) {
	u, v, c := r.src.EdgeAt(i)
	return v, u, c
}

// NewHaoOrlin builds a sweep solver for the given graph.
func NewHaoOrlin(n int, edges []Edge) *HaoOrlinSolver {
	return NewHaoOrlinSource(n, EdgeSlice(edges))
}

// NewHaoOrlinSource builds a sweep solver from an EdgeSource.
func NewHaoOrlinSource(n int, edges EdgeSource) *HaoOrlinSolver {
	h := &HaoOrlinSolver{}
	h.Reset(n, edges)
	return h
}

// Reset implements Solver: it re-binds the solver to a new graph in
// place, reusing internal arrays whose capacity suffices. The edge list
// is stored reversed (see the type comment); callers never see the
// orientation.
func (h *HaoOrlinSolver) Reset(n int, edges EdgeSource) {
	h.revSrc.src = edges
	h.st.init(n, &h.revSrc)
	h.revSrc.src = nil // do not retain the caller's source past init
	h.height = growInt32(h.height, n)
	h.srcHeight = growInt32(h.srcHeight, n)
	h.cur = growInt32(h.cur, n)
	h.bucketHead = growInt32(h.bucketHead, 2*n+2)
	h.nextActive = growInt32(h.nextActive, n)
	h.heightCount = growInt32(h.heightCount, 2*n+2)
	h.srcHeightCount = growInt32(h.srcHeightCount, 2*n+2)
	if cap(h.excess) >= n {
		h.excess = h.excess[:n]
	} else {
		h.excess = make([]int64, n)
	}
	for i := range h.excess {
		h.excess[i] = 0
	}
	if cap(h.queue) < n {
		h.queue = make([]int32, 0, n)
	}
	h.dirtyV = h.dirtyV[:0]
	h.root = -1
}

// N implements Solver.
func (h *HaoOrlinSolver) N() int { return h.st.n }

// ApplyUnitDelta implements UnitDeltaApplier: it patches the (reversed)
// bound graph in place and drops the cached root labels, which depend on
// the whole graph. The arc layout — the expensive part of a rebind —
// survives untouched, and because tombstoned slots keep their positions,
// a patched solver traverses arcs in exactly the order a freshly built
// one would: results stay bit-identical between the two paths.
func (h *HaoOrlinSolver) ApplyUnitDelta(added, removed EdgeSource) bool {
	h.undoQuery()
	if !h.st.applyDelta(added, removed, true) {
		return false
	}
	h.root = -1
	return true
}

// ArcStats implements MemoryCompactor.
func (h *HaoOrlinSolver) ArcStats() ArcStats { return h.st.stats() }

// Compact implements MemoryCompactor: it restores the fresh residual
// (replaying the last query's logs while their arc indices are still
// valid), re-densifies the reversed arc store, and drops the cached root
// labels, exactly as a delta would.
func (h *HaoOrlinSolver) Compact() {
	h.undoQuery()
	h.st.redensify()
	h.root = -1
}

// PrepareSource implements Solver: it roots the distance labels at s (the
// reversed graph's sink) with one backward BFS on the fresh residual.
// Every subsequent query from s reuses the labels; a query from a
// different source re-roots implicitly.
func (h *HaoOrlinSolver) PrepareSource(s int) {
	if s < 0 || s >= h.st.n {
		panic(fmt.Sprintf("maxflow: vertex %d out of range [0,%d)", s, h.st.n))
	}
	if int32(s) == h.root {
		return
	}
	h.undoQuery()
	h.root = int32(s)
	h.rootRelabel()
}

// undoQuery restores the fresh residual and zero excess by replaying the
// previous query's logs.
func (h *HaoOrlinSolver) undoQuery() {
	h.st.resetTouched()
	for _, v := range h.dirtyV {
		h.excess[v] = 0
	}
	h.dirtyV = h.dirtyV[:0]
}

// relabelToRoot recomputes exact distance-to-root labels on the CURRENT
// residual by backward BFS and rebuilds heightCount. Vertices that
// cannot reach the root get height n (dormant: no preflow from them can
// ever arrive, matching the n-height convention). Shared by the
// per-source rootRelabel (fresh residual) and the mid-query refresh.
func (h *HaoOrlinSolver) relabelToRoot(root int32) {
	n := int32(h.st.n)
	height := h.height
	for i := range height {
		height[i] = n
	}
	for i := range h.heightCount {
		h.heightCount[i] = 0
	}
	height[root] = 0
	first, last, to, rev, cap := h.st.first, h.st.last, h.st.to, h.st.rev, h.st.cap
	queue := h.queue[:0]
	queue = append(queue, root)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		hv1 := height[v] + 1
		for a := first[v]; a < last[v]; a++ {
			u := to[a]
			// Residual arc u->v exists iff the reverse partner of the
			// v->u arc has capacity.
			if cap[rev[a]] > 0 && height[u] == n && u != root {
				height[u] = hv1
				queue = append(queue, u)
			}
		}
	}
	h.queue = queue
	for v := int32(0); v < n; v++ {
		h.heightCount[height[v]]++
	}
}

// rootRelabel computes the fresh-residual distance labels to the root
// and caches them in srcHeight/srcHeightCount, together with the total
// fresh capacity into the root (the sweep-wide flow upper bound).
func (h *HaoOrlinSolver) rootRelabel() {
	h.relabelToRoot(h.root)
	copy(h.srcHeight, h.height)
	copy(h.srcHeightCount, h.heightCount)
	h.rootCapIn = 0
	for a := h.st.first[h.root]; a < h.st.last[h.root]; a++ {
		h.rootCapIn += int64(h.st.cap[h.st.rev[a]])
	}
}

// MaxFlow implements Solver.
func (h *HaoOrlinSolver) MaxFlow(s, t int) int {
	return h.MaxFlowLimit(s, t, int(^uint(0)>>1))
}

// MaxFlowLimit implements Solver. In the reversed store the query injects
// preflow at t and drains it toward the fixed root s.
func (h *HaoOrlinSolver) MaxFlowLimit(s, t, limit int) int {
	n := int32(h.st.n)
	if s < 0 || int32(s) >= n || t < 0 || int32(t) >= n {
		panic(fmt.Sprintf("maxflow: query (%d,%d) out of range [0,%d)", s, t, n))
	}
	if s == t {
		panic("maxflow: source equals target")
	}
	if int32(s) != h.root {
		h.PrepareSource(s)
	}
	h.undoQuery()

	// Per-query state restore: cached labels, fresh cursors, empty
	// buckets. All O(n) sequential writes — the whole point of the fixed
	// root is that no per-query graph search happens here.
	copy(h.height, h.srcHeight)
	copy(h.heightCount, h.srcHeightCount)
	copy(h.cur, h.st.first[:h.st.n])
	for i := range h.bucketHead {
		h.bucketHead[i] = -1
	}
	h.highest = 0
	h.relabels = 0

	inj, root := int32(t), h.root
	if h.height[inj] >= n {
		// No fresh-residual path from the injection vertex to the root:
		// the max flow is zero, no routing needed.
		return 0
	}
	// Bounded injection: instead of saturating every arc out of inj
	// (standard preflow start, which then drags indeg(t)-kappa units of
	// undeliverable excess uphill until they park dormant), model a
	// virtual super-source with one arc of capacity U into inj, where U
	// upper-bounds the answer: U = min(limit, total capacity out of inj,
	// total capacity into the root). The computed value is exactly
	// min(U, kappa) — exact whenever it lands below the limit, which is
	// all the sweep bookkeeping relies on — and the dormant surplus
	// shrinks from indeg(t)-kappa to U-kappa, usually ~zero. inj stays a
	// regular vertex at its cached height; its leftover excess simply
	// remains parked on it at termination.
	u64 := int64(limit)
	if h.rootCapIn < u64 {
		u64 = h.rootCapIn
	}
	var outSum int64
	for a := h.st.first[inj]; a < h.st.last[inj]; a++ {
		outSum += int64(h.st.cap[a])
	}
	if outSum < u64 {
		u64 = outSum
	}
	if u64 <= 0 {
		return 0
	}
	h.excess[inj] = u64
	h.dirtyV = append(h.dirtyV, inj)
	h.activate(inj)

	for int(h.excess[root]) < limit {
		u := h.popHighest(n)
		if u < 0 {
			break
		}
		h.discharge(u, root, n)
		if h.relabels > h.st.n {
			h.midRelabel(root)
			h.relabels = 0
		}
	}
	return int(h.excess[root])
}

// The bucket/discharge/relabel machinery below intentionally mirrors
// PushRelabelSolver's (the HIPR core), with the s/t exclusions reduced to
// the root and no rcap mirror (this solver relabels from scratch only
// once per source). A fix to either copy — the gap lift, the
// stale-bucket skip in popHighest — almost certainly applies to both.

// activate inserts v into its height bucket and raises the highest-active
// watermark.
func (h *HaoOrlinSolver) activate(v int32) {
	hh := h.height[v]
	h.nextActive[v] = h.bucketHead[hh]
	h.bucketHead[hh] = v
	if hh > h.highest {
		h.highest = hh
	}
}

// popHighest removes and returns the active vertex with the greatest
// height below n, or -1 if none remain.
func (h *HaoOrlinSolver) popHighest(n int32) int32 {
	if h.highest >= n {
		h.highest = n - 1
	}
	for h.highest >= 0 {
		if u := h.bucketHead[h.highest]; u >= 0 {
			h.bucketHead[h.highest] = h.nextActive[u]
			if h.height[u] == h.highest && h.excess[u] > 0 {
				return u
			}
			continue
		}
		h.highest--
	}
	return -1
}

// discharge pushes u's excess along admissible arcs, relabeling as
// needed, until the excess is gone or u joins the dormant set (height >=
// n: excess parks there and the undo log drops it after the query).
func (h *HaoOrlinSolver) discharge(u, root, n int32) {
	for h.excess[u] > 0 && h.height[u] < n {
		if h.cur[u] >= h.st.last[u] {
			h.relabel(u, n)
			continue
		}
		a := h.cur[u]
		v := h.st.to[a]
		if h.st.cap[a] > 0 && h.height[u] == h.height[v]+1 {
			h.push(u, v, a, root, n)
		} else {
			h.cur[u]++
		}
	}
}

func (h *HaoOrlinSolver) push(u, v, a, root, n int32) {
	amt := int64(h.st.cap[a])
	if h.excess[u] < amt {
		amt = h.excess[u]
	}
	h.st.touch(a)
	r := h.st.rev[a]
	h.st.cap[a] -= int32(amt)
	h.st.cap[r] += int32(amt)
	before := h.excess[v]
	if before == 0 {
		h.dirtyV = append(h.dirtyV, v)
		if v != root && h.height[v] < n {
			h.activate(v)
		}
	}
	h.excess[v] = before + amt
	h.excess[u] -= amt
}

func (h *HaoOrlinSolver) relabel(u, n int32) {
	h.relabels++
	old := h.height[u]
	h.heightCount[old]--
	// Gap heuristic: if u was the last vertex at its height, everything
	// above that height joins the dormant set in one sweep.
	if h.heightCount[old] == 0 && old < n {
		for v := int32(0); v < n; v++ {
			if h.height[v] > old && h.height[v] < n {
				h.heightCount[h.height[v]]--
				h.height[v] = n + 1
			}
		}
		h.height[u] = n + 1
		return
	}
	minH := int32(2*h.st.n) + 1
	for a := h.st.first[u]; a < h.st.last[u]; a++ {
		if h.st.cap[a] > 0 && h.height[h.st.to[a]] < minH {
			minH = h.height[h.st.to[a]]
		}
	}
	if minH >= 2*n {
		h.height[u] = n + 1
		return
	}
	h.height[u] = minH + 1
	h.heightCount[minH+1]++
	h.cur[u] = h.st.first[u]
}

// midRelabel is the every-n-relabels refresh within one query: exact
// distance labels to the root on the CURRENT residual, buckets rebuilt
// from live excess. It writes h.height only — the per-source srcHeight
// cache stays pinned to the fresh residual. The injection vertex is a
// regular vertex here (the conceptual super-source is the saturated
// virtual arc feeding it), so nothing is excluded from the search except
// unreachable vertices, which keep height n.
func (h *HaoOrlinSolver) midRelabel(root int32) {
	n := int32(h.st.n)
	h.relabelToRoot(root)
	copy(h.cur, h.st.first[:h.st.n])
	for i := range h.bucketHead {
		h.bucketHead[i] = -1
	}
	h.highest = 0
	for v := int32(0); v < n; v++ {
		if v != root && h.excess[v] > 0 && h.height[v] < n {
			h.activate(v)
		}
	}
}
