package maxflow

import (
	"math/rand"
	"testing"

	"kadre/internal/graph"
)

// randomEdges builds a random digraph edge list with capacities in
// [1, maxCap] (possibly with parallel edges, which solvers must accept).
func randomEdges(r *rand.Rand, n, m, maxCap int) []Edge {
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v, Cap: int32(1 + r.Intn(maxCap))})
	}
	return edges
}

// TestHaoOrlinSweepMatchesDinicPerPair is the property-based equivalence
// oracle for the sweep solver: random graphs, random same-source sink
// sequences, every value checked against a fresh Dinic solve of the same
// pair — including MaxFlowLimit's exact-below-the-limit contract and
// re-Reset to a different graph mid-life.
func TestHaoOrlinSweepMatchesDinicPerPair(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ho := NewHaoOrlin(2, []Edge{{0, 1, 1}})
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(20)
		edges := randomEdges(r, n, 4*n, 1+trial%5)
		ho.Reset(n, EdgeSlice(edges)) // re-bind path: the same solver serves every trial
		for srcTrial := 0; srcTrial < 3; srcTrial++ {
			s := r.Intn(n)
			ho.PrepareSource(s)
			for q := 0; q < 8; q++ {
				tgt := r.Intn(n)
				if tgt == s {
					continue
				}
				want := NewDinic(n, edges).MaxFlow(s, tgt)
				if got := ho.MaxFlow(s, tgt); got != want {
					t.Fatalf("trial %d (%d,%d): hao-orlin=%d, fresh dinic=%d (n=%d edges=%v)",
						trial, s, tgt, got, want, n, edges)
				}
				limit := r.Intn(want + 3)
				got := ho.MaxFlowLimit(s, tgt, limit)
				if got > want {
					t.Fatalf("trial %d (%d,%d) limit %d: got %d > true flow %d", trial, s, tgt, limit, got, want)
				}
				if got < limit && got != want {
					t.Fatalf("trial %d (%d,%d) limit %d: got %d below the limit must be exact (true %d)",
						trial, s, tgt, limit, got, want)
				}
				if got < limit && got < want {
					t.Fatalf("trial %d (%d,%d) limit %d: got %d, want >= min(limit, %d)", trial, s, tgt, limit, got, want)
				}
			}
		}
	}
}

// evenGraph builds a random near-symmetric digraph and returns it with
// its Even transform — the exact edge-list shape the connectivity engine
// binds, for which delta patching guarantees fresh-build arc order.
func evenGraph(r *rand.Rand, n, deg int) (*graph.Digraph, []Edge) {
	g := graph.NewDigraph(n)
	for u := 0; u < n; u++ {
		for d := 0; d < deg; d++ {
			v := r.Intn(n)
			if v == u {
				continue
			}
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
			if r.Float64() < 0.8 && !g.HasEdge(v, u) {
				g.AddEdge(v, u)
			}
		}
	}
	return g, unitEven(g)
}

func unitEven(g *graph.Digraph) []Edge {
	ge := graph.EvenEdges(g)
	out := make([]Edge, len(ge))
	for i, e := range ge {
		out[i] = Edge{U: e.U, V: e.V, Cap: 1}
	}
	return out
}

// evenDelta maps an original-space delta to Even-space unit edges.
func evenDelta(edges []graph.Edge) EdgeSlice {
	out := make(EdgeSlice, len(edges))
	for i, e := range edges {
		out[i] = Edge{U: graph.Out(e.U), V: graph.In(e.V), Cap: 1}
	}
	return out
}

// TestApplyUnitDeltaMatchesRebuild churns an Even-transformed graph
// through random delta sequences — removals (tombstones), re-additions
// (revivals) and brand-new edges (slack insertions) — patching one
// long-lived solver of each algorithm in place and comparing every
// answer, plus Dinic's residual reachability (the cut certificate, which
// pins arc-order preservation), against freshly built solvers.
func TestApplyUnitDeltaMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 24
	g, even := evenGraph(r, n, 4)
	patched := map[string]Solver{
		"dinic":        NewDinic(2*n, even),
		"push-relabel": NewPushRelabel(2*n, even),
		"hao-orlin":    NewHaoOrlin(2*n, even),
	}
	var removedPool []graph.Edge
	for step := 0; step < 30; step++ {
		var delta graph.Delta
		changes := 1 + r.Intn(5)
		for c := 0; c < changes; c++ {
			switch k := r.Float64(); {
			case k < 0.4: // remove a random existing edge
				all := g.Edges()
				if len(all) == 0 {
					continue
				}
				e := all[r.Intn(len(all))]
				g.RemoveEdge(e.U, e.V)
				delta.Removed = append(delta.Removed, e)
				removedPool = append(removedPool, e)
			case k < 0.7 && len(removedPool) > 0: // revive a tombstone
				e := removedPool[r.Intn(len(removedPool))]
				if g.HasEdge(e.U, e.V) {
					continue
				}
				g.AddEdge(e.U, e.V)
				delta.Added = append(delta.Added, e)
			default: // novel edge: slack insertion
				u, v := r.Intn(n), r.Intn(n)
				if u == v || g.HasEdge(u, v) {
					continue
				}
				g.AddEdge(u, v)
				delta.Added = append(delta.Added, graph.Edge{U: u, V: v})
			}
		}
		even = unitEven(g)
		add, rem := evenDelta(delta.Added), evenDelta(delta.Removed)
		for name, s := range patched {
			if !s.(UnitDeltaApplier).ApplyUnitDelta(add, rem) {
				// Slack exhausted: rebuild in place and keep going — the
				// contract is fallback, not failure.
				s.Reset(2*n, EdgeSlice(even))
			}
			fresh := NewDinic(2*n, even)
			for q := 0; q < 6; q++ {
				src, tgt := r.Intn(n), r.Intn(n)
				if src == tgt {
					continue
				}
				sOut, tIn := graph.Out(src), graph.In(tgt)
				want := fresh.MaxFlow(sOut, tIn)
				s.PrepareSource(sOut)
				if got := s.MaxFlow(sOut, tIn); got != want {
					t.Fatalf("step %d %s (%d,%d): patched=%d, rebuilt=%d", step, name, src, tgt, got, want)
				}
			}
		}
		// Arc-order preservation: a patched Dinic must leave the exact
		// residual a rebuilt one leaves, certified by ResidualReachable.
		pd := patched["dinic"].(*DinicSolver)
		fd := NewDinic(2*n, even)
		src, tgt := 0, n-1
		if !g.HasEdge(src, tgt) && src != tgt {
			pv := pd.MaxFlow(graph.Out(src), graph.In(tgt))
			fv := fd.MaxFlow(graph.Out(src), graph.In(tgt))
			if pv != fv {
				t.Fatalf("step %d: cut-pair flow %d != %d", step, pv, fv)
			}
			pr := pd.ResidualReachable(graph.Out(src))
			fr := fd.ResidualReachable(graph.Out(src))
			for v := range pr {
				if pr[v] != fr[v] {
					t.Fatalf("step %d: residual reachability diverged at vertex %d (patched %v, rebuilt %v)",
						step, v, pr[v], fr[v])
				}
			}
		}
	}
}

// TestApplyUnitDeltaRelocatesOnSlackOverflow pins the region-relocation
// contract: a burst of novel edges at one vertex beyond its arcSlack —
// the shape of a population slot being revived by a higher-degree
// occupant — must still patch in place, and the patched solver must
// answer (and leave residuals) exactly like a freshly built one.
func TestApplyUnitDeltaRelocatesOnSlackOverflow(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 12
	g, even := evenGraph(r, n, 2)
	for _, algo := range []Algorithm{Dinic, PushRelabel, HaoOrlin} {
		s := algo.NewSolver(2*n, even)
		// Overflow vertex 0's slack: more novel out-edges than arcSlack.
		var add EdgeSlice
		edited := g.Clone()
		for v := 1; v < n && len(add) < arcSlack+2; v++ {
			if !g.HasEdge(0, v) {
				add = append(add, Edge{U: graph.Out(0), V: graph.In(v), Cap: 1})
				edited.AddEdge(0, v)
			}
		}
		if len(add) <= arcSlack {
			t.Fatalf("test graph too dense to exhaust slack (%d novel edges)", len(add))
		}
		if !s.(UnitDeltaApplier).ApplyUnitDelta(add, EdgeSlice{}) {
			t.Fatalf("%s: ApplyUnitDelta should relocate the region, not fail, on slack overflow", algo)
		}
		newEven := unitEven(edited)
		fresh := NewDinic(2*n, newEven)
		for q := 0; q < 10; q++ {
			src, tgt := r.Intn(n), r.Intn(n)
			if src == tgt {
				continue
			}
			want := fresh.MaxFlow(graph.Out(src), graph.In(tgt))
			if got := s.MaxFlow(graph.Out(src), graph.In(tgt)); got != want {
				t.Fatalf("%s: after relocating patch, (%d,%d): got %d, want %d", algo, src, tgt, got, want)
			}
		}
		if d, ok := s.(*DinicSolver); ok {
			fd := NewDinic(2*n, newEven)
			src, tgt := 1, n-1
			if !edited.HasEdge(src, tgt) {
				if pv, fv := d.MaxFlow(graph.Out(src), graph.In(tgt)), fd.MaxFlow(graph.Out(src), graph.In(tgt)); pv != fv {
					t.Fatalf("relocated cut-pair flow %d != %d", pv, fv)
				}
				pr := d.ResidualReachable(graph.Out(src))
				fr := fd.ResidualReachable(graph.Out(src))
				for v := range pr {
					if pr[v] != fr[v] {
						t.Fatalf("relocated residual reachability diverged at vertex %d", v)
					}
				}
			}
		}
	}
}

// TestApplyUnitDeltaAtomicOnFailure pins the fallback contract: a delta
// inconsistent with the bound graph (here, a removal of an edge that
// does not exist) must be rejected with the solver still answering for
// the OLD graph, so the engine's lazy full Reset sees consistent state.
func TestApplyUnitDeltaAtomicOnFailure(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 12
	g, even := evenGraph(r, n, 2)
	s := NewHaoOrlin(2*n, even)
	var u, v int
	for u = 0; u < n; u++ {
		for v = 1; v < n; v++ {
			if u != v && !g.HasEdge(u, v) {
				goto found
			}
		}
	}
found:
	rem := EdgeSlice{{U: graph.Out(u), V: graph.In(v), Cap: 1}}
	if s.ApplyUnitDelta(EdgeSlice{}, rem) {
		t.Fatal("ApplyUnitDelta should report failure for a removal of a missing edge")
	}
	// The solver must still answer for the old graph.
	fresh := NewDinic(2*n, even)
	for q := 0; q < 10; q++ {
		src, tgt := r.Intn(n), r.Intn(n)
		if src == tgt {
			continue
		}
		want := fresh.MaxFlow(graph.Out(src), graph.In(tgt))
		if got := s.MaxFlow(graph.Out(src), graph.In(tgt)); got != want {
			t.Fatalf("after failed patch, (%d,%d): got %d, want %d (old graph)", src, tgt, got, want)
		}
	}
}
