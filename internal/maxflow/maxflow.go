// Package maxflow implements maximum-flow solvers for the connectivity
// pipeline: Dinic's algorithm (asymptotically optimal on the unit-capacity
// graphs produced by Even's transformation, O(E*sqrt(V))) and a HIPR-style
// highest-label push-relabel algorithm with gap and global-relabeling
// heuristics, mirroring the solver the paper used (Cherkassky & Goldberg's
// HIPR). Both solvers are reusable: a solver is built once per graph and
// answers many (source, target) queries, resetting internal state between
// queries — the same usage pattern as the authors' modified HIPR, which
// they extended to evaluate multiple vertex pairs per invocation.
package maxflow

import "fmt"

// Edge is a directed edge with capacity, as fed to a solver constructor.
type Edge struct {
	U, V int
	Cap  int32
}

// Solver answers repeated maximum-flow queries on a fixed graph.
type Solver interface {
	// MaxFlow returns the value of a maximum s-t flow. It may be called
	// repeatedly with different pairs; each call starts from zero flow.
	MaxFlow(s, t int) int
	// MaxFlowLimit is MaxFlow that may stop early once the flow value
	// reaches limit, returning at least min(limit, true max flow). It
	// exists for min-of-max-flows searches where values above the current
	// minimum are irrelevant.
	MaxFlowLimit(s, t, limit int) int
	// N returns the number of vertices.
	N() int
}

// Factory constructs a solver for a graph given as an edge list.
type Factory func(n int, edges []Edge) Solver

// Algorithm names a solver implementation.
type Algorithm int

// Available algorithms.
const (
	Dinic Algorithm = iota + 1
	PushRelabel
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Dinic:
		return "dinic"
	case PushRelabel:
		return "push-relabel"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "dinic":
		return Dinic, nil
	case "push-relabel", "pushrelabel", "hipr":
		return PushRelabel, nil
	default:
		return 0, fmt.Errorf("maxflow: unknown algorithm %q", s)
	}
}

// NewSolver builds a solver of the requested algorithm.
func (a Algorithm) NewSolver(n int, edges []Edge) Solver {
	switch a {
	case PushRelabel:
		return NewPushRelabel(n, edges)
	default:
		return NewDinic(n, edges)
	}
}

// UnitEdges converts a plain (u, v) edge list into unit-capacity edges.
func UnitEdges(pairs [][2]int) []Edge {
	out := make([]Edge, len(pairs))
	for i, p := range pairs {
		out[i] = Edge{U: p[0], V: p[1], Cap: 1}
	}
	return out
}

// arcStore is the shared residual-graph representation: forward/backward
// arc pairs in a compact array, with CSR-style per-vertex adjacency.
type arcStore struct {
	n     int
	to    []int32 // arc -> head vertex
	cap   []int32 // arc -> residual capacity (mutated during a query)
	cap0  []int32 // arc -> original capacity (for reset between queries)
	first []int32 // vertex -> first arc index in arcIdx
	last  []int32 // vertex -> one past last arc index
	arcs  []int32 // adjacency: arc indices grouped by tail vertex
}

func newArcStore(n int, edges []Edge) *arcStore {
	if n < 0 {
		panic(fmt.Sprintf("maxflow: negative vertex count %d", n))
	}
	s := &arcStore{
		n:     n,
		to:    make([]int32, 0, 2*len(edges)),
		cap:   make([]int32, 0, 2*len(edges)),
		first: make([]int32, n+1),
		last:  make([]int32, n),
	}
	deg := make([]int32, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", e.U, e.V, n))
		}
		if e.Cap < 0 {
			panic(fmt.Sprintf("maxflow: negative capacity on edge (%d,%d)", e.U, e.V))
		}
		deg[e.U]++
		deg[e.V]++
		s.to = append(s.to, int32(e.V), int32(e.U))
		s.cap = append(s.cap, e.Cap, 0)
	}
	s.cap0 = append([]int32(nil), s.cap...)
	// Build CSR adjacency over arc indices.
	var total int32
	for v := 0; v < n; v++ {
		s.first[v] = total
		s.last[v] = total
		total += deg[v]
	}
	s.first[n] = total
	s.arcs = make([]int32, total)
	for i, e := range edges {
		fwd, bwd := int32(2*i), int32(2*i+1)
		s.arcs[s.last[e.U]] = fwd
		s.last[e.U]++
		s.arcs[s.last[e.V]] = bwd
		s.last[e.V]++
	}
	return s
}

// reset restores all residual capacities to their original values.
func (s *arcStore) reset() {
	copy(s.cap, s.cap0)
}

// rev returns the index of an arc's reverse arc.
func rev(a int32) int32 { return a ^ 1 }
