// Package maxflow implements maximum-flow solvers for the connectivity
// pipeline: Dinic's algorithm (asymptotically optimal on the unit-capacity
// graphs produced by Even's transformation, O(E*sqrt(V))), a HIPR-style
// highest-label push-relabel algorithm with gap and global-relabeling
// heuristics, mirroring the solver the paper used (Cherkassky & Goldberg's
// HIPR), and a Hao-Orlin-inspired fixed-root sweep solver (HaoOrlinSolver,
// the connectivity engine's default) that amortizes the distance labels of
// a one-source/all-sinks sweep to one search per source. The solvers are
// reusable at four levels, extending the paper's modified HIPR — which was
// rebuilt once per graph and answered many vertex-pair queries per
// invocation:
//
//   - across queries: a solver answers many (source, target) queries on
//     its graph, restoring only the residual capacities each query touched
//     (Dinic) instead of rewriting the whole capacity array;
//   - across sources: PrepareSource caches the first-phase BFS level
//     graph of a fixed source, which on a fresh residual is identical for
//     every target (Dinic; a no-op for push-relabel, which searches from
//     the sink);
//   - across graphs: Reset re-binds a solver to a new edge list in place,
//     reusing every internal array whose capacity suffices, so sweeping
//     analyses pay for allocation once per graph *shape* rather than once
//     per snapshot;
//   - across snapshots: ApplyUnitDelta (UnitDeltaApplier) patches the
//     bound graph's arc layout in place for small edge deltas —
//     tombstoning removals, reviving re-additions, inserting novel edges
//     into per-vertex slack — so adjacent-snapshot rebinding costs
//     O(|delta|) instead of a full re-init, with traversal order (and
//     hence extracted cuts) identical to a fresh build on the
//     connectivity pipeline's Even-transformed graphs.
package maxflow

import "fmt"

// Edge is a directed edge with capacity, as fed to a solver constructor.
type Edge struct {
	U, V int
	Cap  int32
}

// EdgeSource yields a graph's capacitated edges by index. It lets solvers
// consume edge lists of any element type — e.g. graph.Edge with implicit
// unit capacities — without materializing an intermediate []Edge copy.
type EdgeSource interface {
	// NumEdges returns the number of edges.
	NumEdges() int
	// EdgeAt returns the i-th edge as (tail, head, capacity).
	EdgeAt(i int) (u, v int, cap int32)
}

// EdgeSlice adapts a []Edge to EdgeSource.
type EdgeSlice []Edge

// NumEdges implements EdgeSource.
func (s EdgeSlice) NumEdges() int { return len(s) }

// EdgeAt implements EdgeSource.
func (s EdgeSlice) EdgeAt(i int) (int, int, int32) {
	e := s[i]
	return e.U, e.V, e.Cap
}

// Solver answers repeated maximum-flow queries on a fixed graph.
type Solver interface {
	// MaxFlow returns the value of a maximum s-t flow. It may be called
	// repeatedly with different pairs; each call starts from zero flow.
	MaxFlow(s, t int) int
	// MaxFlowLimit is MaxFlow that may stop early once the flow value
	// reaches limit, returning at least min(limit, true max flow). It
	// exists for min-of-max-flows searches where values above the current
	// minimum are irrelevant.
	MaxFlowLimit(s, t, limit int) int
	// N returns the number of vertices.
	N() int
	// Reset re-binds the solver to a new graph in place, reusing internal
	// arrays whose capacity suffices instead of reallocating. After Reset
	// the solver behaves exactly like a freshly constructed one.
	Reset(n int, edges EdgeSource)
	// PrepareSource hints that the following queries share source s,
	// letting the solver cache source-dependent state that is valid for
	// every target (Dinic caches the fresh-residual BFS level graph; the
	// hint is a no-op for push-relabel). The cache is invalidated by
	// Reset and by PrepareSource with a different source.
	PrepareSource(s int)
}

// UnitDeltaApplier is implemented by solvers that can patch their bound
// graph in place when it changes by a small edge delta, instead of
// re-binding through Reset. Removed edges are tombstoned — their arcs
// keep their slots with capacity zero, preserving the arc layout and
// with it the solver's deterministic traversal order — and added edges
// revive a previously tombstoned slot or claim per-vertex slack. A
// vertex tombstone/revive rides on the same mechanism: removing every
// incident edge of a vertex leaves it isolated with its arc slots kept
// (the tombstoned vertex), and a later burst of additions at that vertex
// — a fresh population member recycling the slot — revives matching
// slots and claims slack for the rest. When a burst outgrows a vertex's
// slack, the vertex's whole arc region is relocated to fresh space with
// new headroom (amortized O(deg), preserving live-arc order), so
// membership-sized deltas always apply. ApplyUnitDelta reports false
// only for deltas that are inconsistent with the bound graph (an unknown
// removal, an addition colliding with a live arc, an out-of-range
// endpoint) WITHOUT logically modifying the bound graph — the
// verification pass precedes any capacity write — and the caller falls
// back to a full Reset. Query-level caches (warm-start preflows,
// prepared sources) may be dropped even on failure; the solver keeps
// answering correctly for the old binding either way.
//
// The adjacent-snapshot contract: both sources name edges of the solver's
// coordinate space (for the connectivity engine, Even-transformed edges),
// and the delta must describe the transition from the currently bound
// graph. Query-level caches (prepared sources, warm-start residuals) are
// invalidated; the expensive arc layout is what survives.
type UnitDeltaApplier interface {
	ApplyUnitDelta(added, removed EdgeSource) bool
}

// ArcStats describes a solver's arc-array occupancy, the accounting
// behind threshold-triggered re-densification. Arcs is the arc-array
// length; it decomposes as Live + Tombstones + Slack + Dead. Live counts
// arcs of edges currently in the bound graph; Tombstones arcs of removed
// edges kept (capacity zero) for cheap revival; Slack the per-vertex
// insertion headroom; Dead the regions abandoned by arc-region
// relocations — the component that grows without bound under sustained
// membership churn until a re-densify reclaims it.
type ArcStats struct {
	Arcs        int
	Live        int
	Tombstones  int
	Slack       int
	Dead        int
	Relocations int // arc-region relocations since the last full bind
}

// DeadFrac returns the reclaimable fraction of the arc array — dead
// zones plus tombstones over the total — the quantity governance
// policies threshold to trigger Compact.
func (s ArcStats) DeadFrac() float64 {
	if s.Arcs == 0 {
		return 0
	}
	return float64(s.Dead+s.Tombstones) / float64(s.Arcs)
}

// MemoryCompactor is implemented by solvers whose arc store supports
// in-place re-densification: Compact rebuilds the forward-star layout
// from the live arcs only, dropping dead relocation zones and tombstoned
// edge pairs and renewing per-vertex slack. It is much cheaper than a
// full Reset — the bound graph, its capacities, and per-vertex solver
// state survive; only per-arc caches are rebuilt — and it preserves
// per-vertex live-arc order, so a compacted solver keeps answering
// bit-identically to a freshly bound one (dropped tombstones re-derive
// their fresh-build positions if their edges return). Compact
// invalidates query-level warm-start caches exactly like ApplyUnitDelta.
type MemoryCompactor interface {
	// ArcStats reports the current arc-array occupancy.
	ArcStats() ArcStats
	// Compact re-densifies the arc store in place.
	Compact()
}

// Factory constructs a solver for a graph given as an edge list.
type Factory func(n int, edges []Edge) Solver

// Algorithm names a solver implementation.
type Algorithm int

// Available algorithms.
const (
	Dinic Algorithm = iota + 1
	PushRelabel
	HaoOrlin
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Dinic:
		return "dinic"
	case PushRelabel:
		return "push-relabel"
	case HaoOrlin:
		return "hao-orlin"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "dinic":
		return Dinic, nil
	case "push-relabel", "pushrelabel", "hipr":
		return PushRelabel, nil
	case "hao-orlin", "haoorlin":
		return HaoOrlin, nil
	default:
		return 0, fmt.Errorf("maxflow: unknown algorithm %q", s)
	}
}

// NewSolver builds a solver of the requested algorithm.
func (a Algorithm) NewSolver(n int, edges []Edge) Solver {
	return a.NewSolverSource(n, EdgeSlice(edges))
}

// NewSolverSource builds a solver of the requested algorithm from an
// EdgeSource.
func (a Algorithm) NewSolverSource(n int, edges EdgeSource) Solver {
	switch a {
	case PushRelabel:
		return NewPushRelabelSource(n, edges)
	case HaoOrlin:
		return NewHaoOrlinSource(n, edges)
	default:
		return NewDinicSource(n, edges)
	}
}

// UnitEdges converts a plain (u, v) edge list into unit-capacity edges.
func UnitEdges(pairs [][2]int) []Edge {
	out := make([]Edge, len(pairs))
	for i, p := range pairs {
		out[i] = Edge{U: p[0], V: p[1], Cap: 1}
	}
	return out
}

// arcSlack is the spare arc-slot capacity reserved per vertex at init:
// applyDelta inserts arcs for never-before-seen edges into these slots in
// place (two per edge, one at each endpoint), so a rebinding sweep over
// adjacent snapshots absorbs up to arcSlack novel-edge endpoints per
// vertex before a full rebuild — which then restores the slack — becomes
// necessary.
const arcSlack = 8

// arcStore is the shared residual-graph representation in forward-star
// layout: arcs are grouped contiguously by tail vertex, so the inner
// loops of BFS/DFS/discharge scan to/cap sequentially with no index
// indirection. Each original edge contributes a forward and a backward
// arc; rev maps an arc to its partner. Per-vertex arc order matches the
// historical CSR layout (ascending edge-list index), so traversal
// decisions — and with them residual states and extracted cuts — are
// bit-for-bit identical to earlier revisions.
//
// A vertex's live arcs occupy [first[v], last[v]); the remainder of its
// region up to bound[v] is insertion slack (self-partnered zero arcs,
// never traversed). Edge deltas mutate the store in place: removals
// tombstone an arc (capacity zero, slot kept, preserving traversal
// order), additions revive a tombstone or claim a slack slot at the
// position a fresh build would have used. A delta that outgrows a
// vertex's slack relocates that vertex's region to fresh space at the
// array tail (see relocate), so regions are NOT necessarily laid out in
// vertex order after patching — only [first[v], bound[v]) per vertex is
// meaningful, and abandoned regions stay behind as dead zero arcs that
// whole-array passes tolerate.
type arcStore struct {
	n     int
	to    []int32 // arc -> head vertex
	cap   []int32 // arc -> residual capacity (mutated during a query)
	cap0  []int32 // arc -> original capacity (for reset between queries)
	rev   []int32 // arc -> its reverse arc
	first []int32 // vertex -> first arc index; first[n] bounds the fresh build
	last  []int32 // vertex -> one past its last live arc
	bound []int32 // vertex -> one past its slack region (first[v+1] at init)
	// dirty records arcs whose residual capacity changed since the last
	// reset, so resetTouched restores only what a query actually moved —
	// augmenting a handful of unit paths instead of copying the whole
	// capacity array. Only solvers that route every capacity mutation
	// through touch (Dinic, HaoOrlin) may use resetTouched; push-relabel
	// uses resetAll.
	dirty []int32
	pos   []int32 // per-vertex scratch: init cursor, delta slack counting
	// relocs counts arc-region relocations since the last init: each one
	// leaves a dead zone behind, so the count (with stats' dead total) is
	// the observable trail of the memory the store owes a redensify.
	relocs int
}

// init (re)binds the store to a graph, reusing slices whose capacity
// suffices.
func (s *arcStore) init(n int, edges EdgeSource) {
	if n < 0 {
		panic(fmt.Sprintf("maxflow: negative vertex count %d", n))
	}
	m := edges.NumEdges()
	s.n = n
	s.first = growInt32(s.first, n+1)
	s.last = growInt32(s.last, n)
	s.bound = growInt32(s.bound, n)
	for i := range s.first {
		s.first[i] = 0
	}
	for i := 0; i < m; i++ {
		u, v, c := edges.EdgeAt(i)
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		if c < 0 {
			panic(fmt.Sprintf("maxflow: negative capacity on edge (%d,%d)", u, v))
		}
		s.first[u]++
		s.first[v]++
	}
	var total int32
	for v := 0; v < n; v++ {
		deg := s.first[v]
		s.first[v] = total
		s.last[v] = total + deg
		total += deg + arcSlack
		s.bound[v] = total
	}
	s.first[n] = total
	s.to = growInt32(s.to, int(total))
	s.cap = growInt32(s.cap, int(total))
	s.cap0 = growInt32(s.cap0, int(total))
	s.rev = growInt32(s.rev, int(total))
	s.pos = growInt32(s.pos, n)
	next := s.pos
	copy(next, s.first[:n])
	for i := 0; i < m; i++ {
		u, v, c := edges.EdgeAt(i)
		fwd, bwd := next[u], next[v]
		next[u]++
		next[v]++
		s.to[fwd] = int32(v)
		s.to[bwd] = int32(u)
		s.cap[fwd] = c
		s.cap[bwd] = 0
		s.rev[fwd] = bwd
		s.rev[bwd] = fwd
	}
	// Slack slots: self-partnered zero arcs, harmless to whole-array
	// passes (capacity copies, mirror rebuilds) and invisible to
	// traversal, which stops at last[v].
	for v := 0; v < n; v++ {
		for q := s.last[v]; q < s.bound[v]; q++ {
			s.to[q] = 0
			s.cap[q] = 0
			s.rev[q] = q
		}
	}
	copy(s.cap0, s.cap)
	s.dirty = s.dirty[:0]
	s.relocs = 0
}

// stats scans the store and classifies every arc slot (see ArcStats).
// O(arcs); meant for off-hot-path governance checks, not inner loops.
func (s *arcStore) stats() ArcStats {
	st := ArcStats{Arcs: len(s.to), Relocations: s.relocs}
	var used int32
	for v := 0; v < s.n; v++ {
		used += s.bound[v] - s.first[v]
		st.Slack += int(s.bound[v] - s.last[v])
		for a := s.first[v]; a < s.last[v]; a++ {
			if s.cap0[a] > 0 || s.cap0[s.rev[a]] > 0 {
				st.Live++
			} else {
				st.Tombstones++
			}
		}
	}
	st.Dead = st.Arcs - int(used)
	return st
}

// redensify rebuilds the forward-star layout from the live arcs only:
// vertex regions return to vertex order with renewed arcSlack headroom,
// dead relocation zones and tombstoned edge pairs are dropped, and the
// arrays are reallocated at exact size, releasing the grown backing
// memory. Per-vertex live-arc order is preserved — and with tombstones
// gone it coincides with a fresh build's order (fresh builds have no
// tombstones either), so traversal decisions stay bit-identical to a
// full rebind. Edges that later re-add after their tombstone was dropped
// re-derive fresh-build positions through insertSlot.
//
// The residual is left fresh (cap == cap0, empty dirty log), so callers
// must invalidate warm-start caches exactly as they do for a delta.
func (s *arcStore) redensify() {
	n := s.n
	remap := make([]int32, len(s.to))
	newFirst := make([]int32, n+1)
	newLast := make([]int32, n)
	newBound := make([]int32, n)
	var total int32
	for v := 0; v < n; v++ {
		newFirst[v] = total
		next := total
		for a := s.first[v]; a < s.last[v]; a++ {
			if s.cap0[a] > 0 || s.cap0[s.rev[a]] > 0 {
				remap[a] = next
				next++
			} else {
				remap[a] = -1
			}
		}
		newLast[v] = next
		total = next + arcSlack
		newBound[v] = total
	}
	newFirst[n] = total
	newTo := make([]int32, total)
	newCap0 := make([]int32, total)
	newRev := make([]int32, total)
	for v := 0; v < n; v++ {
		for a := s.first[v]; a < s.last[v]; a++ {
			na := remap[a]
			if na < 0 {
				continue
			}
			newTo[na] = s.to[a]
			newCap0[na] = s.cap0[a]
			newRev[na] = remap[s.rev[a]] // liveness is pair-symmetric: never -1
		}
		for q := newLast[v]; q < newBound[v]; q++ {
			newRev[q] = q // slack: self-partnered zero arcs
		}
	}
	newCap := make([]int32, total)
	copy(newCap, newCap0)
	s.to, s.cap, s.cap0, s.rev = newTo, newCap, newCap0, newRev
	s.first, s.last, s.bound = newFirst, newLast, newBound
	s.dirty = s.dirty[:0]
	s.relocs = 0
}

// touch records an arc whose capacity is about to change, so resetTouched
// can restore it (and its reverse).
func (s *arcStore) touch(a int32) {
	s.dirty = append(s.dirty, a)
}

// resetTouched restores the residual capacities recorded via touch.
func (s *arcStore) resetTouched() {
	for _, a := range s.dirty {
		s.cap[a] = s.cap0[a]
		r := s.rev[a]
		s.cap[r] = s.cap0[r]
	}
	s.dirty = s.dirty[:0]
}

// resetAll restores every residual capacity to its original value.
func (s *arcStore) resetAll() {
	copy(s.cap, s.cap0)
	s.dirty = s.dirty[:0]
}

// findArc returns the index of the arc with tail u and head v, or -1.
// Callers must ensure the (u, v) pair identifies at most one interesting
// arc; the connectivity pipeline's Even-transformed graphs guarantee this
// for original (out-copy -> in-copy) edges, whose reverse pair never
// exists as an edge of its own.
func (s *arcStore) findArc(u, v int32) int32 {
	for a := s.first[u]; a < s.last[u]; a++ {
		if s.to[a] == v {
			return a
		}
	}
	return -1
}

// insertSlot opens a slot for a new arc (u -> head) at the position a
// fresh build would have used, shifting later arcs right into the slack
// region and re-aiming their partners' rev pointers. The caller must have
// checked slack availability (last[u] < bound[u]).
//
// Position rule: live and tombstoned arcs after the region's first slot
// are ordered by ascending head for the Even-transformed graphs the
// connectivity engine binds (the first slot holds the vertex's internal
// edge, whose edge index precedes every original edge). Inserting by that
// rule keeps a patched store's traversal order identical to a fresh
// build's, which is what makes patched and rebuilt solvers answer
// bit-identically. On arbitrary graphs the rule is merely *an* order —
// values stay exact, only cut tie-breaking could differ from a rebuild.
func (s *arcStore) insertSlot(u, head int32) int32 {
	pos := s.last[u]
	for pos > s.first[u]+1 && s.to[pos-1] > head {
		pos--
	}
	for q := s.last[u]; q > pos; q-- {
		s.to[q] = s.to[q-1]
		s.cap[q] = s.cap[q-1]
		s.cap0[q] = s.cap0[q-1]
		r := s.rev[q-1]
		s.rev[q] = r
		s.rev[r] = q
	}
	s.last[u]++
	return pos
}

// relocate moves u's arc region to fresh space at the array tail, with
// room for extra more arcs plus renewed arcSlack. Live and tombstoned
// arcs keep their relative order (the traversal-order contract), partner
// rev pointers are re-aimed, and the abandoned region is zeroed into
// dead self-partnered arcs that no per-vertex loop ever visits again.
// This is what lets a vertex tombstone/revive cycle — a population slot
// whose new occupant has more edges than the old one's region can hold —
// patch in place instead of forcing a full rebuild.
func (s *arcStore) relocate(u, extra int32) {
	size := s.last[u] - s.first[u]
	newCap := size + extra + arcSlack
	start := int32(len(s.to))
	for i := int32(0); i < newCap; i++ {
		s.to = append(s.to, 0)
		s.cap = append(s.cap, 0)
		s.cap0 = append(s.cap0, 0)
		s.rev = append(s.rev, start+i)
	}
	for i := int32(0); i < size; i++ {
		old := s.first[u] + i
		a := start + i
		s.to[a] = s.to[old]
		s.cap[a] = s.cap[old]
		s.cap0[a] = s.cap0[old]
		r := s.rev[old]
		s.rev[a] = r
		s.rev[r] = a
		s.to[old] = 0
		s.cap[old] = 0
		s.cap0[old] = 0
		s.rev[old] = old
	}
	s.first[u] = start
	s.last[u] = start + size
	s.bound[u] = start + newCap
	s.relocs++
}

// insertArcPair inserts the arc (u, v) with capacity c and its
// zero-capacity partner.
func (s *arcStore) insertArcPair(u, v, c int32) {
	pu := s.insertSlot(u, v)
	pv := s.insertSlot(v, u)
	s.to[pu] = v
	s.cap[pu] = c
	s.cap0[pu] = c
	s.rev[pu] = pv
	s.to[pv] = u
	s.cap[pv] = 0
	s.cap0[pv] = 0
	s.rev[pv] = pu
}

// deltaEdge reads the i-th edge of src, swapping endpoints for stores
// initialized through a reversedSource.
func deltaEdge(src EdgeSource, i int, reversed bool) (int, int, int32) {
	u, v, c := src.EdgeAt(i)
	if reversed {
		return v, u, c
	}
	return u, v, c
}

// applyDelta patches the store in place: arcs named by removed are
// tombstoned (capacity zeroed, slot and arc order kept), arcs named by
// added either revive their tombstone at the capacity the source reports
// or — for edges never seen in any earlier binding — claim per-vertex
// slack slots at fresh-build positions. An endpoint whose slack cannot
// absorb its share of the additions has its region relocated to fresh
// tail space first (see relocate), so slack exhaustion never fails a
// delta. Patching is logically atomic: a verification pass runs first,
// and if any addition collides with a live arc, any removal names a
// missing or empty arc, or any endpoint is out of range, the bound graph
// is left unmodified (relocations may have moved arc slots, which is
// invisible to queries) and false is returned so the caller falls back
// to a full rebuild.
//
// Preconditions: the residual has been reset (cap == cap0 everywhere),
// and the two sources each name distinct edges (a diff, not a log).
func (s *arcStore) applyDelta(added, removed EdgeSource, reversed bool) bool {
	n := int32(s.n)
	na, nr := added.NumEdges(), removed.NumEdges()
	for i := 0; i < na; i++ {
		u, v, _ := deltaEdge(added, i, reversed)
		if u < 0 || int32(u) >= n || v < 0 || int32(v) >= n || u == v {
			return false
		}
		s.pos[u], s.pos[v] = 0, 0 // slack-demand counters for this delta
	}
	for i := 0; i < na; i++ {
		u, v, _ := deltaEdge(added, i, reversed)
		a := s.findArc(int32(u), int32(v))
		if a >= 0 {
			if s.cap0[a] != 0 {
				return false // addition collides with a live arc
			}
			continue // revival: no slack needed
		}
		s.pos[u]++
		s.pos[v]++
	}
	for i := 0; i < nr; i++ {
		u, v, _ := deltaEdge(removed, i, reversed)
		if u < 0 || int32(u) >= n || v < 0 || int32(v) >= n {
			return false
		}
		a := s.findArc(int32(u), int32(v))
		if a < 0 || s.cap0[a] <= 0 {
			return false
		}
	}
	// Verification passed: relocate any endpoint whose slack cannot
	// absorb its share of the novel arcs. Relocation preserves the bound
	// graph (and live-arc order), so a later rejected delta would still
	// leave the store logically untouched.
	for i := 0; i < na; i++ {
		u, v, _ := deltaEdge(added, i, reversed)
		if s.pos[u] > 0 && s.last[u]+s.pos[u] > s.bound[u] {
			s.relocate(int32(u), s.pos[u])
		}
		if s.pos[v] > 0 && s.last[v]+s.pos[v] > s.bound[v] {
			s.relocate(int32(v), s.pos[v])
		}
	}
	for i := 0; i < nr; i++ {
		u, v, _ := deltaEdge(removed, i, reversed)
		a := s.findArc(int32(u), int32(v))
		s.cap0[a] = 0
		s.cap[a] = 0
	}
	for i := 0; i < na; i++ {
		u, v, c := deltaEdge(added, i, reversed)
		if a := s.findArc(int32(u), int32(v)); a >= 0 {
			s.cap0[a] = c
			s.cap[a] = c
		} else {
			s.insertArcPair(int32(u), int32(v), c)
		}
	}
	return true
}

// growInt32 returns a length-n slice, reusing s's backing array when its
// capacity suffices.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}
