// Package maxflow implements maximum-flow solvers for the connectivity
// pipeline: Dinic's algorithm (asymptotically optimal on the unit-capacity
// graphs produced by Even's transformation, O(E*sqrt(V))) and a HIPR-style
// highest-label push-relabel algorithm with gap and global-relabeling
// heuristics, mirroring the solver the paper used (Cherkassky & Goldberg's
// HIPR). Both solvers are reusable at three levels, extending the paper's
// modified HIPR — which was rebuilt once per graph and answered many
// vertex-pair queries per invocation:
//
//   - across queries: a solver answers many (source, target) queries on
//     its graph, restoring only the residual capacities each query touched
//     (Dinic) instead of rewriting the whole capacity array;
//   - across sources: PrepareSource caches the first-phase BFS level
//     graph of a fixed source, which on a fresh residual is identical for
//     every target (Dinic; a no-op for push-relabel, which searches from
//     the sink);
//   - across graphs: Reset re-binds a solver to a new edge list in place,
//     reusing every internal array whose capacity suffices, so sweeping
//     analyses pay for allocation once per graph *shape* rather than once
//     per snapshot.
package maxflow

import "fmt"

// Edge is a directed edge with capacity, as fed to a solver constructor.
type Edge struct {
	U, V int
	Cap  int32
}

// EdgeSource yields a graph's capacitated edges by index. It lets solvers
// consume edge lists of any element type — e.g. graph.Edge with implicit
// unit capacities — without materializing an intermediate []Edge copy.
type EdgeSource interface {
	// NumEdges returns the number of edges.
	NumEdges() int
	// EdgeAt returns the i-th edge as (tail, head, capacity).
	EdgeAt(i int) (u, v int, cap int32)
}

// EdgeSlice adapts a []Edge to EdgeSource.
type EdgeSlice []Edge

// NumEdges implements EdgeSource.
func (s EdgeSlice) NumEdges() int { return len(s) }

// EdgeAt implements EdgeSource.
func (s EdgeSlice) EdgeAt(i int) (int, int, int32) {
	e := s[i]
	return e.U, e.V, e.Cap
}

// Solver answers repeated maximum-flow queries on a fixed graph.
type Solver interface {
	// MaxFlow returns the value of a maximum s-t flow. It may be called
	// repeatedly with different pairs; each call starts from zero flow.
	MaxFlow(s, t int) int
	// MaxFlowLimit is MaxFlow that may stop early once the flow value
	// reaches limit, returning at least min(limit, true max flow). It
	// exists for min-of-max-flows searches where values above the current
	// minimum are irrelevant.
	MaxFlowLimit(s, t, limit int) int
	// N returns the number of vertices.
	N() int
	// Reset re-binds the solver to a new graph in place, reusing internal
	// arrays whose capacity suffices instead of reallocating. After Reset
	// the solver behaves exactly like a freshly constructed one.
	Reset(n int, edges EdgeSource)
	// PrepareSource hints that the following queries share source s,
	// letting the solver cache source-dependent state that is valid for
	// every target (Dinic caches the fresh-residual BFS level graph; the
	// hint is a no-op for push-relabel). The cache is invalidated by
	// Reset and by PrepareSource with a different source.
	PrepareSource(s int)
}

// Factory constructs a solver for a graph given as an edge list.
type Factory func(n int, edges []Edge) Solver

// Algorithm names a solver implementation.
type Algorithm int

// Available algorithms.
const (
	Dinic Algorithm = iota + 1
	PushRelabel
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Dinic:
		return "dinic"
	case PushRelabel:
		return "push-relabel"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "dinic":
		return Dinic, nil
	case "push-relabel", "pushrelabel", "hipr":
		return PushRelabel, nil
	default:
		return 0, fmt.Errorf("maxflow: unknown algorithm %q", s)
	}
}

// NewSolver builds a solver of the requested algorithm.
func (a Algorithm) NewSolver(n int, edges []Edge) Solver {
	return a.NewSolverSource(n, EdgeSlice(edges))
}

// NewSolverSource builds a solver of the requested algorithm from an
// EdgeSource.
func (a Algorithm) NewSolverSource(n int, edges EdgeSource) Solver {
	switch a {
	case PushRelabel:
		return NewPushRelabelSource(n, edges)
	default:
		return NewDinicSource(n, edges)
	}
}

// UnitEdges converts a plain (u, v) edge list into unit-capacity edges.
func UnitEdges(pairs [][2]int) []Edge {
	out := make([]Edge, len(pairs))
	for i, p := range pairs {
		out[i] = Edge{U: p[0], V: p[1], Cap: 1}
	}
	return out
}

// arcStore is the shared residual-graph representation in forward-star
// layout: arcs are grouped contiguously by tail vertex, so the inner
// loops of BFS/DFS/discharge scan to/cap sequentially with no index
// indirection. Each original edge contributes a forward and a backward
// arc; rev maps an arc to its partner. Per-vertex arc order matches the
// historical CSR layout (ascending edge-list index), so traversal
// decisions — and with them residual states and extracted cuts — are
// bit-for-bit identical to earlier revisions.
type arcStore struct {
	n     int
	to    []int32 // arc -> head vertex
	cap   []int32 // arc -> residual capacity (mutated during a query)
	cap0  []int32 // arc -> original capacity (for reset between queries)
	rev   []int32 // arc -> its reverse arc
	first []int32 // vertex -> first arc index; first[n] is the arc count
	// dirty records arcs whose residual capacity changed since the last
	// reset, so resetTouched restores only what a query actually moved —
	// augmenting a handful of unit paths instead of copying the whole
	// capacity array. Only solvers that route every capacity mutation
	// through touch (Dinic) may use resetTouched; others use resetAll.
	dirty []int32
	pos   []int32 // per-vertex next-slot cursor, scratch for init
}

// init (re)binds the store to a graph, reusing slices whose capacity
// suffices.
func (s *arcStore) init(n int, edges EdgeSource) {
	if n < 0 {
		panic(fmt.Sprintf("maxflow: negative vertex count %d", n))
	}
	m := edges.NumEdges()
	s.n = n
	s.first = growInt32(s.first, n+1)
	for i := range s.first {
		s.first[i] = 0
	}
	for i := 0; i < m; i++ {
		u, v, c := edges.EdgeAt(i)
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		if c < 0 {
			panic(fmt.Sprintf("maxflow: negative capacity on edge (%d,%d)", u, v))
		}
		s.first[u]++
		s.first[v]++
	}
	var total int32
	for v := 0; v < n; v++ {
		deg := s.first[v]
		s.first[v] = total
		total += deg
	}
	s.first[n] = total
	s.to = growInt32(s.to, int(total))
	s.cap = growInt32(s.cap, int(total))
	s.cap0 = growInt32(s.cap0, int(total))
	s.rev = growInt32(s.rev, int(total))
	s.pos = growInt32(s.pos, n)
	next := s.pos
	copy(next, s.first[:n])
	for i := 0; i < m; i++ {
		u, v, c := edges.EdgeAt(i)
		fwd, bwd := next[u], next[v]
		next[u]++
		next[v]++
		s.to[fwd] = int32(v)
		s.to[bwd] = int32(u)
		s.cap[fwd] = c
		s.cap[bwd] = 0
		s.rev[fwd] = bwd
		s.rev[bwd] = fwd
	}
	copy(s.cap0, s.cap)
	s.dirty = s.dirty[:0]
}

// touch records an arc whose capacity is about to change, so resetTouched
// can restore it (and its reverse).
func (s *arcStore) touch(a int32) {
	s.dirty = append(s.dirty, a)
}

// resetTouched restores the residual capacities recorded via touch.
func (s *arcStore) resetTouched() {
	for _, a := range s.dirty {
		s.cap[a] = s.cap0[a]
		r := s.rev[a]
		s.cap[r] = s.cap0[r]
	}
	s.dirty = s.dirty[:0]
}

// resetAll restores every residual capacity to its original value.
func (s *arcStore) resetAll() {
	copy(s.cap, s.cap0)
	s.dirty = s.dirty[:0]
}

// growInt32 returns a length-n slice, reusing s's backing array when its
// capacity suffices.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}
