package maxflow

import (
	"math/rand"
	"testing"
)

// referenceMaxFlow is a deliberately simple Edmonds-Karp implementation
// used only as a test oracle.
func referenceMaxFlow(n int, edges []Edge, s, t int) int {
	capm := make([][]int64, n)
	for i := range capm {
		capm[i] = make([]int64, n)
	}
	for _, e := range edges {
		capm[e.U][e.V] += int64(e.Cap)
	}
	flow := 0
	for {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if capm[u][v] > 0 && parent[v] < 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] < 0 {
			return flow
		}
		// Bottleneck along path.
		bottleneck := int64(1 << 62)
		for v := t; v != s; v = parent[v] {
			if capm[parent[v]][v] < bottleneck {
				bottleneck = capm[parent[v]][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			capm[parent[v]][v] -= bottleneck
			capm[v][parent[v]] += bottleneck
		}
		flow += int(bottleneck)
	}
}

func solvers() map[string]Factory {
	return map[string]Factory{
		"dinic":        func(n int, e []Edge) Solver { return NewDinic(n, e) },
		"push-relabel": func(n int, e []Edge) Solver { return NewPushRelabel(n, e) },
		"hao-orlin":    func(n int, e []Edge) Solver { return NewHaoOrlin(n, e) },
	}
}

func TestKnownGraphs(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges []Edge
		s, t  int
		want  int
	}{
		{
			name: "single edge",
			n:    2, edges: []Edge{{0, 1, 1}},
			s: 0, t: 1, want: 1,
		},
		{
			name: "two disjoint paths",
			n:    4, edges: []Edge{{0, 1, 1}, {1, 3, 1}, {0, 2, 1}, {2, 3, 1}},
			s: 0, t: 3, want: 2,
		},
		{
			name: "bottleneck in middle",
			n:    4, edges: []Edge{{0, 1, 5}, {1, 2, 1}, {2, 3, 5}},
			s: 0, t: 3, want: 1,
		},
		{
			name: "no path",
			n:    3, edges: []Edge{{1, 0, 1}, {2, 1, 1}},
			s: 0, t: 2, want: 0,
		},
		{
			name: "classic CLRS",
			n:    6,
			edges: []Edge{
				{0, 1, 16}, {0, 2, 13}, {1, 3, 12}, {2, 1, 4},
				{2, 4, 14}, {3, 2, 9}, {3, 5, 20}, {4, 3, 7}, {4, 5, 4},
			},
			s: 0, t: 5, want: 23,
		},
		{
			name: "antiparallel unit pair",
			n:    2, edges: []Edge{{0, 1, 1}, {1, 0, 1}},
			s: 0, t: 1, want: 1,
		},
		{
			name: "zero capacity edge",
			n:    2, edges: []Edge{{0, 1, 0}},
			s: 0, t: 1, want: 0,
		},
	}
	for name, factory := range solvers() {
		for _, tt := range tests {
			t.Run(name+"/"+tt.name, func(t *testing.T) {
				got := factory(tt.n, tt.edges).MaxFlow(tt.s, tt.t)
				if got != tt.want {
					t.Fatalf("MaxFlow = %d, want %d", got, tt.want)
				}
			})
		}
	}
}

func TestRepeatedQueriesIndependent(t *testing.T) {
	// A solver must answer many queries on the same graph, each from zero
	// flow — the usage pattern of the connectivity pipeline.
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 3, 2}}
	for name, factory := range solvers() {
		t.Run(name, func(t *testing.T) {
			s := factory(4, edges)
			for i := 0; i < 3; i++ {
				if got := s.MaxFlow(0, 3); got != 2 {
					t.Fatalf("query %d: MaxFlow(0,3) = %d, want 2", i, got)
				}
				if got := s.MaxFlow(0, 1); got != 1 {
					t.Fatalf("query %d: MaxFlow(0,1) = %d, want 1", i, got)
				}
				if got := s.MaxFlow(3, 0); got != 0 {
					t.Fatalf("query %d: MaxFlow(3,0) = %d, want 0", i, got)
				}
			}
		})
	}
}

func TestMaxFlowLimit(t *testing.T) {
	// Wide graph: 10 disjoint unit paths.
	var edges []Edge
	n := 22
	for i := 0; i < 10; i++ {
		mid := 2 + i
		edges = append(edges, Edge{0, mid, 1}, Edge{mid, 1, 1})
	}
	for name, factory := range solvers() {
		t.Run(name, func(t *testing.T) {
			s := factory(n, edges)
			if got := s.MaxFlowLimit(0, 1, 3); got < 3 {
				t.Fatalf("MaxFlowLimit(3) = %d, want >= 3", got)
			}
			if got := s.MaxFlowLimit(0, 1, 100); got != 10 {
				t.Fatalf("MaxFlowLimit(100) = %d, want 10", got)
			}
			if got := s.MaxFlow(0, 1); got != 10 {
				t.Fatalf("MaxFlow after limited query = %d, want 10", got)
			}
		})
	}
}

func TestRandomGraphsAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(12)
		m := r.Intn(4 * n)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, Edge{u, v, int32(1 + r.Intn(10))})
		}
		s, tgt := 0, n-1
		want := referenceMaxFlow(n, edges, s, tgt)
		for name, factory := range solvers() {
			if got := factory(n, edges).MaxFlow(s, tgt); got != want {
				t.Fatalf("trial %d: %s = %d, reference = %d (n=%d edges=%v)",
					trial, name, got, want, n, edges)
			}
		}
	}
}

func TestRandomUnitGraphsCrossCheck(t *testing.T) {
	// Unit-capacity digraphs shaped like Even transforms are the pipeline's
	// actual workload; cross-check the two implementations on them.
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(30)
		var pairs [][2]int
		for i := 0; i < n*3; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
		edges := UnitEdges(pairs)
		d := NewDinic(n, edges)
		p := NewPushRelabel(n, edges)
		for q := 0; q < 5; q++ {
			s, tgt := r.Intn(n), r.Intn(n)
			if s == tgt {
				continue
			}
			dv, pv := d.MaxFlow(s, tgt), p.MaxFlow(s, tgt)
			if dv != pv {
				t.Fatalf("trial %d query (%d,%d): dinic=%d push-relabel=%d",
					trial, s, tgt, dv, pv)
			}
		}
	}
}

func TestFlowBoundedByDegrees(t *testing.T) {
	// Property: on a unit-capacity graph, maxflow(s,t) <= min(outdeg(s),
	// indeg(t)).
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(20)
		out := make([]int, n)
		in := make([]int, n)
		seen := map[[2]int]bool{}
		var pairs [][2]int
		for i := 0; i < n*2; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			pairs = append(pairs, [2]int{u, v})
			out[u]++
			in[v]++
		}
		d := NewDinic(n, UnitEdges(pairs))
		s, tgt := 0, n-1
		flow := d.MaxFlow(s, tgt)
		bound := out[s]
		if in[tgt] < bound {
			bound = in[tgt]
		}
		if flow > bound {
			t.Fatalf("flow %d exceeds degree bound %d", flow, bound)
		}
	}
}

func TestInvalidQueriesPanic(t *testing.T) {
	for name, factory := range solvers() {
		s := factory(3, []Edge{{0, 1, 1}})
		for _, q := range [][2]int{{0, 0}, {-1, 2}, {0, 3}} {
			q := q
			t.Run(name, func(t *testing.T) {
				defer func() {
					if recover() == nil {
						t.Fatalf("query %v should panic", q)
					}
				}()
				s.MaxFlow(q[0], q[1])
			})
		}
	}
}

func TestInvalidEdgesPanic(t *testing.T) {
	t.Run("out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewDinic(2, []Edge{{0, 5, 1}})
	})
	t.Run("negative capacity", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewDinic(2, []Edge{{0, 1, -1}})
	})
}

func TestParseAlgorithm(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Algorithm
	}{{"dinic", Dinic}, {"push-relabel", PushRelabel}, {"hipr", PushRelabel}} {
		got, err := ParseAlgorithm(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParseAlgorithm("simplex"); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if Dinic.String() != "dinic" || PushRelabel.String() != "push-relabel" {
		t.Error("String() names wrong")
	}
}

func TestAlgorithmNewSolver(t *testing.T) {
	edges := []Edge{{0, 1, 1}}
	if _, ok := Dinic.NewSolver(2, edges).(*DinicSolver); !ok {
		t.Error("Dinic.NewSolver wrong type")
	}
	if _, ok := PushRelabel.NewSolver(2, edges).(*PushRelabelSolver); !ok {
		t.Error("PushRelabel.NewSolver wrong type")
	}
}

func TestLargeUnitGraphSmoke(t *testing.T) {
	// A denser random unit graph, to exercise global relabeling.
	r := rand.New(rand.NewSource(31337))
	n := 300
	var pairs [][2]int
	for i := 0; i < n*20; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	edges := UnitEdges(pairs)
	d := NewDinic(n, edges)
	p := NewPushRelabel(n, edges)
	for q := 0; q < 10; q++ {
		s, tgt := r.Intn(n), r.Intn(n)
		if s == tgt {
			continue
		}
		if dv, pv := d.MaxFlow(s, tgt), p.MaxFlow(s, tgt); dv != pv {
			t.Fatalf("query (%d,%d): dinic=%d push-relabel=%d", s, tgt, dv, pv)
		}
	}
}
