package maxflow

import (
	"math/rand"
	"testing"

	"kadre/internal/graph"
)

// Additional cross-cutting properties of the solvers.

func randomUnitGraph(r *rand.Rand, n, m int) []Edge {
	var edges []Edge
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: u, V: v, Cap: 1})
		}
	}
	return edges
}

func TestMaxFlowLimitConsistency(t *testing.T) {
	// Properties: MaxFlowLimit with limit >= true flow equals MaxFlow;
	// with limit < true flow it returns a value in [limit, true flow]
	// for Dinic (exactly limit) and >= limit for push-relabel.
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(20)
		edges := randomUnitGraph(r, n, n*3)
		for name, factory := range solvers() {
			s := factory(n, edges)
			src, tgt := 0, n-1
			full := s.MaxFlow(src, tgt)
			if got := s.MaxFlowLimit(src, tgt, full+10); got != full {
				t.Fatalf("%s: limit above flow changed result: %d vs %d", name, got, full)
			}
			if full > 1 {
				lim := full - 1
				got := s.MaxFlowLimit(src, tgt, lim)
				if got < lim {
					t.Fatalf("%s: limited flow %d below limit %d", name, got, lim)
				}
				if got > full {
					t.Fatalf("%s: limited flow %d exceeds true flow %d", name, got, full)
				}
			}
		}
	}
}

func TestFlowMonotoneUnderEdgeAddition(t *testing.T) {
	// Adding edges never decreases the max flow, and adding a direct s-t
	// edge increases it by exactly its capacity.
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(10)
		e1 := randomUnitGraph(r, n, n*2)
		e2 := randomUnitGraph(r, n, n*2)
		src, tgt := 0, n-1
		f1 := NewDinic(n, e1).MaxFlow(src, tgt)
		fu := NewDinic(n, append(append([]Edge{}, e1...), e2...)).MaxFlow(src, tgt)
		if fu < f1 {
			t.Fatalf("adding edges decreased flow: %d -> %d", f1, fu)
		}
		direct := append(append([]Edge{}, e1...), Edge{U: src, V: tgt, Cap: 3})
		fd := NewDinic(n, direct).MaxFlow(src, tgt)
		if fd != f1+3 {
			t.Fatalf("direct edge: flow %d, want %d", fd, f1+3)
		}
	}
}

func TestResidualReachableCertifiesMinCut(t *testing.T) {
	// After a max flow, the residual-reachable set S (s in S, t not in S)
	// certifies the flow value: the capacity of arcs from S to V\S equals
	// the flow (max-flow/min-cut).
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(15)
		edges := randomUnitGraph(r, n, n*3)
		d := NewDinic(n, edges)
		src, tgt := 0, n-1
		flow := d.MaxFlow(src, tgt)
		reach := d.ResidualReachable(src)
		if !reach[src] {
			t.Fatal("source not reachable from itself")
		}
		if reach[tgt] {
			t.Fatal("sink reachable in residual graph after max flow")
		}
		var cutCap int
		for _, e := range edges {
			if reach[e.U] && !reach[e.V] {
				cutCap += int(e.Cap)
			}
		}
		if cutCap != flow {
			t.Fatalf("trial %d: cut capacity %d != flow %d", trial, cutCap, flow)
		}
	}
}

func TestSolversHandleParallelAndAntiparallelEdges(t *testing.T) {
	// Parallel edges add capacity; antiparallel edges are independent.
	edges := []Edge{{0, 1, 1}, {0, 1, 1}, {0, 1, 1}, {1, 0, 5}}
	for name, factory := range solvers() {
		s := factory(2, edges)
		if got := s.MaxFlow(0, 1); got != 3 {
			t.Fatalf("%s: parallel edges flow = %d, want 3", name, got)
		}
		if got := s.MaxFlow(1, 0); got != 5 {
			t.Fatalf("%s: antiparallel flow = %d, want 5", name, got)
		}
	}
}

// TestVertexTombstoneReviveMatchesFresh pins the solver-level vertex
// tombstone/revive semantics the stable-slot population indexing relies
// on: on Even-transformed graphs, removing every incident edge of a
// vertex through ApplyUnitDelta (the vertex tombstone — the slot's arc
// regions stay, with only the never-traversed internal edge alive) and
// later re-wiring the vertex with a DIFFERENT, larger edge set (the
// revive — tombstone revivals plus slack claims plus, beyond arcSlack,
// a region relocation) must leave HaoOrlin and Dinic answering exactly
// like fresh solvers on the edited graph: flow values, MaxFlowLimit
// returns, and Dinic's extracted-cut residuals.
func TestVertexTombstoneReviveMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 10 + r.Intn(12)
		g, even := evenGraph(r, n, 3)
		patched := map[string]Solver{
			"dinic":     NewDinic(2*n, even),
			"hao-orlin": NewHaoOrlin(2*n, even),
		}
		victim := r.Intn(n)

		// Tombstone: remove every edge incident to victim.
		var removed []graph.Edge
		for _, e := range g.Edges() {
			if e.U == victim || e.V == victim {
				removed = append(removed, e)
			}
		}
		for _, e := range removed {
			g.RemoveEdge(e.U, e.V)
		}
		checkAgainstFresh := func(stage string) {
			t.Helper()
			freshEven := unitEven(g)
			for name, s := range patched {
				var fresh Solver
				if name == "dinic" {
					fresh = NewDinic(2*n, freshEven)
				} else {
					fresh = NewHaoOrlin(2*n, freshEven)
				}
				for q := 0; q < 8; q++ {
					src, tgt := r.Intn(n), r.Intn(n)
					if src == tgt {
						continue
					}
					sOut, tIn := graph.Out(src), graph.In(tgt)
					fresh.PrepareSource(sOut)
					s.PrepareSource(sOut)
					want := fresh.MaxFlow(sOut, tIn)
					if got := s.MaxFlow(sOut, tIn); got != want {
						t.Fatalf("trial %d %s %s (%d,%d): patched=%d, fresh=%d", trial, stage, name, src, tgt, got, want)
					}
					// MaxFlowLimit behavior must be bit-identical between the
					// patched and fresh instances of the SAME algorithm, even
					// where the contract allows overshooting the limit.
					for _, lim := range []int{0, 1, want, want + 1} {
						if got, wantL := s.MaxFlowLimit(sOut, tIn, lim), fresh.MaxFlowLimit(sOut, tIn, lim); got != wantL {
							t.Fatalf("trial %d %s %s (%d,%d) limit %d: patched=%d, fresh=%d",
								trial, stage, name, src, tgt, lim, got, wantL)
						}
					}
				}
			}
			// Extracted cuts: patched Dinic's residual equals fresh Dinic's.
			pd := patched["dinic"].(*DinicSolver)
			fd := NewDinic(2*n, freshEven)
			for q := 0; q < 4; q++ {
				src, tgt := r.Intn(n), r.Intn(n)
				if src == tgt || g.HasEdge(src, tgt) {
					continue
				}
				if pv, fv := pd.MaxFlow(graph.Out(src), graph.In(tgt)), fd.MaxFlow(graph.Out(src), graph.In(tgt)); pv != fv {
					t.Fatalf("trial %d %s cut-pair flow %d != %d", trial, stage, pv, fv)
				}
				pr := pd.ResidualReachable(graph.Out(src))
				fr := fd.ResidualReachable(graph.Out(src))
				for v := range pr {
					if pr[v] != fr[v] {
						t.Fatalf("trial %d %s: residual reachability diverged at vertex %d", trial, stage, v)
					}
				}
			}
		}
		rem := evenDelta(removed)
		for name, s := range patched {
			if !s.(UnitDeltaApplier).ApplyUnitDelta(EdgeSlice{}, rem) {
				t.Fatalf("trial %d %s: vertex tombstone delta rejected", trial, name)
			}
		}
		checkAgainstFresh("tombstoned")

		// Revive: wire the vertex back with a different, larger edge set —
		// more out-edges than arcSlack so the revive exercises relocation.
		var added []graph.Edge
		for v := 0; v < n && len(added) < arcSlack+3; v++ {
			if v != victim && !g.HasEdge(victim, v) {
				g.AddEdge(victim, v)
				added = append(added, graph.Edge{U: victim, V: v})
			}
		}
		for v := n - 1; v >= 0 && len(added) < arcSlack+6; v-- {
			if v != victim && !g.HasEdge(v, victim) {
				g.AddEdge(v, victim)
				added = append(added, graph.Edge{U: v, V: victim})
			}
		}
		add := evenDelta(added)
		for name, s := range patched {
			if !s.(UnitDeltaApplier).ApplyUnitDelta(add, EdgeSlice{}) {
				t.Fatalf("trial %d %s: vertex revive delta rejected", trial, name)
			}
		}
		checkAgainstFresh("revived")
	}
}

func TestZeroEdgeGraph(t *testing.T) {
	for name, factory := range solvers() {
		if got := factory(3, nil).MaxFlow(0, 2); got != 0 {
			t.Fatalf("%s: empty graph flow = %d", name, got)
		}
	}
}
