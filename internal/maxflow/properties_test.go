package maxflow

import (
	"math/rand"
	"testing"
)

// Additional cross-cutting properties of the solvers.

func randomUnitGraph(r *rand.Rand, n, m int) []Edge {
	var edges []Edge
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: u, V: v, Cap: 1})
		}
	}
	return edges
}

func TestMaxFlowLimitConsistency(t *testing.T) {
	// Properties: MaxFlowLimit with limit >= true flow equals MaxFlow;
	// with limit < true flow it returns a value in [limit, true flow]
	// for Dinic (exactly limit) and >= limit for push-relabel.
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(20)
		edges := randomUnitGraph(r, n, n*3)
		for name, factory := range solvers() {
			s := factory(n, edges)
			src, tgt := 0, n-1
			full := s.MaxFlow(src, tgt)
			if got := s.MaxFlowLimit(src, tgt, full+10); got != full {
				t.Fatalf("%s: limit above flow changed result: %d vs %d", name, got, full)
			}
			if full > 1 {
				lim := full - 1
				got := s.MaxFlowLimit(src, tgt, lim)
				if got < lim {
					t.Fatalf("%s: limited flow %d below limit %d", name, got, lim)
				}
				if got > full {
					t.Fatalf("%s: limited flow %d exceeds true flow %d", name, got, full)
				}
			}
		}
	}
}

func TestFlowMonotoneUnderEdgeAddition(t *testing.T) {
	// Adding edges never decreases the max flow, and adding a direct s-t
	// edge increases it by exactly its capacity.
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(10)
		e1 := randomUnitGraph(r, n, n*2)
		e2 := randomUnitGraph(r, n, n*2)
		src, tgt := 0, n-1
		f1 := NewDinic(n, e1).MaxFlow(src, tgt)
		fu := NewDinic(n, append(append([]Edge{}, e1...), e2...)).MaxFlow(src, tgt)
		if fu < f1 {
			t.Fatalf("adding edges decreased flow: %d -> %d", f1, fu)
		}
		direct := append(append([]Edge{}, e1...), Edge{U: src, V: tgt, Cap: 3})
		fd := NewDinic(n, direct).MaxFlow(src, tgt)
		if fd != f1+3 {
			t.Fatalf("direct edge: flow %d, want %d", fd, f1+3)
		}
	}
}

func TestResidualReachableCertifiesMinCut(t *testing.T) {
	// After a max flow, the residual-reachable set S (s in S, t not in S)
	// certifies the flow value: the capacity of arcs from S to V\S equals
	// the flow (max-flow/min-cut).
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(15)
		edges := randomUnitGraph(r, n, n*3)
		d := NewDinic(n, edges)
		src, tgt := 0, n-1
		flow := d.MaxFlow(src, tgt)
		reach := d.ResidualReachable(src)
		if !reach[src] {
			t.Fatal("source not reachable from itself")
		}
		if reach[tgt] {
			t.Fatal("sink reachable in residual graph after max flow")
		}
		var cutCap int
		for _, e := range edges {
			if reach[e.U] && !reach[e.V] {
				cutCap += int(e.Cap)
			}
		}
		if cutCap != flow {
			t.Fatalf("trial %d: cut capacity %d != flow %d", trial, cutCap, flow)
		}
	}
}

func TestSolversHandleParallelAndAntiparallelEdges(t *testing.T) {
	// Parallel edges add capacity; antiparallel edges are independent.
	edges := []Edge{{0, 1, 1}, {0, 1, 1}, {0, 1, 1}, {1, 0, 5}}
	for name, factory := range solvers() {
		s := factory(2, edges)
		if got := s.MaxFlow(0, 1); got != 3 {
			t.Fatalf("%s: parallel edges flow = %d, want 3", name, got)
		}
		if got := s.MaxFlow(1, 0); got != 5 {
			t.Fatalf("%s: antiparallel flow = %d, want 5", name, got)
		}
	}
}

func TestZeroEdgeGraph(t *testing.T) {
	for name, factory := range solvers() {
		if got := factory(3, nil).MaxFlow(0, 2); got != 0 {
			t.Fatalf("%s: empty graph flow = %d", name, got)
		}
	}
}
