package maxflow

import "fmt"

// PushRelabelSolver implements the highest-label variant of the
// push-relabel method with the gap and global-relabeling heuristics — the
// algorithm behind Cherkassky & Goldberg's HIPR, which the paper used for
// all its max-flow computations. Worst-case O(V^2 * sqrt(E)).
//
// Only the flow value is computed (HIPR's "phase 1"); the connectivity
// pipeline never needs an explicit flow decomposition.
//
// Consecutive queries that share a source warm-start from the previous
// query's preflow, in the spirit of Hao & Orlin's one-source all-sinks
// algorithm: the residual state and parked excess are kept, heights are
// recomputed exactly for the new sink by a global relabel, the source's
// out-arcs are re-saturated, and the discharge loop reroutes the
// leftover excess toward the new sink instead of rebuilding the flow
// from zero. The result is exact for every sink: the preflow originated
// at the source, the recomputed heights are valid, and at termination no
// vertex on the residual-t side holds excess, so the saturated-cut
// argument pins excess(t) to the max-flow value (see the sweep tests,
// which pin equality against cold solves). Changing the source resets to
// the classic cold start.
type PushRelabelSolver struct {
	st     arcStore
	height []int32
	excess []int64
	cur    []int32 // current-arc cursor per vertex
	// sweepSrc is the source whose preflow the residual state carries
	// (-1 after Reset): queries from the same source warm-start on it.
	sweepSrc int32
	// rcap mirrors the reverse capacities: rcap[a] == st.cap[st.rev[a]],
	// maintained on every push. The global relabel's backward BFS is the
	// sweep's hottest loop, and the mirror turns its per-arc reverse
	// lookup — a dependent random-access load — into a sequential scan.
	rcap  []int32
	rcap0 []int32
	// Active-vertex buckets indexed by height (intrusive singly-linked
	// lists over vertices).
	bucketHead []int32
	nextActive []int32
	highest    int32 // highest height with a possibly-active vertex
	// Per-height vertex counts for the gap heuristic.
	heightCount []int32
	queue       []int32 // BFS scratch for global relabeling
	relabels    int     // since last global relabel
}

var _ Solver = (*PushRelabelSolver)(nil)

// NewPushRelabel builds a push-relabel solver for the given graph.
func NewPushRelabel(n int, edges []Edge) *PushRelabelSolver {
	return NewPushRelabelSource(n, EdgeSlice(edges))
}

// NewPushRelabelSource builds a push-relabel solver from an EdgeSource.
func NewPushRelabelSource(n int, edges EdgeSource) *PushRelabelSolver {
	p := &PushRelabelSolver{}
	p.Reset(n, edges)
	return p
}

// Reset implements Solver: it re-binds the solver to a new graph in
// place, reusing internal arrays whose capacity suffices.
func (p *PushRelabelSolver) Reset(n int, edges EdgeSource) {
	p.st.init(n, edges)
	p.height = growInt32(p.height, n)
	p.cur = growInt32(p.cur, n)
	p.bucketHead = growInt32(p.bucketHead, 2*n+2)
	p.nextActive = growInt32(p.nextActive, n)
	p.heightCount = growInt32(p.heightCount, 2*n+2)
	if cap(p.excess) >= n {
		p.excess = p.excess[:n]
	} else {
		p.excess = make([]int64, n)
	}
	if cap(p.queue) < n {
		p.queue = make([]int32, 0, n)
	}
	arcs := len(p.st.cap)
	p.rcap = growInt32(p.rcap, arcs)
	p.rcap0 = growInt32(p.rcap0, arcs)
	for a := 0; a < arcs; a++ {
		p.rcap0[a] = p.st.cap0[p.st.rev[a]]
	}
	p.sweepSrc = -1
}

// N implements Solver.
func (p *PushRelabelSolver) N() int { return p.st.n }

// ApplyUnitDelta implements UnitDeltaApplier: it patches the bound graph
// in place and invalidates the warm-start preflow, which may violate the
// patched capacities. The rcap0 mirror is rebuilt (one sequential pass);
// rcap itself is refreshed by the next query's cold start. The warm
// start is dropped even when the patch fails — resetAll has already
// restored the residual, so carrying the old sweep's excess onto it
// would corrupt the next same-source query.
func (p *PushRelabelSolver) ApplyUnitDelta(added, removed EdgeSource) bool {
	p.st.resetAll()
	p.sweepSrc = -1
	if !p.st.applyDelta(added, removed, false) {
		return false
	}
	// Region relocation may have grown the arc arrays; the mirrors follow.
	arcs := len(p.st.cap)
	p.rcap = growInt32(p.rcap, arcs)
	p.rcap0 = growInt32(p.rcap0, arcs)
	for a := 0; a < arcs; a++ {
		p.rcap0[a] = p.st.cap0[p.st.rev[a]]
	}
	return true
}

// PrepareSource implements Solver. Push-relabel computes its heights by a
// backward search from the sink, so there is no target-independent source
// state to cache; the hint is a no-op.
func (p *PushRelabelSolver) PrepareSource(int) {}

// ArcStats implements MemoryCompactor.
func (p *PushRelabelSolver) ArcStats() ArcStats { return p.st.stats() }

// Compact implements MemoryCompactor: it re-densifies the arc store,
// invalidates the warm-start preflow, and rebuilds the reverse-capacity
// mirrors over the new layout. The mirrors are reallocated when the
// compacted store is much smaller than their backing arrays, so the
// memory a relocation-heavy stretch grew is actually released.
func (p *PushRelabelSolver) Compact() {
	p.st.redensify()
	p.sweepSrc = -1
	arcs := len(p.st.cap)
	if cap(p.rcap0) > 2*arcs {
		p.rcap = make([]int32, arcs)
		p.rcap0 = make([]int32, arcs)
	} else {
		p.rcap = growInt32(p.rcap, arcs)
		p.rcap0 = growInt32(p.rcap0, arcs)
	}
	for a := 0; a < arcs; a++ {
		p.rcap0[a] = p.st.cap0[p.st.rev[a]]
	}
}

// MaxFlow implements Solver.
func (p *PushRelabelSolver) MaxFlow(s, t int) int {
	return p.MaxFlowLimit(s, t, int(^uint(0)>>1))
}

// MaxFlowLimit implements Solver. The early-exit check fires when the
// excess already at the sink reaches limit.
func (p *PushRelabelSolver) MaxFlowLimit(s, t, limit int) int {
	n := int32(p.st.n)
	if s < 0 || int32(s) >= n || t < 0 || int32(t) >= n {
		panic(fmt.Sprintf("maxflow: query (%d,%d) out of range [0,%d)", s, t, n))
	}
	if s == t {
		panic("maxflow: source equals target")
	}
	ss, tt := int32(s), int32(t)
	if p.sweepSrc != ss {
		// Cold start: fresh residual, no excess.
		p.st.resetAll()
		copy(p.rcap, p.rcap0)
		for i := range p.excess {
			p.excess[i] = 0
		}
		p.sweepSrc = ss
	}
	p.relabels = 0

	// Exact heights for this sink via backward BFS on the (possibly
	// inherited) residual, with active buckets rebuilt from the carried
	// excess; then (re-)saturate the arcs out of s — on a warm start only
	// the capacity that earlier discharges pushed back into s.
	p.globalRelabelPreserve(ss, tt)
	for a := p.st.first[ss]; a < p.st.last[ss]; a++ {
		if p.st.cap[a] <= 0 {
			continue
		}
		v := p.st.to[a]
		if v == ss {
			continue
		}
		amt := p.st.cap[a]
		before := p.excess[v]
		p.excess[v] += int64(amt)
		r := p.st.rev[a]
		p.st.cap[r] += amt
		p.st.cap[a] = 0
		p.rcap[a] += amt
		p.rcap[r] = 0
		if before == 0 && v != tt && p.height[v] < n {
			p.activate(v)
		}
	}

	for int(p.excess[tt]) < limit {
		u := p.popHighest(n)
		if u < 0 {
			break
		}
		p.discharge(u, ss, tt, n)
		if p.relabels > p.st.n {
			p.globalRelabelPreserve(ss, tt)
			p.relabels = 0
		}
	}
	return int(p.excess[tt])
}

// activate inserts v into its height bucket and raises the highest-active
// watermark.
func (p *PushRelabelSolver) activate(v int32) {
	h := p.height[v]
	p.nextActive[v] = p.bucketHead[h]
	p.bucketHead[h] = v
	if h > p.highest {
		p.highest = h
	}
}

// popHighest removes and returns the active vertex with the greatest
// height below n, or -1 if none remain.
func (p *PushRelabelSolver) popHighest(n int32) int32 {
	if p.highest >= n {
		p.highest = n - 1
	}
	for p.highest >= 0 {
		if u := p.bucketHead[p.highest]; u >= 0 {
			p.bucketHead[p.highest] = p.nextActive[u]
			// Entries may be stale after a gap lift or global relabel;
			// only return u if it is genuinely active at this height.
			if p.height[u] == p.highest && p.excess[u] > 0 {
				return u
			}
			continue
		}
		p.highest--
	}
	return -1
}

// discharge pushes u's excess along admissible arcs, relabeling as needed,
// until the excess is gone or u rises to height >= n (unreachable from t).
func (p *PushRelabelSolver) discharge(u, s, t, n int32) {
	for p.excess[u] > 0 && p.height[u] < n {
		if p.cur[u] >= p.st.last[u] {
			p.relabel(u, n)
			continue
		}
		a := p.cur[u]
		v := p.st.to[a]
		if p.st.cap[a] > 0 && p.height[u] == p.height[v]+1 {
			p.push(u, v, a, s, t, n)
		} else {
			p.cur[u]++
		}
	}
}

func (p *PushRelabelSolver) push(u, v, a, s, t, n int32) {
	amt := int64(p.st.cap[a])
	if p.excess[u] < amt {
		amt = p.excess[u]
	}
	before := p.excess[v]
	r := p.st.rev[a]
	p.st.cap[a] -= int32(amt)
	p.st.cap[r] += int32(amt)
	p.rcap[r] -= int32(amt)
	p.rcap[a] += int32(amt)
	p.excess[u] -= amt
	p.excess[v] += amt
	if before == 0 && v != s && v != t && p.height[v] < n {
		p.activate(v)
	}
}

func (p *PushRelabelSolver) relabel(u, n int32) {
	p.relabels++
	old := p.height[u]
	p.heightCount[old]--
	// Gap heuristic: if u was the last vertex at its height, every vertex
	// above that height can never route flow to t again; lift them all out
	// of play.
	if p.heightCount[old] == 0 && old < n {
		for v := int32(0); v < n; v++ {
			if p.height[v] > old && p.height[v] < n {
				p.heightCount[p.height[v]]--
				p.height[v] = n + 1
			}
		}
		p.height[u] = n + 1
		return
	}
	minH := int32(2*p.st.n) + 1
	for a := p.st.first[u]; a < p.st.last[u]; a++ {
		if p.st.cap[a] > 0 && p.height[p.st.to[a]] < minH {
			minH = p.height[p.st.to[a]]
		}
	}
	if minH >= 2*n {
		p.height[u] = n + 1
		return
	}
	p.height[u] = minH + 1
	p.heightCount[minH+1]++
	p.cur[u] = p.st.first[u]
}

// globalRelabel assigns exact distance-to-t heights via backward BFS on the
// residual graph and resets bookkeeping. Vertices that cannot reach t get
// height n.
func (p *PushRelabelSolver) globalRelabel(s, t int32) {
	n := int32(p.st.n)
	height := p.height
	for i := range height {
		height[i] = n
	}
	for i := range p.heightCount {
		p.heightCount[i] = 0
	}
	copy(p.cur, p.st.first[:p.st.n])
	height[t] = 0
	first, last, to, rcap := p.st.first, p.st.last, p.st.to, p.rcap
	queue := p.queue[:0]
	queue = append(queue, t)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		hv1 := height[v] + 1
		for a := first[v]; a < last[v]; a++ {
			u := to[a]
			// Residual arc u->v exists iff the reverse of the v->u arc
			// has positive capacity, mirrored sequentially in rcap.
			if rcap[a] > 0 && height[u] == n && u != t && u != s {
				height[u] = hv1
				queue = append(queue, u)
			}
		}
	}
	p.queue = queue
	height[s] = n
	for v := int32(0); v < n; v++ {
		p.heightCount[height[v]]++
	}
}

// globalRelabelPreserve is a mid-run global relabel: it recomputes exact
// heights and rebuilds the active buckets from current excesses.
func (p *PushRelabelSolver) globalRelabelPreserve(s, t int32) {
	p.globalRelabel(s, t)
	n := int32(p.st.n)
	for i := range p.bucketHead {
		p.bucketHead[i] = -1
	}
	p.highest = 0
	for v := int32(0); v < n; v++ {
		if v != s && v != t && p.excess[v] > 0 && p.height[v] < n {
			p.activate(v)
		}
	}
}
