package maxflow

import (
	"math/rand"
	"testing"

	"kadre/internal/graph"
)

// TestRedensifyMatchesFresh churns an Even-transformed graph through
// random delta sequences while periodically re-densifying each
// long-lived solver, and compares every answer — flows, capped flows,
// prepared-source queries, and Dinic's residual reachability (the cut
// certificate, which pins arc-order preservation across the rebuild) —
// against freshly built solvers of the current graph. This is the core
// compaction contract: Compact() releases tombstones and dead regions
// without perturbing a single result.
func TestRedensifyMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 24
	g, even := evenGraph(r, n, 4)
	patched := map[string]Solver{
		"dinic":        NewDinic(2*n, even),
		"push-relabel": NewPushRelabel(2*n, even),
		"hao-orlin":    NewHaoOrlin(2*n, even),
	}
	var removedPool []graph.Edge
	for step := 0; step < 30; step++ {
		var delta graph.Delta
		changes := 1 + r.Intn(5)
		for c := 0; c < changes; c++ {
			switch k := r.Float64(); {
			case k < 0.5: // remove a random existing edge
				all := g.Edges()
				if len(all) == 0 {
					continue
				}
				e := all[r.Intn(len(all))]
				g.RemoveEdge(e.U, e.V)
				delta.Removed = append(delta.Removed, e)
				removedPool = append(removedPool, e)
			case k < 0.75 && len(removedPool) > 0: // revive a tombstone
				e := removedPool[r.Intn(len(removedPool))]
				if g.HasEdge(e.U, e.V) {
					continue
				}
				g.AddEdge(e.U, e.V)
				delta.Added = append(delta.Added, e)
			default: // novel edge: slack insertion
				u, v := r.Intn(n), r.Intn(n)
				if u == v || g.HasEdge(u, v) {
					continue
				}
				g.AddEdge(u, v)
				delta.Added = append(delta.Added, graph.Edge{U: u, V: v})
			}
		}
		even = unitEven(g)
		add, rem := evenDelta(delta.Added), evenDelta(delta.Removed)
		for name, s := range patched {
			if !s.(UnitDeltaApplier).ApplyUnitDelta(add, rem) {
				s.Reset(2*n, EdgeSlice(even))
			}
			// Re-densify on a rolling schedule so each algorithm compacts
			// at several distinct tombstone depths, including right after
			// a delta and (via the query loop below) right before queries.
			if step%4 == 3 {
				s.(MemoryCompactor).Compact()
			}
			fresh := NewDinic(2*n, even)
			for q := 0; q < 6; q++ {
				src, tgt := r.Intn(n), r.Intn(n)
				if src == tgt {
					continue
				}
				sOut, tIn := graph.Out(src), graph.In(tgt)
				want := fresh.MaxFlow(sOut, tIn)
				s.PrepareSource(sOut)
				if got := s.MaxFlow(sOut, tIn); got != want {
					t.Fatalf("step %d %s (%d,%d): compacted=%d, rebuilt=%d", step, name, src, tgt, got, want)
				}
				// The limit contract: exact when the limit exceeds the true
				// flow, otherwise at least the limit (solvers may overshoot
				// the cap before noticing it).
				for _, lim := range []int{1, want, want + 1} {
					got := s.MaxFlowLimit(sOut, tIn, lim)
					if lim >= want && got != want {
						t.Fatalf("step %d %s limit %d: got %d, want %d", step, name, lim, got, want)
					}
					if lim < want && (got < lim || got > want) {
						t.Fatalf("step %d %s limit %d: got %d outside [%d,%d]", step, name, lim, got, lim, want)
					}
				}
			}
		}
		// Arc-order preservation: a compacted Dinic must leave the exact
		// residual a rebuilt one leaves, certified by ResidualReachable.
		pd := patched["dinic"].(*DinicSolver)
		fd := NewDinic(2*n, even)
		src, tgt := 0, n-1
		if !g.HasEdge(src, tgt) {
			pv := pd.MaxFlow(graph.Out(src), graph.In(tgt))
			fv := fd.MaxFlow(graph.Out(src), graph.In(tgt))
			if pv != fv {
				t.Fatalf("step %d: cut-pair flow %d != %d", step, pv, fv)
			}
			pr := pd.ResidualReachable(graph.Out(src))
			fr := fd.ResidualReachable(graph.Out(src))
			for v := range pr {
				if pr[v] != fr[v] {
					t.Fatalf("step %d: residual reachability diverged at vertex %d (compacted %v, rebuilt %v)",
						step, v, pr[v], fr[v])
				}
			}
		}
	}
}

// TestRedensifyAfterRelocation pins the dead-region reclamation: a slack
// overflow relocates a vertex region to the tail, stranding the old
// region as dead arcs; Compact must release them (Arcs shrinks back to
// the live+slack footprint) with bit-identical answers.
func TestRedensifyAfterRelocation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 12
	g, even := evenGraph(r, n, 2)
	for _, algo := range []Algorithm{Dinic, PushRelabel, HaoOrlin} {
		s := algo.NewSolver(2*n, even)
		var add EdgeSlice
		edited := g.Clone()
		for v := 1; v < n && len(add) < arcSlack+2; v++ {
			if !g.HasEdge(0, v) {
				add = append(add, Edge{U: graph.Out(0), V: graph.In(v), Cap: 1})
				edited.AddEdge(0, v)
			}
		}
		if len(add) <= arcSlack {
			t.Fatalf("test graph too dense to exhaust slack (%d novel edges)", len(add))
		}
		if !s.(UnitDeltaApplier).ApplyUnitDelta(add, EdgeSlice{}) {
			t.Fatalf("%s: ApplyUnitDelta should relocate, not fail", algo)
		}
		mc := s.(MemoryCompactor)
		before := mc.ArcStats()
		if before.Relocations == 0 || before.Dead == 0 {
			t.Fatalf("%s: expected a relocation with dead arcs, got %+v", algo, before)
		}
		mc.Compact()
		after := mc.ArcStats()
		if after.Dead != 0 || after.Tombstones != 0 || after.Relocations != 0 {
			t.Fatalf("%s: post-compact stats not clean: %+v", algo, after)
		}
		if after.Arcs >= before.Arcs {
			t.Fatalf("%s: compact did not shrink arc array: %d -> %d", algo, before.Arcs, after.Arcs)
		}
		if after.Arcs != after.Live+after.Slack {
			t.Fatalf("%s: post-compact identity broken: %+v", algo, after)
		}
		newEven := unitEven(edited)
		fresh := NewDinic(2*n, newEven)
		for q := 0; q < 10; q++ {
			src, tgt := r.Intn(n), r.Intn(n)
			if src == tgt {
				continue
			}
			want := fresh.MaxFlow(graph.Out(src), graph.In(tgt))
			if got := s.MaxFlow(graph.Out(src), graph.In(tgt)); got != want {
				t.Fatalf("%s: after compact, (%d,%d): got %d, want %d", algo, src, tgt, got, want)
			}
		}
	}
}

// TestArcStatsAccounting pins the ArcStats identity Arcs == Live +
// Tombstones + Slack + Dead across a fresh build, tombstoning, and
// re-densification, plus the DeadFrac trigger input the governance
// layer thresholds on.
func TestArcStatsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 16
	g, even := evenGraph(r, n, 3)
	s := NewDinic(2*n, even)
	check := func(stage string, st ArcStats) {
		t.Helper()
		if st.Arcs != st.Live+st.Tombstones+st.Slack+st.Dead {
			t.Fatalf("%s: identity broken: %+v", stage, st)
		}
		if st.Arcs != len(s.st.to) {
			t.Fatalf("%s: Arcs %d != arc array length %d", stage, st.Arcs, len(s.st.to))
		}
	}
	st := s.ArcStats()
	check("fresh", st)
	if st.Tombstones != 0 || st.Dead != 0 || st.Relocations != 0 {
		t.Fatalf("fresh build has garbage: %+v", st)
	}
	if st.Slack != 2*n*arcSlack {
		t.Fatalf("fresh slack %d, want %d per-vertex reserve", st.Slack, 2*n*arcSlack)
	}
	if st.DeadFrac() != 0 {
		t.Fatalf("fresh DeadFrac %v, want 0", st.DeadFrac())
	}

	// Tombstone half the original edges: each removal kills one Even arc
	// pair, and DeadFrac rises accordingly.
	all := g.Edges()
	var rem EdgeSlice
	for i, e := range all {
		if i%2 == 0 {
			rem = append(rem, Edge{U: graph.Out(e.U), V: graph.In(e.V), Cap: 1})
			g.RemoveEdge(e.U, e.V)
		}
	}
	if !s.ApplyUnitDelta(EdgeSlice{}, rem) {
		t.Fatal("tombstone delta rejected")
	}
	st = s.ArcStats()
	check("tombstoned", st)
	if st.Tombstones != 2*len(rem) {
		t.Fatalf("tombstones %d, want %d (a pair per removed edge)", st.Tombstones, 2*len(rem))
	}
	if st.DeadFrac() <= 0 {
		t.Fatalf("DeadFrac %v after tombstoning, want > 0", st.DeadFrac())
	}

	beforeArcs := st.Arcs
	s.Compact()
	st = s.ArcStats()
	check("compacted", st)
	if st.Tombstones != 0 || st.Dead != 0 || st.Relocations != 0 {
		t.Fatalf("compact left garbage: %+v", st)
	}
	if st.Arcs >= beforeArcs {
		t.Fatalf("compact did not shrink arcs: %d -> %d", beforeArcs, st.Arcs)
	}
	if st.DeadFrac() != 0 {
		t.Fatalf("post-compact DeadFrac %v, want 0", st.DeadFrac())
	}

	// The compacted store still answers like a fresh build.
	even = unitEven(g)
	fresh := NewDinic(2*n, even)
	for q := 0; q < 10; q++ {
		src, tgt := r.Intn(n), r.Intn(n)
		if src == tgt {
			continue
		}
		want := fresh.MaxFlow(graph.Out(src), graph.In(tgt))
		if got := s.MaxFlow(graph.Out(src), graph.In(tgt)); got != want {
			t.Fatalf("compacted store (%d,%d): got %d, want %d", src, tgt, got, want)
		}
	}
}

// FuzzDiffApplyRedensify extends the delta fuzz oracle across a
// re-densify boundary: an arbitrary byte string decodes into a base
// graph and two mutation batches; the solver applies batch one,
// compacts, applies batch two, and must still answer exactly like a
// solver built fresh from the final graph. This is the shape the
// governance layer produces — deltas straddling a compaction event.
func FuzzDiffApplyRedensify(f *testing.F) {
	f.Add([]byte{8, 3, 12, 200, 9, 77, 4, 1, 250, 33})
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{16, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() int {
			if len(data) == 0 {
				return 0
			}
			b := int(data[0])
			data = data[1:]
			return b
		}
		n := 2 + next()%12
		g := graph.NewDigraph(n)
		for i, m := 0, next()%40; i < m; i++ {
			u, v := next()%n, next()%n
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		solvers := map[string]Solver{
			"dinic":        NewDinic(2*n, unitEven(g)),
			"push-relabel": NewPushRelabel(2*n, unitEven(g)),
			"hao-orlin":    NewHaoOrlin(2*n, unitEven(g)),
		}
		batch := func() (EdgeSlice, EdgeSlice) {
			var delta graph.Delta
			// Each edge toggles at most once per batch: a real diff never
			// lists the same edge as both added and removed.
			touched := make(map[[2]int]bool)
			for i, m := 0, next()%16; i < m; i++ {
				u, v := next()%n, next()%n
				if u == v || touched[[2]int{u, v}] {
					continue
				}
				touched[[2]int{u, v}] = true
				if g.HasEdge(u, v) {
					g.RemoveEdge(u, v)
					delta.Removed = append(delta.Removed, graph.Edge{U: u, V: v})
				} else {
					g.AddEdge(u, v)
					delta.Added = append(delta.Added, graph.Edge{U: u, V: v})
				}
			}
			return evenDelta(delta.Added), evenDelta(delta.Removed)
		}
		apply := func(stage string, add, rem EdgeSlice) {
			for name, s := range solvers {
				if !s.(UnitDeltaApplier).ApplyUnitDelta(add, rem) {
					t.Fatalf("%s %s: consistent delta rejected (add=%v rem=%v)", stage, name, add, rem)
				}
			}
		}

		add, rem := batch()
		apply("pre-compact", add, rem)
		for _, s := range solvers {
			s.(MemoryCompactor).Compact()
		}
		add, rem = batch()
		apply("post-compact", add, rem)

		fresh := NewDinic(2*n, unitEven(g))
		for src := 0; src < n; src++ {
			tgt := (src + 1 + next()%(n-1)) % n
			if src == tgt {
				continue
			}
			sOut, tIn := graph.Out(src), graph.In(tgt)
			want := fresh.MaxFlow(sOut, tIn)
			for name, s := range solvers {
				if got := s.MaxFlow(sOut, tIn); got != want {
					t.Fatalf("%s (%d,%d): got %d, want %d", name, src, tgt, got, want)
				}
			}
		}
		// Residual bit-identity through the compaction boundary.
		pd := solvers["dinic"].(*DinicSolver)
		fd := NewDinic(2*n, unitEven(g))
		if pv, fv := pd.MaxFlow(graph.Out(0), graph.In(n-1)), fd.MaxFlow(graph.Out(0), graph.In(n-1)); pv != fv {
			t.Fatalf("cut-pair flow %d != %d", pv, fv)
		}
		pr := pd.ResidualReachable(graph.Out(0))
		fr := fd.ResidualReachable(graph.Out(0))
		for v := range pr {
			if pr[v] != fr[v] {
				t.Fatalf("residual reachability diverged at vertex %d", v)
			}
		}
	})
}
