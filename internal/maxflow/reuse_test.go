package maxflow

import (
	"math/rand"
	"testing"
)

// Tests for the PR-3 reuse surfaces: in-place Reset across graphs,
// Dinic's cached-source level graph, and push-relabel's same-source
// warm-start. Every reuse path must be value-identical to a freshly
// constructed solver.

// randomCapGraph returns a random graph with mixed capacities 1..4.
func randomCapGraph(r *rand.Rand, n, m int) []Edge {
	var edges []Edge
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: u, V: v, Cap: int32(1 + r.Intn(4))})
		}
	}
	return edges
}

// TestResetRebindsInPlace reuses one solver across a sequence of graphs
// of growing and shrinking size and compares every query against a
// fresh solver — Reset must behave exactly like construction.
func TestResetRebindsInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, factory := range solvers() {
		reused := factory(2, []Edge{{U: 0, V: 1, Cap: 1}})
		for trial := 0; trial < 8; trial++ {
			n := 4 + r.Intn(30) // grows and shrinks across trials
			edges := randomCapGraph(r, n, 3*n)
			reused.Reset(n, EdgeSlice(edges))
			fresh := factory(n, edges)
			for q := 0; q < 12; q++ {
				s, tt := r.Intn(n), r.Intn(n)
				if s == tt {
					continue
				}
				var got, want int
				if q%3 == 0 {
					limit := r.Intn(4)
					got = reused.MaxFlowLimit(s, tt, limit)
					want = fresh.MaxFlowLimit(s, tt, limit)
					if got < want || (want < limit && got != want) {
						t.Fatalf("%s trial %d: reset solver limit flow %d, fresh %d (limit %d)",
							name, trial, got, want, limit)
					}
					continue
				}
				got = reused.MaxFlow(s, tt)
				want = fresh.MaxFlow(s, tt)
				if got != want {
					t.Fatalf("%s trial %d: reset solver flow(%d,%d) = %d, fresh %d",
						name, trial, s, tt, got, want)
				}
			}
		}
	}
}

// TestPrepareSourceMatchesCold pins the per-source reuse paths (Dinic's
// cached first-phase BFS, push-relabel's warm-started preflow): a sweep
// over every target after PrepareSource must return the same values as
// fresh per-query solves, for exact and capped queries alike.
func TestPrepareSourceMatchesCold(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for name, factory := range solvers() {
		for trial := 0; trial < 6; trial++ {
			n := 10 + r.Intn(25)
			edges := randomUnitGraph(r, n, 4*n)
			sweep := factory(n, edges)
			for src := 0; src < 3 && src < n; src++ {
				sweep.PrepareSource(src)
				for tgt := 0; tgt < n; tgt++ {
					if tgt == src {
						continue
					}
					want := factory(n, edges).MaxFlow(src, tgt)
					got := sweep.MaxFlow(src, tgt)
					if got != want {
						t.Fatalf("%s trial %d: prepared flow(%d,%d) = %d, cold %d",
							name, trial, src, tgt, got, want)
					}
					limit := 1 + r.Intn(3)
					capped := sweep.MaxFlowLimit(src, tgt, limit)
					if want < limit {
						if capped != want {
							t.Fatalf("%s trial %d: prepared capped flow(%d,%d,%d) = %d, want exact %d",
								name, trial, src, tgt, limit, capped, want)
						}
					} else if capped < limit {
						t.Fatalf("%s trial %d: prepared capped flow(%d,%d,%d) = %d below limit (true %d)",
							name, trial, src, tgt, limit, capped, want)
					}
				}
			}
		}
	}
}

// TestWarmStartSourceSwitch pins the warm-start bookkeeping across
// source changes: interleaving sources must not leak preflow state
// between them.
func TestWarmStartSourceSwitch(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	n := 18
	edges := randomUnitGraph(r, n, 5*n)
	for name, factory := range solvers() {
		sweep := factory(n, edges)
		for q := 0; q < 60; q++ {
			s, tt := r.Intn(n), r.Intn(n)
			if s == tt {
				continue
			}
			want := factory(n, edges).MaxFlow(s, tt)
			if got := sweep.MaxFlow(s, tt); got != want {
				t.Fatalf("%s query %d: interleaved flow(%d,%d) = %d, fresh %d",
					name, q, s, tt, got, want)
			}
		}
	}
}

// TestPrepareSourceInvalidatedByReset ensures a rebind drops cached
// source state.
func TestPrepareSourceInvalidatedByReset(t *testing.T) {
	edges1 := []Edge{{U: 0, V: 1, Cap: 1}, {U: 1, V: 2, Cap: 1}}
	edges2 := []Edge{{U: 0, V: 1, Cap: 1}, {U: 1, V: 2, Cap: 1}, {U: 0, V: 2, Cap: 1}}
	for name, factory := range solvers() {
		s := factory(3, edges1)
		s.PrepareSource(0)
		if got := s.MaxFlow(0, 2); got != 1 {
			t.Fatalf("%s: flow before reset = %d, want 1", name, got)
		}
		s.Reset(3, EdgeSlice(edges2))
		if got := s.MaxFlow(0, 2); got != 2 {
			t.Fatalf("%s: flow after reset = %d, want 2 (stale source cache?)", name, got)
		}
	}
}
