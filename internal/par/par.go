// Package par provides the bounded-parallelism primitive shared by the
// sweep engine and scenario.RunAll: a deterministic parallel map over a
// slice. Results come back in input order regardless of completion order,
// so callers that are themselves deterministic per item stay deterministic
// under any worker count — the property the determinism test suite pins
// down.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs resolves a requested worker count: values <= 0 mean GOMAXPROCS, and
// the count is clamped to n so no idle goroutines are spawned.
func Jobs(jobs, n int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// Map applies f to every item of items using at most jobs concurrent
// workers (jobs <= 0 means GOMAXPROCS) and returns the results in input
// order. If any call fails, Map reports the error of the smallest failing
// input index, so the reported failure does not depend on goroutine
// scheduling: every item before that index is guaranteed to run, while
// items after it may be skipped once the failure is observed (a long
// sweep does not burn its full wall-clock after an early error).
func Map[T, R any](jobs int, items []T, f func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}
	errs := make([]error, len(items))
	var next atomic.Int64
	firstErr := atomic.Int64{}
	firstErr.Store(int64(len(items)))

	var wg sync.WaitGroup
	for w := 0; w < Jobs(jobs, len(items)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				// Items beyond the earliest observed failure are dead
				// work: their results would be discarded. Items before
				// it must still run — a smaller index could fail too and
				// its error is the one Map must report.
				if int64(i) > firstErr.Load() {
					continue
				}
				out[i], errs[i] = f(i, items[i])
				if errs[i] != nil {
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
