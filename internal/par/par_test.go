package par

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestJobs(t *testing.T) {
	if got := Jobs(4, 10); got != 4 {
		t.Fatalf("Jobs(4, 10) = %d", got)
	}
	if got := Jobs(8, 3); got != 3 {
		t.Fatalf("Jobs(8, 3) = %d, want clamp to 3", got)
	}
	if got := Jobs(0, 100); got < 1 {
		t.Fatalf("Jobs(0, 100) = %d, want >= 1", got)
	}
	if got := Jobs(-1, 0); got != 1 {
		t.Fatalf("Jobs(-1, 0) = %d, want 1", got)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, jobs := range []int{1, 2, 8, 200} {
		out, err := Map(jobs, items, func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map on empty input: %v, %v", out, err)
	}
}

func TestMapFirstIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wantErr := errors.New("boom 3")
	for _, jobs := range []int{1, 4, 8} {
		_, err := Map(jobs, items, func(i, item int) (int, error) {
			if item >= 3 {
				if item == 3 {
					return 0, wantErr
				}
				return 0, fmt.Errorf("boom %d", item)
			}
			return item, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("jobs=%d: err = %v, want the smallest-index error %v", jobs, err, wantErr)
		}
	}
}

func TestMapRunsEverythingBeforeFailure(t *testing.T) {
	// Items before the earliest failure must always run (one of them
	// could fail with a smaller index); items after it may be skipped.
	var mu sync.Mutex
	ran := map[int]bool{}
	items := make([]int, 20)
	const failAt = 7
	_, err := Map(1, items, func(i, item int) (int, error) {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		if i == failAt {
			return 0, errors.New("failure")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i <= failAt; i++ {
		if !ran[i] {
			t.Fatalf("item %d before the failure did not run", i)
		}
	}
	// With one worker the skip is deterministic: nothing after failAt runs.
	for i := failAt + 1; i < len(items); i++ {
		if ran[i] {
			t.Fatalf("item %d after the failure ran despite single-worker skip", i)
		}
	}
}
