package report

import (
	"fmt"
	"io"
	"math"

	"kadre/internal/stats"
	"kadre/internal/sweep"
)

// ci renders a 95% confidence-interval half-width; an undefined interval
// (single replication) renders as a dash rather than a fabricated zero.
func ci(half float64) string {
	if math.IsNaN(half) {
		return "-"
	}
	return fmt.Sprintf("±%.2f", half)
}

// AggregateSnapshotRows renders one configuration's cross-replication
// curves as table rows: the mean and 95% CI of the minimum and average
// connectivity at every snapshot instant, alongside the mean live size.
func AggregateSnapshotRows(rs *sweep.RunSet) (header []string, rows [][]string) {
	header = []string{"t(min)", "n", "minConn", "ci95", "avgConn", "ci95", "reps"}
	for i := range rs.Min.Points {
		mp, ap, sp := rs.Min.Points[i], rs.Avg.Points[i], rs.Size.Points[i]
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", mp.T.Minutes()),
			fmt.Sprintf("%.1f", sp.Mean),
			fmt.Sprintf("%.2f", mp.Mean),
			ci(mp.CI95),
			fmt.Sprintf("%.2f", ap.Mean),
			ci(ap.CI95),
			fmt.Sprintf("%d", mp.N),
		})
	}
	return header, rows
}

// Table2Reps is the replicated form of Table 2: the churn-phase mean
// minimum connectivity averaged across seed replications, with its 95% CI
// and the mean of the per-replication Relative Variances.
func Table2Reps(sets []*sweep.RunSet) (header []string, rows [][]string) {
	header = []string{"Size", "k", "Churn", "Mean", "ci95", "RV", "reps"}
	for _, rs := range sets {
		means := rs.ChurnWindowMeans()
		rvs := make([]float64, len(rs.Reps))
		for i, r := range rs.Reps {
			rvs[i] = r.ChurnWindowSummary().RV
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", rs.Config.Size),
			fmt.Sprintf("%d", rs.Config.K),
			rs.Config.Churn.String(),
			fmt.Sprintf("%.2f", stats.Mean(means)),
			ci(stats.CI95Half(means)),
			fmt.Sprintf("%.2f", stats.Mean(rvs)),
			fmt.Sprintf("%d", len(rs.Reps)),
		})
	}
	return header, rows
}

// MeansByKReps is the replicated form of the Figure 10 means table.
func MeansByKReps(sets []*sweep.RunSet) (header []string, rows [][]string) {
	header = []string{"Run", "k", "alpha", "Churn", "MeanMinConn", "ci95", "reps"}
	for _, rs := range sets {
		means := rs.ChurnWindowMeans()
		alpha := rs.Config.Alpha
		if alpha == 0 {
			alpha = 3
		}
		rows = append(rows, []string{
			rs.Config.Name,
			fmt.Sprintf("%d", rs.Config.K),
			fmt.Sprintf("%d", alpha),
			rs.Config.Churn.String(),
			fmt.Sprintf("%.2f", stats.Mean(means)),
			ci(stats.CI95Half(means)),
			fmt.Sprintf("%d", len(rs.Reps)),
		})
	}
	return header, rows
}

// AggChart renders cross-replication curves as an ASCII chart: each
// series' mean is drawn with its glyph and the 95% confidence band is
// shaded with dots, so replication spread is visible next to the mean
// trend.
func AggChart(w io.Writer, title string, series []*stats.AggregateSeries, height int) error {
	layers := make([]chartLayer, len(series))
	for i, s := range series {
		l := chartLayer{name: s.Name, legend: " (. = 95% CI)"}
		for _, p := range s.Points {
			t := p.T.Minutes()
			l.points = append(l.points, chartXY{t: t, v: p.Mean})
			if !math.IsNaN(p.CI95) && p.CI95 != 0 {
				l.bands = append(l.bands, chartBand{
					t: t, lo: math.Max(p.Mean-p.CI95, 0), hi: p.Mean + p.CI95,
				})
			}
		}
		layers[i] = l
	}
	return renderChart(w, title, layers, height, "min")
}
