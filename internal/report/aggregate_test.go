package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kadre/internal/scenario"
	"kadre/internal/stats"
	"kadre/internal/sweep"
)

// sweepTiny runs one small replicated sweep shared by the tests below.
func sweepTiny(t *testing.T, reps int) []*sweep.RunSet {
	t.Helper()
	cfg := scenario.Config{
		Name: "SimT/k=5", Seed: 2, Size: 20, K: 5, Staleness: 1,
		Setup: 6 * time.Minute, Stabilize: 12 * time.Minute,
		SnapshotInterval: 6 * time.Minute, SampleFraction: 0.1,
	}
	sets, err := sweep.Run([]scenario.Config{cfg}, sweep.Options{Reps: reps, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sets
}

func TestAggregateSnapshotRows(t *testing.T) {
	sets := sweepTiny(t, 3)
	header, rows := AggregateSnapshotRows(sets[0])
	if len(header) != 7 || header[3] != "ci95" {
		t.Fatalf("header = %v", header)
	}
	if len(rows) != sets[0].Min.Len() {
		t.Fatalf("%d rows for %d aggregate points", len(rows), sets[0].Min.Len())
	}
	for _, row := range rows {
		if len(row) != len(header) {
			t.Fatalf("row width %d != header width %d", len(row), len(header))
		}
		if row[6] != "3" {
			t.Fatalf("reps column = %q, want 3", row[6])
		}
		if row[3] == "-" {
			t.Fatal("three reps must yield a defined CI")
		}
		if !strings.HasPrefix(row[3], "±") {
			t.Fatalf("CI cell %q not rendered as ±x.xx", row[3])
		}
	}

	// A single rep has no CI; it must render as a dash, not ±0.00.
	_, singleRows := AggregateSnapshotRows(sweepTiny(t, 1)[0])
	if singleRows[0][3] != "-" {
		t.Fatalf("single-rep CI cell = %q, want -", singleRows[0][3])
	}
}

func TestTable2RepsAndMeansByKReps(t *testing.T) {
	sets := sweepTiny(t, 2)
	header, rows := Table2Reps(sets)
	if header[4] != "ci95" || len(rows) != 1 {
		t.Fatalf("Table2Reps header %v rows %d", header, len(rows))
	}
	if rows[0][1] != "5" || rows[0][6] != "2" {
		t.Fatalf("Table2Reps row = %v", rows[0])
	}

	header, rows = MeansByKReps(sets)
	if header[5] != "ci95" || len(rows) != 1 {
		t.Fatalf("MeansByKReps header %v rows %d", header, len(rows))
	}
	if rows[0][0] != "SimT/k=5" || rows[0][2] != "3" {
		t.Fatalf("MeansByKReps row = %v (alpha should default to 3)", rows[0])
	}
}

func TestAggChart(t *testing.T) {
	sets := sweepTiny(t, 3)
	var buf bytes.Buffer
	if err := AggChart(&buf, "test chart", []*stats.AggregateSeries{sets[0].Min}, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("chart missing title")
	}
	if !strings.Contains(out, "* ") && !strings.Contains(out, "*") {
		t.Fatal("chart missing mean glyphs")
	}
	if !strings.Contains(out, "(. = 95% CI)") {
		t.Fatal("chart legend missing CI note")
	}
}

func TestAggChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := AggChart(&buf, "empty", nil, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatalf("empty chart output: %q", buf.String())
	}
}
