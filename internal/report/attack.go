package report

import (
	"fmt"
	"io"
	"math"

	"kadre/internal/scenario"
	"kadre/internal/stats"
	"kadre/internal/sweep"
)

// Attack-experiment rendering: degradation curves plot resilience
// *against nodes removed* rather than against time, which is the x-axis
// an adversary cares about — how much damage does each kill buy.

// degradationLayers maps each run's snapshots to (removed, value) marks.
func degradationLayers(results []*scenario.Result, value func(scenario.SnapshotStat) float64) []chartLayer {
	layers := make([]chartLayer, len(results))
	for i, r := range results {
		l := chartLayer{name: r.Config.Name}
		for _, p := range r.Points {
			if p.Time < r.Config.ChurnStart() {
				continue // pre-attack points all sit at removed = 0
			}
			l.points = append(l.points, chartXY{t: float64(p.Removed), v: value(p)})
		}
		layers[i] = l
	}
	return layers
}

// DegradationChart renders min-connectivity versus nodes removed, one
// curve per run (strategy), over the attack window.
func DegradationChart(w io.Writer, title string, results []*scenario.Result, height int) error {
	return renderChart(w, title, degradationLayers(results, func(p scenario.SnapshotStat) float64 {
		return float64(p.Min)
	}), height, "removed")
}

// SCCDegradationChart renders the largest-SCC fraction versus nodes
// removed — the coarser signal that keeps moving after kappa hits zero.
func SCCDegradationChart(w io.Writer, title string, results []*scenario.Result, height int) error {
	return renderChart(w, title, degradationLayers(results, func(p scenario.SnapshotStat) float64 {
		return p.SCC
	}), height, "removed")
}

// AggDegradationChart renders the cross-replication mean degradation
// curve per configuration: mean min connectivity (with its 95% CI band)
// against the mean number of nodes removed at each snapshot instant.
func AggDegradationChart(w io.Writer, title string, sets []*sweep.RunSet, height int) error {
	layers := make([]chartLayer, len(sets))
	for i, rs := range sets {
		l := chartLayer{name: rs.Config.Name, legend: " (. = 95% CI)"}
		start := rs.Config.WithDefaults().ChurnStart()
		for j := range rs.Min.Points {
			mp, rp := rs.Min.Points[j], rs.Removed.Points[j]
			if mp.T < start {
				continue
			}
			l.points = append(l.points, chartXY{t: rp.Mean, v: mp.Mean})
			if !math.IsNaN(mp.CI95) && mp.CI95 != 0 {
				l.bands = append(l.bands, chartBand{
					t: rp.Mean, lo: math.Max(mp.Mean-mp.CI95, 0), hi: mp.Mean + mp.CI95,
				})
			}
		}
		layers[i] = l
	}
	return renderChart(w, title, layers, height, "removed")
}

// disconnectAt returns the first snapshot time (in minutes, as a string)
// at which the sampled minimum connectivity reached zero, or "-" if the
// network stayed connected throughout.
func disconnectAt(r *scenario.Result) string {
	for _, p := range r.Points {
		if p.N > 1 && p.Min == 0 {
			return fmt.Sprintf("%.0f", p.Time.Minutes())
		}
	}
	return "-"
}

// AttackTable summarizes one run per row: how much the adversary removed,
// what survived, and when (if ever) the network first disconnected.
func AttackTable(results []*scenario.Result) (header []string, rows [][]string) {
	header = []string{"Run", "Attack", "Removed", "MeanMinConn", "FinalMin", "FinalSCC", "Disconn(min)"}
	for _, r := range results {
		final := scenario.SnapshotStat{}
		if len(r.Points) > 0 {
			final = r.Points[len(r.Points)-1]
		}
		rows = append(rows, []string{
			r.Config.Name,
			string(r.Config.Attack.Strategy),
			fmt.Sprintf("%d", r.AttackRemoved),
			fmt.Sprintf("%.2f", r.ChurnWindowSummary().Mean),
			fmt.Sprintf("%d", final.Min),
			fmt.Sprintf("%.3f", final.SCC),
			disconnectAt(r),
		})
	}
	return header, rows
}

// AttackTableReps is the replicated form of AttackTable: cross-rep means
// with 95% CIs.
func AttackTableReps(sets []*sweep.RunSet) (header []string, rows [][]string) {
	header = []string{"Run", "Attack", "Removed", "MeanMinConn", "ci95", "FinalMin", "FinalSCC", "reps"}
	for _, rs := range sets {
		means := rs.ChurnWindowMeans()
		removed := make([]float64, len(rs.Reps))
		finalMin := make([]float64, len(rs.Reps))
		finalSCC := make([]float64, len(rs.Reps))
		for i, r := range rs.Reps {
			removed[i] = float64(r.AttackRemoved)
			if len(r.Points) > 0 {
				finalMin[i] = float64(r.Points[len(r.Points)-1].Min)
				finalSCC[i] = r.Points[len(r.Points)-1].SCC
			}
		}
		rows = append(rows, []string{
			rs.Config.Name,
			string(rs.Config.Attack.Strategy),
			fmt.Sprintf("%.1f", stats.Mean(removed)),
			fmt.Sprintf("%.2f", stats.Mean(means)),
			ci(stats.CI95Half(means)),
			fmt.Sprintf("%.2f", stats.Mean(finalMin)),
			fmt.Sprintf("%.3f", stats.Mean(finalSCC)),
			fmt.Sprintf("%d", len(rs.Reps)),
		})
	}
	return header, rows
}

// AttackSnapshotRows renders a run's degradation series as table rows.
func AttackSnapshotRows(r *scenario.Result) (header []string, rows [][]string) {
	header = []string{"t(min)", "removed", "n", "edges", "minConn", "avgConn", "sccFrac"}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.Time.Minutes()),
			fmt.Sprintf("%d", p.Removed),
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.Edges),
			fmt.Sprintf("%d", p.Min),
			fmt.Sprintf("%.1f", p.Avg),
			fmt.Sprintf("%.3f", p.SCC),
		})
	}
	return header, rows
}
