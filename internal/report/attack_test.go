package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kadre/internal/attack"
	"kadre/internal/scenario"
	"kadre/internal/sweep"
)

// fakeAttackResult fabricates a degradation series without running a
// simulation: removed climbs 0,4,8 while min connectivity falls 8,4,0.
func fakeAttackResult(name string, strategy attack.Strategy) *scenario.Result {
	cfg := scenario.Config{
		Name: name, Seed: 1, Size: 20, K: 8,
		Setup: 10 * time.Minute, Stabilize: 10 * time.Minute,
		ChurnPhase:       30 * time.Minute,
		SnapshotInterval: 10 * time.Minute,
		Attack:           attack.Config{Strategy: strategy, Budget: 8, Kills: 4, Interval: 10 * time.Minute},
	}.WithDefaults()
	r := &scenario.Result{Config: cfg, AttackRemoved: 8}
	for i, min := range []int{8, 8, 8, 4, 0} {
		removed := 0
		if t := time.Duration(i+1) * 10 * time.Minute; t > cfg.ChurnStart() {
			removed = 4 * int((t-cfg.ChurnStart())/(10*time.Minute))
			if removed > cfg.Attack.Budget {
				removed = cfg.Attack.Budget
			}
		}
		r.Points = append(r.Points, scenario.SnapshotStat{
			Time: time.Duration(i+1) * 10 * time.Minute, N: 20 - removed,
			Edges: 100, Min: min, Avg: float64(min) + 1,
			SCC: 1 - float64(removed)/20, Removed: removed,
		})
	}
	return r
}

func TestDegradationChartAxisAndCurves(t *testing.T) {
	results := []*scenario.Result{
		fakeAttackResult("Attack/degree", attack.Degree),
		fakeAttackResult("Attack/random", attack.Random),
	}
	var buf bytes.Buffer
	if err := DegradationChart(&buf, "degradation", results, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "8 removed") {
		t.Fatalf("x axis not labeled in removals:\n%s", out)
	}
	for _, name := range []string{"Attack/degree", "Attack/random"} {
		if !strings.Contains(out, name) {
			t.Fatalf("legend missing %q:\n%s", name, out)
		}
	}

	buf.Reset()
	if err := SCCDegradationChart(&buf, "scc", results, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "removed") {
		t.Fatalf("scc chart not on removal axis:\n%s", buf.String())
	}
}

func TestAttackTable(t *testing.T) {
	results := []*scenario.Result{fakeAttackResult("Attack/cutset", attack.Cutset)}
	header, rows := AttackTable(results)
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, header, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cutset", "Disconn", "50"} { // min hits 0 at t=50
		if !strings.Contains(out, want) {
			t.Fatalf("attack table missing %q:\n%s", want, out)
		}
	}
	_, rows = AttackSnapshotRows(results[0])
	if len(rows) != 5 {
		t.Fatalf("snapshot rows = %d, want 5", len(rows))
	}
}

func TestAttackTableRepsAndAggChart(t *testing.T) {
	cfgs := []scenario.Config{fakeAttackResult("Attack/degree", attack.Degree).Config}
	rs := &sweep.RunSet{
		Config: cfgs[0],
		Reps: []*scenario.Result{
			fakeAttackResult("Attack/degree", attack.Degree),
			fakeAttackResult("Attack/degree", attack.Degree),
		},
	}
	// Build the aggregates the sweep engine would.
	if err := rs.Aggregate(); err != nil {
		t.Fatal(err)
	}
	header, rows := AttackTableReps([]*sweep.RunSet{rs})
	if len(header) == 0 || len(rows) != 1 {
		t.Fatalf("reps table: %d rows", len(rows))
	}
	var buf bytes.Buffer
	if err := AggDegradationChart(&buf, "agg degradation", []*sweep.RunSet{rs}, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "removed") {
		t.Fatalf("agg chart not on removal axis:\n%s", buf.String())
	}
}
