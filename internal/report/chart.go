package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// The ASCII chart frame shared by Chart (plain series) and AggChart
// (replicated series with confidence bands): range computation, grid
// layout, axes, and legend live here so the two chart styles cannot
// drift apart.

const chartWidth = 72

var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// chartXY is one plotted mark.
type chartXY struct{ t, v float64 }

// chartBand is one vertical confidence interval at an instant.
type chartBand struct{ t, lo, hi float64 }

// chartLayer is one curve: its glyph marks, optional bands drawn beneath
// them, and the legend annotation appended after the name.
type chartLayer struct {
	name   string
	legend string // suffix after the name in the legend line
	points []chartXY
	bands  []chartBand
}

// renderChart draws the layers onto a fixed-width grid: bands first (as
// dots), then each layer's marks with its glyph, then axes and legend.
// xUnit labels the right end of the x axis ("min" for time charts,
// "removed" for attack-degradation charts).
func renderChart(w io.Writer, title string, layers []chartLayer, height int, xUnit string) error {
	if height <= 0 {
		height = 16
	}

	minT, maxT := math.Inf(1), math.Inf(-1)
	maxV := math.Inf(-1)
	any := false
	for _, l := range layers {
		for _, p := range l.points {
			any = true
			minT = math.Min(minT, p.t)
			maxT = math.Max(maxT, p.t)
			maxV = math.Max(maxV, p.v)
		}
		for _, b := range l.bands {
			maxV = math.Max(maxV, b.hi)
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", title)
		return err
	}
	if maxV <= 0 {
		maxV = 1
	}
	if maxT <= minT {
		maxT = minT + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", chartWidth))
	}
	cell := func(t, v float64) (row, col int) {
		col = int((t - minT) / (maxT - minT) * float64(chartWidth-1))
		y := int(v / maxV * float64(height-1))
		return height - 1 - y, col
	}
	for _, l := range layers {
		for _, b := range l.bands {
			loRow, col := cell(b.t, b.lo)
			hiRow, _ := cell(b.t, b.hi)
			for r := hiRow; r <= loRow; r++ {
				if r >= 0 && r < height && col >= 0 && col < chartWidth {
					grid[r][col] = '.'
				}
			}
		}
	}
	for li, l := range layers {
		g := chartGlyphs[li%len(chartGlyphs)]
		for _, p := range l.points {
			row, col := cell(p.t, p.v)
			if row >= 0 && row < height && col >= 0 && col < chartWidth {
				grid[row][col] = g
			}
		}
	}

	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	for i, row := range grid {
		val := maxV * float64(height-1-i) / float64(height-1)
		if _, err := fmt.Fprintf(w, "%7.1f |%s\n", val, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", chartWidth)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "         %-8.0f%*s\n", minT, chartWidth-8, fmt.Sprintf("%.0f %s", maxT, xUnit)); err != nil {
		return err
	}
	for li, l := range layers {
		if _, err := fmt.Fprintf(w, "  %c %s%s\n", chartGlyphs[li%len(chartGlyphs)], l.name, l.legend); err != nil {
			return err
		}
	}
	return nil
}
