// Package report renders experiment results the way the paper presents
// them: aligned text tables (Tables 1 and 2, the Figure 10 means) and
// ASCII time-series charts standing in for Figures 2-14.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"kadre/internal/scenario"
	"kadre/internal/simnet"
	"kadre/internal/stats"
)

// WriteTable renders rows as an aligned text table with a header. Cell
// widths are measured in runes, so multi-byte cells (the ± of the CI
// columns) stay aligned.
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Table1 returns the paper's Table 1 (message-loss scenarios) as rows.
func Table1() (header []string, rows [][]string) {
	header = []string{"Loss l", "Ploss(1-way)", "Ploss(2-way)"}
	for _, l := range simnet.Levels() {
		rows = append(rows, []string{
			l.String(),
			fmt.Sprintf("%.1f%%", l.OneWayLoss()*100),
			fmt.Sprintf("%.0f%%", l.TwoWayLoss()*100),
		})
	}
	return header, rows
}

// Table2 aggregates Simulation E-H results into the paper's Table 2: mean
// and relative variance of the minimum connectivity during the churn
// phase, grouped by size, k, and churn rate.
func Table2(results []*scenario.Result) (header []string, rows [][]string) {
	header = []string{"Size", "k", "Churn", "Mean", "RV"}
	for _, r := range results {
		sum := r.ChurnWindowSummary()
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Config.Size),
			fmt.Sprintf("%d", r.Config.K),
			r.Config.Churn.String(),
			fmt.Sprintf("%.2f", sum.Mean),
			fmt.Sprintf("%.2f", sum.RV),
		})
	}
	return header, rows
}

// MeansByK renders Figure 10-style rows: mean minimum connectivity during
// churn for each run, keyed by the run name.
func MeansByK(results []*scenario.Result) (header []string, rows [][]string) {
	header = []string{"Run", "k", "alpha", "Churn", "MeanMinConn"}
	for _, r := range results {
		sum := r.ChurnWindowSummary()
		alpha := r.Config.Alpha
		if alpha == 0 {
			alpha = 3
		}
		rows = append(rows, []string{
			r.Config.Name,
			fmt.Sprintf("%d", r.Config.K),
			fmt.Sprintf("%d", alpha),
			r.Config.Churn.String(),
			fmt.Sprintf("%.2f", sum.Mean),
		})
	}
	return header, rows
}

// SnapshotRows renders a run's full measurement series as table rows.
func SnapshotRows(r *scenario.Result) (header []string, rows [][]string) {
	header = []string{"t(min)", "n", "edges", "minConn", "avgConn", "symmetry"}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.Time.Minutes()),
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.Edges),
			fmt.Sprintf("%d", p.Min),
			fmt.Sprintf("%.1f", p.Avg),
			fmt.Sprintf("%.3f", p.Symmetry),
		})
	}
	return header, rows
}

// Chart renders one or more series as an ASCII line chart, the terminal
// stand-in for the paper's figures. Each series is drawn with its own
// glyph; the legend maps glyphs to series names.
func Chart(w io.Writer, title string, series []*stats.Series, height int) error {
	layers := make([]chartLayer, len(series))
	for i, s := range series {
		l := chartLayer{name: s.Name}
		for _, p := range s.Points {
			l.points = append(l.points, chartXY{t: p.T.Minutes(), v: p.Value})
		}
		layers[i] = l
	}
	return renderChart(w, title, layers, height, "min")
}
