// Package report renders experiment results the way the paper presents
// them: aligned text tables (Tables 1 and 2, the Figure 10 means) and
// ASCII time-series charts standing in for Figures 2-14.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"kadre/internal/scenario"
	"kadre/internal/simnet"
	"kadre/internal/stats"
)

// WriteTable renders rows as an aligned text table with a header.
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Table1 returns the paper's Table 1 (message-loss scenarios) as rows.
func Table1() (header []string, rows [][]string) {
	header = []string{"Loss l", "Ploss(1-way)", "Ploss(2-way)"}
	for _, l := range simnet.Levels() {
		rows = append(rows, []string{
			l.String(),
			fmt.Sprintf("%.1f%%", l.OneWayLoss()*100),
			fmt.Sprintf("%.0f%%", l.TwoWayLoss()*100),
		})
	}
	return header, rows
}

// Table2 aggregates Simulation E-H results into the paper's Table 2: mean
// and relative variance of the minimum connectivity during the churn
// phase, grouped by size, k, and churn rate.
func Table2(results []*scenario.Result) (header []string, rows [][]string) {
	header = []string{"Size", "k", "Churn", "Mean", "RV"}
	for _, r := range results {
		sum := r.ChurnWindowSummary()
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Config.Size),
			fmt.Sprintf("%d", r.Config.K),
			r.Config.Churn.String(),
			fmt.Sprintf("%.2f", sum.Mean),
			fmt.Sprintf("%.2f", sum.RV),
		})
	}
	return header, rows
}

// MeansByK renders Figure 10-style rows: mean minimum connectivity during
// churn for each run, keyed by the run name.
func MeansByK(results []*scenario.Result) (header []string, rows [][]string) {
	header = []string{"Run", "k", "alpha", "Churn", "MeanMinConn"}
	for _, r := range results {
		sum := r.ChurnWindowSummary()
		alpha := r.Config.Alpha
		if alpha == 0 {
			alpha = 3
		}
		rows = append(rows, []string{
			r.Config.Name,
			fmt.Sprintf("%d", r.Config.K),
			fmt.Sprintf("%d", alpha),
			r.Config.Churn.String(),
			fmt.Sprintf("%.2f", sum.Mean),
		})
	}
	return header, rows
}

// SnapshotRows renders a run's full measurement series as table rows.
func SnapshotRows(r *scenario.Result) (header []string, rows [][]string) {
	header = []string{"t(min)", "n", "edges", "minConn", "avgConn", "symmetry"}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.Time.Minutes()),
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%d", p.Edges),
			fmt.Sprintf("%d", p.Min),
			fmt.Sprintf("%.1f", p.Avg),
			fmt.Sprintf("%.3f", p.Symmetry),
		})
	}
	return header, rows
}

// Chart renders one or more series as an ASCII line chart, the terminal
// stand-in for the paper's figures. Each series is drawn with its own
// glyph; the legend maps glyphs to series names.
func Chart(w io.Writer, title string, series []*stats.Series, height int) error {
	if height <= 0 {
		height = 16
	}
	const width = 72
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Establish ranges.
	minT, maxT := math.Inf(1), math.Inf(-1)
	maxV := math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			any = true
			t := p.T.Minutes()
			if t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
			if p.Value > maxV {
				maxV = p.Value
			}
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", title)
		return err
	}
	if maxV <= 0 {
		maxV = 1
	}
	if maxT <= minT {
		maxT = minT + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			x := int((p.T.Minutes() - minT) / (maxT - minT) * float64(width-1))
			y := int(p.Value / maxV * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = g
			}
		}
	}

	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	for i, row := range grid {
		val := maxV * float64(height-1-i) / float64(height-1)
		if _, err := fmt.Fprintf(w, "%7.1f |%s\n", val, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "         %-8.0f%*s\n", minT, width-8, fmt.Sprintf("%.0f min", maxT)); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", glyphs[si%len(glyphs)], s.Name); err != nil {
			return err
		}
	}
	return nil
}
