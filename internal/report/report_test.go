package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kadre/internal/churn"
	"kadre/internal/scenario"
	"kadre/internal/stats"
)

func TestWriteTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"A", "LongHeader"}, [][]string{
		{"x", "1"},
		{"longer", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "A ") || !strings.Contains(lines[0], "LongHeader") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator line %q", lines[1])
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	header, rows := Table1()
	if len(header) != 3 || len(rows) != 4 {
		t.Fatalf("table shape %dx%d", len(header), len(rows))
	}
	want := [][]string{
		{"none", "0.0%", "0%"},
		{"low", "2.5%", "5%"},
		{"medium", "13.4%", "25%"},
		{"high", "29.3%", "50%"},
	}
	for i, row := range rows {
		for j := range want[i] {
			if row[j] != want[i][j] {
				t.Fatalf("row %d = %v, want %v", i, row, want[i])
			}
		}
	}
}

func fakeResult(name string, size, k int, rate churn.Rate, mins []int) *scenario.Result {
	cfg := scenario.Config{
		Name: name, Size: size, K: k, Churn: rate,
		Setup: 30 * time.Minute, Stabilize: 90 * time.Minute,
		ChurnPhase:       time.Duration(len(mins)*10) * time.Minute,
		SnapshotInterval: 10 * time.Minute,
	}
	r := &scenario.Result{Config: cfg}
	at := cfg.ChurnStart()
	for _, m := range mins {
		r.Points = append(r.Points, scenario.SnapshotStat{Time: at, N: size, Min: m, Avg: float64(2 * m)})
		at += 10 * time.Minute
	}
	return r
}

func TestTable2Rows(t *testing.T) {
	results := []*scenario.Result{
		fakeResult("SimE/k=5", 250, 5, churn.Rate1_1, []int{4, 4, 2}),
		fakeResult("SimG/k=5", 250, 5, churn.Rate10_10, []int{2, 1, 0}),
	}
	header, rows := Table2(results)
	if header[3] != "Mean" || header[4] != "RV" {
		t.Fatalf("header %v", header)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %v", rows)
	}
	if rows[0][0] != "250" || rows[0][1] != "5" || rows[0][2] != "1/1" {
		t.Fatalf("row 0 = %v", rows[0])
	}
	// Mean of 4,4,2 = 3.33.
	if rows[0][3] != "3.33" {
		t.Fatalf("mean cell %q", rows[0][3])
	}
}

func TestMeansByK(t *testing.T) {
	results := []*scenario.Result{fakeResult("F10/small/churn1/1-a3/k=10", 100, 10, churn.Rate1_1, []int{9, 11})}
	_, rows := MeansByK(results)
	if len(rows) != 1 || rows[0][1] != "10" || rows[0][4] != "10.00" {
		t.Fatalf("rows = %v", rows)
	}
	// Alpha defaults to 3 when unset.
	if rows[0][2] != "3" {
		t.Fatalf("alpha cell %q", rows[0][2])
	}
}

func TestSnapshotRows(t *testing.T) {
	r := fakeResult("x", 50, 5, churn.Rate{}, []int{3})
	header, rows := SnapshotRows(r)
	if len(header) != 6 || len(rows) != 1 {
		t.Fatalf("shape %d/%d", len(header), len(rows))
	}
	if rows[0][3] != "3" {
		t.Fatalf("min cell %q", rows[0][3])
	}
}

func TestChart(t *testing.T) {
	var s stats.Series
	s.Name = "min(k=20)"
	for i := 0; i <= 10; i++ {
		s.MustAdd(time.Duration(i)*10*time.Minute, float64(i*2))
	}
	var buf bytes.Buffer
	if err := Chart(&buf, "demo chart", []*stats.Series{&s}, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo chart") || !strings.Contains(out, "min(k=20)") {
		t.Fatalf("chart output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("chart has no data glyphs")
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, "empty", nil, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartMultiSeriesGlyphs(t *testing.T) {
	var a, b stats.Series
	a.Name, b.Name = "a", "b"
	a.MustAdd(0, 1)
	a.MustAdd(time.Hour, 5)
	b.MustAdd(0, 10)
	b.MustAdd(time.Hour, 2)
	var buf bytes.Buffer
	if err := Chart(&buf, "two", []*stats.Series{&a, &b}, 6); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("expected two glyph kinds:\n%s", out)
	}
}
