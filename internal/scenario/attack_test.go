package scenario

import (
	"reflect"
	"testing"
	"time"

	"kadre/internal/attack"
)

// miniAttack is a deliberately small attacked run so the determinism
// matrix (4 strategies x jobs x race detector) stays fast enough to run
// un-gated in the -short CI pass.
func miniAttack(strategy attack.Strategy, seed int64) Config {
	return Config{
		Name:             "mini/" + string(strategy),
		Seed:             seed,
		Size:             24,
		K:                8,
		Staleness:        1,
		Setup:            6 * time.Minute,
		Stabilize:        10 * time.Minute,
		ChurnPhase:       16 * time.Minute,
		SnapshotInterval: 4 * time.Minute,
		SampleFraction:   0.1,
		Workers:          4, // exercise the analyzer pool inside each run
		Attack: attack.Config{
			Strategy: strategy,
			Budget:   12,
			Kills:    3,
			Interval: 4 * time.Minute,
		},
	}
}

// TestAttackRunDeterministicPerStrategy pins the seed contract for every
// strategy: the same seed must reproduce the identical victim sequence
// and the identical degradation curve, strike for strike and point for
// point.
func TestAttackRunDeterministicPerStrategy(t *testing.T) {
	for _, st := range attack.Strategies() {
		a, err := Run(miniAttack(st, 5))
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		b, err := Run(miniAttack(st, 5))
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if a.AttackRemoved == 0 {
			t.Fatalf("%s: adversary removed nothing", st)
		}
		if !reflect.DeepEqual(a.Victims, b.Victims) {
			t.Fatalf("%s: same seed produced different victim sequences:\n%v\nvs\n%v", st, a.Victims, b.Victims)
		}
		if !reflect.DeepEqual(a.Points, b.Points) {
			t.Fatalf("%s: same seed produced different degradation curves:\n%v\nvs\n%v", st, a.Points, b.Points)
		}
	}
}

// TestAttackJobsDeterminism runs the full strategy set at jobs=1 and
// jobs=8: the per-run results (victims and curves) must be bitwise
// identical regardless of how runs are scheduled over workers. Together
// with the race detector this pins the no-shared-state contract of the
// attack engine and the MinPair-dependent cutset strategy.
func TestAttackJobsDeterminism(t *testing.T) {
	var cfgs []Config
	for _, st := range attack.Strategies() {
		cfgs = append(cfgs, miniAttack(st, 9))
	}
	seq, err := RunAllJobs(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllJobs(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(seq[i].Victims, par[i].Victims) {
			t.Fatalf("%s: jobs=1 and jobs=8 victim sequences differ", cfgs[i].Name)
		}
		if !reflect.DeepEqual(seq[i].Points, par[i].Points) {
			t.Fatalf("%s: jobs=1 and jobs=8 degradation curves differ", cfgs[i].Name)
		}
		if seq[i].AttackRemoved != par[i].AttackRemoved {
			t.Fatalf("%s: removed %d vs %d", cfgs[i].Name, seq[i].AttackRemoved, par[i].AttackRemoved)
		}
	}
}

// TestAttackMeasurements checks the degradation bookkeeping: the Removed
// counter is monotone, reaches the budget, matches the victim log, and
// the final network is smaller by exactly the removals the adversary and
// nobody else made (no churn is configured).
func TestAttackMeasurements(t *testing.T) {
	cfg := miniAttack(attack.Degree, 11)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackRemoved != cfg.Attack.Budget {
		t.Fatalf("removed %d, want full budget %d", res.AttackRemoved, cfg.Attack.Budget)
	}
	if len(res.Victims) != res.AttackRemoved {
		t.Fatalf("victim log %d entries, removed %d", len(res.Victims), res.AttackRemoved)
	}
	last := 0
	for _, p := range res.Points {
		if p.Removed < last {
			t.Fatalf("Removed not monotone: %d after %d", p.Removed, last)
		}
		last = p.Removed
		if p.SCC < 0 || p.SCC > 1 {
			t.Fatalf("SCC fraction %v out of range", p.SCC)
		}
	}
	final := res.Points[len(res.Points)-1]
	if final.Removed != cfg.Attack.Budget {
		t.Fatalf("final snapshot saw %d removals, want %d", final.Removed, cfg.Attack.Budget)
	}
	if final.N != cfg.Size-cfg.Attack.Budget {
		t.Fatalf("final size %d, want %d", final.N, cfg.Size-cfg.Attack.Budget)
	}
	// Pre-attack snapshots must see zero removals.
	for _, p := range res.Points {
		if p.Time <= cfg.ChurnStart() && p.Removed != 0 {
			t.Fatalf("removal before the attack window: %+v", p)
		}
	}
}

// TestStrikesInAndKills pins the window arithmetic the presets and the
// kadattack overrides share.
func TestStrikesInAndKills(t *testing.T) {
	if got := StrikesIn(40*time.Minute, 5*time.Minute); got != 8 {
		t.Fatalf("StrikesIn(40m, 5m) = %d, want 8 (strikes at 2.5, 7.5, ..., 37.5)", got)
	}
	if got := StrikesIn(40*time.Minute, 15*time.Minute); got != 3 {
		t.Fatalf("StrikesIn(40m, 15m) = %d, want 3 (strikes at 7.5, 22.5, 37.5)", got)
	}
	if got := StrikesIn(4*time.Minute, 10*time.Minute); got != 0 {
		t.Fatalf("StrikesIn(4m, 10m) = %d, want 0 (first strike misses the window)", got)
	}
	if got := AttackKills(20, 40*time.Minute, 15*time.Minute); got != 7 {
		t.Fatalf("AttackKills(20, 40m, 15m) = %d, want ceil(20/3) = 7", got)
	}
	// The preset numbers must be self-consistent: kills x strikes covers
	// the budget with the final strike possibly partial.
	for _, s := range []Scale{TinyScale, ReducedScale, PaperScale} {
		phase, interval := s.AttackPhase()
		cfg := s.AttackConfig("random", s.Small)
		strikes := StrikesIn(phase, interval)
		if cfg.Kills*strikes < cfg.Budget {
			t.Fatalf("scale %s: %d strikes x %d kills cannot exhaust budget %d",
				s.Name, strikes, cfg.Kills, cfg.Budget)
		}
	}
}

// TestAttackValidation covers the config plumbing errors.
func TestAttackValidation(t *testing.T) {
	cfg := miniAttack(attack.Random, 1)
	cfg.ChurnPhase = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("attack with zero churn phase must fail validation")
	}
	cfg = miniAttack("martians", 1)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown strategy must fail validation")
	}
}
