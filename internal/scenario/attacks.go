package scenario

import (
	"fmt"
	"time"

	"kadre/internal/attack"
)

// Attack-experiment presets: the degradation-curve family the paper's
// random-churn simulations hint at but never run. Every strategy attacks
// the *same* network (identical seed, so identical topology and traffic
// until the attack window opens); the curves therefore differ only by
// victim-selection policy, making the strategies directly comparable.

// attackStrikes is the number of strikes an attack preset schedules
// across the churn-phase window; it also sets the snapshot cadence so
// every strike lands between two measurements.
const attackStrikes = 8

// AttackPhase returns the attack window length and strike interval at
// this scale.
func (s Scale) AttackPhase() (phase, interval time.Duration) {
	phase = s.ChurnLong
	interval = phase / attackStrikes
	if interval < time.Minute {
		interval = time.Minute
	}
	return phase, interval
}

// AttackBudget is the adversary's total removal allowance for a network
// of the given size: half the nodes, enough to shatter any strategy's
// target structure while leaving a measurable remnant.
func AttackBudget(size int) int { return size / 2 }

// StrikesIn returns how many strikes fit in an attack window of the
// given length: the first fires half an interval in (see Config.Attack),
// the rest every interval while still inside the window.
func StrikesIn(phase, interval time.Duration) int {
	armed := phase - interval/2
	if interval <= 0 || armed <= 0 {
		return 0
	}
	return int((armed + interval - 1) / interval) // ceil(armed/interval)
}

// AttackKills spreads a removal budget evenly over the strikes that fit
// the window: the per-strike kill count that just exhausts the budget.
func AttackKills(budget int, phase, interval time.Duration) int {
	strikes := StrikesIn(phase, interval)
	if strikes < 1 {
		strikes = 1
	}
	return (budget + strikes - 1) / strikes
}

// AttackConfig returns the scale's canonical adversary for one strategy:
// the budget spread evenly over the window's strikes.
func (s Scale) AttackConfig(strategy attack.Strategy, size int) attack.Config {
	phase, interval := s.AttackPhase()
	budget := AttackBudget(size)
	return attack.Config{
		Strategy: strategy,
		Budget:   budget,
		Kills:    AttackKills(budget, phase, interval),
		Interval: interval,
	}
}

// AttackExperiment builds the strategy-comparison experiment: one run per
// strategy on the small network, all sharing one seed. Like the paper's
// Simulations A/B the runs carry no data traffic: active lookups heal
// routing tables faster than any budgeted adversary can cut them, which
// measures the repair process rather than the attack. Without traffic
// the curves isolate the structural damage each strategy inflicts.
func (s Scale) AttackExperiment(seed int64, strategies []attack.Strategy) Experiment {
	exp := Experiment{
		ID:    "attack",
		Title: "targeted node removal: connectivity degradation by strategy",
	}
	phase, interval := s.AttackPhase()
	for _, st := range strategies {
		cfg := s.base(fmt.Sprintf("Attack/%s", st), seed, s.Small)
		// k = 5 (the paper's sparsest bucket size): with larger k the
		// small networks are near-complete and every strategy looks the
		// same; at k = 5 the topology has hubs, bottlenecks, and thin
		// keyspace regions for the strategies to exploit.
		cfg.K = 5
		cfg.Staleness = 1
		cfg.Traffic = false
		cfg.ChurnPhase = phase
		cfg.SnapshotInterval = interval
		cfg.Attack = s.AttackConfig(st, s.Small)
		exp.Configs = append(exp.Configs, cfg)
	}
	return exp
}
