package scenario

import (
	"context"
	"errors"
	"testing"
	"time"

	"kadre/internal/snapshot"
)

// TestRunCtxPreCanceled pins the cheap path: a context already done
// costs no simulation at all and surfaces the cause.
func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := RunCtx(ctx, tinyConfig("pre-canceled", 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a partial Result")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-canceled run still took %v", elapsed)
	}
}

// TestRunBoundCtxCancelMidRun cancels from inside the simulation (the
// first snapshot callback) and asserts the contract: an error wrapping
// the cause, no Result, no Bound — nothing for a cache to park — and no
// further snapshot analyses after the cancellation point.
func TestRunBoundCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := tinyConfig("cancel-mid", 2)
	snapshots := 0
	cfg.OnSnapshot = func(_ *snapshot.Snapshot, _ SnapshotStat) {
		snapshots++
		cancel()
	}
	res, bound, err := RunBoundCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil || bound != nil {
		t.Fatalf("canceled run leaked partial state: res=%v bound=%v", res != nil, bound != nil)
	}
	if snapshots != 1 {
		t.Fatalf("%d snapshot analyses ran after cancellation at the first, want 1", snapshots)
	}
}

// TestRunBoundCtxDeadline exercises the deadline flavor: a deadline that
// cannot cover the run yields context.DeadlineExceeded.
func TestRunBoundCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, _, err := RunBoundCtx(ctx, tinyConfig("deadline", 3))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxCompletedRunIdentical pins determinism: a run whose context
// never fires is byte-identical to a plain Run, elapsed wall-clock aside.
func TestRunCtxCompletedRunIdentical(t *testing.T) {
	cfg := tinyConfig("ctx-det", 4)
	cfg.Churn.Add, cfg.Churn.Remove = 1, 1
	cfg.ChurnPhase = 10 * time.Minute
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Points) != len(ctxed.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(plain.Points), len(ctxed.Points))
	}
	for i := range plain.Points {
		if plain.Points[i] != ctxed.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, plain.Points[i], ctxed.Points[i])
		}
	}
}
