package scenario

import (
	"testing"
	"time"

	"kadre/internal/churn"
	"kadre/internal/simnet"
	"kadre/internal/stats"
)

// Integration tests asserting the paper's qualitative findings at test-
// friendly scale. Each test is one claim from §5/§6 of the paper; the
// benches in bench_test.go report the same quantities as metrics.

// findingConfig is the shared base: 50 nodes, fast phases.
func findingConfig(name string, seed int64, k int) Config {
	return Config{
		Name: name, Seed: seed, Size: 50, K: k, Staleness: 1,
		Setup: 10 * time.Minute, Stabilize: 30 * time.Minute,
		SnapshotInterval: 10 * time.Minute, SampleFraction: 0.08,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// skipIfShort gates the full-simulation finding tests out of -short runs
// (notably CI's race-detector pass, where each would take tens of
// seconds); the unit and determinism tests still cover the machinery.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-simulation finding test; skipped with -short")
	}
}

func minAt(t *testing.T, r *Result, at time.Duration) float64 {
	t.Helper()
	v, ok := r.MinSeries().At(at)
	if !ok {
		t.Fatalf("no sample at %v", at)
	}
	return v
}

// Finding (§6): "the network connectivity kappa of Kademlia strongly
// correlates with the bucket size k".
func TestFindingConnectivityTracksK(t *testing.T) {
	skipIfShort(t)
	var stabilized []float64
	ks := []int{5, 10, 20}
	for i, k := range ks {
		cfg := findingConfig("kcorr", int64(10+i), k)
		cfg.Traffic = true
		res := mustRun(t, cfg)
		stabilized = append(stabilized, minAt(t, res, cfg.ChurnStart()))
	}
	for i := 1; i < len(stabilized); i++ {
		if stabilized[i] < stabilized[i-1] {
			t.Fatalf("min connectivity not monotone in k: k=%v -> %v", ks, stabilized)
		}
	}
	// And roughly kappa ~ k for the settled middle value.
	if stabilized[1] < float64(ks[1])-3 {
		t.Fatalf("kappa(k=10) = %v, far below k", stabilized[1])
	}
}

// Finding (§5.5.2): "the data traffic results in an overall improved
// connectivity" and reaches k-level connectivity earlier.
func TestFindingTrafficImprovesConnectivity(t *testing.T) {
	skipIfShort(t)
	quiet := findingConfig("notraffic", 20, 10)
	busy := findingConfig("traffic", 20, 10)
	busy.Traffic = true
	rq, rb := mustRun(t, quiet), mustRun(t, busy)
	// Compare the mean minimum connectivity over the whole run.
	mq := stats.Mean(rq.MinSeries().Values())
	mb := stats.Mean(rb.MinSeries().Values())
	if mb < mq {
		t.Fatalf("traffic lowered mean min connectivity: %.2f (traffic) vs %.2f (none)", mb, mq)
	}
}

// Finding (§5.5.5 / Table 2): stronger churn lowers the churn-phase mean
// of the minimum connectivity.
func TestFindingStrongChurnDepressesMin(t *testing.T) {
	skipIfShort(t)
	mild := findingConfig("churn11", 30, 10)
	mild.Traffic = true
	mild.Churn = churn.Rate1_1
	mild.ChurnPhase = 40 * time.Minute
	wild := mild
	wild.Name = "churn1010"
	wild.Churn = churn.Rate10_10
	rm, rw := mustRun(t, mild), mustRun(t, wild)
	meanMild := rm.ChurnWindowSummary().Mean
	meanWild := rw.ChurnWindowSummary().Mean
	if meanWild > meanMild+1 {
		t.Fatalf("10/10 churn did not depress min connectivity: %.2f vs %.2f under 1/1",
			meanWild, meanMild)
	}
}

// Finding (Fig. 12 / §6): "message loss ... actually increases the
// Kademlia network connectivity" (staleness 1, no churn).
func TestFindingLossRaisesConnectivity(t *testing.T) {
	skipIfShort(t)
	clean := findingConfig("lossnone", 40, 10)
	clean.Traffic = true
	clean.ChurnPhase = 40 * time.Minute // observation
	lossy := clean
	lossy.Name = "losshigh"
	lossy.Loss = simnet.LossHigh
	rc, rl := mustRun(t, clean), mustRun(t, lossy)
	endClean := minAt(t, rc, rc.Config.Total())
	endLossy := minAt(t, rl, rl.Config.Total())
	if endLossy < endClean {
		t.Fatalf("high loss lowered final min connectivity: %v vs %v clean", endLossy, endClean)
	}
}

// Finding (§5.8.2): the greater staleness limit damps the loss-driven
// connectivity gain.
func TestFindingStalenessDampsLossGain(t *testing.T) {
	skipIfShort(t)
	s1 := findingConfig("s1", 50, 10)
	s1.Traffic = true
	s1.Loss = simnet.LossHigh
	s1.ChurnPhase = 40 * time.Minute
	s5 := s1
	s5.Name = "s5"
	s5.Staleness = 5
	r1, r5 := mustRun(t, s1), mustRun(t, s5)
	end1 := minAt(t, r1, r1.Config.Total())
	end5 := minAt(t, r5, r5.Config.Total())
	if end5 > end1+3 {
		t.Fatalf("s=5 did not damp the loss gain: %v vs %v with s=1", end5, end1)
	}
}

// Finding (§5.7): bit-length 80 vs 160 shows no significant difference.
func TestFindingBitLengthIrrelevant(t *testing.T) {
	skipIfShort(t)
	b160 := findingConfig("b160", 60, 10)
	b160.Traffic = true
	b80 := b160
	b80.Name = "b80"
	b80.Bits = 80
	r160, r80 := mustRun(t, b160), mustRun(t, b80)
	m160 := stats.Mean(r160.MinSeries().Values())
	m80 := stats.Mean(r80.MinSeries().Values())
	diff := m160 - m80
	if diff < 0 {
		diff = -diff
	}
	// "No significant difference": within half of k.
	if diff > 5 {
		t.Fatalf("bit-length changed mean min connectivity: b=160 %.2f vs b=80 %.2f", m160, m80)
	}
}

// Finding (§5.5.1): in the 0/1 churn phase the minimum connectivity first
// rises above the stabilized level (leaving nodes free bucket slots and
// the network re-wires), before the shrinking size pulls it down.
func TestFindingDrainChurnTransientRise(t *testing.T) {
	skipIfShort(t)
	cfg := findingConfig("drainrise", 70, 10)
	cfg.Traffic = true
	cfg.Churn = churn.Rate0_1
	cfg.ChurnPhase = 35 * time.Minute
	cfg.SnapshotInterval = 5 * time.Minute
	res := mustRun(t, cfg)
	base := minAt(t, res, cfg.ChurnStart())
	peak := stats.Max(res.MinSeries().Window(cfg.ChurnStart(), cfg.Total()).Values())
	if peak < base {
		t.Fatalf("min connectivity never rose during drain churn: base %v, churn peak %v", base, peak)
	}
}
