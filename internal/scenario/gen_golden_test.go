package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"kadre/internal/workload"
)

// genGoldenDoc byte-pins one generator's tiny run: the measured points
// plus the workload and traffic activity counters, so both the
// connectivity numbers AND the generator's membership/key-picking effect
// are frozen.
type genGoldenDoc struct {
	Points         []churnGoldenPoint `json:"points"`
	WorkloadJoins  int                `json:"workload_joins"`
	WorkloadLeaves int                `json:"workload_leaves"`
	TrafficOps     int                `json:"traffic_ops"`
}

// genBase is the shared tiny scale for the per-generator fixtures: small
// enough to stay fast under -race, long enough that arrivals, session
// ends and trace events all land inside the run.
func genBase(name string, seed int64) Config {
	return Config{
		Name: name, Seed: seed, Size: 20, K: 5, Staleness: 1,
		Setup: 5 * time.Minute, Stabilize: 5 * time.Minute,
		ChurnPhase:       10 * time.Minute,
		SnapshotInterval: 5 * time.Minute,
		SampleFraction:   0.2,
		Workers:          2,
	}
}

// genConfigs returns one tiny config per workload generator. The trace
// fixture replays testdata/trace_tiny.jsonl through the same loader the
// spec path uses.
func genConfigs(t testing.TB) []Config {
	t.Helper()
	trace, err := workload.LoadTrace(filepath.Join("testdata", "trace_tiny.jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	sessions := genBase("gen-sessions", 21)
	sessions.Gen = workload.Generators{
		Arrivals: &workload.ArrivalsSpec{RatePerMinute: 2},
		Sessions: &workload.SessionsSpec{Dist: "lognormal", MeanMinutes: 4, Sigma: 1.2},
	}

	diurnal := genBase("gen-diurnal", 22)
	diurnal.Gen = workload.Generators{
		Arrivals: &workload.ArrivalsSpec{
			RatePerMinute: 2,
			Diurnal:       &workload.DiurnalSpec{PeriodMinutes: 10, Amplitude: 0.8},
		},
		Sessions: &workload.SessionsSpec{Dist: "pareto", MinMinutes: 2, Alpha: 1.5},
	}

	zipf := genBase("gen-zipf", 23)
	zipf.Traffic = true
	zipf.Gen = workload.Generators{
		Popularity: &workload.PopularitySpec{ZipfS: 1.3},
	}

	flash := genBase("gen-flash", 24)
	flash.Gen = workload.Generators{
		FlashCrowds: []workload.FlashCrowdSpec{{
			AtMinutes: 12, Joins: 8, WindowMinutes: 2,
			Sessions: &workload.SessionsSpec{Dist: "pareto", MinMinutes: 1, Alpha: 1.5},
		}},
	}

	replay := genBase("gen-trace", 25)
	replay.Gen = workload.Generators{
		Trace: &workload.TraceSpec{Events: trace},
	}

	return []Config{sessions, diurnal, zipf, flash, replay}
}

// TestGoldenGenerators byte-pins a tiny run of every workload generator
// against its own fixture. Regenerate intentionally with:
//
//	go test ./internal/scenario -run Golden -update
func TestGoldenGenerators(t *testing.T) {
	for _, cfg := range genConfigs(t) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Every generator fixture must exercise its generator: the
			// membership ones must join nodes, the popularity one must
			// skew a live traffic stream.
			if cfg.Gen.Popularity != nil {
				if res.TrafficOps == 0 {
					t.Fatal("popularity fixture ran no traffic")
				}
			} else if res.WorkloadJoins == 0 {
				t.Fatal("generator fixture performed no generative joins")
			}
			doc := genGoldenDoc{
				WorkloadJoins:  res.WorkloadJoins,
				WorkloadLeaves: res.WorkloadLeaves,
				TrafficOps:     res.TrafficOps,
			}
			for _, p := range res.Points {
				doc.Points = append(doc.Points, churnGoldenPoint{
					TMin: p.Time.Minutes(), N: p.N, Edges: p.Edges,
					Min: p.Min, Avg: p.Avg, Symmetry: p.Symmetry, SCC: p.SCC,
				})
			}
			got, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			golden := filepath.Join("testdata", cfg.Name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("generator run drifted from golden fixture %s (run with -update after intentional changes):\n--- got ---\n%s--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}

// TestGenJobsDeterminism runs every generator config at jobs=1 and
// jobs=8: points and workload counters must be bitwise identical
// regardless of worker scheduling. Run under -race in CI, this pins the
// per-run stream-derivation contract — generator RNGs never touch shared
// state.
func TestGenJobsDeterminism(t *testing.T) {
	cfgs := genConfigs(t)
	seq, err := RunAllJobs(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllJobs(cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(seq[i].Points, par[i].Points) {
			t.Fatalf("%s: jobs=1 and jobs=8 points differ:\n%+v\nvs\n%+v",
				cfgs[i].Name, seq[i].Points, par[i].Points)
		}
		if seq[i].WorkloadJoins != par[i].WorkloadJoins || seq[i].WorkloadLeaves != par[i].WorkloadLeaves {
			t.Fatalf("%s: workload counters differ: %d/%d vs %d/%d", cfgs[i].Name,
				seq[i].WorkloadJoins, seq[i].WorkloadLeaves, par[i].WorkloadJoins, par[i].WorkloadLeaves)
		}
		if seq[i].TrafficOps != par[i].TrafficOps {
			t.Fatalf("%s: traffic ops differ: %d vs %d", cfgs[i].Name, seq[i].TrafficOps, par[i].TrafficOps)
		}
	}
}
