package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kadre/internal/churn"
)

var update = flag.Bool("update", false, "rewrite golden files")

// churnGoldenDoc is the serialized form of the churn-heavy golden run:
// every measured point plus the binding-path counters, so both the
// numbers AND the incremental/full routing of the per-snapshot analyses
// are byte-pinned.
type churnGoldenDoc struct {
	Points           []churnGoldenPoint `json:"points"`
	ChurnAdded       int                `json:"churn_added"`
	ChurnRemoved     int                `json:"churn_removed"`
	IncrementalBinds int                `json:"incremental_binds"`
	FullBinds        int                `json:"full_binds"`
}

type churnGoldenPoint struct {
	TMin     float64 `json:"t_min"`
	N        int     `json:"n"`
	Edges    int     `json:"edges"`
	Min      int     `json:"min_conn"`
	Avg      float64 `json:"avg_conn"`
	Symmetry float64 `json:"symmetry"`
	SCC      float64 `json:"scc_frac"`
}

// membersGoldenDoc extends the churn golden schema with the
// membership-rebind counter: the fixture pins not just the measurements
// but that join/leave snapshots actually took the incremental path.
type membersGoldenDoc struct {
	Points            []churnGoldenPoint `json:"points"`
	ChurnAdded        int                `json:"churn_added"`
	ChurnRemoved      int                `json:"churn_removed"`
	IncrementalBinds  int                `json:"incremental_binds"`
	FullBinds         int                `json:"full_binds"`
	MembershipRebinds int                `json:"membership_rebinds"`
}

// TestGoldenTinyMembersRun byte-pins a membership-churn-heavy scenario:
// snapshots every simulated minute under 10/10 churn, so nearly every
// adjacent snapshot pair differs in membership and the stable-slot
// engine must rebind incrementally ACROSS joins and departures — the
// workload that, before stable-slot population indexing, forced a full
// bind per snapshot. Regenerate intentionally with:
//
//	go test ./internal/scenario -run Golden -update
func TestGoldenTinyMembersRun(t *testing.T) {
	res, err := Run(Config{
		Name: "golden-members", Seed: 7, Size: 24, K: 6,
		Churn:            churn.Rate10_10,
		Setup:            4 * time.Minute,
		Stabilize:        4 * time.Minute,
		ChurnPhase:       8 * time.Minute,
		SnapshotInterval: time.Minute,
		SampleFraction:   0.25,
		Workers:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := membersGoldenDoc{
		ChurnAdded: res.ChurnAdded, ChurnRemoved: res.ChurnRemoved,
		IncrementalBinds: res.IncrementalBinds, FullBinds: res.FullBinds,
		MembershipRebinds: res.MembershipRebinds,
	}
	for _, p := range res.Points {
		doc.Points = append(doc.Points, churnGoldenPoint{
			TMin: p.Time.Minutes(), N: p.N, Edges: p.Edges,
			Min: p.Min, Avg: p.Avg, Symmetry: p.Symmetry, SCC: p.SCC,
		})
	}
	if res.MembershipRebinds == 0 {
		t.Fatal("membership-churn golden run never rebound incrementally across a join/leave")
	}
	if res.IncrementalBinds <= res.FullBinds {
		t.Fatalf("membership churn should rebind mostly incrementally: %d incremental vs %d full",
			res.IncrementalBinds, res.FullBinds)
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "members_tiny.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("tiny membership-churn run drifted from golden fixture %s (run with -update after intentional changes):\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}

// TestGoldenTinyChurnRun byte-pins a tiny churn-heavy scenario through
// the incremental snapshot path: frequent snapshots over a stabilization
// window (stable membership, so adjacent analyses rebind incrementally)
// followed by 10/10 churn (membership changes, full binds). Like the
// figure2/cutset fixtures, regenerate intentionally with:
//
//	go test ./internal/scenario -run Golden -update
func TestGoldenTinyChurnRun(t *testing.T) {
	res, err := Run(Config{
		Name: "golden-churn", Seed: 11, Size: 30, K: 8,
		Churn:            churn.Rate10_10,
		Setup:            6 * time.Minute,
		Stabilize:        10 * time.Minute,
		ChurnPhase:       10 * time.Minute,
		SnapshotInterval: 2 * time.Minute,
		SampleFraction:   0.2,
		Workers:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := churnGoldenDoc{
		ChurnAdded: res.ChurnAdded, ChurnRemoved: res.ChurnRemoved,
		IncrementalBinds: res.IncrementalBinds, FullBinds: res.FullBinds,
	}
	for _, p := range res.Points {
		doc.Points = append(doc.Points, churnGoldenPoint{
			TMin: p.Time.Minutes(), N: p.N, Edges: p.Edges,
			Min: p.Min, Avg: p.Avg, Symmetry: p.Symmetry, SCC: p.SCC,
		})
	}
	if res.IncrementalBinds == 0 {
		t.Fatal("churn-heavy golden run never took the incremental snapshot path")
	}
	if res.FullBinds == 0 {
		t.Fatal("churn-heavy golden run never took the full-bind path")
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "churn_tiny.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("tiny churn run drifted from golden fixture %s (run with -update after intentional changes):\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}
