package scenario

import (
	"testing"
	"time"

	"kadre/internal/churn"
	"kadre/internal/connectivity"
)

// TestRunGovernanceInvisibleToResults pins the runner-level governance
// contract: a drain-churn run (population shrinks, so the slot table
// accumulates tombstones and the policy fires) produces exactly the
// same measured points with governance on (the default) and explicitly
// off — only the maintenance counters differ.
func TestRunGovernanceInvisibleToResults(t *testing.T) {
	cfg := tinyConfig("governed", 11)
	cfg.Churn = churn.Rate0_1
	cfg.ChurnPhase = 25 * time.Minute
	// Aggressive thresholds so both maintenance kinds fire in a tiny run.
	cfg.Governance = connectivity.GovernancePolicy{MaxDeadFrac: 0.05, MaxSlotSlack: 0.2}
	governed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := cfg
	off.Name = "ungoverned"
	off.Governance = connectivity.GovernancePolicy{MaxDeadFrac: -1, MaxSlotSlack: -1}
	plain, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}

	if governed.SlotCompactions == 0 {
		t.Fatalf("drain churn under an aggressive policy never compacted the slot table: %+v", governed)
	}
	if plain.SlotCompactions != 0 || plain.Redensifies != 0 {
		t.Fatalf("disabled governance performed maintenance: %+v", plain)
	}
	if len(governed.Points) != len(plain.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(governed.Points), len(plain.Points))
	}
	for i := range governed.Points {
		if governed.Points[i] != plain.Points[i] {
			t.Fatalf("point %d differs under governance: %+v vs %+v",
				i, governed.Points[i], plain.Points[i])
		}
	}
	if governed.ChurnAdded != plain.ChurnAdded || governed.ChurnRemoved != plain.ChurnRemoved ||
		governed.Network != plain.Network {
		t.Fatalf("simulation outcome differs under governance: %+v vs %+v", governed, plain)
	}
	// The governed run's footprint readings must respect the policy.
	if governed.DeadArcFrac > 0.05 {
		t.Fatalf("end-of-run DeadArcFrac %v exceeds the policy threshold", governed.DeadArcFrac)
	}
	if governed.SlotUtilization <= 0 || governed.SlotUtilization > 1 {
		t.Fatalf("implausible slot utilization %v", governed.SlotUtilization)
	}
}

// TestConfigDefaultsGovernance pins the opt-out semantics: the zero
// value takes the default policy, explicit values pass through, and a
// negative threshold disables that dimension.
func TestConfigDefaultsGovernance(t *testing.T) {
	cfg := tinyConfig("defaults", 1).WithDefaults()
	if cfg.Governance != connectivity.DefaultGovernance() {
		t.Fatalf("zero governance defaulted to %+v", cfg.Governance)
	}
	custom := tinyConfig("custom", 1)
	custom.Governance = connectivity.GovernancePolicy{MaxDeadFrac: 0.9, MaxSlotSlack: -1}
	got := custom.WithDefaults().Governance
	if got != custom.Governance {
		t.Fatalf("explicit governance rewritten to %+v", got)
	}
	if got.SlotCompactionDue(100, 1) {
		t.Fatal("negative MaxSlotSlack still triggers slot compaction")
	}
}
