package scenario

import (
	"fmt"
	"time"

	"kadre/internal/attack"
	"kadre/internal/churn"
	"kadre/internal/simnet"
)

// Scale maps the paper's experiment dimensions onto a compute budget. The
// paper ran 250/2500-node networks for up to 1400 simulated minutes and
// fanned max-flow computations out to a 24-node cluster; Paper reproduces
// that literally, while Reduced and Tiny shrink network sizes and churn-
// phase lengths so full figure sweeps finish on one laptop core. Churn
// rates, traffic rates, phase boundaries, and all Kademlia parameters are
// never scaled — only sizes and durations.
type Scale struct {
	Name             string
	Small            int           // small-network size (paper: 250)
	Large            int           // large-network size (paper: 2500)
	Setup            time.Duration // setup phase (paper: 30 min)
	Stabilize        time.Duration // stabilization phase (paper: 90 min)
	ChurnLong        time.Duration // churn phase of Sims E-L (paper: 1280 min)
	SnapshotInterval time.Duration
	SampleFraction   float64 // connectivity sampling c (paper: 0.02)
}

// The three built-in scales.
var (
	PaperScale = Scale{
		Name: "paper", Small: 250, Large: 2500,
		Setup: 30 * time.Minute, Stabilize: 90 * time.Minute,
		ChurnLong:        1280 * time.Minute,
		SnapshotInterval: 20 * time.Minute,
		SampleFraction:   0.02,
	}
	ReducedScale = Scale{
		Name: "reduced", Small: 100, Large: 250,
		Setup: 30 * time.Minute, Stabilize: 90 * time.Minute,
		ChurnLong:        240 * time.Minute,
		SnapshotInterval: 30 * time.Minute,
		SampleFraction:   0.04,
	}
	TinyScale = Scale{
		Name: "tiny", Small: 40, Large: 80,
		Setup: 10 * time.Minute, Stabilize: 30 * time.Minute,
		ChurnLong:        40 * time.Minute,
		SnapshotInterval: 20 * time.Minute,
		SampleFraction:   0.10,
	}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "paper":
		return PaperScale, nil
	case "reduced", "":
		return ReducedScale, nil
	case "tiny":
		return TinyScale, nil
	default:
		return Scale{}, fmt.Errorf("scenario: unknown scale %q (paper, reduced, tiny)", name)
	}
}

// drainChurn is the churn-phase length for the 0/1 simulations A-D: one
// removal per minute until roughly 10 nodes remain, matching the paper's
// figures that run the network down to a handful of nodes.
func (s Scale) drainChurn(size int) time.Duration {
	mins := size - 10
	if mins < 10 {
		mins = 10
	}
	return time.Duration(mins) * time.Minute
}

// KSweep is the bucket-size dimension of Figures 2-10.
var KSweep = []int{5, 10, 20, 30}

// Experiment is a named, runnable reproduction of one paper artefact.
type Experiment struct {
	// ID is the artefact tag, e.g. "figure2" or "table2".
	ID string
	// Title describes the artefact.
	Title string
	// Configs are the runs whose results regenerate the artefact.
	Configs []Config
}

func (s Scale) base(name string, seed int64, size int) Config {
	return Config{
		Name:             name,
		Seed:             seed,
		Size:             size,
		Setup:            s.Setup,
		Stabilize:        s.Stabilize,
		SnapshotInterval: s.SnapshotInterval,
		SampleFraction:   s.SampleFraction,
	}
}

// simAD builds one Simulation A-D style config (churn 0/1, drain to ~10
// nodes, staleness 1 per §5.3's rule for churn sims without loss).
func (s Scale) simAD(sim string, seed int64, size, k int, withTraffic bool) Config {
	cfg := s.base(fmt.Sprintf("Sim%s/k=%d", sim, k), seed, size)
	cfg.K = k
	cfg.Staleness = 1
	cfg.Churn = churn.Rate0_1
	cfg.ChurnPhase = s.drainChurn(size)
	cfg.Traffic = withTraffic
	return cfg
}

// simEH builds one Simulation E-H style config (symmetric churn with
// traffic, staleness 1).
func (s Scale) simEH(sim string, seed int64, size, k int, rate churn.Rate, alpha int) Config {
	cfg := s.base(fmt.Sprintf("Sim%s/k=%d", sim, k), seed, size)
	cfg.K = k
	cfg.Alpha = alpha
	cfg.Staleness = 1
	cfg.Churn = rate
	cfg.ChurnPhase = s.ChurnLong
	cfg.Traffic = true
	return cfg
}

// simIL builds one Simulation I-L style config (k=20, traffic, message
// loss and staleness sweeps).
func (s Scale) simIL(name string, seed int64, rate churn.Rate, loss simnet.LossLevel, staleness int) Config {
	cfg := s.base(name, seed, s.Large)
	cfg.K = 20
	cfg.Staleness = staleness
	cfg.Loss = loss
	cfg.Churn = rate
	cfg.ChurnPhase = s.ChurnLong
	cfg.Traffic = true
	return cfg
}

// Figure2 is Simulation A: size small, churn 0/1, no data traffic.
func (s Scale) Figure2(seed int64) Experiment {
	return s.kSweepExperiment("figure2", "Sim A: size small, churn 0/1, no data traffic", seed, s.Small, false, "A")
}

// Figure3 is Simulation B: size large, churn 0/1, no data traffic.
func (s Scale) Figure3(seed int64) Experiment {
	return s.kSweepExperiment("figure3", "Sim B: size large, churn 0/1, no data traffic", seed, s.Large, false, "B")
}

// Figure4 is Simulation C: size small, churn 0/1, with data traffic.
func (s Scale) Figure4(seed int64) Experiment {
	return s.kSweepExperiment("figure4", "Sim C: size small, churn 0/1, with data traffic", seed, s.Small, true, "C")
}

// Figure5 is Simulation D: size large, churn 0/1, with data traffic.
func (s Scale) Figure5(seed int64) Experiment {
	return s.kSweepExperiment("figure5", "Sim D: size large, churn 0/1, with data traffic", seed, s.Large, true, "D")
}

func (s Scale) kSweepExperiment(experimentID, title string, seed int64, size int, withTraffic bool, sim string) Experiment {
	exp := Experiment{ID: experimentID, Title: title}
	for i, k := range KSweep {
		exp.Configs = append(exp.Configs, s.simAD(sim, seed+int64(i), size, k, withTraffic))
	}
	return exp
}

// Figure6 is Simulation E: size small, churn 1/1, with data traffic.
func (s Scale) Figure6(seed int64) Experiment {
	exp := Experiment{ID: "figure6", Title: "Sim E: size small, churn 1/1, with data traffic"}
	for i, k := range KSweep {
		exp.Configs = append(exp.Configs, s.simEH("E", seed+int64(i), s.Small, k, churn.Rate1_1, 0))
	}
	return exp
}

// Figure7 is Simulation F: size large, churn 1/1, with data traffic.
func (s Scale) Figure7(seed int64) Experiment {
	exp := Experiment{ID: "figure7", Title: "Sim F: size large, churn 1/1, with data traffic"}
	for i, k := range KSweep {
		exp.Configs = append(exp.Configs, s.simEH("F", seed+int64(i), s.Large, k, churn.Rate1_1, 0))
	}
	return exp
}

// Figure8 is Simulation G: size small, churn 10/10, with data traffic.
func (s Scale) Figure8(seed int64) Experiment {
	exp := Experiment{ID: "figure8", Title: "Sim G: size small, churn 10/10, with data traffic"}
	for i, k := range KSweep {
		exp.Configs = append(exp.Configs, s.simEH("G", seed+int64(i), s.Small, k, churn.Rate10_10, 0))
	}
	return exp
}

// Figure9 is Simulation H: size large, churn 10/10, with data traffic.
func (s Scale) Figure9(seed int64) Experiment {
	exp := Experiment{ID: "figure9", Title: "Sim H: size large, churn 10/10, with data traffic"}
	for i, k := range KSweep {
		exp.Configs = append(exp.Configs, s.simEH("H", seed+int64(i), s.Large, k, churn.Rate10_10, 0))
	}
	return exp
}

// Table2 reuses the Simulation E-H runs; mean and relative variance of the
// min-connectivity during churn come from Result.ChurnWindowSummary.
func (s Scale) Table2(seed int64) Experiment {
	exp := Experiment{ID: "table2", Title: "Sims E-H: mean and relative variance of min connectivity during churn"}
	exp.Configs = append(exp.Configs, s.Figure6(seed).Configs...)
	exp.Configs = append(exp.Configs, s.Figure8(seed+100).Configs...)
	exp.Configs = append(exp.Configs, s.Figure7(seed+200).Configs...)
	exp.Configs = append(exp.Configs, s.Figure9(seed+300).Configs...)
	return exp
}

// Figure10 sweeps k for three churn/alpha combinations on both network
// sizes: churn 1/1 alpha 3, churn 10/10 alpha 3, churn 10/10 alpha 5.
func (s Scale) Figure10(seed int64) Experiment {
	exp := Experiment{ID: "figure10", Title: "mean min connectivity during churn vs k, alpha in {3,5}"}
	curves := []struct {
		rate  churn.Rate
		alpha int
		tag   string
	}{
		{churn.Rate1_1, 3, "churn1/1-a3"},
		{churn.Rate10_10, 3, "churn10/10-a3"},
		{churn.Rate10_10, 5, "churn10/10-a5"},
	}
	i := int64(0)
	for _, size := range []int{s.Small, s.Large} {
		sizeTag := "small"
		if size == s.Large {
			sizeTag = "large"
		}
		for _, c := range curves {
			for _, k := range KSweep {
				cfg := s.simEH("F10", seed+i, size, k, c.rate, c.alpha)
				cfg.Name = fmt.Sprintf("F10/%s/%s/k=%d", sizeTag, c.tag, k)
				exp.Configs = append(exp.Configs, cfg)
				i++
			}
		}
	}
	return exp
}

// Section57 repeats Simulations C and D with bit-length 80 alongside 160;
// the paper reports no significant difference.
func (s Scale) Section57(seed int64) Experiment {
	exp := Experiment{ID: "bitlength", Title: "§5.7: bit-length 80 vs 160 on Sims C and D"}
	i := int64(0)
	for _, size := range []int{s.Small, s.Large} {
		sizeTag := "small"
		if size == s.Large {
			sizeTag = "large"
		}
		for _, bits := range []int{160, 80} {
			cfg := s.simAD("S57", seed+i, size, 20, true)
			cfg.Bits = bits
			cfg.Name = fmt.Sprintf("S57/%s/b=%d", sizeTag, bits)
			exp.Configs = append(exp.Configs, cfg)
			i++
		}
	}
	return exp
}

// Figure11 is Simulation I: staleness limits 1 and 5 without message loss,
// churn 1/1 (a) and 10/10 (b), size large, k=20.
func (s Scale) Figure11(seed int64) Experiment {
	exp := Experiment{ID: "figure11", Title: "Sim I: staleness s in {1,5}, no loss, churn 1/1 and 10/10"}
	i := int64(0)
	for _, rate := range []churn.Rate{churn.Rate1_1, churn.Rate10_10} {
		for _, staleness := range []int{1, 5} {
			cfg := s.simIL(fmt.Sprintf("SimI/churn%s/s=%d", rate, staleness), seed+i, rate, simnet.LossNone, staleness)
			exp.Configs = append(exp.Configs, cfg)
			i++
		}
	}
	return exp
}

// lossSweep builds one Simulation J/K/L experiment.
func (s Scale) lossSweep(experimentID, sim string, seed int64, rate churn.Rate) Experiment {
	exp := Experiment{ID: experimentID, Title: fmt.Sprintf("Sim %s: loss sweep, churn %s, s in {1,5}", sim, rate)}
	i := int64(0)
	for _, staleness := range []int{1, 5} {
		for _, loss := range []simnet.LossLevel{simnet.LossLow, simnet.LossMedium, simnet.LossHigh} {
			cfg := s.simIL(fmt.Sprintf("Sim%s/s=%d/l=%s", sim, staleness, loss), seed+i, rate, loss, staleness)
			exp.Configs = append(exp.Configs, cfg)
			i++
		}
	}
	return exp
}

// Figure12 is Simulation J: message loss sweep without churn.
func (s Scale) Figure12(seed int64) Experiment {
	return s.lossSweep("figure12", "J", seed, churn.Rate{})
}

// Figure13 is Simulation K: message loss sweep with churn 1/1.
func (s Scale) Figure13(seed int64) Experiment {
	return s.lossSweep("figure13", "K", seed, churn.Rate1_1)
}

// Figure14 is Simulation L: message loss sweep with churn 10/10.
func (s Scale) Figure14(seed int64) Experiment {
	return s.lossSweep("figure14", "L", seed, churn.Rate10_10)
}

// Experiments returns every runnable experiment at this scale, keyed by ID.
func (s Scale) Experiments(seed int64) []Experiment {
	return []Experiment{
		s.Figure2(seed), s.Figure3(seed), s.Figure4(seed), s.Figure5(seed),
		s.Figure6(seed), s.Figure7(seed), s.Figure8(seed), s.Figure9(seed),
		s.Table2(seed), s.Figure10(seed), s.Section57(seed),
		s.Figure11(seed), s.Figure12(seed), s.Figure13(seed), s.Figure14(seed),
		s.AttackExperiment(seed, attack.Strategies()),
	}
}

// ExperimentByID resolves one experiment by artefact tag.
func (s Scale) ExperimentByID(experimentID string, seed int64) (Experiment, error) {
	for _, e := range s.Experiments(seed) {
		if e.ID == experimentID {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("scenario: unknown experiment %q", experimentID)
}
