package scenario

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kadre/internal/attack"
	"kadre/internal/churn"
	"kadre/internal/connectivity"
	"kadre/internal/eventsim"
	"kadre/internal/par"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
	"kadre/internal/traffic"
	"kadre/internal/workload"
)

// Run executes one simulation: randomized setup joins, stabilization,
// optional traffic and churn, periodic connectivity snapshots, exactly as
// described in §5.3-§5.4 of the paper.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a cancel context: when ctx is canceled (or its
// deadline passes) mid-run, the event kernel stops within one event batch,
// the pending snapshot analyses are skipped, and the partial run is
// discarded with an error wrapping ctx's cause. A run that completes is
// byte-identical to an uncanceled Run.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	res, _, err := RunBoundCtx(ctx, cfg)
	return res, err
}

// Bound is the warm analysis state a finished run leaves behind: the
// connectivity engine still bound to the topology of the last analyzed
// snapshot, the stable-slot index that carried vertex identity through
// the run, and that final capture itself. Long-running services (the
// kadserve arena) keep Bounds alive across queries so follow-up analyses
// against the same scenario never re-pay the simulation or the engine
// bind; batch callers use Run and let it all be collected.
type Bound struct {
	// Engine answers further connectivity queries against the final
	// captured topology. Not safe for concurrent use (see
	// connectivity.Engine); callers serialize access themselves.
	Engine *connectivity.Engine
	// Slots is the run's stable-slot table.
	Slots *snapshot.SlotIndex
	// Final is the last snapshot whose graph the engine analyzed, nil
	// when no snapshot had more than one live node (the engine is then
	// unbound and Engine queries are invalid).
	Final *snapshot.SlotSnapshot
	// FinalAvgSeed is the AvgSeed the final snapshot's Avg sweep used;
	// re-running AnalyzeSnapshot with it and the run's SampleFraction
	// reproduces the final point's Min/Avg exactly.
	FinalAvgSeed int64
}

// Ready reports whether the bound engine holds an analyzable topology.
func (b *Bound) Ready() bool { return b != nil && b.Final != nil }

// RunBound is Run, but it additionally hands back the run's end-of-run
// engine binding instead of discarding it. The Result is byte-identical
// to Run's for the same config.
func RunBound(cfg Config) (*Result, *Bound, error) {
	return RunBoundCtx(context.Background(), cfg)
}

// RunBoundCtx is RunBound under a cancel context (see RunCtx). The
// cancellation signal is checked at two grains: the event kernel polls it
// every eventsim.DefaultCancelBatch fired events, and the snapshot
// callback checks it before paying a connectivity analysis — so a
// canceled run stops within one event batch and never starts another
// max-flow sweep.
func RunBoundCtx(ctx context.Context, cfg Config) (*Result, *Bound, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	start := time.Now()

	sim := eventsim.New(cfg.Seed)
	sim.SetCancel(ctx, 0)
	net := simnet.New(sim, simnet.Config{
		Latency: simnet.UniformLatency{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Loss:    cfg.Loss.Model(),
	})
	pop := &population{sim: sim, net: net, cfg: cfg.kademliaConfig(), nextAddr: 1}

	// Setup phase: every node joins at a uniformly random instant within
	// [0, Setup), bootstrapping from a random already-joined node (§5.3).
	joinTimes := make([]time.Duration, cfg.Size)
	for i := range joinTimes {
		joinTimes[i] = time.Duration(sim.Rand().Int63n(int64(cfg.Setup)))
	}
	sort.Slice(joinTimes, func(i, j int) bool { return joinTimes[i] < joinTimes[j] })
	var spawnErr error
	for _, at := range joinTimes {
		if _, err := sim.ScheduleAt(at, func() {
			if _, err := pop.spawn(); err != nil && spawnErr == nil {
				spawnErr = err
			}
		}); err != nil {
			return nil, nil, fmt.Errorf("scenario: schedule join: %w", err)
		}
	}

	// Traffic runs through all phases in the with-traffic scenarios.
	var traff *traffic.Generator
	if cfg.Traffic {
		var err error
		traff, err = traffic.NewGenerator(sim, pop.cfg.Bits, cfg.Workload, pop)
		if err != nil {
			return nil, nil, err
		}
		if err := traff.Start(0, cfg.Total()); err != nil {
			return nil, nil, err
		}
	}

	// Churn begins at minute 120 (§5.4).
	churnGen := churn.NewGenerator(sim, cfg.Churn, pop)
	if !cfg.Churn.IsZero() {
		if err := churnGen.Start(cfg.ChurnStart(), cfg.Total()); err != nil {
			return nil, nil, err
		}
	}

	// The generative workload layer rides alongside fixed-rate churn:
	// Poisson arrivals share the churn window, flash crowds and trace
	// events fire at their own absolute times, and Zipf popularity
	// reshapes the traffic generator's key selection. Every draw comes
	// from a splitmix64 stream of the run seed, so the layer never
	// perturbs the kernel RNG the other generators consume.
	var gen *workload.Engine
	if cfg.Gen.Enabled() {
		gen = workload.NewEngine(sim, cfg.Gen, cfg.Seed, pop)
		if err := gen.Start(cfg.ChurnStart(), cfg.Total()); err != nil {
			return nil, nil, err
		}
		if cfg.Gen.Popularity != nil {
			if traff == nil {
				return nil, nil, fmt.Errorf("scenario: popularity generator without traffic")
			}
			pick, err := workload.NewZipfPicker(cfg.Seed, cfg.Gen.Popularity, traff.PoolSize())
			if err != nil {
				return nil, nil, err
			}
			traff.SetKeyPicker(pick)
		}
	}

	// The adversary shares the churn window, with strikes offset half an
	// interval from the phase boundary (see Config.Attack). It is started
	// only after the snapshots are scheduled, so at a shared instant the
	// snapshot's event precedes the strike's: a snapshot at time t always
	// observes exactly the strikes that fired strictly before t.
	adversary, err := attack.NewEngine(sim, cfg.Attack, pop)
	if err != nil {
		return nil, nil, err
	}

	// Connectivity snapshots: every SnapshotInterval, plus one at the very
	// end of the run. One engine serves every snapshot, fusing the Min
	// (smallest-out-degree, pruned) and Avg (seeded uniform, exact) sweeps
	// into a single pass and reusing the Even transform, solver pool and
	// scratch across snapshots instead of rebuilding them per analyzer.
	// Binding is incremental across adjacent snapshots through stable-slot
	// population indexing: each node keeps a persistent vertex slot for
	// its lifetime (tombstoned on departure, recycled for joins), so the
	// snapshot graphs of consecutive captures live in one vertex space
	// even across joins, churn departures and adversarial strikes, and the
	// engine patches its solvers with the edge delta instead of
	// rebuilding. Only a slot-table growth — a new all-time-high live
	// count, e.g. during the setup joins — forces a full bind. Results are
	// reported in the canonical compacted numbering via the capture's
	// Order map, identical to what dense per-snapshot captures produced.
	res := &Result{Config: cfg}
	engine, err := connectivity.NewEngine(connectivity.EngineOptions{Workers: cfg.Workers})
	if err != nil {
		return nil, nil, err
	}
	engine.SetGovernance(cfg.Governance)
	binder := connectivity.NewIncrementalBinder(engine)
	// Pre-size the slot table for the configured population so the setup
	// join burst assigns slots without reallocating the table per wave.
	var slots snapshot.SlotIndex
	slots.Reserve(cfg.Size)
	// The last analyzed capture and its Avg-sweep seed, kept so RunBound
	// can hand back a warm engine binding with enough context to
	// reproduce (or re-sample) the final point's analysis.
	var lastSnap *snapshot.SlotSnapshot
	var lastAvgSeed int64
	snap := func() {
		// Snapshot-boundary cancellation check: the analysis below is the
		// run's expensive unit of work, and the kernel's event-batch poll
		// cannot interrupt a max-flow sweep already inside one event. A
		// canceled query therefore never starts another analysis; Stop
		// makes the kernel return without draining cheaper events first.
		if ctx.Err() != nil {
			sim.Stop()
			return
		}
		s := snapshot.CaptureSlots(sim.Now(), pop.nodes, &slots)
		point := SnapshotStat{
			Time: sim.Now(), N: s.N(), Edges: s.Graph.M(),
			SCC: s.LargestSCCFraction(), Removed: adversary.Removed(),
		}
		if s.N() > 1 {
			point.Symmetry = s.Graph.SymmetryRatio()
			if binder.BindNextSlots(s.Graph, s.Order) {
				res.IncrementalBinds++
			} else {
				res.FullBinds++
			}
			avgSeed := cfg.Seed + int64(len(res.Points))
			sr := engine.AnalyzeSnapshot(connectivity.SnapshotQuery{
				SampleFraction: cfg.SampleFraction,
				AvgSeed:        avgSeed,
			})
			lastSnap, lastAvgSeed = s, avgSeed
			point.Min = sr.Min.Min
			point.Avg = sr.Avg.Avg
			if sr.Avg.Pairs == 0 {
				// The uniform sample yielded no evaluable pair (or the
				// graph was complete): fall back to the definitional n-1.
				point.Avg = float64(s.N() - 1)
			}
		}
		res.Points = append(res.Points, point)
		cfg.logf("%s t=%3.0fm n=%4d edges=%6d min=%3d avg=%6.1f sym=%.3f",
			cfg.Name, sim.Now().Minutes(), point.N, point.Edges, point.Min, point.Avg, point.Symmetry)
		if cfg.OnSnapshot != nil {
			cfg.OnSnapshot(s.Dense(), point)
		}
		// End-of-snapshot memory governance, off the analysis hot path:
		// re-densify over-threshold solver arc stores in place, and compact
		// the slot table once tombstones outweigh the policy's slack budget
		// (renumbering the slot space, which the next capture absorbs
		// through the binder's full-bind fallback). Neither changes any
		// measured point — the churn oracle holds governed engines to
		// bit-identical answers across every compaction event.
		engine.Maintain()
		if cfg.Governance.SlotCompactionDue(slots.Len(), slots.Live()) {
			slots.Compact()
			res.SlotCompactions++
		}
	}
	for at := cfg.SnapshotInterval; at < cfg.Total(); at += cfg.SnapshotInterval {
		if _, err := sim.ScheduleAt(at, snap); err != nil {
			return nil, nil, fmt.Errorf("scenario: schedule snapshot: %w", err)
		}
	}
	if _, err := sim.ScheduleAt(cfg.Total(), snap); err != nil {
		return nil, nil, fmt.Errorf("scenario: schedule final snapshot: %w", err)
	}

	if cfg.Attack.Enabled() {
		if err := adversary.Start(cfg.ChurnStart()+cfg.Attack.Interval/2, cfg.Total()); err != nil {
			return nil, nil, err
		}
	}

	sim.RunUntil(cfg.Total())
	if err := ctx.Err(); err != nil {
		// The partial run is discarded wholesale: no Result, no Bound, so
		// a canceled replication can never park half-simulated state in a
		// caller's cache (the kadserve arena relies on this).
		return nil, nil, fmt.Errorf("scenario %q: run canceled: %w", cfg.Name, err)
	}
	if spawnErr != nil {
		return nil, nil, spawnErr
	}
	if errs := churnGen.Errs(); len(errs) > 0 {
		return nil, nil, fmt.Errorf("scenario: churn additions failed: %w", errs[0])
	}
	if gen != nil {
		if errs := gen.Errs(); len(errs) > 0 {
			return nil, nil, fmt.Errorf("scenario: workload joins failed: %w", errs[0])
		}
		res.WorkloadJoins = gen.Joins()
		res.WorkloadLeaves = gen.Leaves()
	}

	res.MembershipRebinds = engine.MembershipRebinds()
	res.Redensifies = engine.Redensifies()
	res.DeadArcFrac = engine.MemoryStats().DeadArcFrac()
	res.SlotUtilization = slots.Utilization()
	res.ChurnAdded = churnGen.Added()
	res.ChurnRemoved = churnGen.Removed()
	res.AttackRemoved = adversary.Removed()
	res.Victims = adversary.Victims()
	if traff != nil {
		res.TrafficOps = traff.Lookups() + traff.Stores()
	}
	res.Network = net.Stats()
	res.Elapsed = time.Since(start)
	return res, &Bound{
		Engine: engine, Slots: &slots,
		Final: lastSnap, FinalAvgSeed: lastAvgSeed,
	}, nil
}

// RunAll executes a slice of configs across GOMAXPROCS workers and
// returns the results in input order. Each run is deterministic in its
// own seed, so the results are identical to a sequential execution; only
// wall-clock time changes. Config callbacks (Log, OnSnapshot) may be
// invoked concurrently from different runs — use RunAllJobs(cfgs, 1) for
// strictly sequential execution.
func RunAll(cfgs []Config) ([]*Result, error) {
	return RunAllJobs(cfgs, 0)
}

// RunAllJobs is RunAll with an explicit worker bound (<= 0 means
// GOMAXPROCS). On failure it reports the error of the earliest failing
// config; configs queued after the failure may be skipped.
func RunAllJobs(cfgs []Config, jobs int) ([]*Result, error) {
	return par.Map(jobs, cfgs, func(_ int, cfg Config) (*Result, error) {
		r, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", cfg.Name, err)
		}
		return r, nil
	})
}
