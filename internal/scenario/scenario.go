// Package scenario orchestrates the paper's simulation methodology: the
// three phases (setup 0-30 min with randomized joins, stabilization until
// minute 120, then churn), the eight experiment dimensions (network size,
// churn, traffic, message loss, k, alpha, b, s), periodic connectivity
// snapshots, and the named Simulations A-L behind every figure and table
// of the evaluation section.
package scenario

import (
	"fmt"
	"time"

	"kadre/internal/attack"
	"kadre/internal/churn"
	"kadre/internal/connectivity"
	"kadre/internal/eventsim"
	"kadre/internal/kademlia"
	"kadre/internal/simnet"
	"kadre/internal/snapshot"
	"kadre/internal/stats"
	"kadre/internal/traffic"
	"kadre/internal/workload"
)

// Defaults for the paper's simulation phases (§5.4).
const (
	DefaultSetup            = 30 * time.Minute
	DefaultStabilize        = 90 * time.Minute
	DefaultSnapshotInterval = 20 * time.Minute
	// DefaultSampleFraction is the paper's connectivity sampling c.
	DefaultSampleFraction = 0.02
)

// Config describes one simulation run (one curve bundle of one figure).
type Config struct {
	// Name labels the run in reports, e.g. "SimE/k=20".
	Name string
	// Seed makes the run reproducible.
	Seed int64
	// Size is the initial network size (paper: 250 and 2500).
	Size int

	// Kademlia parameters (zero values take the paper defaults).
	K         int
	Alpha     int
	Bits      int
	Staleness int

	// Loss is the Table 1 message-loss scenario; zero means none.
	Loss simnet.LossLevel
	// Churn is the add/remove rate applied during the churn phase.
	Churn churn.Rate
	// Attack configures an adversarial node-removal schedule running in
	// the churn-phase window (zero value: no adversary). Strikes are
	// offset half an attack interval from the phase boundary, so with
	// the preset cadence (Interval == SnapshotInterval) they interleave
	// the periodic snapshots; if a custom interval makes a strike and a
	// snapshot share an instant, the snapshot runs first. Either way a
	// snapshot at time t observes exactly the strikes that fired
	// strictly before t.
	Attack attack.Config
	// Traffic toggles the 10-lookups + 1-dissemination per node per
	// minute workload.
	Traffic bool
	// Workload overrides traffic rates when Traffic is set (explicit
	// zero rates via traffic.Disabled).
	Workload traffic.Workload
	// Gen is the generative workload bundle (heavy-tailed sessions,
	// diurnal arrivals, Zipf popularity, flash crowds, trace replay);
	// the zero value runs none of it. Typically populated from a
	// scenario spec file via FromSpec.
	Gen workload.Generators
	// SpecDigest fingerprints the scenario spec this config was resolved
	// from (empty for compiled-in presets). It never affects the run —
	// the sweep checkpoint layer records it to refuse resuming results
	// produced by an edited spec.
	SpecDigest string

	// Phase durations; zero values take the paper defaults (30/90 min).
	Setup      time.Duration
	Stabilize  time.Duration
	ChurnPhase time.Duration

	// SnapshotInterval is the connectivity sampling period.
	SnapshotInterval time.Duration
	// SampleFraction is the connectivity analysis sampling c.
	SampleFraction float64
	// Workers bounds the analysis worker pool (0 = GOMAXPROCS).
	Workers int
	// Governance bounds the long-run memory of the snapshot analysis
	// pipeline: between snapshots the runner re-densifies solver arc
	// stores and compacts the slot table once the policy thresholds trip
	// (see connectivity.GovernancePolicy). Maintenance never changes
	// results — only the Result's maintenance counters and the binding
	// diagnostics reflect it — so it is deliberately absent from the
	// sweep checkpoint fingerprint. The zero value takes
	// connectivity.DefaultGovernance; set any threshold negative to
	// disable governance outright.
	Governance connectivity.GovernancePolicy

	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
	// OnSnapshot, when set, receives every captured snapshot together
	// with its analysis, e.g. for persisting graphs to disk.
	OnSnapshot func(s *snapshot.Snapshot, stat SnapshotStat)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Setup == 0 {
		c.Setup = DefaultSetup
	}
	if c.Stabilize == 0 {
		c.Stabilize = DefaultStabilize
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = DefaultSnapshotInterval
	}
	if c.SampleFraction == 0 {
		c.SampleFraction = DefaultSampleFraction
	}
	if c.Loss == 0 {
		c.Loss = simnet.LossNone
	}
	if c.Governance == (connectivity.GovernancePolicy{}) {
		c.Governance = connectivity.DefaultGovernance()
	}
	if c.Attack.Enabled() {
		// The adversary's cutset analyzer inherits the run's sampling
		// and worker budget unless configured explicitly.
		if c.Attack.SampleFraction == 0 {
			c.Attack.SampleFraction = c.SampleFraction
		}
		if c.Attack.Workers == 0 {
			c.Attack.Workers = c.Workers
		}
		// The adversary's private recon engine and slot table live under
		// the same memory-governance policy as the measurement pipeline.
		if c.Attack.Governance == (connectivity.GovernancePolicy{}) {
			c.Attack.Governance = c.Governance
		}
		c.Attack = c.Attack.WithDefaults()
	}
	return c
}

// WithDefaults returns the config with zero fields replaced by the paper
// defaults — the exact config a Run executes. Other packages (e.g. sweep
// checkpointing) use it to reconstruct a run's effective configuration.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate checks a defaulted config.
func (c Config) Validate() error {
	if c.Size < 2 {
		return fmt.Errorf("scenario: size %d must be >= 2", c.Size)
	}
	if c.Setup <= 0 || c.Stabilize < 0 || c.ChurnPhase < 0 {
		return fmt.Errorf("scenario: invalid phase durations %v/%v/%v", c.Setup, c.Stabilize, c.ChurnPhase)
	}
	if c.SnapshotInterval <= 0 {
		return fmt.Errorf("scenario: snapshot interval must be positive")
	}
	if !c.Churn.IsZero() && c.ChurnPhase == 0 {
		return fmt.Errorf("scenario: churn rate %v with zero churn phase", c.Churn)
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Gen.Arrivals != nil && c.ChurnPhase == 0 {
		return fmt.Errorf("scenario: generative arrivals with zero churn phase")
	}
	if err := c.Gen.Validate(c.Total().Minutes(), c.Traffic); err != nil {
		return err
	}
	if c.Attack.Enabled() {
		if c.ChurnPhase == 0 {
			return fmt.Errorf("scenario: attack %v with zero churn phase", c.Attack)
		}
		if err := c.Attack.Validate(); err != nil {
			return err
		}
		if !c.Attack.Target.IsZeroValue() && c.Attack.Target.Bits() != c.kademliaConfig().Bits {
			return fmt.Errorf("scenario: attack target bit-length %d != network %d",
				c.Attack.Target.Bits(), c.kademliaConfig().Bits)
		}
	}
	return c.kademliaConfig().Validate()
}

// ChurnStart returns the virtual time at which the churn phase begins
// (minute 120 under paper defaults).
func (c Config) ChurnStart() time.Duration { return c.Setup + c.Stabilize }

// Total returns the full duration of the run.
func (c Config) Total() time.Duration { return c.Setup + c.Stabilize + c.ChurnPhase }

func (c Config) kademliaConfig() kademlia.Config {
	return kademlia.Config{
		Bits:           c.Bits,
		K:              c.K,
		Alpha:          c.Alpha,
		StalenessLimit: c.Staleness,
	}.WithDefaults()
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// SnapshotStat is the per-snapshot measurement: the paper's plotted
// quantities at one instant.
type SnapshotStat struct {
	Time     time.Duration
	N        int     // live network size
	Edges    int     // routing-table edges
	Symmetry float64 // fraction of edges with a reverse edge
	Min      int     // minimum connectivity (smallest-out-degree sampled)
	Avg      float64 // average pair connectivity (uniform sampled)
	SCC      float64 // largest strongly-connected-component fraction
	Removed  int     // cumulative adversarial removals at snapshot time
}

// Result is the outcome of one run.
type Result struct {
	Config       Config
	Points       []SnapshotStat
	ChurnAdded   int
	ChurnRemoved int
	TrafficOps   int
	// WorkloadJoins and WorkloadLeaves count the generative workload
	// engine's membership actions (arrivals, flash-crowd joins, session
	// ends, trace events); zero when no generator is configured.
	WorkloadJoins  int
	WorkloadLeaves int
	// AttackRemoved counts nodes the adversary removed; Victims logs
	// them in strike order (nil when no attack is configured).
	AttackRemoved int
	Victims       []attack.Victim
	// IncrementalBinds and FullBinds count how the per-snapshot analyses
	// bound the connectivity engine. With stable-slot population indexing
	// a snapshot rebinds incrementally whenever the slot table did not
	// grow — joins, churn departures and adversarial strikes included —
	// so full binds are confined to the first snapshot and new
	// all-time-high live counts (the setup joins, in practice).
	// Diagnostics only — not part of the sweep JSON schema.
	IncrementalBinds int
	FullBinds        int
	// MembershipRebinds counts the incremental binds that crossed a
	// membership change (a subset of IncrementalBinds): snapshots whose
	// joins, departures or strikes were absorbed by stable-slot rebinding
	// instead of a full rebuild.
	MembershipRebinds int
	// Memory-governance outcome (part of the sweep JSON schema, so every
	// value here is deterministic for a config and independent of the
	// worker count). SlotCompactions counts slot-table compactions and
	// Redensifies the primary-solver arc-store rebuilds performed between
	// snapshots; DeadArcFrac and SlotUtilization are the end-of-run
	// footprint readings — a DeadArcFrac pinned under the policy's
	// MaxDeadFrac is the visible form of the long-run memory bound.
	SlotCompactions int
	Redensifies     int
	DeadArcFrac     float64
	SlotUtilization float64
	Network         simnet.Stats
	Elapsed         time.Duration // wall-clock cost of the run
}

// MinSeries returns the minimum-connectivity time series.
func (r *Result) MinSeries() *stats.Series {
	s := &stats.Series{Name: r.Config.Name + "/min"}
	for _, p := range r.Points {
		s.MustAdd(p.Time, float64(p.Min))
	}
	return s
}

// AvgSeries returns the average-connectivity time series.
func (r *Result) AvgSeries() *stats.Series {
	s := &stats.Series{Name: r.Config.Name + "/avg"}
	for _, p := range r.Points {
		s.MustAdd(p.Time, p.Avg)
	}
	return s
}

// SCCSeries returns the largest-SCC-fraction time series.
func (r *Result) SCCSeries() *stats.Series {
	s := &stats.Series{Name: r.Config.Name + "/scc"}
	for _, p := range r.Points {
		s.MustAdd(p.Time, p.SCC)
	}
	return s
}

// SizeSeries returns the live-network-size time series.
func (r *Result) SizeSeries() *stats.Series {
	s := &stats.Series{Name: r.Config.Name + "/size"}
	for _, p := range r.Points {
		s.MustAdd(p.Time, float64(p.N))
	}
	return s
}

// RemovedSeries returns the cumulative adversarial-removal time series.
func (r *Result) RemovedSeries() *stats.Series {
	s := &stats.Series{Name: r.Config.Name + "/removed"}
	for _, p := range r.Points {
		s.MustAdd(p.Time, float64(p.Removed))
	}
	return s
}

// ChurnWindowSummary summarizes the minimum connectivity during the churn
// phase — the quantity behind Table 2 and Figure 10.
func (r *Result) ChurnWindowSummary() stats.Summary {
	return stats.Summarize(r.MinSeries().Window(r.Config.ChurnStart(), r.Config.Total()))
}

// population implements churn.Population and traffic.Population over the
// evolving node set. Vertex identity across captures is carried by
// stable-slot indexing (snapshot.SlotIndex) on the capture side — a
// node's address is its persistent identity, so the runner's and the
// adversary's slot tables rebind incrementally across joins, departures
// and strikes without the population having to track generations.
type population struct {
	sim      *eventsim.Simulator
	net      *simnet.Network
	cfg      kademlia.Config
	nodes    []*kademlia.Node
	nextAddr simnet.Addr
}

var (
	_ churn.Population    = (*population)(nil)
	_ traffic.Population  = (*population)(nil)
	_ attack.Population   = (*population)(nil)
	_ attack.SlotRecon    = (*population)(nil)
	_ workload.Population = (*population)(nil)
)

// LiveNodes implements traffic.Population.
func (p *population) LiveNodes() []*kademlia.Node {
	out := make([]*kademlia.Node, 0, len(p.nodes))
	for _, n := range p.nodes {
		if n.Running() {
			out = append(out, n)
		}
	}
	return out
}

// RemoveRandomNode implements churn.Population: a uniformly chosen live
// node leaves silently.
func (p *population) RemoveRandomNode() bool {
	live := p.LiveNodes()
	if len(live) == 0 {
		return false
	}
	live[p.sim.Rand().Intn(len(live))].Leave()
	return true
}

// AttackSnapshot implements attack.Population: the adversary's
// reconnaissance is the same routing-table capture the measurement
// snapshots use.
func (p *population) AttackSnapshot() *snapshot.Snapshot {
	return snapshot.Capture(p.sim.Now(), p.nodes)
}

// AttackSlotSnapshot implements attack.SlotRecon: stable-slot
// reconnaissance against the adversary's private slot table, so the
// cutset engine rebinds incrementally across its own strikes.
func (p *population) AttackSlotSnapshot(idx *snapshot.SlotIndex) *snapshot.SlotSnapshot {
	return snapshot.CaptureSlots(p.sim.Now(), p.nodes, idx)
}

// RemoveNode implements attack.Population: the live node at addr leaves
// silently, exactly like a churn departure.
func (p *population) RemoveNode(addr simnet.Addr) bool {
	for _, n := range p.nodes {
		if n.Addr() == addr && n.Running() {
			n.Leave()
			return true
		}
	}
	return false
}

// AddNode implements churn.Population: a fresh node starts and joins via a
// random live bootstrap node.
func (p *population) AddNode() error {
	_, err := p.spawn()
	return err
}

// Join implements workload.Population: a generative join returning a
// session handle the workload engine ends when the node's sampled (or
// trace-recorded) lifetime expires.
func (p *population) Join() (workload.Session, error) {
	node, err := p.spawn()
	if err != nil {
		return nil, err
	}
	return nodeSession{node}, nil
}

// LeaveRandom implements workload.Population for unlabeled trace leaves.
func (p *population) LeaveRandom() bool { return p.RemoveRandomNode() }

// nodeSession adapts one node to workload.Session: ending the session is
// a silent churn-style departure, a no-op when churn or an adversary got
// to the node first.
type nodeSession struct{ node *kademlia.Node }

func (s nodeSession) End() bool {
	if !s.node.Running() {
		return false
	}
	s.node.Leave()
	return true
}

// spawn creates, starts, and (when a bootstrap exists) joins one node.
func (p *population) spawn() (*kademlia.Node, error) {
	live := p.LiveNodes()
	addr := p.nextAddr
	p.nextAddr++
	node, err := kademlia.NewNode(p.cfg, addr, p.net)
	if err != nil {
		return nil, fmt.Errorf("scenario: spawn: %w", err)
	}
	if err := node.Start(); err != nil {
		return nil, fmt.Errorf("scenario: spawn: %w", err)
	}
	p.nodes = append(p.nodes, node)
	if len(live) > 0 {
		bootstrap := live[p.sim.Rand().Intn(len(live))]
		if err := node.Join(bootstrap.Contact(), nil); err != nil {
			return nil, fmt.Errorf("scenario: join: %w", err)
		}
	}
	return node, nil
}
