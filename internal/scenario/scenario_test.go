package scenario

import (
	"math"
	"testing"
	"time"

	"kadre/internal/churn"
	"kadre/internal/simnet"
)

// tinyConfig is a fast-but-meaningful run used across the tests.
func tinyConfig(name string, seed int64) Config {
	return Config{
		Name: name, Seed: seed, Size: 40, K: 5, Staleness: 1,
		Setup: 10 * time.Minute, Stabilize: 20 * time.Minute,
		SnapshotInterval: 10 * time.Minute, SampleFraction: 0.1,
	}
}

func TestRunStableNetworkReachesK(t *testing.T) {
	cfg := tinyConfig("stable", 1)
	cfg.Traffic = true
	cfg.ChurnPhase = 10 * time.Minute // observation only; zero churn
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no snapshots")
	}
	last := res.Points[len(res.Points)-1]
	if last.N != 40 {
		t.Fatalf("final network size %d, want 40", last.N)
	}
	// The paper's central observation: after stabilization the minimum
	// connectivity is roughly k.
	if last.Min < cfg.K-2 {
		t.Fatalf("final min connectivity %d far below k=%d", last.Min, cfg.K)
	}
	if last.Avg < float64(last.Min) {
		t.Fatalf("avg %f below min %d", last.Avg, last.Min)
	}
	if last.Symmetry < 0.3 {
		t.Fatalf("symmetry ratio %f implausibly low", last.Symmetry)
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	run := func() *Result {
		res, err := Run(tinyConfig("det", 42))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.N != pb.N || pa.Edges != pb.Edges || pa.Min != pb.Min || pa.Avg != pb.Avg {
			t.Fatalf("point %d differs: %+v vs %+v", i, pa, pb)
		}
	}
	if a.Network != b.Network {
		t.Fatalf("network stats differ: %+v vs %+v", a.Network, b.Network)
	}
}

func TestRunChurnRemovesAndAdds(t *testing.T) {
	cfg := tinyConfig("churny", 3)
	cfg.Traffic = true
	cfg.Churn = churn.Rate1_1
	cfg.ChurnPhase = 15 * time.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnAdded == 0 || res.ChurnRemoved == 0 {
		t.Fatalf("churn did not run: %d/%d", res.ChurnAdded, res.ChurnRemoved)
	}
	// 1/1 churn keeps the size stable.
	last := res.Points[len(res.Points)-1]
	if last.N < 35 || last.N > 45 {
		t.Fatalf("final size %d drifted under 1/1 churn", last.N)
	}
}

func TestRunDrainChurn(t *testing.T) {
	cfg := tinyConfig("drain", 4)
	cfg.Churn = churn.Rate0_1
	cfg.ChurnPhase = 20 * time.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.N >= first.N {
		t.Fatalf("0/1 churn did not shrink the network: %d -> %d", first.N, last.N)
	}
	if res.ChurnAdded != 0 {
		t.Fatalf("0/1 churn added %d nodes", res.ChurnAdded)
	}
}

func TestRunMessageLossStillConnects(t *testing.T) {
	cfg := tinyConfig("lossy", 5)
	cfg.Traffic = true
	cfg.Loss = simnet.LossMedium
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.Lost == 0 {
		t.Fatal("medium loss dropped no messages")
	}
	last := res.Points[len(res.Points)-1]
	if last.N != 40 {
		t.Fatalf("nodes vanished without churn: %d", last.N)
	}
}

func TestResultSeries(t *testing.T) {
	cfg := tinyConfig("series", 6)
	cfg.ChurnPhase = 10 * time.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, avg, size := res.MinSeries(), res.AvgSeries(), res.SizeSeries()
	if min.Len() != len(res.Points) || avg.Len() != len(res.Points) || size.Len() != len(res.Points) {
		t.Fatal("series lengths mismatch")
	}
	sum := res.ChurnWindowSummary()
	if sum.Count == 0 {
		t.Fatal("churn window summary empty")
	}
	if math.IsNaN(sum.Mean) {
		t.Fatal("summary mean NaN")
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"size too small", func(c *Config) { c.Size = 1 }},
		{"negative churn phase", func(c *Config) { c.ChurnPhase = -time.Minute }},
		{"churn without phase", func(c *Config) { c.Churn = churn.Rate1_1; c.ChurnPhase = 0 }},
		{"bad k", func(c *Config) { c.K = -3 }},
		{"bad bits", func(c *Config) { c.Bits = 33 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := tinyConfig("bad", 1)
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestConfigPhaseArithmetic(t *testing.T) {
	cfg := Config{Size: 10, Setup: 30 * time.Minute, Stabilize: 90 * time.Minute, ChurnPhase: 100 * time.Minute}
	if cfg.ChurnStart() != 120*time.Minute {
		t.Fatalf("ChurnStart = %v, want 120m", cfg.ChurnStart())
	}
	if cfg.Total() != 220*time.Minute {
		t.Fatalf("Total = %v, want 220m", cfg.Total())
	}
}

func TestPaperDefaultPhases(t *testing.T) {
	cfg := Config{Size: 10}.withDefaults()
	if cfg.Setup != 30*time.Minute || cfg.Stabilize != 90*time.Minute {
		t.Fatalf("default phases %v/%v do not match §5.4's 30/90 minutes", cfg.Setup, cfg.Stabilize)
	}
	if cfg.SampleFraction != 0.02 {
		t.Fatalf("default sample fraction %v, want the paper's 0.02", cfg.SampleFraction)
	}
}

func TestScalePresets(t *testing.T) {
	if PaperScale.Small != 250 || PaperScale.Large != 2500 {
		t.Fatal("paper scale sizes wrong")
	}
	for _, s := range []Scale{PaperScale, ReducedScale, TinyScale} {
		exps := s.Experiments(1)
		if len(exps) != 16 {
			t.Fatalf("scale %s has %d experiments, want 16", s.Name, len(exps))
		}
		seen := map[string]bool{}
		for _, e := range exps {
			if seen[e.ID] {
				t.Fatalf("duplicate experiment id %q", e.ID)
			}
			seen[e.ID] = true
			if len(e.Configs) == 0 {
				t.Fatalf("experiment %s has no configs", e.ID)
			}
			for _, cfg := range e.Configs {
				full := cfg.withDefaults()
				if err := full.Validate(); err != nil {
					t.Fatalf("experiment %s config %q invalid: %v", e.ID, cfg.Name, err)
				}
			}
		}
	}
}

func TestExperimentByID(t *testing.T) {
	if _, err := TinyScale.ExperimentByID("figure2", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := TinyScale.ExperimentByID("figure99", 1); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"paper", "reduced", "tiny"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%q) = %v, %v", name, s.Name, err)
		}
	}
	if s, err := ScaleByName(""); err != nil || s.Name != "reduced" {
		t.Error("empty name should default to reduced")
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestKSweepMatchesPaper(t *testing.T) {
	want := []int{5, 10, 20, 30}
	for i, k := range KSweep {
		if k != want[i] {
			t.Fatalf("KSweep = %v, want %v", KSweep, want)
		}
	}
	// Figure experiments must sweep exactly these k values.
	exp := TinyScale.Figure2(1)
	if len(exp.Configs) != 4 {
		t.Fatalf("figure2 has %d configs", len(exp.Configs))
	}
	for i, cfg := range exp.Configs {
		if cfg.K != want[i] {
			t.Fatalf("figure2 config %d has k=%d", i, cfg.K)
		}
	}
}

func TestFigure10Composition(t *testing.T) {
	exp := TinyScale.Figure10(1)
	// 2 sizes x 3 curves x 4 k values.
	if len(exp.Configs) != 24 {
		t.Fatalf("figure10 has %d configs, want 24", len(exp.Configs))
	}
	alpha5 := 0
	for _, cfg := range exp.Configs {
		if cfg.Alpha == 5 {
			alpha5++
			if cfg.Churn != churn.Rate10_10 {
				t.Fatal("alpha=5 runs must use churn 10/10")
			}
		}
	}
	if alpha5 != 8 {
		t.Fatalf("%d alpha=5 configs, want 8", alpha5)
	}
}

func TestSection57Composition(t *testing.T) {
	exp := TinyScale.Section57(1)
	if len(exp.Configs) != 4 {
		t.Fatalf("bitlength experiment has %d configs, want 4", len(exp.Configs))
	}
	bits := map[int]int{}
	for _, cfg := range exp.Configs {
		bits[cfg.Bits]++
	}
	if bits[80] != 2 || bits[160] != 2 {
		t.Fatalf("bit-length split %v, want 2x80 and 2x160", bits)
	}
}

func TestLossSweepComposition(t *testing.T) {
	for _, exp := range []Experiment{TinyScale.Figure12(1), TinyScale.Figure13(1), TinyScale.Figure14(1)} {
		if len(exp.Configs) != 6 {
			t.Fatalf("%s has %d configs, want 6 (3 loss x 2 staleness)", exp.ID, len(exp.Configs))
		}
		for _, cfg := range exp.Configs {
			if cfg.K != 20 {
				t.Fatalf("%s config %q has k=%d, want 20", exp.ID, cfg.Name, cfg.K)
			}
			if cfg.Loss == simnet.LossNone {
				t.Fatalf("%s config %q has no loss", exp.ID, cfg.Name)
			}
		}
	}
	// Figure 12 (Sim J) must have no churn but a full observation phase.
	for _, cfg := range TinyScale.Figure12(1).Configs {
		if !cfg.Churn.IsZero() {
			t.Fatal("Sim J must have no churn")
		}
		if cfg.ChurnPhase == 0 {
			t.Fatal("Sim J still needs the long observation phase")
		}
	}
}
