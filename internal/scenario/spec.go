package scenario

import (
	"fmt"

	"kadre/internal/attack"
	"kadre/internal/churn"
	"kadre/internal/simnet"
	"kadre/internal/traffic"
	"kadre/internal/workload"
)

// FromSpec resolves a scenario spec file into a runnable experiment,
// exactly as the compiled-in presets resolve: unset run fields take the
// scale's values (the spec's own scale pins one; otherwise the caller's
// applies), seeds are baseSeed plus each run's explicit offset, and the
// attack defaults mirror the preset adversary (budget half the network,
// spread over the strikes that fit the window, snapshots on the strike
// cadence). A committed spec of a preset therefore yields byte-identical
// configs — and so byte-identical sweep artefacts — to the compiled-in
// experiment it mirrors. Every resolved config carries the spec's digest
// so checkpoint resume can refuse results from an edited spec.
func FromSpec(sp *workload.Spec, scale Scale, baseSeed int64) (Experiment, error) {
	if sp.Scale != "" {
		var err error
		scale, err = ScaleByName(sp.Scale)
		if err != nil {
			return Experiment{}, err
		}
	}
	exp := Experiment{ID: sp.ID, Title: sp.Title}
	digest := sp.Digest()
	for i := range sp.Runs {
		run := workload.Merge(sp.Defaults, sp.Runs[i])
		cfg, err := resolveRun(run, scale, baseSeed)
		if err != nil {
			return Experiment{}, fmt.Errorf("scenario: spec %q run %q: %w", sp.ID, run.Name, err)
		}
		cfg.SpecDigest = digest
		if err := cfg.WithDefaults().Validate(); err != nil {
			return Experiment{}, fmt.Errorf("scenario: spec %q run %q: %w", sp.ID, run.Name, err)
		}
		exp.Configs = append(exp.Configs, cfg)
	}
	return exp, nil
}

// resolveRun maps one merged run spec onto a Config the same way the
// preset constructors do.
func resolveRun(run workload.RunSpec, scale Scale, baseSeed int64) (Config, error) {
	seed := baseSeed
	if run.SeedOffset != nil {
		seed += *run.SeedOffset
	}
	size := scale.Small
	if run.Size != nil {
		size = *run.Size
	}
	cfg := scale.base(run.Name, seed, size)

	if run.K != nil {
		cfg.K = *run.K
	}
	if run.Alpha != nil {
		cfg.Alpha = *run.Alpha
	}
	if run.Bits != nil {
		cfg.Bits = *run.Bits
	}
	if run.Staleness != nil {
		cfg.Staleness = *run.Staleness
	}
	if run.Loss != nil {
		loss, err := simnet.ParseLossLevel(*run.Loss)
		if err != nil {
			return Config{}, err
		}
		cfg.Loss = loss
	}
	if run.Churn != nil {
		rate, err := churn.ParseRate(*run.Churn)
		if err != nil {
			return Config{}, err
		}
		cfg.Churn = rate
	}

	if run.Traffic != nil {
		cfg.Traffic = *run.Traffic
	}
	// Pointer semantics map onto the workload sentinel: unset leaves the
	// paper default, explicit 0 disables the rate.
	if run.LookupsPerMinute != nil {
		cfg.Workload.LookupsPerMinute = rateOrDisabled(*run.LookupsPerMinute)
	}
	if run.StoresPerMinute != nil {
		cfg.Workload.StoresPerMinute = rateOrDisabled(*run.StoresPerMinute)
	}
	if run.KeyPool != nil {
		cfg.Workload.KeyPoolSize = *run.KeyPool
	}

	if run.SetupMinutes != nil {
		cfg.Setup = workload.Minutes(*run.SetupMinutes)
	}
	if run.StabilizeMinutes != nil {
		cfg.Stabilize = workload.Minutes(*run.StabilizeMinutes)
	}
	if run.SnapshotMinutes != nil {
		cfg.SnapshotInterval = workload.Minutes(*run.SnapshotMinutes)
	}
	if run.SampleFraction != nil {
		cfg.SampleFraction = *run.SampleFraction
	}

	cfg.Gen = run.Generators()

	// The churn window: explicit length, the Sim A-D drain rule, or —
	// whenever churn, an adversary, or generative arrivals need one — the
	// scale's long phase.
	switch {
	case run.ChurnMinutes != nil:
		cfg.ChurnPhase = workload.Minutes(*run.ChurnMinutes)
	case run.DrainChurn != nil && *run.DrainChurn:
		cfg.ChurnPhase = scale.drainChurn(size)
	case !cfg.Churn.IsZero() || run.Attack != nil || cfg.Gen.Arrivals != nil:
		cfg.ChurnPhase = scale.ChurnLong
	}

	if run.Attack != nil {
		strategy, err := attack.ParseStrategy(run.Attack.Strategy)
		if err != nil {
			return Config{}, err
		}
		_, interval := scale.AttackPhase()
		if run.Attack.IntervalMinutes > 0 {
			interval = workload.Minutes(run.Attack.IntervalMinutes)
		}
		budget := AttackBudget(size)
		if run.Attack.Budget != nil {
			budget = *run.Attack.Budget
		}
		kills := AttackKills(budget, cfg.ChurnPhase, interval)
		if run.Attack.Kills != nil {
			kills = *run.Attack.Kills
		}
		cfg.Attack = attack.Config{
			Strategy: strategy, Budget: budget, Kills: kills, Interval: interval,
		}
		// The preset adversary measures between strikes: unless the spec
		// pins a cadence, snapshots land on the strike interval.
		if run.SnapshotMinutes == nil {
			cfg.SnapshotInterval = interval
		}
	}

	return cfg, nil
}

// rateOrDisabled maps a spec's explicit rate onto the traffic sentinel
// convention (explicit 0 means off, not "take the default").
func rateOrDisabled(rate int) int {
	if rate == 0 {
		return traffic.Disabled
	}
	return rate
}
