// Package serve is the long-running resilience-query service behind
// cmd/kadserve: a shared engine arena that keeps finished simulations'
// analysis state warm across queries, adaptive-precision replication on
// top of internal/sweep, and an HTTP API that streams per-replication
// progress while a query decides.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"kadre/internal/connectivity"
	"kadre/internal/scenario"
	"kadre/internal/sweep"
)

// isCancellation reports whether err stems from a context ending —
// client disconnect (Canceled) or deadline (DeadlineExceeded) — as
// opposed to a simulation genuinely failing.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Arena is a keyed pool of warm engine bindings shared by every query
// the server handles. A simulation run is a pure function of its
// effective configuration and seed, so its Result — and the engine still
// bound to its final topology — can be reused verbatim whenever any
// query replicates the same configuration. Entries are evicted in LRU
// order once their estimated footprint exceeds the memory budget;
// evicted entries remain valid for queries already holding them (the
// collector reclaims the state once the last holder drops it).
//
// Get is safe for concurrent use and singleflights cold builds: when two
// queries race on the same key, one simulation runs and both receive the
// entry. Entry engine access is serialized per entry (see Entry.mu) —
// the connectivity engine itself is not concurrency-safe.
type Arena struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	entries   map[string]*list.Element // key -> element whose Value is *Entry
	lru       *list.List               // front = most recently used
	inflight  map[string]*inflightRun
	runner    func(context.Context, scenario.Config) (*scenario.Result, *scenario.Bound, error)
	hits      int64
	misses    int64
	builds    int64
	evictions int64
}

// ArenaOptions configures NewArena.
type ArenaOptions struct {
	// BudgetBytes bounds the summed estimated footprint of resident
	// entries; <= 0 means 256 MiB. A single entry larger than the budget
	// is still admitted (and evicts everything else).
	BudgetBytes int64
	// Runner executes one simulation and hands back its warm binding,
	// abandoning the run once ctx is done. Nil means scenario.RunBoundCtx;
	// tests inject fabricated runs.
	Runner func(context.Context, scenario.Config) (*scenario.Result, *scenario.Bound, error)
}

// DefaultArenaBudget is the resident-footprint bound when none is given.
const DefaultArenaBudget = 256 << 20

// NewArena creates an empty arena.
func NewArena(opts ArenaOptions) *Arena {
	budget := opts.BudgetBytes
	if budget <= 0 {
		budget = DefaultArenaBudget
	}
	runner := opts.Runner
	if runner == nil {
		runner = scenario.RunBoundCtx
	}
	return &Arena{
		budget:   budget,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*inflightRun),
		runner:   runner,
	}
}

type inflightRun struct {
	done chan struct{}
	e    *Entry
	err  error
}

// Entry is one warm simulation: the run's Result plus the engine still
// bound to the final snapshot's topology.
type Entry struct {
	key  string
	cfg  scenario.Config // effective (defaulted) configuration, seed included
	res  *scenario.Result
	bind *scenario.Bound
	size int64

	// mu serializes engine access: AnalyzeFinal re-sweeps and Maintain
	// re-densifies on the same non-concurrency-safe engine.
	mu        sync.Mutex
	resamples map[resampleKey]connectivity.SnapshotResult
}

type resampleKey struct {
	frac float64
	seed int64
}

// Result returns the entry's (shared, read-only) simulation result.
func (e *Entry) Result() *scenario.Result { return e.res }

// Config returns the effective configuration the entry ran.
func (e *Entry) Config() scenario.Config { return e.cfg }

// AnalyzeFinal re-analyzes the entry's final captured topology on the
// warm engine with a caller-chosen sampling fraction and Avg-sweep seed
// — the query-time "resample" that never re-pays the simulation. frac 0
// means the run's own SampleFraction; seed 0 means the final point's
// own AvgSeed (reproducing its Min/Avg exactly). Answers are memoized
// per (frac, seed) under the entry lock.
func (e *Entry) AnalyzeFinal(frac float64, seed int64) (connectivity.SnapshotResult, error) {
	if !e.bind.Ready() {
		return connectivity.SnapshotResult{}, fmt.Errorf("serve: run %q left no analyzable topology", e.cfg.Name)
	}
	if frac == 0 {
		frac = e.cfg.SampleFraction
	}
	if seed == 0 {
		seed = e.bind.FinalAvgSeed
	}
	k := resampleKey{frac: frac, seed: seed}
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.resamples[k]; ok {
		return r, nil
	}
	r := e.bind.Engine.AnalyzeSnapshot(connectivity.SnapshotQuery{
		SampleFraction: frac,
		AvgSeed:        seed,
	})
	if e.resamples == nil {
		e.resamples = make(map[resampleKey]connectivity.SnapshotResult)
	}
	e.resamples[k] = r
	return r, nil
}

// FinalN returns the live size of the final analyzed snapshot (0 when
// the run ended with at most one live node).
func (e *Entry) FinalN() int {
	if !e.bind.Ready() {
		return 0
	}
	return e.bind.Final.N()
}

// memory reports the entry engine's current arc-store footprint.
func (e *Entry) memory() connectivity.MemoryStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bind.Engine.MemoryStats()
}

// maintain runs policy-driven engine maintenance off the request path.
func (e *Entry) maintain() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bind.Engine.Maintain()
}

// Key derives the arena identity of a configuration: the sweep
// fingerprint (every field that shapes measurements) plus the effective
// seed. Name, Workers and Governance are deliberately absent — renaming
// a query or changing the server's maintenance policy must not duplicate
// warm state.
func Key(cfg scenario.Config) string {
	eff := cfg.WithDefaults()
	return fmt.Sprintf("%s|seed=%d", sweep.Fingerprint(eff), eff.Seed)
}

// Get returns the warm entry for cfg, building it with one simulation
// run on a miss; ctx cancels the caller's wait and its own build (the
// event kernel polls it at batch boundaries). The second return reports
// whether the entry was served warm — from residency or by joining
// another caller's in-flight build — i.e. without paying a simulation of
// its own.
//
// Cancellation never poisons the arena: an entry is created only when a
// build completes, so an abandoned run leaves no trace, and a joiner
// whose builder was canceled out from under it (while the joiner's own
// ctx is still live) retries and becomes the builder itself rather than
// inheriting the dead caller's error.
func (a *Arena) Get(ctx context.Context, cfg scenario.Config) (*Entry, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := Key(cfg)
	for {
		a.mu.Lock()
		if el, ok := a.entries[key]; ok {
			a.lru.MoveToFront(el)
			a.hits++
			a.mu.Unlock()
			return el.Value.(*Entry), true, nil
		}
		if call, ok := a.inflight[key]; ok {
			a.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if call.err != nil {
				if isCancellation(call.err) && ctx.Err() == nil {
					// The builder's query went away, not ours: try again
					// (and likely become the builder this round).
					continue
				}
				return nil, false, call.err
			}
			a.mu.Lock()
			a.hits++
			a.mu.Unlock()
			return call.e, true, nil
		}
		call := &inflightRun{done: make(chan struct{})}
		a.inflight[key] = call
		a.misses++
		a.mu.Unlock()

		res, bind, err := a.runner(ctx, cfg)
		var entry *Entry
		if err == nil {
			entry = &Entry{
				key: key, cfg: cfg.WithDefaults(), res: res, bind: bind,
				size: estimateSize(res, bind),
			}
		}

		a.mu.Lock()
		delete(a.inflight, key)
		if err == nil {
			a.builds++
			el := a.lru.PushFront(entry)
			a.entries[key] = el
			a.used += entry.size
			a.evictOver(el)
		}
		a.mu.Unlock()

		call.e, call.err = entry, err
		close(call.done)
		if err != nil {
			return nil, false, err
		}
		return entry, false, nil
	}
}

// evictOver drops least-recently-used entries until the footprint fits
// the budget, never evicting keep (the entry just inserted). Caller
// holds a.mu.
func (a *Arena) evictOver(keep *list.Element) {
	for a.used > a.budget && a.lru.Len() > 1 {
		el := a.lru.Back()
		if el == keep {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		e := el.Value.(*Entry)
		a.lru.Remove(el)
		delete(a.entries, e.key)
		a.used -= e.size
		a.evictions++
	}
}

// Maintain runs the governance maintenance of every resident entry's
// engine — re-densifying over-threshold arc stores — and returns the
// number of stores rebuilt. kadserve calls it on a timer, off the
// request path, so queries never pay compaction latency.
func (a *Arena) Maintain() int {
	a.mu.Lock()
	entries := make([]*Entry, 0, a.lru.Len())
	for el := a.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*Entry))
	}
	a.mu.Unlock()
	total := 0
	for _, e := range entries {
		total += e.maintain()
	}
	return total
}

// ArenaStats is a point-in-time occupancy report (GET /v1/arena).
type ArenaStats struct {
	Entries     int          `json:"entries"`
	BudgetBytes int64        `json:"budget_bytes"`
	UsedBytes   int64        `json:"used_bytes"`
	Hits        int64        `json:"hits"`
	Misses      int64        `json:"misses"`
	Builds      int64        `json:"builds"`
	Evictions   int64        `json:"evictions"`
	// Sched is the admission-queue breakdown; the server fills it in (the
	// arena itself has no scheduler).
	Sched *SchedStats  `json:"sched,omitempty"`
	Runs  []EntryStats `json:"runs,omitempty"`
}

// EntryStats describes one resident entry, most recently used first.
type EntryStats struct {
	Name      string                   `json:"name"`
	Seed      int64                    `json:"seed"`
	Size      int                      `json:"size"`
	FinalN    int                      `json:"final_n"`
	SizeBytes int64                    `json:"size_bytes"`
	Memory    connectivity.MemoryStats `json:"memory"`
}

// Stats snapshots the arena's occupancy and counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	st := ArenaStats{
		Entries: a.lru.Len(), BudgetBytes: a.budget, UsedBytes: a.used,
		Hits: a.hits, Misses: a.misses, Builds: a.builds, Evictions: a.evictions,
	}
	entries := make([]*Entry, 0, a.lru.Len())
	for el := a.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*Entry))
	}
	a.mu.Unlock()
	for _, e := range entries {
		st.Runs = append(st.Runs, EntryStats{
			Name: e.cfg.Name, Seed: e.cfg.Seed, Size: e.cfg.Size,
			FinalN: e.FinalN(), SizeBytes: e.size, Memory: e.memory(),
		})
	}
	return st
}

// Builds returns how many cold simulation builds the arena has paid —
// the counter the warm-repeat tests pin to zero growth.
func (a *Arena) Builds() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.builds
}

// estimateSize approximates an entry's resident footprint: the engine's
// primary arc stores, the slot table, the captured final graph, and the
// measurement series. Estimates only steer LRU eviction, so rough
// constants per element are enough.
func estimateSize(res *scenario.Result, b *scenario.Bound) int64 {
	size := int64(64 << 10) // fixed engine/solver overhead
	if b != nil {
		if b.Engine != nil {
			ms := b.Engine.MemoryStats()
			size += int64(ms.Arcs) * 48
		}
		if b.Slots != nil {
			size += int64(b.Slots.Len()) * 64
		}
		if b.Ready() {
			size += int64(b.Final.Graph.M()) * 16
		}
	}
	if res != nil {
		size += int64(len(res.Points)) * 96
		size += int64(len(res.Victims)) * 48
	}
	return size
}
