package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kadre/internal/connectivity"
	"kadre/internal/scenario"
	"kadre/internal/snapshot"
)

// stubRunner fabricates a run without simulating: a one-point Result and
// a Bound around a fresh (unbound) engine. calls counts cold builds.
func stubRunner(calls *atomic.Int64) func(context.Context, scenario.Config) (*scenario.Result, *scenario.Bound, error) {
	return func(_ context.Context, cfg scenario.Config) (*scenario.Result, *scenario.Bound, error) {
		calls.Add(1)
		eng, err := connectivity.NewEngine(connectivity.EngineOptions{Workers: 1})
		if err != nil {
			return nil, nil, err
		}
		res := &scenario.Result{Config: cfg.WithDefaults()}
		res.Points = append(res.Points, scenario.SnapshotStat{
			Time: time.Minute, N: cfg.Size, Min: 3, Avg: 4.5,
		})
		return res, &scenario.Bound{Engine: eng, Slots: &snapshot.SlotIndex{}}, nil
	}
}

func arenaCfg(name string, seed int64) scenario.Config {
	return scenario.Config{
		Name: name, Seed: seed, Size: 20, K: 5, Staleness: 1,
		Setup: 6 * time.Minute, Stabilize: 12 * time.Minute,
		SnapshotInterval: 6 * time.Minute, SampleFraction: 0.1,
	}
}

func TestArenaWarmHit(t *testing.T) {
	var calls atomic.Int64
	a := NewArena(ArenaOptions{Runner: stubRunner(&calls)})
	e1, warm, err := a.Get(context.Background(), arenaCfg("a", 1))
	if err != nil || warm {
		t.Fatalf("cold Get: warm=%v err=%v", warm, err)
	}
	// Same effective config under a different name must hit: Name is not
	// part of the arena key.
	e2, warm, err := a.Get(context.Background(), arenaCfg("b", 1))
	if err != nil || !warm {
		t.Fatalf("warm Get: warm=%v err=%v", warm, err)
	}
	if e1 != e2 {
		t.Fatal("warm Get returned a different entry")
	}
	if calls.Load() != 1 || a.Builds() != 1 {
		t.Fatalf("runner calls=%d builds=%d, want 1/1", calls.Load(), a.Builds())
	}
	if _, warm, _ := a.Get(context.Background(), arenaCfg("a", 2)); warm {
		t.Fatal("different seed must miss")
	}
	st := a.Stats()
	if st.Entries != 2 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 entries, 1 hit, 2 misses", st)
	}
}

func TestArenaSingleflight(t *testing.T) {
	var calls atomic.Int64
	slow := func(ctx context.Context, cfg scenario.Config) (*scenario.Result, *scenario.Bound, error) {
		time.Sleep(20 * time.Millisecond) // widen the race window
		return stubRunner(&calls)(ctx, cfg)
	}
	a := NewArena(ArenaOptions{Runner: slow})
	const racers = 8
	entries := make([]*Entry, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := a.Get(context.Background(), arenaCfg("race", 7))
			if err != nil {
				t.Error(err)
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("racing Gets paid %d builds, want 1", calls.Load())
	}
	for i := 1; i < racers; i++ {
		if entries[i] != entries[0] {
			t.Fatal("racing Gets received different entries")
		}
	}
}

func TestArenaLRUEviction(t *testing.T) {
	var calls atomic.Int64
	// Each stub entry estimates to ~64 KiB; budget two entries' worth.
	a := NewArena(ArenaOptions{BudgetBytes: 140 << 10, Runner: stubRunner(&calls)})
	for seed := int64(1); seed <= 3; seed++ {
		if _, _, err := a.Get(context.Background(), arenaCfg("e", seed)); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries after 1 eviction", st)
	}
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("used %d exceeds budget %d after eviction", st.UsedBytes, st.BudgetBytes)
	}
	// Seed 1 was least recently used: it must have been the victim.
	if _, warm, _ := a.Get(context.Background(), arenaCfg("e", 2)); !warm {
		t.Fatal("seed 2 should have survived")
	}
	if _, warm, _ := a.Get(context.Background(), arenaCfg("e", 1)); warm {
		t.Fatal("seed 1 should have been evicted")
	}
}

func TestArenaNeverEvictsJustInserted(t *testing.T) {
	var calls atomic.Int64
	// Budget below a single entry's estimate: the entry stays resident
	// anyway (an arena with nothing warm serves no one).
	a := NewArena(ArenaOptions{BudgetBytes: 1024, Runner: stubRunner(&calls)})
	if _, _, err := a.Get(context.Background(), arenaCfg("big", 1)); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want the over-budget entry resident", st.Entries)
	}
	if _, warm, _ := a.Get(context.Background(), arenaCfg("big", 1)); !warm {
		t.Fatal("over-budget entry must still serve warm hits")
	}
	// A second entry displaces the first: exactly one stays.
	if _, _, err := a.Get(context.Background(), arenaCfg("big", 2)); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 entry after displacing eviction", a.Stats())
	}
}

func TestArenaBuildErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	fail := true
	runner := func(ctx context.Context, cfg scenario.Config) (*scenario.Result, *scenario.Bound, error) {
		if fail {
			calls.Add(1)
			return nil, nil, fmt.Errorf("boom")
		}
		return stubRunner(&calls)(ctx, cfg)
	}
	a := NewArena(ArenaOptions{Runner: runner})
	if _, _, err := a.Get(context.Background(), arenaCfg("f", 1)); err == nil {
		t.Fatal("build error must propagate")
	}
	fail = false
	if _, warm, err := a.Get(context.Background(), arenaCfg("f", 1)); err != nil || warm {
		t.Fatalf("retry after failure: warm=%v err=%v, want cold success", warm, err)
	}
	if a.Builds() != 1 {
		t.Fatalf("builds = %d, want 1 (failures don't count)", a.Builds())
	}
}

func TestArenaRealRunBound(t *testing.T) {
	// The default runner is the real scenario.RunBoundCtx: a warm entry's
	// engine can re-analyze the final topology at query time, and its
	// memoized resample matches the final measured point exactly.
	a := NewArena(ArenaOptions{})
	cfg := arenaCfg("real", 9)
	cfg.Churn.Add, cfg.Churn.Remove = 1, 1
	cfg.ChurnPhase = 12 * time.Minute
	e, _, err := a.Get(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := e.Result().Points[len(e.Result().Points)-1]
	sr, err := e.AnalyzeFinal(0, 0) // the run's own sampling and seed
	if err != nil {
		t.Fatal(err)
	}
	if sr.Min.Min != last.Min {
		t.Fatalf("resampled min %d != final point %d", sr.Min.Min, last.Min)
	}
	avg := sr.Avg.Avg
	if sr.Avg.Pairs == 0 {
		avg = float64(e.FinalN() - 1)
	}
	if avg != last.Avg {
		t.Fatalf("resampled avg %v != final point %v", avg, last.Avg)
	}
	if a.Maintain() != 0 {
		// A tiny run leaves nothing over-threshold; the call itself must
		// be safe on warm entries.
		t.Fatal("unexpected maintenance on a fresh tiny entry")
	}
}
