package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kadre/internal/scenario"
)

// undecidableSpec never decides (unreachable threshold, fresh seed), so
// it replicates to max_reps — plenty of stream to cancel into. The
// scenario is sized so one rep takes a few hundred milliseconds: a
// client disconnect after the first rep record must land while the
// server is still mid-run, on fast machines too.
const undecidableSpec = `{
  "scenario": {
    "scale": "tiny", "size": 64, "k": 5, "staleness": 1,
    "churn": "2/2", "churn_minutes": 48,
    "setup_minutes": 6, "stabilize_minutes": 12, "snapshot_minutes": 6,
    "sample_fraction": 0.5, "seed": 11
  },
  "metric": "churn_min_mean",
  "threshold": 1000,
  "min_reps": 6, "max_reps": 8
}`

// waitSchedDrained polls until the admission queue shows no running
// query and no held slot — the "cancellation released its slot" check.
func waitSchedDrained(t *testing.T, s *Server) SchedStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Sched().Stats()
		if st.Running == 0 && st.Queued == 0 && st.InUse == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission queue never drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQueryClientDisconnectReleasesSlotAndKeepsArenaWarm(t *testing.T) {
	srv := NewServer(Options{Jobs: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Stream the undecidable query and walk away after the first rep
	// record: the request context fires, the kernel stops mid-run, and
	// the partially-run rep is discarded.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/query", strings.NewReader(undecidableSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	var first map[string]any
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first record %q: %v", sc.Text(), err)
	}
	if first["type"] != "rep" || first["rep"] != float64(0) {
		t.Fatalf("first record = %v", first)
	}
	cancel()
	resp.Body.Close()

	st := waitSchedDrained(t, srv)
	if st.Canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1", st.Canceled)
	}

	// The completed rep parked its entry before the disconnect: an
	// identical query must answer its first rep from the warm arena.
	resp2, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(undecidableSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	if !sc2.Scan() {
		t.Fatalf("no record on warm follow-up: %v", sc2.Err())
	}
	var wfirst map[string]any
	if err := json.Unmarshal(sc2.Bytes(), &wfirst); err != nil {
		t.Fatal(err)
	}
	if wfirst["cached"] != true {
		t.Fatalf("follow-up rep 0 not served warm: %v", wfirst)
	}
	last := wfirst
	for sc2.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc2.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		last = m
	}
	if last["type"] != "result" {
		t.Fatalf("follow-up did not complete: %v", last)
	}
	if hits, _ := last["arena_hits"].(float64); hits < 1 {
		t.Fatalf("follow-up arena_hits = %v, want >= 1", last["arena_hits"])
	}
	if st := waitSchedDrained(t, srv); st.Canceled != 1 {
		t.Fatalf("completed follow-up flagged canceled: %+v", st)
	}
}

func TestQueryDeadline504(t *testing.T) {
	srv := NewServer(Options{Jobs: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// stream:false keeps the status line ours until the end, so the
	// 1 ms deadline — which fires mid-first-rep, long before a record —
	// must surface as a real 504, not an error record under a 200.
	spec := strings.Replace(undecidableSpec, `"min_reps": 6`, `"deadline_ms": 1, "stream": false, "min_reps": 6`, 1)
	resp, body := postQuery(t, ts, spec, "")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	recs := records(t, body)
	if recs[0]["type"] != "error" || !strings.Contains(recs[0]["error"].(string), "deadline") {
		t.Fatalf("error record = %v", recs[0])
	}
	if st := waitSchedDrained(t, srv); st.Canceled != 1 {
		t.Fatalf("deadline not counted canceled: %+v", st)
	}
}

func TestQueryDefaultDeadline(t *testing.T) {
	srv := NewServer(Options{Jobs: 2, DefaultDeadline: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := strings.Replace(undecidableSpec, `"min_reps": 6`, `"stream": false, "min_reps": 6`, 1)
	resp, body := postQuery(t, ts, spec, "")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 from the server default deadline: %s", resp.StatusCode, body)
	}
}

func TestQueryRunFailure500(t *testing.T) {
	// A genuine (non-cancellation) failure before any streamed record
	// answers 500 — previously an error record under an implicit 200.
	a := NewArena(ArenaOptions{Runner: failRunner("engine exploded")})
	srv := NewServer(Options{Arena: a, Jobs: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postQuery(t, ts, undecidableSpec, "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	recs := records(t, body)
	if recs[0]["type"] != "error" || !strings.Contains(recs[0]["error"].(string), "engine exploded") {
		t.Fatalf("error record = %v", recs[0])
	}
	if st := waitSchedDrained(t, srv); st.Canceled != 0 {
		t.Fatalf("genuine failure counted as canceled: %+v", st)
	}
}

// TestQueryConcurrencyLimitBounds pins the admission queue to its job:
// with -max-concurrent-sims 1, a query's four parallel workers execute
// their simulations strictly one at a time.
func TestQueryConcurrencyLimitBounds(t *testing.T) {
	var cur, max, calls atomic.Int64
	gauge := stubRunner(&calls)
	a := NewArena(ArenaOptions{Runner: func(ctx context.Context, cfg scenario.Config) (*scenario.Result, *scenario.Bound, error) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		defer cur.Add(-1)
		return gauge(ctx, cfg)
	}})
	srv := NewServer(Options{Arena: a, Jobs: 4, MaxConcurrentSims: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{
	  "scenario": {"scale": "tiny", "size": 20, "k": 5, "staleness": 1,
	    "setup_minutes": 6, "stabilize_minutes": 12, "snapshot_minutes": 6,
	    "sample_fraction": 0.1, "seed": 21},
	  "metric": "final_min", "threshold": 1000,
	  "min_reps": 4, "max_reps": 4
	}`
	resp, body := postQuery(t, ts, spec, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if calls.Load() != 4 {
		t.Fatalf("stub built %d reps, want 4", calls.Load())
	}
	if got := max.Load(); got > 1 {
		t.Fatalf("%d simulations ran concurrently under a limit of 1", got)
	}
	if st := srv.Sched().Stats(); st.MaxConcurrentSims != 1 {
		t.Fatalf("sched stats = %+v", st)
	}
}

// TestQueryDeterministicAcrossConcurrencyLimits: the admission queue
// delays work but never changes bytes — cold bodies are identical under
// a strangling limit and an unlimited queue.
func TestQueryDeterministicAcrossConcurrencyLimits(t *testing.T) {
	run := func(limit int) string {
		srv := NewServer(Options{Jobs: 4, MaxConcurrentSims: limit})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		_, body := postQuery(t, ts, querySpec, "")
		return body
	}
	if b1, bU := run(1), run(-1); b1 != bU {
		t.Fatalf("cold bodies differ across concurrency limits:\n%s\n%s", b1, bU)
	}
}

// TestArenaEndpointReportsSched: the /v1/arena payload carries the
// admission-queue breakdown.
func TestArenaEndpointReportsSched(t *testing.T) {
	srv := NewServer(Options{Jobs: 2, MaxConcurrentSims: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/arena")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ArenaStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sched == nil || st.Sched.MaxConcurrentSims != 3 {
		t.Fatalf("arena stats sched = %+v", st.Sched)
	}
}

// failRunner builds nothing, ever.
func failRunner(msg string) func(context.Context, scenario.Config) (*scenario.Result, *scenario.Bound, error) {
	return func(context.Context, scenario.Config) (*scenario.Result, *scenario.Bound, error) {
		return nil, nil, fmt.Errorf("%s", msg)
	}
}
