package serve

import (
	"fmt"
	"hash/fnv"
	"time"

	"kadre/internal/attack"
	"kadre/internal/churn"
	"kadre/internal/scenario"
	"kadre/internal/simnet"
	"kadre/internal/sweep"
	"kadre/internal/workload"
)

// ScenarioSpec is the wire form of a simulation configuration. Omitted
// fields take the named scale's values (or the paper defaults), exactly
// as on the batch CLIs; durations are simulated minutes.
type ScenarioSpec struct {
	Scale            string  `json:"scale,omitempty"` // paper, reduced (default), tiny
	Size             int     `json:"size,omitempty"`
	K                int     `json:"k,omitempty"`
	Alpha            int     `json:"alpha,omitempty"`
	Bits             int     `json:"bits,omitempty"`
	Staleness        int     `json:"staleness,omitempty"`
	Loss             string  `json:"loss,omitempty"`  // none, low, med, high
	Churn            string  `json:"churn,omitempty"` // "add/remove" per minute
	ChurnMinutes     float64 `json:"churn_minutes,omitempty"`
	Traffic          bool    `json:"traffic,omitempty"`
	SetupMinutes     float64 `json:"setup_minutes,omitempty"`
	StabilizeMinutes float64 `json:"stabilize_minutes,omitempty"`
	SnapshotMinutes  float64 `json:"snapshot_minutes,omitempty"`
	SampleFraction   float64 `json:"sample_fraction,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
}

// AttackSpec is the wire form of an adversary riding the churn window.
type AttackSpec struct {
	Strategy        string  `json:"strategy"` // random, degree, cutset, eclipse
	Budget          int     `json:"budget,omitempty"`
	Kills           int     `json:"kills,omitempty"`
	IntervalMinutes float64 `json:"interval_minutes,omitempty"`
}

// ResampleSpec re-analyzes the final captured topology on the warm
// engine with a different connectivity sampling, without re-simulating.
// Only meaningful for the final_min / final_avg metrics.
type ResampleSpec struct {
	Fraction float64 `json:"fraction,omitempty"` // 0: the run's own c
	Seed     int64   `json:"seed,omitempty"`     // 0: the final point's own Avg seed
}

// QuerySpec is the body of POST /v1/query: a scenario, a target metric,
// and a stopping rule — exactly one of threshold or precision.
type QuerySpec struct {
	Scenario ScenarioSpec `json:"scenario"`
	// Spec embeds a full scenario spec document — the same format the
	// batch CLIs load via -scenario — which must resolve to exactly one
	// run. It is mutually exclusive with the scenario block except for
	// scenario.scale (the fallback scale when the spec pins none) and
	// scenario.seed (the base seed the run's seed_offset adds to), and
	// with the attack block (put the attack in the spec). Traces must
	// inline their events: server-side file paths are not addressable
	// from the wire.
	Spec   *workload.Spec `json:"spec,omitempty"`
	Attack *AttackSpec    `json:"attack,omitempty"`
	Metric   string        `json:"metric,omitempty"` // default churn_min_mean
	Resample *ResampleSpec `json:"resample,omitempty"`
	// Threshold asks "does metric stay >= threshold?": replication stops
	// once the 95% CI excludes it, verdict pass or fail.
	Threshold *float64 `json:"threshold,omitempty"`
	// Precision asks for the metric's value: replication stops once the
	// 95% CI half-width is at most precision * |mean|, verdict resolved.
	Precision *float64 `json:"precision,omitempty"`
	MinReps   int      `json:"min_reps,omitempty"` // default 3
	MaxReps   int      `json:"max_reps,omitempty"` // default 8, cap 256
	// DeadlineMS bounds the query's wall-clock budget in milliseconds; 0
	// takes the server's default deadline. A query past its deadline stops
	// within one event batch and answers 504 (or an error record when the
	// stream already started).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Stream false suppresses per-rep records; the response is the final
	// record alone. Default true.
	Stream *bool `json:"stream,omitempty"`
}

// Metric names. final_* metrics read the run's last snapshot point;
// churn_min_mean is the Table 2 quantity (mean min-connectivity over the
// churn window).
const (
	MetricChurnMinMean = "churn_min_mean"
	MetricFinalMin     = "final_min"
	MetricFinalAvg     = "final_avg"
	MetricFinalSCC     = "final_scc"
	MetricFinalN       = "final_n"
)

// MetricNames lists every queryable metric.
func MetricNames() []string {
	return []string{MetricChurnMinMean, MetricFinalMin, MetricFinalAvg, MetricFinalSCC, MetricFinalN}
}

// metricFromResult extracts a plain (non-resampled) metric. Resolve
// validated the metric name and rejected configurations that snapshot
// past the run's end, but a defensive error beats a panic taking the
// whole server down if either invariant ever slips.
func metricFromResult(name string, r *scenario.Result) (float64, error) {
	if len(r.Points) == 0 {
		return 0, fmt.Errorf("serve: run %q captured no snapshot points", r.Config.Name)
	}
	last := r.Points[len(r.Points)-1]
	switch name {
	case MetricChurnMinMean:
		return r.ChurnWindowSummary().Mean, nil
	case MetricFinalMin:
		return float64(last.Min), nil
	case MetricFinalAvg:
		return last.Avg, nil
	case MetricFinalSCC:
		return last.SCC, nil
	case MetricFinalN:
		return float64(last.N), nil
	}
	return 0, fmt.Errorf("serve: unknown metric %q", name)
}

// Query is a resolved, runnable QuerySpec.
type Query struct {
	Config   scenario.Config
	Rule     sweep.StopRule
	Metric   string
	Resample *ResampleSpec
	MinReps  int
	MaxReps  int
	Deadline time.Duration // 0: the server's default
	Stream   bool
}

// maxRepsCap bounds a single query's replication budget.
const maxRepsCap = 256

// minutes converts a spec duration, with a fallback for the zero value.
func minutes(m float64, def time.Duration) time.Duration {
	if m <= 0 {
		return def
	}
	return time.Duration(m * float64(time.Minute))
}

// Resolve validates the spec and binds it to a scenario configuration.
// The config's name is derived from its arena key, so identical specs —
// however spelled — resolve to the same run identity.
func (qs QuerySpec) Resolve() (Query, error) {
	var cfg scenario.Config
	var err error
	if qs.Spec != nil {
		cfg, err = qs.resolveEmbeddedSpec()
	} else {
		cfg, err = qs.resolveScenario()
	}
	if err != nil {
		return Query{}, err
	}
	return qs.finish(cfg)
}

// resolveEmbeddedSpec binds an embedded scenario spec document to the
// single config it must resolve to.
func (qs QuerySpec) resolveEmbeddedSpec() (scenario.Config, error) {
	if qs.Attack != nil {
		return scenario.Config{}, fmt.Errorf("serve: spec and attack are mutually exclusive (put the attack block inside the spec run)")
	}
	if qs.Scenario != (ScenarioSpec{Scale: qs.Scenario.Scale, Seed: qs.Scenario.Seed}) {
		return scenario.Config{}, fmt.Errorf("serve: spec and scenario are mutually exclusive (only scenario.scale and scenario.seed may accompany a spec)")
	}
	if err := qs.Spec.Check(); err != nil {
		return scenario.Config{}, err
	}
	// The document arrived over the wire: a client's trace file path means
	// nothing on the server's filesystem, and must not name a file there.
	for _, t := range qs.Spec.Traces() {
		if t.Path != "" && len(t.Events) == 0 {
			return scenario.Config{}, fmt.Errorf("serve: trace path %q is not addressable over the wire; inline the events", t.Path)
		}
	}
	sc, err := scenario.ScaleByName(qs.Scenario.Scale)
	if err != nil {
		return scenario.Config{}, err
	}
	exp, err := scenario.FromSpec(qs.Spec, sc, qs.Scenario.Seed)
	if err != nil {
		return scenario.Config{}, err
	}
	if len(exp.Configs) != 1 {
		return scenario.Config{}, fmt.Errorf("serve: spec %q resolves to %d runs; a query needs exactly one", qs.Spec.ID, len(exp.Configs))
	}
	return exp.Configs[0], nil
}

// resolveScenario binds the flat scenario block (the pre-spec wire form)
// to a config.
func (qs QuerySpec) resolveScenario() (scenario.Config, error) {
	sc, err := scenario.ScaleByName(qs.Scenario.Scale)
	if err != nil {
		return scenario.Config{}, err
	}
	size := qs.Scenario.Size
	if size == 0 {
		size = sc.Small
	}
	cfg := scenario.Config{
		Seed:             qs.Scenario.Seed,
		Size:             size,
		K:                qs.Scenario.K,
		Alpha:            qs.Scenario.Alpha,
		Bits:             qs.Scenario.Bits,
		Staleness:        qs.Scenario.Staleness,
		Traffic:          qs.Scenario.Traffic,
		Setup:            minutes(qs.Scenario.SetupMinutes, sc.Setup),
		Stabilize:        minutes(qs.Scenario.StabilizeMinutes, sc.Stabilize),
		SnapshotInterval: minutes(qs.Scenario.SnapshotMinutes, sc.SnapshotInterval),
		SampleFraction:   qs.Scenario.SampleFraction,
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = sc.SampleFraction
	}
	if qs.Scenario.Loss != "" {
		if cfg.Loss, err = simnet.ParseLossLevel(qs.Scenario.Loss); err != nil {
			return scenario.Config{}, err
		}
	}
	if qs.Scenario.Churn != "" {
		if cfg.Churn, err = churn.ParseRate(qs.Scenario.Churn); err != nil {
			return scenario.Config{}, err
		}
	}
	if qs.Attack != nil {
		st, err := attack.ParseStrategy(qs.Attack.Strategy)
		if err != nil {
			return scenario.Config{}, err
		}
		_, defInterval := sc.AttackPhase()
		cfg.Attack = attack.Config{
			Strategy: st,
			Budget:   qs.Attack.Budget,
			Kills:    qs.Attack.Kills,
			Interval: minutes(qs.Attack.IntervalMinutes, defInterval),
		}
		if cfg.Attack.Budget == 0 {
			cfg.Attack.Budget = scenario.AttackBudget(size)
		}
	}
	// The churn window: explicit minutes, else the scale's long phase
	// whenever churn or an adversary needs a window at all.
	if !cfg.Churn.IsZero() || cfg.Attack.Enabled() {
		cfg.ChurnPhase = minutes(qs.Scenario.ChurnMinutes, sc.ChurnLong)
	}
	return cfg, nil
}

// finish applies the scenario-independent part of Resolve: the metric,
// the stopping rule, the replication bounds, and the run identity.
func (qs QuerySpec) finish(cfg scenario.Config) (Query, error) {
	metric := qs.Metric
	if metric == "" {
		metric = MetricChurnMinMean
	}
	known := false
	for _, m := range MetricNames() {
		if m == metric {
			known = true
		}
	}
	if !known {
		return Query{}, fmt.Errorf("serve: unknown metric %q (have %v)", metric, MetricNames())
	}
	if qs.Resample != nil && metric != MetricFinalMin && metric != MetricFinalAvg {
		return Query{}, fmt.Errorf("serve: resample applies only to %s/%s, not %q",
			MetricFinalMin, MetricFinalAvg, metric)
	}
	if metric == MetricChurnMinMean && cfg.ChurnPhase == 0 {
		return Query{}, fmt.Errorf("serve: metric %s needs a churn window (set churn or attack)", MetricChurnMinMean)
	}

	var rule sweep.StopRule
	switch {
	case qs.Threshold != nil && qs.Precision != nil:
		return Query{}, fmt.Errorf("serve: threshold and precision are mutually exclusive")
	case qs.Threshold != nil:
		rule = sweep.StopAtThreshold(*qs.Threshold)
	case qs.Precision != nil:
		if *qs.Precision <= 0 {
			return Query{}, fmt.Errorf("serve: precision must be positive")
		}
		rule = sweep.StopAtPrecision(*qs.Precision)
	default:
		return Query{}, fmt.Errorf("serve: query needs a threshold or a precision")
	}

	if qs.MinReps < 0 {
		return Query{}, fmt.Errorf("serve: min_reps %d is negative", qs.MinReps)
	}
	if qs.MaxReps < 0 {
		return Query{}, fmt.Errorf("serve: max_reps %d is negative", qs.MaxReps)
	}
	if qs.MaxReps > maxRepsCap {
		return Query{}, fmt.Errorf("serve: max_reps %d exceeds the cap %d", qs.MaxReps, maxRepsCap)
	}
	// Check the rep bounds RunAdaptive will actually use (min_reps 0
	// defaults to 3, max_reps 0 to 8), so an inconsistent pair is a spec
	// error here and never a late failure after admission.
	effMin, effMax := qs.MinReps, qs.MaxReps
	if effMin <= 0 {
		effMin = 3
	}
	if effMin < 2 {
		effMin = 2
	}
	if effMax <= 0 {
		effMax = 8
	}
	if effMax < effMin {
		return Query{}, fmt.Errorf("serve: max_reps %d < effective min_reps %d", effMax, effMin)
	}
	if qs.DeadlineMS < 0 {
		return Query{}, fmt.Errorf("serve: deadline_ms %d is negative", qs.DeadlineMS)
	}

	cfg.Name = queryName(cfg)
	eff := cfg.WithDefaults()
	if err := eff.Validate(); err != nil {
		return Query{}, err
	}
	// A snapshot interval past the run's end would capture zero points and
	// leave nothing to extract a metric from.
	if eff.SnapshotInterval > eff.Total() {
		return Query{}, fmt.Errorf("serve: snapshot interval %s exceeds the run length %s",
			eff.SnapshotInterval, eff.Total())
	}
	stream := true
	if qs.Stream != nil {
		stream = *qs.Stream
	}
	return Query{
		Config: cfg, Rule: rule, Metric: metric, Resample: qs.Resample,
		MinReps: qs.MinReps, MaxReps: qs.MaxReps,
		Deadline: time.Duration(qs.DeadlineMS) * time.Millisecond,
		Stream:   stream,
	}, nil
}

// queryName labels a query's runs by a short hash of their arena key:
// stable across restarts, identical for equivalent specs.
func queryName(cfg scenario.Config) string {
	h := fnv.New64a()
	h.Write([]byte(Key(cfg)))
	return fmt.Sprintf("query/%08x", h.Sum64()&0xFFFFFFFF)
}
