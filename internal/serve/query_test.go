package serve

import (
	"strings"
	"testing"
	"time"

	"kadre/internal/scenario"
	"kadre/internal/workload"
)

// tinySpec builds a minimal valid spec around the final_min metric (no
// churn window needed) for mutation by the validation tests.
func tinySpec() QuerySpec {
	thr := 1000.0
	return QuerySpec{
		Scenario: ScenarioSpec{Scale: "tiny", Size: 20, K: 5, Staleness: 1,
			SetupMinutes: 6, StabilizeMinutes: 12, SnapshotMinutes: 6,
			SampleFraction: 0.1, Seed: 5},
		Metric:    MetricFinalMin,
		Threshold: &thr,
	}
}

func TestResolveRejectsNegativeReps(t *testing.T) {
	qs := tinySpec()
	qs.MinReps = -1
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "min_reps") {
		t.Fatalf("negative min_reps: err = %v, want min_reps error", err)
	}
	qs = tinySpec()
	qs.MaxReps = -3
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "max_reps") {
		t.Fatalf("negative max_reps: err = %v, want max_reps error", err)
	}
}

func TestResolveRejectsMaxBelowEffectiveMin(t *testing.T) {
	// max_reps 2 with min_reps unset: RunAdaptive would default min to 3
	// and fail after admission; Resolve must catch it as a spec error.
	qs := tinySpec()
	qs.MaxReps = 2
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "effective min_reps") {
		t.Fatalf("max_reps 2 vs default min: err = %v", err)
	}
	// An explicit consistent pair at the same value is fine.
	qs.MinReps = 2
	if _, err := qs.Resolve(); err != nil {
		t.Fatalf("min_reps 2 / max_reps 2: %v", err)
	}
}

func TestResolveRejectsNegativeDeadline(t *testing.T) {
	qs := tinySpec()
	qs.DeadlineMS = -5
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "deadline_ms") {
		t.Fatalf("negative deadline_ms: err = %v", err)
	}
}

func TestResolveDeadline(t *testing.T) {
	qs := tinySpec()
	qs.DeadlineMS = 1500
	q, err := qs.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if q.Deadline != 1500*time.Millisecond {
		t.Fatalf("Deadline = %v, want 1.5s", q.Deadline)
	}
	qs.DeadlineMS = 0
	if q, err = qs.Resolve(); err != nil || q.Deadline != 0 {
		t.Fatalf("zero deadline_ms: deadline=%v err=%v", q.Deadline, err)
	}
}

func TestResolveRejectsSnapshotPastRunEnd(t *testing.T) {
	// 6 + 12 simulated minutes of run, snapshots every 30: zero points,
	// nothing to extract a metric from — a spec error, not a panic later.
	qs := tinySpec()
	qs.Scenario.SnapshotMinutes = 30
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "snapshot interval") {
		t.Fatalf("snapshot past run end: err = %v", err)
	}
}

// tinyEmbeddedSpec is the scenario-spec-document spelling of tinySpec's
// flat scenario block.
func tinyEmbeddedSpec() *workload.Spec {
	iv := func(v int) *int { return &v }
	fv := func(v float64) *float64 { return &v }
	return &workload.Spec{
		Version: workload.SpecVersion,
		ID:      "tiny-query",
		Runs: []workload.RunSpec{{
			Name: "q", Size: iv(20), K: iv(5), Staleness: iv(1),
			SetupMinutes: fv(6), StabilizeMinutes: fv(12),
			SnapshotMinutes: fv(6), SampleFraction: fv(0.1),
		}},
	}
}

func TestResolveEmbeddedSpecMatchesScenario(t *testing.T) {
	flat := tinySpec()
	qf, err := flat.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	thr := 1000.0
	qs := QuerySpec{
		Scenario:  ScenarioSpec{Scale: "tiny", Seed: 5},
		Spec:      tinyEmbeddedSpec(),
		Metric:    MetricFinalMin,
		Threshold: &thr,
	}
	qe, err := qs.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent spellings must resolve to the same run identity (arena
	// key and derived query name), or the warm cache would fragment.
	if Key(qe.Config) != Key(qf.Config) {
		t.Fatalf("arena keys differ:\n spec: %s\n flat: %s", Key(qe.Config), Key(qf.Config))
	}
	if qe.Config.Name != qf.Config.Name {
		t.Fatalf("query names differ: %q vs %q", qe.Config.Name, qf.Config.Name)
	}
	if qe.Config.SpecDigest == "" {
		t.Fatal("embedded spec left no digest on the config")
	}
}

func TestResolveEmbeddedSpecRejections(t *testing.T) {
	thr := 1000.0
	base := func() QuerySpec {
		return QuerySpec{
			Scenario:  ScenarioSpec{Scale: "tiny", Seed: 5},
			Spec:      tinyEmbeddedSpec(),
			Metric:    MetricFinalMin,
			Threshold: &thr,
		}
	}

	qs := base()
	qs.Scenario.Size = 20 // anything beyond scale/seed must be inside the spec
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("scenario.size next to spec: err = %v", err)
	}

	qs = base()
	qs.Attack = &AttackSpec{Strategy: "random"}
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("attack next to spec: err = %v", err)
	}

	qs = base()
	qs.Spec.Runs = append(qs.Spec.Runs, qs.Spec.Runs[0])
	qs.Spec.Runs[1].Name = "q2"
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("two-run spec: err = %v", err)
	}

	qs = base()
	qs.Spec.ID = ""
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "id") {
		t.Fatalf("spec without id: err = %v", err)
	}

	qs = base()
	qs.Spec.Runs[0].Trace = &workload.TraceSpec{Path: "/etc/passwd"}
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "not addressable") {
		t.Fatalf("path-only trace over the wire: err = %v", err)
	}
}

func TestMetricFromResultDefensive(t *testing.T) {
	empty := &scenario.Result{Config: scenario.Config{Name: "hollow"}}
	if _, err := metricFromResult(MetricFinalMin, empty); err == nil {
		t.Fatal("empty Points must error, not panic")
	}
	if _, err := metricFromResult("bogus", &scenario.Result{
		Points: []scenario.SnapshotStat{{N: 5}},
	}); err == nil {
		t.Fatal("unknown metric must error, not panic")
	}
	v, err := metricFromResult(MetricFinalN, &scenario.Result{
		Points: []scenario.SnapshotStat{{N: 5}},
	})
	if err != nil || v != 5 {
		t.Fatalf("final_n = %v, %v", v, err)
	}
}
