package serve

import (
	"strings"
	"testing"
	"time"

	"kadre/internal/scenario"
)

// tinySpec builds a minimal valid spec around the final_min metric (no
// churn window needed) for mutation by the validation tests.
func tinySpec() QuerySpec {
	thr := 1000.0
	return QuerySpec{
		Scenario: ScenarioSpec{Scale: "tiny", Size: 20, K: 5, Staleness: 1,
			SetupMinutes: 6, StabilizeMinutes: 12, SnapshotMinutes: 6,
			SampleFraction: 0.1, Seed: 5},
		Metric:    MetricFinalMin,
		Threshold: &thr,
	}
}

func TestResolveRejectsNegativeReps(t *testing.T) {
	qs := tinySpec()
	qs.MinReps = -1
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "min_reps") {
		t.Fatalf("negative min_reps: err = %v, want min_reps error", err)
	}
	qs = tinySpec()
	qs.MaxReps = -3
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "max_reps") {
		t.Fatalf("negative max_reps: err = %v, want max_reps error", err)
	}
}

func TestResolveRejectsMaxBelowEffectiveMin(t *testing.T) {
	// max_reps 2 with min_reps unset: RunAdaptive would default min to 3
	// and fail after admission; Resolve must catch it as a spec error.
	qs := tinySpec()
	qs.MaxReps = 2
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "effective min_reps") {
		t.Fatalf("max_reps 2 vs default min: err = %v", err)
	}
	// An explicit consistent pair at the same value is fine.
	qs.MinReps = 2
	if _, err := qs.Resolve(); err != nil {
		t.Fatalf("min_reps 2 / max_reps 2: %v", err)
	}
}

func TestResolveRejectsNegativeDeadline(t *testing.T) {
	qs := tinySpec()
	qs.DeadlineMS = -5
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "deadline_ms") {
		t.Fatalf("negative deadline_ms: err = %v", err)
	}
}

func TestResolveDeadline(t *testing.T) {
	qs := tinySpec()
	qs.DeadlineMS = 1500
	q, err := qs.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if q.Deadline != 1500*time.Millisecond {
		t.Fatalf("Deadline = %v, want 1.5s", q.Deadline)
	}
	qs.DeadlineMS = 0
	if q, err = qs.Resolve(); err != nil || q.Deadline != 0 {
		t.Fatalf("zero deadline_ms: deadline=%v err=%v", q.Deadline, err)
	}
}

func TestResolveRejectsSnapshotPastRunEnd(t *testing.T) {
	// 6 + 12 simulated minutes of run, snapshots every 30: zero points,
	// nothing to extract a metric from — a spec error, not a panic later.
	qs := tinySpec()
	qs.Scenario.SnapshotMinutes = 30
	if _, err := qs.Resolve(); err == nil || !strings.Contains(err.Error(), "snapshot interval") {
		t.Fatalf("snapshot past run end: err = %v", err)
	}
}

func TestMetricFromResultDefensive(t *testing.T) {
	empty := &scenario.Result{Config: scenario.Config{Name: "hollow"}}
	if _, err := metricFromResult(MetricFinalMin, empty); err == nil {
		t.Fatal("empty Points must error, not panic")
	}
	if _, err := metricFromResult("bogus", &scenario.Result{
		Points: []scenario.SnapshotStat{{N: 5}},
	}); err == nil {
		t.Fatal("unknown metric must error, not panic")
	}
	v, err := metricFromResult(MetricFinalN, &scenario.Result{
		Points: []scenario.SnapshotStat{{N: 5}},
	})
	if err != nil || v != 5 {
		t.Fatalf("final_n = %v, %v", v, err)
	}
}
