package serve

import (
	"container/list"
	"context"
	"sync"
)

// Sched is the server-wide admission queue: a FIFO weighted semaphore
// bounding the total number of concurrently executing replications
// across every query the server handles. Before kadserve had one, each
// query span up its own wave pool, so N clients meant N×jobs concurrent
// simulations; with the queue, a query's replications wait their turn
// behind everyone else's — in strict arrival order, so no query starves
// — and the simulation load on the host never exceeds the configured
// limit no matter how many clients connect.
//
// The queue bounds *execution*, never *outcome*: a replication delayed
// by admission produces exactly the bytes it would have produced
// running alone, and the adaptive fold consumes results in rep order
// regardless of when slots freed, so completed-rep records stay
// byte-identical under any concurrency limit.
type Sched struct {
	mu      sync.Mutex
	limit   int64      // <= 0: unlimited
	inUse   int64      // slots currently held
	waiters *list.List // of *schedWaiter, FIFO

	queued   int64 // queries admitted but not yet holding their first slot
	running  int64 // queries past their first slot and not yet done
	canceled int64 // cumulative queries that ended canceled or timed out
}

type schedWaiter struct {
	n     int64
	ready chan struct{} // closed when the slots are granted
}

// NewSched builds an admission queue bounding concurrent replications to
// limit; limit <= 0 means unlimited (the queue still tracks the query
// breakdown, it just never blocks).
func NewSched(limit int) *Sched {
	return &Sched{limit: int64(limit), waiters: list.New()}
}

// acquire blocks until n slots are granted in FIFO order or ctx is done.
// On cancellation the waiter leaves the queue without disturbing the
// grants of the queries behind it.
func (s *Sched) acquire(ctx context.Context, n int64) error {
	s.mu.Lock()
	if s.limit <= 0 || (s.waiters.Len() == 0 && s.inUse+n <= s.limit) {
		if s.limit > 0 {
			s.inUse += n
		}
		s.mu.Unlock()
		// Even an immediate grant respects cancellation: a dead caller
		// must not start a simulation.
		if err := ctx.Err(); err != nil {
			s.release(n)
			return err
		}
		return nil
	}
	w := &schedWaiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and the lock: hand the slots
			// straight back so the next waiter gets them.
			s.inUse -= n
			s.grant()
		default:
			s.waiters.Remove(elem)
			// Removing a waiter can unblock those behind it when the
			// head was waiting for more slots than this one held back.
			s.grant()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// release returns n slots and wakes eligible waiters in FIFO order.
func (s *Sched) release(n int64) {
	if s.limit <= 0 {
		return
	}
	s.mu.Lock()
	s.inUse -= n
	s.grant()
	s.mu.Unlock()
}

// grant satisfies queued waiters from the front while capacity lasts.
// Caller holds s.mu. Strict FIFO: a small request behind a large one
// waits — admission order is the fairness contract.
func (s *Sched) grant() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*schedWaiter)
		if s.inUse+w.n > s.limit {
			return
		}
		s.inUse += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}

// Begin registers one query with the scheduler in the queued state and
// returns its ticket. The caller must call Ticket.Done exactly once.
func (s *Sched) Begin() *Ticket {
	s.mu.Lock()
	s.queued++
	s.mu.Unlock()
	return &Ticket{s: s}
}

// Ticket is one query's handle on the admission queue: per-replication
// slot acquisition plus the queued -> running -> done lifecycle the
// /v1/arena breakdown reports. Acquire and Release are safe to call
// concurrently from a query's replication workers; Done is not, and must
// happen after every worker finished.
type Ticket struct {
	s     *Sched
	once  sync.Once
	began bool // left the queued state (guarded by s.mu via once body)
	done  bool
}

// Acquire blocks until one replication slot is granted (FIFO across all
// queries) or ctx is done. The first grant moves the query from queued
// to running.
func (t *Ticket) Acquire(ctx context.Context) error {
	if err := t.s.acquire(ctx, 1); err != nil {
		return err
	}
	t.once.Do(func() {
		t.s.mu.Lock()
		t.s.queued--
		t.s.running++
		t.began = true
		t.s.mu.Unlock()
	})
	return nil
}

// Release returns one replication slot.
func (t *Ticket) Release() { t.s.release(1) }

// Done unregisters the query; canceled marks it in the cumulative
// cancellation counter (client disconnect or deadline exceeded).
func (t *Ticket) Done(canceled bool) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	if t.began {
		t.s.running--
	} else {
		t.s.queued--
	}
	if canceled {
		t.s.canceled++
	}
}

// SchedStats is the admission-queue breakdown on GET /v1/arena.
type SchedStats struct {
	// MaxConcurrentSims is the slot limit; 0 reports an unlimited queue.
	MaxConcurrentSims int64 `json:"max_concurrent_sims"`
	// InUse counts replication slots currently held.
	InUse int64 `json:"in_use"`
	// Queued counts queries admitted but still waiting for a first slot.
	Queued int64 `json:"queued"`
	// Running counts queries holding or past their first slot, not done.
	Running int64 `json:"running"`
	// Canceled counts queries (cumulatively) that ended canceled —
	// client disconnect or deadline exceeded.
	Canceled int64 `json:"canceled"`
}

// Stats snapshots the queue.
func (s *Sched) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	limit := s.limit
	if limit < 0 {
		limit = 0
	}
	return SchedStats{
		MaxConcurrentSims: limit,
		InUse:             s.inUse,
		Queued:            s.queued,
		Running:           s.running,
		Canceled:          s.canceled,
	}
}
