package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedBoundsConcurrency hammers a limit-2 queue from 8 goroutines
// and asserts the in-flight gauge never exceeds the limit (run with
// -race).
func TestSchedBoundsConcurrency(t *testing.T) {
	s := NewSched(2)
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk := s.Begin()
			defer tk.Done(false)
			for rep := 0; rep < 5; rep++ {
				if err := tk.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				c := cur.Add(1)
				for {
					m := max.Load()
					if c <= m || max.CompareAndSwap(m, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				tk.Release()
			}
		}()
	}
	wg.Wait()
	if got := max.Load(); got > 2 {
		t.Fatalf("observed %d concurrent holders, limit 2", got)
	}
	st := s.Stats()
	if st.InUse != 0 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}

// TestSchedFIFO pins admission order: with one slot, waiters are granted
// strictly in arrival order.
func TestSchedFIFO(t *testing.T) {
	s := NewSched(1)
	hold := s.Begin()
	if err := hold.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const waiters = 5
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	ready := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk := s.Begin()
			defer tk.Done(false)
			ready <- struct{}{}
			if err := tk.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			tk.Release()
		}(i)
		<-ready // i is enqueued (or about to be) before i+1 starts
		// The waiter goroutine must actually reach the queue before the
		// next one launches; poll the stats until it is blocked.
		deadline := time.Now().Add(5 * time.Second)
		for {
			s.mu.Lock()
			n := s.waiters.Len()
			s.mu.Unlock()
			if n == i+1 || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	hold.Release()
	hold.Done(false)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want strict FIFO", order)
		}
	}
}

// TestSchedCancelWhileQueued pins the cancellation path: a waiter whose
// context fires leaves the queue, does not block later waiters, and the
// query counts as canceled.
func TestSchedCancelWhileQueued(t *testing.T) {
	s := NewSched(1)
	hold := s.Begin()
	if err := hold.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Running != 1 || st.InUse != 1 {
		t.Fatalf("holder stats = %+v", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	tk := s.Begin()
	if st := s.Stats(); st.Queued != 1 {
		t.Fatalf("begun query not queued: %+v", st)
	}
	errc := make(chan error, 1)
	go func() { errc <- tk.Acquire(ctx) }()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire = %v, want context.Canceled", err)
	}
	tk.Done(true)

	st := s.Stats()
	if st.Queued != 0 || st.Canceled != 1 {
		t.Fatalf("after canceled waiter: %+v", st)
	}

	// The slot is still grantable: a fresh query gets it once released.
	hold.Release()
	hold.Done(false)
	tk2 := s.Begin()
	if err := tk2.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	tk2.Release()
	tk2.Done(false)
	if st := s.Stats(); st.InUse != 0 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}

// TestSchedUnlimited pins the limit <= 0 contract: nothing ever blocks,
// the breakdown still tracks query states.
func TestSchedUnlimited(t *testing.T) {
	s := NewSched(0)
	tk := s.Begin()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := tk.Acquire(context.Background()); err != nil {
				t.Error(err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("unlimited queue blocked")
	}
	if st := s.Stats(); st.Running != 1 || st.MaxConcurrentSims != 0 {
		t.Fatalf("stats = %+v", st)
	}
	tk.Done(false)
	if st := s.Stats(); st.Running != 0 {
		t.Fatalf("stats after done = %+v", st)
	}
}

// TestSchedPreCanceledAcquire pins that even an uncontended grant
// respects a dead context.
func TestSchedPreCanceledAcquire(t *testing.T) {
	s := NewSched(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk := s.Begin()
	if err := tk.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire = %v, want context.Canceled", err)
	}
	tk.Done(true)
	if st := s.Stats(); st.InUse != 0 || st.Canceled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
