package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"time"

	"kadre/internal/connectivity"
	"kadre/internal/scenario"
	"kadre/internal/sweep"
)

// Server is the HTTP face of the resilience-query service. Handlers are
// safe for concurrent use: simulation state lives in the shared arena,
// per-query state on the handler's stack, and every replication passes
// through the shared admission queue before it may simulate.
type Server struct {
	arena    *Arena
	jobs     int
	gov      connectivity.GovernancePolicy
	sched    *Sched
	deadline time.Duration
	mux      *http.ServeMux
}

// Options configures NewServer.
type Options struct {
	// Arena is the shared engine pool; nil creates a default-budget one.
	Arena *Arena
	// Jobs bounds each query's concurrently executing replications;
	// <= 0 means GOMAXPROCS. Replication output is identical either way.
	Jobs int
	// Governance is the memory policy installed on every query's runs
	// (the zero policy takes the scenario defaults).
	Governance connectivity.GovernancePolicy
	// MaxConcurrentSims bounds concurrently executing replications across
	// every query the server handles: 0 means GOMAXPROCS, negative means
	// unlimited. Admission is FIFO, so a limit delays queries under load
	// but never reorders or starves them — and never changes their bytes.
	MaxConcurrentSims int
	// DefaultDeadline bounds the wall clock of queries that carry no
	// deadline_ms of their own; 0 means no default deadline.
	DefaultDeadline time.Duration
}

// NewServer builds the service and its routes.
func NewServer(opts Options) *Server {
	s := &Server{
		arena: opts.Arena, jobs: opts.Jobs, gov: opts.Governance,
		deadline: opts.DefaultDeadline,
	}
	if s.arena == nil {
		s.arena = NewArena(ArenaOptions{})
	}
	limit := opts.MaxConcurrentSims
	if limit == 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit < 0 {
		limit = 0 // NewSched's unlimited mode
	}
	s.sched = NewSched(limit)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/arena", s.handleArena)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

// Arena returns the server's engine pool (shared with the maintenance
// loop and with tests).
func (s *Server) Arena() *Arena { return s.arena }

// Sched returns the server's admission queue (tests poll its stats to
// observe slot release after cancellation).
func (s *Server) Sched() *Sched { return s.sched }

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleArena(w http.ResponseWriter, _ *http.Request) {
	st := s.arena.Stats()
	ss := s.sched.Stats()
	st.Sched = &ss
	writeJSON(w, http.StatusOK, st)
}

// handleQuery runs one adaptively replicated resilience query, streaming
// a record per consumed replication and a final verdict record. All
// simulation and analysis state flows through the arena, so repeating a
// query against warm state answers from memory without a single bind.
//
// The query runs under the request context bounded by its deadline
// (spec's deadline_ms, else the server default): a client disconnect or
// an expired deadline propagates through the sweep and the scenario
// runner into the event kernel, which stops within one event batch.
// Failures before the first streamed record answer with a real status —
// 504 for a deadline, 500 otherwise; after the stream started, the
// status is spoken for and the failure goes out as an error record.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorRecord{Type: "error", Error: "bad query spec: " + err.Error()})
		return
	}
	q, err := spec.Resolve()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorRecord{Type: "error", Error: err.Error()})
		return
	}
	cfg := q.Config
	cfg.Governance = s.gov

	ctx := r.Context()
	deadline := q.Deadline
	if deadline == 0 {
		deadline = s.deadline
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	// One admission ticket per query; every replication acquires a slot
	// for the duration of its simulation (warm hits included — they are
	// cheap, so the slot turns over immediately). The explicit canceled
	// flag, not ctx.Err() at defer time, feeds the breakdown: a deadline
	// firing just after the final record must not count as a cancellation.
	tick := s.sched.Begin()
	canceled := false
	defer func() { tick.Done(canceled) }()

	// Per-query metric values, keyed by the shared Result pointer each
	// rep's arena entry returned: the runner computes the value (it holds
	// the entry, which resampled metrics need), Extract just looks it up.
	var values sync.Map
	runner := func(ctx context.Context, c scenario.Config) (*scenario.Result, bool, error) {
		if err := tick.Acquire(ctx); err != nil {
			return nil, false, err
		}
		defer tick.Release()
		e, warm, err := s.arena.Get(ctx, c)
		if err != nil {
			return nil, false, err
		}
		v, err := s.metricValue(q, e)
		if err != nil {
			return nil, false, err
		}
		values.Store(e.Result(), v)
		return e.Result(), warm, nil
	}

	out := newStreamWriter(w, r)
	hits, misses := 0, 0
	ar, err := sweep.RunAdaptive(ctx, cfg, sweep.AdaptiveOptions{
		Rule:    q.Rule,
		Extract: func(res *scenario.Result) float64 { v, _ := values.Load(res); return v.(float64) },
		MinReps: q.MinReps, MaxReps: q.MaxReps, Jobs: s.jobs,
		Runner: runner,
		Progress: func(u sweep.RepUpdate) {
			// Warm/cold accounting covers exactly the consumed prefix, so
			// the final record is identical under any Jobs value (arena
			// counters also see discarded speculative reps).
			if u.Cached {
				hits++
			} else {
				misses++
			}
			if q.Stream {
				out.write("rep", repRecord{
					Type: "rep", Rep: u.Rep, Seed: u.Seed, Value: jsonFloat(u.Value),
					Reps: u.Reps, Mean: jsonFloat(u.Mean), CI95: jsonFloat(u.CI95),
					Decided: u.Decided, Verdict: string(u.Verdict), Cached: u.Cached,
				})
			}
		},
	})
	if err != nil {
		canceled = isCancellation(err)
		if out.Started() {
			out.write("error", errorRecord{Type: "error", Error: err.Error()})
			return
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeJSON(w, http.StatusGatewayTimeout, errorRecord{Type: "error", Error: err.Error()})
		case errors.Is(err, context.Canceled):
			// The client is gone; nobody reads a status line.
		default:
			writeJSON(w, http.StatusInternalServerError, errorRecord{Type: "error", Error: err.Error()})
		}
		return
	}
	final := resultRecord{
		Type: "result", Name: cfg.Name, Metric: q.Metric,
		Verdict: string(ar.Verdict), Reps: len(ar.Values),
		Values: make([]jsonFloat, len(ar.Values)),
		Mean:   jsonFloat(ar.Mean), CI95: jsonFloat(ar.CI95),
		Threshold: maybeThreshold(q.Rule), Precision: maybePrecision(q.Rule),
		ArenaHits: hits, ArenaMisses: misses,
	}
	for i, v := range ar.Values {
		final.Values[i] = jsonFloat(v)
	}
	out.write("result", final)
}

// metricValue computes a query's metric against one warm entry.
func (s *Server) metricValue(q Query, e *Entry) (float64, error) {
	if q.Resample == nil {
		return metricFromResult(q.Metric, e.Result())
	}
	sr, err := e.AnalyzeFinal(q.Resample.Fraction, q.Resample.Seed)
	if err != nil {
		return 0, err
	}
	if q.Metric == MetricFinalMin {
		return float64(sr.Min.Min), nil
	}
	if sr.Avg.Pairs == 0 {
		// No evaluable sampled pair (or a complete graph): the runner's
		// own definitional fallback.
		return float64(e.FinalN() - 1), nil
	}
	return sr.Avg.Avg, nil
}

// maybeThreshold and maybePrecision render the stopping rule in the form
// the wire records serialize: the active bound as a pointer, nil for the
// other.
func maybeThreshold(r sweep.StopRule) *float64 {
	if t, ok := r.Threshold(); ok {
		return &t
	}
	return nil
}

func maybePrecision(r sweep.StopRule) *float64 {
	if p := r.Precision(); p > 0 {
		return &p
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client went away; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}
