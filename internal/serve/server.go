package serve

import (
	"encoding/json"
	"net/http"
	"sync"

	"kadre/internal/connectivity"
	"kadre/internal/scenario"
	"kadre/internal/sweep"
)

// Server is the HTTP face of the resilience-query service. Handlers are
// safe for concurrent use: simulation state lives in the shared arena,
// per-query state on the handler's stack.
type Server struct {
	arena *Arena
	jobs  int
	gov   connectivity.GovernancePolicy
	mux   *http.ServeMux
}

// Options configures NewServer.
type Options struct {
	// Arena is the shared engine pool; nil creates a default-budget one.
	Arena *Arena
	// Jobs bounds each query's concurrently executing replications;
	// <= 0 means GOMAXPROCS. Replication output is identical either way.
	Jobs int
	// Governance is the memory policy installed on every query's runs
	// (the zero policy takes the scenario defaults).
	Governance connectivity.GovernancePolicy
}

// NewServer builds the service and its routes.
func NewServer(opts Options) *Server {
	s := &Server{arena: opts.Arena, jobs: opts.Jobs, gov: opts.Governance}
	if s.arena == nil {
		s.arena = NewArena(ArenaOptions{})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/arena", s.handleArena)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s
}

// Arena returns the server's engine pool (shared with the maintenance
// loop and with tests).
func (s *Server) Arena() *Arena { return s.arena }

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleArena(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.arena.Stats())
}

// handleQuery runs one adaptively replicated resilience query, streaming
// a record per consumed replication and a final verdict record. All
// simulation and analysis state flows through the arena, so repeating a
// query against warm state answers from memory without a single bind.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorRecord{Type: "error", Error: "bad query spec: " + err.Error()})
		return
	}
	q, err := spec.Resolve()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorRecord{Type: "error", Error: err.Error()})
		return
	}
	cfg := q.Config
	cfg.Governance = s.gov

	// Per-query metric values, keyed by the shared Result pointer each
	// rep's arena entry returned: the runner computes the value (it holds
	// the entry, which resampled metrics need), Extract just looks it up.
	var values sync.Map
	runner := func(c scenario.Config) (*scenario.Result, bool, error) {
		e, warm, err := s.arena.Get(c)
		if err != nil {
			return nil, false, err
		}
		v, err := s.metricValue(q, e)
		if err != nil {
			return nil, false, err
		}
		values.Store(e.Result(), v)
		return e.Result(), warm, nil
	}

	out := newStreamWriter(w, r)
	hits, misses := 0, 0
	ar, err := sweep.RunAdaptive(cfg, sweep.AdaptiveOptions{
		Rule:    q.Rule,
		Extract: func(res *scenario.Result) float64 { v, _ := values.Load(res); return v.(float64) },
		MinReps: q.MinReps, MaxReps: q.MaxReps, Jobs: s.jobs,
		Runner: runner,
		Progress: func(u sweep.RepUpdate) {
			// Warm/cold accounting covers exactly the consumed prefix, so
			// the final record is identical under any Jobs value (arena
			// counters also see discarded speculative reps).
			if u.Cached {
				hits++
			} else {
				misses++
			}
			if q.Stream {
				out.write("rep", repRecord{
					Type: "rep", Rep: u.Rep, Seed: u.Seed, Value: jsonFloat(u.Value),
					Reps: u.Reps, Mean: jsonFloat(u.Mean), CI95: jsonFloat(u.CI95),
					Decided: u.Decided, Verdict: string(u.Verdict), Cached: u.Cached,
				})
			}
		},
	})
	if err != nil {
		out.write("error", errorRecord{Type: "error", Error: err.Error()})
		return
	}
	final := resultRecord{
		Type: "result", Name: cfg.Name, Metric: q.Metric,
		Verdict: string(ar.Verdict), Reps: len(ar.Values),
		Values: make([]jsonFloat, len(ar.Values)),
		Mean:   jsonFloat(ar.Mean), CI95: jsonFloat(ar.CI95),
		Threshold: maybeThreshold(q.Rule), Precision: maybePrecision(q.Rule),
		ArenaHits: hits, ArenaMisses: misses,
	}
	for i, v := range ar.Values {
		final.Values[i] = jsonFloat(v)
	}
	out.write("result", final)
}

// metricValue computes a query's metric against one warm entry.
func (s *Server) metricValue(q Query, e *Entry) (float64, error) {
	if q.Resample == nil {
		return metricFromResult(q.Metric, e.Result()), nil
	}
	sr, err := e.AnalyzeFinal(q.Resample.Fraction, q.Resample.Seed)
	if err != nil {
		return 0, err
	}
	if q.Metric == MetricFinalMin {
		return float64(sr.Min.Min), nil
	}
	if sr.Avg.Pairs == 0 {
		// No evaluable sampled pair (or a complete graph): the runner's
		// own definitional fallback.
		return float64(e.FinalN() - 1), nil
	}
	return sr.Avg.Avg, nil
}

// maybeThreshold and maybePrecision render the stopping rule in the form
// the wire records serialize: the active bound as a pointer, nil for the
// other.
func maybeThreshold(r sweep.StopRule) *float64 {
	if t, ok := r.Threshold(); ok {
		return &t
	}
	return nil
}

func maybePrecision(r sweep.StopRule) *float64 {
	if p := r.Precision(); p > 0 {
		return &p
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client went away; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}
