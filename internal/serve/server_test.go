package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// querySpec is the fast query every server test reuses: a 30-simulated-
// minute tiny run with churn, decided as a quick fail by an unreachable
// threshold after exactly min_reps replications.
const querySpec = `{
  "scenario": {
    "scale": "tiny", "size": 20, "k": 5, "staleness": 1,
    "churn": "1/1", "churn_minutes": 12,
    "setup_minutes": 6, "stabilize_minutes": 12, "snapshot_minutes": 6,
    "sample_fraction": 0.1, "seed": 5
  },
  "metric": "churn_min_mean",
  "threshold": 1000,
  "min_reps": 2, "max_reps": 3
}`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(Options{Jobs: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postQuery(t *testing.T, ts *httptest.Server, body string, accept string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// records splits an NDJSON body into parsed lines.
func records(t *testing.T, body string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestQueryStreamsAndWarmRepeatsBindNothing(t *testing.T) {
	srv, ts := newTestServer(t)

	resp, body := postQuery(t, ts, querySpec, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	recs := records(t, body)
	if len(recs) != 3 { // two rep records + the result
		t.Fatalf("got %d records, want 3:\n%s", len(recs), body)
	}
	for _, r := range recs[:2] {
		if r["type"] != "rep" || r["cached"] != false {
			t.Fatalf("cold rep record = %v", r)
		}
	}
	final := recs[2]
	if final["type"] != "result" || final["verdict"] != "fail" {
		t.Fatalf("final record = %v", final)
	}
	if final["arena_hits"] != float64(0) || final["arena_misses"] != float64(2) {
		t.Fatalf("cold accounting = %v hits / %v misses", final["arena_hits"], final["arena_misses"])
	}
	// The first rep's CI half-width does not exist yet: null, not NaN.
	if v, present := recs[0]["ci95"]; !present || v != nil {
		t.Fatalf("rep-0 ci95 = %v, want null", v)
	}

	builds := srv.Arena().Builds()
	if builds != 2 {
		t.Fatalf("cold query paid %d builds, want 2", builds)
	}

	// The acceptance criterion: an identical query against the warm arena
	// performs zero builds (and therefore zero engine binds) — every rep
	// answers from residency.
	_, warm1 := postQuery(t, ts, querySpec, "")
	if got := srv.Arena().Builds(); got != builds {
		t.Fatalf("warm repeat paid %d new builds", got-builds)
	}
	wrecs := records(t, warm1)
	for _, r := range wrecs[:2] {
		if r["cached"] != true {
			t.Fatalf("warm rep record not cached: %v", r)
		}
	}
	wfinal := wrecs[2]
	if wfinal["arena_hits"] != float64(2) || wfinal["arena_misses"] != float64(0) {
		t.Fatalf("warm accounting = %v hits / %v misses", wfinal["arena_hits"], wfinal["arena_misses"])
	}
	// The decision itself is temperature-independent.
	for _, k := range []string{"verdict", "reps", "mean", "ci95", "name", "metric"} {
		if want, got := final[k], wfinal[k]; !equalJSON(want, got) {
			t.Fatalf("%s changed across warmth: %v -> %v", k, want, got)
		}
	}

	// Warm repeats are byte-identical to each other.
	_, warm2 := postQuery(t, ts, querySpec, "")
	if warm1 != warm2 {
		t.Fatalf("warm repeats differ:\n%s\n%s", warm1, warm2)
	}
}

func equalJSON(a, b any) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

func TestQuerySSE(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postQuery(t, ts, querySpec, "text/event-stream")
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "event: rep\ndata: {") {
		t.Fatalf("missing rep events:\n%s", body)
	}
	if !strings.Contains(body, "event: result\ndata: {\"type\":\"result\"") {
		t.Fatalf("missing result event:\n%s", body)
	}
}

func TestQueryNoStream(t *testing.T) {
	_, ts := newTestServer(t)
	spec := strings.Replace(querySpec, `"min_reps": 2`, `"stream": false, "min_reps": 2`, 1)
	_, body := postQuery(t, ts, spec, "")
	recs := records(t, body)
	if len(recs) != 1 || recs[0]["type"] != "result" {
		t.Fatalf("stream:false must return the final record alone:\n%s", body)
	}
}

func TestQueryResample(t *testing.T) {
	srv, ts := newTestServer(t)
	spec := `{
	  "scenario": {"scale": "tiny", "size": 20, "k": 5, "staleness": 1,
	    "churn": "1/1", "churn_minutes": 12, "setup_minutes": 6,
	    "stabilize_minutes": 12, "snapshot_minutes": 6,
	    "sample_fraction": 0.1, "seed": 5},
	  "metric": "final_avg", "resample": {"fraction": 1.0, "seed": 99},
	  "threshold": 0.5, "min_reps": 2, "max_reps": 3
	}`
	resp, body := postQuery(t, ts, spec, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	recs := records(t, body)
	final := recs[len(recs)-1]
	if final["type"] != "result" {
		t.Fatalf("final record = %v", final)
	}
	// The resample reuses entries the threshold query will then hit: a
	// follow-up on the same scenario pays zero further builds.
	builds := srv.Arena().Builds()
	_, _ = postQuery(t, ts, querySpec, "")
	if got := srv.Arena().Builds(); got != builds {
		t.Fatalf("same-scenario follow-up paid %d new builds", got-builds)
	}
	// And repeating the resample query is byte-stable from the first warm
	// repeat on (memoized warm-engine analysis).
	_, warm1 := postQuery(t, ts, spec, "")
	_, warm2 := postQuery(t, ts, spec, "")
	if warm1 != warm2 {
		t.Fatalf("resample repeats unstable:\n%s\n%s", warm1, warm2)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []string{
		`{`, // malformed JSON
		`{"scenario": {"scale": "tiny"}, "metric": "bogus", "threshold": 1}`,
		`{"scenario": {"scale": "tiny"}, "threshold": 1, "precision": 0.1}`,
		`{"scenario": {"scale": "tiny"}}`,                                     // no rule
		`{"scenario": {"scale": "tiny"}, "threshold": 1}`,                     // churn metric, no churn window
		`{"scenario": {"scale": "nope"}, "threshold": 1}`,                     // unknown scale
		`{"scenario": {"scale": "tiny"}, "threshold": 1, "max_reps": 10000}`,  // over cap
		`{"scenario": {"scale": "tiny"}, "surprise": true, "threshold": 1}`,   // unknown field
		`{"scenario": {"scale": "tiny", "churn": "x"}, "threshold": 1}`,       // bad churn
		`{"scenario": {"scale": "tiny", "churn": "1/1"}, "threshold": 1,
		  "metric": "final_scc", "resample": {"fraction": 0.5}}`, // resample on wrong metric
	}
	for i, spec := range bad {
		resp, body := postQuery(t, ts, spec, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %d: status %d, want 400 (%s)", i, resp.StatusCode, body)
		}
		recs := records(t, body)
		if recs[0]["type"] != "error" || recs[0]["error"] == "" {
			t.Errorf("spec %d: error record = %v", i, recs[0])
		}
	}
}

func TestArenaAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	postQuery(t, ts, querySpec, "")
	resp, err = http.Get(ts.URL + "/v1/arena")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ArenaStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Entries < 2 || st.Builds < 2 || st.BudgetBytes != DefaultArenaBudget {
		t.Fatalf("arena stats = %+v", st)
	}
	if len(st.Runs) != st.Entries {
		t.Fatalf("stats list %d runs for %d entries", len(st.Runs), st.Entries)
	}
	for _, run := range st.Runs {
		if run.SizeBytes <= 0 || run.FinalN <= 0 {
			t.Fatalf("entry stats = %+v", run)
		}
	}
}

func TestQueryDeterministicAcrossServerJobs(t *testing.T) {
	// Two servers with different replication parallelism produce the same
	// cold-query body, rep records included: adaptive determinism carried
	// through the HTTP layer.
	run := func(jobs int) string {
		srv := NewServer(Options{Jobs: jobs})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		_, body := postQuery(t, ts, querySpec, "")
		return body
	}
	if b1, b8 := run(1), run(8); b1 != b8 {
		t.Fatalf("cold bodies differ across jobs:\n%s\n%s", b1, b8)
	}
}
