package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
)

// jsonFloat is a float64 that encodes NaN as null (the CI half-width of
// a single replication has no value; encoding/json rejects NaN).
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// repRecord is one consumed replication on the wire: the rep's metric
// value and the running statistics over the consumed prefix. Identical
// under any server -jobs setting.
type repRecord struct {
	Type    string    `json:"type"` // "rep"
	Rep     int       `json:"rep"`
	Seed    int64     `json:"seed"`
	Value   jsonFloat `json:"value"`
	Reps    int       `json:"reps"`
	Mean    jsonFloat `json:"mean"`
	CI95    jsonFloat `json:"ci95"`
	Decided bool      `json:"decided"`
	Verdict string    `json:"verdict"`
	Cached  bool      `json:"cached"`
}

// resultRecord is the query's final verdict. Every field is
// deterministic for a spec and a given arena temperature — wall-clock
// and speculative-execution counts are deliberately absent — so warmed
// repeat queries golden-compare byte for byte.
type resultRecord struct {
	Type        string      `json:"type"` // "result"
	Name        string      `json:"name"`
	Metric      string      `json:"metric"`
	Verdict     string      `json:"verdict"`
	Reps        int         `json:"reps"`
	Values      []jsonFloat `json:"values"`
	Mean        jsonFloat   `json:"mean"`
	CI95        jsonFloat   `json:"ci95"`
	Threshold   *float64    `json:"threshold,omitempty"`
	Precision   *float64    `json:"precision,omitempty"`
	ArenaHits   int         `json:"arena_hits"`
	ArenaMisses int         `json:"arena_misses"`
}

type errorRecord struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// streamWriter emits query records as NDJSON (default) or Server-Sent
// Events (Accept: text/event-stream), flushing after every record so
// clients see replication progress live. A write failure (client gone)
// silences subsequent writes; the query itself runs to completion and
// warms the arena either way.
type streamWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	sse     bool
	started bool
	dead    bool
}

func newStreamWriter(w http.ResponseWriter, r *http.Request) *streamWriter {
	sw := &streamWriter{w: w}
	sw.flusher, _ = w.(http.Flusher)
	sw.sse = strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	return sw
}

// Started reports whether any record (and therefore the 200 status) has
// gone out. While false, the handler still owns the status line and can
// answer a failure with a real HTTP error code.
func (sw *streamWriter) Started() bool { return sw.started }

func (sw *streamWriter) write(event string, v any) {
	if sw.dead {
		return
	}
	if !sw.started {
		sw.started = true
		if sw.sse {
			sw.w.Header().Set("Content-Type", "text/event-stream")
			sw.w.Header().Set("Cache-Control", "no-cache")
		} else {
			sw.w.Header().Set("Content-Type", "application/x-ndjson")
		}
		sw.w.WriteHeader(http.StatusOK)
	}
	data, err := json.Marshal(v)
	if err != nil {
		sw.dead = true
		return
	}
	if sw.sse {
		_, err = sw.w.Write([]byte("event: " + event + "\ndata: " + string(data) + "\n\n"))
	} else {
		_, err = sw.w.Write(append(data, '\n'))
	}
	if err != nil {
		sw.dead = true
		return
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}
