package simnet

import "fmt"

// LossLevel names one of the paper's Table 1 message-loss scenarios.
type LossLevel int

// The four Table 1 scenarios. One-way probabilities are chosen so that
// two-way (request/response) communication fails with 0%, 5%, 25%, and 50%
// probability respectively.
const (
	LossNone LossLevel = iota + 1
	LossLow
	LossMedium
	LossHigh
)

// oneWayLoss maps each level to the paper's one-way loss probability.
var oneWayLoss = map[LossLevel]float64{
	LossNone:   0.0,
	LossLow:    0.025,
	LossMedium: 0.134,
	LossHigh:   0.293,
}

// String implements fmt.Stringer.
func (l LossLevel) String() string {
	switch l {
	case LossNone:
		return "none"
	case LossLow:
		return "low"
	case LossMedium:
		return "medium"
	case LossHigh:
		return "high"
	default:
		return fmt.Sprintf("LossLevel(%d)", int(l))
	}
}

// ParseLossLevel converts a scenario name to a LossLevel.
func ParseLossLevel(s string) (LossLevel, error) {
	switch s {
	case "none":
		return LossNone, nil
	case "low":
		return LossLow, nil
	case "medium", "med":
		return LossMedium, nil
	case "high":
		return LossHigh, nil
	default:
		return 0, fmt.Errorf("simnet: unknown loss level %q", s)
	}
}

// OneWayLoss returns the scenario's one-way loss probability (Table 1,
// column Ploss(1-way)).
func (l LossLevel) OneWayLoss() float64 {
	p, ok := oneWayLoss[l]
	if !ok {
		return 0
	}
	return p
}

// TwoWayLoss returns the scenario's request/response failure probability
// (Table 1, column Ploss(2-way)).
func (l LossLevel) TwoWayLoss() float64 {
	return TwoWayFailure(l.OneWayLoss())
}

// Model returns the LossModel implementing the scenario.
func (l LossLevel) Model() LossModel {
	if l == LossNone || l == 0 {
		return NoLoss{}
	}
	return UniformLoss{P: l.OneWayLoss()}
}

// Levels returns all four scenarios in Table 1 order.
func Levels() []LossLevel {
	return []LossLevel{LossNone, LossLow, LossMedium, LossHigh}
}
