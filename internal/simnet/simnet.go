// Package simnet simulates a message-passing network on top of the
// discrete-event kernel: hosts attach under integer addresses, messages
// incur configurable latency, and a loss model drops messages one-way with
// a configurable probability. It plays the role of PeerSim's transport
// layer in the paper, including the Table 1 message-loss scenarios.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"kadre/internal/eventsim"
)

// Addr is a network address. The paper derives Kademlia identifiers from
// network addresses by hashing; simnet keeps addresses opaque integers.
type Addr uint64

// Handler receives messages delivered to an attached host.
type Handler interface {
	// Deliver is invoked by the network when a message arrives. It runs on
	// the simulation goroutine; implementations must not block.
	Deliver(from Addr, payload any)
}

// Stats counts network-level message outcomes.
type Stats struct {
	Sent      uint64 // messages handed to the network
	Delivered uint64 // messages delivered to an attached handler
	Lost      uint64 // messages dropped by the loss model
	NoRoute   uint64 // messages whose destination was detached at delivery
}

// LatencyModel determines per-message one-way delay.
type LatencyModel interface {
	Delay(r *rand.Rand, from, to Addr) time.Duration
}

// ConstantLatency delays every message by D.
type ConstantLatency struct{ D time.Duration }

// Delay implements LatencyModel.
func (c ConstantLatency) Delay(*rand.Rand, Addr, Addr) time.Duration { return c.D }

// UniformLatency delays each message by a uniform draw from [Min, Max].
type UniformLatency struct{ Min, Max time.Duration }

// Delay implements LatencyModel.
func (u UniformLatency) Delay(r *rand.Rand, _, _ Addr) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)+1))
}

// LossModel decides whether a single one-way message transmission is lost.
type LossModel interface {
	Drop(r *rand.Rand, from, to Addr) bool
}

// NoLoss delivers every message.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*rand.Rand, Addr, Addr) bool { return false }

// UniformLoss drops each one-way message independently with probability P.
// The paper's Table 1 scenarios are uniform one-way losses chosen so the
// two-way (request/response) failure probability hits a target:
// P2way = 1 - (1-P)^2.
type UniformLoss struct{ P float64 }

// Drop implements LossModel.
func (u UniformLoss) Drop(r *rand.Rand, _, _ Addr) bool {
	return u.P > 0 && r.Float64() < u.P
}

// TwoWayFailure returns the probability that a request/response exchange
// fails under one-way loss probability p: 1 - (1-p)^2.
func TwoWayFailure(p float64) float64 { return 1 - (1-p)*(1-p) }

// Channel identifies a directed communication channel.
type Channel struct{ From, To Addr }

// ChannelLoss overlays per-channel disturbance probabilities on a base
// model, modelling the system-model attacker who disturbs specific
// communication channels. A message is dropped if either the base model or
// the channel disturbance drops it.
type ChannelLoss struct {
	Base      LossModel
	Disturbed map[Channel]float64
}

// Drop implements LossModel.
func (c ChannelLoss) Drop(r *rand.Rand, from, to Addr) bool {
	if c.Base != nil && c.Base.Drop(r, from, to) {
		return true
	}
	if p, ok := c.Disturbed[Channel{From: from, To: to}]; ok && r.Float64() < p {
		return true
	}
	return false
}

// Config parameterizes a Network. Zero-value fields fall back to a constant
// 50 ms latency and no loss.
type Config struct {
	Latency LatencyModel
	Loss    LossModel
}

// Network is a simulated message-passing network. It is driven entirely by
// the simulation goroutine and is not safe for concurrent use.
type Network struct {
	sim     *eventsim.Simulator
	latency LatencyModel
	loss    LossModel
	hosts   map[Addr]Handler
	stats   Stats
}

// New builds a network on the given simulator.
func New(sim *eventsim.Simulator, cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency{D: 50 * time.Millisecond}
	}
	if cfg.Loss == nil {
		cfg.Loss = NoLoss{}
	}
	return &Network{
		sim:     sim,
		latency: cfg.Latency,
		loss:    cfg.Loss,
		hosts:   make(map[Addr]Handler),
	}
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *eventsim.Simulator { return n.sim }

// Stats returns a copy of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// SetLoss replaces the loss model. Experiments use this to begin or end a
// disturbance at a phase boundary.
func (n *Network) SetLoss(m LossModel) {
	if m == nil {
		m = NoLoss{}
	}
	n.loss = m
}

// Attach registers a handler under an address. Attaching an address twice
// is an error: it would silently hijack traffic.
func (n *Network) Attach(addr Addr, h Handler) error {
	if h == nil {
		return fmt.Errorf("simnet: attach %d: nil handler", addr)
	}
	if _, ok := n.hosts[addr]; ok {
		return fmt.Errorf("simnet: attach %d: address already attached", addr)
	}
	n.hosts[addr] = h
	return nil
}

// Detach removes the handler for an address, modelling a node crash or
// departure. Messages in flight to the address are dropped at delivery
// time. Detaching an unknown address is a no-op.
func (n *Network) Detach(addr Addr) {
	delete(n.hosts, addr)
}

// Attached reports whether an address currently has a handler.
func (n *Network) Attached(addr Addr) bool {
	_, ok := n.hosts[addr]
	return ok
}

// NumAttached returns the number of attached hosts.
func (n *Network) NumAttached() int { return len(n.hosts) }

// Send transmits payload from one address to another, subject to the loss
// and latency models. Delivery, if it happens, is a future simulation
// event. Send never blocks and reports nothing to the sender: like UDP,
// loss is only observable through missing responses.
func (n *Network) Send(from, to Addr, payload any) {
	n.stats.Sent++
	if n.loss.Drop(n.sim.Rand(), from, to) {
		n.stats.Lost++
		return
	}
	delay := n.latency.Delay(n.sim.Rand(), from, to)
	n.sim.MustSchedule(delay, func() {
		h, ok := n.hosts[to]
		if !ok {
			n.stats.NoRoute++
			return
		}
		n.stats.Delivered++
		h.Deliver(from, payload)
	})
}
