package simnet

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"kadre/internal/eventsim"
)

type recorder struct {
	msgs []recorded
}

type recorded struct {
	from    Addr
	payload any
	at      time.Duration
}

type recHandler struct {
	rec *recorder
	sim *eventsim.Simulator
}

func (h *recHandler) Deliver(from Addr, payload any) {
	h.rec.msgs = append(h.rec.msgs, recorded{from: from, payload: payload, at: h.sim.Now()})
}

func newNet(t *testing.T, cfg Config) (*eventsim.Simulator, *Network) {
	t.Helper()
	sim := eventsim.New(1)
	return sim, New(sim, cfg)
}

func TestDeliveryWithLatency(t *testing.T) {
	sim, net := newNet(t, Config{Latency: ConstantLatency{D: 30 * time.Millisecond}})
	rec := &recorder{}
	if err := net.Attach(2, &recHandler{rec: rec, sim: sim}); err != nil {
		t.Fatal(err)
	}
	net.Send(1, 2, "hello")
	sim.Run()
	if len(rec.msgs) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(rec.msgs))
	}
	m := rec.msgs[0]
	if m.from != 1 || m.payload != "hello" || m.at != 30*time.Millisecond {
		t.Fatalf("got %+v", m)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAttachErrors(t *testing.T) {
	_, net := newNet(t, Config{})
	rec := &recorder{}
	h := &recHandler{rec: rec}
	if err := net.Attach(1, nil); err == nil {
		t.Error("nil handler should fail")
	}
	if err := net.Attach(1, h); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(1, h); err == nil {
		t.Error("double attach should fail")
	}
}

func TestDetachDropsInFlight(t *testing.T) {
	sim, net := newNet(t, Config{Latency: ConstantLatency{D: time.Second}})
	rec := &recorder{}
	if err := net.Attach(2, &recHandler{rec: rec, sim: sim}); err != nil {
		t.Fatal(err)
	}
	net.Send(1, 2, "x")
	net.Detach(2)
	sim.Run()
	if len(rec.msgs) != 0 {
		t.Fatal("message delivered to detached host")
	}
	if st := net.Stats(); st.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", st.NoRoute)
	}
	if net.Attached(2) {
		t.Error("host still attached after Detach")
	}
}

func TestSendToUnknownAddress(t *testing.T) {
	sim, net := newNet(t, Config{})
	net.Send(1, 99, "x")
	sim.Run()
	if st := net.Stats(); st.NoRoute != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := UniformLatency{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := m.Delay(r, 1, 2)
		if d < m.Min || d > m.Max {
			t.Fatalf("delay %v outside [%v, %v]", d, m.Min, m.Max)
		}
	}
	degenerate := UniformLatency{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if d := degenerate.Delay(r, 1, 2); d != 5*time.Millisecond {
		t.Fatalf("degenerate uniform = %v", d)
	}
}

func TestUniformLossRate(t *testing.T) {
	sim, net := newNet(t, Config{Loss: UniformLoss{P: 0.25}, Latency: ConstantLatency{}})
	rec := &recorder{}
	if err := net.Attach(2, &recHandler{rec: rec, sim: sim}); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		net.Send(1, 2, i)
	}
	sim.Run()
	got := float64(net.Stats().Lost) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("observed loss rate %.4f, want ~0.25", got)
	}
	if int(net.Stats().Delivered) != len(rec.msgs) {
		t.Fatal("delivered counter does not match handler invocations")
	}
}

func TestChannelLoss(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := ChannelLoss{
		Base:      NoLoss{},
		Disturbed: map[Channel]float64{{From: 1, To: 2}: 1.0},
	}
	if !m.Drop(r, 1, 2) {
		t.Error("fully disturbed channel should drop")
	}
	if m.Drop(r, 2, 1) {
		t.Error("reverse direction should not be disturbed")
	}
	if m.Drop(r, 3, 4) {
		t.Error("unrelated channel should not drop")
	}
	withBase := ChannelLoss{Base: UniformLoss{P: 1.0}}
	if !withBase.Drop(r, 5, 6) {
		t.Error("base model drop should propagate")
	}
}

func TestTable1LossScenarios(t *testing.T) {
	// Table 1 of the paper: one-way and two-way loss probabilities.
	tests := []struct {
		level     LossLevel
		oneWay    float64
		twoWay    float64
		tolerance float64
	}{
		{LossNone, 0.0, 0.0, 0},
		{LossLow, 0.025, 0.05, 0.001},
		{LossMedium, 0.134, 0.25, 0.002},
		{LossHigh, 0.293, 0.50, 0.001},
	}
	for _, tt := range tests {
		t.Run(tt.level.String(), func(t *testing.T) {
			if got := tt.level.OneWayLoss(); got != tt.oneWay {
				t.Errorf("OneWayLoss = %v, want %v", got, tt.oneWay)
			}
			if got := tt.level.TwoWayLoss(); math.Abs(got-tt.twoWay) > tt.tolerance {
				t.Errorf("TwoWayLoss = %v, want ~%v", got, tt.twoWay)
			}
		})
	}
}

func TestParseLossLevel(t *testing.T) {
	for _, l := range Levels() {
		got, err := ParseLossLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLossLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLossLevel("bogus"); err == nil {
		t.Error("expected error for unknown level")
	}
	if l, err := ParseLossLevel("med"); err != nil || l != LossMedium {
		t.Error("'med' should parse as medium")
	}
}

func TestLossLevelModel(t *testing.T) {
	if _, ok := LossNone.Model().(NoLoss); !ok {
		t.Error("LossNone should use NoLoss model")
	}
	m, ok := LossHigh.Model().(UniformLoss)
	if !ok || m.P != 0.293 {
		t.Errorf("LossHigh model = %#v", m)
	}
}

func TestSetLoss(t *testing.T) {
	sim, net := newNet(t, Config{Latency: ConstantLatency{}})
	rec := &recorder{}
	if err := net.Attach(2, &recHandler{rec: rec, sim: sim}); err != nil {
		t.Fatal(err)
	}
	net.SetLoss(UniformLoss{P: 1.0})
	net.Send(1, 2, "dropped")
	net.SetLoss(nil) // resets to NoLoss
	net.Send(1, 2, "kept")
	sim.Run()
	if len(rec.msgs) != 1 || rec.msgs[0].payload != "kept" {
		t.Fatalf("messages = %+v", rec.msgs)
	}
}

func TestDeliveryOrderPreservedUnderConstantLatency(t *testing.T) {
	sim, net := newNet(t, Config{Latency: ConstantLatency{D: 10 * time.Millisecond}})
	rec := &recorder{}
	if err := net.Attach(2, &recHandler{rec: rec, sim: sim}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		net.Send(1, 2, i)
	}
	sim.Run()
	for i, m := range rec.msgs {
		if m.payload != i {
			t.Fatalf("message %d arrived out of order: %v", i, m.payload)
		}
	}
}

func TestTwoWayFailureFormula(t *testing.T) {
	if got := TwoWayFailure(0); got != 0 {
		t.Errorf("TwoWayFailure(0) = %v", got)
	}
	if got := TwoWayFailure(1); got != 1 {
		t.Errorf("TwoWayFailure(1) = %v", got)
	}
	if got := TwoWayFailure(0.5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("TwoWayFailure(0.5) = %v, want 0.75", got)
	}
}
