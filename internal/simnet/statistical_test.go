package simnet

import (
	"math"
	"math/rand"
	"testing"
)

// Statistical validation of every Table 1 level against its published
// two-way failure probability, the same check BenchmarkTable1MessageLoss
// reports as metrics.
func TestTwoWayFailureRatesAllLevels(t *testing.T) {
	const trials = 200000
	for _, level := range Levels() {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(level)))
			model := level.Model()
			failures := 0
			for i := 0; i < trials; i++ {
				if model.Drop(r, 1, 2) || model.Drop(r, 2, 1) {
					failures++
				}
			}
			got := float64(failures) / trials
			want := level.TwoWayLoss()
			if math.Abs(got-want) > 0.005 {
				t.Fatalf("measured two-way failure %.4f, want %.4f", got, want)
			}
		})
	}
}

func TestUniformLatencyMeanCentered(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	m := UniformLatency{Min: 10_000_000, Max: 100_000_000} // 10-100ms in ns
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(m.Delay(r, 1, 2))
	}
	mean := sum / n
	want := float64(m.Min+m.Max) / 2
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("mean latency %.0f, want ~%.0f", mean, want)
	}
}
