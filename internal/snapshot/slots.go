package snapshot

import (
	"fmt"
	"slices"
	"time"

	"kadre/internal/graph"
	"kadre/internal/id"
	"kadre/internal/kademlia"
	"kadre/internal/simnet"
)

// SlotMap assigns stable vertex slots to population members across
// captures: a member keeps its slot for its whole lifetime, a departed
// member's slot is tombstoned (vacant), and joins recycle the lowest
// vacant slot before new slots are appended. Because slots are stable,
// two consecutive captures live in the same vertex space whenever the
// slot count did not grow — which is what lets the connectivity engine
// rebind incrementally across joins, leaves, and strikes instead of
// renumbering the world per snapshot.
//
// The assignment is deterministic: members are processed in the caller's
// canonical order and vacant slots are recycled smallest-first, so a
// replayed run reproduces the exact slot layout.
//
// The key type identifies a member; the simulation uses simnet.Addr
// (unique and never reused), the churn oracle plain ints.
type SlotMap[K comparable] struct {
	slot     map[K]int
	occupant []K
	vacant   []bool
	free     []int // vacant slots, kept sorted ascending
	seen     map[K]bool
}

// Len returns the slot count (active plus vacant).
func (m *SlotMap[K]) Len() int { return len(m.occupant) }

// Live returns the number of occupied slots.
func (m *SlotMap[K]) Live() int { return len(m.slot) }

// Vacant returns the number of tombstoned slots.
func (m *SlotMap[K]) Vacant() int { return len(m.free) }

// Utilization returns Live/Len — the occupied fraction of the slot
// table (1 for an empty table). Long departures-heavy runs drive it
// down; Compact restores it to 1.
func (m *SlotMap[K]) Utilization() float64 {
	if len(m.occupant) == 0 {
		return 1
	}
	return float64(len(m.slot)) / float64(len(m.occupant))
}

// Reserve pre-sizes the internal tables for a peak population of n
// members, so a setup-phase join burst assigns slots without reallocating
// mid-burst. Only useful before the first Assign (maps cannot be resized
// later); afterwards it still pre-grows the slices.
func (m *SlotMap[K]) Reserve(n int) {
	if n <= 0 {
		return
	}
	if m.slot == nil {
		m.slot = make(map[K]int, n)
		m.seen = make(map[K]bool, n)
	}
	if cap(m.occupant) < n {
		occ := make([]K, len(m.occupant), n)
		copy(occ, m.occupant)
		m.occupant = occ
	}
	if cap(m.vacant) < n {
		vac := make([]bool, len(m.vacant), n)
		copy(vac, m.vacant)
		m.vacant = vac
	}
	if cap(m.free) < n {
		free := make([]int, len(m.free), n)
		copy(free, m.free)
		m.free = free
	}
}

// Compact re-densifies the slot table: live occupants are renumbered to
// [0, Live) preserving their relative slot order, tombstones are
// dropped, and Len shrinks to Live. It returns the remap (old slot ->
// new slot, -1 for vacant slots), or nil when the table has no
// tombstones and nothing changed.
//
// Compaction renumbers the vertex space, so every consumer holding
// slot-coordinate state — bound engines, diff bases, attack recon —
// must treat the next capture as a fresh vertex space. The
// IncrementalBinder does this automatically: the post-compaction
// capture has a smaller slot count, which forces its full-bind path.
// Analytical results are unaffected: the engine answers in canonical
// compacted rank numbering, which is invariant under slot renumbering
// (the churn oracle pins this across compaction events).
func (m *SlotMap[K]) Compact() []int {
	if len(m.free) == 0 {
		return nil
	}
	remap := make([]int, len(m.occupant))
	n := 0
	for s, k := range m.occupant {
		if m.vacant[s] {
			remap[s] = -1
			continue
		}
		remap[s] = n
		m.occupant[n] = k
		m.slot[k] = n
		n++
	}
	m.occupant = m.occupant[:n]
	m.vacant = m.vacant[:n]
	for i := range m.vacant {
		m.vacant[i] = false
	}
	m.free = m.free[:0]
	return remap
}

// Assign updates the slot table for the given live members (in canonical
// capture order) and appends their slots, in that same order, to order —
// the rank-to-slot compaction map translating stable slots back to the
// canonical dense numbering. Members that disappeared since the last
// call have their slots tombstoned; new members claim the lowest vacant
// slot, or a fresh one when none is free.
func (m *SlotMap[K]) Assign(live []K, order []int) []int {
	if m.slot == nil {
		m.slot = make(map[K]int)
		m.seen = make(map[K]bool)
	}
	clear(m.seen)
	for _, k := range live {
		m.seen[k] = true
	}
	freed := false
	for s, k := range m.occupant {
		if !m.vacant[s] && !m.seen[k] {
			m.vacant[s] = true
			delete(m.slot, k)
			m.free = append(m.free, s)
			freed = true
		}
	}
	if freed {
		slices.Sort(m.free)
	}
	for _, k := range live {
		s, ok := m.slot[k]
		if !ok {
			if len(m.free) > 0 {
				s = m.free[0]
				m.free = m.free[1:]
			} else {
				s = len(m.occupant)
				m.occupant = append(m.occupant, k)
				m.vacant = append(m.vacant, false)
			}
			m.occupant[s] = k
			m.vacant[s] = false
			m.slot[k] = s
		}
		order = append(order, s)
	}
	return order
}

// SlotIndex is the population slot table keyed by network address, the
// stable node identity of the simulation (addresses are never reused).
type SlotIndex = SlotMap[simnet.Addr]

// BuildSlotGraph is the generic core of a stable-slot capture over any
// population representation: it assigns slots for the live members (in
// canonical order), builds the slot-space graph from the emitted
// directed edges — dropping any edge with a non-live endpoint or a
// self-loop, exactly like CaptureSlots drops routing-table entries to
// departed nodes — and returns the graph with the rank->slot compaction
// map. The churn oracle and the membership benchmarks capture through
// this helper over plain ids, so their traces cannot drift from the
// production capture recipe.
func BuildSlotGraph[K comparable](m *SlotMap[K], live []K, edges func(emit func(u, v K))) (*graph.Digraph, []int) {
	order := m.Assign(live, nil)
	slotOf := make(map[K]int, len(live))
	for i, k := range live {
		slotOf[k] = order[i]
	}
	g := graph.NewDigraph(m.Len())
	edges(func(u, v K) {
		su, uok := slotOf[u]
		sv, vok := slotOf[v]
		if uok && vok && su != sv {
			g.AddEdge(su, sv)
		}
	})
	return g, order
}

// SlotSnapshot is a stable-slot capture of the network: one graph vertex
// per population slot (vacant slots are isolated), plus the compaction
// map back to the canonical dense numbering that plain Capture produces.
// The per-node metadata is stored in dense rank order, so IDs[r] and
// Addrs[r] describe the node that Capture would have put at vertex r.
type SlotSnapshot struct {
	// Time is the virtual capture time.
	Time time.Duration
	// Graph has one vertex per slot; edges only ever join active slots.
	Graph *graph.Digraph
	// Order maps dense rank -> slot, listing the active slots in
	// canonical capture order (live nodes in join order). len(Order) is
	// the live node count.
	Order []int
	// IDs and Addrs identify the live nodes by dense rank.
	IDs   []id.ID
	Addrs []simnet.Addr
}

// N returns the number of live nodes in the snapshot.
func (s *SlotSnapshot) N() int { return len(s.Order) }

// Slots returns the slot-space vertex count (active plus vacant).
func (s *SlotSnapshot) Slots() int { return s.Graph.N() }

// LargestSCCFraction returns |largest SCC| / live nodes. Vacant slots
// are singleton components and never outweigh the live largest, so the
// value equals the canonical dense capture's.
func (s *SlotSnapshot) LargestSCCFraction() float64 {
	if s.N() == 0 {
		return 0
	}
	return float64(s.Graph.LargestSCC()) / float64(s.N())
}

// Dense converts the slot capture to the canonical compacted Snapshot —
// byte-for-byte what Capture would have produced at the same instant —
// for consumers that persist or post-process snapshots.
func (s *SlotSnapshot) Dense() *Snapshot {
	rank := make(map[int]int, len(s.Order))
	for r, slot := range s.Order {
		rank[slot] = r
	}
	out := &Snapshot{
		Time:  s.Time,
		IDs:   slices.Clone(s.IDs),
		Addrs: slices.Clone(s.Addrs),
		Graph: graph.NewDigraph(s.N()),
	}
	for _, e := range s.Graph.Edges() {
		out.Graph.AddEdge(rank[e.U], rank[e.V])
	}
	return out
}

// CaptureSlots builds a stable-slot snapshot from the live nodes in the
// given slice, updating idx: departed nodes tombstone their slots, new
// live nodes claim recycled (or fresh) slots. Like Capture it excludes
// departed nodes and routing-table entries pointing at them; unlike
// Capture, vertex numbers are persistent slots rather than a per-capture
// compaction, so consecutive captures with unchanged slot count are
// diffable and the engine can rebind incrementally across membership
// changes. Order carries the canonical compaction for reporting.
func CaptureSlots(now time.Duration, nodes []*kademlia.Node, idx *SlotIndex) *SlotSnapshot {
	live := make([]*kademlia.Node, 0, len(nodes))
	addrs := make([]simnet.Addr, 0, len(nodes))
	for _, n := range nodes {
		if n.Running() {
			live = append(live, n)
			addrs = append(addrs, n.Addr())
		}
	}
	order := idx.Assign(addrs, make([]int, 0, len(live)))
	s := &SlotSnapshot{
		Time:  now,
		Order: order,
		IDs:   make([]id.ID, len(live)),
		Addrs: addrs,
		Graph: graph.NewDigraph(idx.Len()),
	}
	slotOf := make(map[id.ID]int, len(live))
	for r, n := range live {
		s.IDs[r] = n.ID()
		slotOf[n.ID()] = order[r]
	}
	for r, n := range live {
		u := order[r]
		for _, c := range n.Table().Contacts() {
			if v, ok := slotOf[c.ID]; ok && v != u {
				s.Graph.AddEdge(u, v)
			}
		}
	}
	if len(order) != len(live) {
		panic(fmt.Sprintf("snapshot: slot assignment produced %d slots for %d live nodes", len(order), len(live)))
	}
	return s
}
