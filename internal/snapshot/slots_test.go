package snapshot

import (
	"testing"
)

func TestSlotMapStableAcrossChurn(t *testing.T) {
	var m SlotMap[int]
	order := m.Assign([]int{10, 11, 12, 13}, nil)
	if m.Len() != 4 {
		t.Fatalf("slot count %d, want 4", m.Len())
	}
	want := []int{0, 1, 2, 3}
	if !intSliceEq(order, want) {
		t.Fatalf("initial order %v, want %v", order, want)
	}
	// 11 leaves: its slot goes vacant, everyone else keeps theirs.
	order = m.Assign([]int{10, 12, 13}, nil)
	if !intSliceEq(order, []int{0, 2, 3}) {
		t.Fatalf("post-leave order %v, want [0 2 3]", order)
	}
	if m.Len() != 4 {
		t.Fatalf("slot count grew to %d on a leave", m.Len())
	}
	// 14 joins: it recycles the lowest vacant slot (11's old slot 1) and
	// ranks LAST in canonical order while holding a middle slot.
	order = m.Assign([]int{10, 12, 13, 14}, nil)
	if !intSliceEq(order, []int{0, 2, 3, 1}) {
		t.Fatalf("post-join order %v, want [0 2 3 1]", order)
	}
	if m.Len() != 4 {
		t.Fatalf("join should recycle, slot count %d", m.Len())
	}
	// A second join with no vacancy appends a new slot.
	order = m.Assign([]int{10, 12, 13, 14, 15}, nil)
	if !intSliceEq(order, []int{0, 2, 3, 1, 4}) || m.Len() != 5 {
		t.Fatalf("append join: order %v slots %d", order, m.Len())
	}
}

func TestSlotMapRecyclesLowestFirst(t *testing.T) {
	var m SlotMap[int]
	m.Assign([]int{1, 2, 3, 4, 5}, nil)
	m.Assign([]int{1, 3, 5}, nil)                // slots 1 and 3 vacant
	order := m.Assign([]int{1, 3, 5, 6, 7}, nil) // 6 -> slot 1, 7 -> slot 3
	if !intSliceEq(order, []int{0, 2, 4, 1, 3}) {
		t.Fatalf("order %v, want [0 2 4 1 3]", order)
	}
}

// TestCaptureSlotsDenseMatchesCapture pins the compaction-map contract:
// Dense() of a slot capture is exactly what the canonical Capture
// produces at the same instant — same vertex numbering, metadata, and
// edges — including after leaves and recycled joins have scrambled the
// slot order.
func TestCaptureSlotsDenseMatchesCapture(t *testing.T) {
	sim, nodes := buildNetwork(t, 15)
	var idx SlotIndex
	check := func(stage string) {
		t.Helper()
		ss := CaptureSlots(sim.Now(), nodes, &idx)
		want := Capture(sim.Now(), nodes)
		got := ss.Dense()
		if got.N() != want.N() || got.Graph.M() != want.Graph.M() {
			t.Fatalf("%s: dense %d/%d, want %d/%d", stage, got.N(), got.Graph.M(), want.N(), want.Graph.M())
		}
		for i := range want.IDs {
			if !got.IDs[i].Equal(want.IDs[i]) || got.Addrs[i] != want.Addrs[i] {
				t.Fatalf("%s: vertex %d metadata mismatch", stage, i)
			}
		}
		if !got.Graph.Equal(want.Graph) {
			t.Fatalf("%s: dense graph differs from canonical capture", stage)
		}
		if frac := ss.LargestSCCFraction(); frac != want.Graph.LargestSCCFraction() {
			t.Fatalf("%s: SCC fraction %v != dense %v", stage, frac, want.Graph.LargestSCCFraction())
		}
		if ss.Graph.SymmetryRatio() != want.Graph.SymmetryRatio() {
			t.Fatalf("%s: symmetry ratio differs between slot and dense graphs", stage)
		}
	}
	check("initial")
	nodes[3].Leave()
	nodes[9].Leave()
	check("after leaves")
	slots := idx.Len()
	check("stable")
	if idx.Len() != slots {
		t.Fatalf("slot count changed on a same-membership capture: %d -> %d", slots, idx.Len())
	}
}

func TestSlotMapCompact(t *testing.T) {
	var m SlotMap[int]
	m.Assign([]int{1, 2, 3, 4, 5, 6}, nil)
	m.Assign([]int{2, 4, 6}, nil) // slots 0, 2, 4 tombstoned
	if m.Len() != 6 || m.Live() != 3 || m.Vacant() != 3 {
		t.Fatalf("pre-compact len/live/vacant = %d/%d/%d, want 6/3/3", m.Len(), m.Live(), m.Vacant())
	}
	if u := m.Utilization(); u != 0.5 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
	remap := m.Compact()
	// Live slots 1, 3, 5 (members 2, 4, 6) renumber to 0, 1, 2 in slot order.
	if !intSliceEq(remap, []int{-1, 0, -1, 1, -1, 2}) {
		t.Fatalf("remap %v, want [-1 0 -1 1 -1 2]", remap)
	}
	if m.Len() != 3 || m.Live() != 3 || m.Vacant() != 0 || m.Utilization() != 1 {
		t.Fatalf("post-compact len/live/vacant = %d/%d/%d", m.Len(), m.Live(), m.Vacant())
	}
	// Members keep their (renumbered) slots on the next capture.
	order := m.Assign([]int{2, 4, 6}, nil)
	if !intSliceEq(order, []int{0, 1, 2}) {
		t.Fatalf("post-compact order %v, want [0 1 2]", order)
	}
	// A join after compaction appends — no stale tombstones to recycle.
	order = m.Assign([]int{2, 4, 6, 7}, nil)
	if !intSliceEq(order, []int{0, 1, 2, 3}) || m.Len() != 4 {
		t.Fatalf("post-compact join: order %v slots %d", order, m.Len())
	}
	// No tombstones: Compact is a no-op and says so.
	if remap := m.Compact(); remap != nil {
		t.Fatalf("no-op Compact returned remap %v", remap)
	}
}

func TestSlotMapCompactEmpty(t *testing.T) {
	var m SlotMap[int]
	if remap := m.Compact(); remap != nil {
		t.Fatalf("Compact of empty map returned %v", remap)
	}
	if u := m.Utilization(); u != 1 {
		t.Fatalf("empty utilization %v, want 1", u)
	}
}

// TestSlotMapReserveAbsorbsJoinBurst pins the pre-sizing contract: a
// Reserved slot table absorbs a setup-phase join burst up to the reserved
// population with only Reserve's own handful of allocations, where the
// unreserved table reallocates its maps and slices throughout the burst.
func TestSlotMapReserveAbsorbsJoinBurst(t *testing.T) {
	const peak = 512
	live := make([]int, 0, peak)
	order := make([]int, 0, peak)
	burst := func(m *SlotMap[int]) {
		live = live[:0]
		for wave := 0; len(live) < peak; wave++ {
			for i := 0; i < 64; i++ {
				live = append(live, len(live))
			}
			order = m.Assign(live, order[:0])
		}
	}
	reserved := testing.AllocsPerRun(5, func() {
		var m SlotMap[int]
		m.Reserve(peak)
		burst(&m)
	})
	unreserved := testing.AllocsPerRun(5, func() {
		var m SlotMap[int]
		burst(&m)
	})
	// Reserve itself allocates the two maps (a few allocations each at
	// this size) and three slices; the burst must add nothing on top.
	if reserved > 12 {
		t.Fatalf("reserved join burst allocated %.0f times, want <= 12", reserved)
	}
	if reserved >= unreserved {
		t.Fatalf("reserved burst allocated %.0f times, unreserved %.0f — pre-sizing buys nothing", reserved, unreserved)
	}
	// And pre-sizing must not change assignments.
	var a, b SlotMap[int]
	a.Reserve(peak)
	members := []int{3, 1, 4, 1, 5}
	if got, want := a.Assign([]int{3, 1, 4}, nil), b.Assign([]int{3, 1, 4}, nil); !intSliceEq(got, want) {
		t.Fatalf("reserved order %v != unreserved %v for %v", got, want, members)
	}
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
