package snapshot

import (
	"testing"
)

func TestSlotMapStableAcrossChurn(t *testing.T) {
	var m SlotMap[int]
	order := m.Assign([]int{10, 11, 12, 13}, nil)
	if m.Len() != 4 {
		t.Fatalf("slot count %d, want 4", m.Len())
	}
	want := []int{0, 1, 2, 3}
	if !intSliceEq(order, want) {
		t.Fatalf("initial order %v, want %v", order, want)
	}
	// 11 leaves: its slot goes vacant, everyone else keeps theirs.
	order = m.Assign([]int{10, 12, 13}, nil)
	if !intSliceEq(order, []int{0, 2, 3}) {
		t.Fatalf("post-leave order %v, want [0 2 3]", order)
	}
	if m.Len() != 4 {
		t.Fatalf("slot count grew to %d on a leave", m.Len())
	}
	// 14 joins: it recycles the lowest vacant slot (11's old slot 1) and
	// ranks LAST in canonical order while holding a middle slot.
	order = m.Assign([]int{10, 12, 13, 14}, nil)
	if !intSliceEq(order, []int{0, 2, 3, 1}) {
		t.Fatalf("post-join order %v, want [0 2 3 1]", order)
	}
	if m.Len() != 4 {
		t.Fatalf("join should recycle, slot count %d", m.Len())
	}
	// A second join with no vacancy appends a new slot.
	order = m.Assign([]int{10, 12, 13, 14, 15}, nil)
	if !intSliceEq(order, []int{0, 2, 3, 1, 4}) || m.Len() != 5 {
		t.Fatalf("append join: order %v slots %d", order, m.Len())
	}
}

func TestSlotMapRecyclesLowestFirst(t *testing.T) {
	var m SlotMap[int]
	m.Assign([]int{1, 2, 3, 4, 5}, nil)
	m.Assign([]int{1, 3, 5}, nil)                // slots 1 and 3 vacant
	order := m.Assign([]int{1, 3, 5, 6, 7}, nil) // 6 -> slot 1, 7 -> slot 3
	if !intSliceEq(order, []int{0, 2, 4, 1, 3}) {
		t.Fatalf("order %v, want [0 2 4 1 3]", order)
	}
}

// TestCaptureSlotsDenseMatchesCapture pins the compaction-map contract:
// Dense() of a slot capture is exactly what the canonical Capture
// produces at the same instant — same vertex numbering, metadata, and
// edges — including after leaves and recycled joins have scrambled the
// slot order.
func TestCaptureSlotsDenseMatchesCapture(t *testing.T) {
	sim, nodes := buildNetwork(t, 15)
	var idx SlotIndex
	check := func(stage string) {
		t.Helper()
		ss := CaptureSlots(sim.Now(), nodes, &idx)
		want := Capture(sim.Now(), nodes)
		got := ss.Dense()
		if got.N() != want.N() || got.Graph.M() != want.Graph.M() {
			t.Fatalf("%s: dense %d/%d, want %d/%d", stage, got.N(), got.Graph.M(), want.N(), want.Graph.M())
		}
		for i := range want.IDs {
			if !got.IDs[i].Equal(want.IDs[i]) || got.Addrs[i] != want.Addrs[i] {
				t.Fatalf("%s: vertex %d metadata mismatch", stage, i)
			}
		}
		if !got.Graph.Equal(want.Graph) {
			t.Fatalf("%s: dense graph differs from canonical capture", stage)
		}
		if frac := ss.LargestSCCFraction(); frac != want.Graph.LargestSCCFraction() {
			t.Fatalf("%s: SCC fraction %v != dense %v", stage, frac, want.Graph.LargestSCCFraction())
		}
		if ss.Graph.SymmetryRatio() != want.Graph.SymmetryRatio() {
			t.Fatalf("%s: symmetry ratio differs between slot and dense graphs", stage)
		}
	}
	check("initial")
	nodes[3].Leave()
	nodes[9].Leave()
	check("after leaves")
	slots := idx.Len()
	check("stable")
	if idx.Len() != slots {
		t.Fatalf("slot count changed on a same-membership capture: %d -> %d", slots, idx.Len())
	}
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
