// Package snapshot captures the routing tables of a running Kademlia
// network as a directed connectivity graph (§4.2 of the paper: vertex per
// node, edge (v, w) iff w appears in v's routing table) and persists
// snapshots to disk for offline connectivity analysis, mirroring the
// paper's interrupt-simulation-and-dump methodology.
package snapshot

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"kadre/internal/graph"
	"kadre/internal/id"
	"kadre/internal/kademlia"
	"kadre/internal/simnet"
)

// Snapshot is the connectivity graph of a network at one instant.
type Snapshot struct {
	// Time is the virtual capture time.
	Time time.Duration
	// IDs maps graph vertex index to node identifier.
	IDs []id.ID
	// Addrs maps graph vertex index to network address.
	Addrs []simnet.Addr
	// Graph holds one vertex per live node and one edge per live
	// routing-table entry.
	Graph *graph.Digraph
}

// Capture builds a snapshot from the live nodes in the given slice.
// Departed nodes are excluded, and routing-table entries pointing at
// departed nodes produce no edge: the connectivity graph describes the
// current network, not its memory of the past.
func Capture(now time.Duration, nodes []*kademlia.Node) *Snapshot {
	live := make([]*kademlia.Node, 0, len(nodes))
	for _, n := range nodes {
		if n.Running() {
			live = append(live, n)
		}
	}
	s := &Snapshot{
		Time:  now,
		IDs:   make([]id.ID, len(live)),
		Addrs: make([]simnet.Addr, len(live)),
		Graph: graph.NewDigraph(len(live)),
	}
	index := make(map[id.ID]int, len(live))
	for i, n := range live {
		s.IDs[i] = n.ID()
		s.Addrs[i] = n.Addr()
		index[n.ID()] = i
	}
	for i, n := range live {
		for _, c := range n.Table().Contacts() {
			if j, ok := index[c.ID]; ok && j != i {
				s.Graph.AddEdge(i, j)
			}
		}
	}
	return s
}

// N returns the number of live nodes in the snapshot.
func (s *Snapshot) N() int { return s.Graph.N() }

// jsonSnapshot is the serialized form.
type jsonSnapshot struct {
	TimeNS int64      `json:"time_ns"`
	Bits   int        `json:"bits"`
	Nodes  []jsonNode `json:"nodes"`
	Edges  [][2]int   `json:"edges"`
}

type jsonNode struct {
	ID   string `json:"id"`
	Addr uint64 `json:"addr"`
}

// WriteJSON serialises the snapshot.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	out := jsonSnapshot{TimeNS: int64(s.Time), Nodes: make([]jsonNode, len(s.IDs))}
	if len(s.IDs) > 0 {
		out.Bits = s.IDs[0].Bits()
	}
	for i := range s.IDs {
		out.Nodes[i] = jsonNode{ID: s.IDs[i].String(), Addr: uint64(s.Addrs[i])}
	}
	for _, e := range s.Graph.Edges() {
		out.Edges = append(out.Edges, [2]int{e.U, e.V})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("snapshot: write json: %w", err)
	}
	return nil
}

// ReadJSON parses a snapshot written by WriteJSON.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var in jsonSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("snapshot: read json: %w", err)
	}
	s := &Snapshot{
		Time:  time.Duration(in.TimeNS),
		IDs:   make([]id.ID, len(in.Nodes)),
		Addrs: make([]simnet.Addr, len(in.Nodes)),
		Graph: graph.NewDigraph(len(in.Nodes)),
	}
	for i, n := range in.Nodes {
		parsed, err := id.Parse(in.Bits, n.ID)
		if err != nil {
			return nil, fmt.Errorf("snapshot: node %d: %w", i, err)
		}
		s.IDs[i] = parsed
		s.Addrs[i] = simnet.Addr(n.Addr)
	}
	for _, e := range in.Edges {
		if e[0] < 0 || e[0] >= len(in.Nodes) || e[1] < 0 || e[1] >= len(in.Nodes) {
			return nil, fmt.Errorf("snapshot: edge %v out of range", e)
		}
		s.Graph.AddEdge(e[0], e[1])
	}
	return s, nil
}
