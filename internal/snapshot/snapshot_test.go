package snapshot

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kadre/internal/eventsim"
	"kadre/internal/kademlia"
	"kadre/internal/simnet"
)

func buildNetwork(t *testing.T, n int) (*eventsim.Simulator, []*kademlia.Node) {
	t.Helper()
	sim := eventsim.New(42)
	net := simnet.New(sim, simnet.Config{Latency: simnet.ConstantLatency{D: 20 * time.Millisecond}})
	cfg := kademlia.Config{Bits: 64, K: 5, Alpha: 3, StalenessLimit: 1}
	var nodes []*kademlia.Node
	for i := 0; i < n; i++ {
		node, err := kademlia.NewNode(cfg, simnet.Addr(i+1), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for i := 1; i < n; i++ {
		node := nodes[i]
		sim.MustSchedule(time.Duration(i)*time.Second, func() {
			_ = node.Join(nodes[0].Contact(), nil)
		})
	}
	sim.RunUntil(5 * time.Minute)
	return sim, nodes
}

func TestCaptureReflectsRoutingTables(t *testing.T) {
	sim, nodes := buildNetwork(t, 15)
	s := Capture(sim.Now(), nodes)
	if s.N() != 15 {
		t.Fatalf("snapshot has %d vertices, want 15", s.N())
	}
	if s.Graph.M() == 0 {
		t.Fatal("no edges captured")
	}
	// Spot-check edge semantics: edge (i, j) iff node j in node i's table.
	index := map[string]int{}
	for i, nid := range s.IDs {
		index[nid.String()] = i
	}
	for i, n := range nodes {
		for _, c := range n.Table().Contacts() {
			j, ok := index[c.ID.String()]
			if !ok {
				continue
			}
			if !s.Graph.HasEdge(i, j) {
				t.Fatalf("missing edge %d->%d for contact %v", i, j, c)
			}
		}
		if s.Graph.OutDegree(i) != n.Table().Size() {
			t.Fatalf("node %d out-degree %d != table size %d",
				i, s.Graph.OutDegree(i), n.Table().Size())
		}
	}
}

func TestCaptureExcludesDeparted(t *testing.T) {
	sim, nodes := buildNetwork(t, 12)
	gone := nodes[7]
	gone.Leave()
	s := Capture(sim.Now(), nodes)
	if s.N() != 11 {
		t.Fatalf("snapshot has %d vertices, want 11", s.N())
	}
	for _, nid := range s.IDs {
		if nid.Equal(gone.ID()) {
			t.Fatal("departed node present in snapshot")
		}
	}
	// Edges to the departed node must have been dropped even though
	// routing tables may still reference it.
	stillKnown := false
	for _, n := range nodes {
		if n.Running() && n.Table().Contains(gone.ID()) {
			stillKnown = true
		}
	}
	if !stillKnown {
		t.Log("no table references the departed node; edge-drop not exercised")
	}
}

func TestSnapshotTime(t *testing.T) {
	sim, nodes := buildNetwork(t, 5)
	s := Capture(sim.Now(), nodes)
	if s.Time != sim.Now() {
		t.Fatalf("Time = %v, want %v", s.Time, sim.Now())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sim, nodes := buildNetwork(t, 10)
	s := Capture(sim.Now(), nodes)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Time != s.Time || back.N() != s.N() || back.Graph.M() != s.Graph.M() {
		t.Fatalf("round trip mismatch: %v/%d/%d vs %v/%d/%d",
			back.Time, back.N(), back.Graph.M(), s.Time, s.N(), s.Graph.M())
	}
	for i := range s.IDs {
		if !back.IDs[i].Equal(s.IDs[i]) || back.Addrs[i] != s.Addrs[i] {
			t.Fatalf("vertex %d mismatch", i)
		}
	}
	for _, e := range s.Graph.Edges() {
		if !back.Graph.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "{"},
		{"bad id hex", `{"bits":64,"nodes":[{"id":"zz","addr":1}],"edges":[]}`},
		{"edge out of range", `{"bits":64,"nodes":[{"id":"0000000000000001","addr":1}],"edges":[[0,5]]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestEmptySnapshot(t *testing.T) {
	s := Capture(0, nil)
	if s.N() != 0 {
		t.Fatal("empty capture should have no vertices")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 {
		t.Fatal("round-tripped empty snapshot not empty")
	}
}

func TestSnapshotNearlyUndirected(t *testing.T) {
	// The paper's §5.2 observation: Kademlia connectivity graphs are close
	// to undirected. After a settled bootstrap, the symmetry ratio should
	// be substantial.
	sim, nodes := buildNetwork(t, 30)
	s := Capture(sim.Now(), nodes)
	if ratio := s.Graph.SymmetryRatio(); ratio < 0.5 {
		t.Fatalf("symmetry ratio %.3f unexpectedly low", ratio)
	}
}
