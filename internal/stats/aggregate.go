package stats

import (
	"fmt"
	"math"
	"time"
)

// StdDev returns the sample standard deviation (n-1 denominator), the
// spread estimator used for confidence intervals over repeated seeded
// runs. It returns NaN for an empty input and 0 for a single sample.
func StdDev(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return 0
	}
	m := Mean(values)
	var sum float64
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// tCritical95 is the two-sided 95% Student-t critical value for df degrees
// of freedom, the multiplier behind small-sample confidence intervals
// (repeated-run counts in the paper's methodology are small, so the normal
// 1.96 would understate the interval).
var tCritical95 = []float64{
	// df: 1 .. 30
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (df >= 31 falls back to the normal 1.960; df <= 0
// returns NaN, as no interval exists from a single sample).
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(tCritical95) {
		return tCritical95[df-1]
	}
	return 1.960
}

// CI95Half returns the half-width of the two-sided 95% Student-t
// confidence interval of the mean: t(df) * s / sqrt(n). A single sample
// has no spread estimate and yields NaN; callers typically render that as
// an empty interval.
func CI95Half(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return math.NaN()
	}
	return TCritical95(n-1) * StdDev(values) / math.Sqrt(float64(n))
}

// AggregatePoint is one virtual-time instant aggregated across repeated
// runs: the cross-run mean, sample standard deviation, and 95% CI
// half-width of the measured value, plus the per-run extremes.
type AggregatePoint struct {
	T    time.Duration
	N    int     // runs aggregated at this instant
	Mean float64 // cross-run mean
	Std  float64 // cross-run sample standard deviation
	CI95 float64 // half-width of the 95% Student-t CI of the mean
	Min  float64 // smallest per-run value
	Max  float64 // largest per-run value
}

// AggregateSeries is a time-ordered sequence of cross-run aggregates: one
// curve of a figure averaged over its seed replications.
type AggregateSeries struct {
	Name   string
	Points []AggregatePoint
}

// Len returns the number of aggregated samples.
func (a *AggregateSeries) Len() int { return len(a.Points) }

// MeanSeries projects the aggregate onto a plain Series of means, e.g. for
// charting alongside non-replicated curves.
func (a *AggregateSeries) MeanSeries() *Series {
	s := &Series{Name: a.Name}
	for _, p := range a.Points {
		s.MustAdd(p.T, p.Mean)
	}
	return s
}

// BandSeries returns the lower and upper 95%-CI boundary curves
// (mean -/+ CI95). Points whose interval is undefined (single run) carry
// the mean on both boundaries.
func (a *AggregateSeries) BandSeries() (lo, hi *Series) {
	lo = &Series{Name: a.Name + "/ci-lo"}
	hi = &Series{Name: a.Name + "/ci-hi"}
	for _, p := range a.Points {
		half := p.CI95
		if math.IsNaN(half) {
			half = 0
		}
		lo.MustAdd(p.T, p.Mean-half)
		hi.MustAdd(p.T, p.Mean+half)
	}
	return lo, hi
}

// Window returns the sub-series with from <= T <= to, mirroring
// Series.Window for aggregated curves.
func (a *AggregateSeries) Window(from, to time.Duration) *AggregateSeries {
	out := &AggregateSeries{Name: a.Name}
	for _, p := range a.Points {
		if p.T < from || p.T > to {
			continue
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// AggregateAligned collapses repeated runs of the same configuration into
// one aggregated curve. Every input series must sample the same virtual
// times in the same order (which holds by construction for seed
// replications of one scenario config: the snapshot schedule depends only
// on the config); mismatched lengths or times are an error, as silently
// aggregating misaligned runs would fabricate data.
func AggregateAligned(name string, series []*Series) (*AggregateSeries, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("stats: aggregate of zero series")
	}
	base := series[0]
	for _, s := range series[1:] {
		if s.Len() != base.Len() {
			return nil, fmt.Errorf("stats: series %q has %d points, %q has %d — replications misaligned",
				s.Name, s.Len(), base.Name, base.Len())
		}
		for i, p := range s.Points {
			if p.T != base.Points[i].T {
				return nil, fmt.Errorf("stats: series %q samples %v at index %d where %q samples %v",
					s.Name, p.T, i, base.Name, base.Points[i].T)
			}
		}
	}
	out := &AggregateSeries{Name: name, Points: make([]AggregatePoint, base.Len())}
	values := make([]float64, len(series))
	for i := range base.Points {
		for j, s := range series {
			values[j] = s.Points[i].Value
		}
		out.Points[i] = AggregatePoint{
			T:    base.Points[i].T,
			N:    len(values),
			Mean: Mean(values),
			Std:  StdDev(values),
			CI95: CI95Half(values),
			Min:  Min(values),
			Max:  Max(values),
		}
	}
	return out, nil
}
