package stats

import (
	"math"
	"testing"
	"time"
)

func TestStdDev(t *testing.T) {
	if !math.IsNaN(StdDev(nil)) {
		t.Fatal("StdDev(nil) should be NaN")
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Fatalf("StdDev of one sample = %v, want 0", got)
	}
	// {2, 4, 4, 4, 5, 5, 7, 9}: population variance 4, sample variance 32/7.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestTCritical95(t *testing.T) {
	if !math.IsNaN(TCritical95(0)) {
		t.Fatal("df=0 should be NaN")
	}
	if got := TCritical95(1); got != 12.706 {
		t.Fatalf("df=1 = %v", got)
	}
	if got := TCritical95(4); got != 2.776 {
		t.Fatalf("df=4 = %v", got)
	}
	if got := TCritical95(30); got != 2.042 {
		t.Fatalf("df=30 = %v", got)
	}
	if got := TCritical95(1000); got != 1.960 {
		t.Fatalf("large df = %v, want normal 1.960", got)
	}
	// Critical values must decrease toward the normal limit.
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		c := TCritical95(df)
		if c > prev {
			t.Fatalf("t-critical increased at df=%d: %v > %v", df, c, prev)
		}
		prev = c
	}
}

func TestCI95Half(t *testing.T) {
	if !math.IsNaN(CI95Half([]float64{5})) {
		t.Fatal("single sample has no CI")
	}
	// n=4, s=2: half = t(3) * 2 / 2 = 3.182.
	vals := []float64{1, 3, 5, 7} // mean 4, sample var 20/3... use explicit calc
	want := TCritical95(3) * StdDev(vals) / 2
	if got := CI95Half(vals); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95Half = %v, want %v", got, want)
	}
	// Identical samples: zero-width interval.
	if got := CI95Half([]float64{3, 3, 3}); got != 0 {
		t.Fatalf("identical samples CI = %v, want 0", got)
	}
}

func mkSeries(name string, vals ...float64) *Series {
	s := &Series{Name: name}
	for i, v := range vals {
		s.MustAdd(time.Duration(i)*time.Minute, v)
	}
	return s
}

func TestAggregateAligned(t *testing.T) {
	agg, err := AggregateAligned("curve", []*Series{
		mkSeries("r0", 10, 20, 30),
		mkSeries("r1", 12, 18, 30),
		mkSeries("r2", 14, 22, 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 3 {
		t.Fatalf("aggregate has %d points", agg.Len())
	}
	p0 := agg.Points[0]
	if p0.Mean != 12 || p0.N != 3 || p0.Min != 10 || p0.Max != 14 {
		t.Fatalf("point 0 = %+v", p0)
	}
	if math.Abs(p0.Std-2) > 1e-12 {
		t.Fatalf("point 0 std = %v, want 2", p0.Std)
	}
	wantCI := TCritical95(2) * 2 / math.Sqrt(3)
	if math.Abs(p0.CI95-wantCI) > 1e-12 {
		t.Fatalf("point 0 CI = %v, want %v", p0.CI95, wantCI)
	}
	// Identical values across runs: zero spread.
	p2 := agg.Points[2]
	if p2.Std != 0 || p2.CI95 != 0 {
		t.Fatalf("point 2 spread = %+v, want zero", p2)
	}
}

func TestAggregateAlignedErrors(t *testing.T) {
	if _, err := AggregateAligned("x", nil); err == nil {
		t.Fatal("zero series must fail")
	}
	if _, err := AggregateAligned("x", []*Series{mkSeries("a", 1, 2), mkSeries("b", 1)}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	a := mkSeries("a", 1, 2)
	b := &Series{Name: "b"}
	b.MustAdd(0, 1)
	b.MustAdd(90*time.Second, 2) // same length, different instant
	if _, err := AggregateAligned("x", []*Series{a, b}); err == nil {
		t.Fatal("time mismatch must fail")
	}
}

func TestAggregateProjections(t *testing.T) {
	agg, err := AggregateAligned("c", []*Series{mkSeries("r0", 4, 8), mkSeries("r1", 6, 8)})
	if err != nil {
		t.Fatal(err)
	}
	mean := agg.MeanSeries()
	if mean.Points[0].Value != 5 || mean.Points[1].Value != 8 {
		t.Fatalf("mean series = %+v", mean.Points)
	}
	lo, hi := agg.BandSeries()
	if lo.Points[0].Value >= 5 || hi.Points[0].Value <= 5 {
		t.Fatalf("band does not bracket mean: [%v, %v]", lo.Points[0].Value, hi.Points[0].Value)
	}
	if lo.Points[1].Value != 8 || hi.Points[1].Value != 8 {
		t.Fatalf("zero-spread band should collapse to the mean: [%v, %v]", lo.Points[1].Value, hi.Points[1].Value)
	}

	// Single-run aggregate: NaN CI renders as a collapsed band.
	single, err := AggregateAligned("s", []*Series{mkSeries("r0", 3)})
	if err != nil {
		t.Fatal(err)
	}
	slo, shi := single.BandSeries()
	if slo.Points[0].Value != 3 || shi.Points[0].Value != 3 {
		t.Fatal("single-run band must collapse to the mean")
	}

	w := agg.Window(time.Minute, time.Minute)
	if w.Len() != 1 || w.Points[0].Mean != 8 {
		t.Fatalf("window = %+v", w.Points)
	}
}
