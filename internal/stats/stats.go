// Package stats provides the time-series plumbing and summary statistics
// behind the paper's plots and Table 2: per-snapshot series of
// connectivity values, phase windows, mean, population variance, and the
// Relative Variance (variance divided by mean) the paper defines to
// quantify churn-induced oscillation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T     time.Duration // virtual time of the sample
	Value float64
}

// Series is a time-ordered sequence of samples.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample. Samples must be appended in non-decreasing time
// order, matching how snapshots are produced.
func (s *Series) Add(t time.Duration, v float64) error {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		return fmt.Errorf("stats: sample at %v precedes last sample at %v", t, s.Points[n-1].T)
	}
	s.Points = append(s.Points, Point{T: t, Value: v})
	return nil
}

// MustAdd is Add for call sites that guarantee ordering.
func (s *Series) MustAdd(t time.Duration, v float64) {
	if err := s.Add(t, v); err != nil {
		panic(err)
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns the sample values in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// Window returns the sub-series with from <= T <= to. The paper's Table 2
// aggregates only the churn phase; Window carves that out.
func (s *Series) Window(from, to time.Duration) *Series {
	out := &Series{Name: s.Name}
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	for _, p := range s.Points[lo:] {
		if p.T > to {
			break
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// At returns the value of the latest sample with T <= t.
func (s *Series) At(t time.Duration) (float64, bool) {
	idx := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t }) - 1
	if idx < 0 {
		return 0, false
	}
	return s.Points[idx].Value, true
}

// Mean returns the arithmetic mean of values, or NaN for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Variance returns the population variance, or NaN for an empty input.
// The paper's Relative Variance divides this by the mean.
func Variance(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := Mean(values)
	var sum float64
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(values))
}

// RelativeVariance returns Variance/Mean (Table 2's RV). Following the
// paper's convention for the all-zero connectivity rows ("0.00"), a zero
// mean yields 0 rather than NaN.
func RelativeVariance(values []float64) float64 {
	m := Mean(values)
	if math.IsNaN(m) {
		return math.NaN()
	}
	if m == 0 {
		return 0
	}
	return Variance(values) / m
}

// Min returns the smallest value, or NaN for an empty input.
func Min(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	min := values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest value, or NaN for an empty input.
func Max(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	max := values[0]
	for _, v := range values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Summary bundles the statistics the paper reports for a series window.
type Summary struct {
	Count int
	Mean  float64
	Var   float64
	RV    float64
	Min   float64
	Max   float64
}

// Summarize computes a Summary over a series.
func Summarize(s *Series) Summary {
	v := s.Values()
	return Summary{
		Count: len(v),
		Mean:  Mean(v),
		Var:   Variance(v),
		RV:    RelativeVariance(v),
		Min:   Min(v),
		Max:   Max(v),
	}
}
