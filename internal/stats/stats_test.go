package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAddOrdering(t *testing.T) {
	var s Series
	if err := s.Add(time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(time.Minute, 2); err != nil {
		t.Fatal(err) // equal times allowed
	}
	if err := s.Add(30*time.Second, 3); err == nil {
		t.Fatal("out-of-order add should fail")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestSeriesWindow(t *testing.T) {
	var s Series
	for i := 0; i <= 10; i++ {
		s.MustAdd(time.Duration(i)*time.Minute, float64(i))
	}
	w := s.Window(3*time.Minute, 7*time.Minute)
	if w.Len() != 5 {
		t.Fatalf("window Len = %d, want 5", w.Len())
	}
	if w.Points[0].Value != 3 || w.Points[4].Value != 7 {
		t.Fatalf("window = %+v", w.Points)
	}
	if empty := s.Window(20*time.Minute, 30*time.Minute); empty.Len() != 0 {
		t.Fatal("window beyond data should be empty")
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	s.MustAdd(time.Minute, 10)
	s.MustAdd(5*time.Minute, 50)
	if _, ok := s.At(30 * time.Second); ok {
		t.Error("At before first sample should report false")
	}
	if v, ok := s.At(time.Minute); !ok || v != 10 {
		t.Errorf("At(1m) = %v, %v", v, ok)
	}
	if v, ok := s.At(3 * time.Minute); !ok || v != 10 {
		t.Errorf("At(3m) = %v, %v (should hold last value)", v, ok)
	}
	if v, ok := s.At(time.Hour); !ok || v != 50 {
		t.Errorf("At(1h) = %v, %v", v, ok)
	}
}

func TestMeanVariance(t *testing.T) {
	tests := []struct {
		name     string
		in       []float64
		mean     float64
		variance float64
	}{
		{"single", []float64{4}, 4, 0},
		{"constant", []float64{2, 2, 2, 2}, 2, 0},
		{"simple", []float64{1, 2, 3, 4, 5}, 3, 2},
		{"negative", []float64{-1, 1}, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.in); math.Abs(got-tt.variance) > 1e-12 {
				t.Errorf("Variance = %v, want %v", got, tt.variance)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty input should yield NaN")
	}
}

func TestRelativeVariance(t *testing.T) {
	// Table 2 semantics: RV = Variance / Mean; all-zero series reports 0.
	if got := RelativeVariance([]float64{0, 0, 0}); got != 0 {
		t.Errorf("RV of zeros = %v, want 0", got)
	}
	in := []float64{1, 2, 3, 4, 5}
	want := Variance(in) / Mean(in)
	if got := RelativeVariance(in); math.Abs(got-want) > 1e-12 {
		t.Errorf("RV = %v, want %v", got, want)
	}
	if !math.IsNaN(RelativeVariance(nil)) {
		t.Error("RV of empty input should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	in := []float64{3, -1, 4, 1, 5}
	if Min(in) != -1 || Max(in) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(in), Max(in))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty input should yield NaN")
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return Variance(vals) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBoundedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		m := Mean(vals)
		return m >= Min(vals)-1e-9 && m <= Max(vals)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	var s Series
	s.Name = "min-connectivity"
	for i, v := range []float64{10, 12, 8, 10} {
		s.MustAdd(time.Duration(i)*time.Minute, v)
	}
	sum := Summarize(&s)
	if sum.Count != 4 || sum.Mean != 10 || sum.Min != 8 || sum.Max != 12 {
		t.Fatalf("Summary = %+v", sum)
	}
	if math.Abs(sum.Var-2) > 1e-12 || math.Abs(sum.RV-0.2) > 1e-12 {
		t.Fatalf("Var/RV = %v/%v, want 2/0.2", sum.Var, sum.RV)
	}
}
