package sweep

import (
	"context"
	"fmt"
	"math"
	"time"

	"kadre/internal/par"
	"kadre/internal/scenario"
	"kadre/internal/stats"
)

// Adaptive-precision replication: instead of running a fixed -reps R,
// RunAdaptive replicates a configuration until the Student-t 95%
// confidence interval on a target metric is DECIDED — entirely on one
// side of a query threshold, or tight enough relative to its mean — and
// stops. Capacity-planning queries ("does config X stay k-connected
// under attack Y?") usually decide after a handful of replications; the
// fixed-R schedule pays the worst case every time.
//
// Determinism is the same hard contract as Run's: the rep schedule and
// the stopping rule depend only on derived seeds and accumulated
// statistics, never on worker timing. Reps execute in waves of at most
// Jobs, but the decision fold consumes results strictly in replication
// order, so the stop index — and therefore the returned rep count,
// values and aggregates — is byte-identical under any worker count.
// Workers may speculatively execute reps beyond the stop index inside
// the final wave; those results (and any errors they raise) are
// discarded, exactly as if they had never been scheduled.
//
// Cancellation composes with that contract: RunAdaptive takes a Context
// that propagates into every replication (the default runner hands it to
// scenario.RunCtx, where the event kernel polls it at event-batch
// boundaries), and the wave loop checks it before scheduling more work.
// Reps consumed before the cancellation point form a deterministic
// prefix — their values and progress updates are exactly those of an
// uncanceled run — and the error returned wraps ctx's cause, so callers
// distinguish a canceled query from a failed one with errors.Is.

// Verdict is the outcome of an adaptively replicated query.
type Verdict string

const (
	// VerdictPass: the CI lies entirely at or above the threshold — the
	// queried property (metric >= threshold) holds.
	VerdictPass Verdict = "pass"
	// VerdictFail: the CI lies entirely below the threshold.
	VerdictFail Verdict = "fail"
	// VerdictResolved: a precision rule reached its target CI width.
	VerdictResolved Verdict = "resolved"
	// VerdictUndecided: the rep cap was reached without a decision.
	VerdictUndecided Verdict = "undecided"
)

// StopRule decides when accumulated replications settle a query. Build
// one with StopAtThreshold or StopAtPrecision.
type StopRule struct {
	threshold    float64
	hasThreshold bool
	relPrecision float64
}

// StopAtThreshold stops once the 95% CI of the metric's mean excludes
// the threshold: lower bound >= threshold decides pass (the metric
// stays at or above it), upper bound < threshold decides fail. The >=
// on the pass side makes zero-variance integer metrics sitting exactly
// on the threshold decide pass, matching "stays k-connected" semantics.
func StopAtThreshold(threshold float64) StopRule {
	return StopRule{threshold: threshold, hasThreshold: true}
}

// StopAtPrecision stops once the 95% CI half-width is at most rel times
// the absolute mean (an all-equal sample — half-width 0 — always
// decides, including a zero mean). The verdict is VerdictResolved.
func StopAtPrecision(rel float64) StopRule {
	return StopRule{relPrecision: rel}
}

// Threshold returns the threshold and whether the rule has one.
func (r StopRule) Threshold() (float64, bool) { return r.threshold, r.hasThreshold }

// Precision returns the relative-precision target (0 for threshold rules).
func (r StopRule) Precision() float64 { return r.relPrecision }

func (r StopRule) validate() error {
	if !r.hasThreshold && r.relPrecision <= 0 {
		return fmt.Errorf("sweep: stop rule needs a threshold or a positive precision")
	}
	return nil
}

// decide evaluates the rule against the running mean and CI half-width.
// A NaN half-width (fewer than two reps) never decides.
func (r StopRule) decide(mean, half float64) (Verdict, bool) {
	if math.IsNaN(half) {
		return VerdictUndecided, false
	}
	if r.hasThreshold {
		if mean-half >= r.threshold {
			return VerdictPass, true
		}
		if mean+half < r.threshold {
			return VerdictFail, true
		}
		return VerdictUndecided, false
	}
	if half <= r.relPrecision*math.Abs(mean) {
		return VerdictResolved, true
	}
	return VerdictUndecided, false
}

// RepUpdate reports one consumed replication to the Progress callback,
// in replication order (rep 0 first, no gaps): the rep's own metric
// value plus the statistics over every rep consumed so far. Everything
// except Elapsed and Cached is deterministic for a config — the stream
// a server can forward to clients verbatim.
type RepUpdate struct {
	Rep     int     // replication index, 0-based
	Seed    int64   // derived seed the rep used
	Value   float64 // the rep's metric value
	Reps    int     // reps consumed so far, including this one
	Mean    float64 // running mean over consumed reps
	CI95    float64 // running 95% CI half-width (NaN below two reps)
	Decided bool    // the rule decided at this rep
	Verdict Verdict // decided verdict, or VerdictUndecided
	Cached  bool    // the Runner answered from warm state (e.g. an arena)
	Elapsed time.Duration
}

// AdaptiveOptions configures RunAdaptive.
type AdaptiveOptions struct {
	// Rule is the stopping rule (required).
	Rule StopRule
	// Extract maps a finished replication to the target metric (required).
	Extract func(*scenario.Result) float64
	// MinReps is the smallest rep count a decision may rest on; values
	// below 2 (where no CI exists) are raised to 2. Default 3.
	MinReps int
	// MaxReps caps the replications; <= 0 means 8. Must be >= MinReps.
	MaxReps int
	// Jobs bounds concurrently executing reps; <= 0 means GOMAXPROCS.
	Jobs int
	// Runner executes one replication (its config carries the derived
	// seed) under RunAdaptive's context: implementations must abandon the
	// rep and return ctx's error once the context is done. The bool
	// reports whether the result came from warm state (surfaced as
	// RepUpdate.Cached). Nil means scenario.RunCtx.
	Runner func(context.Context, scenario.Config) (*scenario.Result, bool, error)
	// Progress, when set, receives one RepUpdate per consumed rep, in
	// replication order, serially.
	Progress func(RepUpdate)
}

// AdaptiveResult is the outcome of an adaptive replication run. Reps,
// Values, Mean, CI95 and Verdict cover exactly the consumed prefix and
// are identical under any Jobs setting; Executed additionally counts
// discarded speculative reps and may vary.
type AdaptiveResult struct {
	Config  scenario.Config
	Verdict Verdict
	Reps    []*scenario.Result
	Values  []float64
	Mean    float64
	CI95    float64
	// Executed counts every rep that actually ran, including speculative
	// ones beyond the stop index. Diagnostics only — worker-dependent.
	Executed int
}

// RunSet assembles the consumed reps into a RunSet with cross-rep
// aggregates, so adaptive runs feed the same rendering and JSON
// pipeline as fixed-R sweeps.
func (ar *AdaptiveResult) RunSet() (*RunSet, error) {
	rs := &RunSet{Config: ar.Config, Reps: ar.Reps}
	rs.Config.Seed = DeriveSeed(ar.Config.Seed, 0)
	if err := rs.aggregate(); err != nil {
		return nil, fmt.Errorf("sweep: adaptive config %q: %w", ar.Config.Name, err)
	}
	return rs, nil
}

// RunAdaptive replicates cfg until opts.Rule decides, MaxReps is
// reached, or ctx is done. See the package comment on adaptive
// determinism and cancellation: the returned result is byte-identical
// for any Jobs value, and a canceled run returns an error wrapping
// ctx's cause after a deterministic prefix of progress updates.
func RunAdaptive(ctx context.Context, cfg scenario.Config, opts AdaptiveOptions) (*AdaptiveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Extract == nil {
		return nil, fmt.Errorf("sweep: adaptive run needs an Extract metric")
	}
	if err := opts.Rule.validate(); err != nil {
		return nil, err
	}
	minReps := opts.MinReps
	if minReps <= 0 {
		minReps = 3
	}
	if minReps < 2 {
		minReps = 2
	}
	maxReps := opts.MaxReps
	if maxReps <= 0 {
		maxReps = 8
	}
	if maxReps < minReps {
		return nil, fmt.Errorf("sweep: MaxReps %d < MinReps %d", maxReps, minReps)
	}
	runner := opts.Runner
	if runner == nil {
		runner = func(ctx context.Context, c scenario.Config) (*scenario.Result, bool, error) {
			r, err := scenario.RunCtx(ctx, c)
			return r, false, err
		}
	}

	type repOut struct {
		res     *scenario.Result
		cached  bool
		elapsed time.Duration
	}
	ar := &AdaptiveResult{Config: cfg, Verdict: VerdictUndecided}
	wave := par.Jobs(opts.Jobs, maxReps)
	for next := 0; next < maxReps; {
		// Wave-boundary cancellation check: never schedule another wave of
		// simulations for a caller that has already gone away.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweep: adaptive run %q canceled: %w", cfg.Name, err)
		}
		batch := wave
		if batch > maxReps-next {
			batch = maxReps - next
		}
		idxs := make([]int, batch)
		for i := range idxs {
			idxs[i] = next + i
		}
		outs, mapErr := par.Map(opts.Jobs, idxs, func(_ int, rep int) (repOut, error) {
			rc := cfg
			rc.Seed = DeriveSeed(cfg.Seed, rep)
			start := time.Now()
			res, cached, err := runner(ctx, rc)
			if err != nil {
				return repOut{}, fmt.Errorf("scenario %q rep %d (seed %d): %w", cfg.Name, rep, rc.Seed, err)
			}
			return repOut{res: res, cached: cached, elapsed: time.Since(start)}, nil
		})
		// Fold strictly in rep order. A failed rep surfaces its error only
		// if the fold reaches it undecided — a speculative failure beyond
		// the stop index is discarded, exactly as under Jobs=1 where it
		// would never have been scheduled.
		for i, out := range outs {
			if out.res == nil {
				return nil, mapErr
			}
			ar.Executed++
			rep := next + i
			v := opts.Extract(out.res)
			ar.Reps = append(ar.Reps, out.res)
			ar.Values = append(ar.Values, v)
			ar.Mean = stats.Mean(ar.Values)
			ar.CI95 = stats.CI95Half(ar.Values)
			verdict, decided := VerdictUndecided, false
			if len(ar.Values) >= minReps {
				verdict, decided = opts.Rule.decide(ar.Mean, ar.CI95)
			}
			if opts.Progress != nil {
				opts.Progress(RepUpdate{
					Rep: rep, Seed: DeriveSeed(cfg.Seed, rep), Value: v,
					Reps: len(ar.Values), Mean: ar.Mean, CI95: ar.CI95,
					Decided: decided, Verdict: verdict,
					Cached: out.cached, Elapsed: out.elapsed,
				})
			}
			if decided {
				ar.Verdict = verdict
				return ar, nil
			}
		}
		if mapErr != nil {
			return nil, mapErr
		}
		next += batch
	}
	return ar, nil
}
