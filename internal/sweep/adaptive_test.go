package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"kadre/internal/scenario"
	"kadre/internal/stats"
)

// fakeRunner fabricates deterministic per-seed results without running a
// simulation: the metric value is a seeded pseudo-random draw around a
// chosen mean, so stopping-rule behavior can be exercised across many
// fixtures cheaply. The draw depends only on the config's seed.
func fakeRunner(mean, spread float64) func(context.Context, scenario.Config) (*scenario.Result, bool, error) {
	return func(_ context.Context, cfg scenario.Config) (*scenario.Result, bool, error) {
		x := uint64(cfg.Seed) * 0x9E3779B97F4A7C15
		x ^= x >> 29
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 32
		// Uniform in [-spread, spread) around mean.
		u := float64(x%(1<<20))/float64(1<<20)*2 - 1
		v := mean + u*spread
		res := &scenario.Result{Config: cfg.WithDefaults()}
		res.Points = append(res.Points, scenario.SnapshotStat{
			Time: time.Minute, N: 10, Min: int(math.Max(0, math.Round(v))), Avg: v,
		})
		return res, false, nil
	}
}

func finalAvg(r *scenario.Result) float64 { return r.Points[len(r.Points)-1].Avg }

func TestStopRuleDecide(t *testing.T) {
	cases := []struct {
		rule        StopRule
		mean, half  float64
		wantVerdict Verdict
		wantDecided bool
	}{
		{StopAtThreshold(5), 7, 1, VerdictPass, true},
		{StopAtThreshold(5), 6, 1, VerdictPass, true}, // lo == thr: pass
		{StopAtThreshold(5), 3, 1, VerdictFail, true},
		{StopAtThreshold(5), 4.5, 1, VerdictUndecided, false},
		{StopAtThreshold(5), 5, 0, VerdictPass, true}, // zero-variance at thr
		{StopAtThreshold(5), 7, math.NaN(), VerdictUndecided, false},
		{StopAtPrecision(0.1), 10, 0.5, VerdictResolved, true},
		{StopAtPrecision(0.1), 10, 2, VerdictUndecided, false},
		{StopAtPrecision(0.1), 0, 0, VerdictResolved, true}, // all-zero sample
		{StopAtPrecision(0.1), 0, math.NaN(), VerdictUndecided, false},
	}
	for i, c := range cases {
		v, d := c.rule.decide(c.mean, c.half)
		if v != c.wantVerdict || d != c.wantDecided {
			t.Errorf("case %d: decide(%v, %v) = (%s, %v), want (%s, %v)",
				i, c.mean, c.half, v, d, c.wantVerdict, c.wantDecided)
		}
	}
}

// TestAdaptiveDeterministicAcrossJobs pins the adaptive contract on real
// simulations: rep counts, values, aggregates and the rep-ordered update
// stream are byte-identical under any worker count (run with -race).
func TestAdaptiveDeterministicAcrossJobs(t *testing.T) {
	cfg := tinyConfig("adaptive-det", 11)
	run := func(jobs int) (*AdaptiveResult, string) {
		var updates []RepUpdate
		ar, err := RunAdaptive(context.Background(), cfg, AdaptiveOptions{
			// A threshold far above any tiny network's average keeps the
			// verdict a quick, decisive fail.
			Rule:    StopAtThreshold(1000),
			Extract: func(r *scenario.Result) float64 { return r.ChurnWindowSummary().Mean },
			MinReps: 2, MaxReps: 6, Jobs: jobs,
			Progress: func(u RepUpdate) {
				u.Elapsed = 0 // wall-clock is the one nondeterministic field
				updates = append(updates, u)
			},
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		// fmt, not JSON: the rep-0 update carries a NaN CI half-width.
		return ar, fmt.Sprintf("%+v", updates)
	}
	ar1, stream1 := run(1)
	ar8, stream8 := run(8)
	if len(ar1.Reps) != len(ar8.Reps) {
		t.Fatalf("rep counts differ: jobs=1 %d, jobs=8 %d", len(ar1.Reps), len(ar8.Reps))
	}
	if ar1.Verdict != ar8.Verdict {
		t.Fatalf("verdicts differ: %s vs %s", ar1.Verdict, ar8.Verdict)
	}
	if !reflect.DeepEqual(ar1.Values, ar8.Values) {
		t.Fatalf("values differ:\n%v\n%v", ar1.Values, ar8.Values)
	}
	if ar1.Mean != ar8.Mean || !(ar1.CI95 == ar8.CI95 || (math.IsNaN(ar1.CI95) && math.IsNaN(ar8.CI95))) {
		t.Fatalf("aggregates differ: (%v, %v) vs (%v, %v)", ar1.Mean, ar1.CI95, ar8.Mean, ar8.CI95)
	}
	if stream1 != stream8 {
		t.Fatalf("update streams differ:\n%s\n%s", stream1, stream8)
	}
	rs1, err := ar1.RunSet()
	if err != nil {
		t.Fatal(err)
	}
	rs8, err := ar8.RunSet()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs1.Min, rs8.Min) || !reflect.DeepEqual(rs1.Avg, rs8.Avg) {
		t.Fatal("aggregated RunSet series differ across jobs")
	}
}

// TestAdaptiveStopsEarly asserts the point of the exercise: a decisive
// query consumes fewer reps than the cap, and its updates arrive in rep
// order with monotonically consumed counts.
func TestAdaptiveStopsEarly(t *testing.T) {
	var updates []RepUpdate
	ar, err := RunAdaptive(context.Background(), scenario.Config{Name: "early", Seed: 3, Size: 10}, AdaptiveOptions{
		Rule:    StopAtThreshold(5),
		Extract: finalAvg,
		MinReps: 2, MaxReps: 64, Jobs: 4,
		Runner:   fakeRunner(20, 1), // mean 20 >> threshold 5: decides at MinReps
		Progress: func(u RepUpdate) { updates = append(updates, u) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Verdict != VerdictPass {
		t.Fatalf("verdict = %s, want pass", ar.Verdict)
	}
	if len(ar.Reps) != 2 {
		t.Fatalf("consumed %d reps, want 2 (decide at MinReps)", len(ar.Reps))
	}
	for i, u := range updates {
		if u.Rep != i || u.Reps != i+1 {
			t.Fatalf("update %d out of order: rep=%d reps=%d", i, u.Rep, u.Reps)
		}
	}
	if last := updates[len(updates)-1]; !last.Decided || last.Verdict != VerdictPass {
		t.Fatalf("last update not decided: %+v", last)
	}
}

// TestAdaptiveVerdictAgreesWithFull is the agreement property on seeded
// fixtures: whenever an early stop declares pass or fail, the verdict of
// the full MaxReps replication (the fixed-R answer a batch sweep would
// give) is the same. Fixtures place the mean at least one spread away
// from the threshold so the full-sample CI is decided too.
func TestAdaptiveVerdictAgreesWithFull(t *testing.T) {
	const threshold = 10.0
	const maxReps = 12
	fixtures := 0
	for seed := int64(1); seed <= 60; seed++ {
		for _, mean := range []float64{4, 7, 13, 16} {
			spread := 2.0 // |mean - threshold| >= 3 > spread: well-separated
			cfg := scenario.Config{Name: "prop", Seed: seed, Size: 10}
			runner := fakeRunner(mean, spread)
			early, err := RunAdaptive(context.Background(), cfg, AdaptiveOptions{
				Rule: StopAtThreshold(threshold), Extract: finalAvg,
				MinReps: 3, MaxReps: maxReps, Jobs: 4, Runner: runner,
			})
			if err != nil {
				t.Fatal(err)
			}
			if early.Verdict == VerdictUndecided {
				continue // cap reached: nothing to compare
			}
			// The full-replication answer: all maxReps values, one CI.
			var values []float64
			for rep := 0; rep < maxReps; rep++ {
				rc := cfg
				rc.Seed = DeriveSeed(cfg.Seed, rep)
				r, _, err := runner(context.Background(), rc)
				if err != nil {
					t.Fatal(err)
				}
				values = append(values, finalAvg(r))
			}
			m, h := stats.Mean(values), stats.CI95Half(values)
			full, decided := StopAtThreshold(threshold).decide(m, h)
			if !decided {
				t.Fatalf("seed %d mean %v: full-replication CI undecided (mean %v half %v)", seed, mean, m, h)
			}
			if full != early.Verdict {
				t.Fatalf("seed %d mean %v: early verdict %s (after %d reps) != full verdict %s",
					seed, mean, early.Verdict, len(early.Reps), full)
			}
			fixtures++
		}
	}
	if fixtures < 100 {
		t.Fatalf("only %d decided fixtures exercised, want >= 100", fixtures)
	}
}

func TestAdaptiveOptionValidation(t *testing.T) {
	cfg := scenario.Config{Name: "v", Seed: 1, Size: 10}
	if _, err := RunAdaptive(context.Background(), cfg, AdaptiveOptions{Rule: StopAtThreshold(1)}); err == nil {
		t.Fatal("missing Extract must error")
	}
	if _, err := RunAdaptive(context.Background(), cfg, AdaptiveOptions{Extract: finalAvg}); err == nil {
		t.Fatal("empty rule must error")
	}
	if _, err := RunAdaptive(context.Background(), cfg, AdaptiveOptions{
		Rule: StopAtThreshold(1), Extract: finalAvg, MinReps: 6, MaxReps: 4,
	}); err == nil {
		t.Fatal("MaxReps < MinReps must error")
	}
}

// TestAdaptivePreCanceled pins the wave-boundary check: a context done
// before the first wave schedules nothing and surfaces the cause.
func TestAdaptivePreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := RunAdaptive(ctx, scenario.Config{Name: "pre", Seed: 1, Size: 10}, AdaptiveOptions{
		Rule: StopAtThreshold(5), Extract: finalAvg, MaxReps: 8,
		Runner: func(ctx context.Context, c scenario.Config) (*scenario.Result, bool, error) {
			ran++
			return fakeRunner(20, 1)(ctx, c)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d reps ran under a pre-canceled context, want 0", ran)
	}
}

// TestAdaptiveCancelMidRun cancels from the progress callback after the
// first consumed rep: reps already consumed form a deterministic prefix
// of updates, in-flight reps abort through their runner's context, and
// the returned error wraps context.Canceled (run with -race: the cancel
// races real worker goroutines).
func TestAdaptiveCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var updates []RepUpdate
	// An undecidable rule (huge spread, threshold at the mean) would
	// replicate to the cap; cancellation is the only way this run ends.
	_, err := RunAdaptive(ctx, scenario.Config{Name: "mid", Seed: 5, Size: 10}, AdaptiveOptions{
		Rule: StopAtThreshold(10), Extract: finalAvg,
		MinReps: 2, MaxReps: 256, Jobs: 2,
		Runner: func(ctx context.Context, c scenario.Config) (*scenario.Result, bool, error) {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			return fakeRunner(10, 20)(ctx, c)
		},
		Progress: func(u RepUpdate) {
			updates = append(updates, u)
			cancel()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(updates) == 0 {
		t.Fatal("no updates consumed before cancellation")
	}
	for i, u := range updates {
		if u.Rep != i {
			t.Fatalf("update %d out of order after cancel: %+v", i, u)
		}
	}
}

// TestAdaptiveRunnerSeesDeadline pins that the context handed to the
// runner is RunAdaptive's own: a deadline set by the caller is visible
// inside every replication.
func TestAdaptiveRunnerSeesDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	sawDeadline := false
	_, err := RunAdaptive(ctx, scenario.Config{Name: "dl", Seed: 2, Size: 10}, AdaptiveOptions{
		Rule: StopAtThreshold(5), Extract: finalAvg, MinReps: 2, MaxReps: 3,
		Runner: func(ctx context.Context, c scenario.Config) (*scenario.Result, bool, error) {
			_, sawDeadline = ctx.Deadline()
			return fakeRunner(20, 1)(ctx, c)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDeadline {
		t.Fatal("runner context lost the caller's deadline")
	}
}

// TestOrderedProgress pins the Ordered option: the event stream of a
// multi-config replicated sweep arrives in exact (config, rep) order for
// any worker count, with Done counting delivered events.
func TestOrderedProgress(t *testing.T) {
	cfgs := []scenario.Config{tinyConfig("ord-a", 21), tinyConfig("ord-b", 22)}
	collect := func(jobs int) []Event {
		var evs []Event
		_, err := Run(cfgs, Options{
			Reps: 2, Jobs: jobs, Ordered: true,
			Progress: func(ev Event) {
				ev.Elapsed = 0
				evs = append(evs, ev)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	seq := collect(4)
	want := 0
	for ci, cfg := range cfgs {
		for rep := 0; rep < 2; rep++ {
			ev := seq[want]
			if ev.Name != cfg.Name || ev.Rep != rep || ev.Done != want+1 {
				t.Fatalf("event %d = {%s rep %d done %d}, want {%s rep %d done %d}",
					want, ev.Name, ev.Rep, ev.Done, cfg.Name, rep, want+1)
			}
			_ = ci
			want++
		}
	}
	if !reflect.DeepEqual(seq, collect(1)) {
		t.Fatal("ordered event streams differ across jobs")
	}
}
