package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kadre/internal/attack"
	"kadre/internal/id"
	"kadre/internal/scenario"
	"kadre/internal/simnet"
)

// Checkpointer persists every completed run as one JSON file and replays
// those files on a later sweep, so a long replicated sweep interrupted
// half-way resumes instead of restarting (the ROADMAP's "sweep resume").
//
// A checkpoint stores the run's full measurement surface — snapshot
// points with exact nanosecond timestamps, churn/traffic/attack counters,
// the victim log, and network statistics — so a resumed sweep produces
// byte-identical CSV/JSON artefacts. Wall-clock Elapsed is deliberately
// not restored (it is excluded from all deterministic outputs). Files are
// keyed by run name, replication index, and derived seed, and carry a
// fingerprint of the effective configuration: a checkpoint written under
// a different configuration is ignored and the run re-executes.
type Checkpointer struct {
	dir string
}

// NewCheckpointer creates (if necessary) the checkpoint directory.
func NewCheckpointer(dir string) (*Checkpointer, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint dir: %w", err)
	}
	return &Checkpointer{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (c *Checkpointer) Dir() string { return c.dir }

// ckptFile is the on-disk form of one completed run.
type ckptFile struct {
	Name        string `json:"name"`
	Rep         int    `json:"rep"`
	Seed        int64  `json:"seed"`
	Fingerprint string `json:"fingerprint"`
	// SpecDigest fingerprints the scenario spec file the run's config was
	// resolved from (empty for compiled-in presets and older checkpoints).
	// Resume refuses to mix results across different digests.
	SpecDigest string `json:"spec_digest,omitempty"`
	Bits       int    `json:"bits"`

	Points         []ckptPoint `json:"points"`
	ChurnAdded     int         `json:"churn_added"`
	ChurnRemoved   int         `json:"churn_removed"`
	TrafficOps     int         `json:"traffic_ops"`
	WorkloadJoins  int         `json:"workload_joins,omitempty"`
	WorkloadLeaves int         `json:"workload_leaves,omitempty"`
	AttackRemoved  int         `json:"attack_removed"`
	// Binding diagnostics, carried so a resumed run round-trips the
	// original Result exactly (the resume regression test DeepEquals).
	IncrementalBinds  int `json:"inc_binds,omitempty"`
	FullBinds         int `json:"full_binds,omitempty"`
	MembershipRebinds int `json:"member_rebinds,omitempty"`
	// Memory-governance outcome, serialized into the sweep JSON and so
	// required for byte-identical resumed artefacts.
	SlotCompactions int          `json:"slot_compactions,omitempty"`
	Redensifies     int          `json:"redensifies,omitempty"`
	DeadArcFrac     float64      `json:"dead_arc_frac,omitempty"`
	SlotUtilization float64      `json:"slot_utilization,omitempty"`
	Victims         []ckptVictim `json:"victims,omitempty"`
	Network         simnet.Stats `json:"network"`
}

// ckptPoint mirrors scenario.SnapshotStat with an exact timestamp (the
// rendered JSON's t_min float would not round-trip Durations reliably).
type ckptPoint struct {
	TNS      int64   `json:"t_ns"`
	N        int     `json:"n"`
	Edges    int     `json:"edges"`
	Min      int     `json:"min_conn"`
	Avg      float64 `json:"avg_conn"`
	Symmetry float64 `json:"symmetry"`
	SCC      float64 `json:"scc_frac"`
	Removed  int     `json:"removed"`
}

type ckptVictim struct {
	TNS  int64  `json:"t_ns"`
	Addr uint64 `json:"addr"`
	ID   string `json:"id"`
}

// Fingerprint condenses every configuration field that shapes a run's
// measurements into a canonical string. Seed and Name are deliberately
// absent (checkpoints key them separately; caches append the seed
// themselves), as are Log/OnSnapshot, Workers and Governance, which only
// affect observation, scheduling and maintenance, never results. Shared
// by checkpoint resume and by cross-run warm-state caches (the kadserve
// engine arena), so one definition decides what "the same run" means.
func Fingerprint(cfg scenario.Config) string { return fingerprint(cfg) }

func fingerprint(cfg scenario.Config) string {
	// Attack.String() renders strategy/kills/interval/budget only, so the
	// cutset analyzer's sampling fraction is keyed explicitly: it changes
	// which cut the adversary finds, hence the victims and every curve.
	// Workers is deliberately absent — results are worker-independent.
	fp := fmt.Sprintf("size=%d|k=%d|a=%d|b=%d|s=%d|loss=%s|churn=%s|traffic=%v|wl=%+v|setup=%d|stab=%d|phase=%d|snap=%d|c=%g|attack=%s|ac=%g|target=%s",
		cfg.Size, cfg.K, cfg.Alpha, cfg.Bits, cfg.Staleness,
		cfg.Loss, cfg.Churn, cfg.Traffic, cfg.Workload,
		cfg.Setup, cfg.Stabilize, cfg.ChurnPhase, cfg.SnapshotInterval,
		cfg.SampleFraction, cfg.Attack, cfg.Attack.SampleFraction, cfg.Attack.Target)
	// The generative workload bundle joins the fingerprint only when one
	// is configured, so every pre-existing fingerprint (and the cache keys
	// derived from it, e.g. kadserve's arena/query names) is unchanged.
	if canon := cfg.Gen.Canon(); canon != "" {
		fp += "|gen=" + canon
	}
	return fp
}

// sanitize flattens a run name into a safe file-name fragment.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

func (c *Checkpointer) path(cfg scenario.Config, rep int) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s_r%d_s%d.ckpt.json", sanitize(cfg.Name), rep, cfg.Seed))
}

// Store persists one completed run. cfg must be the job's config (its
// Seed already derived for the replication).
func (c *Checkpointer) Store(cfg scenario.Config, rep int, r *scenario.Result) error {
	eff := cfg.WithDefaults()
	out := ckptFile{
		Name: cfg.Name, Rep: rep, Seed: eff.Seed, Fingerprint: fingerprint(eff),
		SpecDigest: eff.SpecDigest,
		Bits:       r.Config.Bits,
		ChurnAdded: r.ChurnAdded, ChurnRemoved: r.ChurnRemoved,
		TrafficOps: r.TrafficOps, AttackRemoved: r.AttackRemoved,
		WorkloadJoins: r.WorkloadJoins, WorkloadLeaves: r.WorkloadLeaves,
		IncrementalBinds: r.IncrementalBinds, FullBinds: r.FullBinds,
		MembershipRebinds: r.MembershipRebinds,
		SlotCompactions:   r.SlotCompactions, Redensifies: r.Redensifies,
		DeadArcFrac: r.DeadArcFrac, SlotUtilization: r.SlotUtilization,
		Network: r.Network,
	}
	for _, p := range r.Points {
		out.Points = append(out.Points, ckptPoint{
			TNS: int64(p.Time), N: p.N, Edges: p.Edges, Min: p.Min,
			Avg: p.Avg, Symmetry: p.Symmetry, SCC: p.SCC, Removed: p.Removed,
		})
	}
	for _, v := range r.Victims {
		out.Victims = append(out.Victims, ckptVictim{
			TNS: int64(v.Time), Addr: uint64(v.Addr), ID: v.ID.String(),
		})
	}
	data, err := json.Marshal(out)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint %s rep %d: %w", cfg.Name, rep, err)
	}
	// Write-then-rename so a crash mid-write leaves no half checkpoint
	// that a resume would have to distrust.
	tmp := c.path(cfg, rep) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sweep: checkpoint %s rep %d: %w", cfg.Name, rep, err)
	}
	if err := os.Rename(tmp, c.path(cfg, rep)); err != nil {
		return fmt.Errorf("sweep: checkpoint %s rep %d: %w", cfg.Name, rep, err)
	}
	return nil
}

// Load reconstructs a previously stored run. It reports (nil, false,
// nil) when no usable checkpoint exists — missing, unreadable, or keyed
// to a different run — and the sweep simply re-executes. But a
// checkpoint that IS this run's (name, rep, seed match) while its
// configuration fingerprint or scenario-spec digest differs means the
// experiment definition changed since the checkpoint was written;
// silently re-running (or worse, replaying) would mix results from two
// different experiments into one artefact, so Load fails loudly instead
// and the caller aborts the sweep.
func (c *Checkpointer) Load(cfg scenario.Config, rep int) (*scenario.Result, bool, error) {
	data, err := os.ReadFile(c.path(cfg, rep))
	if err != nil {
		return nil, false, nil
	}
	var in ckptFile
	if err := json.Unmarshal(data, &in); err != nil {
		// A corrupt file (e.g. a torn write from a hard kill predating the
		// rename protocol) is not a definition change: re-run and rewrite.
		return nil, false, nil
	}
	eff := cfg.WithDefaults()
	if in.Name != cfg.Name || in.Rep != rep || in.Seed != eff.Seed {
		return nil, false, nil
	}
	if in.Fingerprint != fingerprint(eff) {
		return nil, false, fmt.Errorf(
			"sweep: checkpoint %s holds run %q rep %d under a different experiment definition (checkpoint %q, current %q): the config or spec changed since the sweep was checkpointed — use a fresh checkpoint directory or delete the stale files",
			c.path(cfg, rep), cfg.Name, rep, in.Fingerprint, fingerprint(eff))
	}
	if in.SpecDigest != "" && eff.SpecDigest != "" && in.SpecDigest != eff.SpecDigest {
		return nil, false, fmt.Errorf(
			"sweep: checkpoint %s was written from scenario spec digest %s but the current spec digests to %s: the spec file changed since the sweep was checkpointed — use a fresh checkpoint directory or delete the stale files",
			c.path(cfg, rep), in.SpecDigest, eff.SpecDigest)
	}
	res := &scenario.Result{
		Config:     eff,
		ChurnAdded: in.ChurnAdded, ChurnRemoved: in.ChurnRemoved,
		TrafficOps: in.TrafficOps, AttackRemoved: in.AttackRemoved,
		WorkloadJoins: in.WorkloadJoins, WorkloadLeaves: in.WorkloadLeaves,
		IncrementalBinds: in.IncrementalBinds, FullBinds: in.FullBinds,
		MembershipRebinds: in.MembershipRebinds,
		SlotCompactions:   in.SlotCompactions, Redensifies: in.Redensifies,
		DeadArcFrac: in.DeadArcFrac, SlotUtilization: in.SlotUtilization,
		Network: in.Network,
	}
	for _, p := range in.Points {
		res.Points = append(res.Points, scenario.SnapshotStat{
			Time: time.Duration(p.TNS), N: p.N, Edges: p.Edges, Min: p.Min,
			Avg: p.Avg, Symmetry: p.Symmetry, SCC: p.SCC, Removed: p.Removed,
		})
	}
	bits := in.Bits
	if bits == 0 {
		bits = id.DefaultBits
	}
	for _, v := range in.Victims {
		parsed, err := id.Parse(bits, v.ID)
		if err != nil {
			return nil, false, nil
		}
		res.Victims = append(res.Victims, attack.Victim{
			Time: time.Duration(v.TNS), Addr: simnet.Addr(v.Addr), ID: parsed,
		})
	}
	return res, true, nil
}
