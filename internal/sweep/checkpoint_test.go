package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"kadre/internal/attack"
	"kadre/internal/scenario"
)

// ckptConfigs is a small sweep mixing a plain run and an attacked run, so
// resume is exercised over every checkpointed field (points, victims,
// counters).
func ckptConfigs() []scenario.Config {
	base := scenario.Config{
		Name: "ckpt/plain", Seed: 3, Size: 16, K: 8,
		Setup: 4 * time.Minute, Stabilize: 6 * time.Minute,
		SnapshotInterval: 5 * time.Minute, SampleFraction: 0.2,
	}
	attacked := base
	attacked.Name = "ckpt/attacked"
	attacked.ChurnPhase = 10 * time.Minute
	attacked.Attack = attack.Config{
		Strategy: attack.Degree, Budget: 4, Kills: 2, Interval: 5 * time.Minute,
	}
	return []scenario.Config{base, attacked}
}

// stripElapsed zeroes the wall-clock field so replayed and fresh results
// compare equal on the deterministic measurement surface.
func stripElapsed(sets []*RunSet) {
	for _, rs := range sets {
		for _, r := range rs.Reps {
			r.Elapsed = 0
		}
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}

	var freshEvents, cachedEvents int
	opts := Options{Reps: 2, Jobs: 2, Checkpoint: ckpt, Progress: func(ev Event) {
		if ev.Cached {
			cachedEvents++
		} else {
			freshEvents++
		}
	}}
	first, err := Run(ckptConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if freshEvents != 4 || cachedEvents != 0 {
		t.Fatalf("first sweep: %d fresh / %d cached events, want 4/0", freshEvents, cachedEvents)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("got %d checkpoint files, want 4 (2 configs x 2 reps)", len(files))
	}

	// Second sweep: everything replays from disk and matches byte for byte.
	freshEvents, cachedEvents = 0, 0
	second, err := Run(ckptConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if freshEvents != 0 || cachedEvents != 4 {
		t.Fatalf("resumed sweep: %d fresh / %d cached events, want 0/4", freshEvents, cachedEvents)
	}
	stripElapsed(first)
	stripElapsed(second)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("resumed sweep differs from the original")
	}

	// A missing checkpoint re-runs just that job.
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	freshEvents, cachedEvents = 0, 0
	third, err := Run(ckptConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if freshEvents != 1 || cachedEvents != 3 {
		t.Fatalf("partial resume: %d fresh / %d cached events, want 1/3", freshEvents, cachedEvents)
	}
	stripElapsed(third)
	if !reflect.DeepEqual(first, third) {
		t.Fatal("partially resumed sweep differs from the original")
	}
}

func TestCheckpointIgnoresStaleConfig(t *testing.T) {
	ckpt, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := ckptConfigs()
	if _, err := Run(cfgs, Options{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	countFresh := func(cfgs []scenario.Config) int {
		fresh := 0
		if _, err := Run(cfgs, Options{Checkpoint: ckpt, Progress: func(ev Event) {
			if !ev.Cached {
				fresh++
			}
		}}); err != nil {
			t.Fatal(err)
		}
		return fresh
	}

	// Changing only the adversary's analyzer sampling must invalidate the
	// attacked run's checkpoint (it changes the cut, hence the victims) —
	// and nothing else.
	cfgs = ckptConfigs()
	cfgs[1].Attack.SampleFraction = 1.0
	if fresh := countFresh(cfgs); fresh != 1 {
		t.Fatalf("%d fresh runs after attack sampling change, want 1 (the attacked config)", fresh)
	}

	// Same names and seeds, different k: no fingerprint may match.
	cfgs = ckptConfigs()
	for i := range cfgs {
		cfgs[i].K = 4
	}
	if fresh := countFresh(cfgs); fresh != len(cfgs) {
		t.Fatalf("%d fresh runs after config change, want %d", fresh, len(cfgs))
	}
}

func TestCheckpointIgnoresCorruptFile(t *testing.T) {
	ckpt, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := ckptConfigs()[:1]
	if _, err := Run(cfgs, Options{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(ckpt.Dir(), "*.ckpt.json"))
	if len(files) != 1 {
		t.Fatalf("got %d files, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := 0
	if _, err := Run(cfgs, Options{Checkpoint: ckpt, Progress: func(ev Event) {
		if !ev.Cached {
			fresh++
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if fresh != 1 {
		t.Fatalf("corrupt checkpoint not re-run (fresh=%d)", fresh)
	}
}
