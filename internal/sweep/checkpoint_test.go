package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"kadre/internal/attack"
	"kadre/internal/scenario"
)

// ckptConfigs is a small sweep mixing a plain run and an attacked run, so
// resume is exercised over every checkpointed field (points, victims,
// counters).
func ckptConfigs() []scenario.Config {
	base := scenario.Config{
		Name: "ckpt/plain", Seed: 3, Size: 16, K: 8,
		Setup: 4 * time.Minute, Stabilize: 6 * time.Minute,
		SnapshotInterval: 5 * time.Minute, SampleFraction: 0.2,
	}
	attacked := base
	attacked.Name = "ckpt/attacked"
	attacked.ChurnPhase = 10 * time.Minute
	attacked.Attack = attack.Config{
		Strategy: attack.Degree, Budget: 4, Kills: 2, Interval: 5 * time.Minute,
	}
	return []scenario.Config{base, attacked}
}

// stripElapsed zeroes the wall-clock field so replayed and fresh results
// compare equal on the deterministic measurement surface.
func stripElapsed(sets []*RunSet) {
	for _, rs := range sets {
		for _, r := range rs.Reps {
			r.Elapsed = 0
		}
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := NewCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}

	var freshEvents, cachedEvents int
	opts := Options{Reps: 2, Jobs: 2, Checkpoint: ckpt, Progress: func(ev Event) {
		if ev.Cached {
			cachedEvents++
		} else {
			freshEvents++
		}
	}}
	first, err := Run(ckptConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if freshEvents != 4 || cachedEvents != 0 {
		t.Fatalf("first sweep: %d fresh / %d cached events, want 4/0", freshEvents, cachedEvents)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("got %d checkpoint files, want 4 (2 configs x 2 reps)", len(files))
	}

	// Second sweep: everything replays from disk and matches byte for byte.
	freshEvents, cachedEvents = 0, 0
	second, err := Run(ckptConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if freshEvents != 0 || cachedEvents != 4 {
		t.Fatalf("resumed sweep: %d fresh / %d cached events, want 0/4", freshEvents, cachedEvents)
	}
	stripElapsed(first)
	stripElapsed(second)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("resumed sweep differs from the original")
	}

	// A missing checkpoint re-runs just that job.
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	freshEvents, cachedEvents = 0, 0
	third, err := Run(ckptConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if freshEvents != 1 || cachedEvents != 3 {
		t.Fatalf("partial resume: %d fresh / %d cached events, want 1/3", freshEvents, cachedEvents)
	}
	stripElapsed(third)
	if !reflect.DeepEqual(first, third) {
		t.Fatal("partially resumed sweep differs from the original")
	}
}

// TestCheckpointRefusesChangedDefinition pins the resume contract for an
// edited experiment: a checkpoint keyed to this exact run (name, rep,
// seed) but written under a different configuration is a definition
// change, and the sweep must abort loudly instead of silently re-running
// (and thereby mixing the edited definition's results with the stale
// files still on disk).
func TestCheckpointRefusesChangedDefinition(t *testing.T) {
	ckpt, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ckptConfigs(), Options{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}

	// Changing only the adversary's analyzer sampling changes the attacked
	// run's definition (it changes the cut, hence the victims).
	cfgs := ckptConfigs()
	cfgs[1].Attack.SampleFraction = 1.0
	if _, err := Run(cfgs, Options{Checkpoint: ckpt}); err == nil ||
		!strings.Contains(err.Error(), "different experiment definition") {
		t.Fatalf("resume after attack sampling change: got %v, want definition-change error", err)
	}

	// Same names and seeds, different k: every run's definition changed.
	cfgs = ckptConfigs()
	for i := range cfgs {
		cfgs[i].K = 4
	}
	if _, err := Run(cfgs, Options{Checkpoint: ckpt}); err == nil ||
		!strings.Contains(err.Error(), "different experiment definition") {
		t.Fatalf("resume after k change: got %v, want definition-change error", err)
	}

	// The unmodified definition still resumes entirely from disk.
	fresh := 0
	if _, err := Run(ckptConfigs(), Options{Checkpoint: ckpt, Progress: func(ev Event) {
		if !ev.Cached {
			fresh++
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Fatalf("unchanged definition re-ran %d runs, want 0", fresh)
	}
}

// TestCheckpointRefusesMutatedSpec is the satellite regression: two specs
// can resolve to behaviorally identical configs (same fingerprint) while
// being different files — e.g. only descriptive or not-yet-effective
// fields changed. The digest stored in the checkpoint must still refuse
// the resume; an empty digest (compiled-in preset, or a pre-digest
// checkpoint) stays compatible in both directions.
func TestCheckpointRefusesMutatedSpec(t *testing.T) {
	ckpt, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	withDigest := func(d string) []scenario.Config {
		cfgs := ckptConfigs()[:1]
		cfgs[0].SpecDigest = d
		return cfgs
	}
	if _, err := Run(withDigest("aaaa1111"), Options{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}

	if _, err := Run(withDigest("bbbb2222"), Options{Checkpoint: ckpt}); err == nil ||
		!strings.Contains(err.Error(), "spec") {
		t.Fatalf("resume under mutated spec digest: got %v, want spec-change error", err)
	}

	// Preset-style configs (no digest) replay spec-written checkpoints and
	// vice versa: the fingerprint already guarantees identical results.
	cached := 0
	count := func(ev Event) {
		if ev.Cached {
			cached++
		}
	}
	if _, err := Run(withDigest(""), Options{Checkpoint: ckpt, Progress: count}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(withDigest("aaaa1111"), Options{Checkpoint: ckpt, Progress: count}); err != nil {
		t.Fatal(err)
	}
	if cached != 2 {
		t.Fatalf("digest-compatible resumes replayed %d runs from disk, want 2", cached)
	}
}

func TestCheckpointIgnoresCorruptFile(t *testing.T) {
	ckpt, err := NewCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := ckptConfigs()[:1]
	if _, err := Run(cfgs, Options{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(ckpt.Dir(), "*.ckpt.json"))
	if len(files) != 1 {
		t.Fatalf("got %d files, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := 0
	if _, err := Run(cfgs, Options{Checkpoint: ckpt, Progress: func(ev Event) {
		if !ev.Cached {
			fresh++
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if fresh != 1 {
		t.Fatalf("corrupt checkpoint not re-run (fresh=%d)", fresh)
	}
}
