package sweep

import (
	"encoding/json"
	"io"
	"math"

	"kadre/internal/stats"
)

// The JSON schema mirrors the RunSet structure: one document per
// experiment, one entry per configuration, carrying both the raw per-rep
// snapshot series and the cross-rep aggregates. Undefined statistics (the
// CI of a single replication) encode as null, never as fabricated zeros.
// Wall-clock timings are deliberately excluded so that the same sweep
// always serializes to identical bytes — golden tests depend on it.

// JSONFile is the top-level document written by WriteJSON.
type JSONFile struct {
	Experiment string    `json:"experiment"`
	Title      string    `json:"title"`
	Scale      string    `json:"scale,omitempty"`
	Reps       int       `json:"reps"`
	Jobs       int       `json:"jobs,omitempty"`
	Runs       []JSONRun `json:"runs"`
}

// JSONRun is one configuration with its replications and aggregates.
type JSONRun struct {
	Name      string `json:"name"`
	BaseSeed  int64  `json:"base_seed"`
	Size      int    `json:"size"`
	K         int    `json:"k"`
	Alpha     int    `json:"alpha,omitempty"`
	Bits      int    `json:"bits,omitempty"`
	Staleness int    `json:"staleness,omitempty"`
	Churn     string `json:"churn"`
	Loss      string `json:"loss"`
	Traffic   bool   `json:"traffic"`
	// Attack describes the adversary ("" when the run has none).
	Attack string `json:"attack,omitempty"`

	Reps      []JSONRep     `json:"reps"`
	Aggregate JSONAggregate `json:"aggregate"`
}

// JSONRep is the raw outcome of one seeded replication.
type JSONRep struct {
	Seed         int64       `json:"seed"`
	Points       []JSONPoint `json:"points"`
	ChurnAdded   int         `json:"churn_added"`
	ChurnRemoved int         `json:"churn_removed"`
	TrafficOps   int         `json:"traffic_ops"`
	// Generative-workload membership actions; absent for runs without a
	// workload bundle, so pre-spec documents are byte-identical.
	WorkloadJoins  int          `json:"workload_joins,omitempty"`
	WorkloadLeaves int          `json:"workload_leaves,omitempty"`
	AttackRemoved  int          `json:"attack_removed,omitempty"`
	Victims       []JSONVictim `json:"victims,omitempty"`
	MsgSent       uint64       `json:"msg_sent"`
	MsgLost       uint64       `json:"msg_lost"`
	// Memory reports the run's memory-governance outcome; absent when
	// governance was disabled for the run.
	Memory *JSONMemory `json:"memory,omitempty"`
}

// JSONMemory is one replication's memory-governance outcome: how much
// maintenance the policy triggered and the end-of-run footprint
// readings. dead_arc_frac staying at or under the policy's MaxDeadFrac
// is the serialized form of the long-run memory bound. Deterministic for
// a config — independent of the worker count — like every other field.
type JSONMemory struct {
	SlotCompactions int     `json:"slot_compactions"`
	Redensifies     int     `json:"redensifies"`
	DeadArcFrac     float64 `json:"dead_arc_frac"`
	SlotUtilization float64 `json:"slot_utilization"`
}

// JSONVictim is one adversarial removal.
type JSONVictim struct {
	TMin float64 `json:"t_min"`
	Addr uint64  `json:"addr"`
	ID   string  `json:"id"`
}

// JSONPoint is one snapshot of one replication.
type JSONPoint struct {
	TMin     float64 `json:"t_min"`
	N        int     `json:"n"`
	Edges    int     `json:"edges"`
	Min      int     `json:"min_conn"`
	Avg      float64 `json:"avg_conn"`
	Symmetry float64 `json:"symmetry"`
	SCCFrac  float64 `json:"scc_frac"`
	Removed  int     `json:"removed,omitempty"`
}

// JSONAggregate carries the cross-rep curves and the churn-window summary.
type JSONAggregate struct {
	Min         []JSONAggPoint `json:"min_conn"`
	Avg         []JSONAggPoint `json:"avg_conn"`
	Size        []JSONAggPoint `json:"size"`
	SCC         []JSONAggPoint `json:"scc_frac"`
	Removed     []JSONAggPoint `json:"removed,omitempty"`
	ChurnWindow JSONChurnStat  `json:"churn_window"`
}

// JSONAggPoint is one cross-rep aggregate at one snapshot instant.
type JSONAggPoint struct {
	TMin float64  `json:"t_min"`
	Mean float64  `json:"mean"`
	Std  float64  `json:"std"`
	CI95 *float64 `json:"ci95"` // null when undefined (single rep)
	Min  float64  `json:"min"`
	Max  float64  `json:"max"`
}

// JSONChurnStat summarizes the per-rep churn-window means (Table 2's
// quantity) across replications.
type JSONChurnStat struct {
	Means []*float64 `json:"rep_means"`
	Mean  *float64   `json:"mean"`
	CI95  *float64   `json:"ci95"`
}

func finiteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func aggPoints(a *stats.AggregateSeries) []JSONAggPoint {
	out := make([]JSONAggPoint, 0, a.Len())
	for _, p := range a.Points {
		out = append(out, JSONAggPoint{
			TMin: p.T.Minutes(), Mean: p.Mean, Std: p.Std,
			CI95: finiteOrNil(p.CI95), Min: p.Min, Max: p.Max,
		})
	}
	return out
}

// JSONMeta labels a document; Scale and Jobs are informational only.
type JSONMeta struct {
	Experiment string
	Title      string
	Scale      string
	Jobs       int
}

// BuildJSON assembles the document for a finished sweep.
func BuildJSON(meta JSONMeta, sets []*RunSet) *JSONFile {
	file := &JSONFile{
		Experiment: meta.Experiment,
		Title:      meta.Title,
		Scale:      meta.Scale,
		Jobs:       meta.Jobs,
		Runs:       make([]JSONRun, 0, len(sets)),
	}
	for _, rs := range sets {
		if file.Reps == 0 {
			file.Reps = len(rs.Reps)
		}
		// Render the effective configuration (zero loss reads "none", not
		// "LossLevel(0)"); the seed is already the derived rep-0 seed.
		cfg := rs.Config.WithDefaults()
		run := JSONRun{
			Name: cfg.Name, BaseSeed: cfg.Seed, Size: cfg.Size,
			K: cfg.K, Alpha: cfg.Alpha, Bits: cfg.Bits, Staleness: cfg.Staleness,
			Churn: cfg.Churn.String(), Loss: cfg.Loss.String(), Traffic: cfg.Traffic,
		}
		if cfg.Attack.Enabled() {
			run.Attack = cfg.Attack.String()
		}
		for _, r := range rs.Reps {
			rep := JSONRep{
				Seed:           r.Config.Seed,
				ChurnAdded:     r.ChurnAdded,
				ChurnRemoved:   r.ChurnRemoved,
				TrafficOps:     r.TrafficOps,
				WorkloadJoins:  r.WorkloadJoins,
				WorkloadLeaves: r.WorkloadLeaves,
				AttackRemoved:  r.AttackRemoved,
				MsgSent:       r.Network.Sent,
				MsgLost:       r.Network.Lost,
				Points:        make([]JSONPoint, 0, len(r.Points)),
			}
			if cfg.Governance.Enabled() {
				rep.Memory = &JSONMemory{
					SlotCompactions: r.SlotCompactions,
					Redensifies:     r.Redensifies,
					DeadArcFrac:     r.DeadArcFrac,
					SlotUtilization: r.SlotUtilization,
				}
			}
			for _, v := range r.Victims {
				rep.Victims = append(rep.Victims, JSONVictim{
					TMin: v.Time.Minutes(), Addr: uint64(v.Addr), ID: v.ID.String(),
				})
			}
			for _, p := range r.Points {
				rep.Points = append(rep.Points, JSONPoint{
					TMin: p.Time.Minutes(), N: p.N, Edges: p.Edges,
					Min: p.Min, Avg: p.Avg, Symmetry: p.Symmetry,
					SCCFrac: p.SCC, Removed: p.Removed,
				})
			}
			run.Reps = append(run.Reps, rep)
		}
		means := rs.ChurnWindowMeans()
		jsonMeans := make([]*float64, len(means))
		for i, m := range means {
			jsonMeans[i] = finiteOrNil(m)
		}
		run.Aggregate = JSONAggregate{
			Min:  aggPoints(rs.Min),
			Avg:  aggPoints(rs.Avg),
			Size: aggPoints(rs.Size),
			SCC:  aggPoints(rs.SCC),
			ChurnWindow: JSONChurnStat{
				Means: jsonMeans,
				Mean:  finiteOrNil(stats.Mean(means)),
				CI95:  finiteOrNil(stats.CI95Half(means)),
			},
		}
		if cfg.Attack.Enabled() {
			run.Aggregate.Removed = aggPoints(rs.Removed)
		}
		file.Runs = append(file.Runs, run)
	}
	return file
}

// WriteJSON serializes a finished sweep as an indented JSON document.
func WriteJSON(w io.Writer, meta JSONMeta, sets []*RunSet) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(meta, sets))
}
