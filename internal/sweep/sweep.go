// Package sweep is the parallel experiment orchestrator: it fans scenario
// runs out across a worker pool, replicates every configuration R times
// with derived seeds (the paper's §5.4 repeated-run methodology), and
// collapses the replications into cross-run mean / standard deviation /
// 95% confidence-interval curves per snapshot instant.
//
// Determinism is a hard contract: each scenario run is a pure function of
// its config (the event-sim kernel is single-goroutine and seeded), jobs
// are distributed over workers in input order with results written back by
// index, and seed derivation depends only on (base seed, rep). The same
// sweep therefore produces identical Results under any worker count — the
// property the determinism tests pin down under the race detector.
package sweep

import (
	"fmt"
	"sync"
	"time"

	"kadre/internal/par"
	"kadre/internal/scenario"
	"kadre/internal/stats"
)

// Options configures a sweep.
type Options struct {
	// Reps is the number of seed replications per config; <= 0 means 1.
	// Rep 0 always runs the config's own seed, so Reps=1 reproduces a
	// plain scenario.Run byte for byte.
	Reps int
	// Jobs bounds the number of concurrently executing runs; <= 0 means
	// GOMAXPROCS.
	Jobs int
	// Progress, when set, receives one event per completed run. Events are
	// delivered serially (never concurrently). By default they arrive in
	// completion order, which depends on scheduling; the Done counter is
	// monotonic either way.
	Progress func(Event)
	// Ordered delivers Progress events in replication order — (group,
	// config, rep), each event released as soon as every run before it
	// has completed — so the event stream is rep-level deterministic
	// under any Jobs value, at the cost of buffering out-of-order
	// completions. Streaming consumers (single-config queries reporting
	// per-rep progress) want this; interactive CLIs usually prefer the
	// immediate completion-order default.
	Ordered bool
	// Checkpoint, when set, persists every completed run to disk and
	// replays already-completed runs instead of re-executing them, so an
	// interrupted sweep resumes where it stopped.
	Checkpoint *Checkpointer
}

// Event reports one completed (or failed) run to the Progress callback.
type Event struct {
	Experiment string        // group name in a multi-experiment sweep ("" otherwise)
	Name       string        // config name
	Rep        int           // replication index, 0-based
	Seed       int64         // derived seed the run used
	Done       int           // completed runs so far, including this one
	Total      int           // total runs in the sweep (all groups)
	Elapsed    time.Duration // wall-clock cost of this run
	Cached     bool          // run was replayed from a checkpoint
	Err        error         // non-nil if the run failed
}

// RunSet is the outcome of all replications of one configuration.
type RunSet struct {
	// Config is the base configuration (rep 0; its seed is the base seed).
	Config scenario.Config
	// Reps holds the per-replication results in rep order.
	Reps []*scenario.Result
	// Min, Avg and Size are the cross-replication aggregates of the
	// minimum-connectivity, average-connectivity and live-size curves.
	Min, Avg, Size *stats.AggregateSeries
	// SCC and Removed aggregate the largest-SCC-fraction and cumulative
	// adversarial-removal curves (Removed is all zeros without an attack).
	SCC, Removed *stats.AggregateSeries
}

// ChurnWindowMeans returns each replication's mean minimum connectivity
// during the churn phase — the per-run quantity behind Table 2 — so
// callers can report its cross-run mean and confidence interval.
func (rs *RunSet) ChurnWindowMeans() []float64 {
	out := make([]float64, len(rs.Reps))
	for i, r := range rs.Reps {
		out[i] = r.ChurnWindowSummary().Mean
	}
	return out
}

// DeriveSeed maps a base seed and replication index to the seed of that
// replication. Rep 0 is the base seed itself (so single-rep sweeps match
// historical runs exactly); higher reps pass the pair through a
// splitmix64-style mixer so that consecutive bases and consecutive reps
// land on unrelated streams rather than the overlapping ones plain
// seed+rep arithmetic would give (presets already use seed, seed+1, ...).
func DeriveSeed(base int64, rep int) int64 {
	if base == 0 {
		base = 1 // scenario's withDefaults treats 0 as 1
	}
	if rep == 0 {
		return base
	}
	x := uint64(base) + uint64(rep)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	seed := int64(x)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Group names one experiment's configurations inside a multi-experiment
// sweep; the name is echoed as Event.Experiment on its runs' progress
// events.
type Group struct {
	Name    string
	Configs []scenario.Config
}

// Run executes every configuration Reps times across the worker pool and
// returns one RunSet per configuration, in input order. Any run failure
// aborts the sweep with the error of the smallest (config, rep) index;
// in-flight runs complete, and queued runs beyond the failure may be
// skipped.
func Run(cfgs []scenario.Config, opts Options) ([]*RunSet, error) {
	sets, err := RunGroups([]Group{{Configs: cfgs}}, opts)
	if err != nil {
		return nil, err
	}
	return sets[0], nil
}

// RunGroups executes several experiments' sweeps through one shared
// worker pool, returning per-group RunSets in input order. Unlike
// looping Run over the groups, the pool never drains between
// experiments: jobs from the next experiment backfill workers as the
// previous experiment's tail finishes, keeping every core busy across
// experiment boundaries. Determinism is unchanged — every run is a pure
// function of its config and seed, and results are reassembled by
// index — so the output is identical to the serial per-experiment form.
//
// On failure RunGroups returns the error of the earliest failing
// (group, config, rep) index alongside a partial result: groups whose
// runs all completed carry their RunSets, the rest are nil. Callers can
// therefore persist the finished experiments of a long pooled sweep
// instead of discarding hours of completed work with the error.
func RunGroups(groups []Group, opts Options) ([][]*RunSet, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 1
	}

	type job struct {
		cfg   scenario.Config
		group string
		rep   int
	}
	var jobs []job
	for _, g := range groups {
		for _, cfg := range g.Configs {
			for r := 0; r < reps; r++ {
				jc := cfg
				jc.Seed = DeriveSeed(cfg.Seed, r)
				jobs = append(jobs, job{cfg: jc, group: g.Name, rep: r})
			}
		}
	}

	progress := newProgressGate(opts.Progress, len(jobs), opts.Ordered)
	results, mapErr := par.Map(opts.Jobs, jobs, func(i int, j job) (*scenario.Result, error) {
		if opts.Checkpoint != nil {
			res, ok, lerr := opts.Checkpoint.Load(j.cfg, j.rep)
			if lerr != nil {
				// A checkpoint for this exact run written under a different
				// experiment definition: abort rather than silently mixing
				// results from the edited and original definitions.
				progress.emit(i, Event{
					Experiment: j.group, Name: j.cfg.Name, Rep: j.rep, Seed: j.cfg.Seed, Err: lerr,
				})
				return nil, fmt.Errorf("scenario %q rep %d (seed %d): %w", j.cfg.Name, j.rep, j.cfg.Seed, lerr)
			}
			if ok {
				progress.emit(i, Event{
					Experiment: j.group, Name: j.cfg.Name, Rep: j.rep, Seed: j.cfg.Seed, Cached: true,
				})
				return res, nil
			}
		}
		res, rerr := scenario.Run(j.cfg)
		if rerr == nil && opts.Checkpoint != nil {
			rerr = opts.Checkpoint.Store(j.cfg, j.rep, res)
		}
		var elapsed time.Duration
		if res != nil {
			elapsed = res.Elapsed
		}
		progress.emit(i, Event{
			Experiment: j.group, Name: j.cfg.Name, Rep: j.rep, Seed: j.cfg.Seed,
			Elapsed: elapsed, Err: rerr,
		})
		if rerr != nil {
			return nil, fmt.Errorf("scenario %q rep %d (seed %d): %w", j.cfg.Name, j.rep, j.cfg.Seed, rerr)
		}
		return res, nil
	})

	out := make([][]*RunSet, len(groups))
	next := 0
	for gi, g := range groups {
		sets := make([]*RunSet, len(g.Configs))
		complete := true
		for ci := range g.Configs {
			repResults := results[next : next+reps]
			next += reps
			for _, r := range repResults {
				if r == nil {
					// Failed, or skipped after the first failure.
					complete = false
				}
			}
			if !complete {
				continue
			}
			rs := &RunSet{Config: g.Configs[ci], Reps: repResults}
			rs.Config.Seed = DeriveSeed(g.Configs[ci].Seed, 0)
			if err := rs.aggregate(); err != nil {
				return nil, fmt.Errorf("sweep: config %q: %w", rs.Config.Name, err)
			}
			sets[ci] = rs
		}
		if complete {
			out[gi] = sets
		}
	}
	return out, mapErr
}

// Aggregate (re)builds the cross-replication aggregate series from Reps.
// Run calls it automatically; it is exported for callers assembling
// RunSets from externally produced results (e.g. replayed checkpoints or
// fabricated fixtures).
func (rs *RunSet) Aggregate() error { return rs.aggregate() }

func (rs *RunSet) aggregate() error {
	mins := make([]*stats.Series, len(rs.Reps))
	avgs := make([]*stats.Series, len(rs.Reps))
	sizes := make([]*stats.Series, len(rs.Reps))
	sccs := make([]*stats.Series, len(rs.Reps))
	removed := make([]*stats.Series, len(rs.Reps))
	for i, r := range rs.Reps {
		mins[i] = r.MinSeries()
		avgs[i] = r.AvgSeries()
		sizes[i] = r.SizeSeries()
		sccs[i] = r.SCCSeries()
		removed[i] = r.RemovedSeries()
	}
	var err error
	if rs.Min, err = stats.AggregateAligned(rs.Config.Name+"/min", mins); err != nil {
		return err
	}
	if rs.Avg, err = stats.AggregateAligned(rs.Config.Name+"/avg", avgs); err != nil {
		return err
	}
	if rs.SCC, err = stats.AggregateAligned(rs.Config.Name+"/scc", sccs); err != nil {
		return err
	}
	if rs.Removed, err = stats.AggregateAligned(rs.Config.Name+"/removed", removed); err != nil {
		return err
	}
	rs.Size, err = stats.AggregateAligned(rs.Config.Name+"/size", sizes)
	return err
}

// RunExperiment is Run over an experiment's configurations.
func RunExperiment(exp scenario.Experiment, opts Options) ([]*RunSet, error) {
	return Run(exp.Configs, opts)
}

// progressGate serializes Progress callbacks and owns the Done counter so
// callers receive events one at a time without locking on their side. In
// ordered mode it additionally buffers out-of-order completions and
// releases events strictly in job (group, config, rep) order; a sweep
// aborted by a failure may then leave buffered events after the gap
// undelivered, mirroring how the failed run's successors may be skipped.
type progressGate struct {
	mu      sync.Mutex
	fn      func(Event)
	total   int
	done    int
	ordered bool
	next    int
	pending map[int]Event
}

func newProgressGate(fn func(Event), total int, ordered bool) *progressGate {
	g := &progressGate{fn: fn, total: total, ordered: ordered}
	if ordered && fn != nil {
		g.pending = make(map[int]Event)
	}
	return g
}

func (g *progressGate) emit(idx int, ev Event) {
	if g.fn == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.ordered {
		g.deliver(ev)
		return
	}
	g.pending[idx] = ev
	for {
		nextEv, ok := g.pending[g.next]
		if !ok {
			return
		}
		delete(g.pending, g.next)
		g.next++
		g.deliver(nextEv)
	}
}

func (g *progressGate) deliver(ev Event) {
	g.done++
	ev.Done = g.done
	ev.Total = g.total
	g.fn(ev)
}
