package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"kadre/internal/scenario"
)

// tinyConfig is small enough that a multi-rep sweep stays fast under the
// race detector.
func tinyConfig(name string, seed int64) scenario.Config {
	return scenario.Config{
		Name: name, Seed: seed, Size: 20, K: 5, Staleness: 1,
		Setup: 6 * time.Minute, Stabilize: 12 * time.Minute,
		SnapshotInterval: 6 * time.Minute, SampleFraction: 0.1,
	}
}

func TestDeriveSeed(t *testing.T) {
	if got := DeriveSeed(42, 0); got != 42 {
		t.Fatalf("rep 0 must keep the base seed, got %d", got)
	}
	if got := DeriveSeed(0, 0); got != 1 {
		t.Fatalf("zero base must normalize to scenario's default 1, got %d", got)
	}
	// Derived seeds must not collide across the (base, rep) pairs a sweep
	// of consecutive base seeds actually uses — presets hand out
	// seed, seed+1, ..., so plain base+rep arithmetic would alias.
	seen := map[int64][2]int64{}
	for base := int64(1); base <= 40; base++ {
		for rep := 0; rep < 8; rep++ {
			s := DeriveSeed(base, rep)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d, %d) = 0", base, rep)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) -> %d", prev[0], prev[1], base, rep, s)
			}
			seen[s] = [2]int64{base, int64(rep)}
		}
	}
}

func TestRunRepZeroMatchesPlainRun(t *testing.T) {
	cfg := tinyConfig("rep0", 7)
	plain, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := Run([]scenario.Config{cfg}, Options{Reps: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0].Reps) != 2 {
		t.Fatalf("got %d sets / %d reps", len(sets), len(sets[0].Reps))
	}
	if !reflect.DeepEqual(sets[0].Reps[0].Points, plain.Points) {
		t.Fatalf("rep 0 diverged from plain run:\n%+v\nvs\n%+v", sets[0].Reps[0].Points, plain.Points)
	}
	if sets[0].Reps[1].Config.Seed == cfg.Seed {
		t.Fatal("rep 1 reused the base seed")
	}
}

func TestRunAggregates(t *testing.T) {
	cfg := tinyConfig("agg", 3)
	sets, err := Run([]scenario.Config{cfg}, Options{Reps: 3, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	rs := sets[0]
	nPoints := len(rs.Reps[0].Points)
	if nPoints == 0 {
		t.Fatal("no snapshots")
	}
	for _, agg := range []int{rs.Min.Len(), rs.Avg.Len(), rs.Size.Len()} {
		if agg != nPoints {
			t.Fatalf("aggregate has %d points, runs have %d", agg, nPoints)
		}
	}
	for i, p := range rs.Min.Points {
		if p.N != 3 {
			t.Fatalf("aggregate point %d covers %d runs, want 3", i, p.N)
		}
		if p.Mean < p.Min || p.Mean > p.Max {
			t.Fatalf("aggregate point %d mean %v outside [%v, %v]", i, p.Mean, p.Min, p.Max)
		}
	}
	if len(rs.ChurnWindowMeans()) != 3 {
		t.Fatal("churn-window means must have one entry per rep")
	}
}

// TestDeterminismAcrossJobs is the central seed-stability contract: the
// same sweep run with 1 worker and with 8 workers must produce identical
// Result.Points for every (config, rep). Run under -race in CI.
func TestDeterminismAcrossJobs(t *testing.T) {
	cfgs := []scenario.Config{tinyConfig("det-a", 11), tinyConfig("det-b", 12)}
	runWith := func(jobs int) [][]*scenario.Result {
		sets, err := Run(cfgs, Options{Reps: 2, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]*scenario.Result, len(sets))
		for i, rs := range sets {
			out[i] = rs.Reps
		}
		return out
	}
	serial := runWith(1)
	parallel := runWith(8)
	for ci := range serial {
		for ri := range serial[ci] {
			a, b := serial[ci][ri], parallel[ci][ri]
			if a.Config.Seed != b.Config.Seed {
				t.Fatalf("config %d rep %d: seeds differ: %d vs %d", ci, ri, a.Config.Seed, b.Config.Seed)
			}
			if !reflect.DeepEqual(a.Points, b.Points) {
				t.Fatalf("config %d rep %d: points differ between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
					ci, ri, a.Points, b.Points)
			}
			if a.Network != b.Network {
				t.Fatalf("config %d rep %d: network stats differ: %+v vs %+v", ci, ri, a.Network, b.Network)
			}
		}
	}
}

func TestProgressEvents(t *testing.T) {
	cfgs := []scenario.Config{tinyConfig("prog", 5)}
	var mu sync.Mutex
	var events []Event
	_, err := Run(cfgs, Options{Reps: 3, Jobs: 3, Progress: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d progress events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != 3 {
			t.Fatalf("event %d has Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if ev.Err != nil {
			t.Fatalf("event %d carries error %v", i, ev.Err)
		}
		if ev.Name != "prog" || ev.Seed == 0 {
			t.Fatalf("event %d mislabelled: %+v", i, ev)
		}
	}
}

func TestRunErrorNamesConfigAndRep(t *testing.T) {
	bad := tinyConfig("broken", 9)
	bad.Size = 1 // fails validation
	_, err := Run([]scenario.Config{tinyConfig("fine", 8), bad}, Options{Reps: 2, Jobs: 4})
	if err == nil {
		t.Fatal("expected error")
	}
	if want := `scenario "broken" rep 0`; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the failing config and rep", err)
	}
}

func TestWriteJSON(t *testing.T) {
	cfg := tinyConfig("json", 2)
	sets, err := Run([]scenario.Config{cfg}, Options{Reps: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	meta := JSONMeta{Experiment: "figureX", Title: "json test", Scale: "tiny", Jobs: 2}
	if err := WriteJSON(&buf, meta, sets); err != nil {
		t.Fatal(err)
	}
	var doc JSONFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Experiment != "figureX" || doc.Reps != 2 || len(doc.Runs) != 1 {
		t.Fatalf("document header wrong: %+v", doc)
	}
	run := doc.Runs[0]
	if run.Name != "json" || run.Size != 20 || run.K != 5 || len(run.Reps) != 2 {
		t.Fatalf("run wrong: %+v", run)
	}
	if len(run.Aggregate.Min) != len(run.Reps[0].Points) {
		t.Fatal("aggregate length mismatch")
	}
	if run.Aggregate.Min[0].CI95 == nil {
		t.Fatal("two reps must yield a finite CI")
	}

	// Byte determinism: the same sweep serializes identically.
	sets2, err := Run([]scenario.Config{cfg}, Options{Reps: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2, meta, sets2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON output not byte-identical across jobs counts")
	}

	// Single rep: the CI is undefined and must encode as null.
	single, err := Run([]scenario.Config{cfg}, Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := WriteJSON(&buf3, meta, single); err != nil {
		t.Fatal(err)
	}
	var doc3 JSONFile
	if err := json.Unmarshal(buf3.Bytes(), &doc3); err != nil {
		t.Fatal(err)
	}
	if doc3.Runs[0].Aggregate.Min[0].CI95 != nil {
		t.Fatal("single-rep CI must be null")
	}
}

// TestRunGroupsMatchesSerialRuns pins the shared-pool multi-experiment
// sweep to the serial per-experiment form: identical RunSets per group,
// with progress events labelled by experiment and a single monotonically
// increasing Done counter spanning all groups.
func TestRunGroupsMatchesSerialRuns(t *testing.T) {
	groupA := []scenario.Config{tinyConfig("A1", 3), tinyConfig("A2", 4)}
	groupB := []scenario.Config{tinyConfig("B1", 5)}

	serialA, err := Run(groupA, Options{Reps: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	serialB, err := Run(groupB, Options{Reps: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	events := map[string]int{}
	lastDone := 0
	pooled, err := RunGroups([]Group{
		{Name: "expA", Configs: groupA},
		{Name: "expB", Configs: groupB},
	}, Options{Reps: 2, Jobs: 4, Progress: func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		events[ev.Experiment]++
		if ev.Done != lastDone+1 || ev.Total != 6 {
			t.Errorf("event counter broken: done %d after %d, total %d", ev.Done, lastDone, ev.Total)
		}
		lastDone = ev.Done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pooled) != 2 || len(pooled[0]) != 2 || len(pooled[1]) != 1 {
		t.Fatalf("pooled shape wrong: %d groups", len(pooled))
	}
	if events["expA"] != 4 || events["expB"] != 2 {
		t.Fatalf("events per experiment %v, want expA:4 expB:2", events)
	}
	for ci, rs := range pooled[0] {
		for rep := range rs.Reps {
			if !reflect.DeepEqual(rs.Reps[rep].Points, serialA[ci].Reps[rep].Points) {
				t.Fatalf("group A config %d rep %d diverged from serial run", ci, rep)
			}
		}
	}
	for rep := range pooled[1][0].Reps {
		if !reflect.DeepEqual(pooled[1][0].Reps[rep].Points, serialB[0].Reps[rep].Points) {
			t.Fatalf("group B rep %d diverged from serial run", rep)
		}
	}
}

// TestRunGroupsPartialResultsOnFailure pins the salvage contract: when a
// later group's run fails, the error is reported AND every group whose
// runs all completed still carries its RunSets, so callers can persist
// finished experiments instead of discarding them.
func TestRunGroupsPartialResultsOnFailure(t *testing.T) {
	bad := tinyConfig("bad", 9)
	bad.Size = 1 // fails scenario validation at run time
	out, err := RunGroups([]Group{
		{Name: "good", Configs: []scenario.Config{tinyConfig("G", 3)}},
		{Name: "broken", Configs: []scenario.Config{bad}},
	}, Options{Reps: 1, Jobs: 2})
	if err == nil {
		t.Fatal("failing config must surface an error")
	}
	if len(out) != 2 {
		t.Fatalf("got %d groups, want 2", len(out))
	}
	if out[0] == nil || len(out[0]) != 1 || out[0][0] == nil || len(out[0][0].Reps) != 1 {
		t.Fatalf("completed group lost with the error: %+v", out[0])
	}
	if out[0][0].Reps[0] == nil || len(out[0][0].Reps[0].Points) == 0 {
		t.Fatal("completed group's result is empty")
	}
	if out[1] != nil {
		t.Fatalf("failed group must be nil, got %+v", out[1])
	}
}
