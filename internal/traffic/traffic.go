// Package traffic generates the paper's data-traffic workload: in the
// with-traffic scenarios every node performs 10 lookup procedures and 1
// dissemination procedure per minute, each at a uniformly random instant
// within the minute (§5.3). Lookups target data-object keys drawn from a
// shared key pool; disseminations store small payloads under such keys.
package traffic

import (
	"fmt"
	"time"

	"kadre/internal/eventsim"
	"kadre/internal/id"
	"kadre/internal/kademlia"
)

// Default per-node per-minute operation rates from §5.3.
const (
	DefaultLookupsPerMinute = 10
	DefaultStoresPerMinute  = 1
	// DefaultKeyPoolSize bounds the shared universe of data-object keys.
	DefaultKeyPoolSize = 256
)

// Workload parameterizes the generator. Zero fields take the defaults
// above.
type Workload struct {
	LookupsPerMinute int
	StoresPerMinute  int
	KeyPoolSize      int
}

func (w Workload) withDefaults() Workload {
	if w.LookupsPerMinute == 0 {
		w.LookupsPerMinute = DefaultLookupsPerMinute
	}
	if w.StoresPerMinute == 0 {
		w.StoresPerMinute = DefaultStoresPerMinute
	}
	if w.KeyPoolSize == 0 {
		w.KeyPoolSize = DefaultKeyPoolSize
	}
	return w
}

// Population yields the nodes that should generate traffic.
type Population interface {
	// LiveNodes returns the currently running nodes. The slice is not
	// retained across events.
	LiveNodes() []*kademlia.Node
}

// Generator drives the workload.
type Generator struct {
	sim      *eventsim.Simulator
	workload Workload
	pop      Population
	keys     []id.ID
	until    time.Duration
	timer    *eventsim.Timer

	lookups int
	stores  int
}

// NewGenerator builds a traffic generator whose key pool is drawn with the
// simulator's RNG in the given identifier space.
func NewGenerator(sim *eventsim.Simulator, bits int, w Workload, pop Population) (*Generator, error) {
	if err := id.CheckBits(bits); err != nil {
		return nil, err
	}
	w = w.withDefaults()
	if w.LookupsPerMinute < 0 || w.StoresPerMinute < 0 || w.KeyPoolSize < 1 {
		return nil, fmt.Errorf("traffic: invalid workload %+v", w)
	}
	g := &Generator{sim: sim, workload: w, pop: pop}
	g.keys = make([]id.ID, w.KeyPoolSize)
	for i := range g.keys {
		g.keys[i] = id.Random(bits, sim.Rand())
	}
	return g, nil
}

// Lookups reports how many lookup procedures have been dispatched.
func (g *Generator) Lookups() int { return g.lookups }

// Stores reports how many dissemination procedures have been dispatched.
func (g *Generator) Stores() int { return g.stores }

// Keys exposes the key pool (for examples that want to read data back).
func (g *Generator) Keys() []id.ID {
	return append([]id.ID(nil), g.keys...)
}

// Start schedules traffic from `from` until `until`.
func (g *Generator) Start(from, until time.Duration) error {
	if until < from {
		return fmt.Errorf("traffic: window ends %v before it starts %v", until, from)
	}
	if from < g.sim.Now() {
		return fmt.Errorf("traffic: window starts %v in the past (now %v)", from, g.sim.Now())
	}
	g.until = until
	var err error
	g.timer, err = g.sim.ScheduleAt(from, g.minute)
	if err != nil {
		return fmt.Errorf("traffic: %w", err)
	}
	return nil
}

// Stop cancels future minute ticks.
func (g *Generator) Stop() {
	if g.timer != nil {
		g.timer.Cancel()
		g.timer = nil
	}
}

func (g *Generator) minute() {
	now := g.sim.Now()
	if now >= g.until {
		return
	}
	r := g.sim.Rand()
	for _, node := range g.pop.LiveNodes() {
		node := node
		for i := 0; i < g.workload.LookupsPerMinute; i++ {
			key := g.keys[r.Intn(len(g.keys))]
			offset := time.Duration(r.Int63n(int64(time.Minute)))
			g.sim.MustSchedule(offset, func() {
				if !node.Running() {
					return
				}
				g.lookups++
				node.Get(key, nil)
			})
		}
		for i := 0; i < g.workload.StoresPerMinute; i++ {
			key := g.keys[r.Intn(len(g.keys))]
			offset := time.Duration(r.Int63n(int64(time.Minute)))
			g.sim.MustSchedule(offset, func() {
				if !node.Running() {
					return
				}
				g.stores++
				node.Store(key, []byte("data-object"), nil)
			})
		}
	}
	next := now + time.Minute
	if next < g.until {
		g.timer = g.sim.MustSchedule(time.Minute, g.minute)
	}
}
