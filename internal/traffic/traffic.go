// Package traffic generates the paper's data-traffic workload: in the
// with-traffic scenarios every node performs 10 lookup procedures and 1
// dissemination procedure per minute, each at a uniformly random instant
// within the minute (§5.3). Lookups target data-object keys drawn from a
// shared key pool; disseminations store small payloads under such keys.
package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"kadre/internal/eventsim"
	"kadre/internal/id"
	"kadre/internal/kademlia"
)

// Default per-node per-minute operation rates from §5.3.
const (
	DefaultLookupsPerMinute = 10
	DefaultStoresPerMinute  = 1
	// DefaultKeyPoolSize bounds the shared universe of data-object keys.
	DefaultKeyPoolSize = 256
)

// Disabled turns one workload rate off explicitly. A zero field means
// "unset — take the paper default", so 0 alone cannot express a
// lookups-off or stores-off workload; set the field to Disabled instead.
const Disabled = -1

// Workload parameterizes the generator. Zero fields take the defaults
// above; Disabled turns a rate off.
type Workload struct {
	LookupsPerMinute int
	StoresPerMinute  int
	KeyPoolSize      int
}

func (w Workload) withDefaults() Workload {
	switch w.LookupsPerMinute {
	case 0:
		w.LookupsPerMinute = DefaultLookupsPerMinute
	case Disabled:
		w.LookupsPerMinute = 0
	}
	switch w.StoresPerMinute {
	case 0:
		w.StoresPerMinute = DefaultStoresPerMinute
	case Disabled:
		w.StoresPerMinute = 0
	}
	if w.KeyPoolSize == 0 {
		w.KeyPoolSize = DefaultKeyPoolSize
	}
	return w
}

// WithDefaults resolves the workload to the effective rates a generator
// runs: zero fields become the paper defaults, Disabled becomes 0.
func (w Workload) WithDefaults() Workload { return w.withDefaults() }

// Validate rejects rates that are neither a count, zero-meaning-default,
// nor the Disabled sentinel. The key pool cannot be disabled — a traffic
// generator without keys is meaningless (turn both rates off instead).
func (w Workload) Validate() error {
	if w.LookupsPerMinute < Disabled {
		return fmt.Errorf("traffic: lookups/minute %d is negative (use Disabled to turn lookups off)", w.LookupsPerMinute)
	}
	if w.StoresPerMinute < Disabled {
		return fmt.Errorf("traffic: stores/minute %d is negative (use Disabled to turn stores off)", w.StoresPerMinute)
	}
	if w.KeyPoolSize < 0 {
		return fmt.Errorf("traffic: key pool size %d is negative", w.KeyPoolSize)
	}
	return nil
}

// Population yields the nodes that should generate traffic.
type Population interface {
	// LiveNodes returns the currently running nodes. The slice is not
	// retained across events.
	LiveNodes() []*kademlia.Node
}

// Generator drives the workload.
type Generator struct {
	sim      *eventsim.Simulator
	workload Workload
	pop      Population
	keys     []id.ID
	pickKey  func() int
	until    time.Duration
	timer    *eventsim.Timer

	lookups int
	stores  int
}

// NewGenerator builds a traffic generator whose key pool is drawn with the
// simulator's RNG in the given identifier space.
func NewGenerator(sim *eventsim.Simulator, bits int, w Workload, pop Population) (*Generator, error) {
	if err := id.CheckBits(bits); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	w = w.withDefaults()
	g := &Generator{sim: sim, workload: w, pop: pop}
	g.keys = make([]id.ID, w.KeyPoolSize)
	for i := range g.keys {
		g.keys[i] = id.Random(bits, sim.Rand())
	}
	return g, nil
}

// Lookups reports how many lookup procedures have been dispatched.
func (g *Generator) Lookups() int { return g.lookups }

// Stores reports how many dissemination procedures have been dispatched.
func (g *Generator) Stores() int { return g.stores }

// Keys exposes the key pool (for examples that want to read data back).
func (g *Generator) Keys() []id.ID {
	return append([]id.ID(nil), g.keys...)
}

// PoolSize reports the effective key-pool size.
func (g *Generator) PoolSize() int { return len(g.keys) }

// SetKeyPicker replaces uniform key selection: pick returns the pool
// index for each lookup/store. The generative workload layer plugs a
// Zipf-popularity picker in here. Pick must be deterministic given its
// own seeding and is invoked only on the simulator goroutine. Call
// before the kernel runs.
func (g *Generator) SetKeyPicker(pick func() int) { g.pickKey = pick }

// key draws one key from the pool, through the picker when set.
func (g *Generator) key(r *rand.Rand) id.ID {
	if g.pickKey != nil {
		return g.keys[g.pickKey()%len(g.keys)]
	}
	return g.keys[r.Intn(len(g.keys))]
}

// Start schedules traffic from `from` until `until`.
func (g *Generator) Start(from, until time.Duration) error {
	if until < from {
		return fmt.Errorf("traffic: window ends %v before it starts %v", until, from)
	}
	if from < g.sim.Now() {
		return fmt.Errorf("traffic: window starts %v in the past (now %v)", from, g.sim.Now())
	}
	g.until = until
	var err error
	g.timer, err = g.sim.ScheduleAt(from, g.minute)
	if err != nil {
		return fmt.Errorf("traffic: %w", err)
	}
	return nil
}

// Stop cancels future minute ticks.
func (g *Generator) Stop() {
	if g.timer != nil {
		g.timer.Cancel()
		g.timer = nil
	}
}

func (g *Generator) minute() {
	now := g.sim.Now()
	if now >= g.until {
		return
	}
	r := g.sim.Rand()
	for _, node := range g.pop.LiveNodes() {
		node := node
		for i := 0; i < g.workload.LookupsPerMinute; i++ {
			key := g.key(r)
			offset := time.Duration(r.Int63n(int64(time.Minute)))
			g.sim.MustSchedule(offset, func() {
				if !node.Running() {
					return
				}
				g.lookups++
				node.Get(key, nil)
			})
		}
		for i := 0; i < g.workload.StoresPerMinute; i++ {
			key := g.key(r)
			offset := time.Duration(r.Int63n(int64(time.Minute)))
			g.sim.MustSchedule(offset, func() {
				if !node.Running() {
					return
				}
				g.stores++
				node.Store(key, []byte("data-object"), nil)
			})
		}
	}
	next := now + time.Minute
	if next < g.until {
		g.timer = g.sim.MustSchedule(time.Minute, g.minute)
	}
}
