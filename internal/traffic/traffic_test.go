package traffic

import (
	"testing"
	"time"

	"kadre/internal/eventsim"
	"kadre/internal/kademlia"
	"kadre/internal/simnet"
)

type fakePop struct {
	nodes []*kademlia.Node
}

func (f *fakePop) LiveNodes() []*kademlia.Node {
	live := make([]*kademlia.Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		if n.Running() {
			live = append(live, n)
		}
	}
	return live
}

func buildPop(t *testing.T, sim *eventsim.Simulator, n int) (*fakePop, *simnet.Network) {
	t.Helper()
	net := simnet.New(sim, simnet.Config{Latency: simnet.ConstantLatency{D: 10 * time.Millisecond}})
	pop := &fakePop{}
	cfg := kademlia.Config{Bits: 64, K: 5, Alpha: 3, StalenessLimit: 1}
	for i := 0; i < n; i++ {
		node, err := kademlia.NewNode(cfg, simnet.Addr(i+1), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		pop.nodes = append(pop.nodes, node)
	}
	for i := 1; i < n; i++ {
		if err := pop.nodes[i].Join(pop.nodes[0].Contact(), nil); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunUntil(time.Minute)
	return pop, net
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{}.withDefaults()
	if w.LookupsPerMinute != 10 || w.StoresPerMinute != 1 {
		t.Fatalf("defaults %+v do not match the paper's 10 lookups + 1 dissemination", w)
	}
	if w.KeyPoolSize != DefaultKeyPoolSize {
		t.Fatalf("key pool default = %d", w.KeyPoolSize)
	}
}

func TestGeneratorDispatchRate(t *testing.T) {
	sim := eventsim.New(1)
	pop, _ := buildPop(t, sim, 8)
	g, err := NewGenerator(sim, 64, Workload{LookupsPerMinute: 4, StoresPerMinute: 2}, pop)
	if err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	if err := g.Start(start, start+5*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(start + 10*time.Minute)
	// 8 nodes * 5 minutes * 4 lookups and * 2 stores.
	if g.Lookups() != 160 {
		t.Errorf("lookups = %d, want 160", g.Lookups())
	}
	if g.Stores() != 80 {
		t.Errorf("stores = %d, want 80", g.Stores())
	}
}

func TestGeneratorSkipsDeadNodes(t *testing.T) {
	sim := eventsim.New(2)
	pop, _ := buildPop(t, sim, 4)
	g, err := NewGenerator(sim, 64, Workload{LookupsPerMinute: 1, StoresPerMinute: 1}, pop)
	if err != nil {
		t.Fatal(err)
	}
	pop.nodes[0].Leave()
	pop.nodes[1].Leave()
	start := sim.Now()
	if err := g.Start(start, start+time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(start + 2*time.Minute)
	if g.Lookups() != 2 || g.Stores() != 2 {
		t.Fatalf("ops = %d/%d, want 2/2 (only live nodes)", g.Lookups(), g.Stores())
	}
}

func TestGeneratorCausesStorage(t *testing.T) {
	sim := eventsim.New(3)
	pop, _ := buildPop(t, sim, 10)
	g, err := NewGenerator(sim, 64, Workload{LookupsPerMinute: 1, StoresPerMinute: 3, KeyPoolSize: 4}, pop)
	if err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	if err := g.Start(start, start+5*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(start + 10*time.Minute)
	// With 150 stores over a pool of 4 keys, some node must hold a value.
	holders := 0
	for _, n := range pop.nodes {
		for _, key := range g.Keys() {
			if n.HasValue(key) {
				holders++
				break
			}
		}
	}
	if holders == 0 {
		t.Fatal("dissemination stored nothing")
	}
}

// TestWorkloadDisabledRates pins the Disabled sentinel: before it, a
// zero field was indistinguishable from "unset" and withDefaults
// silently coerced an intentional lookups-off (or stores-off) workload
// back to the paper rates.
func TestWorkloadDisabledRates(t *testing.T) {
	w := Workload{LookupsPerMinute: Disabled, StoresPerMinute: 5}.withDefaults()
	if w.LookupsPerMinute != 0 {
		t.Fatalf("Disabled lookups coerced to %d, want 0", w.LookupsPerMinute)
	}
	if w.StoresPerMinute != 5 {
		t.Fatalf("explicit store rate rewritten to %d", w.StoresPerMinute)
	}
	w = Workload{LookupsPerMinute: 7, StoresPerMinute: Disabled}.withDefaults()
	if w.LookupsPerMinute != 7 || w.StoresPerMinute != 0 {
		t.Fatalf("stores-off workload resolved to %+v", w)
	}
}

// TestGeneratorZeroLookupWorkload runs a stores-only workload end to
// end: the regression was that Disabled-free code could not express it
// at all (zero meant "default to 10 lookups/minute").
func TestGeneratorZeroLookupWorkload(t *testing.T) {
	sim := eventsim.New(6)
	pop, _ := buildPop(t, sim, 6)
	g, err := NewGenerator(sim, 64, Workload{LookupsPerMinute: Disabled, StoresPerMinute: 2}, pop)
	if err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	if err := g.Start(start, start+5*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(start + 10*time.Minute)
	if g.Lookups() != 0 {
		t.Fatalf("lookups = %d, want 0 (disabled)", g.Lookups())
	}
	// 6 nodes * 5 minutes * 2 stores.
	if g.Stores() != 60 {
		t.Fatalf("stores = %d, want 60", g.Stores())
	}
}

func TestGeneratorStopAndWindow(t *testing.T) {
	sim := eventsim.New(4)
	pop, _ := buildPop(t, sim, 3)
	g, err := NewGenerator(sim, 64, Workload{LookupsPerMinute: 1, StoresPerMinute: 1}, pop)
	if err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	if err := g.Start(start, start+2*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(start + time.Minute + 30*time.Second)
	g.Stop()
	sim.RunUntil(start + time.Hour)
	// Only the first 2 minute-batches could have been scheduled, and Stop
	// landed mid-second; at most 2 minutes of ops.
	if g.Lookups() > 6 {
		t.Fatalf("lookups = %d after Stop, want <= 6", g.Lookups())
	}
}

func TestGeneratorValidation(t *testing.T) {
	sim := eventsim.New(5)
	pop := &fakePop{}
	if _, err := NewGenerator(sim, 7, Workload{}, pop); err == nil {
		t.Error("invalid bits should fail")
	}
	if _, err := NewGenerator(sim, 64, Workload{LookupsPerMinute: -2}, pop); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := NewGenerator(sim, 64, Workload{StoresPerMinute: -2}, pop); err == nil {
		t.Error("negative store rate should fail")
	}
	if _, err := NewGenerator(sim, 64, Workload{KeyPoolSize: -1}, pop); err == nil {
		t.Error("negative key pool should fail")
	}
	g, err := NewGenerator(sim, 64, Workload{}, pop)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(time.Hour, time.Minute); err == nil {
		t.Error("inverted window should fail")
	}
}

func TestKeyPoolDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []string {
		sim := eventsim.New(seed)
		g, err := NewGenerator(sim, 64, Workload{KeyPoolSize: 8}, &fakePop{})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, k := range g.Keys() {
			out = append(out, k.String())
		}
		return out
	}
	a, b, c := mk(1), mk(1), mk(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different key pools")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical key pools")
	}
}
